(* Tests for the geometry substrate: RNG, rectangles, grids, statistics. *)

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected actual =
  if not (feq ~eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- Rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Geo.Rng.create 7 and b = Geo.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Geo.Rng.bits64 a) (Geo.Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Geo.Rng.create 1 and b = Geo.Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Geo.Rng.bits64 a <> Geo.Rng.bits64 b)

let test_rng_copy () =
  let a = Geo.Rng.create 3 in
  ignore (Geo.Rng.bits64 a);
  let b = Geo.Rng.copy a in
  Alcotest.(check int64) "copy continues identically"
    (Geo.Rng.bits64 a) (Geo.Rng.bits64 b)

let test_rng_split_independent () =
  let a = Geo.Rng.create 3 in
  let b = Geo.Rng.split a in
  Alcotest.(check bool) "split stream differs" true
    (Geo.Rng.bits64 a <> Geo.Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Geo.Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Geo.Rng.int r 13 in
    if v < 0 || v >= 13 then Alcotest.failf "int out of bounds: %d" v
  done

let test_rng_float_bounds () =
  let r = Geo.Rng.create 12 in
  for _ = 1 to 1000 do
    let v = Geo.Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of bounds: %g" v
  done

let test_rng_bernoulli_extremes () =
  let r = Geo.Rng.create 13 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never true" false (Geo.Rng.bernoulli r 0.0);
    Alcotest.(check bool) "p=1 always true" true (Geo.Rng.bernoulli r 1.0)
  done

let test_rng_bernoulli_rate () =
  let r = Geo.Rng.create 14 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do if Geo.Rng.bernoulli r 0.3 then incr hits done;
  let rate = float_of_int !hits /. float_of_int n in
  if Float.abs (rate -. 0.3) > 0.02 then
    Alcotest.failf "bernoulli rate %.3f too far from 0.3" rate

let test_rng_gaussian_moments () =
  let r = Geo.Rng.create 15 in
  let n = 20000 in
  let samples =
    Array.init n (fun _ -> Geo.Rng.gaussian r ~mean:2.0 ~sigma:3.0)
  in
  let mean = Geo.Stats.mean samples in
  let sd = Geo.Stats.stddev samples in
  if Float.abs (mean -. 2.0) > 0.1 then Alcotest.failf "mean %.3f" mean;
  if Float.abs (sd -. 3.0) > 0.1 then Alcotest.failf "stddev %.3f" sd

let test_rng_shuffle_permutation () =
  let r = Geo.Rng.create 16 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Geo.Rng.shuffle r b;
  Alcotest.(check bool) "shuffled differs (overwhelmingly likely)" true
    (b <> a);
  Array.sort compare b;
  Alcotest.(check (array int)) "multiset preserved" a b

(* --- Rect --------------------------------------------------------------- *)

let rect lx ly hx hy = Geo.Rect.make ~lx ~ly ~hx ~hy

let test_rect_normalization () =
  let r = Geo.Rect.make ~lx:5.0 ~ly:7.0 ~hx:1.0 ~hy:2.0 in
  check_float "lx" 1.0 r.Geo.Rect.lx;
  check_float "ly" 2.0 r.Geo.Rect.ly;
  check_float "hx" 5.0 r.Geo.Rect.hx;
  check_float "hy" 7.0 r.Geo.Rect.hy

let test_rect_dims () =
  let r = rect 1.0 2.0 4.0 8.0 in
  check_float "width" 3.0 (Geo.Rect.width r);
  check_float "height" 6.0 (Geo.Rect.height r);
  check_float "area" 18.0 (Geo.Rect.area r);
  check_float "cx" 2.5 (Geo.Rect.center_x r);
  check_float "cy" 5.0 (Geo.Rect.center_y r)

let test_rect_contains_half_open () =
  let r = rect 0.0 0.0 2.0 2.0 in
  Alcotest.(check bool) "inside" true (Geo.Rect.contains r ~x:1.0 ~y:1.0);
  Alcotest.(check bool) "low edge in" true (Geo.Rect.contains r ~x:0.0 ~y:0.0);
  Alcotest.(check bool) "high edge out" false
    (Geo.Rect.contains r ~x:2.0 ~y:1.0);
  Alcotest.(check bool) "outside" false (Geo.Rect.contains r ~x:3.0 ~y:1.0)

let test_rect_intersection () =
  let a = rect 0.0 0.0 4.0 4.0 and b = rect 2.0 2.0 6.0 6.0 in
  Alcotest.(check bool) "intersects" true (Geo.Rect.intersects a b);
  (match Geo.Rect.intersection a b with
   | None -> Alcotest.fail "expected overlap"
   | Some r ->
     check_float "ov area" 4.0 (Geo.Rect.area r));
  check_float "overlap_area" 4.0 (Geo.Rect.overlap_area a b);
  let c = rect 4.0 0.0 8.0 4.0 in
  Alcotest.(check bool) "touching edges do not intersect" false
    (Geo.Rect.intersects a c);
  check_float "touching overlap 0" 0.0 (Geo.Rect.overlap_area a c)

let test_rect_union_inflate_clip () =
  let a = rect 0.0 0.0 1.0 1.0 and b = rect 2.0 3.0 4.0 5.0 in
  let u = Geo.Rect.union a b in
  check_float "union area" 20.0 (Geo.Rect.area u);
  let i = Geo.Rect.inflate a 1.0 in
  check_float "inflated area" 9.0 (Geo.Rect.area i);
  let c = Geo.Rect.clip i ~within:(rect 0.0 0.0 10.0 10.0) in
  check_float "clip area" 4.0 (Geo.Rect.area c);
  let disjoint = Geo.Rect.clip b ~within:a in
  check_float "disjoint clip has zero area" 0.0 (Geo.Rect.area disjoint)

let rect_gen =
  QCheck.Gen.(
    map
      (fun (a, b, c, d) -> Geo.Rect.make ~lx:a ~ly:b ~hx:c ~hy:d)
      (quad (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)
         (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))

let rect_arb = QCheck.make rect_gen

let prop_intersection_bounded =
  QCheck.Test.make ~name:"intersection area bounded by both" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) ->
       let ov = Geo.Rect.overlap_area a b in
       ov <= Geo.Rect.area a +. 1e-6 && ov <= Geo.Rect.area b +. 1e-6
       && ov >= 0.0)

let prop_union_contains =
  QCheck.Test.make ~name:"union covers both" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) ->
       let u = Geo.Rect.union a b in
       u.Geo.Rect.lx <= a.Geo.Rect.lx && u.Geo.Rect.hx >= b.Geo.Rect.hx
       && u.Geo.Rect.ly <= Float.min a.Geo.Rect.ly b.Geo.Rect.ly
       && u.Geo.Rect.hy >= Float.max a.Geo.Rect.hy b.Geo.Rect.hy)

(* --- Grid --------------------------------------------------------------- *)

let grid () =
  Geo.Grid.create ~nx:4 ~ny:5 ~extent:(rect 0.0 0.0 8.0 10.0)

let test_grid_basics () =
  let g = grid () in
  Alcotest.(check int) "nx" 4 (Geo.Grid.nx g);
  Alcotest.(check int) "ny" 5 (Geo.Grid.ny g);
  check_float "tile w" 2.0 (Geo.Grid.tile_width g);
  check_float "tile h" 2.0 (Geo.Grid.tile_height g);
  check_float "tile area" 4.0 (Geo.Grid.tile_area g);
  check_float "initial total" 0.0 (Geo.Grid.total g);
  Geo.Grid.set g ~ix:2 ~iy:3 5.0;
  check_float "get" 5.0 (Geo.Grid.get g ~ix:2 ~iy:3);
  Geo.Grid.add g ~ix:2 ~iy:3 1.5;
  check_float "add" 6.5 (Geo.Grid.get g ~ix:2 ~iy:3);
  Alcotest.(check (pair int int)) "argmax" (2, 3) (Geo.Grid.argmax g)

let test_grid_tile_rect_tiles_extent () =
  let g = grid () in
  let total = ref 0.0 in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy _ ->
      total := !total +. Geo.Rect.area (Geo.Grid.tile_rect g ~ix ~iy));
  check_float ~eps:1e-6 "tiles cover extent" 80.0 !total

let test_grid_tile_of_point () =
  let g = grid () in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy _ ->
      let r = Geo.Grid.tile_rect g ~ix ~iy in
      match
        Geo.Grid.tile_of_point g ~x:(Geo.Rect.center_x r)
          ~y:(Geo.Rect.center_y r)
      with
      | Some (ix', iy') ->
        Alcotest.(check (pair int int)) "center maps back" (ix, iy) (ix', iy')
      | None -> Alcotest.fail "center not found");
  Alcotest.(check bool) "outside -> None" true
    (Geo.Grid.tile_of_point g ~x:(-1.0) ~y:0.0 = None)

let test_grid_deposit_conserves () =
  let g = grid () in
  Geo.Grid.deposit g (rect 0.5 0.5 3.5 3.5) 7.0;
  check_float ~eps:1e-9 "deposit conserved" 7.0 (Geo.Grid.total g)

let test_grid_deposit_spans_tiles_proportionally () =
  let g = grid () in
  (* rect covering exactly tiles (0,0) and (1,0) halves *)
  Geo.Grid.deposit g (rect 1.0 0.0 3.0 2.0) 4.0;
  check_float "left half" 2.0 (Geo.Grid.get g ~ix:0 ~iy:0);
  check_float "right half" 2.0 (Geo.Grid.get g ~ix:1 ~iy:0)

let test_grid_deposit_outside_dropped () =
  let g = grid () in
  (* half the rect hangs off the left edge: only the inside half lands *)
  Geo.Grid.deposit g (rect (-2.0) 0.0 2.0 2.0) 4.0;
  check_float "clipped deposit scaled to covered area" 4.0 (Geo.Grid.total g);
  let g2 = grid () in
  Geo.Grid.deposit g2 (rect (-100.0) (-100.0) (-50.0) (-50.0)) 3.0;
  check_float "fully outside drops" 0.0 (Geo.Grid.total g2)

let test_grid_map_ops () =
  let g = Geo.Grid.of_function ~nx:3 ~ny:3 ~extent:(rect 0.0 0.0 3.0 3.0)
      ~f:(fun ~ix ~iy -> float_of_int (ix + iy)) in
  let doubled = Geo.Grid.map g ~f:(fun v -> 2.0 *. v) in
  check_float "map total" (2.0 *. Geo.Grid.total g) (Geo.Grid.total doubled);
  let s = Geo.Grid.map2 g doubled ~f:( +. ) in
  check_float "map2 total" (3.0 *. Geo.Grid.total g) (Geo.Grid.total s);
  check_float "max" 4.0 (Geo.Grid.max_value g);
  check_float "min" 0.0 (Geo.Grid.min_value g);
  check_float "mean" (Geo.Grid.total g /. 9.0) (Geo.Grid.mean g);
  let c = Geo.Grid.copy g in
  Geo.Grid.set c ~ix:0 ~iy:0 99.0;
  check_float "copy is independent" 0.0 (Geo.Grid.get g ~ix:0 ~iy:0)

let test_grid_pp_rows () =
  let g = grid () in
  let s = Format.asprintf "%a" Geo.Grid.pp_rows g in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "ny lines" 5 (List.length lines)

let test_grid_pp_shaded () =
  let g = grid () in
  Geo.Grid.set g ~ix:0 ~iy:0 10.0;
  let s = Format.asprintf "%a" Geo.Grid.pp_shaded g in
  (* don't trim: cold rows are all spaces and must survive *)
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "ny lines" 5 (List.length lines);
  List.iter
    (fun l -> Alcotest.(check int) "nx chars" 4 (String.length l))
    lines;
  (* the hottest tile renders as '@', sitting bottom-left = last line *)
  let last = List.nth lines 4 in
  Alcotest.(check char) "hot corner" '@' last.[0];
  Alcotest.(check char) "cold elsewhere" ' ' last.[1];
  (* a flat grid renders entirely with the lowest ramp character *)
  let flat = Format.asprintf "%a" Geo.Grid.pp_shaded (grid ()) in
  String.iter
    (fun c -> if c <> ' ' && c <> '\n' then
        Alcotest.failf "flat grid rendered %c" c)
    flat

let prop_deposit_conservation =
  QCheck.Test.make ~name:"deposit conserves mass for inside rects" ~count:300
    (QCheck.make
       QCheck.Gen.(
         quad (float_range 0.0 7.0) (float_range 0.0 9.0)
           (float_range 0.1 1.0) (float_range 0.1 1.0)))
    (fun (x, y, w, h) ->
       let g = grid () in
       let r = Geo.Rect.of_corner ~x ~y ~w:(Float.min w (8.0 -. x))
           ~h:(Float.min h (10.0 -. y)) in
       Geo.Grid.deposit g r 3.0;
       Float.abs (Geo.Grid.total g -. 3.0) < 1e-6)

(* --- Stats -------------------------------------------------------------- *)

let test_stats_mean_var () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Geo.Stats.mean a);
  check_float "variance" 1.25 (Geo.Stats.variance a);
  check_float "stddev" (sqrt 1.25) (Geo.Stats.stddev a);
  check_float "mean empty" 0.0 (Geo.Stats.mean [||]);
  check_float "variance single" 0.0 (Geo.Stats.variance [| 5.0 |])

let test_stats_percentile () =
  let a = [| 4.0; 1.0; 3.0; 2.0 |] in
  check_float "p0 = min" 1.0 (Geo.Stats.percentile a 0.0);
  check_float "p1 = max" 4.0 (Geo.Stats.percentile a 1.0);
  check_float "median" 2.5 (Geo.Stats.percentile a 0.5);
  (* negative zeros and denormals must sort like ordinary floats *)
  check_float "signed zeros" 0.0 (Geo.Stats.percentile [| 0.0; -0.0 |] 0.5);
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Geo.Stats.percentile [||] 0.5))

let test_stats_percentile_rejects_non_finite () =
  (* regression: polymorphic [compare] sorts NaN below every float, so a
     single NaN used to shift every order statistic silently — e.g. the
     max of [|1; nan|] came back 1.0-with-a-straight-face. Non-finite
     input is now loud. *)
  let check_rejected name a p =
    match Geo.Stats.percentile a p with
    | v -> Alcotest.failf "%s accepted (returned %.3g)" name v
    | exception Invalid_argument _ -> ()
  in
  check_rejected "NaN element" [| 1.0; Float.nan; 3.0 |] 0.5;
  check_rejected "infinite element" [| 1.0; Float.infinity |] 0.5;
  check_rejected "NaN p" [| 1.0; 2.0 |] Float.nan;
  check_rejected "p > 1" [| 1.0; 2.0 |] 1.5

let prop_stats_percentile_bounded_monotone =
  QCheck.Test.make ~name:"percentile bounded by extrema and monotone in p"
    ~count:300
    (QCheck.pair
       (QCheck.array_of_size QCheck.Gen.(int_range 1 40)
          (QCheck.float_range (-1e6) 1e6))
       (QCheck.pair (QCheck.float_range 0.0 1.0)
          (QCheck.float_range 0.0 1.0)))
    (fun (a, (p1, p2)) ->
       let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
       let vlo = Geo.Stats.percentile a lo in
       let vhi = Geo.Stats.percentile a hi in
       vlo >= Geo.Stats.minimum a
       && vhi <= Geo.Stats.maximum a
       && vlo <= vhi +. 1e-9)

let test_stats_extrema_histogram () =
  let a = [| -1.0; 5.0; 2.0 |] in
  check_float "min" (-1.0) (Geo.Stats.minimum a);
  check_float "max" 5.0 (Geo.Stats.maximum a);
  let h = Geo.Stats.histogram a ~bins:3 in
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "histogram counts everything" 3 total;
  Alcotest.(check int) "bins" 3 (Array.length h)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "geo"
    [ ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
         Alcotest.test_case "copy" `Quick test_rng_copy;
         Alcotest.test_case "split" `Quick test_rng_split_independent;
         Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
         Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
         Alcotest.test_case "bernoulli extremes" `Quick
           test_rng_bernoulli_extremes;
         Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
         Alcotest.test_case "gaussian moments" `Quick
           test_rng_gaussian_moments;
         Alcotest.test_case "shuffle permutation" `Quick
           test_rng_shuffle_permutation ]);
      ("rect",
       [ Alcotest.test_case "normalization" `Quick test_rect_normalization;
         Alcotest.test_case "dimensions" `Quick test_rect_dims;
         Alcotest.test_case "contains half-open" `Quick
           test_rect_contains_half_open;
         Alcotest.test_case "intersection" `Quick test_rect_intersection;
         Alcotest.test_case "union/inflate/clip" `Quick
           test_rect_union_inflate_clip ]
       @ qc [ prop_intersection_bounded; prop_union_contains ]);
      ("grid",
       [ Alcotest.test_case "basics" `Quick test_grid_basics;
         Alcotest.test_case "tiles cover extent" `Quick
           test_grid_tile_rect_tiles_extent;
         Alcotest.test_case "tile_of_point" `Quick test_grid_tile_of_point;
         Alcotest.test_case "deposit conserves" `Quick
           test_grid_deposit_conserves;
         Alcotest.test_case "deposit proportional" `Quick
           test_grid_deposit_spans_tiles_proportionally;
         Alcotest.test_case "deposit outside dropped" `Quick
           test_grid_deposit_outside_dropped;
         Alcotest.test_case "map ops" `Quick test_grid_map_ops;
         Alcotest.test_case "pp_rows shape" `Quick test_grid_pp_rows;
         Alcotest.test_case "pp_shaded rendering" `Quick
           test_grid_pp_shaded ]
       @ qc [ prop_deposit_conservation ]);
      ("stats",
       [ Alcotest.test_case "mean/var" `Quick test_stats_mean_var;
         Alcotest.test_case "percentile" `Quick test_stats_percentile;
         Alcotest.test_case "percentile rejects non-finite" `Quick
           test_stats_percentile_rejects_non_finite;
         Alcotest.test_case "extrema/histogram" `Quick
           test_stats_extrema_histogram ]
       @ qc [ prop_stats_percentile_bounded_monotone ]) ]
