(* Tests for the observability layer: timing spans, the metrics registry,
   the warning channel, JSON printing/parsing and report assembly. *)

let with_tracing f =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect ~finally:(fun () -> Obs.Trace.set_enabled false) f

(* --- trace ------------------------------------------------------------------ *)

let test_trace_disabled_is_transparent () =
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ();
  let r = Obs.Trace.with_span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Obs.Trace.span_count ());
  Alcotest.(check (list reject)) "no roots" [] (Obs.Trace.roots ())

let test_trace_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        let a = Obs.Trace.with_span "inner1" (fun () -> 1) in
        let b = Obs.Trace.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Alcotest.(check int) "result" 3 r;
  match Obs.Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Obs.Trace.name;
    Alcotest.(check (list string)) "children in order" [ "inner1"; "inner2" ]
      (List.map (fun s -> s.Obs.Trace.name) outer.Obs.Trace.children);
    Alcotest.(check int) "count" 3 (Obs.Trace.span_count ())
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_timing_monotone () =
  with_tracing @@ fun () ->
  let spin () =
    (* busy-wait so the child span has a measurable duration *)
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 1e-4 do () done
  in
  Obs.Trace.with_span "parent" (fun () ->
      Obs.Trace.with_span "child" spin);
  match Obs.Trace.roots () with
  | [ p ] ->
    let c = List.hd p.Obs.Trace.children in
    Alcotest.(check bool) "durations non-negative" true
      (p.Obs.Trace.duration_s >= 0.0 && c.Obs.Trace.duration_s > 0.0);
    Alcotest.(check bool) "child starts after parent" true
      (c.Obs.Trace.start_s >= p.Obs.Trace.start_s);
    Alcotest.(check bool) "child within parent" true
      (c.Obs.Trace.duration_s <= p.Obs.Trace.duration_s +. 1e-9)
  | _ -> Alcotest.fail "expected one root"

let test_trace_exception_safe () =
  with_tracing @@ fun () ->
  (try
     Obs.Trace.with_span "raiser" (fun () -> failwith "boom")
   with Failure _ -> ());
  let r = Obs.Trace.with_span "after" (fun () -> ()) in
  ignore r;
  Alcotest.(check (list string)) "both spans closed at top level"
    [ "raiser"; "after" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots ()))

(* --- metrics ---------------------------------------------------------------- *)

let test_metrics_counters () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Metrics.count "a";
  Obs.Metrics.count "a" ~by:4;
  Obs.Metrics.count "b";
  Alcotest.(check (option int)) "a" (Some 5) (Obs.Metrics.counter_value "a");
  Alcotest.(check (option int)) "b" (Some 1) (Obs.Metrics.counter_value "b");
  Alcotest.(check (option int)) "absent" None
    (Obs.Metrics.counter_value "c");
  Obs.Metrics.gauge "g" 2.5;
  Obs.Metrics.gauge "g" 7.5;
  Alcotest.(check (option (float 0.0))) "gauge keeps last" (Some 7.5)
    (Obs.Metrics.gauge_value "g")

let test_metrics_histogram () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  List.iter (Obs.Metrics.observe "h") [ 3.0; 1.0; 2.0 ];
  match Obs.Metrics.histogram "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 3 h.Obs.Metrics.count;
    Alcotest.(check (float 1e-12)) "sum" 6.0 h.Obs.Metrics.sum;
    Alcotest.(check (float 1e-12)) "min" 1.0 h.Obs.Metrics.min;
    Alcotest.(check (float 1e-12)) "max" 3.0 h.Obs.Metrics.max;
    Alcotest.(check (float 1e-12)) "last" 2.0 h.Obs.Metrics.last;
    Alcotest.(check (float 1e-12)) "mean" 2.0 (Obs.Metrics.mean h);
    Alcotest.(check (list (float 1e-12))) "samples in order"
      [ 3.0; 1.0; 2.0 ] h.Obs.Metrics.samples;
    Alcotest.(check int) "nothing dropped" 0 h.Obs.Metrics.dropped

let test_metrics_sample_cap () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let n = Obs.Metrics.max_samples + 10 in
  for i = 1 to n do
    Obs.Metrics.observe "capped" (float_of_int i)
  done;
  match Obs.Metrics.histogram "capped" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count exact past cap" n h.Obs.Metrics.count;
    Alcotest.(check int) "samples capped" Obs.Metrics.max_samples
      (List.length h.Obs.Metrics.samples);
    Alcotest.(check int) "dropped" 10 h.Obs.Metrics.dropped;
    Alcotest.(check (float 1e-12)) "max exact past cap" (float_of_int n)
      h.Obs.Metrics.max;
    Alcotest.(check (float 1e-6)) "sum exact past cap"
      (float_of_int (n * (n + 1) / 2))
      h.Obs.Metrics.sum

let test_metrics_disabled_noop () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled true)
    (fun () ->
       Obs.Metrics.count "x";
       Obs.Metrics.gauge "y" 1.0;
       Obs.Metrics.observe "z" 1.0;
       Alcotest.(check int) "registry untouched" 0
         (List.length (Obs.Metrics.snapshot ())))

(* --- log -------------------------------------------------------------------- *)

let test_log_retention () =
  Obs.Log.reset ();
  let seen = ref [] in
  Obs.Log.set_handler (Some (fun m -> seen := m :: !seen));
  Fun.protect
    ~finally:(fun () -> Obs.Log.set_handler (Some Obs.Log.default_handler))
    (fun () ->
       Obs.Log.warn "first";
       Obs.Log.warn "second";
       Alcotest.(check (list string)) "retained in order"
         [ "first"; "second" ] (Obs.Log.warnings ());
       Alcotest.(check (list string)) "handler saw both"
         [ "second"; "first" ] !seen;
       Alcotest.(check int) "none dropped" 0 (Obs.Log.dropped ()))

(* --- json ------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [ ("s", Obs.Json.String "a \"quoted\" \\ line\nwith\ttabs");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5e-3);
        ("whole", Obs.Json.Float 3.0);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l",
         Obs.Json.List
           [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.Bool false) ] ]) ]
  in
  List.iter
    (fun pretty ->
       match Obs.Json.of_string (Obs.Json.to_string ~pretty v) with
       | Ok v' ->
         if v' <> v then
           Alcotest.failf "round trip (pretty=%b) changed the value" pretty
       | Error e -> Alcotest.failf "round trip (pretty=%b): %s" pretty e)
    [ false; true ]

let test_json_parse_details () =
  (match Obs.Json.of_string {| {"u": "é😀", "e": []} |} with
   | Ok j ->
     Alcotest.(check (option string)) "escapes decode to UTF-8"
       (Some "\xc3\xa9\xf0\x9f\x98\x80")
       (Option.bind (Obs.Json.member "u" j) Obs.Json.to_string_opt)
   | Error e -> Alcotest.failf "parse: %s" e);
  (match Obs.Json.of_string "[1, 2" with
   | Ok _ -> Alcotest.fail "truncated input accepted"
   | Error _ -> ());
  (match Obs.Json.of_string "{} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage accepted"
   | Error _ -> ())

(* Regression (PR 5): non-finite floats used to print as [null], so a
   [Float nan] silently became [Null] across a round-trip — fatal for the
   checkpoint codec's bit-identical resume. They now print as string
   sentinels that [to_float] decodes back. *)
let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan prints as sentinel" {|"nan"|}
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf prints as sentinel" {|"inf"|}
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  Alcotest.(check string) "-inf prints as sentinel" {|"-inf"|}
    (Obs.Json.to_string (Obs.Json.Float Float.neg_infinity));
  List.iter
    (fun v ->
       let s = Obs.Json.to_string (Obs.Json.Float v) in
       match Obs.Json.of_string s with
       | Error e -> Alcotest.failf "sentinel %s does not parse: %s" s e
       | Ok j ->
         (match Obs.Json.to_float j with
          | None -> Alcotest.failf "sentinel %s does not decode" s
          | Some v' ->
            Alcotest.(check int64) ("round trip of " ^ s)
              (Int64.bits_of_float v) (Int64.bits_of_float v')))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* Regression (PR 5): the old number scanner fed any number-ish character
   run to OCaml's lenient float parser, accepting non-JSON forms. *)
let test_json_strict_numbers () =
  List.iter
    (fun s ->
       match Obs.Json.of_string s with
       | Ok _ -> Alcotest.failf "non-JSON number %S accepted" s
       | Error _ -> ())
    [ "+1"; "1.e5"; ".5"; "01"; "1."; "-"; "--1"; "1e"; "1e+"; "0x10";
      "1_000"; "nan"; "infinity" ];
  List.iter
    (fun (s, expect) ->
       match Obs.Json.of_string s with
       | Ok j ->
         if j <> expect then Alcotest.failf "number %S parsed wrong" s
       | Error e -> Alcotest.failf "valid number %S rejected: %s" s e)
    [ ("0", Obs.Json.Int 0); ("-0", Obs.Json.Int 0);
      ("10", Obs.Json.Int 10); ("-120", Obs.Json.Int (-120));
      ("0.5", Obs.Json.Float 0.5); ("1e5", Obs.Json.Float 1e5);
      ("1.25e-3", Obs.Json.Float 1.25e-3); ("2E+2", Obs.Json.Float 200.0);
      ("0.0", Obs.Json.Float 0.0) ]

(* Every float — finite or not — must survive print-and-parse with its
   exact bit pattern, via [to_float] for the sentinel cases. *)
let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"json float round trip is bit-exact" ~count:500
    QCheck.float (fun v ->
        let s = Obs.Json.to_string (Obs.Json.Float v) in
        match Obs.Json.of_string s with
        | Error e -> QCheck.Test.fail_reportf "reparse of %s failed: %s" s e
        | Ok j ->
          (match Obs.Json.to_float j with
           | None -> QCheck.Test.fail_reportf "%s not float-decodable" s
           | Some v' ->
             Int64.bits_of_float v = Int64.bits_of_float v'
             (* -nan collapses to the canonical nan payload; that is fine
                because the writer side only ever produces "nan" *)
             || (Float.is_nan v && Float.is_nan v')))

(* --- report ----------------------------------------------------------------- *)

let test_report_structure () =
  Obs.Report.start ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
       Obs.Trace.with_span "stage" (fun () -> Obs.Metrics.count "events");
       let j =
         Obs.Report.make ~command:"test"
           ~config:[ ("seed", Obs.Json.Int 1) ]
           ~sections:[ ("extra", Obs.Json.Bool true) ]
           ()
       in
       let keys = Obs.Json.keys j in
       List.iter
         (fun k ->
            if not (List.mem k keys) then Alcotest.failf "missing key %s" k)
         [ "schema_version"; "command"; "config"; "spans"; "metrics";
           "warnings"; "extra" ];
       (match Obs.Json.member "spans" j with
        | Some (Obs.Json.List [ span ]) ->
          Alcotest.(check (option string)) "span name" (Some "stage")
            (Option.bind (Obs.Json.member "name" span)
               Obs.Json.to_string_opt)
        | _ -> Alcotest.fail "expected exactly one root span");
       let path = Filename.temp_file "obs_report" ".json" in
       Fun.protect
         ~finally:(fun () -> Sys.remove path)
         (fun () ->
            Obs.Report.write_file path j;
            let ic = open_in_bin path in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            match Obs.Json.of_string text with
            | Ok j' ->
              Alcotest.(check bool) "file round-trips" true (j = j')
            | Error e -> Alcotest.failf "written file unparsable: %s" e))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write () =
  let path = Filename.temp_file "obs_atomic" ".json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
       Obs.Report.write_string_atomic path "first";
       Alcotest.(check string) "content written" "first" (read_file path);
       (* publication leaves no tmp file behind *)
       Alcotest.(check bool) "tmp removed" false
         (Sys.file_exists (path ^ ".tmp"));
       Obs.Report.write_string_atomic path "second";
       Alcotest.(check string) "overwrite" "second" (read_file path);
       (* an unwritable tmp location fails without touching the previous
          content *)
       (match
          Obs.Report.write_string_atomic
            (Filename.concat path "no-such-dir/f") "x"
        with
        | () -> Alcotest.fail "write into non-directory succeeded"
        | exception Sys_error _ -> ());
       Alcotest.(check string) "previous content intact" "second"
         (read_file path))

let () =
  Alcotest.run "obs"
    [ ("trace",
       [ Alcotest.test_case "disabled is transparent" `Quick
           test_trace_disabled_is_transparent;
         Alcotest.test_case "nesting" `Quick test_trace_nesting;
         Alcotest.test_case "timing monotone" `Quick
           test_trace_timing_monotone;
         Alcotest.test_case "exception safe" `Quick
           test_trace_exception_safe ]);
      ("metrics",
       [ Alcotest.test_case "counters and gauges" `Quick
           test_metrics_counters;
         Alcotest.test_case "histogram" `Quick test_metrics_histogram;
         Alcotest.test_case "sample cap" `Quick test_metrics_sample_cap;
         Alcotest.test_case "disabled no-op" `Quick
           test_metrics_disabled_noop ]);
      ("log", [ Alcotest.test_case "retention" `Quick test_log_retention ]);
      ("json",
       [ Alcotest.test_case "round trip" `Quick test_json_roundtrip;
         Alcotest.test_case "parser details" `Quick test_json_parse_details;
         Alcotest.test_case "non-finite floats" `Quick
           test_json_nonfinite_floats;
         Alcotest.test_case "strict numbers" `Quick test_json_strict_numbers;
         QCheck_alcotest.to_alcotest prop_json_float_roundtrip ]);
      ("report",
       [ Alcotest.test_case "structure and file round-trip" `Quick
           test_report_structure;
         Alcotest.test_case "atomic publication" `Quick
           test_atomic_write ]) ]
