(* Tests for the observability layer: timing spans, the metrics registry,
   the warning channel, JSON printing/parsing and report assembly. *)

let with_tracing f =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect ~finally:(fun () -> Obs.Trace.set_enabled false) f

(* --- trace ------------------------------------------------------------------ *)

let test_trace_disabled_is_transparent () =
  Obs.Trace.set_enabled false;
  Obs.Trace.reset ();
  let r = Obs.Trace.with_span "ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Obs.Trace.span_count ());
  Alcotest.(check (list reject)) "no roots" [] (Obs.Trace.roots ())

let test_trace_nesting () =
  with_tracing @@ fun () ->
  let r =
    Obs.Trace.with_span "outer" (fun () ->
        let a = Obs.Trace.with_span "inner1" (fun () -> 1) in
        let b = Obs.Trace.with_span "inner2" (fun () -> 2) in
        a + b)
  in
  Alcotest.(check int) "result" 3 r;
  match Obs.Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "root name" "outer" outer.Obs.Trace.name;
    Alcotest.(check (list string)) "children in order" [ "inner1"; "inner2" ]
      (List.map (fun s -> s.Obs.Trace.name) outer.Obs.Trace.children);
    Alcotest.(check int) "count" 3 (Obs.Trace.span_count ())
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

let test_trace_timing_monotone () =
  with_tracing @@ fun () ->
  let spin () =
    (* busy-wait so the child span has a measurable duration *)
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 1e-4 do () done
  in
  Obs.Trace.with_span "parent" (fun () ->
      Obs.Trace.with_span "child" spin);
  match Obs.Trace.roots () with
  | [ p ] ->
    let c = List.hd p.Obs.Trace.children in
    Alcotest.(check bool) "durations non-negative" true
      (p.Obs.Trace.duration_s >= 0.0 && c.Obs.Trace.duration_s > 0.0);
    Alcotest.(check bool) "child starts after parent" true
      (c.Obs.Trace.start_s >= p.Obs.Trace.start_s);
    Alcotest.(check bool) "child within parent" true
      (c.Obs.Trace.duration_s <= p.Obs.Trace.duration_s +. 1e-9)
  | _ -> Alcotest.fail "expected one root"

let test_trace_exception_safe () =
  with_tracing @@ fun () ->
  (try
     Obs.Trace.with_span "raiser" (fun () -> failwith "boom")
   with Failure _ -> ());
  let r = Obs.Trace.with_span "after" (fun () -> ()) in
  ignore r;
  Alcotest.(check (list string)) "both spans closed at top level"
    [ "raiser"; "after" ]
    (List.map (fun s -> s.Obs.Trace.name) (Obs.Trace.roots ()))

(* A frame is abandoned when a non-local exit skips its [finish] — here an
   effect handler that never resumes the continuation, so [Fun.protect]'s
   finally is skipped. The abandoned frame's *completed* children are real
   measurements and must be reparented to the nearest surviving ancestor,
   not dropped. *)
type _ Effect.t += Abandon : unit Effect.t

let test_trace_reparent_abandoned () =
  with_tracing @@ fun () ->
  Obs.Trace.with_span "outer" (fun () ->
      Effect.Deep.try_with
        (fun () ->
           Obs.Trace.with_span "abandoned" (fun () ->
               Obs.Trace.with_span "kept" (fun () -> ());
               Effect.perform Abandon))
        ()
        { effc =
            (fun (type a) (eff : a Effect.t) ->
               match eff with
               | Abandon ->
                 (* drop the continuation: "abandoned"'s finish never runs *)
                 Some
                   (fun (k : (a, _) Effect.Deep.continuation) -> ignore k)
               | _ -> None) });
  match Obs.Trace.roots () with
  | [ outer ] ->
    Alcotest.(check string) "surviving root" "outer" outer.Obs.Trace.name;
    Alcotest.(check (list string))
      "completed child of the abandoned frame reparented" [ "kept" ]
      (List.map (fun s -> s.Obs.Trace.name) outer.Obs.Trace.children);
    Alcotest.(check int) "abandoned frame itself not recorded" 2
      (Obs.Trace.span_count ())
  | roots -> Alcotest.failf "expected one root, got %d" (List.length roots)

(* --- clock ------------------------------------------------------------------ *)

let test_clock_ratchet () =
  (* fake wall clock slightly ahead of real time so the global watermark
     recovers immediately after the test *)
  let base = Unix.gettimeofday () +. 0.02 in
  let t = ref base in
  Obs.Clock.set_source (Some (fun () -> !t));
  Fun.protect
    ~finally:(fun () ->
      Obs.Clock.set_source None;
      (* let the real clock pass the fake watermark before later tests
         measure durations *)
      Unix.sleepf 0.05)
    (fun () ->
       let a = Obs.Clock.now () in
       Alcotest.(check (float 0.0)) "tracks the source" base a;
       t := base -. 10.0;
       let b = Obs.Clock.now () in
       Alcotest.(check (float 0.0)) "backwards step clamps to watermark" a b;
       t := base +. 0.01;
       let c = Obs.Clock.now () in
       Alcotest.(check (float 0.0)) "resumes once the source passes"
         (base +. 0.01) c;
       Alcotest.(check bool) "never decreases" true (b >= a && c >= b))

(* Spans timed across a backwards clock step must still have non-negative
   durations and non-decreasing start times. *)
let test_clock_spans_survive_backstep () =
  let base = Unix.gettimeofday () +. 0.02 in
  let t = ref base in
  Obs.Clock.set_source (Some (fun () -> !t));
  Fun.protect
    ~finally:(fun () ->
      Obs.Clock.set_source None;
      Unix.sleepf 0.05)
    (fun () ->
       with_tracing @@ fun () ->
       Obs.Trace.with_span "across-backstep" (fun () ->
           t := base -. 5.0 (* the wall clock steps back mid-span *));
       t := base +. 0.001;
       Obs.Trace.with_span "after" (fun () -> ());
       match Obs.Trace.roots () with
       | [ s1; s2 ] ->
         Alcotest.(check bool) "duration non-negative" true
           (s1.Obs.Trace.duration_s >= 0.0);
         Alcotest.(check bool) "starts non-decreasing" true
           (s2.Obs.Trace.start_s >= s1.Obs.Trace.start_s)
       | roots ->
         Alcotest.failf "expected two roots, got %d" (List.length roots))

(* --- metrics ---------------------------------------------------------------- *)

let test_metrics_counters () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Metrics.count "a";
  Obs.Metrics.count "a" ~by:4;
  Obs.Metrics.count "b";
  Alcotest.(check (option int)) "a" (Some 5) (Obs.Metrics.counter_value "a");
  Alcotest.(check (option int)) "b" (Some 1) (Obs.Metrics.counter_value "b");
  Alcotest.(check (option int)) "absent" None
    (Obs.Metrics.counter_value "c");
  Obs.Metrics.gauge "g" 2.5;
  Obs.Metrics.gauge "g" 7.5;
  Alcotest.(check (option (float 0.0))) "gauge keeps last" (Some 7.5)
    (Obs.Metrics.gauge_value "g")

let test_metrics_histogram () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  List.iter (Obs.Metrics.observe "h") [ 3.0; 1.0; 2.0 ];
  match Obs.Metrics.histogram "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 3 h.Obs.Metrics.count;
    Alcotest.(check (float 1e-12)) "sum" 6.0 h.Obs.Metrics.sum;
    Alcotest.(check (float 1e-12)) "min" 1.0 h.Obs.Metrics.min;
    Alcotest.(check (float 1e-12)) "max" 3.0 h.Obs.Metrics.max;
    Alcotest.(check (float 1e-12)) "last" 2.0 h.Obs.Metrics.last;
    Alcotest.(check (float 1e-12)) "mean" 2.0 (Obs.Metrics.mean h);
    Alcotest.(check (list (float 1e-12))) "samples in order"
      [ 3.0; 1.0; 2.0 ] h.Obs.Metrics.samples;
    Alcotest.(check int) "nothing dropped" 0 h.Obs.Metrics.dropped

let test_metrics_sample_cap () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let n = Obs.Metrics.max_samples + 10 in
  for i = 1 to n do
    Obs.Metrics.observe "capped" (float_of_int i)
  done;
  match Obs.Metrics.histogram "capped" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count exact past cap" n h.Obs.Metrics.count;
    Alcotest.(check int) "samples capped" Obs.Metrics.max_samples
      (List.length h.Obs.Metrics.samples);
    Alcotest.(check int) "dropped" 10 h.Obs.Metrics.dropped;
    Alcotest.(check (float 1e-12)) "max exact past cap" (float_of_int n)
      h.Obs.Metrics.max;
    Alcotest.(check (float 1e-6)) "sum exact past cap"
      (float_of_int (n * (n + 1) / 2))
      h.Obs.Metrics.sum

(* Regression: the histogram used to keep the *first* 4096 observations
   and drop the rest, so percentiles of a drifting stream described only
   its opening regime. With reservoir sampling, a 100k-observation ramp
   must yield percentiles near the true stream percentiles, and retain
   samples from the tail at all. *)
let test_metrics_reservoir_unbiased () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let n = 100_000 in
  for i = 1 to n do
    Obs.Metrics.observe "stream" (float_of_int i)
  done;
  match Obs.Metrics.histogram "stream" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count exact" n h.Obs.Metrics.count;
    Alcotest.(check int) "reservoir full" Obs.Metrics.max_samples
      (List.length h.Obs.Metrics.samples);
    Alcotest.(check int) "dropped" (n - Obs.Metrics.max_samples)
      h.Obs.Metrics.dropped;
    (* first-4096 retention would pin p50 at <= 4096 (4% of the stream);
       an unbiased reservoir of 4096 has p50 within ~800 of the true
       median at one sigma — 5000 is a >6-sigma band, and the seeded RNG
       makes the draw deterministic anyway *)
    let p50 = Obs.Metrics.percentile h 0.50 in
    let p99 = Obs.Metrics.percentile h 0.99 in
    Alcotest.(check bool) "p50 near the true median" true
      (Float.abs (p50 -. 50_000.0) < 5_000.0);
    Alcotest.(check bool) "p99 near the true p99" true
      (Float.abs (p99 -. 99_000.0) < 1_000.0);
    Alcotest.(check bool) "tail samples retained" true
      (List.exists (fun v -> v > 90_000.0) h.Obs.Metrics.samples)

(* The replacement RNG is seeded from the metric name: identical streams
   retain identical samples, run to run. *)
let test_metrics_reservoir_deterministic () =
  Obs.Metrics.set_enabled true;
  let run () =
    Obs.Metrics.reset ();
    for i = 1 to 20_000 do
      Obs.Metrics.observe "det" (float_of_int i)
    done;
    match Obs.Metrics.histogram "det" with
    | Some h -> h.Obs.Metrics.samples
    | None -> Alcotest.fail "histogram missing"
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "identical retained samples across runs" true (a = b)

let test_metrics_percentile_edges () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  List.iter (Obs.Metrics.observe "p") [ 30.0; 10.0; 40.0; 20.0 ];
  (match Obs.Metrics.histogram "p" with
   | None -> Alcotest.fail "histogram missing"
   | Some h ->
     Alcotest.(check (float 0.0)) "p0 is the min" 10.0
       (Obs.Metrics.percentile h 0.0);
     Alcotest.(check (float 0.0)) "p50 nearest-rank" 20.0
       (Obs.Metrics.percentile h 0.5);
     Alcotest.(check (float 0.0)) "p100 is the max" 40.0
       (Obs.Metrics.percentile h 1.0);
     (try
        ignore (Obs.Metrics.percentile h 1.5);
        Alcotest.fail "q outside [0,1] accepted"
      with Invalid_argument _ -> ()))

let test_metrics_percentile_degenerate () =
  (* an empty sample set (possible on a hand-built histogram, or one whose
     reservoir was emptied) yields nan, not an exception *)
  let empty =
    { Obs.Metrics.count = 0; sum = 0.0; min = Float.infinity;
      max = Float.neg_infinity; last = Float.nan; samples = []; dropped = 0 }
  in
  Alcotest.(check bool) "empty sample set is nan" true
    (Float.is_nan (Obs.Metrics.percentile empty 0.5));
  (* a single sample is every percentile *)
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Metrics.observe "single" 7.5;
  (match Obs.Metrics.histogram "single" with
   | None -> Alcotest.fail "histogram missing"
   | Some h ->
     List.iter
       (fun q ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "p%g of one sample" (q *. 100.0))
            7.5 (Obs.Metrics.percentile h q))
       [ 0.0; 0.5; 1.0 ];
     List.iter
       (fun q ->
          try
            ignore (Obs.Metrics.percentile h q);
            Alcotest.failf "q=%g accepted" q
          with Invalid_argument _ -> ())
       [ -0.01; 1.01; Float.nan ])

let test_metrics_labels_separate_series () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Metrics.count "solves" ~labels:[ ("precond", "mg") ];
  Obs.Metrics.count "solves" ~labels:[ ("precond", "jacobi") ] ~by:3;
  Obs.Metrics.count "solves";
  Alcotest.(check (option int)) "mg series" (Some 1)
    (Obs.Metrics.counter_value "solves" ~labels:[ ("precond", "mg") ]);
  Alcotest.(check (option int)) "jacobi series" (Some 3)
    (Obs.Metrics.counter_value "solves" ~labels:[ ("precond", "jacobi") ]);
  Alcotest.(check (option int)) "unlabelled series" (Some 1)
    (Obs.Metrics.counter_value "solves");
  Alcotest.(check int) "three distinct series" 3
    (List.length (Obs.Metrics.snapshot ()));
  (* label order never splits a series: recording under a permuted label
     list lands in the same canonical cell *)
  Obs.Metrics.gauge "pos" ~labels:[ ("x", "1"); ("y", "2") ] 1.0;
  Obs.Metrics.gauge "pos" ~labels:[ ("y", "2"); ("x", "1") ] 5.0;
  Alcotest.(check (option (float 0.0))) "permuted labels merge" (Some 5.0)
    (Obs.Metrics.gauge_value "pos" ~labels:[ ("x", "1"); ("y", "2") ]);
  (match
     List.find_opt (fun s -> s.Obs.Metrics.name = "pos")
       (Obs.Metrics.snapshot ())
   with
   | None -> Alcotest.fail "pos series missing from snapshot"
   | Some s ->
     Alcotest.(check (list (pair string string))) "labels canonicalized"
       [ ("x", "1"); ("y", "2") ] s.Obs.Metrics.labels);
  (* duplicate label keys are a programming error *)
  (try
     Obs.Metrics.count "dup" ~labels:[ ("k", "a"); ("k", "b") ];
     Alcotest.fail "duplicate label keys accepted"
   with Invalid_argument _ -> ());
  (* one type per metric name, across all label sets — the Prom exporter's
     single-TYPE-line invariant *)
  try
    Obs.Metrics.gauge "solves" ~labels:[ ("precond", "ssor") ] 1.0;
    Alcotest.fail "type change under a new label set accepted"
  with Invalid_argument _ -> ()

let test_metrics_disabled_noop () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Obs.Metrics.set_enabled true)
    (fun () ->
       Obs.Metrics.count "x";
       Obs.Metrics.gauge "y" 1.0;
       Obs.Metrics.observe "z" 1.0;
       Alcotest.(check int) "registry untouched" 0
         (List.length (Obs.Metrics.snapshot ())))

(* --- log -------------------------------------------------------------------- *)

let test_log_retention () =
  Obs.Log.reset ();
  let seen = ref [] in
  Obs.Log.set_handler (Some (fun m -> seen := m :: !seen));
  Fun.protect
    ~finally:(fun () -> Obs.Log.set_handler (Some Obs.Log.default_handler))
    (fun () ->
       Obs.Log.warn "first";
       Obs.Log.warn "second";
       Alcotest.(check (list string)) "retained in order"
         [ "first"; "second" ] (Obs.Log.warnings ());
       Alcotest.(check (list string)) "handler saw both"
         [ "second"; "first" ] !seen;
       Alcotest.(check int) "none dropped" 0 (Obs.Log.dropped ()))

(* --- json ------------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [ ("s", Obs.Json.String "a \"quoted\" \\ line\nwith\ttabs");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5e-3);
        ("whole", Obs.Json.Float 3.0);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l",
         Obs.Json.List
           [ Obs.Json.Int 1; Obs.Json.Obj [ ("k", Obs.Json.Bool false) ] ]) ]
  in
  List.iter
    (fun pretty ->
       match Obs.Json.of_string (Obs.Json.to_string ~pretty v) with
       | Ok v' ->
         if v' <> v then
           Alcotest.failf "round trip (pretty=%b) changed the value" pretty
       | Error e -> Alcotest.failf "round trip (pretty=%b): %s" pretty e)
    [ false; true ]

let test_json_parse_details () =
  (match Obs.Json.of_string {| {"u": "é😀", "e": []} |} with
   | Ok j ->
     Alcotest.(check (option string)) "escapes decode to UTF-8"
       (Some "\xc3\xa9\xf0\x9f\x98\x80")
       (Option.bind (Obs.Json.member "u" j) Obs.Json.to_string_opt)
   | Error e -> Alcotest.failf "parse: %s" e);
  (match Obs.Json.of_string "[1, 2" with
   | Ok _ -> Alcotest.fail "truncated input accepted"
   | Error _ -> ());
  (match Obs.Json.of_string "{} trailing" with
   | Ok _ -> Alcotest.fail "trailing garbage accepted"
   | Error _ -> ())

(* Regression (PR 5): non-finite floats used to print as [null], so a
   [Float nan] silently became [Null] across a round-trip — fatal for the
   checkpoint codec's bit-identical resume. They now print as string
   sentinels that [to_float] decodes back. *)
let test_json_nonfinite_floats () =
  Alcotest.(check string) "nan prints as sentinel" {|"nan"|}
    (Obs.Json.to_string (Obs.Json.Float Float.nan));
  Alcotest.(check string) "inf prints as sentinel" {|"inf"|}
    (Obs.Json.to_string (Obs.Json.Float Float.infinity));
  Alcotest.(check string) "-inf prints as sentinel" {|"-inf"|}
    (Obs.Json.to_string (Obs.Json.Float Float.neg_infinity));
  List.iter
    (fun v ->
       let s = Obs.Json.to_string (Obs.Json.Float v) in
       match Obs.Json.of_string s with
       | Error e -> Alcotest.failf "sentinel %s does not parse: %s" s e
       | Ok j ->
         (match Obs.Json.to_float j with
          | None -> Alcotest.failf "sentinel %s does not decode" s
          | Some v' ->
            Alcotest.(check int64) ("round trip of " ^ s)
              (Int64.bits_of_float v) (Int64.bits_of_float v')))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

(* Regression (PR 5): the old number scanner fed any number-ish character
   run to OCaml's lenient float parser, accepting non-JSON forms. *)
let test_json_strict_numbers () =
  List.iter
    (fun s ->
       match Obs.Json.of_string s with
       | Ok _ -> Alcotest.failf "non-JSON number %S accepted" s
       | Error _ -> ())
    [ "+1"; "1.e5"; ".5"; "01"; "1."; "-"; "--1"; "1e"; "1e+"; "0x10";
      "1_000"; "nan"; "infinity" ];
  List.iter
    (fun (s, expect) ->
       match Obs.Json.of_string s with
       | Ok j ->
         if j <> expect then Alcotest.failf "number %S parsed wrong" s
       | Error e -> Alcotest.failf "valid number %S rejected: %s" s e)
    [ ("0", Obs.Json.Int 0); ("-0", Obs.Json.Int 0);
      ("10", Obs.Json.Int 10); ("-120", Obs.Json.Int (-120));
      ("0.5", Obs.Json.Float 0.5); ("1e5", Obs.Json.Float 1e5);
      ("1.25e-3", Obs.Json.Float 1.25e-3); ("2E+2", Obs.Json.Float 200.0);
      ("0.0", Obs.Json.Float 0.0) ]

(* Every float — finite or not — must survive print-and-parse with its
   exact bit pattern, via [to_float] for the sentinel cases. *)
let prop_json_float_roundtrip =
  QCheck.Test.make ~name:"json float round trip is bit-exact" ~count:500
    QCheck.float (fun v ->
        let s = Obs.Json.to_string (Obs.Json.Float v) in
        match Obs.Json.of_string s with
        | Error e -> QCheck.Test.fail_reportf "reparse of %s failed: %s" s e
        | Ok j ->
          (match Obs.Json.to_float j with
           | None -> QCheck.Test.fail_reportf "%s not float-decodable" s
           | Some v' ->
             Int64.bits_of_float v = Int64.bits_of_float v'
             (* -nan collapses to the canonical nan payload; that is fine
                because the writer side only ever produces "nan" *)
             || (Float.is_nan v && Float.is_nan v')))

(* --- report ----------------------------------------------------------------- *)

let test_report_structure () =
  Obs.Report.start ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
       Obs.Trace.with_span "stage" (fun () -> Obs.Metrics.count "events");
       let j =
         Obs.Report.make ~command:"test"
           ~config:[ ("seed", Obs.Json.Int 1) ]
           ~sections:[ ("extra", Obs.Json.Bool true) ]
           ()
       in
       let keys = Obs.Json.keys j in
       List.iter
         (fun k ->
            if not (List.mem k keys) then Alcotest.failf "missing key %s" k)
         [ "schema_version"; "command"; "config"; "spans"; "metrics";
           "warnings"; "extra" ];
       (match Obs.Json.member "spans" j with
        | Some (Obs.Json.List [ span ]) ->
          Alcotest.(check (option string)) "span name" (Some "stage")
            (Option.bind (Obs.Json.member "name" span)
               Obs.Json.to_string_opt)
        | _ -> Alcotest.fail "expected exactly one root span");
       let path = Filename.temp_file "obs_report" ".json" in
       Fun.protect
         ~finally:(fun () -> Sys.remove path)
         (fun () ->
            Obs.Report.write_file path j;
            let ic = open_in_bin path in
            let text =
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            in
            match Obs.Json.of_string text with
            | Ok j' ->
              Alcotest.(check bool) "file round-trips" true (j = j')
            | Error e -> Alcotest.failf "written file unparsable: %s" e))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_atomic_write () =
  let path = Filename.temp_file "obs_atomic" ".json" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () ->
       Obs.Report.write_string_atomic path "first";
       Alcotest.(check string) "content written" "first" (read_file path);
       (* publication leaves no tmp file behind *)
       Alcotest.(check bool) "tmp removed" false
         (Sys.file_exists (path ^ ".tmp"));
       Obs.Report.write_string_atomic path "second";
       Alcotest.(check string) "overwrite" "second" (read_file path);
       (* an unwritable tmp location fails without touching the previous
          content *)
       (match
          Obs.Report.write_string_atomic
            (Filename.concat path "no-such-dir/f") "x"
        with
        | () -> Alcotest.fail "write into non-directory succeeded"
        | exception Sys_error _ -> ());
       Alcotest.(check string) "previous content intact" "second"
         (read_file path))

(* --- perfetto ---------------------------------------------------------------- *)

let test_perfetto_export_validates () =
  with_tracing @@ fun () ->
  Obs.Trace.with_span "a" (fun () ->
      Obs.Trace.add_metric "x" 1.5;
      Obs.Trace.with_span "b" (fun () -> ()));
  Obs.Trace.with_span "c" (fun () -> ());
  let j = Obs.Perfetto.of_trace () in
  (match Obs.Perfetto.validate j with
   | Error e -> Alcotest.failf "export invalid: %s" e
   | Ok stats ->
     Alcotest.(check int) "one event per span" 3 stats.Obs.Perfetto.events;
     Alcotest.(check bool) "at least the caller's track" true
       (stats.Obs.Perfetto.tids <> []));
  (* the file representation (print + reparse) must validate too, and the
     span metric must survive into the event args *)
  match Obs.Json.of_string (Obs.Json.to_string ~pretty:true j) with
  | Error e -> Alcotest.failf "export not reparsable: %s" e
  | Ok j' ->
    (match Obs.Perfetto.validate j' with
     | Error e -> Alcotest.failf "reparsed export invalid: %s" e
     | Ok _ -> ());
    let has_metric =
      match j' with
      | Obs.Json.List evs ->
        List.exists
          (fun ev ->
             match Obs.Json.member "args" ev with
             | Some args ->
               Option.bind (Obs.Json.member "x" args) Obs.Json.to_float
               = Some 1.5
             | None -> false)
          evs
      | _ -> false
    in
    Alcotest.(check bool) "span metric lands in args" true has_metric

let test_perfetto_write_file () =
  let path = Filename.temp_file "perfetto" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       with_tracing (fun () ->
           Obs.Trace.with_span "root" (fun () ->
               Obs.Trace.with_span "leaf" (fun () -> ()));
           Obs.Perfetto.write_file path);
       match Obs.Json.of_string (read_file path) with
       | Error e -> Alcotest.failf "written trace unparsable: %s" e
       | Ok j ->
         (match Obs.Perfetto.validate j with
          | Ok stats ->
            Alcotest.(check int) "events" 2 stats.Obs.Perfetto.events
          | Error e -> Alcotest.failf "written trace invalid: %s" e))

let test_perfetto_validate_rejects () =
  let ev ?(name = Obs.Json.String "s") ?(ph = Obs.Json.String "X")
      ?(ts = Obs.Json.Float 0.0) ?(dur = Obs.Json.Float 10.0)
      ?(tid = Obs.Json.Int 0) () =
    Obs.Json.Obj
      [ ("name", name); ("cat", Obs.Json.String "span"); ("ph", ph);
        ("ts", ts); ("dur", dur); ("pid", Obs.Json.Int 1); ("tid", tid) ]
  in
  let expect_error what j =
    match Obs.Perfetto.validate j with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error _ -> ()
  in
  expect_error "non-array" (Obs.Json.Obj []);
  expect_error "non-X phase" (Obs.Json.List [ ev ~ph:(Obs.Json.String "B") () ]);
  expect_error "non-string name" (Obs.Json.List [ ev ~name:(Obs.Json.Int 3) () ]);
  expect_error "negative dur"
    (Obs.Json.List [ ev ~dur:(Obs.Json.Float (-1.0)) () ]);
  expect_error "non-finite ts"
    (Obs.Json.List [ ev ~ts:(Obs.Json.Float Float.nan) () ]);
  expect_error "missing tid"
    (Obs.Json.List
       [ Obs.Json.Obj
           [ ("name", Obs.Json.String "s"); ("ph", Obs.Json.String "X");
             ("ts", Obs.Json.Float 0.0); ("dur", Obs.Json.Float 1.0) ] ]);
  (* partial overlap on one tid is rejected; the same intervals on
     different tids are independent tracks and fine *)
  let overlap tid2 =
    Obs.Json.List
      [ ev ~ts:(Obs.Json.Float 0.0) ~dur:(Obs.Json.Float 10.0) ();
        ev ~ts:(Obs.Json.Float 5.0) ~dur:(Obs.Json.Float 10.0)
          ~tid:(Obs.Json.Int tid2) () ]
  in
  expect_error "partial overlap on one tid" (overlap 0);
  (match Obs.Perfetto.validate (overlap 1) with
   | Ok stats ->
     Alcotest.(check (list int)) "two tracks" [ 0; 1 ]
       stats.Obs.Perfetto.tids
   | Error e -> Alcotest.failf "cross-tid intervals rejected: %s" e);
  (* proper nesting and disjoint spans on one tid are fine in any order *)
  match
    Obs.Perfetto.validate
      (Obs.Json.List
         [ ev ~ts:(Obs.Json.Float 2.0) ~dur:(Obs.Json.Float 3.0) ();
           ev ~ts:(Obs.Json.Float 0.0) ~dur:(Obs.Json.Float 10.0) ();
           ev ~ts:(Obs.Json.Float 12.0) ~dur:(Obs.Json.Float 1.0) () ])
  with
  | Ok stats -> Alcotest.(check int) "nested accepted" 3 stats.Obs.Perfetto.events
  | Error e -> Alcotest.failf "proper nesting rejected: %s" e

(* --- prometheus export ------------------------------------------------------ *)

let test_prom_escaping_roundtrip () =
  List.iter
    (fun s ->
       match Obs.Prom.unescape_label_value (Obs.Prom.escape_label_value s) with
       | Some s' ->
         Alcotest.(check string)
           (Printf.sprintf "round trip of %S" s) s s'
       | None ->
         Alcotest.failf "escape of %S does not unescape" s)
    [ ""; "plain"; "has \"quotes\""; "back\\slash"; "new\nline";
      "\\\"\n"; "trailing\\"; "\"\"\""; "mix \\n of \"all\"\nthree" ];
  (* escaped forms are single-line (quotes survive, but always behind a
     backslash) — safe inside the exposition format's value quotes *)
  let esc = Obs.Prom.escape_label_value "a\"b\\c\nd" in
  Alcotest.(check string) "escaped form" "a\\\"b\\\\c\\nd" esc;
  Alcotest.(check bool) "no raw newline" false (String.contains esc '\n');
  (* dangling or unknown escapes do not decode *)
  List.iter
    (fun bad ->
       Alcotest.(check (option string))
         (Printf.sprintf "invalid escape %S" bad) None
         (Obs.Prom.unescape_label_value bad))
    [ "\\"; "a\\"; "\\x"; "\\t" ]

let prop_prom_escape_roundtrip =
  QCheck.Test.make ~name:"prom label escaping round trips" ~count:500
    QCheck.string (fun s ->
        Obs.Prom.unescape_label_value (Obs.Prom.escape_label_value s)
        = Some s)

let test_prom_sanitize_names () =
  Alcotest.(check string) "dots become underscores"
    "thermal_cg_iterations" (Obs.Prom.sanitize_name "thermal.cg.iterations");
  Alcotest.(check string) "colons survive in metric names" "a:b"
    (Obs.Prom.sanitize_name "a:b");
  Alcotest.(check string) "leading digit replaced" "_2x"
    (Obs.Prom.sanitize_name "2x");
  Alcotest.(check string) "empty name" "_" (Obs.Prom.sanitize_name "");
  Alcotest.(check string) "label names exclude colons" "a_b"
    (Obs.Prom.sanitize_label_name "a:b")

let test_prom_render () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Metrics.count "flow.solves" ~labels:[ ("precond", "mg") ] ~by:2;
  Obs.Metrics.count "flow.solves" ~labels:[ ("precond", "evil\"\\\n") ];
  Obs.Metrics.gauge "peak.rise" 3.5;
  List.iter (Obs.Metrics.observe "cg.iters") [ 10.0; 20.0; 30.0 ];
  let text = Obs.Prom.to_string () in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  let count_type_lines name =
    List.length
      (List.filter
         (fun l -> l = Printf.sprintf "# TYPE %s counter" name
                   || l = Printf.sprintf "# TYPE %s gauge" name)
         lines)
  in
  Alcotest.(check bool) "labelled counter series" true
    (has "flow_solves{precond=\"mg\"} 2");
  Alcotest.(check bool) "escaped label value" true
    (has "flow_solves{precond=\"evil\\\"\\\\\\n\"} 1");
  Alcotest.(check int) "one TYPE line for flow_solves" 1
    (count_type_lines "flow_solves");
  Alcotest.(check bool) "gauge value" true (has "peak_rise 3.5");
  Alcotest.(check bool) "histogram count companion" true
    (has "cg_iters_count 3");
  Alcotest.(check bool) "histogram sum companion" true (has "cg_iters_sum 60");
  Alcotest.(check bool) "histogram median quantile" true
    (has "cg_iters{quantile=\"0.5\"} 20");
  Alcotest.(check bool) "ends with a newline" true
    (text <> "" && text.[String.length text - 1] = '\n')

(* --- ledger ------------------------------------------------------------------ *)

let test_ledger_roundtrip () =
  let path = Filename.temp_file "ledger" ".jsonl" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
       Alcotest.(check bool) "missing file is an empty ledger" true
         (Obs.Ledger.load path = Ok []);
       let r1 =
         Obs.Ledger.make_record ~timestamp_s:1700000000.25
           ~config:[ ("precond", Obs.Json.String "mg") ]
           ~phases_ms:[ ("evaluate_ms", 12.5); ("total_ms", 0.1 +. 0.2) ]
           ~cg_iterations:53 ~peak_rise_k:17.625 ~plan_hash:"abc123"
           ~command:"optimize" ~fingerprint:"mesh=40x40x9|precond=mg"
           ~outcome:"ok" ~exit_code:0 ()
       in
       let r2 =
         Obs.Ledger.make_record ~timestamp_s:1700000001.0 ~error:"boom"
           ~command:"flow" ~fingerprint:"f" ~outcome:"error" ~exit_code:1 ()
       in
       Obs.Ledger.append ~path r1;
       Obs.Ledger.append ~path r2;
       match Obs.Ledger.load path with
       | Error e -> Alcotest.failf "load: %s" e
       | Ok records ->
         Alcotest.(check int) "two records, oldest first" 2
           (List.length records);
         let l1 = List.nth records 0 and l2 = List.nth records 1 in
         Alcotest.(check string) "command" "optimize"
           (Obs.Ledger.command l1);
         Alcotest.(check string) "fingerprint" "mesh=40x40x9|precond=mg"
           (Obs.Ledger.fingerprint l1);
         Alcotest.(check int) "exit code" 1 (Obs.Ledger.exit_code l2);
         Alcotest.(check string) "outcome" "error" (Obs.Ledger.outcome l2);
         (* the exact-float codec: 0.1 +. 0.2 survives bit-for-bit *)
         (match List.assoc_opt "total_ms" (Obs.Ledger.phases_ms l1) with
          | None -> Alcotest.fail "total_ms missing"
          | Some v ->
            Alcotest.(check int64) "float round trip is bit-exact"
              (Int64.bits_of_float (0.1 +. 0.2)) (Int64.bits_of_float v));
         (match List.assoc_opt "precond" (Obs.Ledger.config_fields l1) with
          | Some (Obs.Json.String "mg") -> ()
          | _ -> Alcotest.fail "config field lost"))

let test_ledger_rejects_malformed () =
  (* an invalid record never reaches the file *)
  (try
     ignore
       (Obs.Ledger.append ~path:"/nonexistent-dir/x.jsonl"
          (Obs.Json.Int 3));
     Alcotest.fail "non-object record accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Obs.Ledger.append ~path:"/nonexistent-dir/x.jsonl"
          (Obs.Json.Obj [ ("schema_version", Obs.Json.Int 999) ]));
     Alcotest.fail "wrong schema version accepted"
   with Invalid_argument _ -> ());
  (* a corrupt line fails the whole load, with its line number *)
  let path = Filename.temp_file "ledger" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
       Obs.Ledger.append ~path
         (Obs.Ledger.make_record ~command:"c" ~fingerprint:"f" ~outcome:"ok"
            ~exit_code:0 ());
       let oc = open_out_gen [ Open_append ] 0o644 path in
       output_string oc "{not json\n";
       close_out oc;
       match Obs.Ledger.load path with
       | Ok _ -> Alcotest.fail "corrupt line accepted"
       | Error msg ->
         let contains sub =
           let n = String.length sub and m = String.length msg in
           let rec at i = i + n <= m
                          && (String.sub msg i n = sub || at (i + 1)) in
           at 0
         in
         Alcotest.(check bool) "error names line 2" true (contains "line 2"))

let test_ledger_resolve_path () =
  let with_env value f =
    let old = Sys.getenv_opt Obs.Ledger.env_var in
    (match value with
     | Some v -> Unix.putenv Obs.Ledger.env_var v
     | None -> Unix.putenv Obs.Ledger.env_var "");
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv Obs.Ledger.env_var (Option.value ~default:"" old))
      f
  in
  with_env None (fun () ->
      Alcotest.(check (option string)) "default"
        (Some Obs.Ledger.default_path)
        (Obs.Ledger.resolve_path ());
      Alcotest.(check (option string)) "explicit path wins" (Some "x.jsonl")
        (Obs.Ledger.resolve_path ~path:"x.jsonl" ());
      Alcotest.(check (option string)) "explicit none disables" None
        (Obs.Ledger.resolve_path ~path:"none" ()));
  with_env (Some "env.jsonl") (fun () ->
      Alcotest.(check (option string)) "env beats default"
        (Some "env.jsonl")
        (Obs.Ledger.resolve_path ());
      Alcotest.(check (option string)) "explicit beats env" (Some "x.jsonl")
        (Obs.Ledger.resolve_path ~path:"x.jsonl" ()));
  with_env (Some "none") (fun () ->
      Alcotest.(check (option string)) "env none disables" None
        (Obs.Ledger.resolve_path ()))

(* --- gate ----------------------------------------------------------------- *)

let check_float ?(eps = 1e-12) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

let test_gate_band () =
  (* a normal baseline: multiplicative threshold plus the measured IQR *)
  check_float "normal band" 121.5
    (Obs.Gate.allowed_ms ~threshold:0.15 ~median:100.0 ~iqr:6.5);
  (* the band never goes below the absolute floor *)
  check_float "floor value" 1.0 Obs.Gate.absolute_floor_ms

let test_gate_zero_median_floor () =
  (* regression: a 0.0 ms baseline median (timer resolution, skipped
     phase) made the allowed band exactly 0.0, so any measurable fresh
     time "regressed"; and a 0.2 ms median gated at 0.23 ms — pure
     scheduler noise. Both are now held to the 1.0 ms floor. *)
  check_float "zero median, zero IQR -> floor" Obs.Gate.absolute_floor_ms
    (Obs.Gate.allowed_ms ~threshold:0.15 ~median:0.0 ~iqr:0.0);
  check_float "near-zero median -> floor" Obs.Gate.absolute_floor_ms
    (Obs.Gate.allowed_ms ~threshold:0.15 ~median:0.2 ~iqr:0.0);
  (* zero median with a real IQR above the floor keeps the IQR headroom *)
  check_float "zero median, large IQR" 2.5
    (Obs.Gate.allowed_ms ~threshold:0.15 ~median:0.0 ~iqr:2.5);
  (* just above the floor the multiplicative band takes over *)
  Alcotest.(check bool) "band grows past the floor" true
    (Obs.Gate.allowed_ms ~threshold:0.15 ~median:2.0 ~iqr:0.0
     > Obs.Gate.absolute_floor_ms)

let () =
  Alcotest.run "obs"
    [ ("trace",
       [ Alcotest.test_case "disabled is transparent" `Quick
           test_trace_disabled_is_transparent;
         Alcotest.test_case "nesting" `Quick test_trace_nesting;
         Alcotest.test_case "timing monotone" `Quick
           test_trace_timing_monotone;
         Alcotest.test_case "exception safe" `Quick
           test_trace_exception_safe;
         Alcotest.test_case "reparent abandoned frames" `Quick
           test_trace_reparent_abandoned ]);
      ("clock",
       [ Alcotest.test_case "ratchet" `Quick test_clock_ratchet;
         Alcotest.test_case "spans survive a backwards step" `Quick
           test_clock_spans_survive_backstep ]);
      ("metrics",
       [ Alcotest.test_case "counters and gauges" `Quick
           test_metrics_counters;
         Alcotest.test_case "histogram" `Quick test_metrics_histogram;
         Alcotest.test_case "sample cap" `Quick test_metrics_sample_cap;
         Alcotest.test_case "reservoir unbiased at 100k" `Quick
           test_metrics_reservoir_unbiased;
         Alcotest.test_case "reservoir deterministic" `Quick
           test_metrics_reservoir_deterministic;
         Alcotest.test_case "percentile edges" `Quick
           test_metrics_percentile_edges;
         Alcotest.test_case "percentile degenerate inputs" `Quick
           test_metrics_percentile_degenerate;
         Alcotest.test_case "labelled series" `Quick
           test_metrics_labels_separate_series;
         Alcotest.test_case "disabled no-op" `Quick
           test_metrics_disabled_noop ]);
      ("log", [ Alcotest.test_case "retention" `Quick test_log_retention ]);
      ("json",
       [ Alcotest.test_case "round trip" `Quick test_json_roundtrip;
         Alcotest.test_case "parser details" `Quick test_json_parse_details;
         Alcotest.test_case "non-finite floats" `Quick
           test_json_nonfinite_floats;
         Alcotest.test_case "strict numbers" `Quick test_json_strict_numbers;
         QCheck_alcotest.to_alcotest prop_json_float_roundtrip ]);
      ("report",
       [ Alcotest.test_case "structure and file round-trip" `Quick
           test_report_structure;
         Alcotest.test_case "atomic publication" `Quick
           test_atomic_write ]);
      ("perfetto",
       [ Alcotest.test_case "export validates" `Quick
           test_perfetto_export_validates;
         Alcotest.test_case "write file" `Quick test_perfetto_write_file;
         Alcotest.test_case "validator rejects malformed traces" `Quick
           test_perfetto_validate_rejects ]);
      ("prom",
       [ Alcotest.test_case "label escaping round trips" `Quick
           test_prom_escaping_roundtrip;
         QCheck_alcotest.to_alcotest prop_prom_escape_roundtrip;
         Alcotest.test_case "name sanitization" `Quick
           test_prom_sanitize_names;
         Alcotest.test_case "text exposition rendering" `Quick
           test_prom_render ]);
      ("ledger",
       [ Alcotest.test_case "append/load round trip" `Quick
           test_ledger_roundtrip;
         Alcotest.test_case "rejects malformed records and lines" `Quick
           test_ledger_rejects_malformed;
         Alcotest.test_case "resolve_path precedence" `Quick
           test_ledger_resolve_path ]);
      ("gate",
       [ Alcotest.test_case "band arithmetic" `Quick test_gate_band;
         Alcotest.test_case "zero-median floor" `Quick
           test_gate_zero_median_floor ]) ]
