(* Tests for the domain pool: coverage, ordering, failure propagation,
   nesting, and the bit-identical-across-pool-sizes contract on a real
   CG solve. *)

let with_jobs n f =
  Parallel.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) f

let test_every_chunk_exactly_once () =
  with_jobs 4 (fun () ->
      let chunks = 200 in
      let hit = Array.make chunks 0 in
      let executed = Atomic.make 0 in
      Parallel.Pool.parallel_for ~chunks (fun i ->
          hit.(i) <- hit.(i) + 1;
          Atomic.incr executed);
      Alcotest.(check int) "execution count" chunks (Atomic.get executed);
      Array.iteri
        (fun i n ->
           if n <> 1 then Alcotest.failf "chunk %d executed %d times" i n)
        hit)

let test_map_preserves_order () =
  with_jobs 4 (fun () ->
      let input = List.init 101 (fun i -> i) in
      let got = Parallel.Pool.map_list input ~f:(fun i -> i * i) in
      Alcotest.(check (list int)) "squares in order"
        (List.map (fun i -> i * i) input)
        got;
      let arr = Parallel.Pool.map_array [| 5; 3; 9 |] ~f:string_of_int in
      Alcotest.(check (array string)) "array order" [| "5"; "3"; "9" |] arr)

let test_exception_propagates () =
  with_jobs 4 (fun () ->
      (match
         Parallel.Pool.parallel_for ~chunks:16 (fun i ->
             if i = 7 then failwith "chunk 7 exploded")
       with
       | () -> Alcotest.fail "exception swallowed"
       | exception Failure msg ->
         Alcotest.(check string) "original exception" "chunk 7 exploded" msg);
      (* the pool must survive a failed job *)
      let ok = Atomic.make 0 in
      Parallel.Pool.parallel_for ~chunks:8 (fun _ -> Atomic.incr ok);
      Alcotest.(check int) "pool usable after failure" 8 (Atomic.get ok))

(* Worker-failure containment: a chunk dying mid-job (here via the
   Kill_worker fault, i.e. the exact hook the fault harness uses) must
   not deadlock the pool, must surface as the structured error, and must
   leave the pool accepting new jobs. *)
let test_worker_failure_contained () =
  with_jobs 4 (fun () ->
      let survivors = Atomic.make 0 in
      (match
         Robust.Faults.with_fault Robust.Faults.Kill_worker (fun () ->
             Parallel.Pool.parallel_for ~chunks:64 (fun _ ->
                 Atomic.incr survivors))
       with
       | () -> Alcotest.fail "killed worker not reported"
       | exception Robust.Error.Error (Robust.Error.Worker_failed _) -> ());
      (* the drain stops handing out chunks after the failure, so not
         every chunk ran — but none after the join are in flight *)
      Alcotest.(check bool) "some chunks drained" true
        (Atomic.get survivors < 64);
      (* subsequent submissions succeed on the same pool *)
      let ok = Atomic.make 0 in
      Parallel.Pool.parallel_for ~chunks:32 (fun _ -> Atomic.incr ok);
      Alcotest.(check int) "pool alive after worker death" 32
        (Atomic.get ok);
      (* repeated faults keep being contained, never wedging the pool *)
      for _ = 1 to 3 do
        (match
           Robust.Faults.with_fault Robust.Faults.Kill_worker (fun () ->
               Parallel.Pool.parallel_for ~chunks:16 (fun _ -> ()))
         with
         | () -> Alcotest.fail "repeat kill not reported"
         | exception Robust.Error.Error (Robust.Error.Worker_failed _) -> ())
      done;
      let again = Atomic.make 0 in
      Parallel.Pool.parallel_for ~chunks:16 (fun _ -> Atomic.incr again);
      Alcotest.(check int) "pool alive after repeated faults" 16
        (Atomic.get again))

let test_nested_runs_inline () =
  with_jobs 4 (fun () ->
      let total = Atomic.make 0 in
      Parallel.Pool.parallel_for ~chunks:4 (fun _ ->
          (* a nested call must not deadlock on the shared pool *)
          Parallel.Pool.parallel_for ~chunks:4 (fun _ -> Atomic.incr total));
      Alcotest.(check int) "all inner chunks ran" 16 (Atomic.get total))

(* Drain-then-join: a shutdown racing an in-flight job (the serve
   drain-on-SIGTERM path) must let the job finish — every chunk exactly
   once — and must be idempotent. *)
let test_shutdown_drains_inflight () =
  with_jobs 4 (fun () ->
      let chunks = 64 in
      let hit = Array.make chunks 0 in
      let started = Atomic.make false in
      let killer =
        Domain.spawn (fun () ->
            while not (Atomic.get started) do Domain.cpu_relax () done;
            Parallel.Pool.shutdown ())
      in
      Parallel.Pool.parallel_for ~chunks (fun i ->
          Atomic.set started true;
          (* a little work so the shutdown really races the job *)
          let t0 = Unix.gettimeofday () in
          while Unix.gettimeofday () -. t0 < 1e-4 do () done;
          hit.(i) <- hit.(i) + 1);
      Domain.join killer;
      Array.iteri
        (fun i n ->
           if n <> 1 then Alcotest.failf "chunk %d executed %d times" i n)
        hit;
      (* idempotent, including back to back with no pool alive *)
      Parallel.Pool.shutdown ();
      Parallel.Pool.shutdown ();
      (* and the next job respawns the workers *)
      let ok = Atomic.make 0 in
      Parallel.Pool.parallel_for ~chunks:16 (fun _ -> Atomic.incr ok);
      Alcotest.(check int) "pool usable after shutdown" 16 (Atomic.get ok))

let test_with_pool () =
  let n = Atomic.make 0 in
  let r =
    Parallel.Pool.with_pool ~jobs:3 (fun () ->
        Alcotest.(check int) "jobs applied" 3 (Parallel.Pool.jobs ());
        Parallel.Pool.parallel_for ~chunks:8 (fun _ -> Atomic.incr n);
        "done")
  in
  Alcotest.(check string) "result returned" "done" r;
  Alcotest.(check int) "all chunks ran" 8 (Atomic.get n);
  (* workers were joined on exit, but the pool stays usable *)
  let again = Atomic.make 0 in
  Parallel.Pool.parallel_for ~chunks:8 (fun _ -> Atomic.incr again);
  Alcotest.(check int) "usable after with_pool" 8 (Atomic.get again);
  (* the exception path shuts down too and re-raises the original *)
  (match Parallel.Pool.with_pool (fun () -> failwith "boom") with
   | _ -> Alcotest.fail "exception swallowed"
   | exception Failure msg ->
     Alcotest.(check string) "exception propagated" "boom" msg);
  Parallel.Pool.set_jobs 1

let test_set_jobs_validation () =
  (match Parallel.Pool.set_jobs 0 with
   | _ -> Alcotest.fail "jobs=0 accepted"
   | exception Invalid_argument _ -> ());
  (match Parallel.Pool.set_jobs (-3) with
   | _ -> Alcotest.fail "negative jobs accepted"
   | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "default >= 1" true (Parallel.Pool.default_jobs () >= 1)

(* A diagonally dominant tridiagonal system large enough to cross the
   solver's parallel threshold, so the pooled SpMV / dot / axpy paths
   really execute. The solve must be bit-identical for any pool size. *)
let test_cg_bit_identical_across_jobs () =
  let n = 250_000 in
  let b = Thermal.Sparse.builder ~n in
  for i = 0 to n - 1 do
    Thermal.Sparse.add b i i 4.0;
    if i > 0 then Thermal.Sparse.add b i (i - 1) (-1.0);
    if i < n - 1 then Thermal.Sparse.add b i (i + 1) (-1.0)
  done;
  let m = Thermal.Sparse.of_builder b in
  let rhs = Array.init n (fun i -> sin (float_of_int (i mod 997))) in
  Parallel.Pool.set_jobs 1;
  let seq = Thermal.Cg.solve m ~b:rhs () in
  Alcotest.(check bool) "sequential converged" true seq.Thermal.Cg.converged;
  with_jobs 4 (fun () ->
      let par = Thermal.Cg.solve m ~b:rhs () in
      Alcotest.(check bool) "parallel converged" true par.Thermal.Cg.converged;
      Alcotest.(check int) "same iteration count" seq.Thermal.Cg.iterations
        par.Thermal.Cg.iterations;
      (* structural equality on float arrays is bitwise equality of every
         element — the determinism contract, not an approximation *)
      Alcotest.(check bool) "bit-identical solution" true
        (par.Thermal.Cg.x = seq.Thermal.Cg.x);
      (* and the parallel path really went through the pool *)
      match Obs.Metrics.counter_value "parallel.invocations" with
      | Some k when k > 0 -> ()
      | _ -> Alcotest.fail "no pooled invocations recorded")

(* The multigrid-preconditioned solve shares the pooled SpMV with plain
   CG; its transfers and smoothers are sequential by design. The whole
   solve must stay bit-identical for any pool size. *)
let test_mg_bit_identical_across_jobs () =
  Thermal.Mesh.cache_clear ();
  let nx = 40 in
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let power = Geo.Grid.create ~nx ~ny:nx ~extent in
  Geo.Grid.iteri power ~f:(fun ~ix ~iy _ ->
      Geo.Grid.set power ~ix ~iy
        (1e-4 *. (1.0 +. sin (float_of_int ((ix * nx) + iy)))));
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx; ny = nx } in
  let problem = Thermal.Mesh.build cfg ~power in
  let h = Thermal.Mesh.multigrid problem in
  Parallel.Pool.set_jobs 1;
  let seq = Thermal.Mesh.solve ~precond:(Thermal.Cg.Multigrid h) problem in
  with_jobs 4 (fun () ->
      let par =
        Thermal.Mesh.solve ~precond:(Thermal.Cg.Multigrid h) problem
      in
      Alcotest.(check int) "same iteration count"
        seq.Thermal.Mesh.cg_iterations par.Thermal.Mesh.cg_iterations;
      Alcotest.(check bool) "bit-identical solution" true
        (par.Thermal.Mesh.temp = seq.Thermal.Mesh.temp))

(* Spans opened inside pooled chunks must land in the worker domains' own
   recorders and surface in the merged export under distinct tids — the
   contract behind thermoplace --perfetto --jobs N. *)
let test_cross_domain_trace () =
  Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Trace.set_enabled false;
      Obs.Trace.reset ())
    (fun () ->
       with_jobs 4 (fun () ->
           Parallel.Pool.parallel_for ~chunks:64 (fun i ->
               Obs.Trace.with_span "chunk" (fun () ->
                   (* a little work so every worker claims some chunks *)
                   let t0 = Unix.gettimeofday () in
                   while Unix.gettimeofday () -. t0 < 2e-4 do () done;
                   ignore i)));
       let groups = Obs.Trace.all_roots () in
       Alcotest.(check bool) "spans recorded on >= 2 domains" true
         (List.length groups >= 2);
       let total =
         List.fold_left
           (fun acc (_, roots) -> acc + List.length roots)
           0 groups
       in
       Alcotest.(check int) "no chunk span lost" 64 total;
       List.iter
         (fun (tid, roots) ->
            List.iter
              (fun (s : Obs.Trace.span) ->
                 Alcotest.(check int) "span tid matches its group" tid
                   s.Obs.Trace.tid)
              roots)
         groups;
       (* tids are sorted and distinct in the merged view *)
       let tids = List.map fst groups in
       Alcotest.(check bool) "tids sorted distinct" true
         (tids = List.sort_uniq compare tids);
       (* and the Perfetto export of the same forest validates with the
          same track set *)
       match Obs.Perfetto.validate (Obs.Perfetto.of_trace ()) with
       | Ok stats ->
         Alcotest.(check (list int)) "export tracks match recorders" tids
           stats.Obs.Perfetto.tids;
         Alcotest.(check int) "export event count" 64
           stats.Obs.Perfetto.events
       | Error e -> Alcotest.failf "perfetto export invalid: %s" e)

let test_mul_par_matches_mul () =
  let n = 4096 in
  let b = Thermal.Sparse.builder ~n in
  for i = 0 to n - 1 do
    Thermal.Sparse.add b i i 3.0;
    if i > 1 then Thermal.Sparse.add b i (i - 2) 0.5;
    if i < n - 2 then Thermal.Sparse.add b i (i + 2) 0.5
  done;
  let m = Thermal.Sparse.of_builder b in
  let x = Array.init n (fun i -> cos (float_of_int i /. 11.0)) in
  let y1 = Array.make n 0.0 and y2 = Array.make n 0.0 in
  Thermal.Sparse.mul m x y1;
  with_jobs 4 (fun () -> Thermal.Sparse.mul_par m x y2);
  Alcotest.(check bool) "mul_par bit-identical to mul" true (y1 = y2)

let () =
  Obs.Metrics.set_enabled true;
  Alcotest.run "parallel"
    [ ("pool",
       [ Alcotest.test_case "every chunk exactly once" `Quick
           test_every_chunk_exactly_once;
         Alcotest.test_case "map preserves order" `Quick
           test_map_preserves_order;
         Alcotest.test_case "exception propagates" `Quick
           test_exception_propagates;
         Alcotest.test_case "worker failure contained" `Quick
           test_worker_failure_contained;
         Alcotest.test_case "nested runs inline" `Quick
           test_nested_runs_inline;
         Alcotest.test_case "shutdown drains in-flight job" `Quick
           test_shutdown_drains_inflight;
         Alcotest.test_case "with_pool scopes the workers" `Quick
           test_with_pool;
         Alcotest.test_case "set_jobs validation" `Quick
           test_set_jobs_validation ]);
      ("determinism",
       [ Alcotest.test_case "cg bit-identical across jobs" `Quick
           test_cg_bit_identical_across_jobs;
         Alcotest.test_case "mg bit-identical across jobs" `Quick
           test_mg_bit_identical_across_jobs;
         Alcotest.test_case "mul_par matches mul" `Quick
           test_mul_par_matches_mul ]);
      ("tracing",
       [ Alcotest.test_case "cross-domain spans merge by tid" `Quick
           test_cross_domain_trace ]) ]
