(* Tests for the paper's contribution: hotspot detection and the three
   whitespace-allocation techniques. *)

module P = Place.Placement
module FP = Place.Floorplan

let tech = Celllib.Tech.default_65nm

(* A small placed benchmark shared by the technique tests. *)
let flow =
  lazy
    (let bench = Netgen.Benchmark.small () in
     Postplace.Flow.prepare ~seed:11 ~sim_cycles:200
       bench (Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ]))

(* --- hotspot detection ------------------------------------------------------ *)

let crafted_thermal ~hot_tiles =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:80.0 ~h:80.0 in
  let g = Geo.Grid.create ~nx:8 ~ny:8 ~extent in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy _ -> Geo.Grid.set g ~ix ~iy 1.0);
  List.iter (fun (ix, iy) -> Geo.Grid.set g ~ix ~iy 10.0) hot_tiles;
  g

let any_placement () = (Lazy.force flow).Postplace.Flow.base_placement

let test_detect_single_cluster () =
  let g = crafted_thermal ~hot_tiles:[ (2, 2); (3, 2); (2, 3) ] in
  let hs =
    Postplace.Hotspot.detect ~thermal:g ~placement:(any_placement ())
      ~threshold_frac:0.8 ()
  in
  Alcotest.(check int) "one cluster" 1 (List.length hs);
  let h = List.hd hs in
  Alcotest.(check int) "three tiles" 3 (Postplace.Hotspot.tile_count h);
  Alcotest.(check (float 1e-9)) "peak" 10.0 h.Postplace.Hotspot.peak_rise_k;
  (* bounding rect covers tiles (2..3, 2..3) = 20..40 um in both axes *)
  Alcotest.(check (float 1e-6)) "rect lx" 20.0 h.Postplace.Hotspot.rect.Geo.Rect.lx;
  Alcotest.(check (float 1e-6)) "rect hx" 40.0 h.Postplace.Hotspot.rect.Geo.Rect.hx

let test_detect_two_clusters_sorted () =
  let g = crafted_thermal ~hot_tiles:[ (1, 1); (6, 6) ] in
  (* make the second cluster hotter *)
  Geo.Grid.set g ~ix:6 ~iy:6 20.0;
  let hs =
    Postplace.Hotspot.detect ~thermal:g ~placement:(any_placement ())
      ~threshold_frac:0.4 ()
  in
  Alcotest.(check int) "two clusters" 2 (List.length hs);
  (match hs with
   | first :: second :: _ ->
     Alcotest.(check bool) "sorted hottest first" true
       (first.Postplace.Hotspot.peak_rise_k
        > second.Postplace.Hotspot.peak_rise_k)
   | _ -> Alcotest.fail "unexpected")

let test_detect_diagonal_not_connected () =
  let g = crafted_thermal ~hot_tiles:[ (2, 2); (3, 3) ] in
  let hs =
    Postplace.Hotspot.detect ~thermal:g ~placement:(any_placement ())
      ~threshold_frac:0.8 ()
  in
  Alcotest.(check int) "diagonal tiles form two clusters" 2 (List.length hs)

let test_detect_threshold_validation () =
  let g = crafted_thermal ~hot_tiles:[ (0, 0) ] in
  (match
     Postplace.Hotspot.detect ~thermal:g ~placement:(any_placement ())
       ~threshold_frac:1.5 ()
   with
   | _ -> Alcotest.fail "threshold > 1 accepted"
   | exception Invalid_argument _ -> ())

let test_detect_flat_map_no_hotspots () =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:80.0 ~h:80.0 in
  let g = Geo.Grid.create ~nx:8 ~ny:8 ~extent in
  let hs =
    Postplace.Hotspot.detect ~thermal:g ~placement:(any_placement ()) ()
  in
  Alcotest.(check int) "cold die" 0 (List.length hs)

let test_span_rows_and_wide () =
  let fl = Lazy.force flow in
  let fp = fl.Postplace.Flow.base_placement.P.fp in
  let h =
    { Postplace.Hotspot.rect =
        Geo.Rect.of_corner ~x:0.0
          ~y:(FP.row_y fp 2)
          ~w:(Geo.Rect.width fp.FP.core)
          ~h:(2.0 *. tech.Celllib.Tech.row_height_um);
      tiles = []; peak_rise_k = 1.0; cells = [] }
  in
  Alcotest.(check (pair int int)) "row span" (2, 3)
    (Postplace.Hotspot.span_rows fp h);
  Alcotest.(check bool) "full-width hotspot is wide" true
    (Postplace.Hotspot.is_wide fp h)

let test_spans_off_core_rect () =
  let fl = Lazy.force flow in
  let fp = fl.Postplace.Flow.base_placement.P.fp in
  let rh = tech.Celllib.Tech.row_height_um in
  let core = fp.FP.core in
  let mk ~y ~h =
    { Postplace.Hotspot.rect =
        Geo.Rect.of_corner ~x:core.Geo.Rect.lx ~y ~w:(Geo.Rect.width core)
          ~h;
      tiles = []; peak_rise_k = 1.0; cells = [] }
  in
  (* a rect fully below the core must yield an empty span, not (0, 0):
     int_of_float used to truncate the negative offset toward zero and
     claim the hotspot sat on the first row *)
  let below = mk ~y:(core.Geo.Rect.ly -. (2.0 *. rh)) ~h:(1.5 *. rh) in
  let lo, hi = Postplace.Hotspot.span_rows fp below in
  Alcotest.(check bool)
    (Printf.sprintf "off-core span (%d, %d) is empty" lo hi)
    true (lo > hi);
  (* straddling the bottom edge clamps to the first row *)
  let straddle = mk ~y:(core.Geo.Rect.ly -. rh) ~h:(1.5 *. rh) in
  Alcotest.(check (pair int int)) "straddling rect clamps" (0, 0)
    (Postplace.Hotspot.span_rows fp straddle);
  (* ERI driven only by an off-core hotspot inserts nothing instead of
     dumping the whole budget at row 0 *)
  let r =
    Postplace.Technique.empty_row_insertion
      fl.Postplace.Flow.base_placement ~hotspots:[ below ] ~rows:4
  in
  Alcotest.(check (list int)) "no rows inserted" []
    r.Postplace.Technique.inserted_after

(* --- ERI --------------------------------------------------------------------- *)

let base_eval =
  lazy
    (let fl = Lazy.force flow in
     Postplace.Flow.evaluate fl fl.Postplace.Flow.base_placement)

let test_eri_geometry () =
  let fl = Lazy.force flow in
  let ev = Lazy.force base_eval in
  let base = fl.Postplace.Flow.base_placement in
  let r = Postplace.Flow.apply_eri fl ~base:ev ~rows:4 in
  let pl = r.Postplace.Technique.eri_placement in
  Alcotest.(check int) "rows inserted" 4
    (List.length r.Postplace.Technique.inserted_after);
  Alcotest.(check int) "floorplan grew" (base.P.fp.FP.num_rows + 4)
    pl.P.fp.FP.num_rows;
  Alcotest.(check (float 1e-9)) "width unchanged"
    (Geo.Rect.width base.P.fp.FP.core)
    (Geo.Rect.width pl.P.fp.FP.core);
  Alcotest.(check int) "no placement violations" 0
    (List.length (P.validate pl))

let test_eri_inserted_rows_empty () =
  let fl = Lazy.force flow in
  let ev = Lazy.force base_eval in
  let r = Postplace.Flow.apply_eri fl ~base:ev ~rows:3 in
  let pl = r.Postplace.Technique.eri_placement in
  let members = P.row_members pl in
  (* the new empty rows sit right above each insertion point *)
  let after = List.sort compare r.Postplace.Technique.inserted_after in
  List.iteri
    (fun k a ->
       (* after shifting, the empty row index is a + (inserted below) + 1 *)
       let empty_row = a + k + 1 in
       Alcotest.(check (list int))
         (Printf.sprintf "row %d empty" empty_row)
         [] members.(empty_row))
    after

let test_eri_preserves_cell_sites () =
  let fl = Lazy.force flow in
  let ev = Lazy.force base_eval in
  let base = fl.Postplace.Flow.base_placement in
  let r = Postplace.Flow.apply_eri fl ~base:ev ~rows:5 in
  let pl = r.Postplace.Technique.eri_placement in
  Netlist.Types.iter_cells pl.P.nl ~f:(fun cid _ ->
      Alcotest.(check int) "site unchanged" base.P.locs.(cid).P.site
        pl.P.locs.(cid).P.site;
      Alcotest.(check bool) "row only moves up" true
        (pl.P.locs.(cid).P.row >= base.P.locs.(cid).P.row))

let test_eri_zero_rows_identity () =
  let fl = Lazy.force flow in
  let ev = Lazy.force base_eval in
  let r = Postplace.Flow.apply_eri fl ~base:ev ~rows:0 in
  Alcotest.(check (list int)) "no insertions" []
    r.Postplace.Technique.inserted_after;
  Alcotest.(check bool) "same placement" true
    (r.Postplace.Technique.eri_placement == fl.Postplace.Flow.base_placement)

let test_eri_rejects_negative () =
  let fl = Lazy.force flow in
  let ev = Lazy.force base_eval in
  (match Postplace.Flow.apply_eri fl ~base:ev ~rows:(-1) with
   | _ -> Alcotest.fail "negative rows accepted"
   | exception Invalid_argument _ -> ())

let test_eri_overhead_matches_rows () =
  let fl = Lazy.force flow in
  let ev = Lazy.force base_eval in
  let base = fl.Postplace.Flow.base_placement in
  let rows = 6 in
  let r = Postplace.Flow.apply_eri fl ~base:ev ~rows in
  let want =
    100.0 *. float_of_int rows /. float_of_int base.P.fp.FP.num_rows
  in
  let got =
    Postplace.Technique.area_overhead_pct ~base
      r.Postplace.Technique.eri_placement
  in
  if Float.abs (got -. want) > 0.5 then
    Alcotest.failf "overhead %.2f%% != rows/base %.2f%%" got want

(* --- Default (uniform slack) -------------------------------------------------- *)

let test_default_utilization_and_legality () =
  let fl = Lazy.force flow in
  let pl = Postplace.Flow.apply_default fl ~utilization:0.6 in
  let u = P.utilization pl in
  if Float.abs (u -. 0.6) > 0.05 then
    Alcotest.failf "utilization %.3f != 0.6" u;
  Alcotest.(check int) "legal" 0 (List.length (P.validate pl))

let test_default_overhead_scaling () =
  let fl = Lazy.force flow in
  let base = fl.Postplace.Flow.base_placement in
  let u0 = fl.Postplace.Flow.base_utilization in
  let pl = Postplace.Flow.apply_default fl ~utilization:(u0 /. 1.25) in
  let overhead = Postplace.Technique.area_overhead_pct ~base pl in
  (* relaxing utilization by 25% grows the core by ~25% *)
  if Float.abs (overhead -. 25.0) > 4.0 then
    Alcotest.failf "overhead %.1f%% != ~25%%" overhead

(* --- HW ------------------------------------------------------------------------ *)

(* a compact hotspot: detect at a high threshold so the cluster is small
   enough for the wrapper to be feasible on the tiny test die *)
let compact_hotspot ev pl =
  Postplace.Hotspot.detect ~thermal:ev.Postplace.Flow.thermal_map
    ~placement:pl ~threshold_frac:0.95 ()

let test_hw_legality_and_hot_cells_inside () =
  let fl = Lazy.force flow in
  let pl = Postplace.Flow.apply_default fl ~utilization:0.6 in
  let ev = Postplace.Flow.evaluate fl pl in
  (match compact_hotspot ev pl with
   | [] -> Alcotest.fail "no hotspot detected on default placement"
   | h :: _ ->
     let pl' =
       Postplace.Technique.hotspot_wrapper pl ~hotspots:[ h ]
         ~max_hotspot_tiles:10000 ()
     in
     Alcotest.(check int) "legal after wrapper" 0
       (List.length (P.validate pl'));
     (* hot cells now sit inside the (inflated) hotspot rect *)
     let wrapper =
       Geo.Rect.inflate h.Postplace.Hotspot.rect
         (2.0 *. tech.Celllib.Tech.row_height_um)
     in
     List.iter
       (fun cid ->
          let x, y = P.cell_center pl' cid in
          if not (Geo.Rect.contains wrapper ~x ~y) then
            Alcotest.failf "hot cell %d escaped the wrapper" cid)
       h.Postplace.Hotspot.cells)

let test_hw_skips_large_hotspots () =
  let fl = Lazy.force flow in
  let pl = Postplace.Flow.apply_default fl ~utilization:0.6 in
  let ev = Postplace.Flow.evaluate fl pl in
  (match ev.Postplace.Flow.hotspots with
   | [] -> Alcotest.fail "no hotspot"
   | h :: _ ->
     let pl' =
       Postplace.Technique.hotspot_wrapper pl ~hotspots:[ h ]
         ~max_hotspot_tiles:0 ()
     in
     (* nothing moved *)
     Alcotest.(check bool) "identity when all hotspots too large" true
       (pl'.P.locs = pl.P.locs))

let test_hw_reduces_local_density () =
  let fl = Lazy.force flow in
  let pl = Postplace.Flow.apply_default fl ~utilization:0.6 in
  let ev = Postplace.Flow.evaluate fl pl in
  (match compact_hotspot ev pl with
   | [] -> Alcotest.fail "no hotspot"
   | h :: _ ->
     let pl' =
       Postplace.Technique.hotspot_wrapper pl ~hotspots:[ h ]
         ~max_hotspot_tiles:10000 ()
     in
     let density p =
       let rect = h.Postplace.Hotspot.rect in
       Netlist.Types.fold_cells p.P.nl ~init:0.0 ~f:(fun acc cid _ ->
           acc +. Geo.Rect.overlap_area rect (P.cell_rect p cid))
     in
     let before = density pl and after = density pl' in
     Alcotest.(check bool)
       (Printf.sprintf "cell area in hotspot %.0f -> %.0f" before after)
       true (after <= before))

let test_wrapper_risk_assessment () =
  let fl = Lazy.force flow in
  let pl = Postplace.Flow.apply_default fl ~utilization:0.6 in
  let ev = Postplace.Flow.evaluate fl pl in
  (match compact_hotspot ev pl with
   | [] -> Alcotest.fail "no hotspot"
   | h :: _ ->
     let risk =
       Postplace.Technique.assess_wrapper pl
         ~per_cell_w:fl.Postplace.Flow.per_cell_w ~hotspot:h ~margin_um:4.0
     in
     Alcotest.(check bool) "densities non-negative" true
       (risk.Postplace.Technique.hotspot_density_w_um2 >= 0.0
        && risk.Postplace.Technique.flank_density_before_w_um2 >= 0.0);
     Alcotest.(check bool) "eviction can only raise flank density" true
       (risk.Postplace.Technique.flank_density_after_w_um2
        >= risk.Postplace.Technique.flank_density_before_w_um2 -. 1e-12);
     (* a real hotspot is denser than its surroundings *)
     Alcotest.(check bool) "hotspot denser than flanks" true
       (risk.Postplace.Technique.hotspot_density_w_um2
        > risk.Postplace.Technique.flank_density_before_w_um2))

let test_wrapper_skip_risky_is_safe () =
  let fl = Lazy.force flow in
  let pl = Postplace.Flow.apply_default fl ~utilization:0.6 in
  let ev = Postplace.Flow.evaluate fl pl in
  let hs =
    match compact_hotspot ev pl with [] -> [] | h :: _ -> [ h ]
  in
  let pl' =
    Postplace.Technique.hotspot_wrapper pl ~hotspots:hs
      ~max_hotspot_tiles:10000
      ~skip_risky:fl.Postplace.Flow.per_cell_w ()
  in
  Alcotest.(check int) "legal with risk filter" 0
    (List.length (P.validate pl'))

(* --- area accounting ------------------------------------------------------------ *)

let test_area_overhead_pct () =
  let fl = Lazy.force flow in
  let base = fl.Postplace.Flow.base_placement in
  Alcotest.(check (float 1e-9)) "self overhead zero" 0.0
    (Postplace.Technique.area_overhead_pct ~base base)

(* --- flow ------------------------------------------------------------------------ *)

let test_flow_evaluation_sane () =
  let ev = Lazy.force base_eval in
  Alcotest.(check bool) "positive peak" true
    (ev.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k > 0.0);
  Alcotest.(check bool) "positive critical path" true
    (ev.Postplace.Flow.timing.Sta.Timing.critical_ps > 0.0);
  Alcotest.(check bool) "power map not empty" true
    (Geo.Grid.total ev.Postplace.Flow.power_map > 0.0);
  Alcotest.(check bool) "thermal map matches metrics" true
    (Geo.Grid.max_value ev.Postplace.Flow.thermal_map
     = ev.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k)

let test_flow_deterministic () =
  let bench = Netgen.Benchmark.small () in
  let w = Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ] in
  let f1 = Postplace.Flow.prepare ~seed:21 ~sim_cycles:100 bench w in
  let f2 = Postplace.Flow.prepare ~seed:21 ~sim_cycles:100 bench w in
  let e1 = Postplace.Flow.evaluate f1 f1.Postplace.Flow.base_placement in
  let e2 = Postplace.Flow.evaluate f2 f2.Postplace.Flow.base_placement in
  Alcotest.(check (float 1e-12)) "same seed, same peak"
    e1.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k
    e2.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k

let test_flow_seed_changes_activity () =
  let bench = Netgen.Benchmark.small () in
  let w = Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ] in
  let f1 = Postplace.Flow.prepare ~seed:1 ~sim_cycles:100 bench w in
  let f2 = Postplace.Flow.prepare ~seed:2 ~sim_cycles:100 bench w in
  Alcotest.(check bool) "different seeds, different activity" true
    (f1.Postplace.Flow.activity.Logicsim.Activity.toggle_rate
     <> f2.Postplace.Flow.activity.Logicsim.Activity.toggle_rate)

(* --- row-insertion primitive ------------------------------------------------ *)

let test_apply_row_insertions_mapping () =
  let fl = Lazy.force flow in
  let base = fl.Postplace.Flow.base_placement in
  let r = Postplace.Technique.apply_row_insertions base [ 1; 1; 3 ] in
  let pl = r.Postplace.Technique.eri_placement in
  Alcotest.(check int) "three more rows" (base.P.fp.FP.num_rows + 3)
    pl.P.fp.FP.num_rows;
  (* rows <=1 stay; rows 2..3 shift by 2; rows >3 shift by 3 *)
  Netlist.Types.iter_cells pl.P.nl ~f:(fun cid _ ->
      let old_row = base.P.locs.(cid).P.row in
      let expected =
        if old_row <= 1 then old_row
        else if old_row <= 3 then old_row + 2
        else old_row + 3
      in
      Alcotest.(check int) "shift" expected pl.P.locs.(cid).P.row);
  Alcotest.(check int) "legal" 0 (List.length (P.validate pl))

let test_clustered_style_contiguous () =
  let ev = Lazy.force base_eval in
  let r =
    Postplace.Technique.empty_row_insertion ~style:`Clustered
      ev.Postplace.Flow.placement ~hotspots:ev.Postplace.Flow.hotspots
      ~rows:4
  in
  (* all four insertions land at the same spot *)
  (match List.sort_uniq compare r.Postplace.Technique.inserted_after with
   | [ _ ] -> ()
   | other ->
     Alcotest.failf "expected one clustered position, got %d"
       (List.length other));
  Alcotest.(check int) "legal" 0
    (List.length (P.validate r.Postplace.Technique.eri_placement))

(* --- electrothermal ------------------------------------------------------------- *)

let test_electrothermal_feedback () =
  let fl = Lazy.force flow in
  let r =
    Postplace.Electrothermal.evaluate fl fl.Postplace.Flow.base_placement ()
  in
  Alcotest.(check bool) "converged" true r.Postplace.Electrothermal.converged;
  Alcotest.(check bool) "feedback raises the peak" true
    (r.Postplace.Electrothermal.metrics.Thermal.Metrics.peak_rise_k
     >= r.Postplace.Electrothermal.open_loop_peak_k);
  Alcotest.(check bool) "leakage grows with temperature" true
    (r.Postplace.Electrothermal.leakage_w
     > r.Postplace.Electrothermal.nominal_leakage_w)

let test_leakage_scaling_formula () =
  let tech = Celllib.Tech.default_65nm in
  let nominal = 1.0e-6 in
  Alcotest.(check (float 1e-15)) "no rise, nominal" nominal
    (Power.Model.leakage_at_rise tech ~nominal_w:nominal ~rise_k:0.0);
  Alcotest.(check (float 1e-12)) "doubling point"
    (2.0 *. nominal)
    (Power.Model.leakage_at_rise tech ~nominal_w:nominal
       ~rise_k:tech.Celllib.Tech.leakage_doubling_k)

(* --- optimizer -------------------------------------------------------------------- *)

let test_optimizer_budget_and_legality () =
  let fl = Lazy.force flow in
  let r = Postplace.Optimizer.greedy_rows fl ~rows:3 ~chunk:2 ~stride:3 () in
  Alcotest.(check int) "budget respected" 3
    (List.length r.Postplace.Optimizer.plan.Postplace.Technique.inserted_after);
  Alcotest.(check int) "legal" 0
    (List.length
       (P.validate
          r.Postplace.Optimizer.plan.Postplace.Technique.eri_placement));
  Alcotest.(check bool) "did some evaluations" true
    (r.Postplace.Optimizer.evaluations > 0)

let test_optimizer_reduces_peak () =
  let fl = Lazy.force flow in
  let base_peak =
    Postplace.Optimizer.evaluate_plan fl ~after:[] ~nx:16
  in
  let r = Postplace.Optimizer.greedy_rows fl ~rows:3 ~coarse_nx:16 () in
  Alcotest.(check bool) "optimizer lowers the coarse peak" true
    (r.Postplace.Optimizer.predicted_peak_k < base_peak)

let test_optimizer_validation () =
  let fl = Lazy.force flow in
  (match Postplace.Optimizer.greedy_rows fl ~rows:0 () with
   | _ -> Alcotest.fail "rows=0 accepted"
   | exception Invalid_argument _ -> ())

let test_optimizer_fft_screening_parity () =
  let fl = Lazy.force flow in
  Parallel.Pool.set_jobs 1;
  let run screen =
    Thermal.Mesh.cache_clear ();
    Postplace.Optimizer.greedy_rows
      { fl with Postplace.Flow.screen }
      ~rows:4 ~chunk:2 ~stride:2 ~coarse_nx:16 ()
  in
  let ex = run Postplace.Flow.Screen_exact in
  let ff = run Postplace.Flow.Screen_fft in
  Alcotest.(check (list int)) "fft tier picks the exact tier's plan"
    ex.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
    ff.Postplace.Optimizer.plan.Postplace.Technique.inserted_after;
  (* bit-identical: leader solves use exactly the exact tier's inputs *)
  Alcotest.(check bool) "same predicted peak" true
    (ex.Postplace.Optimizer.predicted_peak_k
     = ff.Postplace.Optimizer.predicted_peak_k);
  Alcotest.(check int) "exact tier never blurs" 0
    ex.Postplace.Optimizer.blur_evaluations;
  Alcotest.(check bool) "fft tier screened every candidate" true
    (ff.Postplace.Optimizer.blur_evaluations > 0);
  Alcotest.(check bool) "fft tier spends fewer exact solves" true
    (ff.Postplace.Optimizer.evaluations
     < ex.Postplace.Optimizer.evaluations)

let test_optimizer_fault_forces_exact_tier () =
  let fl = Lazy.force flow in
  Parallel.Pool.set_jobs 1;
  Thermal.Mesh.cache_clear ();
  (* Screen_auto with any armed fault must fall back to the exact tier:
     injected faults have to reach the solve path they target *)
  let r =
    Robust.Faults.with_fault Robust.Faults.Stale_mesh_cache (fun () ->
        Postplace.Optimizer.greedy_rows
          { fl with Postplace.Flow.screen = Postplace.Flow.Screen_auto }
          ~rows:2 ~chunk:2 ~stride:2 ~coarse_nx:16 ())
  in
  Alcotest.(check int) "auto tier does not blur under armed faults" 0
    r.Postplace.Optimizer.blur_evaluations

(* --- gradient guide ----------------------------------------------------------------- *)

let test_flow_sensitivity_smoke () =
  let fl = Lazy.force flow in
  let adj =
    Postplace.Flow.sensitivity fl fl.Postplace.Flow.base_placement
  in
  let peak = Geo.Grid.max_value adj.Thermal.Adjoint.sensitivity in
  Alcotest.(check bool) "positive peak sensitivity" true (peak > 0.0);
  (* log-sum-exp upper-bounds the hard max *)
  Alcotest.(check bool) "smoothed peak at or above hard peak" true
    (adj.Thermal.Adjoint.smoothed_peak_k
     >= adj.Thermal.Adjoint.peak_rise_k -. 1e-9)

let test_fingerprint_encodes_guide () =
  let fl = Lazy.force flow in
  let fp = Postplace.Flow.fingerprint fl in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "fingerprint mentions guide" true
    (contains fp "|guide=peak|");
  let fp' =
    Postplace.Flow.fingerprint
      { fl with Postplace.Flow.guide = Postplace.Flow.Guide_gradient }
  in
  Alcotest.(check bool) "guide changes the fingerprint" true (fp <> fp')

let test_gradient_guide_matches_peak_quality () =
  let fl = Lazy.force flow in
  Parallel.Pool.set_jobs 1;
  let run guide =
    Thermal.Mesh.cache_clear ();
    Postplace.Optimizer.greedy_rows
      { fl with
        Postplace.Flow.screen = Postplace.Flow.Screen_exact;
        guide }
      ~rows:3 ~chunk:2 ~stride:2 ~coarse_nx:16 ()
  in
  let peak = run Postplace.Flow.Guide_peak in
  let grad = run Postplace.Flow.Guide_gradient in
  (* the gradient guide must land within a small tolerance of the
     exhaustive greedy peak while spending far fewer exact solves *)
  Alcotest.(check bool)
    (Printf.sprintf "gradient peak %.4f K within 0.05 K of greedy %.4f K"
       grad.Postplace.Optimizer.predicted_peak_k
       peak.Postplace.Optimizer.predicted_peak_k)
    true
    (grad.Postplace.Optimizer.predicted_peak_k
     <= peak.Postplace.Optimizer.predicted_peak_k +. 0.05);
  Alcotest.(check int) "budget respected" 3
    (List.length
       grad.Postplace.Optimizer.plan.Postplace.Technique.inserted_after);
  Alcotest.(check int) "legal" 0
    (List.length
       (P.validate
          grad.Postplace.Optimizer.plan.Postplace.Technique.eri_placement));
  Alcotest.(check bool) "gradient mode spends fewer exact solves" true
    (grad.Postplace.Optimizer.evaluations
     < peak.Postplace.Optimizer.evaluations);
  Alcotest.(check bool) "gradient mode ran adjoint solves" true
    (grad.Postplace.Optimizer.adjoint_evaluations > 0);
  Alcotest.(check int) "peak mode runs no adjoints" 0
    peak.Postplace.Optimizer.adjoint_evaluations

let test_gradient_guide_parallel_identical () =
  let fl = Lazy.force flow in
  let run () =
    Thermal.Mesh.cache_clear ();
    Postplace.Optimizer.greedy_rows
      { fl with Postplace.Flow.guide = Postplace.Flow.Guide_gradient }
      ~rows:3 ~chunk:2 ~stride:3 ~coarse_nx:16 ()
  in
  Parallel.Pool.set_jobs 1;
  let seq = run () in
  let par =
    Parallel.Pool.set_jobs 4;
    Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) run
  in
  Alcotest.(check (list int)) "same plan"
    seq.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
    par.Postplace.Optimizer.plan.Postplace.Technique.inserted_after;
  Alcotest.(check bool) "same predicted peak" true
    (seq.Postplace.Optimizer.predicted_peak_k
     = par.Postplace.Optimizer.predicted_peak_k)

(* --- parallel determinism --------------------------------------------------------- *)

let with_jobs n f =
  Parallel.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_jobs 1) f

let test_optimizer_parallel_identical () =
  let fl = Lazy.force flow in
  let run () =
    Postplace.Optimizer.greedy_rows fl ~rows:3 ~chunk:2 ~stride:3
      ~coarse_nx:16 ()
  in
  Parallel.Pool.set_jobs 1;
  let seq = run () in
  let par = with_jobs 4 run in
  Alcotest.(check (list int)) "same plan"
    seq.Postplace.Optimizer.plan.Postplace.Technique.inserted_after
    par.Postplace.Optimizer.plan.Postplace.Technique.inserted_after;
  (* bit-identical, not approximately equal *)
  Alcotest.(check bool) "same predicted peak" true
    (seq.Postplace.Optimizer.predicted_peak_k
     = par.Postplace.Optimizer.predicted_peak_k);
  Alcotest.(check int) "same evaluation count"
    seq.Postplace.Optimizer.evaluations par.Postplace.Optimizer.evaluations

let test_fig6_parallel_identical () =
  let fl = Lazy.force flow in
  let overheads = [ 0.1; 0.2 ] in
  Parallel.Pool.set_jobs 1;
  let seq = Postplace.Experiment.run_fig6 ~overheads fl in
  let par = with_jobs 4 (fun () -> Postplace.Experiment.run_fig6 ~overheads fl) in
  let points f =
    (f.Postplace.Experiment.default_points, f.Postplace.Experiment.eri_points,
     f.Postplace.Experiment.hw_points)
  in
  Alcotest.(check bool) "sweep points bit-identical" true
    (points seq = points par)

(* --- qcheck properties -------------------------------------------------------------- *)

let prop_eri_always_legal =
  QCheck.Test.make ~name:"ERI legal for any row budget" ~count:20
    QCheck.(int_range 0 30)
    (fun rows ->
       let fl = Lazy.force flow in
       let ev = Lazy.force base_eval in
       let r = Postplace.Flow.apply_eri fl ~base:ev ~rows in
       P.validate r.Postplace.Technique.eri_placement = [])

let prop_detect_threshold_monotone =
  QCheck.Test.make ~name:"higher threshold, fewer hot tiles" ~count:20
    QCheck.(pair (float_range 0.2 0.8) (float_range 0.05 0.15))
    (fun (t, dt) ->
       let ev = Lazy.force base_eval in
       let pl = ev.Postplace.Flow.placement in
       let count thr =
         List.fold_left
           (fun acc h -> acc + Postplace.Hotspot.tile_count h)
           0
           (Postplace.Hotspot.detect ~thermal:ev.Postplace.Flow.thermal_map
              ~placement:pl ~threshold_frac:thr ())
       in
       count (t +. dt) <= count t)

let prop_overhead_nonnegative =
  QCheck.Test.make ~name:"ERI area overhead is monotone in rows" ~count:15
    QCheck.(pair (int_range 0 15) (int_range 0 15))
    (fun (r1, r2) ->
       let fl = Lazy.force flow in
       let ev = Lazy.force base_eval in
       let base = fl.Postplace.Flow.base_placement in
       let ov r =
         Postplace.Technique.area_overhead_pct ~base
           (Postplace.Flow.apply_eri fl ~base:ev ~rows:r)
             .Postplace.Technique.eri_placement
       in
       if r1 <= r2 then ov r1 <= ov r2 +. 1e-9
       else ov r2 <= ov r1 +. 1e-9)

let () =
  Alcotest.run "postplace"
    [ ("hotspot",
       [ Alcotest.test_case "single cluster" `Quick
           test_detect_single_cluster;
         Alcotest.test_case "two clusters sorted" `Quick
           test_detect_two_clusters_sorted;
         Alcotest.test_case "diagonal not connected" `Quick
           test_detect_diagonal_not_connected;
         Alcotest.test_case "threshold validated" `Quick
           test_detect_threshold_validation;
         Alcotest.test_case "flat map" `Quick
           test_detect_flat_map_no_hotspots;
         Alcotest.test_case "span rows / is_wide" `Quick
           test_span_rows_and_wide;
         Alcotest.test_case "off-core rect maps to empty span" `Quick
           test_spans_off_core_rect ]);
      ("eri",
       [ Alcotest.test_case "geometry" `Quick test_eri_geometry;
         Alcotest.test_case "inserted rows empty" `Quick
           test_eri_inserted_rows_empty;
         Alcotest.test_case "cell sites preserved" `Quick
           test_eri_preserves_cell_sites;
         Alcotest.test_case "zero rows identity" `Quick
           test_eri_zero_rows_identity;
         Alcotest.test_case "negative rejected" `Quick
           test_eri_rejects_negative;
         Alcotest.test_case "overhead matches rows" `Quick
           test_eri_overhead_matches_rows ]);
      ("default",
       [ Alcotest.test_case "utilization and legality" `Quick
           test_default_utilization_and_legality;
         Alcotest.test_case "overhead scaling" `Quick
           test_default_overhead_scaling ]);
      ("hw",
       [ Alcotest.test_case "legality and containment" `Quick
           test_hw_legality_and_hot_cells_inside;
         Alcotest.test_case "skips large hotspots" `Quick
           test_hw_skips_large_hotspots;
         Alcotest.test_case "reduces local density" `Quick
           test_hw_reduces_local_density;
         Alcotest.test_case "risk assessment" `Quick
           test_wrapper_risk_assessment;
         Alcotest.test_case "skip risky" `Quick
           test_wrapper_skip_risky_is_safe ]);
      ("flow",
       [ Alcotest.test_case "area overhead" `Quick test_area_overhead_pct;
         Alcotest.test_case "evaluation sane" `Quick
           test_flow_evaluation_sane;
         Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
         Alcotest.test_case "seed changes activity" `Quick
           test_flow_seed_changes_activity ]);
      ("insertion-primitive",
       [ Alcotest.test_case "mapping" `Quick
           test_apply_row_insertions_mapping;
         Alcotest.test_case "clustered style" `Quick
           test_clustered_style_contiguous ]);
      ("electrothermal",
       [ Alcotest.test_case "feedback" `Quick test_electrothermal_feedback;
         Alcotest.test_case "leakage scaling" `Quick
           test_leakage_scaling_formula ]);
      ("optimizer",
       [ Alcotest.test_case "budget and legality" `Quick
           test_optimizer_budget_and_legality;
         Alcotest.test_case "reduces peak" `Quick
           test_optimizer_reduces_peak;
         Alcotest.test_case "validation" `Quick test_optimizer_validation;
         Alcotest.test_case "parallel identical to sequential" `Quick
           test_optimizer_parallel_identical;
         Alcotest.test_case "fft screening parity" `Quick
           test_optimizer_fft_screening_parity;
         Alcotest.test_case "faults force the exact tier" `Quick
           test_optimizer_fault_forces_exact_tier ]);
      ("gradient-guide",
       [ Alcotest.test_case "flow sensitivity smoke" `Quick
           test_flow_sensitivity_smoke;
         Alcotest.test_case "fingerprint encodes guide" `Quick
           test_fingerprint_encodes_guide;
         Alcotest.test_case "matches peak-guide quality" `Quick
           test_gradient_guide_matches_peak_quality;
         Alcotest.test_case "parallel identical to sequential" `Quick
           test_gradient_guide_parallel_identical ]);
      ("experiment",
       [ Alcotest.test_case "fig6 parallel identical" `Quick
           test_fig6_parallel_identical ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_eri_always_legal; prop_detect_threshold_monotone;
           prop_overhead_nonnegative ]) ]
