(* Tests for the resilience subsystem: structured errors, the
   fault-injection registry, invariant checks, checkpoint/resume (with
   the bit-identical-resume contract), and the end-to-end behaviour of
   injected faults in the flow — every fault recovered or surfaced as a
   structured error, never a silent wrong answer. *)

module E = Robust.Error
module F = Robust.Faults
module V = Robust.Validate
module C = Robust.Checkpoint

(* --- errors ------------------------------------------------------------------- *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_error_rendering () =
  let e =
    E.Solver_diverged
      { residual = 0.031; iterations = 5760;
        rungs = [ "requested"; "ssor"; "restart" ] }
  in
  let s = E.to_string e in
  Alcotest.(check bool) "mentions rungs" true (contains ~needle:"ssor" s);
  Alcotest.(check int) "solver exit code" 10 (E.exit_code e);
  Alcotest.(check int) "invariant exit code" 11
    (E.exit_code (E.Invariant_violation { check = "c"; detail = "d" }));
  Alcotest.(check int) "worker exit code" 12
    (E.exit_code (E.Worker_failed { detail = "d" }));
  Alcotest.(check int) "checkpoint exit code" 13
    (E.exit_code (E.Checkpoint_corrupt { path = "p"; detail = "d" }));
  (* to_json is valid JSON with an error class *)
  List.iter
    (fun e ->
       let j = E.to_json e in
       match Obs.Json.member "error" j with
       | Some (Obs.Json.String _) -> ()
       | _ -> Alcotest.failf "no error class in %s" (Obs.Json.to_string j))
    [ e; E.Invariant_violation { check = "c"; detail = "d" };
      E.Worker_failed { detail = "d" };
      E.Checkpoint_corrupt { path = "p"; detail = "d" } ]

let test_error_protect () =
  (match E.protect (fun () -> 42) with
   | Ok v -> Alcotest.(check int) "value through" 42 v
   | Error _ -> Alcotest.fail "spurious error");
  (match E.protect (fun () -> E.raise_ (E.Worker_failed { detail = "x" })) with
   | Error (E.Worker_failed { detail }) ->
     Alcotest.(check string) "payload kept" "x" detail
   | _ -> Alcotest.fail "structured error not caught");
  (* foreign exceptions pass through untouched *)
  (match E.protect (fun () -> failwith "other") with
   | _ -> Alcotest.fail "Failure swallowed"
   | exception Failure _ -> ())

(* --- fault registry ------------------------------------------------------------ *)

let test_fault_arming () =
  F.clear ();
  Alcotest.(check bool) "nothing armed" false (F.consume F.Cg_stall);
  F.arm F.Cg_stall;
  Alcotest.(check bool) "peek does not consume" true (F.armed F.Cg_stall);
  Alcotest.(check bool) "still armed" true (F.armed F.Cg_stall);
  Alcotest.(check bool) "fires once" true (F.consume F.Cg_stall);
  Alcotest.(check bool) "one-shot" false (F.consume F.Cg_stall);
  F.arm ~times:3 F.Nan_power;
  Alcotest.(check bool) "1/3" true (F.consume F.Nan_power);
  Alcotest.(check bool) "2/3" true (F.consume F.Nan_power);
  F.clear ();
  Alcotest.(check bool) "clear disarms" false (F.consume F.Nan_power);
  (match F.arm ~times:0 F.Cg_stall with
   | _ -> Alcotest.fail "times=0 accepted"
   | exception Invalid_argument _ -> ());
  (* with_fault disarms leftovers even when the body does not consume *)
  F.with_fault ~times:5 F.Kill_worker (fun () -> ());
  Alcotest.(check bool) "with_fault cleans up" false (F.consume F.Kill_worker)

let test_fault_spec_parsing () =
  (match F.parse_spec "cg_stall:4,nan_power" with
   | Ok [ (F.Cg_stall, 4); (F.Nan_power, 1) ] -> ()
   | Ok _ -> Alcotest.fail "wrong parse"
   | Error m -> Alcotest.failf "valid spec rejected: %s" m);
  (match F.parse_spec "" with
   | Ok [] -> ()
   | _ -> Alcotest.fail "empty spec must parse to []");
  (match F.parse_spec "no_such_fault" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown fault accepted");
  (match F.parse_spec "cg_stall:zero" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "bad count accepted");
  (* every fault name round-trips *)
  List.iter
    (fun f ->
       Alcotest.(check bool)
         (Printf.sprintf "%s round-trips" (F.to_string f))
         true
         (F.of_string (F.to_string f) = Some f))
    F.all

(* --- validate ------------------------------------------------------------------ *)

let test_validate () =
  let pass = V.make "always.pass" (fun () -> Ok ()) in
  let fail = V.make "always.fail" (fun () -> Error "because") in
  (match V.run_all [ pass; fail; pass ] with
   | [ a; b; c ] ->
     Alcotest.(check (option string)) "pass" None a.V.failure;
     Alcotest.(check (option string)) "fail" (Some "because") b.V.failure;
     Alcotest.(check (option string)) "later check still ran" None
       c.V.failure
   | _ -> Alcotest.fail "wrong outcome count");
  (match V.first_failure [ pass; fail ] with
   | Error (E.Invariant_violation { check; detail }) ->
     Alcotest.(check string) "check name" "always.fail" check;
     Alcotest.(check string) "detail" "because" detail
   | _ -> Alcotest.fail "first_failure missed");
  (match V.first_failure [ pass; pass ] with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "spurious failure");
  Alcotest.(check bool) "all_finite ok" true
    (V.all_finite ~what:"v" [| 1.0; -2.0 |] = Ok ());
  Alcotest.(check bool) "all_finite nan" true
    (Result.is_error (V.all_finite ~what:"v" [| 1.0; Float.nan |]));
  Alcotest.(check bool) "non_negative eps" true
    (V.non_negative ~eps:1e-9 ~what:"v" [| 0.0; -1e-12 |] = Ok ());
  Alcotest.(check bool) "non_negative fails" true
    (Result.is_error (V.non_negative ~what:"v" [| -1.0 |]));
  Alcotest.(check bool) "within fails above" true
    (Result.is_error (V.within ~what:"v" ~lo:0.0 ~hi:1.0 [| 1.5 |]))

(* --- checkpoint ---------------------------------------------------------------- *)

let with_tmp f =
  let path = Filename.temp_file "robust_ckpt" ".json" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

let test_checkpoint_roundtrip () =
  with_tmp (fun path ->
      (match C.load ~path ~key:"k" with
       | Ok [] -> ()
       | _ -> Alcotest.fail "missing file must read as empty");
      let entries =
        [ (0, Obs.Json.Obj [ ("v", Obs.Json.Float 0.1) ]);
          (2, Obs.Json.Obj [ ("v", Obs.Json.Float (-3.25e-7)) ]) ]
      in
      C.save ~path ~key:"k" ~entries;
      (match C.load ~path ~key:"k" with
       | Ok got ->
         Alcotest.(check bool) "entries bit-identical" true (got = entries)
       | Error e -> Alcotest.failf "load failed: %s" (E.to_string e));
      (* wrong fingerprint is refused *)
      (match C.load ~path ~key:"other" with
       | Error (E.Checkpoint_corrupt _) -> ()
       | _ -> Alcotest.fail "key mismatch accepted"))

let test_checkpoint_corruption () =
  with_tmp (fun path ->
      let write s =
        let oc = open_out path in
        output_string oc s;
        close_out oc
      in
      write "{ not json";
      (match C.load ~path ~key:"k" with
       | Error (E.Checkpoint_corrupt _) -> ()
       | _ -> Alcotest.fail "garbage accepted");
      write "{\"schema_version\": 1, \"kind\": \"something-else\", \
             \"key\": \"k\", \"entries\": []}";
      (match C.load ~path ~key:"k" with
       | Error (E.Checkpoint_corrupt _) -> ()
       | _ -> Alcotest.fail "wrong kind accepted");
      write "{\"schema_version\": 99, \"kind\": \"thermoplace-checkpoint\", \
             \"key\": \"k\", \"entries\": []}";
      (match C.load ~path ~key:"k" with
       | Error (E.Checkpoint_corrupt _) -> ()
       | _ -> Alcotest.fail "wrong schema accepted");
      write "{\"schema_version\": 1, \"kind\": \"thermoplace-checkpoint\", \
             \"key\": \"k\", \"entries\": [{\"index\": \"x\"}]}";
      (match C.load ~path ~key:"k" with
       | Error (E.Checkpoint_corrupt _) -> ()
       | _ -> Alcotest.fail "malformed entry accepted"))

(* --- flow-level fault behaviour ------------------------------------------------- *)

let small_flow =
  lazy
    (let bench = Netgen.Benchmark.small () in
     Parallel.Pool.set_jobs 1;
     Postplace.Flow.prepare ~seed:7 ~utilization:0.7 ~sim_cycles:60
       ~mesh_config:
         { Thermal.Mesh.nx = 12; ny = 12;
           stack = Thermal.Stack.default_9layer }
       bench
       (Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ]))

let test_flow_nan_power_surfaced () =
  let flow = Lazy.force small_flow in
  match
    F.with_fault F.Nan_power (fun () ->
        Postplace.Flow.evaluate_result flow
          flow.Postplace.Flow.base_placement)
  with
  | Error (E.Invariant_violation { check; _ }) ->
    Alcotest.(check string) "power check caught it" "power.finite_nonneg"
      check
  | Ok _ -> Alcotest.fail "NaN power evaluated silently"
  | Error e -> Alcotest.failf "wrong error class: %s" (E.to_string e)

let test_flow_cg_stall_recovered_and_degraded () =
  let flow = Lazy.force small_flow in
  Thermal.Mesh.cache_clear ();
  let reference =
    match
      Postplace.Flow.evaluate_result flow flow.Postplace.Flow.base_placement
    with
    | Ok ev -> ev
    | Error e -> Alcotest.failf "clean evaluation failed: %s" (E.to_string e)
  in
  (* one stall: the escalation ladder absorbs it and the evaluation
     succeeds with a near-identical temperature field *)
  (match
     F.with_fault F.Cg_stall (fun () ->
         Postplace.Flow.evaluate_result flow
           flow.Postplace.Flow.base_placement)
   with
   | Ok ev ->
     let p0 = reference.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k in
     let p1 = ev.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k in
     Alcotest.(check bool) "recovered peak matches" true
       (Float.abs (p0 -. p1) <= 1e-6 *. (1.0 +. Float.abs p0))
   | Error e ->
     Alcotest.failf "single stall not recovered: %s" (E.to_string e));
  (* enough stalls to exhaust every rung: structured divergence error *)
  (match
     F.with_fault ~times:8 F.Cg_stall (fun () ->
         Postplace.Flow.evaluate_result flow
           flow.Postplace.Flow.base_placement)
   with
   | Error (E.Solver_diverged { rungs; _ }) ->
     Alcotest.(check (list string)) "all rungs attempted"
       [ "requested"; "ssor"; "restart" ] rungs
   | Ok _ -> Alcotest.fail "flooded stalls evaluated silently"
   | Error e -> Alcotest.failf "wrong error class: %s" (E.to_string e));
  F.clear ()

(* --- checkpoint/resume bit-identity --------------------------------------------- *)

let points_equal (a : Postplace.Experiment.point list)
    (b : Postplace.Experiment.point list) =
  (* structural equality on records of floats = bitwise equality *)
  a = b

let truncate_checkpoint path ~keep =
  (* read the key out of the file so the test does not hard-code the
     fingerprint format *)
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let json = Obs.Json.of_string_exn text in
  let key =
    match Option.bind (Obs.Json.member "key" json) Obs.Json.to_string_opt with
    | Some k -> k
    | None -> Alcotest.fail "checkpoint has no key"
  in
  match C.load ~path ~key with
  | Error e -> Alcotest.failf "reload failed: %s" (E.to_string e)
  | Ok entries ->
    let kept = List.filteri (fun i _ -> i < keep) entries in
    C.save ~path ~key ~entries:kept;
    (key, List.length entries, List.length kept)

let test_fig6_checkpoint_resume_bit_identical () =
  let flow = Lazy.force small_flow in
  let overheads = [ 0.2; 0.4 ] in
  Parallel.Pool.set_jobs 1;
  let reference = Postplace.Experiment.run_fig6 ~overheads flow in
  with_tmp (fun path ->
      (* cold run with checkpointing enabled: same points *)
      let first = Postplace.Experiment.run_fig6 ~overheads ~checkpoint:path flow in
      Alcotest.(check bool) "checkpointed run identical" true
        (points_equal
           (reference.Postplace.Experiment.default_points
            @ reference.Postplace.Experiment.eri_points
            @ reference.Postplace.Experiment.hw_points)
           (first.Postplace.Experiment.default_points
            @ first.Postplace.Experiment.eri_points
            @ first.Postplace.Experiment.hw_points));
      Alcotest.(check bool) "checkpoint file exists" true
        (Sys.file_exists path);
      (* simulate an interrupted sweep: keep only the first two points *)
      let _, total, kept = truncate_checkpoint path ~keep:2 in
      Alcotest.(check int) "full checkpoint had all points" 6 total;
      Alcotest.(check int) "truncated" 2 kept;
      let resumed =
        Postplace.Experiment.run_fig6 ~overheads ~checkpoint:path flow
      in
      Alcotest.(check bool) "resumed sweep bit-identical" true
        (points_equal
           (reference.Postplace.Experiment.default_points
            @ reference.Postplace.Experiment.eri_points
            @ reference.Postplace.Experiment.hw_points)
           (resumed.Postplace.Experiment.default_points
            @ resumed.Postplace.Experiment.eri_points
            @ resumed.Postplace.Experiment.hw_points));
      (* a checkpoint for different sweep parameters must be refused *)
      (match
         Postplace.Experiment.run_fig6 ~overheads:[ 0.25 ] ~checkpoint:path
           flow
       with
       | _ -> Alcotest.fail "mismatched checkpoint accepted"
       | exception E.Error (E.Checkpoint_corrupt _) -> ()))

let test_package_checkpoint_resume () =
  let flow = Lazy.force small_flow in
  let sinks = [ 2.0e5; 1.0e6 ] in
  Parallel.Pool.set_jobs 1;
  let reference = Postplace.Experiment.run_package_sweep ~sinks flow in
  with_tmp (fun path ->
      let first =
        Postplace.Experiment.run_package_sweep ~sinks ~checkpoint:path flow
      in
      Alcotest.(check bool) "checkpointed identical" true (reference = first);
      let _, _, kept = truncate_checkpoint path ~keep:1 in
      Alcotest.(check int) "one entry kept" 1 kept;
      let resumed =
        Postplace.Experiment.run_package_sweep ~sinks ~checkpoint:path flow
      in
      Alcotest.(check bool) "resumed identical" true (reference = resumed))

let () =
  Obs.Metrics.set_enabled true;
  Alcotest.run "robust"
    [ ("error",
       [ Alcotest.test_case "rendering and exit codes" `Quick
           test_error_rendering;
         Alcotest.test_case "protect" `Quick test_error_protect ]);
      ("faults",
       [ Alcotest.test_case "arming semantics" `Quick test_fault_arming;
         Alcotest.test_case "spec parsing" `Quick test_fault_spec_parsing ]);
      ("validate",
       [ Alcotest.test_case "checks and helpers" `Quick test_validate ]);
      ("checkpoint",
       [ Alcotest.test_case "round trip" `Quick test_checkpoint_roundtrip;
         Alcotest.test_case "corruption detected" `Quick
           test_checkpoint_corruption ]);
      ("flow-faults",
       [ Alcotest.test_case "nan power surfaced" `Quick
           test_flow_nan_power_surfaced;
         Alcotest.test_case "cg stall recovered then degraded" `Quick
           test_flow_cg_stall_recovered_and_degraded ]);
      ("resume",
       [ Alcotest.test_case "fig6 resume bit-identical" `Quick
           test_fig6_checkpoint_resume_bit_identical;
         Alcotest.test_case "package resume bit-identical" `Quick
           test_package_checkpoint_resume ]) ]
