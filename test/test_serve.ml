(* Tests for the serve subsystem: backoff policy determinism and bounds,
   the bounded queue's fingerprint-grouping pop, the JSONL request
   codec, and an in-process server end-to-end exercising fault
   isolation, deadlines, backpressure and retry. *)

module Policy = Serve.Policy
module Queue = Serve.Queue
module Job = Serve.Job
module Server = Serve.Server

(* --- policy ---------------------------------------------------------------- *)

let job_id_gen =
  QCheck.Gen.map (Printf.sprintf "job-%d") QCheck.Gen.(int_bound 9999)

(* Determinism and bounds: for any (job, attempt), the delay is a pure
   function of the policy, and the jitter never escapes
   [(1-j) * capped, (1+j) * capped]. *)
let prop_delay_deterministic_and_bounded =
  QCheck.Test.make ~name:"backoff delay deterministic and bounded" ~count:200
    QCheck.(
      pair (make job_id_gen ~print:(fun s -> s)) (int_range 1 12))
    (fun (job_id, attempt) ->
       let p = Policy.default in
       let d1 = Policy.delay_ms p ~job_id ~attempt in
       let d2 = Policy.delay_ms p ~job_id ~attempt in
       let capped =
         Float.min
           (p.Policy.base_delay_ms
            *. (p.Policy.multiplier ** float_of_int (attempt - 1)))
           p.Policy.max_delay_ms
       in
       d1 = d2
       && d1 >= capped *. (1.0 -. p.Policy.jitter)
       && d1 <= capped *. (1.0 +. p.Policy.jitter))

(* Retry eligibility never exceeds the budget and never applies to
   validation errors, whatever the attempt number. *)
let prop_never_retries_validation =
  QCheck.Test.make ~name:"validation errors never retried" ~count:100
    QCheck.(int_range 1 10)
    (fun attempt ->
       let p = Policy.default in
       let transient =
         Robust.Error.Solver_diverged
           { residual = 1.0; iterations = 1; rungs = [ "cg" ] }
       in
       let validation =
         Robust.Error.Invariant_violation { check = "c"; detail = "d" }
       in
       let deadline =
         Robust.Error.Deadline_exceeded
           { job_id = "j"; elapsed_ms = 2.0; deadline_ms = 1.0 }
       in
       (not (Policy.should_retry p validation ~attempt))
       && (not (Policy.should_retry p deadline ~attempt))
       && Policy.should_retry p transient ~attempt
          = (attempt <= p.Policy.max_retries))

let test_policy_retryable () =
  let sd =
    Robust.Error.Solver_diverged
      { residual = 1.0; iterations = 0; rungs = [] }
  in
  let wf = Robust.Error.Worker_failed { detail = "" } in
  let iv = Robust.Error.Invariant_violation { check = ""; detail = "" } in
  let cc = Robust.Error.Checkpoint_corrupt { path = ""; detail = "" } in
  let qf = Robust.Error.Queue_full { job_id = ""; depth = 1; capacity = 1 } in
  let de =
    Robust.Error.Deadline_exceeded
      { job_id = ""; elapsed_ms = 0.0; deadline_ms = 0.0 }
  in
  let check name want e =
    Alcotest.(check bool) name want (Policy.retryable e)
  in
  check "solver_diverged retryable" true sd;
  check "worker_failed retryable" true wf;
  check "invariant not retryable" false iv;
  check "checkpoint not retryable" false cc;
  check "queue_full not retryable" false qf;
  check "deadline not retryable" false de

let test_policy_schedule () =
  let p = { Policy.default with Policy.jitter = 0.0; seed = 7 } in
  let s = Policy.schedule p ~job_id:"j" in
  Alcotest.(check int) "one delay per retry" p.Policy.max_retries
    (List.length s);
  (* without jitter the schedule is the pure geometric ramp *)
  List.iteri
    (fun i d ->
       let want =
         Float.min
           (p.Policy.base_delay_ms
            *. (p.Policy.multiplier ** float_of_int i))
           p.Policy.max_delay_ms
       in
       Alcotest.(check (float 1e-9)) (Printf.sprintf "delay %d" i) want d)
    s;
  (match Policy.delay_ms p ~job_id:"j" ~attempt:0 with
   | _ -> Alcotest.fail "attempt 0 accepted"
   | exception Invalid_argument _ -> ());
  (* the cap engages for large attempts *)
  Alcotest.(check (float 1e-9)) "cap engages" p.Policy.max_delay_ms
    (Policy.delay_ms p ~job_id:"j" ~attempt:20)

(* --- queue ----------------------------------------------------------------- *)

let test_queue_bounds () =
  (match Queue.create ~capacity:0 with
   | _ -> Alcotest.fail "capacity 0 accepted"
   | exception Invalid_argument _ -> ());
  let q = Queue.create ~capacity:2 in
  Alcotest.(check bool) "empty at start" true (Queue.is_empty q);
  Alcotest.(check bool) "push 1" true (Queue.try_push q "a");
  Alcotest.(check bool) "push 2" true (Queue.try_push q "b");
  Alcotest.(check bool) "push refused at capacity" false
    (Queue.try_push q "c");
  Alcotest.(check int) "depth" 2 (Queue.depth q);
  ignore (Queue.pop_batch q ~key:(fun s -> s));
  Alcotest.(check bool) "slot freed after pop" true (Queue.try_push q "d")

let test_queue_pop_groups_by_key () =
  let q = Queue.create ~capacity:16 in
  (* interleaved keys: the batch must collect ALL same-key items, not
     just a contiguous prefix, and preserve arrival order *)
  List.iter
    (fun x -> Alcotest.(check bool) "push" true (Queue.try_push q x))
    [ ("x", 1); ("y", 2); ("x", 3); ("z", 4); ("x", 5) ];
  let batch = Queue.pop_batch q ~key:fst in
  Alcotest.(check (list (pair string int)))
    "first batch = every x, arrival order"
    [ ("x", 1); ("x", 3); ("x", 5) ]
    batch;
  Alcotest.(check int) "rest remain" 2 (Queue.depth q);
  Alcotest.(check (list (pair string int)))
    "second batch = the y" [ ("y", 2) ]
    (Queue.pop_batch q ~key:fst);
  Alcotest.(check (list (pair string int)))
    "third batch = the z" [ ("z", 4) ]
    (Queue.pop_batch q ~key:fst);
  Alcotest.(check (list (pair string int))) "empty pops empty" []
    (Queue.pop_batch q ~key:fst)

(* --- request codec --------------------------------------------------------- *)

let parse_ok line =
  match Job.request_of_line line with
  | Ok r -> r
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_request_roundtrip () =
  let r =
    parse_ok
      {|{"id":"j1","test_set":"concentrated","technique":"hw","seed":7,
         "cycles":321,"utilization":0.7,"precond":"mg","screen":"fft",
         "overhead":0.3,"rows":3,"deadline_ms":1500,"max_retries":1,
         "faults":"nan_power"}|}
  in
  Alcotest.(check string) "id" "j1" r.Job.id;
  Alcotest.(check string) "test_set" "concentrated" r.Job.test_set;
  Alcotest.(check int) "seed" 7 r.Job.seed;
  Alcotest.(check (option int)) "rows" (Some 3) r.Job.rows;
  Alcotest.(check (option int)) "max_retries" (Some 1) r.Job.max_retries;
  Alcotest.(check int) "faults parsed" 1 (List.length r.Job.faults);
  (* encode, reparse: the codec round-trips to an equal request *)
  let r2 =
    match Job.request_of_json (Job.request_to_json r) with
    | Ok r2 -> r2
    | Error msg -> Alcotest.failf "reparse failed: %s" msg
  in
  Alcotest.(check bool) "round trip equal" true (r = r2);
  (* defaults: a minimal request carries the CLI's defaults *)
  let d = parse_ok {|{"id":"d"}|} in
  Alcotest.(check string) "default test_set" "small" d.Job.test_set;
  Alcotest.(check int) "default cycles" 1000 d.Job.cycles;
  Alcotest.(check (option int)) "no rows" None d.Job.rows;
  Alcotest.(check (option Alcotest.(float 0.0))) "no deadline" None
    d.Job.deadline_ms

let test_request_validation () =
  let reject name line =
    match Job.request_of_line line with
    | Ok _ -> Alcotest.failf "%s accepted" name
    | Error _ -> ()
  in
  reject "missing id" {|{"test_set":"small"}|};
  reject "empty id" {|{"id":"  "}|};
  reject "not an object" {|[1,2]|};
  reject "unparseable" {|{"id":|};
  reject "unknown technique" {|{"id":"x","technique":"warp"}|};
  reject "unknown test_set" {|{"id":"x","test_set":"huge"}|};
  reject "bad utilization" {|{"id":"x","utilization":1.5}|};
  reject "bad cycles" {|{"id":"x","cycles":0}|};
  reject "bad deadline" {|{"id":"x","deadline_ms":-5}|};
  reject "bad rows" {|{"id":"x","rows":0}|};
  reject "bad faults" {|{"id":"x","faults":"warp_core"}|};
  reject "non-string id" {|{"id":7}|};
  reject "unknown guide" {|{"id":"x","guide":"psychic"}|}

let test_request_guide_field () =
  let d = parse_ok {|{"id":"d"}|} in
  Alcotest.(check string) "default guide" "peak" d.Job.guide_name;
  Alcotest.(check bool) "default guide choice" true
    (d.Job.guide = Postplace.Flow.Guide_peak);
  let g = parse_ok {|{"id":"g","guide":"gradient"}|} in
  Alcotest.(check string) "gradient guide" "gradient" g.Job.guide_name;
  Alcotest.(check bool) "gradient guide choice" true
    (g.Job.guide = Postplace.Flow.Guide_gradient);
  (* encode/reparse keeps the guide *)
  (match Job.request_of_json (Job.request_to_json g) with
   | Ok g2 -> Alcotest.(check bool) "guide round trips" true (g = g2)
   | Error msg -> Alcotest.failf "reparse failed: %s" msg);
  (* the guide reshapes the optimizer's solve sequence, so it must
     split a batch *)
  Alcotest.(check bool) "guide splits the batch" true
    (Job.fingerprint d <> Job.fingerprint g)

let test_fingerprint_groups_configs () =
  let a = parse_ok {|{"id":"a","cycles":200}|} in
  let b = parse_ok {|{"id":"b","cycles":200,"technique":"hw","deadline_ms":9}|} in
  let c = parse_ok {|{"id":"c","cycles":201}|} in
  (* technique / deadline / retries do not affect the prepared flow, so
     they must not split a batch; cycles does *)
  Alcotest.(check string) "same flow, same fingerprint" (Job.fingerprint a)
    (Job.fingerprint b);
  Alcotest.(check bool) "different cycles, different fingerprint" true
    (Job.fingerprint a <> Job.fingerprint c)

(* --- server end-to-end ----------------------------------------------------- *)

let test_config =
  { Server.default_config with Server.handle_sigterm = false }

let run_server ?(config = test_config) lines =
  let inp = Filename.temp_file "serve_in" ".jsonl" in
  let outp = Filename.temp_file "serve_out" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove inp with Sys_error _ -> ());
      try Sys.remove outp with Sys_error _ -> ())
    (fun () ->
       let oc = open_out inp in
       List.iter (fun l -> output_string oc (l ^ "\n")) lines;
       close_out oc;
       let fd = Unix.openfile inp [ Unix.O_RDONLY ] 0 in
       let out = open_out outp in
       let summary =
         Fun.protect
           ~finally:(fun () ->
             close_out out;
             Unix.close fd)
           (fun () -> Server.run ~config ~input:fd ~output:out ())
       in
       let ic = open_in outp in
       let rec read acc =
         match input_line ic with
         | l -> read (l :: acc)
         | exception End_of_file -> List.rev acc
       in
       let raw = read [] in
       close_in ic;
       let responses =
         List.map
           (fun l ->
              match Obs.Json.of_string l with
              | Ok j -> j
              | Error msg -> Alcotest.failf "bad response line %S: %s" l msg)
           raw
       in
       (summary, responses))

let find_response responses id =
  match
    List.find_opt
      (fun r ->
         Option.bind (Obs.Json.member "id" r) Obs.Json.to_string_opt
         = Some id)
      responses
  with
  | Some r -> r
  | None -> Alcotest.failf "no response for %s" id

let str_field r name =
  match Option.bind (Obs.Json.member name r) Obs.Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response missing %s" name

let int_field r name =
  match Option.bind (Obs.Json.member name r) Obs.Json.to_int with
  | Some v -> v
  | None -> Alcotest.failf "response missing %s" name

let outcome r = str_field r "outcome"

(* one small-benchmark job line; cheap enough to run several per test *)
let job ?(extra = "") id = Printf.sprintf {|{"id":"%s","cycles":150%s}|} id extra

(* Fault isolation is THE serve contract: adding a fault-armed job to a
   batch leaves every other job's deterministic result bit-identical,
   and the armed fault degrades exactly the one job that carried it. *)
let test_fault_isolation () =
  let clean =
    [ job "a1"; job ~extra:{|,"technique":"hw"|} "a2";
      job ~extra:{|,"technique":"default"|} "a3" ]
  in
  let s0, r0 = run_server clean in
  Alcotest.(check int) "clean run all ok" 3 s0.Server.succeeded;
  (* same file plus one poisoned batch mate *)
  let s1, r1 =
    run_server (clean @ [ job ~extra:{|,"faults":"nan_power"|} "bad" ])
  in
  Alcotest.(check int) "exactly one failure" 1 s1.Server.failed;
  Alcotest.(check int) "others still ok" 3 s1.Server.succeeded;
  let bad = find_response r1 "bad" in
  Alcotest.(check string) "poisoned job failed" "failed" (outcome bad);
  Alcotest.(check int) "invariant exit class" 11 (int_field bad "exit_code");
  (* the three clean jobs' result payloads are bit-identical across runs *)
  List.iter
    (fun id ->
       let result run =
         match Obs.Json.member "result" (find_response run id) with
         | Some j -> Obs.Json.to_string j
         | None -> Alcotest.failf "%s has no result" id
       in
       Alcotest.(check string)
         (Printf.sprintf "%s bit-identical with poisoned mate" id)
         (result r0) (result r1))
    [ "a1"; "a2"; "a3" ];
  (* all four shared one prepared flow: the fingerprints agree and the
     whole file was one batch *)
  Alcotest.(check int) "one batch" 1 s1.Server.batches

let test_deadline_exceeded () =
  let s, r =
    run_server [ job "fast"; job ~extra:{|,"deadline_ms":0.5|} "slow" ]
  in
  Alcotest.(check int) "one deadline" 1 s.Server.deadline_exceeded;
  Alcotest.(check int) "other ok" 1 s.Server.succeeded;
  let slow = find_response r "slow" in
  Alcotest.(check string) "outcome" "deadline_exceeded" (outcome slow);
  Alcotest.(check int) "exit class 15" 15 (int_field slow "exit_code");
  Alcotest.(check int) "deadline not retried" 1 (int_field slow "attempts")

let test_backpressure () =
  let config = { test_config with Server.queue_capacity = 1 } in
  let s, r = run_server ~config [ job "q1"; job "q2"; job "q3" ] in
  Alcotest.(check int) "one admitted" 1 s.Server.accepted;
  Alcotest.(check int) "two rejected" 2 s.Server.rejected;
  Alcotest.(check int) "admitted one ran" 1 s.Server.succeeded;
  let q2 = find_response r "q2" in
  Alcotest.(check string) "rejected outcome" "rejected" (outcome q2);
  Alcotest.(check int) "queue-full exit class" 14 (int_field q2 "exit_code")

(* A transient fault (stalled CG) on the first attempt: the retry runs
   clean and succeeds, and the response records both attempts. *)
let test_retry_recovers_transient () =
  let config =
    { test_config with
      Server.policy =
        { Policy.default with Policy.base_delay_ms = 1.0; max_delay_ms = 2.0 }
    }
  in
  let s, r =
    run_server ~config
      [ job ~extra:{|,"faults":"cg_stall:8","max_retries":2|} "flaky" ]
  in
  Alcotest.(check int) "recovered" 1 s.Server.succeeded;
  Alcotest.(check int) "one retry spent" 1 s.Server.retries;
  let flaky = find_response r "flaky" in
  Alcotest.(check string) "outcome ok" "ok" (outcome flaky);
  Alcotest.(check int) "second attempt won" 2 (int_field flaky "attempts");
  (* with no retry budget the same fault is a structured failure *)
  let s2, r2 =
    run_server ~config
      [ job ~extra:{|,"faults":"cg_stall:8","max_retries":0|} "doomed" ]
  in
  Alcotest.(check int) "no budget, failed" 1 s2.Server.failed;
  Alcotest.(check int) "solver exit class" 10
    (int_field (find_response r2 "doomed") "exit_code")

let test_invalid_lines_and_summary () =
  let s, r =
    run_server
      [ {|{"id":"ok1","cycles":150}|}; {|{"technique":"eri"}|}; "{nope" ]
  in
  Alcotest.(check int) "two invalid" 2 s.Server.invalid;
  Alcotest.(check int) "one ok" 1 s.Server.succeeded;
  Alcotest.(check int) "one response per input line" 3 (List.length r);
  (* invalid lines answer with a synthetic line-N id and exit class 2 *)
  let inv = find_response r "line-2" in
  Alcotest.(check string) "invalid outcome" "invalid" (outcome inv);
  Alcotest.(check int) "invalid exit class" 2 (int_field inv "exit_code");
  (* summary_json mirrors the summary record *)
  let j = Server.summary_json s in
  Alcotest.(check (option int)) "summary json invalid" (Some 2)
    (Option.bind (Obs.Json.member "invalid" j) Obs.Json.to_int)

(* Per-job ledger records: one per request, job_id set, filterable. *)
let test_per_job_ledger () =
  let ledger = Filename.temp_file "serve_ledger" ".jsonl" in
  Sys.remove ledger;
  Fun.protect
    ~finally:(fun () -> try Sys.remove ledger with Sys_error _ -> ())
    (fun () ->
       let config = { test_config with Server.ledger = Some ledger } in
       let s, _ =
         run_server ~config
           [ job "l1"; job ~extra:{|,"faults":"nan_power"|} "l2" ]
       in
       Alcotest.(check int) "one ok one failed" 1 s.Server.succeeded;
       let records =
         match Obs.Ledger.load ledger with
         | Ok r -> r
         | Error msg -> Alcotest.failf "ledger invalid: %s" msg
       in
       Alcotest.(check int) "one record per job" 2 (List.length records);
       List.iter
         (fun r ->
            Alcotest.(check string) "command" "serve.job"
              (Obs.Ledger.command r))
         records;
       let ids = List.filter_map Obs.Ledger.job_id records in
       Alcotest.(check (list string)) "job ids recorded" [ "l1"; "l2" ] ids;
       let l2 =
         List.find (fun r -> Obs.Ledger.job_id r = Some "l2") records
       in
       Alcotest.(check string) "failure recorded" "failed"
         (Obs.Ledger.outcome l2);
       Alcotest.(check int) "exit class recorded" 11
         (Obs.Ledger.exit_code l2))

let () =
  Alcotest.run "serve"
    [ ("policy",
       [ QCheck_alcotest.to_alcotest prop_delay_deterministic_and_bounded;
         QCheck_alcotest.to_alcotest prop_never_retries_validation;
         Alcotest.test_case "retryable classes" `Quick test_policy_retryable;
         Alcotest.test_case "schedule and cap" `Quick test_policy_schedule ]);
      ("queue",
       [ Alcotest.test_case "bounds and refusal" `Quick test_queue_bounds;
         Alcotest.test_case "pop groups by key" `Quick
           test_queue_pop_groups_by_key ]);
      ("codec",
       [ Alcotest.test_case "round trip" `Quick test_request_roundtrip;
         Alcotest.test_case "validation" `Quick test_request_validation;
         Alcotest.test_case "guide field" `Quick test_request_guide_field;
         Alcotest.test_case "fingerprint batching identity" `Quick
           test_fingerprint_groups_configs ]);
      ("server",
       [ Alcotest.test_case "fault isolation" `Quick test_fault_isolation;
         Alcotest.test_case "deadline exceeded" `Quick test_deadline_exceeded;
         Alcotest.test_case "backpressure" `Quick test_backpressure;
         Alcotest.test_case "retry recovers transient" `Quick
           test_retry_recovers_transient;
         Alcotest.test_case "invalid lines and summary" `Quick
           test_invalid_lines_and_summary;
         Alcotest.test_case "per-job ledger" `Quick test_per_job_ledger ]) ]
