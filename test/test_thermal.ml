(* Tests for the thermal substrate: sparse CSR, conjugate gradients, the
   material stack, mesh assembly and solutions. *)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* --- sparse ----------------------------------------------------------------- *)

let test_sparse_mul_matches_dense () =
  let b = Thermal.Sparse.builder ~n:3 in
  let dense = [| [| 2.0; -1.0; 0.0 |];
                 [| -1.0; 2.0; -1.0 |];
                 [| 0.0; -1.0; 2.0 |] |] in
  Array.iteri
    (fun i row ->
       Array.iteri (fun j v -> if v <> 0.0 then Thermal.Sparse.add b i j v)
         row)
    dense;
  let m = Thermal.Sparse.of_builder b in
  Alcotest.(check int) "dim" 3 (Thermal.Sparse.dim m);
  Alcotest.(check int) "nnz" 7 (Thermal.Sparse.nnz m);
  let x = [| 1.0; 2.0; 3.0 |] in
  let y = Array.make 3 0.0 in
  Thermal.Sparse.mul m x y;
  check_float "y0" 0.0 y.(0);
  check_float "y1" 0.0 y.(1);
  check_float "y2" 4.0 y.(2)

let test_sparse_duplicates_summed () =
  let b = Thermal.Sparse.builder ~n:2 in
  Thermal.Sparse.add b 0 0 1.0;
  Thermal.Sparse.add b 0 0 2.5;
  Thermal.Sparse.add b 1 1 1.0;
  let m = Thermal.Sparse.of_builder b in
  check_float "summed" 3.5 (Thermal.Sparse.get m 0 0);
  Alcotest.(check int) "nnz merged" 2 (Thermal.Sparse.nnz m)

let test_sparse_diagonal_and_get () =
  let b = Thermal.Sparse.builder ~n:3 in
  Thermal.Sparse.add b 0 0 4.0;
  Thermal.Sparse.add b 1 1 5.0;
  Thermal.Sparse.add b 2 2 6.0;
  Thermal.Sparse.add b 0 2 (-1.0);
  Thermal.Sparse.add b 2 0 (-1.0);
  let m = Thermal.Sparse.of_builder b in
  Alcotest.(check (array (float 1e-12))) "diagonal" [| 4.0; 5.0; 6.0 |]
    (Thermal.Sparse.diagonal m);
  check_float "get offdiag" (-1.0) (Thermal.Sparse.get m 0 2);
  check_float "get absent" 0.0 (Thermal.Sparse.get m 0 1);
  check_float "row abs sum" 5.0 (Thermal.Sparse.row_sum_abs m 0)

let test_sparse_bounds () =
  let b = Thermal.Sparse.builder ~n:2 in
  (match Thermal.Sparse.add b 0 5 1.0 with
   | _ -> Alcotest.fail "out-of-range accepted"
   | exception Invalid_argument _ -> ())

(* --- cg ---------------------------------------------------------------------- *)

let poisson_1d n =
  (* classic SPD tridiagonal system with known behaviour *)
  let b = Thermal.Sparse.builder ~n in
  for i = 0 to n - 1 do
    Thermal.Sparse.add b i i 2.0;
    if i > 0 then Thermal.Sparse.add b i (i - 1) (-1.0);
    if i < n - 1 then Thermal.Sparse.add b i (i + 1) (-1.0)
  done;
  Thermal.Sparse.of_builder b

let test_cg_small_exact () =
  let b = Thermal.Sparse.builder ~n:2 in
  Thermal.Sparse.add b 0 0 4.0;
  Thermal.Sparse.add b 0 1 1.0;
  Thermal.Sparse.add b 1 0 1.0;
  Thermal.Sparse.add b 1 1 3.0;
  let m = Thermal.Sparse.of_builder b in
  let r = Thermal.Cg.solve m ~b:[| 1.0; 2.0 |] () in
  Alcotest.(check bool) "converged" true r.Thermal.Cg.converged;
  (* solution of [[4,1],[1,3]] x = [1,2]: x = [1/11, 7/11] *)
  check_float ~eps:1e-8 "x0" (1.0 /. 11.0) r.Thermal.Cg.x.(0);
  check_float ~eps:1e-8 "x1" (7.0 /. 11.0) r.Thermal.Cg.x.(1)

let test_cg_poisson_residual () =
  let n = 100 in
  let m = poisson_1d n in
  let rhs = Array.init n (fun i -> sin (float_of_int i /. 7.0)) in
  let r = Thermal.Cg.solve m ~b:rhs ~tol:1e-12 () in
  Alcotest.(check bool) "converged" true r.Thermal.Cg.converged;
  if r.Thermal.Cg.residual > 1e-10 then
    Alcotest.failf "residual %.2e too big" r.Thermal.Cg.residual;
  (* verify against a direct check: A x = rhs *)
  let ax = Array.make n 0.0 in
  Thermal.Sparse.mul m r.Thermal.Cg.x ax;
  Array.iteri (fun i v -> check_float ~eps:1e-8 "component" rhs.(i) v) ax

let test_cg_zero_rhs () =
  let m = poisson_1d 10 in
  let r = Thermal.Cg.solve m ~b:(Array.make 10 0.0) () in
  Alcotest.(check bool) "trivially converged" true r.Thermal.Cg.converged;
  Alcotest.(check int) "no iterations" 0 r.Thermal.Cg.iterations;
  Array.iter (fun v -> check_float "zero solution" 0.0 v) r.Thermal.Cg.x

let test_cg_rejects_bad_diagonal () =
  let b = Thermal.Sparse.builder ~n:2 in
  Thermal.Sparse.add b 0 0 1.0;
  (* row 1 has an empty diagonal *)
  Thermal.Sparse.add b 1 0 1.0;
  let m = Thermal.Sparse.of_builder b in
  (match Thermal.Cg.solve m ~b:[| 1.0; 1.0 |] () with
   | _ -> Alcotest.fail "zero diagonal accepted"
   | exception Invalid_argument _ -> ())

let test_cg_telemetry () =
  (* every solve must land in the Obs registry: a solves counter plus one
     histogram sample each for iterations and residual *)
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Log.reset ();
  Obs.Log.set_handler None;
  Fun.protect
    ~finally:(fun () -> Obs.Log.set_handler (Some Obs.Log.default_handler))
    (fun () ->
       let m = poisson_1d 50 in
       let rhs = Array.init 50 (fun i -> float_of_int (i mod 3)) in
       let r1 = Thermal.Cg.solve m ~b:rhs () in
       let r2 = Thermal.Cg.solve m ~b:rhs () in
       Alcotest.(check (option int)) "solves counted" (Some 2)
         (Obs.Metrics.counter_value "thermal.cg.solves");
       (match Obs.Metrics.histogram "thermal.cg.iterations" with
        | None -> Alcotest.fail "iterations histogram missing"
        | Some h ->
          Alcotest.(check (list (float 0.0))) "one sample per solve"
            [ float_of_int r1.Thermal.Cg.iterations;
              float_of_int r2.Thermal.Cg.iterations ]
            h.Obs.Metrics.samples);
       (match Obs.Metrics.histogram "thermal.cg.residual" with
        | None -> Alcotest.fail "residual histogram missing"
        | Some h ->
          Alcotest.(check int) "residual sample count" 2
            h.Obs.Metrics.count;
          check_float ~eps:1e-15 "last residual recorded"
            r2.Thermal.Cg.residual h.Obs.Metrics.last);
       (* a capped solve must flag non-convergence and warn *)
       let capped = Thermal.Cg.solve m ~b:rhs ~tol:1e-300 ~max_iter:1 () in
       Alcotest.(check bool) "capped solve not converged" false
         capped.Thermal.Cg.converged;
       Alcotest.(check (option int)) "non-convergence counted" (Some 1)
         (Obs.Metrics.counter_value "thermal.cg.nonconverged");
       Alcotest.(check int) "warning retained" 1
         (List.length (Obs.Log.warnings ())))

let test_cg_warm_start () =
  let m = poisson_1d 50 in
  let rhs = Array.init 50 (fun i -> float_of_int (i mod 5)) in
  let cold = Thermal.Cg.solve m ~b:rhs ~tol:1e-12 () in
  let warm = Thermal.Cg.solve m ~b:rhs ~tol:1e-12 ~x0:cold.Thermal.Cg.x () in
  Alcotest.(check bool) "warm start immediate" true
    (warm.Thermal.Cg.iterations <= 1)

let test_cg_ssor_matches_jacobi () =
  let n = 80 in
  let m = poisson_1d n in
  let rhs = Array.init n (fun i -> sin (float_of_int i /. 5.0)) in
  let jac = Thermal.Cg.solve m ~b:rhs ~tol:1e-12 () in
  let ssor = Thermal.Cg.solve m ~b:rhs ~tol:1e-12
      ~precond:(Thermal.Cg.Ssor 1.3) () in
  Alcotest.(check bool) "ssor converged" true ssor.Thermal.Cg.converged;
  let direct = Thermal.Dense.solve (Thermal.Dense.of_sparse m) rhs in
  Array.iteri
    (fun i v ->
       check_float ~eps:1e-8 "ssor vs direct" v ssor.Thermal.Cg.x.(i);
       check_float ~eps:1e-8 "jacobi vs direct" v jac.Thermal.Cg.x.(i))
    direct;
  (* the preconditioner's entire point: fewer iterations than Jacobi *)
  Alcotest.(check bool)
    (Printf.sprintf "ssor %d iters < jacobi %d" ssor.Thermal.Cg.iterations
       jac.Thermal.Cg.iterations)
    true
    (ssor.Thermal.Cg.iterations < jac.Thermal.Cg.iterations)

let test_cg_ssor_rejects_bad_omega () =
  let m = poisson_1d 10 in
  let rhs = Array.make 10 1.0 in
  List.iter
    (fun omega ->
       match Thermal.Cg.solve m ~b:rhs ~precond:(Thermal.Cg.Ssor omega) () with
       | _ -> Alcotest.failf "omega %g accepted" omega
       | exception Invalid_argument _ -> ())
    [ 0.0; 2.0; -0.5; 2.7 ]

(* --- stack ------------------------------------------------------------------- *)

let test_stack_default_valid () =
  let s = Thermal.Stack.default_9layer in
  (match Thermal.Stack.validate s with
   | Ok () -> ()
   | Error e -> Alcotest.failf "default stack invalid: %s" e);
  Alcotest.(check int) "nine layers" 9 (Thermal.Stack.num_layers s);
  Alcotest.(check bool) "power layer is silicon" true
    (s.Thermal.Stack.layers.(s.Thermal.Stack.power_layer)
       .Thermal.Stack.conductivity_w_mk
     > 50.0);
  Alcotest.(check bool) "thickness positive" true
    (Thermal.Stack.total_thickness_um s > 0.0)

let test_stack_validation_errors () =
  let s = Thermal.Stack.default_9layer in
  let bad1 = { s with Thermal.Stack.power_layer = 99 } in
  (match Thermal.Stack.validate bad1 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "bad power layer accepted");
  let bad2 =
    { s with
      Thermal.Stack.h_top_w_m2k = 0.0;
      h_bottom_w_m2k = 0.0;
      h_side_w_m2k = 0.0 }
  in
  (match Thermal.Stack.validate bad2 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "adiabatic stack accepted")

let test_stack_with_sink () =
  let s = Thermal.Stack.with_sink Thermal.Stack.default_9layer
      ~h_top_w_m2k:123.0 in
  check_float "h replaced" 123.0 s.Thermal.Stack.h_top_w_m2k

(* --- mesh ---------------------------------------------------------------------- *)

let uniform_power ~nx ~ny ~total =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let g = Geo.Grid.create ~nx ~ny ~extent in
  let per = total /. float_of_int (nx * ny) in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy _ -> Geo.Grid.set g ~ix ~iy per);
  g

let test_mesh_requires_matching_grid () =
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 8; ny = 8 } in
  let power = uniform_power ~nx:4 ~ny:4 ~total:1.0 in
  (match Thermal.Mesh.build cfg ~power with
   | _ -> Alcotest.fail "grid mismatch accepted"
   | exception Invalid_argument _ -> ())

let small_cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 10; ny = 10 }

let test_mesh_linearity () =
  let p1 = uniform_power ~nx:10 ~ny:10 ~total:0.01 in
  let p2 = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let s1 = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:p1) in
  let s2 = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:p2) in
  let m1 = Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid s1) in
  let m2 = Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid s2) in
  check_float ~eps:1e-6 "2x power -> 2x rise"
    (2.0 *. m1.Thermal.Metrics.peak_rise_k)
    m2.Thermal.Metrics.peak_rise_k

let test_mesh_energy_balance () =
  (* At steady state the heat extracted through the boundary equals the heat
     injected: sum over nodes of (boundary conductance * T) = total power.
     Because G T = P and the interior rows sum to zero, sum(P) must equal
     sum over boundary terms; we verify via the matrix: sum_i (G T)_i =
     sum_i P_i and all interior row sums vanish, so checking the residual
     of the solve at tight tolerance covers conservation. Here we verify
     sum(G T) = sum(P) directly. *)
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.05 in
  let problem = Thermal.Mesh.build small_cfg ~power:p in
  let s = Thermal.Mesh.solve ~tol:1e-12 problem in
  let m = Thermal.Mesh.matrix problem in
  let gt = Array.make (Thermal.Sparse.dim m) 0.0 in
  Thermal.Sparse.mul m s.Thermal.Mesh.temp gt;
  let extracted = Array.fold_left ( +. ) 0.0 gt in
  check_float ~eps:1e-6 "energy conserved" 0.05 extracted

let test_mesh_symmetry () =
  (* a centered power blob on a symmetric die gives an x-mirror-symmetric
     temperature map *)
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let g = Geo.Grid.create ~nx:10 ~ny:10 ~extent in
  Geo.Grid.set g ~ix:4 ~iy:5 0.005;
  Geo.Grid.set g ~ix:5 ~iy:5 0.005;
  let s = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:g) in
  let tm = Thermal.Mesh.active_layer_grid s in
  for iy = 0 to 9 do
    for ix = 0 to 4 do
      check_float ~eps:1e-8
        (Printf.sprintf "mirror (%d,%d)" ix iy)
        (Geo.Grid.get tm ~ix ~iy)
        (Geo.Grid.get tm ~ix:(9 - ix) ~iy)
    done
  done

let test_mesh_hotspot_is_local () =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let g = Geo.Grid.create ~nx:10 ~ny:10 ~extent in
  Geo.Grid.set g ~ix:2 ~iy:2 0.01;
  let s = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:g) in
  let tm = Thermal.Mesh.active_layer_grid s in
  let near = Geo.Grid.get tm ~ix:2 ~iy:2 in
  let far = Geo.Grid.get tm ~ix:9 ~iy:9 in
  Alcotest.(check bool)
    (Printf.sprintf "hot %.3f > 1.5x far %.3f" near far)
    true (near > 1.5 *. far);
  let ix, iy = Geo.Grid.argmax tm in
  Alcotest.(check (pair int int)) "peak at the source" (2, 2) (ix, iy)

let test_mesh_stronger_sink_cools () =
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let hot_cfg = small_cfg in
  let cool_cfg =
    { small_cfg with
      Thermal.Mesh.stack =
        Thermal.Stack.with_sink small_cfg.Thermal.Mesh.stack
          ~h_top_w_m2k:
            (2.0 *. small_cfg.Thermal.Mesh.stack.Thermal.Stack.h_top_w_m2k) }
  in
  let s1 = Thermal.Mesh.solve (Thermal.Mesh.build hot_cfg ~power:p) in
  let s2 = Thermal.Mesh.solve (Thermal.Mesh.build cool_cfg ~power:p) in
  let peak s =
    (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid s))
      .Thermal.Metrics.peak_rise_k
  in
  Alcotest.(check bool) "stronger sink lowers peak" true (peak s2 < peak s1)

let test_mesh_vertical_profile () =
  (* temperature decreases monotonically from the active layer toward the
     heat sink when the sink dominates extraction *)
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let s = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:p) in
  let mean_at iz = Geo.Grid.mean (Thermal.Mesh.layer_grid s ~iz) in
  let zp = small_cfg.Thermal.Mesh.stack.Thermal.Stack.power_layer in
  let nz = Thermal.Stack.num_layers small_cfg.Thermal.Mesh.stack in
  let prev = ref (mean_at zp) in
  for iz = zp + 1 to nz - 1 do
    let t = mean_at iz in
    Alcotest.(check bool)
      (Printf.sprintf "layer %d cooler than %d" iz (iz - 1))
      true (t < !prev);
    prev := t
  done

let test_mesh_1d_analytic () =
  (* Uniform power with a uniform lateral profile behaves like a 1-D
     thermal resistance chain: rise at the active layer ~=
     q * (1/h_top + sum of t/k above the active layer + half the active
     layer itself). We verify within 5 %. *)
  let stack = Thermal.Stack.default_9layer in
  let total = 0.02 in
  let p = uniform_power ~nx:10 ~ny:10 ~total in
  let s = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:p) in
  let tm = Thermal.Mesh.active_layer_grid s in
  (* ignore edges: take the center tile (no side heat-loss assumed) *)
  let got = Geo.Grid.get tm ~ix:5 ~iy:5 in
  let area_m2 = 200e-6 *. 200e-6 in
  let q = total /. area_m2 in
  let r_above =
    let acc = ref (1.0 /. stack.Thermal.Stack.h_top_w_m2k) in
    let zp = stack.Thermal.Stack.power_layer in
    Array.iteri
      (fun i (l : Thermal.Stack.layer) ->
         let t_m = l.Thermal.Stack.thickness_um *. 1e-6 in
         if i > zp then acc := !acc +. (t_m /. l.Thermal.Stack.conductivity_w_mk)
         else if i = zp then
           acc := !acc +. (t_m /. 2.0 /. l.Thermal.Stack.conductivity_w_mk))
      stack.Thermal.Stack.layers;
    !acc
  in
  let expected = q *. r_above in
  if Float.abs (got -. expected) /. expected > 0.05 then
    Alcotest.failf "1-D analytic mismatch: got %.4f, expected %.4f" got
      expected

let test_mesh_matrix_cache () =
  Thermal.Mesh.cache_clear ();
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let prob1 = Thermal.Mesh.build small_cfg ~power:p in
  let prob2 = Thermal.Mesh.build small_cfg ~power:p in
  Alcotest.(check (option int)) "one miss" (Some 1)
    (Obs.Metrics.counter_value "thermal.mesh.cache.misses");
  Alcotest.(check (option int)) "one hit" (Some 1)
    (Obs.Metrics.counter_value "thermal.mesh.cache.hits");
  (* the hit must return the *same* assembled matrix, not an equal copy *)
  Alcotest.(check bool) "matrix physically shared" true
    (Thermal.Mesh.matrix prob1 == Thermal.Mesh.matrix prob2);
  (* a different extent is a different thermal network: miss *)
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:300.0 ~h:300.0 in
  let wide = Geo.Grid.create ~nx:10 ~ny:10 ~extent in
  Geo.Grid.set wide ~ix:5 ~iy:5 0.02;
  let _ = Thermal.Mesh.build small_cfg ~power:wide in
  Alcotest.(check (option int)) "extent change misses" (Some 2)
    (Obs.Metrics.counter_value "thermal.mesh.cache.misses");
  (* so is a different stack/config *)
  let cfg2 =
    { small_cfg with
      Thermal.Mesh.stack =
        Thermal.Stack.with_sink small_cfg.Thermal.Mesh.stack
          ~h_top_w_m2k:9999.0 }
  in
  let _ = Thermal.Mesh.build cfg2 ~power:p in
  Alcotest.(check (option int)) "config change misses" (Some 3)
    (Obs.Metrics.counter_value "thermal.mesh.cache.misses");
  (* ~cache:false assembles fresh and leaves the counters alone *)
  let bypass = Thermal.Mesh.build ~cache:false small_cfg ~power:p in
  Alcotest.(check bool) "bypass not shared" true
    (not (Thermal.Mesh.matrix bypass == Thermal.Mesh.matrix prob1));
  Alcotest.(check (option int)) "bypass counts no miss" (Some 3)
    (Obs.Metrics.counter_value "thermal.mesh.cache.misses");
  Alcotest.(check (option int)) "bypass counts no hit" (Some 1)
    (Obs.Metrics.counter_value "thermal.mesh.cache.hits");
  (* cached and fresh assemblies are the same operator *)
  let x = Array.init (Thermal.Sparse.dim (Thermal.Mesh.matrix prob1))
      (fun i -> cos (float_of_int i)) in
  let n = Array.length x in
  let y1 = Array.make n 0.0 and y2 = Array.make n 0.0 in
  Thermal.Sparse.mul (Thermal.Mesh.matrix prob1) x y1;
  Thermal.Sparse.mul (Thermal.Mesh.matrix bypass) x y2;
  Alcotest.(check bool) "identical operator" true (y1 = y2)

let test_mesh_solve_options_threaded () =
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  (* max_iter reaches Cg: an impossible budget must fail through the
     whole escalation ladder and surface as a structured error *)
  (match
     Thermal.Mesh.solve ~tol:1e-14 ~max_iter:1
       (Thermal.Mesh.build small_cfg ~power:p)
   with
   | _ -> Alcotest.fail "capped solve did not fail"
   | exception
       Robust.Error.Error (Robust.Error.Solver_diverged { rungs; _ }) ->
     Alcotest.(check (list string)) "full ladder attempted"
       [ "requested"; "ssor"; "restart" ] rungs);
  (* precond reaches Cg: SSOR solve agrees with the Jacobi default *)
  let jac = Thermal.Mesh.solve ~tol:1e-12 (Thermal.Mesh.build small_cfg ~power:p) in
  let ssor =
    Thermal.Mesh.solve ~tol:1e-12 ~precond:(Thermal.Cg.Ssor 1.5)
      (Thermal.Mesh.build small_cfg ~power:p)
  in
  Array.iteri
    (fun i v -> check_float ~eps:1e-8 "ssor mesh solve" v
        ssor.Thermal.Mesh.temp.(i))
    jac.Thermal.Mesh.temp;
  (* x0 reaches Cg: restarting from the answer converges immediately, and
     the warm/cold pairing lands in the savings histogram *)
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Thermal.Mesh.cache_clear ();
  let prob = Thermal.Mesh.build small_cfg ~power:p in
  let cold = Thermal.Mesh.solve prob in
  let warm = Thermal.Mesh.solve ~x0:cold.Thermal.Mesh.temp prob in
  Alcotest.(check bool) "warm mesh solve immediate" true
    (warm.Thermal.Mesh.cg_iterations <= 1);
  (match Obs.Metrics.histogram "thermal.mesh.warm.saved_iterations" with
   | None -> Alcotest.fail "warm savings not recorded"
   | Some h ->
     Alcotest.(check int) "one warm/cold pairing" 1 h.Obs.Metrics.count;
     Alcotest.(check bool) "savings equal cold cost" true
       (h.Obs.Metrics.last
        >= float_of_int (cold.Thermal.Mesh.cg_iterations - 1)))

(* --- dense direct solver ------------------------------------------------------ *)

let test_dense_matches_cg () =
  let m = poisson_1d 60 in
  let rhs = Array.init 60 (fun i -> cos (float_of_int i /. 3.0)) in
  let chol = Thermal.Dense.of_sparse m in
  let x_direct = Thermal.Dense.solve chol rhs in
  let x_cg = (Thermal.Cg.solve m ~b:rhs ~tol:1e-13 ()).Thermal.Cg.x in
  Array.iteri
    (fun i v -> check_float ~eps:1e-8 "component" v x_cg.(i))
    x_direct

let test_dense_cross_checks_mesh () =
  (* the production CG path against the direct factorization on a real
     (small) thermal matrix *)
  let p = uniform_power ~nx:6 ~ny:6 ~total:0.01 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 6; ny = 6 } in
  let problem = Thermal.Mesh.build cfg ~power:p in
  let m = Thermal.Mesh.matrix problem in
  let chol = Thermal.Dense.of_sparse m in
  let x_direct = Thermal.Dense.solve chol (Thermal.Mesh.rhs problem) in
  let s = Thermal.Mesh.solve ~tol:1e-12 problem in
  Array.iteri
    (fun i v ->
       if Float.abs (v -. s.Thermal.Mesh.temp.(i))
          > 1e-8 *. (1.0 +. Float.abs v)
       then Alcotest.failf "node %d: direct %g vs cg %g" i v
           s.Thermal.Mesh.temp.(i))
    x_direct

let test_dense_rejects_indefinite () =
  let b = Thermal.Sparse.builder ~n:2 in
  Thermal.Sparse.add b 0 0 1.0;
  Thermal.Sparse.add b 0 1 5.0;
  Thermal.Sparse.add b 1 0 5.0;
  Thermal.Sparse.add b 1 1 1.0;
  let m = Thermal.Sparse.of_builder b in
  (match Thermal.Dense.of_sparse m with
   | _ -> Alcotest.fail "indefinite matrix accepted"
   | exception Failure _ -> ())

(* --- transient ------------------------------------------------------------------ *)

let test_transient_approaches_steady_state () =
  let p = uniform_power ~nx:8 ~ny:8 ~total:0.02 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 8; ny = 8 } in
  let r = Thermal.Transient.step_response cfg ~power:p ~dt_s:2e-5 ~steps:80 () in
  let final = r.Thermal.Transient.peak_rise_k.(80) in
  (* monotone heating from ambient *)
  for k = 1 to 80 do
    if r.Thermal.Transient.peak_rise_k.(k)
       < r.Thermal.Transient.peak_rise_k.(k - 1) -. 1e-9
    then Alcotest.fail "cooling during a heating step response"
  done;
  Alcotest.(check bool) "stays below steady state" true
    (final <= r.Thermal.Transient.steady_peak_k *. (1.0 +. 1e-6));
  Alcotest.(check bool) "gets most of the way there" true
    (final > 0.5 *. r.Thermal.Transient.steady_peak_k)

let test_transient_time_constant_validates_paper () =
  (* the paper's justification for steady-state analysis: the thermal time
     constant is orders of magnitude above the 1 ns clock period *)
  let p = uniform_power ~nx:8 ~ny:8 ~total:0.02 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 8; ny = 8 } in
  let r = Thermal.Transient.step_response cfg ~power:p ~dt_s:2e-5 ~steps:80 () in
  let clock_period_s = 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "tau %.3e s >> 1 ns" r.Thermal.Transient.tau_63_s)
    true
    (r.Thermal.Transient.tau_63_s > 1000.0 *. clock_period_s)

let test_transient_validation () =
  let p = uniform_power ~nx:4 ~ny:4 ~total:0.01 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 4; ny = 4 } in
  (match Thermal.Transient.step_response cfg ~power:p ~dt_s:0.0 () with
   | _ -> Alcotest.fail "dt=0 accepted"
   | exception Invalid_argument _ -> ())

let test_transient_flat_tau_is_finite () =
  (* regression: a flat step at the 63% crossing used to divide 0/0 and
     report a NaN time constant. The all-zero power map is the extreme
     case: every peak is 0, the target is 0, and the very first step
     "crosses" with zero slope. *)
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let p = Geo.Grid.create ~nx:8 ~ny:8 ~extent in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 8; ny = 8 } in
  let r =
    Thermal.Transient.step_response cfg ~power:p ~dt_s:2e-5 ~steps:20 ()
  in
  Alcotest.(check bool) "tau finite on a flat response" true
    (Float.is_finite r.Thermal.Transient.tau_63_s);
  check_float "flat response settles at zero rise" 0.0
    r.Thermal.Transient.steady_peak_k

let test_transient_precond_parity_and_iterations () =
  (* regression for the transient solve path: it used to run a raw
     unpreconditioned CG on a privately assembled matrix, ignoring the
     configured preconditioner entirely. The trajectories must agree
     across preconditioners (same system, tight tolerance) and the
     stronger smoother must pay fewer total iterations. *)
  let p = uniform_power ~nx:8 ~ny:8 ~total:0.02 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 8; ny = 8 } in
  let rj =
    Thermal.Transient.step_response cfg ~power:p ~dt_s:2e-5 ~steps:40
      ~precond:Thermal.Mesh.Pc_jacobi ()
  in
  let rs =
    Thermal.Transient.step_response cfg ~power:p ~dt_s:2e-5 ~steps:40
      ~precond:(Thermal.Mesh.Pc_ssor 1.2) ()
  in
  let rm =
    Thermal.Transient.step_response cfg ~power:p ~dt_s:2e-5 ~steps:40
      ~precond:Thermal.Mesh.Pc_mg ()
  in
  Array.iteri
    (fun k pj ->
       check_float ~eps:1e-7
         (Printf.sprintf "jacobi/ssor parity at step %d" k) pj
         rs.Thermal.Transient.peak_rise_k.(k);
       check_float ~eps:1e-7
         (Printf.sprintf "jacobi/mg parity at step %d" k) pj
         rm.Thermal.Transient.peak_rise_k.(k))
    rj.Thermal.Transient.peak_rise_k;
  Alcotest.(check bool)
    (Printf.sprintf "ssor %d iterations < jacobi %d"
       rs.Thermal.Transient.cg_iterations rj.Thermal.Transient.cg_iterations)
    true
    (rs.Thermal.Transient.cg_iterations < rj.Thermal.Transient.cg_iterations)

(* --- adjoint ------------------------------------------------------------------ *)

(* A deliberately lopsided power map: two unequal hotspots on a warm
   background, so the softmax objective spreads non-trivial weight over
   several tiles. *)
let lopsided_power ~nx ~ny ~total =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let g = Geo.Grid.create ~nx ~ny ~extent in
  let base = 0.2 *. total /. float_of_int (nx * ny) in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy _ -> Geo.Grid.set g ~ix ~iy base);
  Geo.Grid.add g ~ix:(nx / 4) ~iy:(ny / 4) (0.5 *. total);
  Geo.Grid.add g ~ix:(3 * nx / 4) ~iy:(3 * ny / 4) (0.3 *. total);
  g

(* Central-difference validation through superposition: the system is
   linear, so T(P + s e_tile) = T0 + s u with u = G^-1 e_tile solved
   once, and the perturbed objective is evaluated *analytically* from the
   two fields. The solver error then enters the difference quotient
   linearly instead of divided by 2 eps, which is what makes a 1e-6
   relative match attainable (a naive re-solve per perturbation cannot
   beat ~1e-3: truncation and solver noise pull eps in opposite
   directions). *)
let fd_probe cfg problem (adj : Thermal.Adjoint.t) ~precond ~ix ~iy =
  let zp = cfg.Thermal.Mesh.stack.Thermal.Stack.power_layer in
  let n = Array.length adj.Thermal.Adjoint.lambda in
  let e = Array.make n 0.0 in
  e.(Thermal.Mesh.node_index cfg ~ix ~iy ~iz:zp) <- 1.0;
  let u = Thermal.Mesh.solve ~precond (Thermal.Mesh.with_rhs problem e) in
  let fwd = adj.Thermal.Adjoint.forward in
  let eps = 1e-5 in
  let shifted s =
    Thermal.Adjoint.smoothed_peak ~sharpness:adj.Thermal.Adjoint.sharpness
      { fwd with
        Thermal.Mesh.temp =
          Array.mapi
            (fun i t -> t +. (s *. u.Thermal.Mesh.temp.(i)))
            fwd.Thermal.Mesh.temp }
  in
  let fd = (shifted eps -. shifted (-.eps)) /. (2.0 *. eps) in
  let sens = Geo.Grid.get adj.Thermal.Adjoint.sensitivity ~ix ~iy in
  let rel = Float.abs (fd -. sens) /. Float.max (Float.abs fd) 1e-30 in
  if rel > 1e-6 then
    Alcotest.failf
      "tile (%d,%d): adjoint %.12g K/W vs central difference %.12g K/W \
       (relative %.3g > 1e-6)"
      ix iy sens fd rel

let fd_validate ~nx ~precond_choice () =
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = nx; ny = nx }
  in
  let power = lopsided_power ~nx ~ny:nx ~total:0.05 in
  let problem = Thermal.Mesh.build cfg ~power in
  let precond = Thermal.Mesh.precond_of_choice problem precond_choice in
  let adj = Thermal.Adjoint.solve ~precond problem in
  (* probe the most sensitive tile and a cool corner *)
  let hx, hy = Geo.Grid.argmax adj.Thermal.Adjoint.sensitivity in
  fd_probe cfg problem adj ~precond ~ix:hx ~iy:hy;
  fd_probe cfg problem adj ~precond ~ix:0 ~iy:0

let test_adjoint_fd_ssor_8 () =
  fd_validate ~nx:8 ~precond_choice:(Thermal.Mesh.Pc_ssor 1.2) ()

let test_adjoint_fd_mg_16 () =
  fd_validate ~nx:16 ~precond_choice:Thermal.Mesh.Pc_mg ()

let test_adjoint_fd_full_system () =
  (* the looser sanity check the superposition trick replaces: actually
     re-solve the perturbed system on both sides. Bounded by solver
     noise / (2 delta), so only ~1e-3 relative is meaningful here. *)
  let nx = 8 in
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = nx; ny = nx }
  in
  let power = lopsided_power ~nx ~ny:nx ~total:0.05 in
  let adj = Thermal.Adjoint.solve (Thermal.Mesh.build cfg ~power) in
  let ix, iy = Geo.Grid.argmax adj.Thermal.Adjoint.sensitivity in
  let delta = 1e-3 in
  let peak_with d =
    let p = Geo.Grid.copy power in
    Geo.Grid.add p ~ix ~iy d;
    Thermal.Adjoint.smoothed_peak ~sharpness:adj.Thermal.Adjoint.sharpness
      (Thermal.Mesh.solve (Thermal.Mesh.build cfg ~power:p))
  in
  let fd = (peak_with delta -. peak_with (-.delta)) /. (2.0 *. delta) in
  let sens = Geo.Grid.get adj.Thermal.Adjoint.sensitivity ~ix ~iy in
  let rel = Float.abs (fd -. sens) /. Float.abs fd in
  Alcotest.(check bool)
    (Printf.sprintf "full-system FD %.6g vs adjoint %.6g (rel %.3g)" fd sens
       rel)
    true (rel <= 1e-3)

let test_adjoint_smoothing_bounds () =
  let nx = 8 in
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = nx; ny = nx }
  in
  let power = lopsided_power ~nx ~ny:nx ~total:0.05 in
  let adj = Thermal.Adjoint.solve (Thermal.Mesh.build cfg ~power) in
  let gap =
    adj.Thermal.Adjoint.smoothed_peak_k -. adj.Thermal.Adjoint.peak_rise_k
  in
  Alcotest.(check bool) "smoothed peak upper-bounds the true peak" true
    (gap >= 0.0);
  let bound =
    log (float_of_int (nx * nx)) /. adj.Thermal.Adjoint.sharpness
  in
  Alcotest.(check bool)
    (Printf.sprintf "gap %.4g within ln(n)/beta = %.4g" gap bound)
    true (gap <= bound +. 1e-12);
  (* sensitivities are a chain of softmax weights through G^-1: all
     non-negative, and their total is the sum of the adjoint field over
     the power layer *)
  Geo.Grid.iteri adj.Thermal.Adjoint.sensitivity ~f:(fun ~ix ~iy v ->
      if v < 0.0 then
        Alcotest.failf "negative sensitivity %.3g at (%d,%d)" v ix iy)

let test_adjoint_validation () =
  let nx = 4 in
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = nx; ny = nx }
  in
  let power = uniform_power ~nx ~ny:nx ~total:0.01 in
  let problem = Thermal.Mesh.build cfg ~power in
  (match Thermal.Adjoint.solve ~sharpness:0.0 problem with
   | _ -> Alcotest.fail "zero sharpness accepted"
   | exception Invalid_argument _ -> ());
  let other =
    Thermal.Mesh.solve
      (Thermal.Mesh.build
         { cfg with Thermal.Mesh.nx = 8; ny = 8 }
         ~power:(uniform_power ~nx:8 ~ny:8 ~total:0.01))
  in
  match Thermal.Adjoint.solve ~forward:other problem with
  | _ -> Alcotest.fail "mismatched forward accepted"
  | exception Invalid_argument _ -> ()

let test_adjoint_fault_structured_error () =
  (* a clean forward passed in, the adjoint solve itself fault-armed:
     four stalls defeat the whole escalation ladder, and the failure must
     surface as a structured error, not an exception or a silent NaN *)
  let nx = 8 in
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = nx; ny = nx }
  in
  let power = lopsided_power ~nx ~ny:nx ~total:0.05 in
  let problem = Thermal.Mesh.build cfg ~power in
  let fwd = Thermal.Mesh.solve problem in
  let r =
    Robust.Faults.with_fault ~times:4 Robust.Faults.Cg_stall (fun () ->
        Thermal.Adjoint.solve_result ~forward:fwd problem)
  in
  match r with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fault-armed adjoint solve reported success"

let test_adjoint_warm_start () =
  (* warm-starting the adjoint from a previous lambda must converge to
     the same field *)
  let nx = 8 in
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = nx; ny = nx }
  in
  let power = lopsided_power ~nx ~ny:nx ~total:0.05 in
  let problem = Thermal.Mesh.build cfg ~power in
  let cold = Thermal.Adjoint.solve problem in
  let warm =
    Thermal.Adjoint.solve ~x0:cold.Thermal.Adjoint.lambda
      ~forward:cold.Thermal.Adjoint.forward problem
  in
  Array.iteri
    (fun i v ->
       check_float ~eps:1e-8 (Printf.sprintf "lambda %d" i) v
         warm.Thermal.Adjoint.lambda.(i))
    cold.Thermal.Adjoint.lambda;
  Alcotest.(check bool) "warm restart converges immediately" true
    (warm.Thermal.Adjoint.cg_iterations
     <= cold.Thermal.Adjoint.cg_iterations)

(* --- spice export ------------------------------------------------------------ *)

(* Parse the emitted netlist back into a conductance matrix and verify it
   reproduces the original operator (a full round-trip of the export). *)
let test_spice_roundtrip () =
  let p = uniform_power ~nx:6 ~ny:6 ~total:0.01 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 6; ny = 6 } in
  let problem = Thermal.Mesh.build cfg ~power:p in
  let m = Thermal.Mesh.matrix problem in
  let n = Thermal.Sparse.dim m in
  let s = Thermal.Spice.to_string problem in
  let b = Thermal.Sparse.builder ~n in
  let n_current = ref 0 in
  let node_index name =
    (* "n123" -> 123 *)
    if String.length name < 2 || name.[0] <> 'n' then
      Alcotest.failf "bad node name %s" name;
    int_of_string (String.sub name 1 (String.length name - 1))
  in
  String.split_on_char '\n' s
  |> List.iter (fun lne ->
      if String.length lne > 0 then
        match lne.[0] with
        | 'R' ->
          (match String.split_on_char ' ' lne with
           | [ _; ni; "0"; r ] ->
             let i = node_index ni in
             Thermal.Sparse.add b i i (1.0 /. float_of_string r)
           | [ _; ni; nj; r ] ->
             let i = node_index ni and j = node_index nj in
             let g = 1.0 /. float_of_string r in
             Thermal.Sparse.add b i i g;
             Thermal.Sparse.add b j j g;
             Thermal.Sparse.add b i j (-.g);
             Thermal.Sparse.add b j i (-.g)
           | _ -> Alcotest.failf "unparseable R line: %s" lne)
        | 'I' -> incr n_current
        | _ -> ());
  let rebuilt = Thermal.Sparse.of_builder b in
  (* compare operators on a deterministic pseudo-random vector *)
  let x = Array.init n (fun i -> sin (float_of_int i)) in
  let y1 = Array.make n 0.0 and y2 = Array.make n 0.0 in
  Thermal.Sparse.mul m x y1;
  Thermal.Sparse.mul rebuilt x y2;
  Array.iteri
    (fun i v ->
       if Float.abs (v -. y2.(i)) > 1e-9 *. (1.0 +. Float.abs v) then
         Alcotest.failf "operator mismatch at %d: %g vs %g" i v y2.(i))
    y1;
  (* one current source per powered node *)
  let powered =
    Array.fold_left (fun acc w -> if w <> 0.0 then acc + 1 else acc) 0
      (Thermal.Mesh.rhs problem)
  in
  Alcotest.(check int) "current sources" powered !n_current

let test_spice_counts () =
  let p = uniform_power ~nx:4 ~ny:4 ~total:0.01 in
  let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 4; ny = 4 } in
  let problem = Thermal.Mesh.build cfg ~power:p in
  let m = Thermal.Mesh.matrix problem in
  let n = Thermal.Sparse.dim m in
  let couplings = (Thermal.Sparse.nnz m - n) / 2 in
  (* grounded resistors: top and bottom faces have boundary conductance *)
  let grounds = 2 * 4 * 4 in
  Alcotest.(check int) "resistor count"
    (couplings + grounds)
    (Thermal.Spice.count_resistors problem)

(* --- metrics ---------------------------------------------------------------- *)

let test_metrics () =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:4.0 ~h:4.0 in
  let g = Geo.Grid.create ~nx:2 ~ny:2 ~extent in
  Geo.Grid.set g ~ix:0 ~iy:0 1.0;
  Geo.Grid.set g ~ix:1 ~iy:0 3.0;
  Geo.Grid.set g ~ix:0 ~iy:1 2.0;
  Geo.Grid.set g ~ix:1 ~iy:1 6.0;
  let m = Thermal.Metrics.of_map g in
  check_float "peak" 6.0 m.Thermal.Metrics.peak_rise_k;
  check_float "mean" 3.0 m.Thermal.Metrics.mean_rise_k;
  check_float "min" 1.0 m.Thermal.Metrics.min_rise_k;
  check_float "gradient" 5.0 m.Thermal.Metrics.gradient_k;
  Alcotest.(check (pair int int)) "hottest" (1, 1)
    m.Thermal.Metrics.hottest_tile

let test_metrics_reduction () =
  let mk peak =
    { Thermal.Metrics.peak_rise_k = peak; mean_rise_k = peak /. 2.0;
      min_rise_k = 0.0; gradient_k = peak; hottest_tile = (0, 0) }
  in
  check_float "20% reduction" 20.0
    (Thermal.Metrics.reduction_pct ~before:(mk 10.0) ~after:(mk 8.0));
  check_float "gradient reduction" 50.0
    (Thermal.Metrics.gradient_reduction_pct ~before:(mk 10.0)
       ~after:(mk 5.0));
  check_float "degenerate base" 0.0
    (Thermal.Metrics.reduction_pct ~before:(mk 0.0) ~after:(mk 0.0))

(* --- property tests -------------------------------------------------------- *)

(* random diagonally-dominant SPD matrix *)
let random_spd rng n =
  let b = Thermal.Sparse.builder ~n in
  for i = 0 to n - 1 do
    let row_off = ref 0.0 in
    for j = 0 to n - 1 do
      if j <> i && Geo.Rng.bernoulli rng 0.2 then begin
        let v = -.Geo.Rng.float rng 1.0 in
        (* keep symmetry by adding both triangles from the lower one *)
        if j < i then begin
          Thermal.Sparse.add b i j v;
          Thermal.Sparse.add b j i v;
          row_off := !row_off +. Float.abs v
        end
      end
    done;
    ignore !row_off
  done;
  let m0 = Thermal.Sparse.of_builder b in
  (* second pass: diagonal = |row| sum + margin *)
  let b2 = Thermal.Sparse.builder ~n in
  for i = 0 to n - 1 do
    Thermal.Sparse.iter_row m0 i ~f:(fun j v -> Thermal.Sparse.add b2 i j v);
    Thermal.Sparse.add b2 i i (Thermal.Sparse.row_sum_abs m0 i +. 1.0)
  done;
  Thermal.Sparse.of_builder b2

let prop_cg_matches_cholesky =
  QCheck.Test.make ~name:"CG and Cholesky agree on random SPD systems"
    ~count:25
    QCheck.(pair (int_range 2 30) (int_range 0 10000))
    (fun (n, seed) ->
       let rng = Geo.Rng.create seed in
       let m = random_spd rng n in
       let rhs = Array.init n (fun i -> Geo.Rng.float rng 2.0 -. 1.0 +. float_of_int (i mod 3)) in
       let cg = Thermal.Cg.solve m ~b:rhs ~tol:1e-12 () in
       let chol = Thermal.Dense.solve (Thermal.Dense.of_sparse m) rhs in
       cg.Thermal.Cg.converged
       && Array.for_all2
            (fun a b -> Float.abs (a -. b) < 1e-7 *. (1.0 +. Float.abs b))
            cg.Thermal.Cg.x chol)

let prop_mesh_superposition =
  QCheck.Test.make ~name:"thermal superposition (linearity in the source)"
    ~count:10
    QCheck.(pair (int_range 0 5) (int_range 0 5))
    (fun (ax, ay) ->
       let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:120.0 ~h:120.0 in
       let cfg = { Thermal.Mesh.default_config with Thermal.Mesh.nx = 6; ny = 6 } in
       let mk f =
         let g = Geo.Grid.create ~nx:6 ~ny:6 ~extent in
         f g;
         g
       in
       let p1 = mk (fun g -> Geo.Grid.set g ~ix:ax ~iy:ay 0.004) in
       let p2 = mk (fun g -> Geo.Grid.set g ~ix:(5 - ax) ~iy:(5 - ay) 0.006) in
       let p12 =
         mk (fun g ->
             Geo.Grid.set g ~ix:ax ~iy:ay 0.004;
             Geo.Grid.add g ~ix:(5 - ax) ~iy:(5 - ay) 0.006)
       in
       let solve p =
         (Thermal.Mesh.solve ~tol:1e-12 (Thermal.Mesh.build cfg ~power:p))
           .Thermal.Mesh.temp
       in
       let t1 = solve p1 and t2 = solve p2 and t12 = solve p12 in
       Array.for_all2
         (fun s t -> Float.abs (s -. t) < 1e-6 *. (1.0 +. Float.abs t))
         (Array.mapi (fun i v -> v +. t2.(i)) t1)
         t12)

(* --- multigrid ------------------------------------------------------------------ *)

let test_mg_standalone_matches_cg () =
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let problem = Thermal.Mesh.build small_cfg ~power:p in
  let h = Thermal.Mesh.multigrid problem in
  let out = Thermal.Multigrid.solve h ~b:(Thermal.Mesh.rhs problem) () in
  Alcotest.(check bool) "standalone solve converged" true
    out.Thermal.Multigrid.converged;
  let cg = Thermal.Mesh.solve ~tol:1e-12 problem in
  Array.iteri
    (fun i v ->
       if Float.abs (v -. out.Thermal.Multigrid.x.(i))
          > 1e-7 *. (1.0 +. Float.abs v)
       then Alcotest.failf "node %d: cg %g vs mg %g" i v
           out.Thermal.Multigrid.x.(i))
    cg.Thermal.Mesh.temp

let test_mg_precond_parity_and_iterations () =
  (* fig-6 resolution: the default 40x40x9 mesh *)
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:40 ~ny:40 ~total:0.2 in
  let cfg =
    { Thermal.Mesh.default_config with Thermal.Mesh.nx = 40; ny = 40 }
  in
  let problem = Thermal.Mesh.build cfg ~power:p in
  let ssor = Thermal.Mesh.solve ~precond:(Thermal.Cg.Ssor 1.2) problem in
  let precond = Thermal.Mesh.precond_of_choice problem Thermal.Mesh.Pc_mg in
  let mg = Thermal.Mesh.solve ~precond problem in
  Alcotest.(check bool)
    (Printf.sprintf "mg iterations (%d) below ssor (%d)"
       mg.Thermal.Mesh.cg_iterations ssor.Thermal.Mesh.cg_iterations)
    true
    (mg.Thermal.Mesh.cg_iterations < ssor.Thermal.Mesh.cg_iterations);
  Array.iteri
    (fun i v ->
       if Float.abs (v -. mg.Thermal.Mesh.temp.(i))
          > 1e-6 *. (1.0 +. Float.abs v)
       then Alcotest.failf "node %d: ssor %g vs mg %g" i v
           mg.Thermal.Mesh.temp.(i))
    ssor.Thermal.Mesh.temp

let test_mg_hierarchy_cached () =
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let p1 = Thermal.Mesh.build small_cfg ~power:p in
  let h1 = Thermal.Mesh.multigrid p1 in
  Alcotest.(check bool) "same problem reuses hierarchy" true
    (h1 == Thermal.Mesh.multigrid p1);
  (* a cache hit on the mesh entry shares the hierarchy too *)
  let p2 = Thermal.Mesh.build small_cfg ~power:p in
  Alcotest.(check bool) "cache hit shares hierarchy" true
    (h1 == Thermal.Mesh.multigrid p2)

let test_mg_dimension_mismatch_rejected () =
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let problem = Thermal.Mesh.build small_cfg ~power:p in
  let h = Thermal.Mesh.multigrid problem in
  let m = poisson_1d 8 in
  (match
     Thermal.Cg.solve m ~b:(Array.make 8 1.0)
       ~precond:(Thermal.Cg.Multigrid h) ()
   with
   | _ -> Alcotest.fail "dimension mismatch accepted"
   | exception Invalid_argument _ -> ())

let test_mg_escalation_recovers () =
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let problem = Thermal.Mesh.build small_cfg ~power:p in
  let precond = Thermal.Mesh.precond_of_choice problem Thermal.Mesh.Pc_mg in
  let esc =
    Robust.Faults.with_fault Robust.Faults.Cg_stall (fun () ->
        Thermal.Cg.solve_escalating
          (Thermal.Mesh.matrix problem)
          ~b:(Thermal.Mesh.rhs problem) ~precond ())
  in
  (match esc.Thermal.Cg.esc_status with
   | Thermal.Cg.Recovered rung ->
     (* an MG-preconditioned first attempt gets the cold-Jacobi rung *)
     Alcotest.(check string) "recovering rung" "jacobi" rung
   | Thermal.Cg.Clean -> Alcotest.fail "stall not injected"
   | Thermal.Cg.Degraded -> Alcotest.fail "ladder failed to recover");
  Alcotest.(check (list string)) "rungs recorded" [ "jacobi" ]
    esc.Thermal.Cg.esc_rungs;
  Alcotest.(check bool) "recovered outcome converged" true
    esc.Thermal.Cg.esc_outcome.Thermal.Cg.converged

(* --- robustness ----------------------------------------------------------------- *)

(* [[1, 3], [3, 1]] is symmetric with positive diagonal but indefinite:
   CG's very first curvature is pAp = -4. The guard must stop before the
   division and hand back a finite iterate. *)
let test_cg_breakdown_indefinite () =
  let b = Thermal.Sparse.builder ~n:2 in
  Thermal.Sparse.add b 0 0 1.0;
  Thermal.Sparse.add b 0 1 3.0;
  Thermal.Sparse.add b 1 0 3.0;
  Thermal.Sparse.add b 1 1 1.0;
  let m = Thermal.Sparse.of_builder b in
  let out = Thermal.Cg.solve m ~b:[| 1.0; -1.0 |] () in
  Alcotest.(check bool) "not converged" false out.Thermal.Cg.converged;
  (match out.Thermal.Cg.breakdown with
   | Some why ->
     Alcotest.(check bool) "curvature reason" true
       (String.length why > 0
        && String.sub why 0 12 = "non-positive")
   | None -> Alcotest.fail "breakdown not reported");
  Array.iter
    (fun v ->
       Alcotest.(check bool) "iterate stays finite" true (Float.is_finite v))
    out.Thermal.Cg.x

let test_cg_escalation_recovers () =
  let b = Thermal.Sparse.builder ~n:2 in
  Thermal.Sparse.add b 0 0 2.0;
  Thermal.Sparse.add b 0 1 (-1.0);
  Thermal.Sparse.add b 1 0 (-1.0);
  Thermal.Sparse.add b 1 1 2.0;
  let m = Thermal.Sparse.of_builder b in
  (* one injected stall fails the first attempt only; the cold-Jacobi
     rung is skipped (the first attempt already was one), so SSOR is the
     recovering rung *)
  let esc =
    Robust.Faults.with_fault Robust.Faults.Cg_stall (fun () ->
        Thermal.Cg.solve_escalating m ~b:[| 1.0; 0.0 |] ())
  in
  (match esc.Thermal.Cg.esc_status with
   | Thermal.Cg.Recovered rung ->
     Alcotest.(check string) "recovering rung" "ssor" rung
   | Thermal.Cg.Clean -> Alcotest.fail "stall not injected"
   | Thermal.Cg.Degraded -> Alcotest.fail "ladder failed to recover");
  Alcotest.(check (list string)) "rungs recorded" [ "ssor" ]
    esc.Thermal.Cg.esc_rungs;
  Alcotest.(check bool) "recovered outcome converged" true
    esc.Thermal.Cg.esc_outcome.Thermal.Cg.converged;
  (* a clean solve reports an empty ladder *)
  let clean = Thermal.Cg.solve_escalating m ~b:[| 1.0; 0.0 |] () in
  (match clean.Thermal.Cg.esc_status with
   | Thermal.Cg.Clean -> ()
   | _ -> Alcotest.fail "clean solve escalated");
  Alcotest.(check (list string)) "no rungs" [] clean.Thermal.Cg.esc_rungs

(* --- convergence telemetry --------------------------------------------------- *)

(* 1-D chain Laplacian with a Dirichlet anchor: SPD, and at [n] in the
   hundreds the unpreconditioned-Jacobi solve needs well over
   [residual_log_capacity] iterations, exercising the stride-doubling
   downsample. *)
let chain_system n =
  let b = Thermal.Sparse.builder ~n in
  for i = 0 to n - 1 do
    Thermal.Sparse.add b i i (if i = 0 then 3.0 else 2.0);
    if i > 0 then Thermal.Sparse.add b i (i - 1) (-1.0);
    if i < n - 1 then Thermal.Sparse.add b i (i + 1) (-1.0)
  done;
  (Thermal.Sparse.of_builder b, Array.make n 1.0)

let test_cg_history_ring () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Thermal.Cg.clear_histories ();
  Alcotest.(check int) "ring starts empty" 0
    (List.length (Thermal.Cg.recent_histories ()));
  let m, rhs = chain_system 16 in
  let cold = Thermal.Cg.solve m ~b:rhs () in
  let _warm = Thermal.Cg.solve m ~b:rhs ~x0:cold.Thermal.Cg.x () in
  (match Thermal.Cg.recent_histories () with
   | [ h_cold; h_warm ] ->
     Alcotest.(check string) "label defaults to the preconditioner"
       "jacobi" h_cold.Thermal.Cg.h_label;
     Alcotest.(check bool) "cold marked cold" false h_cold.Thermal.Cg.h_warm;
     Alcotest.(check bool) "warm marked warm" true h_warm.Thermal.Cg.h_warm;
     Alcotest.(check bool) "converged" true h_cold.Thermal.Cg.h_converged;
     Alcotest.(check int) "iterations recorded"
       cold.Thermal.Cg.iterations h_cold.Thermal.Cg.h_iterations;
     let r = h_cold.Thermal.Cg.h_residuals in
     Alcotest.(check bool) "residual trajectory present" true
       (Array.length r >= 2);
     Alcotest.(check bool) "trajectory ends far below its start" true
       (r.(Array.length r - 1) < r.(0) /. 1e6)
   | hs -> Alcotest.failf "expected 2 histories, got %d" (List.length hs));
  (* residual metrics land in the registry *)
  (match Obs.Metrics.histogram "thermal.cg.residual.rate" with
   | Some h ->
     Alcotest.(check bool) "contraction rate in (0, 1)" true
       (h.Obs.Metrics.last > 0.0 && h.Obs.Metrics.last < 1.0)
   | None -> Alcotest.fail "thermal.cg.residual.rate not recorded");
  (match Obs.Metrics.histogram "thermal.cg.residual.final" with
   | Some _ -> ()
   | None -> Alcotest.fail "thermal.cg.residual.final not recorded");
  (* escalation rungs get their own labeled entries *)
  Thermal.Cg.clear_histories ();
  let esc =
    Robust.Faults.with_fault Robust.Faults.Cg_stall (fun () ->
        Thermal.Cg.solve_escalating m ~b:rhs ())
  in
  (match esc.Thermal.Cg.esc_status with
   | Thermal.Cg.Recovered _ -> ()
   | _ -> Alcotest.fail "stall not recovered");
  let labels =
    List.map (fun h -> h.Thermal.Cg.h_label) (Thermal.Cg.recent_histories ())
  in
  Alcotest.(check bool) "escalation rung labeled" true
    (List.exists
       (fun l ->
          String.length l > 4 && String.sub l 0 4 = "esc:")
       labels);
  (* the ring is bounded: overfill it and count *)
  Thermal.Cg.clear_histories ();
  let m16, rhs16 = chain_system 8 in
  for _ = 1 to Thermal.Cg.history_ring_capacity + 5 do
    ignore (Thermal.Cg.solve m16 ~b:rhs16 ())
  done;
  Alcotest.(check int) "ring bounded" Thermal.Cg.history_ring_capacity
    (List.length (Thermal.Cg.recent_histories ()));
  (* histories_json mirrors the ring *)
  match Thermal.Cg.histories_json () with
  | Obs.Json.List l ->
    Alcotest.(check int) "json entry per history"
      Thermal.Cg.history_ring_capacity (List.length l);
    (match l with
     | entry :: _ ->
       List.iter
         (fun k ->
            if Obs.Json.member k entry = None then
              Alcotest.failf "history json missing key %s" k)
         [ "label"; "warm_start"; "iterations"; "converged"; "breakdown";
           "residual_stride"; "residuals" ]
     | [] -> ())
  | _ -> Alcotest.fail "histories_json is not a list"

let test_cg_residual_log_bounded () =
  Thermal.Cg.clear_histories ();
  let m, rhs = chain_system 600 in
  let out = Thermal.Cg.solve m ~b:rhs ~tol:1e-12 () in
  Alcotest.(check bool) "long solve actually exceeds the buffer" true
    (out.Thermal.Cg.iterations + 1 > Thermal.Cg.residual_log_capacity);
  match Thermal.Cg.recent_histories () with
  | [ h ] ->
    let len = Array.length h.Thermal.Cg.h_residuals in
    Alcotest.(check bool) "buffer bounded" true
      (len <= Thermal.Cg.residual_log_capacity);
    Alcotest.(check bool) "stride doubled" true
      (h.Thermal.Cg.h_stride > 1);
    (* the downsampled trajectory still covers the whole run *)
    Alcotest.(check bool) "coverage" true
      (len * h.Thermal.Cg.h_stride >= out.Thermal.Cg.iterations + 1);
    Alcotest.(check bool) "still a contraction" true
      (h.Thermal.Cg.h_residuals.(len - 1) < h.Thermal.Cg.h_residuals.(0))
  | hs -> Alcotest.failf "expected 1 history, got %d" (List.length hs)

let test_mesh_stale_cache_defense () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  let prob1 = Thermal.Mesh.build small_cfg ~power:p in
  let n = Thermal.Sparse.dim (Thermal.Mesh.matrix prob1) in
  (* a poisoned cache hit must be detected, evicted and reassembled *)
  let prob2 =
    Robust.Faults.with_fault Robust.Faults.Stale_mesh_cache (fun () ->
        Thermal.Mesh.build small_cfg ~power:p)
  in
  Alcotest.(check int) "reassembled to the right dimension" n
    (Thermal.Sparse.dim (Thermal.Mesh.matrix prob2));
  Alcotest.(check (option int)) "stale hit counted" (Some 1)
    (Obs.Metrics.counter_value "thermal.mesh.cache.stale");
  (* the repaired entry is a working operator *)
  let s = Thermal.Mesh.solve prob2 in
  Alcotest.(check bool) "solves after repair" true
    (Array.for_all Float.is_finite s.Thermal.Mesh.temp);
  Alcotest.(check (list string)) "clean solve, no rungs" []
    s.Thermal.Mesh.cg_rungs;
  (* the next build hits the healthy entry silently *)
  let prob3 = Thermal.Mesh.build small_cfg ~power:p in
  Alcotest.(check bool) "healthy entry shared" true
    (Thermal.Mesh.matrix prob2 == Thermal.Mesh.matrix prob3)

let test_mesh_perturbed_matrix_not_cached () =
  Thermal.Mesh.cache_clear ();
  let p = uniform_power ~nx:10 ~ny:10 ~total:0.02 in
  (* under an armed Perturb_matrix the assembly is poisoned and the cache
     bypassed; the solve must fail loudly, not silently *)
  (match
     Robust.Faults.with_fault Robust.Faults.Perturb_matrix (fun () ->
         Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:p))
   with
   | _ -> Alcotest.fail "perturbed matrix solved silently"
   | exception Robust.Error.Error (Robust.Error.Solver_diverged _) -> ());
  (* the poison must not have been published: a healthy build solves *)
  let s = Thermal.Mesh.solve (Thermal.Mesh.build small_cfg ~power:p) in
  Alcotest.(check bool) "healthy build after fault" true
    (Array.for_all Float.is_finite s.Thermal.Mesh.temp)

(* --- fft / blur -------------------------------------------------------------------- *)

(* Reference O(n^2) DFT for parity checks. *)
let naive_dft re im =
  let n = Array.length re in
  let outr = Array.make n 0.0 and outi = Array.make n 0.0 in
  for k = 0 to n - 1 do
    let sr = ref 0.0 and si = ref 0.0 in
    for t = 0 to n - 1 do
      let ang = -2.0 *. Float.pi *. float_of_int (k * t) /. float_of_int n in
      sr := !sr +. (re.(t) *. cos ang) -. (im.(t) *. sin ang);
      si := !si +. (re.(t) *. sin ang) +. (im.(t) *. cos ang)
    done;
    outr.(k) <- !sr;
    outi.(k) <- !si
  done;
  (outr, outi)

let random_signal ~seed n =
  let st = Random.State.make [| seed; n |] in
  ( Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0),
    Array.init n (fun _ -> Random.State.float st 2.0 -. 1.0) )

let test_fft_parity_vs_dft () =
  (* 8/128 take the radix-2 path, 40/60/127 exercise Bluestein *)
  List.iter
    (fun n ->
       let re, im = random_signal ~seed:7 n in
       let dr, di = naive_dft re im in
       let fr = Array.copy re and fi = Array.copy im in
       Thermal.Fft.fft ~re:fr ~im:fi;
       let scale = ref 0.0 and err = ref 0.0 in
       for k = 0 to n - 1 do
         scale := Float.max !scale (Float.hypot dr.(k) di.(k));
         err :=
           Float.max !err
             (Float.hypot (fr.(k) -. dr.(k)) (fi.(k) -. di.(k)))
       done;
       if !err /. !scale > 1e-9 then
         Alcotest.failf "n=%d: fft deviates from dft by %.2e rel" n
           (!err /. !scale))
    [ 8; 40; 60; 127; 128 ]

let test_fft_roundtrip () =
  List.iter
    (fun n ->
       let re, im = random_signal ~seed:11 n in
       let fr = Array.copy re and fi = Array.copy im in
       Thermal.Fft.fft ~re:fr ~im:fi;
       Thermal.Fft.ifft ~re:fr ~im:fi;
       Array.iteri
         (fun k v -> check_float "re roundtrip" v fr.(k)) re;
       Array.iteri
         (fun k v -> check_float "im roundtrip" v fi.(k)) im)
    [ 1; 2; 96; 100 ];
  (* 2-D roundtrip with distinct non-pow2 dims *)
  let nx = 12 and ny = 20 in
  let re, im = random_signal ~seed:13 (nx * ny) in
  let fr = Array.copy re and fi = Array.copy im in
  Thermal.Fft.fft2 ~nx ~ny ~re:fr ~im:fi;
  Thermal.Fft.ifft2 ~nx ~ny ~re:fr ~im:fi;
  Array.iteri (fun k v -> check_float "fft2 roundtrip" v fr.(k)) re;
  Array.iteri (fun k v -> check_float "fft2 roundtrip im" v fi.(k)) im

let test_fft_linearity () =
  let n = 60 in
  let xr, xi = random_signal ~seed:17 n in
  let yr, yi = random_signal ~seed:19 n in
  let a = 1.75 and b = -0.4 in
  let zr = Array.init n (fun k -> (a *. xr.(k)) +. (b *. yr.(k))) in
  let zi = Array.init n (fun k -> (a *. xi.(k)) +. (b *. yi.(k))) in
  Thermal.Fft.fft ~re:xr ~im:xi;
  Thermal.Fft.fft ~re:yr ~im:yi;
  Thermal.Fft.fft ~re:zr ~im:zi;
  for k = 0 to n - 1 do
    check_float ~eps:1e-10 "linear re"
      ((a *. xr.(k)) +. (b *. yr.(k))) zr.(k);
    check_float ~eps:1e-10 "linear im"
      ((a *. xi.(k)) +. (b *. yi.(k))) zi.(k)
  done

let test_fft_validation () =
  (match Thermal.Fft.fft ~re:[||] ~im:[||] with
   | _ -> Alcotest.fail "empty input accepted"
   | exception Invalid_argument _ -> ());
  (match Thermal.Fft.fft ~re:(Array.make 4 0.0) ~im:(Array.make 3 0.0) with
   | _ -> Alcotest.fail "mismatched lengths accepted"
   | exception Invalid_argument _ -> ());
  Alcotest.(check int) "next_pow2" 64 (Thermal.Fft.next_pow2 33);
  Alcotest.(check bool) "is_pow2" true (Thermal.Fft.is_pow2 64);
  Alcotest.(check bool) "not pow2" false (Thermal.Fft.is_pow2 48)

(* a 24x24 mesh: even, non-power-of-two, big enough for a localized
   kernel *)
let blur_cfg =
  { Thermal.Mesh.default_config with Thermal.Mesh.nx = 24; ny = 24 }

let point_power sources =
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let g = Geo.Grid.create ~nx:24 ~ny:24 ~extent in
  List.iter (fun (ix, iy, w) -> Geo.Grid.set g ~ix ~iy w) sources;
  g

let test_blur_reproduces_impulse_response () =
  Thermal.Mesh.cache_clear ();
  (* a 1 W delta far from the characterization corner: the deconvolved
     transfer is exact for the discrete operator, so the blurred field
     must match a full solve to characterization tolerance *)
  let power = point_power [ (12, 12, 1.0) ] in
  let problem = Thermal.Mesh.build blur_cfg ~power in
  let kernel = Thermal.Mesh.blur problem in
  let exact = Thermal.Mesh.solve problem in
  let g = Thermal.Mesh.active_layer_grid exact in
  let peak = Geo.Grid.max_value g in
  let field = Thermal.Blur.field kernel ~power in
  let max_rel = ref 0.0 in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy v ->
      let d = Float.abs (Geo.Grid.get field ~ix ~iy -. v) /. peak in
      if d > !max_rel then max_rel := d);
  Alcotest.(check bool)
    (Printf.sprintf "off-corner delta matches exact solve (got %.2e)"
       !max_rel)
    true (!max_rel <= 1e-7)

let test_blur_screens_composed_sources () =
  Thermal.Mesh.cache_clear ();
  (* off-center sources, including one near a wall: boundary placement
     is the regime where naive shift-invariant blurring breaks down; the
     exact transfer must not care *)
  let power = point_power [ (8, 14, 0.5); (16, 10, 0.3); (2, 4, 0.4) ] in
  let problem = Thermal.Mesh.build blur_cfg ~power in
  let kernel = Thermal.Mesh.blur problem in
  let exact = Thermal.Mesh.solve problem in
  let g = Thermal.Mesh.active_layer_grid exact in
  let peak = Geo.Grid.max_value g in
  let field = Thermal.Blur.field kernel ~power in
  let max_rel = ref 0.0 in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy v ->
      let d = Float.abs (Geo.Grid.get field ~ix ~iy -. v) /. peak in
      if d > !max_rel then max_rel := d);
  Alcotest.(check bool)
    (Printf.sprintf "composed near-wall sources match exact (got %.2e)"
       !max_rel)
    true (!max_rel <= 1e-7)

let test_blur_linearity () =
  Thermal.Mesh.cache_clear ();
  let p1 = point_power [ (6, 6, 0.4) ] in
  let p2 = point_power [ (18, 15, 0.7) ] in
  let sum = Geo.Grid.map2 p1 p2 ~f:( +. ) in
  let kernel = Thermal.Mesh.blur (Thermal.Mesh.build blur_cfg ~power:sum) in
  let f1 = Thermal.Blur.field kernel ~power:p1 in
  let f2 = Thermal.Blur.field kernel ~power:p2 in
  let fs = Thermal.Blur.field kernel ~power:sum in
  let peak = Geo.Grid.max_value fs in
  Geo.Grid.iteri fs ~f:(fun ~ix ~iy v ->
      let s = Geo.Grid.get f1 ~ix ~iy +. Geo.Grid.get f2 ~ix ~iy in
      if Float.abs (v -. s) /. peak > 1e-12 then
        Alcotest.failf "convolution not linear at (%d,%d)" ix iy);
  (* peak agrees with field's max *)
  check_float ~eps:1e-12 "peak = max of field" peak
    (Thermal.Blur.peak kernel ~power:sum)

let test_blur_validation () =
  Thermal.Mesh.cache_clear ();
  let power = point_power [ (12, 12, 1.0) ] in
  let kernel = Thermal.Mesh.blur (Thermal.Mesh.build blur_cfg ~power) in
  let extent = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:200.0 in
  let wrong = Geo.Grid.create ~nx:10 ~ny:10 ~extent in
  (match Thermal.Blur.field kernel ~power:wrong with
   | _ -> Alcotest.fail "dimension mismatch accepted"
   | exception Invalid_argument _ -> ())

let test_blur_kernel_cached () =
  Thermal.Mesh.cache_clear ();
  let power = point_power [ (12, 12, 1.0) ] in
  let p1 = Thermal.Mesh.build blur_cfg ~power in
  let k1 = Thermal.Mesh.blur p1 in
  (* a cache-hitting rebuild hands back the same characterized kernel *)
  let p2 = Thermal.Mesh.build blur_cfg ~power in
  let k2 = Thermal.Mesh.blur p2 in
  Alcotest.(check bool) "kernel physically shared via the mesh cache" true
    (k1 == k2)

let test_mesh_cache_capacity () =
  let saved = Thermal.Mesh.cache_capacity () in
  Fun.protect
    ~finally:(fun () -> Thermal.Mesh.set_cache_capacity saved)
    (fun () ->
       Obs.Metrics.set_enabled true;
       Obs.Metrics.reset ();
       Thermal.Mesh.cache_clear ();
       Thermal.Mesh.set_cache_capacity 2;
       Alcotest.(check int) "capacity set" 2
         (Thermal.Mesh.cache_capacity ());
       let build nx =
         let p = uniform_power ~nx ~ny:nx ~total:0.01 in
         Thermal.Mesh.build
           { Thermal.Mesh.default_config with Thermal.Mesh.nx; ny = nx }
           ~power:p
       in
       ignore (build 8);
       ignore (build 10);
       let p12 = build 12 in
       (* 3 distinct extents through a 2-slot cache: at least one eviction *)
       (match Obs.Metrics.counter_value "thermal.mesh.cache.evictions" with
        | Some n when n >= 1 -> ()
        | v ->
          Alcotest.failf "expected evictions, got %s"
            (match v with None -> "none" | Some n -> string_of_int n));
       (* the most recent entry is still resident *)
       let p12' = build 12 in
       Alcotest.(check bool) "MRU entry survives" true
         (Thermal.Mesh.matrix p12 == Thermal.Mesh.matrix p12');
       (* shrinking trims immediately; invalid capacities are rejected *)
       Thermal.Mesh.set_cache_capacity 1;
       Alcotest.(check int) "shrunk" 1 (Thermal.Mesh.cache_capacity ());
       match Thermal.Mesh.set_cache_capacity 0 with
       | _ -> Alcotest.fail "capacity 0 accepted"
       | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "thermal"
    [ ("sparse",
       [ Alcotest.test_case "mul matches dense" `Quick
           test_sparse_mul_matches_dense;
         Alcotest.test_case "duplicates summed" `Quick
           test_sparse_duplicates_summed;
         Alcotest.test_case "diagonal and get" `Quick
           test_sparse_diagonal_and_get;
         Alcotest.test_case "bounds" `Quick test_sparse_bounds ]);
      ("cg",
       [ Alcotest.test_case "small exact" `Quick test_cg_small_exact;
         Alcotest.test_case "poisson residual" `Quick
           test_cg_poisson_residual;
         Alcotest.test_case "zero rhs" `Quick test_cg_zero_rhs;
         Alcotest.test_case "bad diagonal rejected" `Quick
           test_cg_rejects_bad_diagonal;
         Alcotest.test_case "warm start" `Quick test_cg_warm_start;
         Alcotest.test_case "ssor matches jacobi and direct" `Quick
           test_cg_ssor_matches_jacobi;
         Alcotest.test_case "ssor rejects bad omega" `Quick
           test_cg_ssor_rejects_bad_omega;
         Alcotest.test_case "telemetry" `Quick test_cg_telemetry ]);
      ("stack",
       [ Alcotest.test_case "default valid" `Quick test_stack_default_valid;
         Alcotest.test_case "validation errors" `Quick
           test_stack_validation_errors;
         Alcotest.test_case "with_sink" `Quick test_stack_with_sink ]);
      ("mesh",
       [ Alcotest.test_case "grid mismatch" `Quick
           test_mesh_requires_matching_grid;
         Alcotest.test_case "linearity" `Quick test_mesh_linearity;
         Alcotest.test_case "energy balance" `Quick test_mesh_energy_balance;
         Alcotest.test_case "x symmetry" `Quick test_mesh_symmetry;
         Alcotest.test_case "hotspot local" `Quick test_mesh_hotspot_is_local;
         Alcotest.test_case "stronger sink cools" `Quick
           test_mesh_stronger_sink_cools;
         Alcotest.test_case "vertical profile" `Quick
           test_mesh_vertical_profile;
         Alcotest.test_case "1-D analytic" `Quick test_mesh_1d_analytic;
         Alcotest.test_case "matrix cache" `Quick test_mesh_matrix_cache;
         Alcotest.test_case "solver options threaded" `Quick
           test_mesh_solve_options_threaded ]);
      ("dense",
       [ Alcotest.test_case "matches cg" `Quick test_dense_matches_cg;
         Alcotest.test_case "cross-checks mesh" `Quick
           test_dense_cross_checks_mesh;
         Alcotest.test_case "rejects indefinite" `Quick
           test_dense_rejects_indefinite ]);
      ("transient",
       [ Alcotest.test_case "approaches steady state" `Quick
           test_transient_approaches_steady_state;
         Alcotest.test_case "time constant >> clock (paper SII)" `Quick
           test_transient_time_constant_validates_paper;
         Alcotest.test_case "validation" `Quick test_transient_validation;
         Alcotest.test_case "flat tau stays finite" `Quick
           test_transient_flat_tau_is_finite;
         Alcotest.test_case "precond parity and iterations" `Quick
           test_transient_precond_parity_and_iterations ]);
      ("adjoint",
       [ Alcotest.test_case "FD validation ssor 8x8" `Quick
           test_adjoint_fd_ssor_8;
         Alcotest.test_case "FD validation mg 16x16" `Quick
           test_adjoint_fd_mg_16;
         Alcotest.test_case "FD full-system sanity" `Quick
           test_adjoint_fd_full_system;
         Alcotest.test_case "smoothing bounds" `Quick
           test_adjoint_smoothing_bounds;
         Alcotest.test_case "validation" `Quick test_adjoint_validation;
         Alcotest.test_case "fault -> structured error" `Quick
           test_adjoint_fault_structured_error;
         Alcotest.test_case "warm start" `Quick test_adjoint_warm_start ]);
      ("multigrid",
       [ Alcotest.test_case "standalone solve matches cg" `Quick
           test_mg_standalone_matches_cg;
         Alcotest.test_case "precond parity and iterations" `Quick
           test_mg_precond_parity_and_iterations;
         Alcotest.test_case "hierarchy cached" `Quick
           test_mg_hierarchy_cached;
         Alcotest.test_case "dimension mismatch rejected" `Quick
           test_mg_dimension_mismatch_rejected;
         Alcotest.test_case "escalation recovers under mg" `Quick
           test_mg_escalation_recovers ]);
      ("fft",
       [ Alcotest.test_case "parity vs naive dft" `Quick
           test_fft_parity_vs_dft;
         Alcotest.test_case "roundtrip" `Quick test_fft_roundtrip;
         Alcotest.test_case "linearity" `Quick test_fft_linearity;
         Alcotest.test_case "validation" `Quick test_fft_validation ]);
      ("blur",
       [ Alcotest.test_case "impulse reproduces response" `Quick
           test_blur_reproduces_impulse_response;
         Alcotest.test_case "composed sources within tolerance" `Quick
           test_blur_screens_composed_sources;
         Alcotest.test_case "linearity" `Quick test_blur_linearity;
         Alcotest.test_case "validation" `Quick test_blur_validation;
         Alcotest.test_case "kernel cached on mesh entry" `Quick
           test_blur_kernel_cached;
         Alcotest.test_case "cache capacity and eviction" `Quick
           test_mesh_cache_capacity ]);
      ("spice",
       [ Alcotest.test_case "round trip" `Quick test_spice_roundtrip;
         Alcotest.test_case "element counts" `Quick test_spice_counts ]);
      ("metrics",
       [ Alcotest.test_case "of_map" `Quick test_metrics;
         Alcotest.test_case "reductions" `Quick test_metrics_reduction ]);
      ("robustness",
       [ Alcotest.test_case "cg breakdown on indefinite" `Quick
           test_cg_breakdown_indefinite;
         Alcotest.test_case "escalation recovers from stall" `Quick
           test_cg_escalation_recovers;
         Alcotest.test_case "history ring telemetry" `Quick
           test_cg_history_ring;
         Alcotest.test_case "residual log bounded on long solves" `Quick
           test_cg_residual_log_bounded;
         Alcotest.test_case "stale cache hit repaired" `Quick
           test_mesh_stale_cache_defense;
         Alcotest.test_case "perturbed matrix fails loudly" `Quick
           test_mesh_perturbed_matrix_not_cached ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_cg_matches_cholesky; prop_mesh_superposition ]) ]
