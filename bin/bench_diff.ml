(* bench_diff [--threshold F] [--scale-times F] [--json FILE] BASELINE FRESH

   Regression gate over the BENCH_<name>.json summaries: walks both files
   key-by-key and fails (exit 1) when

     - a wall-clock key (ending in "_ms") regressed beyond its band
       against the baseline, or
     - a boolean invariant that held in the baseline (plans_agree,
       parallel_bit_identical, the fig6 checks, ...) flipped to false, or
     - a baseline key is missing from the fresh run.

   A "_ms" value is either a plain number (a single-trial sample) or the
   {median, min, max, iqr, trials} statistics object `bench --trials N`
   emits. The gate compares medians and is noise-aware: the allowed band
   is max(baseline_median * (1 + threshold) + baseline_iqr, 1.0 ms), so a
   key whose baseline run was noisy gets proportionally more headroom,
   while a key whose baseline median is at or near zero is held to the
   absolute floor instead of gating on sub-millisecond scheduler noise
   (Obs.Gate). Legacy scalar baselines have zero IQR and degrade to the
   flat threshold (default 0.15 = +15%).

   Fresh keys absent from the baseline are ignored (new metrics may land
   before their baseline is refreshed), and a false -> true flip is an
   improvement, not a failure. --scale-times multiplies the fresh run's
   "_ms" medians before comparison; scripts/check.sh uses it to prove
   the gate actually trips on a simulated slowdown. --json FILE writes
   the machine-readable verdict (per-key status, deltas, bands)
   alongside the human output. All failures are printed, not just the
   first. Exit codes: 0 clean, 1 regression, 2 usage / parse error. *)

let threshold = ref 0.15
let scale_times = ref 1.0
let json_out = ref None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Obs.Json.of_string (read_file path) with
  | Ok json -> json
  | Error msg ->
    Printf.eprintf "bench_diff: %s: invalid JSON: %s\n" path msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "bench_diff: %s\n" msg;
    exit 2

let is_time_key path =
  let n = String.length path in
  n >= 3 && String.sub path (n - 3) 3 = "_ms"

(* A timing leaf: (median, iqr). Plain numbers are single samples with
   zero spread; statistics objects carry their measured IQR. *)
let time_value json =
  match Obs.Json.to_float json with
  | Some v -> Some (v, 0.0)
  | None ->
    (match Option.bind (Obs.Json.member "median" json) Obs.Json.to_float with
     | None -> None
     | Some median ->
       let iqr =
         Option.value ~default:0.0
           (Option.bind (Obs.Json.member "iqr" json) Obs.Json.to_float)
       in
       Some (median, iqr))

let failures = ref []
let fail path fmt =
  Printf.ksprintf (fun msg -> failures := (path, msg) :: !failures) fmt

(* Machine-readable verdict entries, in walk order. *)
let entries : Obs.Json.t list ref = ref []
let entry path status extra =
  entries :=
    Obs.Json.Obj
      ([ ("path", Obs.Json.String path); ("status", Obs.Json.String status) ]
       @ extra)
    :: !entries

(* The allowed band comes from Obs.Gate: the noise-aware multiplicative
   band with an absolute floor (Gate.absolute_floor_ms), so a zero- or
   near-zero-median baseline is gated against the floor instead of
   failing on (or being over-tight against) sub-millisecond noise. With
   the floor in place, zero medians are well-defined and gate like any
   other key. *)
let gate_time path ~base ~base_iqr ~fresh =
  let fresh = fresh *. !scale_times in
  let allowed = Obs.Gate.allowed_ms ~threshold:!threshold ~median:base ~iqr:base_iqr in
  let delta_pct =
    if base > 0.0 then 100.0 *. (fresh -. base) /. base else Float.nan
  in
  let fields =
    [ ("base_ms", Obs.Json.Float base);
      ("base_iqr_ms", Obs.Json.Float base_iqr);
      ("fresh_ms", Obs.Json.Float fresh);
      ("allowed_ms", Obs.Json.Float allowed);
      ("delta_pct", Obs.Json.Float delta_pct) ]
  in
  if
    base >= 0.0 && Float.is_finite base && Float.is_finite fresh
    && fresh > allowed
  then begin
    entry path "fail" fields;
    fail path
      "wall-clock regression: %.2f ms -> %.2f ms (%+.0f%%, allowed %.2f ms \
       = max(+%.0f%% + %.2f ms IQR, %.1f ms floor))"
      base fresh delta_pct allowed (100.0 *. !threshold) base_iqr
      Obs.Gate.absolute_floor_ms
  end
  else if base >= 0.0 && Float.is_finite base && Float.is_finite fresh then begin
    entry path "ok" fields;
    Printf.printf "  ok %-55s %10.2f -> %10.2f ms (%+.0f%%)\n" path base fresh
      delta_pct
  end

(* Baseline-driven walk: every leaf of the baseline must still be present
   (and not regressed) in the fresh run. The "_ms" test runs before the
   object case so statistics objects gate as timing leaves instead of
   being walked field-by-field (their min/max/iqr fields are noise, not
   invariants). *)
let rec diff path (base : Obs.Json.t) (fresh : Obs.Json.t option) =
  match base, fresh with
  | _, None ->
    entry path "missing" [];
    fail path "missing from fresh run"
  | base, Some fresh_v when is_time_key path && time_value base <> None ->
    let b, b_iqr = Option.get (time_value base) in
    (match time_value fresh_v with
     | None ->
       entry path "invalid" [];
       fail path "baseline is a timing value, fresh run is not"
     | Some (f, _) -> gate_time path ~base:b ~base_iqr:b_iqr ~fresh:f)
  | Obs.Json.Obj fields, Some fresh ->
    List.iter
      (fun (k, v) ->
         let sub = if path = "" then k else path ^ "." ^ k in
         diff sub v (Obs.Json.member k fresh))
      fields
  | Obs.Json.List items, Some fresh ->
    (match Obs.Json.to_list fresh with
     | None ->
       entry path "invalid" [];
       fail path "baseline is a list, fresh run is not"
     | Some fresh_items ->
       if List.length fresh_items <> List.length items then begin
         entry path "invalid" [];
         fail path "list length changed (%d -> %d)" (List.length items)
           (List.length fresh_items)
       end
       else
         List.iteri
           (fun i v ->
              diff (Printf.sprintf "%s[%d]" path i) v
                (Some (List.nth fresh_items i)))
           items)
  | Obs.Json.Bool true, Some fresh ->
    (match fresh with
     | Obs.Json.Bool false ->
       entry path "fail"
         [ ("base", Obs.Json.Bool true); ("fresh", Obs.Json.Bool false) ];
       fail path "invariant flipped true -> false"
     | Obs.Json.Bool true -> entry path "ok" [ ("base", Obs.Json.Bool true) ]
     | _ ->
       entry path "invalid" [];
       fail path "baseline is a boolean, fresh run is not")
  | Obs.Json.Bool false, Some _ -> ()
  | _, Some _ -> ()  (* non-timing scalars are informational only *)

let write_verdict path ~baseline_path ~fresh_path =
  let ordered = List.rev !entries in
  let failed =
    List.length
      (List.filter
         (fun e ->
            match Option.bind (Obs.Json.member "status" e) Obs.Json.to_string_opt with
            | Some ("fail" | "missing" | "invalid") -> true
            | _ -> false)
         ordered)
  in
  let json =
    Obs.Json.Obj
      [ ("baseline", Obs.Json.String baseline_path);
        ("fresh", Obs.Json.String fresh_path);
        ("threshold", Obs.Json.Float !threshold);
        ("scale_times", Obs.Json.Float !scale_times);
        ("ok", Obs.Json.Bool (failed = 0));
        ("failed", Obs.Json.Int failed);
        ("keys", Obs.Json.List ordered) ]
  in
  try Obs.Report.write_string_atomic path (Obs.Json.to_string ~pretty:true json ^ "\n")
  with Sys_error msg ->
    Printf.eprintf "bench_diff: cannot write %s: %s\n" path msg;
    exit 2

let () =
  let rec parse_args acc = function
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t > 0.0 -> threshold := t
       | _ ->
         prerr_endline "bench_diff: --threshold expects a positive number";
         exit 2);
      parse_args acc rest
    | "--scale-times" :: v :: rest ->
      (match float_of_string_opt v with
       | Some s when s > 0.0 -> scale_times := s
       | _ ->
         prerr_endline "bench_diff: --scale-times expects a positive number";
         exit 2);
      parse_args acc rest
    | "--json" :: path :: rest ->
      json_out := Some path;
      parse_args acc rest
    | x :: rest -> parse_args (x :: acc) rest
    | [] -> List.rev acc
  in
  match parse_args [] (List.tl (Array.to_list Sys.argv)) with
  | [ baseline_path; fresh_path ] ->
    let baseline = parse_file baseline_path in
    let fresh = parse_file fresh_path in
    Printf.printf "bench_diff: %s vs %s (threshold +%.0f%% + baseline IQR%s)\n"
      baseline_path fresh_path (100.0 *. !threshold)
      (if !scale_times <> 1.0 then
         Printf.sprintf ", fresh times scaled x%g" !scale_times
       else "");
    diff "" baseline (Some fresh);
    Option.iter
      (fun p -> write_verdict p ~baseline_path ~fresh_path)
      !json_out;
    (match List.rev !failures with
     | [] ->
       Printf.printf "bench_diff: OK\n"
     | fs ->
       List.iter
         (fun (path, msg) ->
            Printf.eprintf "bench_diff: FAIL %s: %s\n" path msg)
         fs;
       exit 1)
  | _ ->
    prerr_endline
      "usage: bench_diff [--threshold F] [--scale-times F] [--json FILE] \
       BASELINE FRESH";
    exit 2
