(* bench_diff [--threshold F] [--scale-times F] BASELINE FRESH

   Regression gate over the BENCH_<name>.json summaries: walks both files
   key-by-key and fails (exit 1) when

     - a wall-clock key (ending in "_ms") regressed by more than the
       threshold (default 0.15 = +15%) against the baseline, or
     - a boolean invariant that held in the baseline (plans_agree,
       parallel_bit_identical, the fig6 checks, ...) flipped to false, or
     - a baseline key is missing from the fresh run.

   Fresh keys absent from the baseline are ignored (new metrics may land
   before their baseline is refreshed), and a false -> true flip is an
   improvement, not a failure. --scale-times multiplies the fresh run's
   "_ms" values before comparison; scripts/check.sh uses it to prove the
   gate actually trips on a simulated slowdown. Exit codes: 0 clean,
   1 regression, 2 usage / parse error. *)

let threshold = ref 0.15
let scale_times = ref 1.0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match Obs.Json.of_string (read_file path) with
  | Ok json -> json
  | Error msg ->
    Printf.eprintf "bench_diff: %s: invalid JSON: %s\n" path msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "bench_diff: %s\n" msg;
    exit 2

let is_time_key path =
  let n = String.length path in
  n >= 3 && String.sub path (n - 3) 3 = "_ms"

let failures = ref []
let fail path fmt =
  Printf.ksprintf (fun msg -> failures := (path, msg) :: !failures) fmt

(* Baseline-driven walk: every leaf of the baseline must still be present
   (and not regressed) in the fresh run. *)
let rec diff path (base : Obs.Json.t) (fresh : Obs.Json.t option) =
  match base, fresh with
  | _, None -> fail path "missing from fresh run"
  | Obs.Json.Obj fields, Some fresh ->
    List.iter
      (fun (k, v) ->
         let sub = if path = "" then k else path ^ "." ^ k in
         diff sub v (Obs.Json.member k fresh))
      fields
  | Obs.Json.List items, Some fresh ->
    (match Obs.Json.to_list fresh with
     | None -> fail path "baseline is a list, fresh run is not"
     | Some fresh_items ->
       if List.length fresh_items <> List.length items then
         fail path "list length changed (%d -> %d)" (List.length items)
           (List.length fresh_items)
       else
         List.iteri
           (fun i v ->
              diff (Printf.sprintf "%s[%d]" path i) v
                (Some (List.nth fresh_items i)))
           items)
  | Obs.Json.Bool true, Some fresh ->
    (match fresh with
     | Obs.Json.Bool false -> fail path "invariant flipped true -> false"
     | Obs.Json.Bool true -> ()
     | _ -> fail path "baseline is a boolean, fresh run is not")
  | Obs.Json.Bool false, Some _ -> ()
  | (Obs.Json.Int _ | Obs.Json.Float _), Some fresh when is_time_key path ->
    let b = Option.get (Obs.Json.to_float base) in
    (match Obs.Json.to_float fresh with
     | None -> fail path "baseline is a number, fresh run is not"
     | Some f ->
       let f = f *. !scale_times in
       if b > 0.0 && Float.is_finite b && Float.is_finite f
          && f > b *. (1.0 +. !threshold)
       then
         fail path "wall-clock regression: %.2f ms -> %.2f ms (%+.0f%%, \
                    threshold +%.0f%%)"
           b f (100.0 *. (f -. b) /. b) (100.0 *. !threshold)
       else if b > 0.0 && Float.is_finite b && Float.is_finite f then
         Printf.printf "  ok %-55s %10.2f -> %10.2f ms (%+.0f%%)\n" path b f
           (100.0 *. (f -. b) /. b))
  | _, Some _ -> ()  (* non-timing scalars are informational only *)

let () =
  let rec parse_args acc = function
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
       | Some t when t > 0.0 -> threshold := t
       | _ ->
         prerr_endline "bench_diff: --threshold expects a positive number";
         exit 2);
      parse_args acc rest
    | "--scale-times" :: v :: rest ->
      (match float_of_string_opt v with
       | Some s when s > 0.0 -> scale_times := s
       | _ ->
         prerr_endline "bench_diff: --scale-times expects a positive number";
         exit 2);
      parse_args acc rest
    | x :: rest -> parse_args (x :: acc) rest
    | [] -> List.rev acc
  in
  match parse_args [] (List.tl (Array.to_list Sys.argv)) with
  | [ baseline_path; fresh_path ] ->
    let baseline = parse_file baseline_path in
    let fresh = parse_file fresh_path in
    Printf.printf "bench_diff: %s vs %s (threshold +%.0f%%%s)\n"
      baseline_path fresh_path (100.0 *. !threshold)
      (if !scale_times <> 1.0 then
         Printf.sprintf ", fresh times scaled x%g" !scale_times
       else "");
    diff "" baseline (Some fresh);
    (match List.rev !failures with
     | [] ->
       Printf.printf "bench_diff: OK\n"
     | fs ->
       List.iter
         (fun (path, msg) ->
            Printf.eprintf "bench_diff: FAIL %s: %s\n" path msg)
         fs;
       exit 1)
  | _ ->
    prerr_endline
      "usage: bench_diff [--threshold F] [--scale-times F] BASELINE FRESH";
    exit 2
