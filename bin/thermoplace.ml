(* thermoplace: command-line driver for the post-placement temperature
   reduction flow.

     thermoplace flow     -- run the full flow and one technique
     thermoplace report   -- netlist / placement / power / thermal summary
     thermoplace maps     -- dump power and thermal maps (matrix or ascii)
     thermoplace sweep    -- Default/ERI/HW reduction-vs-overhead sweep
     thermoplace optimize -- greedy row-budget optimizer (parallel evals)
     thermoplace check    -- run the design invariant suite
     thermoplace export   -- Verilog / LEF / DEF / SPICE / SVG dump
     thermoplace serve    -- batch JSONL job server (queue, deadlines, retry)

     thermoplace history  -- list / show / diff / trend over the run ledger

   Every subcommand accepts --trace (span tree to stderr), --report FILE
   (machine-readable JSON run report), --perfetto FILE (Chrome
   trace-event JSON of the merged cross-domain span forest, loadable in
   Perfetto / chrome://tracing) and --prom FILE (Prometheus text
   exposition of the metrics registry). Every run also appends one
   record to the JSONL run ledger (config fingerprint, per-phase
   timings, CG iteration totals, peak temperature, plan hash, metrics
   summary, outcome) — --ledger FILE / THERMOPLACE_LEDGER override the
   path, "none" disables.

   Structured failures (Robust.Error) exit with stable per-class codes:
   solver divergence 10, invariant violation 11, worker failure 12,
   corrupt checkpoint 13, queue full 14, deadline exceeded 15 (the last
   two appear per job in serve responses, not as process exits).
   THERMOPLACE_FAULTS arms fault injection. *)

open Cmdliner

(* --- run ledger context ---------------------------------------------------

   Process-global because a thermoplace invocation is exactly one run:
   the subcommand fills it in as the run unfolds (fingerprint once the
   flow exists, phases as they complete, peak/plan hash once known) and
   the structured-error boundary flushes one ledger record on every
   exit path — success, invariant failure, or solver breakdown. *)

module Run = struct
  let command = ref ""
  let ledger_path : string option ref = ref None
  let fingerprint = ref ""
  let config : (string * Obs.Json.t) list ref = ref []
  let phases : (string * float) list ref = ref []
  let peak_rise_k : float option ref = ref None
  let plan_hash : string option ref = ref None
  let t0 = ref 0.0
  let recorded = ref false

  let begin_ ~command:c ~ledger ~config:cfg =
    command := c;
    ledger_path := Obs.Ledger.resolve_path ?path:ledger ();
    fingerprint := "";
    config := cfg;
    phases := [];
    peak_rise_k := None;
    plan_hash := None;
    t0 := Unix.gettimeofday ();
    recorded := false

  let phase name f =
    let s = Unix.gettimeofday () in
    let r = f () in
    phases := !phases @ [ (name ^ "_ms", (Unix.gettimeofday () -. s) *. 1e3) ];
    r

  let set_fingerprint fp = fingerprint := fp
  let set_peak k = peak_rise_k := Some k

  (* Committed-plan identity: the MD5 of the canonical plan rendering,
     so "did these two configs commit the same plan?" is one string
     comparison in [history diff]. *)
  let set_plan inserted_after =
    plan_hash :=
      Some
        (Digest.to_hex
           (Digest.string
              (String.concat "," (List.map string_of_int inserted_after))))

  let record ?error ~outcome ~exit_code () =
    match !ledger_path with
    | None -> ()
    | Some _ when !recorded -> ()
    | Some path ->
      recorded := true;
      let cg_iterations =
        Option.map
          (fun h -> int_of_float h.Obs.Metrics.sum)
          (Obs.Metrics.histogram "thermal.cg.iterations")
      in
      let phases_ms =
        !phases
        @ [ ("total_ms", (Unix.gettimeofday () -. !t0) *. 1e3) ]
      in
      let record =
        Obs.Ledger.make_record ~command:!command ~fingerprint:!fingerprint
          ~config:!config ~phases_ms ?cg_iterations
          ?peak_rise_k:!peak_rise_k ?plan_hash:!plan_hash
          ~metrics:(Obs.Metrics.summary_json ()) ?error ~outcome ~exit_code
          ()
      in
      (try Obs.Ledger.append ~path record
       with e ->
         Printf.eprintf "thermoplace: cannot append to ledger %s: %s\n" path
           (Printexc.to_string e))
end

(* Catch structured errors at the subcommand boundary and turn them into
   a one-line stderr message plus the class's stable exit code; flush
   the ledger record on both paths. *)
let with_structured_errors run =
  match run () with
  | status ->
    Run.record ~outcome:(if status = 0 then "ok" else "error")
      ~exit_code:status ();
    status
  | exception Robust.Error.Error e ->
    Printf.eprintf "thermoplace: %s\n" (Robust.Error.to_string e);
    let code = Robust.Error.exit_code e in
    Run.record ~error:(Robust.Error.to_string e) ~outcome:"error"
      ~exit_code:code ();
    code

(* --- validated option converters ----------------------------------------- *)

(* Range errors surface as Cmdliner parse errors (usage + message) instead
   of a downstream Invalid_argument from the flow internals. *)

let int_min ~min name =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s: expected an integer, got %S" name s))
    | Some v when v < min ->
      Error (`Msg (Printf.sprintf "%s must be >= %d (got %d)" name min v))
    | Some v -> Ok v
  in
  Arg.conv (parse, Format.pp_print_int)

let float_range ?min_exclusive ?max_inclusive ~min name =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s: expected a number, got %S" name s))
    | Some v when Float.is_nan v ->
      Error (`Msg (Printf.sprintf "%s: nan is not a valid value" name))
    | Some v when v < min ->
      Error (`Msg (Printf.sprintf "%s must be >= %g (got %g)" name min v))
    | Some v when (match min_exclusive with Some lo -> v <= lo | None -> false) ->
      Error (`Msg (Printf.sprintf "%s must be > %g (got %g)" name
                     (Option.get min_exclusive) v))
    | Some v when (match max_inclusive with Some hi -> v > hi | None -> false) ->
      Error (`Msg (Printf.sprintf "%s must be <= %g (got %g)" name
                     (Option.get max_inclusive) v))
    | Some v -> Ok v
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

(* --- shared options ------------------------------------------------------ *)

let seed =
  let doc = "Random seed for vectors and placement." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let cycles =
  let doc = "Measured simulation cycles for switching activity (>= 1)." in
  Arg.(value & opt (int_min ~min:1 "--cycles") 1000
       & info [ "cycles" ] ~docv:"N" ~doc)

let utilization =
  let doc = "Base placement row-utilization factor, in (0, 1]." in
  Arg.(value
       & opt (float_range ~min:0.0 ~min_exclusive:0.0 ~max_inclusive:1.0
                "--utilization")
           0.85
       & info [ "utilization"; "u" ] ~docv:"U" ~doc)

let test_set =
  let doc =
    "Benchmark workload: $(b,scattered) (test set 1, four scattered \
     hotspots), $(b,concentrated) (test set 2, one large hotspot), or \
     $(b,small) (tiny 3-unit smoke benchmark)."
  in
  let sets =
    [ ("scattered", "scattered"); ("concentrated", "concentrated");
      ("small", "small") ]
  in
  Arg.(value & opt (enum sets) "scattered"
       & info [ "test-set"; "t" ] ~docv:"SET" ~doc)

let precond_arg =
  let doc =
    "CG preconditioner for the thermal solves: $(b,auto) (per-stage \
     defaults), $(b,jacobi), $(b,ssor) (omega 1.2), or $(b,mg) (geometric \
     multigrid V-cycle — fastest at high mesh resolution). All choices \
     produce the same temperatures to solver tolerance."
  in
  let preconds =
    [ ("auto", "auto"); ("jacobi", "jacobi"); ("ssor", "ssor"); ("mg", "mg") ]
  in
  Arg.(value & opt (enum preconds) "auto"
       & info [ "precond" ] ~docv:"P" ~doc)

let precond_choice = function
  | "auto" -> None
  | "jacobi" -> Some Thermal.Mesh.Pc_jacobi
  | "ssor" -> Some (Thermal.Mesh.Pc_ssor 1.2)
  | "mg" -> Some Thermal.Mesh.Pc_mg
  | _ -> assert false (* the enum converter rejects everything else *)

let screen_arg =
  let doc =
    "Optimizer candidate-screening tier: $(b,auto) (fft unless a fault is \
     armed), $(b,fft) (rank candidates with the O(n log n) Green's-function \
     power blurring, re-score only the leaders with MG-CG), or $(b,exact) \
     (full solve for every candidate). The emitted plan is bit-identical \
     across tiers whenever the blur leader set contains the exact winner."
  in
  let screens = [ ("auto", "auto"); ("fft", "fft"); ("exact", "exact") ] in
  Arg.(value & opt (enum screens) "auto"
       & info [ "screen" ] ~docv:"S" ~doc)

let screen_choice = function
  | "auto" -> Postplace.Flow.Screen_auto
  | "fft" -> Postplace.Flow.Screen_fft
  | "exact" -> Postplace.Flow.Screen_exact
  | _ -> assert false (* the enum converter rejects everything else *)

let guide_arg =
  let doc =
    "Optimizer candidate-ranking signal: $(b,peak) (evaluate each \
     candidate's predicted peak temperature — the paper's scheme) or \
     $(b,gradient) (one adjoint sensitivity solve per round prices every \
     candidate from the dT_peak/d(power) map; only the committed chunk \
     is confirmed exactly — far fewer solves at matched quality)."
  in
  let guides = [ ("peak", "peak"); ("gradient", "gradient") ] in
  Arg.(value & opt (enum guides) "peak" & info [ "guide" ] ~docv:"G" ~doc)

let guide_choice = function
  | "peak" -> Postplace.Flow.Guide_peak
  | "gradient" -> Postplace.Flow.Guide_gradient
  | _ -> assert false (* the enum converter rejects everything else *)

let cache_slots_arg =
  let doc =
    "Capacity of the thermal-mesh matrix MRU cache (>= 1; default 8, or \
     the THERMOPLACE_CACHE_SLOTS environment variable). Each entry also \
     carries the multigrid hierarchy and the fft screening kernel, so \
     sweeps over many mesh extents benefit from more slots."
  in
  Arg.(value & opt (some (int_min ~min:1 "--cache-slots")) None
       & info [ "cache-slots" ] ~docv:"N" ~doc)

let apply_cache_slots slots =
  Option.iter Thermal.Mesh.set_cache_capacity slots

let jobs_arg =
  let doc =
    "Worker domains for parallel candidate evaluation and sweep points \
     (>= 1; 1 disables parallelism). Results are bit-identical for any \
     value."
  in
  Arg.(value & opt (int_min ~min:1 "--jobs") (Parallel.Pool.default_jobs ())
       & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let trace_arg =
  let doc = "Print the wall-clock span tree of the run to stderr." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let report_arg =
  let doc =
    "Write a machine-readable JSON run report (config, span tree, metrics, \
     warnings, results) to $(docv)."
  in
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE" ~doc)

let perfetto_arg =
  let doc =
    "Write the run's span forest as Chrome trace-event JSON to $(docv). \
     Spans from every domain appear as separate tracks (tid = domain id); \
     open the file in ui.perfetto.dev or chrome://tracing. Implies span \
     recording, like $(b,--trace)."
  in
  Arg.(value & opt (some string) None
       & info [ "perfetto" ] ~docv:"FILE" ~doc)

let prom_arg =
  let doc =
    "Write the final metrics registry in Prometheus text exposition \
     format to $(docv): labelled counters and gauges directly, histogram \
     aggregates as companion gauges plus p50/p90/p99 quantile series."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

let ledger_arg =
  let doc =
    "Append this run's record to the JSONL ledger at $(docv) instead of \
     the default (thermoplace.ledger.jsonl, or the THERMOPLACE_LEDGER \
     environment variable). $(b,none) disables the ledger."
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let prepare ?(screen = "auto") ?(guide = "peak") ~seed ~cycles ~utilization
    ~test_set ~precond () =
  let precond = precond_choice precond in
  let screen = screen_choice screen in
  let guide = guide_choice guide in
  match test_set with
  | "scattered" ->
    let bench = Netgen.Benchmark.nine_unit () in
    Postplace.Flow.prepare ~seed ~utilization ~sim_cycles:cycles ?precond
      ~screen ~guide bench
      (Logicsim.Workload.scattered_hotspots ~hot_units:[ 0; 4; 6; 8 ])
  | "concentrated" ->
    let bench = Netgen.Benchmark.nine_unit () in
    Postplace.Flow.prepare ~seed ~utilization ~sim_cycles:cycles ?precond
      ~screen ~guide bench (Logicsim.Workload.concentrated_hotspot ~hot_unit:2)
  | "small" ->
    let bench = Netgen.Benchmark.small () in
    Postplace.Flow.prepare ~seed ~utilization ~sim_cycles:cycles ?precond
      ~screen ~guide bench
      (Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ])
  | _ -> assert false (* the enum converter rejects everything else *)

(* --- observability wiring ------------------------------------------------- *)

let obs_begin ~command ~ledger ~config ~trace ~report ~perfetto =
  if trace || report <> None || perfetto <> None then
    Obs.Trace.set_enabled true;
  Obs.Trace.reset ();
  Obs.Metrics.reset ();
  Obs.Log.reset ();
  Thermal.Cg.clear_histories ();
  Run.begin_ ~command ~ledger ~config

let base_config ~seed ~cycles ~utilization ~test_set ~precond =
  [ ("seed", Obs.Json.Int seed);
    ("cycles", Obs.Json.Int cycles);
    ("utilization", Obs.Json.Float utilization);
    ("test_set", Obs.Json.String test_set);
    ("precond", Obs.Json.String precond) ]

let eval_json (ev : Postplace.Flow.evaluation) =
  Obs.Json.Obj
    [ ("thermal", Thermal.Metrics.to_json ev.Postplace.Flow.metrics);
      ("hotspots",
       Obs.Json.List
         (List.map Postplace.Hotspot.to_json ev.Postplace.Flow.hotspots));
      ("critical_ps",
       Obs.Json.Float ev.Postplace.Flow.timing.Sta.Timing.critical_ps);
      ("hpwl_um",
       Obs.Json.Float (Place.Placement.hpwl ev.Postplace.Flow.placement));
      ("placement_utilization",
       Obs.Json.Float
         (Place.Placement.utilization ev.Postplace.Flow.placement)) ]

(* Returns the process exit status so an unwritable --report, --perfetto
   or --prom path surfaces as a clean error instead of an uncaught
   Sys_error. *)
let obs_end ~command ~trace ~report ~perfetto ~prom ~config ~sections =
  if trace then Format.eprintf "%a" Obs.Trace.pp_tree ();
  let prom_status =
    match prom with
    | None -> 0
    | Some path ->
      (match Obs.Prom.write_file path with
       | () ->
         Printf.printf "wrote prometheus metrics %s\n" path;
         0
       | exception Sys_error msg ->
         Printf.eprintf "thermoplace: cannot write prometheus metrics: %s\n"
           msg;
         1)
  in
  let perfetto_status =
    match perfetto with
    | None -> 0
    | Some path ->
      (match Obs.Perfetto.write_file path with
       | () ->
         Printf.printf "wrote perfetto trace %s\n" path;
         0
       | exception Sys_error msg ->
         Printf.eprintf "thermoplace: cannot write perfetto trace: %s\n" msg;
         1)
  in
  let report_status =
    match report with
    | None -> 0
    | Some path ->
      let sections =
        sections @ [ ("convergence", Thermal.Cg.histories_json ()) ]
      in
      (match
         Obs.Report.write_file path
           (Obs.Report.make ~command ~config ~sections ())
       with
       | () ->
         Printf.printf "wrote report %s\n" path;
         0
       | exception Sys_error msg ->
         Printf.eprintf "thermoplace: cannot write report: %s\n" msg;
         1)
  in
  if report_status <> 0 then report_status
  else if perfetto_status <> 0 then perfetto_status
  else prom_status

(* --- flow ---------------------------------------------------------------- *)

let technique_arg =
  let doc = "Technique to apply: $(b,none), $(b,default), $(b,eri), $(b,hw)." in
  let techniques =
    [ ("none", "none"); ("default", "default"); ("eri", "eri"); ("hw", "hw") ]
  in
  Arg.(value & opt (enum techniques) "eri"
       & info [ "technique" ] ~docv:"T" ~doc)

let overhead_arg =
  let doc = "Target area overhead as a fraction in [0, 4] (e.g. 0.2 = 20%)." in
  Arg.(value
       & opt (float_range ~min:0.0 ~max_inclusive:4.0 "--overhead") 0.2
       & info [ "overhead" ] ~docv:"F" ~doc)

let run_flow seed cycles utilization test_set precond cache_slots technique
    overhead jobs trace report perfetto prom ledger =
  with_structured_errors @@ fun () ->
  Parallel.Pool.set_jobs jobs;
  apply_cache_slots cache_slots;
  let config =
    base_config ~seed ~cycles ~utilization ~test_set ~precond
    @ [ ("technique", Obs.Json.String technique);
        ("overhead", Obs.Json.Float overhead);
        ("jobs", Obs.Json.Int jobs);
        ("cache_slots", Obs.Json.Int (Thermal.Mesh.cache_capacity ())) ]
  in
  obs_begin ~command:"flow" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint
    (Postplace.Flow.fingerprint
       ~extra:[ ("technique", technique); ("jobs", string_of_int jobs) ]
       flow);
  let base =
    Run.phase "evaluate" @@ fun () ->
    Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement
  in
  Run.set_peak base.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k;
  Format.printf "base: %a@." Place.Placement.pp_summary
    base.Postplace.Flow.placement;
  Format.printf "base thermal: %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  let transformed =
    Run.phase "technique" @@ fun () ->
    match technique with
    | "none" -> None
    | "default" ->
      Some
        (Postplace.Flow.apply_default flow
           ~utilization:(utilization /. (1.0 +. overhead)))
    | "eri" ->
      let rows =
        max 1
          (int_of_float
             (overhead
              *. float_of_int
                   flow.Postplace.Flow.base_placement.Place.Placement.fp
                     .Place.Floorplan.num_rows))
      in
      let r = Postplace.Flow.apply_eri flow ~base ~rows in
      Run.set_plan r.Postplace.Technique.inserted_after;
      Some r.Postplace.Technique.eri_placement
    | "hw" ->
      let d =
        Postplace.Flow.apply_default flow
          ~utilization:(utilization /. (1.0 +. overhead))
      in
      let de = Postplace.Flow.evaluate flow d in
      Some (Postplace.Flow.apply_hw flow ~on:de ())
    | _ -> assert false
  in
  let result_section =
    match transformed with
    | None -> []
    | Some pl ->
      let ev =
        Run.phase "evaluate_after" @@ fun () ->
        Postplace.Flow.evaluate flow pl
      in
      Run.set_peak ev.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k;
      let area_pct =
        Postplace.Technique.area_overhead_pct
          ~base:base.Postplace.Flow.placement pl
      in
      let red_pct =
        Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
          ~after:ev.Postplace.Flow.metrics
      in
      let timing_pct =
        Sta.Timing.overhead_pct ~before:base.Postplace.Flow.timing
          ~after:ev.Postplace.Flow.timing
      in
      Format.printf "after %s: %a@." technique Thermal.Metrics.pp
        ev.Postplace.Flow.metrics;
      Format.printf
        "area overhead %.1f%%, peak reduction %.2f%%, timing %+0.2f%%@."
        area_pct red_pct timing_pct;
      [ ("result",
         Obs.Json.Obj
           [ ("scheme", Obs.Json.String technique);
             ("area_overhead_pct", Obs.Json.Float area_pct);
             ("peak_reduction_pct", Obs.Json.Float red_pct);
             ("gradient_reduction_pct",
              Obs.Json.Float
                (Thermal.Metrics.gradient_reduction_pct
                   ~before:base.Postplace.Flow.metrics
                   ~after:ev.Postplace.Flow.metrics));
             ("timing_overhead_pct", Obs.Json.Float timing_pct);
             ("after", eval_json ev) ]) ]
  in
  obs_end ~command:"flow" ~trace ~report ~perfetto ~prom ~config
    ~sections:([ ("base", eval_json base) ] @ result_section)

(* --- report ---------------------------------------------------------------- *)

let run_report seed cycles utilization test_set precond trace report
    perfetto prom ledger =
  with_structured_errors @@ fun () ->
  let config = base_config ~seed ~cycles ~utilization ~test_set ~precond in
  obs_begin ~command:"report" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint (Postplace.Flow.fingerprint flow);
  let nl = flow.Postplace.Flow.bench.Netgen.Benchmark.netlist in
  Format.printf "%a@."
    Netlist.Stats.pp
    (Netlist.Stats.compute flow.Postplace.Flow.tech nl);
  Array.iter
    (fun u ->
       let cells = Netlist.Types.cells_of_unit nl u.Netgen.Benchmark.tag in
       Format.printf "unit %d %-8s %6d cells  %s@." u.Netgen.Benchmark.tag
         u.Netgen.Benchmark.unit_name (List.length cells)
         u.Netgen.Benchmark.description)
    flow.Postplace.Flow.bench.Netgen.Benchmark.units;
  let base =
    Run.phase "evaluate" @@ fun () ->
    Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement
  in
  Run.set_peak base.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k;
  Format.printf "placement: %a@." Place.Placement.pp_summary
    base.Postplace.Flow.placement;
  Format.printf "thermal:   %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  Format.printf "critical path: %.0f ps@."
    base.Postplace.Flow.timing.Sta.Timing.critical_ps;
  Format.printf "hotspots:@.";
  List.iteri
    (fun i h ->
       Format.printf "  #%d %s tiles=%d cells=%d peak=%.3fK@." i
         (Geo.Rect.to_string h.Postplace.Hotspot.rect)
         (Postplace.Hotspot.tile_count h)
         (List.length h.Postplace.Hotspot.cells)
         h.Postplace.Hotspot.peak_rise_k)
    base.Postplace.Flow.hotspots;
  obs_end ~command:"report" ~trace ~report ~perfetto ~prom ~config
    ~sections:[ ("base", eval_json base) ]

(* --- maps ------------------------------------------------------------------- *)

let ascii_arg =
  let doc = "Render maps as terminal shading instead of numeric matrices." in
  Arg.(value & flag & info [ "ascii" ] ~doc)

let run_maps seed cycles utilization test_set precond ascii trace report
    perfetto prom ledger =
  with_structured_errors @@ fun () ->
  let config = base_config ~seed ~cycles ~utilization ~test_set ~precond in
  obs_begin ~command:"maps" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint (Postplace.Flow.fingerprint flow);
  let power, thermal =
    Run.phase "maps" @@ fun () -> Postplace.Experiment.fig5_maps flow
  in
  Run.set_peak (Thermal.Metrics.of_map thermal).Thermal.Metrics.peak_rise_k;
  let dump name g =
    Format.printf "# %s (%dx%d, top row first)@." name (Geo.Grid.nx g)
      (Geo.Grid.ny g);
    if ascii then Format.printf "%a@." Geo.Grid.pp_shaded g
    else Format.printf "%a@." Geo.Grid.pp_rows g
  in
  dump "power [W/tile]" power;
  dump "thermal rise [K]" thermal;
  obs_end ~command:"maps" ~trace ~report ~perfetto ~prom ~config
    ~sections:
      [ ("thermal", Thermal.Metrics.to_json (Thermal.Metrics.of_map thermal)) ]

(* --- export ------------------------------------------------------------------ *)

let outdir_arg =
  let doc = "Directory for the exported files (created if missing)." in
  Arg.(value & opt string "export" & info [ "outdir"; "o" ] ~docv:"DIR" ~doc)

let run_export seed cycles utilization test_set precond outdir trace report
    perfetto prom ledger =
  with_structured_errors @@ fun () ->
  let config =
    base_config ~seed ~cycles ~utilization ~test_set ~precond
    @ [ ("outdir", Obs.Json.String outdir) ]
  in
  obs_begin ~command:"export" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint (Postplace.Flow.fingerprint flow);
  if not (Sys.file_exists outdir) then Unix.mkdir outdir 0o755;
  let base =
    Run.phase "evaluate" @@ fun () ->
    Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement
  in
  Run.set_peak base.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k;
  let pl = base.Postplace.Flow.placement in
  let nl = flow.Postplace.Flow.bench.Netgen.Benchmark.netlist in
  let path name = Filename.concat outdir name in
  let fillers, problem =
    Run.phase "export" @@ fun () ->
    Netlist.Verilog.write_file (path "design.v") ~module_name:"design" nl;
    Celllib.Lef.write_file (path "cells.lef") flow.Postplace.Flow.tech;
    let fillers = Place.Filler.fill pl in
    Place.Def_writer.write_file (path "design.def") ~fillers pl;
    let problem =
      Thermal.Mesh.build flow.Postplace.Flow.mesh_config
        ~power:base.Postplace.Flow.power_map
    in
    Thermal.Spice.write_file (path "thermal.sp") problem;
    let overlay =
      { Place.Svg.heat = Some base.Postplace.Flow.thermal_map;
        outlines =
          List.map (fun h -> h.Postplace.Hotspot.rect)
            base.Postplace.Flow.hotspots }
    in
    Place.Svg.write_file (path "layout.svg") ~fillers ~overlay pl;
    (fillers, problem)
  in
  Format.printf
    "wrote %s/design.v (%d cells), cells.lef, design.def (%d fillers), \
     thermal.sp (%d resistors), layout.svg@."
    outdir
    (Netlist.Types.num_cells nl)
    (List.length fillers)
    (Thermal.Spice.count_resistors problem);
  obs_end ~command:"export" ~trace ~report ~perfetto ~prom ~config
    ~sections:[ ("base", eval_json base) ]

(* --- sweep ------------------------------------------------------------------- *)

let point_json (p : Postplace.Experiment.point) =
  Obs.Json.Obj
    [ ("scheme", Obs.Json.String p.Postplace.Experiment.scheme);
      ("area_overhead_pct", Obs.Json.Float p.area_overhead_pct);
      ("temp_reduction_pct", Obs.Json.Float p.temp_reduction_pct);
      ("gradient_reduction_pct", Obs.Json.Float p.gradient_reduction_pct);
      ("peak_rise_k", Obs.Json.Float p.peak_rise_k);
      ("timing_overhead_pct", Obs.Json.Float p.timing_overhead_pct);
      ("hpwl_um", Obs.Json.Float p.hpwl_um) ]

let checkpoint_arg =
  let doc =
    "Checkpoint the sweep to $(docv) (atomic JSON, written after every \
     completed point) and resume from it when it already exists. A resumed \
     sweep reproduces the uninterrupted run bit-identically; a checkpoint \
     from different sweep parameters is rejected."
  in
  Arg.(value & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let run_sweep seed cycles utilization test_set precond cache_slots jobs
    checkpoint trace report perfetto prom ledger =
  with_structured_errors @@ fun () ->
  Parallel.Pool.set_jobs jobs;
  apply_cache_slots cache_slots;
  let config =
    base_config ~seed ~cycles ~utilization ~test_set ~precond
    @ [ ("jobs", Obs.Json.Int jobs);
        ("cache_slots", Obs.Json.Int (Thermal.Mesh.cache_capacity ())) ]
  in
  obs_begin ~command:"sweep" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint
    (Postplace.Flow.fingerprint ~extra:[ ("jobs", string_of_int jobs) ] flow);
  let fig6 =
    Run.phase "sweep" @@ fun () -> Postplace.Experiment.run_fig6 ?checkpoint flow
  in
  Run.set_peak
    fig6.Postplace.Experiment.base_eval.Postplace.Flow.metrics
      .Thermal.Metrics.peak_rise_k;
  let points =
    fig6.Postplace.Experiment.default_points
    @ fig6.Postplace.Experiment.eri_points
    @ fig6.Postplace.Experiment.hw_points
  in
  Format.printf "%-10s %12s %14s %12s@." "scheme" "overhead[%]"
    "reduction[%]" "timing[+%]";
  List.iter
    (fun (p : Postplace.Experiment.point) ->
       Format.printf "%-10s %12.2f %14.2f %12.2f@."
         p.Postplace.Experiment.scheme p.area_overhead_pct
         p.temp_reduction_pct p.timing_overhead_pct)
    points;
  obs_end ~command:"sweep" ~trace ~report ~perfetto ~prom ~config
    ~sections:
      [ ("base", eval_json fig6.Postplace.Experiment.base_eval);
        ("points", Obs.Json.List (List.map point_json points)) ]

(* --- optimize ---------------------------------------------------------------- *)

let rows_arg =
  let doc = "Empty-row budget to allocate greedily (>= 1)." in
  Arg.(value & opt (int_min ~min:1 "--rows") 2
       & info [ "rows" ] ~docv:"N" ~doc)

let run_optimize seed cycles utilization test_set precond screen guide
    cache_slots rows jobs trace report perfetto prom ledger =
  with_structured_errors @@ fun () ->
  Parallel.Pool.set_jobs jobs;
  apply_cache_slots cache_slots;
  let config =
    base_config ~seed ~cycles ~utilization ~test_set ~precond
    @ [ ("rows", Obs.Json.Int rows); ("jobs", Obs.Json.Int jobs);
        ("screen", Obs.Json.String screen);
        ("guide", Obs.Json.String guide);
        ("cache_slots", Obs.Json.Int (Thermal.Mesh.cache_capacity ())) ]
  in
  obs_begin ~command:"optimize" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~screen ~guide ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint
    (Postplace.Flow.fingerprint
       ~extra:
         [ ("rows", string_of_int rows); ("jobs", string_of_int jobs);
           ("cache_slots",
            string_of_int (Thermal.Mesh.cache_capacity ())) ]
       flow);
  let base =
    Run.phase "evaluate" @@ fun () ->
    Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement
  in
  Format.printf "base thermal: %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  (* under the gradient guide, surface the base placement's sensitivity
     map before optimizing: where a watt buys the most peak temperature *)
  let sens_sections =
    match flow.Postplace.Flow.guide with
    | Postplace.Flow.Guide_peak -> []
    | Postplace.Flow.Guide_gradient ->
      let adj =
        Run.phase "sensitivity" @@ fun () ->
        Postplace.Flow.sensitivity flow flow.Postplace.Flow.base_placement
      in
      let sens = adj.Thermal.Adjoint.sensitivity in
      let ix, iy = Geo.Grid.argmax sens in
      let gap =
        adj.Thermal.Adjoint.smoothed_peak_k
        -. adj.Thermal.Adjoint.peak_rise_k
      in
      Format.printf
        "adjoint sensitivity: peak %.3f K/W at tile (%d, %d), smoothing \
         gap %.3f K@."
        (Geo.Grid.max_value sens) ix iy gap;
      [ ("sensitivity",
         Obs.Json.Obj
           [ ("peak_k_per_w", Obs.Json.Float (Geo.Grid.max_value sens));
             ("argmax_ix", Obs.Json.Int ix);
             ("argmax_iy", Obs.Json.Int iy);
             ("smoothed_peak_k",
              Obs.Json.Float adj.Thermal.Adjoint.smoothed_peak_k);
             ("smoothing_gap_k", Obs.Json.Float gap);
             ("cg_iterations",
              Obs.Json.Int adj.Thermal.Adjoint.cg_iterations) ]) ]
  in
  let r =
    Run.phase "optimize" @@ fun () ->
    Postplace.Optimizer.greedy_rows flow ~rows ()
  in
  Run.set_plan
    r.Postplace.Optimizer.plan.Postplace.Technique.inserted_after;
  let pl = r.Postplace.Optimizer.plan.Postplace.Technique.eri_placement in
  let ev =
    Run.phase "evaluate_after" @@ fun () -> Postplace.Flow.evaluate flow pl
  in
  Run.set_peak ev.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k;
  let area_pct =
    Postplace.Technique.area_overhead_pct ~base:base.Postplace.Flow.placement
      pl
  in
  let red_pct =
    Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
      ~after:ev.Postplace.Flow.metrics
  in
  Format.printf "optimized: %a@." Thermal.Metrics.pp
    ev.Postplace.Flow.metrics;
  Format.printf
    "rows %d, evaluations %d (adjoint %d), area overhead %.1f%%, peak \
     reduction %.2f%%@."
    rows r.Postplace.Optimizer.evaluations
    r.Postplace.Optimizer.adjoint_evaluations area_pct red_pct;
  obs_end ~command:"optimize" ~trace ~report ~perfetto ~prom ~config
    ~sections:
      ([ ("base", eval_json base) ]
       @ sens_sections
       @ [ ("result",
         Obs.Json.Obj
           [ ("rows", Obs.Json.Int rows);
             ("evaluations", Obs.Json.Int r.Postplace.Optimizer.evaluations);
             ("blur_evaluations",
              Obs.Json.Int r.Postplace.Optimizer.blur_evaluations);
             ("adjoint_evaluations",
              Obs.Json.Int r.Postplace.Optimizer.adjoint_evaluations);
             ("predicted_peak_k",
              Obs.Json.Float r.Postplace.Optimizer.predicted_peak_k);
             ("inserted_after",
              Obs.Json.List
                (List.map (fun i -> Obs.Json.Int i)
                   r.Postplace.Optimizer.plan.Postplace.Technique
                     .inserted_after));
             ("area_overhead_pct", Obs.Json.Float area_pct);
             ("peak_reduction_pct", Obs.Json.Float red_pct);
             ("after", eval_json ev) ]) ])

(* --- check ------------------------------------------------------------------- *)

let run_check seed cycles utilization test_set precond trace report
    perfetto prom ledger =
  with_structured_errors @@ fun () ->
  let config = base_config ~seed ~cycles ~utilization ~test_set ~precond in
  obs_begin ~command:"check" ~ledger ~config ~trace ~report ~perfetto;
  let flow =
    Run.phase "prepare" @@ fun () ->
    prepare ~seed ~cycles ~utilization ~test_set ~precond ()
  in
  Run.set_fingerprint (Postplace.Flow.fingerprint flow);
  let outcomes =
    Run.phase "check" @@ fun () ->
    Postplace.Flow.check_design flow flow.Postplace.Flow.base_placement
  in
  List.iter
    (fun (o : Robust.Validate.outcome) ->
       match o.Robust.Validate.failure with
       | None -> Format.printf "PASS %s@." o.Robust.Validate.check_name
       | Some detail ->
         Format.printf "FAIL %s: %s@." o.Robust.Validate.check_name detail)
    outcomes;
  let failures =
    List.filter (fun o -> o.Robust.Validate.failure <> None) outcomes
  in
  Format.printf "%d/%d checks passed@."
    (List.length outcomes - List.length failures)
    (List.length outcomes);
  let outcome_json (o : Robust.Validate.outcome) =
    Obs.Json.Obj
      [ ("check", Obs.Json.String o.Robust.Validate.check_name);
        ("failure",
         match o.Robust.Validate.failure with
         | None -> Obs.Json.Null
         | Some d -> Obs.Json.String d) ]
  in
  let status =
    obs_end ~command:"check" ~trace ~report ~perfetto ~prom ~config
      ~sections:[ ("checks", Obs.Json.List (List.map outcome_json outcomes)) ]
  in
  if status <> 0 then status
  else
    match failures with
    | [] -> 0
    | o :: _ ->
      Robust.Error.exit_code
        (Robust.Error.Invariant_violation
           { check = o.Robust.Validate.check_name;
             detail = Option.value o.Robust.Validate.failure ~default:"" })

(* --- serve ------------------------------------------------------------------- *)

let input_arg =
  let doc =
    "Read JSONL job requests from $(docv) ($(b,-) = stdin). One request \
     object per line; see the Serving section of the README for the \
     schema."
  in
  Arg.(value & opt string "-" & info [ "input"; "i" ] ~docv:"FILE" ~doc)

let output_arg =
  let doc =
    "Write JSONL responses to $(docv) ($(b,-) = stdout). Exactly one \
     response line per request line, in completion order."
  in
  Arg.(value & opt string "-" & info [ "output"; "o" ] ~docv:"FILE" ~doc)

let queue_cap_arg =
  let doc =
    "Bounded admission-queue capacity (>= 1). A request arriving on a \
     full queue is rejected with a structured queue-full error (exit \
     class 14 in its response) instead of buffered without limit."
  in
  Arg.(value & opt (int_min ~min:1 "--queue-cap") 64
       & info [ "queue-cap" ] ~docv:"N" ~doc)

let flow_slots_arg =
  let doc =
    "Prepared-flow MRU cache capacity (>= 1): how many distinct config \
     fingerprints keep their prepared flow and base evaluation warm \
     across batches."
  in
  Arg.(value & opt (int_min ~min:1 "--flow-slots") 4
       & info [ "flow-slots" ] ~docv:"N" ~doc)

let max_retries_arg =
  let doc =
    "Retry budget for transient failures (solver divergence, worker \
     failure) with seeded-jitter exponential backoff; validation errors \
     are never retried. A request's own max_retries field overrides \
     this."
  in
  Arg.(value & opt (int_min ~min:0 "--max-retries") 2
       & info [ "max-retries" ] ~docv:"N" ~doc)

let retry_base_ms_arg =
  let doc = "Base delay of the exponential retry backoff, in milliseconds." in
  Arg.(value
       & opt (float_range ~min:0.0 ~min_exclusive:0.0 "--retry-base-ms") 25.0
       & info [ "retry-base-ms" ] ~docv:"MS" ~doc)

let run_serve input output queue_cap flow_slots max_retries retry_base_ms
    jobs cache_slots trace report perfetto prom ledger =
  with_structured_errors @@ fun () ->
  apply_cache_slots cache_slots;
  let config =
    [ ("input", Obs.Json.String input);
      ("output", Obs.Json.String output);
      ("queue_cap", Obs.Json.Int queue_cap);
      ("flow_slots", Obs.Json.Int flow_slots);
      ("max_retries", Obs.Json.Int max_retries);
      ("retry_base_ms", Obs.Json.Float retry_base_ms);
      ("jobs", Obs.Json.Int jobs);
      ("cache_slots", Obs.Json.Int (Thermal.Mesh.cache_capacity ())) ]
  in
  obs_begin ~command:"serve" ~ledger ~config ~trace ~report ~perfetto;
  let in_fd =
    if input = "-" then Unix.stdin
    else
      try Unix.openfile input [ Unix.O_RDONLY ] 0
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "thermoplace: cannot open %s: %s\n" input
          (Unix.error_message e);
        exit 2
  in
  let out_ch, close_output =
    if output = "-" then (stdout, fun () -> flush stdout)
    else
      match open_out output with
      | oc -> (oc, fun () -> close_out oc)
      | exception Sys_error msg ->
        Printf.eprintf "thermoplace: cannot open output: %s\n" msg;
        exit 2
  in
  (* Per-job ledger records go to the same ledger as this run's own
     summary record, so `history list --job ID` sees both sides. *)
  let server_config =
    { Serve.Server.default_config with
      Serve.Server.queue_capacity = queue_cap;
      flow_slots;
      policy =
        { Serve.Policy.default with
          Serve.Policy.max_retries;
          base_delay_ms = retry_base_ms };
      ledger = !Run.ledger_path }
  in
  let summary =
    Fun.protect
      ~finally:(fun () ->
        close_output ();
        if input <> "-" then Unix.close in_fd)
      (fun () ->
         Parallel.Pool.with_pool ~jobs @@ fun () ->
         Run.phase "serve" @@ fun () ->
         Serve.Server.run ~config:server_config ~input:in_fd ~output:out_ch
           ())
  in
  (* The summary goes to stderr: stdout may be the response stream. *)
  Printf.eprintf "thermoplace: serve summary %s\n"
    (Obs.Json.to_string (Serve.Server.summary_json summary));
  obs_end ~command:"serve" ~trace ~report ~perfetto ~prom ~config
    ~sections:[ ("summary", Serve.Server.summary_json summary) ]

let serve_cmd =
  let doc =
    "Serve batch optimization jobs from a JSONL request stream: bounded \
     admission queue with backpressure, same-fingerprint batching over a \
     shared prepared flow, per-job deadlines, retry with exponential \
     backoff, per-job fault isolation, and graceful drain on SIGTERM \
     (stop accepting, finish everything admitted, exit 0)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ input_arg $ output_arg $ queue_cap_arg
          $ flow_slots_arg $ max_retries_arg $ retry_base_ms_arg $ jobs_arg
          $ cache_slots_arg $ trace_arg $ report_arg $ perfetto_arg
          $ prom_arg $ ledger_arg)

(* --- history ----------------------------------------------------------------- *)

(* Regression forensics over the run ledger: list runs, show one record,
   diff two records' config/timings, or trend one numeric key. Records
   are addressed by the index `history list` prints; negative indexes
   count from the end (-1 = latest). *)

let history_ledger_arg =
  let doc =
    "Ledger file to read (default thermoplace.ledger.jsonl, or the \
     THERMOPLACE_LEDGER environment variable)."
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let last_arg =
  let doc = "Only consider the last $(docv) records." in
  Arg.(value & opt (some (int_min ~min:1 "--last")) None
       & info [ "last" ] ~docv:"N" ~doc)

(* Per-job records written by `thermoplace serve` carry a job_id; the
   --job filter narrows list/diff to one job's history (e.g. its retry
   attempts across server runs). CLI run records have no job_id and
   never match. Indexes printed and accepted under --job address the
   filtered view. *)
let job_arg =
  let doc =
    "Only consider records whose $(b,job_id) field equals $(docv) \
     (per-job records written by $(b,thermoplace serve)). Record indexes \
     then address the filtered list."
  in
  Arg.(value & opt (some string) None & info [ "job" ] ~docv:"ID" ~doc)

let filter_job job records =
  match job with
  | None -> records
  | Some id -> List.filter (fun r -> Obs.Ledger.job_id r = Some id) records

let load_ledger ledger =
  match Obs.Ledger.resolve_path ?path:ledger () with
  | None -> Error "ledger disabled (path \"none\")"
  | Some path ->
    (match Obs.Ledger.load path with
     | Ok records -> Ok (path, records)
     | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let take_last n l =
  match n with
  | None -> l
  | Some n ->
    let len = List.length l in
    if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let nth_record records idx =
  let n = List.length records in
  let i = if idx < 0 then n + idx else idx in
  if i < 0 || i >= n then
    Error (Printf.sprintf "record %d out of range (ledger has %d)" idx n)
  else Ok (i, List.nth records i)

let format_time ts =
  if Float.is_nan ts then "?"
  else
    let tm = Unix.localtime ts in
    Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02d" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec

let total_ms r =
  List.assoc_opt "total_ms" (Obs.Ledger.phases_ms r)

let with_ledger ledger f =
  match load_ledger ledger with
  | Error msg ->
    Printf.eprintf "thermoplace: history: %s\n" msg;
    1
  | Ok (path, records) -> f path records

let run_history_list ledger last job =
  with_ledger ledger @@ fun path records ->
  let records = filter_job job records in
  Printf.printf "ledger %s: %d record(s)%s\n" path (List.length records)
    (match job with Some id -> Printf.sprintf " for job %s" id | None -> "");
  let base = List.length records - List.length (take_last last records) in
  List.iteri
    (fun i r ->
       Printf.printf "#%-3d %s  %-10s %-5s exit=%-2d %10s  %s%s\n" (base + i)
         (format_time (Obs.Ledger.timestamp_s r))
         (Obs.Ledger.command r) (Obs.Ledger.outcome r)
         (Obs.Ledger.exit_code r)
         (match total_ms r with
          | Some ms -> Printf.sprintf "%.1fms" ms
          | None -> "-")
         (Obs.Ledger.fingerprint r)
         (match Obs.Ledger.job_id r with
          | Some id when job = None -> "  job=" ^ id
          | _ -> ""))
    (take_last last records);
  0

let run_history_show ledger idx =
  with_ledger ledger @@ fun _path records ->
  match nth_record records idx with
  | Error msg ->
    Printf.eprintf "thermoplace: history: %s\n" msg;
    1
  | Ok (_, r) ->
    print_endline (Obs.Json.to_string ~pretty:true r);
    0

let run_history_diff ledger job idx_a idx_b =
  with_ledger ledger @@ fun _path records ->
  let records = filter_job job records in
  match (nth_record records idx_a, nth_record records idx_b) with
  | Error msg, _ | _, Error msg ->
    Printf.eprintf "thermoplace: history: %s\n" msg;
    1
  | Ok (ia, a), Ok (ib, b) ->
    Printf.printf "a: #%d %s %s  %s\n" ia (format_time (Obs.Ledger.timestamp_s a))
      (Obs.Ledger.command a) (Obs.Ledger.fingerprint a);
    Printf.printf "b: #%d %s %s  %s\n" ib (format_time (Obs.Ledger.timestamp_s b))
      (Obs.Ledger.command b) (Obs.Ledger.fingerprint b);
    (* config delta: union of keys, a's order first *)
    let cfg_a = Obs.Ledger.config_fields a in
    let cfg_b = Obs.Ledger.config_fields b in
    let keys =
      List.map fst cfg_a
      @ List.filter (fun k -> not (List.mem_assoc k cfg_a)) (List.map fst cfg_b)
    in
    let render = function
      | None -> "-"
      | Some j -> Obs.Json.to_string j
    in
    let changed =
      List.filter
        (fun k -> List.assoc_opt k cfg_a <> List.assoc_opt k cfg_b)
        keys
    in
    if changed = [] then print_endline "config: identical"
    else begin
      print_endline "config:";
      List.iter
        (fun k ->
           Printf.printf "  %-14s %s -> %s\n" k
             (render (List.assoc_opt k cfg_a))
             (render (List.assoc_opt k cfg_b)))
        changed
    end;
    (* per-phase timing delta *)
    let ph_a = Obs.Ledger.phases_ms a in
    let ph_b = Obs.Ledger.phases_ms b in
    let phase_keys =
      List.map fst ph_a
      @ List.filter (fun k -> not (List.mem_assoc k ph_a)) (List.map fst ph_b)
    in
    if phase_keys <> [] then begin
      Printf.printf "%-18s %12s %12s %10s\n" "phase" "a[ms]" "b[ms]" "delta";
      List.iter
        (fun k ->
           match (List.assoc_opt k ph_a, List.assoc_opt k ph_b) with
           | Some va, Some vb ->
             let pct =
               if va > 0.0 then Printf.sprintf "%+.1f%%" ((vb -. va) /. va *. 100.0)
               else "-"
             in
             Printf.printf "%-18s %12.1f %12.1f %10s\n" k va vb pct
           | Some va, None -> Printf.printf "%-18s %12.1f %12s %10s\n" k va "-" "-"
           | None, Some vb -> Printf.printf "%-18s %12s %12.1f %10s\n" k "-" vb "-"
           | None, None -> ())
        phase_keys
    end;
    let scalar name get render =
      match (get a, get b) with
      | None, None -> ()
      | va, vb when va = vb ->
        Printf.printf "%-18s %s (same)\n" name (render va)
      | va, vb ->
        Printf.printf "%-18s %s -> %s\n" name (render va) (render vb)
    in
    let render_float = function
      | None -> "-"
      | Some v -> Printf.sprintf "%.6g" v
    in
    let render_str = function None -> "-" | Some s -> s in
    scalar "cg_iterations"
      (fun r -> Option.bind (Obs.Json.member "cg_iterations" r) Obs.Json.to_float)
      render_float;
    scalar "peak_rise_k"
      (fun r -> Option.bind (Obs.Json.member "peak_rise_k" r) Obs.Json.to_float)
      render_float;
    scalar "plan_hash"
      (fun r ->
         Option.bind (Obs.Json.member "plan_hash" r) Obs.Json.to_string_opt)
      render_str;
    0

(* A trend key is a phases_ms entry first, then any numeric top-level
   record field (peak_rise_k, cg_iterations, exit_code...). *)
let trend_value key r =
  match List.assoc_opt key (Obs.Ledger.phases_ms r) with
  | Some v -> Some v
  | None -> Option.bind (Obs.Json.member key r) Obs.Json.to_float

let trend_key_arg =
  let doc =
    "Numeric key to trend: a phases_ms entry (optimize_ms, total_ms, ...) \
     or a top-level record field (peak_rise_k, cg_iterations)."
  in
  Arg.(value & opt string "total_ms" & info [ "key" ] ~docv:"KEY" ~doc)

let run_history_trend ledger key last =
  with_ledger ledger @@ fun _path records ->
  let points =
    List.filter_map
      (fun r -> Option.map (fun v -> (r, v)) (trend_value key r))
      (take_last last records)
  in
  (match points with
   | [] -> Printf.printf "no records carry key %S\n" key
   | points ->
     let vmax =
       List.fold_left (fun m (_, v) -> Float.max m v) Float.neg_infinity
         points
     in
     Printf.printf "%-20s %12s  %-30s %s\n" "time" key "" "fingerprint";
     List.iter
       (fun (r, v) ->
          let width =
            if vmax > 0.0 then
              int_of_float (Float.round (v /. vmax *. 30.0))
            else 0
          in
          Printf.printf "%-20s %12.2f  %-30s %s\n"
            (format_time (Obs.Ledger.timestamp_s r))
            v
            (String.make (max 0 (min 30 width)) '#')
            (Obs.Ledger.fingerprint r))
       points);
  0

let history_cmd =
  let list_cmd =
    let doc = "List ledger records (index, time, command, outcome, total)." in
    Cmd.v (Cmd.info "list" ~doc)
      Term.(const run_history_list $ history_ledger_arg $ last_arg $ job_arg)
  in
  let idx_pos n docv =
    Arg.(required & pos n (some int) None & info [] ~docv)
  in
  let show_cmd =
    let doc = "Pretty-print one ledger record (negative index = from end)." in
    Cmd.v (Cmd.info "show" ~doc)
      Term.(const run_history_show $ history_ledger_arg $ idx_pos 0 "IDX")
  in
  let diff_cmd =
    let doc =
      "Diff two ledger records: config delta, per-phase timing delta, CG \
       iteration / peak temperature / plan-hash changes."
    in
    Cmd.v (Cmd.info "diff" ~doc)
      Term.(const run_history_diff $ history_ledger_arg $ job_arg
            $ idx_pos 0 "A" $ idx_pos 1 "B")
  in
  let trend_cmd =
    let doc = "Print one numeric key across records with an ASCII bar." in
    Cmd.v (Cmd.info "trend" ~doc)
      Term.(const run_history_trend $ history_ledger_arg $ trend_key_arg
            $ last_arg)
  in
  let doc = "Inspect the cross-run ledger (list, show, diff, trend)." in
  Cmd.group (Cmd.info "history" ~doc) [ list_cmd; show_cmd; diff_cmd; trend_cmd ]

(* --- command wiring ------------------------------------------------------------ *)

let flow_cmd =
  let doc = "Run the flow and apply one temperature-reduction technique." in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(const run_flow $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ cache_slots_arg $ technique_arg $ overhead_arg
          $ jobs_arg $ trace_arg $ report_arg $ perfetto_arg $ prom_arg
          $ ledger_arg)

let report_cmd =
  let doc = "Print netlist, placement, power and thermal summaries." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run_report $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ trace_arg $ report_arg $ perfetto_arg $ prom_arg
          $ ledger_arg)

let maps_cmd =
  let doc = "Dump power and thermal maps (Fig. 5 data)." in
  Cmd.v (Cmd.info "maps" ~doc)
    Term.(const run_maps $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ ascii_arg $ trace_arg $ report_arg $ perfetto_arg
          $ prom_arg $ ledger_arg)

let sweep_cmd =
  let doc = "Reduction-vs-overhead sweep for all three schemes (Fig. 6)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run_sweep $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ cache_slots_arg $ jobs_arg $ checkpoint_arg
          $ trace_arg $ report_arg $ perfetto_arg $ prom_arg $ ledger_arg)

let check_cmd =
  let doc =
    "Run the design invariant suite (placement legality, floorplan \
     containment, power-map sanity, mesh-matrix SPD structure, bounded \
     temperatures) and exit non-zero on any violation."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run_check $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ trace_arg $ report_arg $ perfetto_arg $ prom_arg
          $ ledger_arg)

let optimize_cmd =
  let doc =
    "Allocate an empty-row budget with the greedy row-budget optimizer \
     (true thermal solves per candidate, evaluated in parallel on the \
     domain pool)."
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run_optimize $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ screen_arg $ guide_arg $ cache_slots_arg
          $ rows_arg $ jobs_arg $ trace_arg $ report_arg $ perfetto_arg
          $ prom_arg $ ledger_arg)

let export_cmd =
  let doc =
    "Export the design: structural Verilog, DEF placement, SPICE thermal \
     netlist and an SVG layout with hotspot overlay."
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run_export $ seed $ cycles $ utilization $ test_set
          $ precond_arg $ outdir_arg $ trace_arg $ report_arg $ perfetto_arg
          $ prom_arg $ ledger_arg)

let () =
  (match Robust.Faults.init_from_env () with
   | Ok () -> ()
   | Error msg ->
     Printf.eprintf "thermoplace: %s\n" msg;
     exit 2);
  (* environment-level default for the mesh cache capacity; an explicit
     --cache-slots flag runs later and overrides it *)
  (match Sys.getenv_opt "THERMOPLACE_CACHE_SLOTS" with
   | None -> ()
   | Some s ->
     (match int_of_string_opt s with
      | Some n when n >= 1 -> Thermal.Mesh.set_cache_capacity n
      | _ ->
        Printf.eprintf
          "thermoplace: THERMOPLACE_CACHE_SLOTS must be an integer >= 1 \
           (got %S)\n" s;
        exit 2));
  let doc = "post-placement temperature reduction (Liu & Nannarelli, DATE'10)" in
  let info = Cmd.info "thermoplace" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ flow_cmd; report_cmd; maps_cmd; sweep_cmd; optimize_cmd;
            check_cmd; export_cmd; serve_cmd; history_cmd ]))
