(* json_check FILE [KEY ...]: parse FILE with Obs.Json and require each KEY
   to be present at the top level. Exits non-zero with a diagnostic on parse
   failure or a missing key. Used by scripts/check.sh to validate --report
   output without external JSON tooling. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Array.to_list Sys.argv with
  | _ :: path :: keys ->
    let text =
      try read_file path
      with Sys_error msg ->
        Printf.eprintf "json_check: %s\n" msg;
        exit 1
    in
    (match Obs.Json.of_string text with
     | Error msg ->
       Printf.eprintf "json_check: %s: invalid JSON: %s\n" path msg;
       exit 1
     | Ok json ->
       let missing =
         List.filter (fun k -> Obs.Json.member k json = None) keys
       in
       if missing <> [] then begin
         Printf.eprintf "json_check: %s: missing top-level keys: %s\n" path
           (String.concat ", " missing);
         exit 1
       end;
       Printf.printf "%s: valid JSON (%d top-level keys)\n" path
         (List.length (Obs.Json.keys json)))
  | _ ->
    prerr_endline "usage: json_check FILE [REQUIRED_KEY ...]";
    exit 2
