(* json_check FILE [KEY ...]: parse FILE with Obs.Json and require each KEY
   to be present. A KEY may be a dotted path ("summary.screening") which is
   resolved through nested objects; a plain name checks the top level as
   before. Exits non-zero with a diagnostic on parse failure or a missing
   key. Used by scripts/check.sh to validate --report output without
   external JSON tooling.

   json_check --trace FILE [MIN_TRACKS]: validate FILE as a Chrome
   trace-event array (the --perfetto output): every event must be a
   complete "X" span with a string name, finite non-negative ts/dur and an
   integer tid, and spans sharing a tid must nest properly (no partial
   overlap). With MIN_TRACKS, additionally require at least that many
   distinct tids (e.g. 2 proves worker-domain spans survived the merge).
   Prints the event and track counts on success.

   json_check --jsonl FILE [MIN_RECORDS]: validate FILE as line-delimited
   JSON (the run-ledger format): every non-blank line must parse as a
   JSON object carrying an integer "schema_version" field. With
   MIN_RECORDS, additionally require at least that many records — the
   check.sh smoke uses it to assert the ledger grew by the expected
   count. Prints the record count on success.

   json_check --jsonl-field FILE KEY: parse FILE as generic line-delimited
   JSON (no ledger schema requirement — serve response streams qualify)
   and print KEY's value per line, compact JSON, "-" when absent. KEY may
   be a dotted path. check.sh uses this to count per-outcome serve
   results and to diff the deterministic "result" payloads between a
   fault-armed and a fault-free run without external JSON tooling. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  let text =
    try read_file path
    with Sys_error msg ->
      Printf.eprintf "json_check: %s\n" msg;
      exit 1
  in
  match Obs.Json.of_string text with
  | Error msg ->
    Printf.eprintf "json_check: %s: invalid JSON: %s\n" path msg;
    exit 1
  | Ok json -> json

let check_trace path min_tracks =
  match Obs.Perfetto.validate (parse_file path) with
  | Ok stats ->
    let tracks = List.length stats.Obs.Perfetto.tids in
    if tracks < min_tracks then begin
      Printf.eprintf
        "json_check: %s: expected >= %d tracks (distinct tids), got %d\n"
        path min_tracks tracks;
      exit 1
    end;
    Printf.printf "%s: valid trace-event JSON (%d events, %d tracks: %s)\n"
      path stats.Obs.Perfetto.events tracks
      (String.concat ", "
         (List.map string_of_int stats.Obs.Perfetto.tids))
  | Error msg ->
    Printf.eprintf "json_check: %s: invalid trace: %s\n" path msg;
    exit 1

let check_jsonl path min_records =
  match Obs.Ledger.load path with
  | Error msg ->
    Printf.eprintf "json_check: %s: invalid JSONL: %s\n" path msg;
    exit 1
  | Ok records ->
    let n = List.length records in
    if n < min_records then begin
      Printf.eprintf "json_check: %s: expected >= %d records, got %d\n" path
        min_records n;
      exit 1
    end;
    Printf.printf "%s: valid JSONL (%d records, schema v%d)\n" path n
      Obs.Ledger.schema_version

let jsonl_field path key =
  let lookup json =
    List.fold_left
      (fun acc part ->
         match acc with
         | None -> None
         | Some j -> Obs.Json.member part j)
      (Some json)
      (String.split_on_char '.' key)
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "json_check: %s\n" msg;
      exit 1
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let lineno = ref 0 in
       try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then
             match Obs.Json.of_string line with
             | Error msg ->
               Printf.eprintf "json_check: %s: line %d: invalid JSON: %s\n"
                 path !lineno msg;
               exit 1
             | Ok json ->
               print_endline
                 (match lookup json with
                  | Some v -> Obs.Json.to_string v
                  | None -> "-")
         done
       with End_of_file -> ())

let lookup_path json key =
  List.fold_left
    (fun acc part ->
       match acc with
       | None -> None
       | Some j -> Obs.Json.member part j)
    (Some json)
    (String.split_on_char '.' key)

let check_report path keys =
  let json = parse_file path in
  let missing = List.filter (fun k -> lookup_path json k = None) keys in
  if missing <> [] then begin
    Printf.eprintf "json_check: %s: missing keys: %s\n" path
      (String.concat ", " missing);
    exit 1
  end;
  Printf.printf "%s: valid JSON (%d top-level keys)\n" path
    (List.length (Obs.Json.keys json))

let () =
  match Array.to_list Sys.argv with
  | _ :: "--trace" :: [ path ] -> check_trace path 1
  | _ :: "--trace" :: [ path; min_tracks ] ->
    (match int_of_string_opt min_tracks with
     | Some n when n >= 1 -> check_trace path n
     | _ ->
       prerr_endline "json_check: MIN_TRACKS must be an integer >= 1";
       exit 2)
  | _ :: "--jsonl" :: [ path ] -> check_jsonl path 0
  | _ :: "--jsonl" :: [ path; min_records ] ->
    (match int_of_string_opt min_records with
     | Some n when n >= 0 -> check_jsonl path n
     | _ ->
       prerr_endline "json_check: MIN_RECORDS must be an integer >= 0";
       exit 2)
  | _ :: "--jsonl-field" :: [ path; key ] -> jsonl_field path key
  | _ :: path :: keys
    when path <> "--trace" && path <> "--jsonl" && path <> "--jsonl-field"
    ->
    check_report path keys
  | _ ->
    prerr_endline
      "usage: json_check FILE [REQUIRED_KEY ...]\n\
      \       json_check --trace FILE [MIN_TRACKS]\n\
      \       json_check --jsonl FILE [MIN_RECORDS]\n\
      \       json_check --jsonl-field FILE KEY";
    exit 2
