(* Package and model exploration: how the cooling solution changes the
   thermal picture (paper SII: "for the same total power, it is possible to
   have different peak temperature and temperature gradient by using
   cooling mechanisms with different heat removal capabilities"), plus the
   two model extensions: leakage-temperature feedback and the transient
   solve that justifies steady-state analysis.

   Run with:  dune exec examples/package_exploration.exe *)

let () =
  let flow = Postplace.Experiment.test_set_2 () in

  (* 1. package sweep: weaker sink -> hotter die, and the ERI benefit
        shifts because lateral spreading changes *)
  Format.printf "package sweep (ERI at ~20%% overhead under each sink):@.";
  Format.printf "  %-14s %10s %12s %16s@." "h [W/m2K]" "peak [K]"
    "gradient [K]" "ERI benefit [%]";
  List.iter
    (fun (r : Postplace.Experiment.package_row) ->
       Format.printf "  %-14.0f %10.3f %12.3f %16.2f@."
         r.Postplace.Experiment.pk_h_top_w_m2k r.pk_peak_k r.pk_gradient_k
         r.pk_eri_reduction_pct)
    (Postplace.Experiment.run_package_sweep
       ~sinks:[ 1.0e5; 3.0e5; 1.0e6 ] flow);

  (* 2. leakage-temperature feedback *)
  Format.printf "@.leakage/temperature feedback on the base placement:@.";
  let et =
    Postplace.Electrothermal.evaluate flow
      flow.Postplace.Flow.base_placement ()
  in
  Format.printf
    "  open-loop peak %.3f K -> closed-loop %.3f K in %d iterations@."
    et.Postplace.Electrothermal.open_loop_peak_k
    et.Postplace.Electrothermal.metrics.Thermal.Metrics.peak_rise_k
    et.Postplace.Electrothermal.iterations;
  Format.printf "  leakage grows %.1f%% at temperature@."
    (100.0
     *. (et.Postplace.Electrothermal.leakage_w
         -. et.Postplace.Electrothermal.nominal_leakage_w)
     /. et.Postplace.Electrothermal.nominal_leakage_w);

  (* 3. transient step response: the steady-state justification *)
  Format.printf "@.transient step response (16x16 mesh):@.";
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  let cfg =
    { flow.Postplace.Flow.mesh_config with Thermal.Mesh.nx = 16; ny = 16 }
  in
  let power =
    Power.Map.power_map base.Postplace.Flow.placement
      ~per_cell_w:flow.Postplace.Flow.per_cell_w ~nx:16 ~ny:16
  in
  let r = Thermal.Transient.step_response cfg ~power ~dt_s:2e-5 ~steps:50 () in
  Format.printf
    "  tau(63%%) = %.0f us = %.0e clock cycles: thermal events are far \
     slower than logic, as the paper assumes@."
    (r.Thermal.Transient.tau_63_s *. 1e6)
    (r.Thermal.Transient.tau_63_s /. 1e-9)
