(* Quickstart: the whole post-placement temperature-reduction flow in ~40
   lines.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A benchmark circuit: three small arithmetic units (~700 cells).
        [Netgen.Benchmark.nine_unit] gives the paper's full 12k-cell one. *)
  let bench = Netgen.Benchmark.small () in

  (* 2. A workload: unit 0 (the multiplier) switches hard, the rest idle.
        This is what creates the hotspot. *)
  let workload = Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ] in

  (* 3. Prepare the flow: simulate for switching activity, floorplan,
        globally place, legalize, estimate per-cell power. *)
  let flow = Postplace.Flow.prepare ~seed:42 bench workload in

  (* 4. Evaluate the compact base placement: power map -> RC thermal
        network -> steady-state solve -> thermal map + hotspots + timing. *)
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  let peak m = m.Thermal.Metrics.peak_rise_k in
  Format.printf "base placement : %a@." Place.Placement.pp_summary
    base.Postplace.Flow.placement;
  Format.printf "base thermal   : %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  Format.printf "hotspots found : %d@."
    (List.length base.Postplace.Flow.hotspots);

  (* 5. Apply Empty Row Insertion next to the hotspots (~15%% area). *)
  let rows =
    flow.Postplace.Flow.base_placement.Place.Placement.fp
      .Place.Floorplan.num_rows * 15 / 100
  in
  let eri = Postplace.Flow.apply_eri flow ~base ~rows in
  let after =
    Postplace.Flow.evaluate flow eri.Postplace.Technique.eri_placement
  in
  Format.printf "ERI (%d rows)  : %a@." rows Thermal.Metrics.pp
    after.Postplace.Flow.metrics;
  Format.printf
    "peak temperature reduction: %.1f%% for %.1f%% extra area@."
    (Thermal.Metrics.reduction_pct
       ~before:base.Postplace.Flow.metrics
       ~after:after.Postplace.Flow.metrics)
    (Postplace.Technique.area_overhead_pct
       ~base:base.Postplace.Flow.placement
       after.Postplace.Flow.placement);
  Format.printf "timing cost: %+.2f%% on the critical path@."
    (Sta.Timing.overhead_pct ~before:base.Postplace.Flow.timing
       ~after:after.Postplace.Flow.timing);
  assert (peak after.Postplace.Flow.metrics
          < peak base.Postplace.Flow.metrics)
