(* The paper's test set 2: one large concentrated hotspot (the 20x20
   multiplier at full tilt). Reproduces the shape of Table I and shows
   where ERI actually inserts its rows.

   Run with:  dune exec examples/concentrated_hotspot.exe *)

let () =
  Format.printf "preparing test set 2 (hot 20x20 multiplier)...@.";
  let flow = Postplace.Experiment.test_set_2 () in
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  Format.printf "base: %a@." Thermal.Metrics.pp base.Postplace.Flow.metrics;

  (match base.Postplace.Flow.hotspots with
   | [] -> failwith "no hotspot -- unexpected for test set 2"
   | h :: _ ->
     let fp = flow.Postplace.Flow.base_placement.Place.Placement.fp in
     let lo, hi = Postplace.Hotspot.span_rows fp h in
     Format.printf
       "dominant hotspot: %d tiles, rows %d..%d of %d, %s@."
       (Postplace.Hotspot.tile_count h) lo hi fp.Place.Floorplan.num_rows
       (if Postplace.Hotspot.is_wide fp h then "wide (ERI territory)"
        else "narrow"));

  (* Table I, our numbers *)
  let rows = Postplace.Experiment.run_table1 flow in
  Format.printf
    "@.%-9s %16s %6s %12s %14s@." "scheme" "area [um]" "rows" "overhead%"
    "dT reduction%";
  List.iter
    (fun (r : Postplace.Experiment.table1_row) ->
       Format.printf "%-9s %7.0f x %6.0f %6s %12.1f %14.1f@."
         r.Postplace.Experiment.t1_scheme r.t1_width_um r.t1_height_um
         (match r.t1_rows_inserted with
          | None -> "-"
          | Some k -> string_of_int k)
         r.t1_overhead_pct r.t1_reduction_pct)
    rows;
  Format.printf
    "(paper: Default 16.1%%->11.3%%, 32.2%%->20.2%%; ERI 16.1%%->13.1%%, \
     32.2%%->28.6%%)@.";

  (* show the insertion plan *)
  let eri = Postplace.Flow.apply_eri flow ~base ~rows:16 in
  Format.printf "@.ERI inserted empty rows after original rows: %s@."
    (String.concat ", "
       (List.map string_of_int eri.Postplace.Technique.inserted_after));
  Format.printf "thermal profile after 16 inserted rows:@.";
  let ev = Postplace.Flow.evaluate flow eri.Postplace.Technique.eri_placement in
  Format.printf "%a@." Geo.Grid.pp_shaded ev.Postplace.Flow.thermal_map
