examples/package_exploration.mli:
