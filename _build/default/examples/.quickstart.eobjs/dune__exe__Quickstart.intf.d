examples/quickstart.mli:
