examples/quickstart.ml: Format List Logicsim Netgen Place Postplace Sta Thermal
