examples/concentrated_hotspot.mli:
