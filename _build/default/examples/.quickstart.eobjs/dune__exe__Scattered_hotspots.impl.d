examples/scattered_hotspots.ml: Format Geo List Place Postplace
