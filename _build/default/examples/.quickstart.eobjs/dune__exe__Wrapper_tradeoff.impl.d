examples/wrapper_tradeoff.ml: Format List Place Postplace Sta Thermal
