examples/custom_circuit.ml: Array Celllib Format Geo Logicsim Netgen Netlist Place Postplace Printf Thermal
