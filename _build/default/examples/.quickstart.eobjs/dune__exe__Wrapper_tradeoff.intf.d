examples/wrapper_tradeoff.mli:
