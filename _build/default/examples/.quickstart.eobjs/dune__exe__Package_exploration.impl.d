examples/package_exploration.ml: Format List Postplace Power Thermal
