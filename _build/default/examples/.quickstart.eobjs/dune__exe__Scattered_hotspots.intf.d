examples/scattered_hotspots.mli:
