examples/concentrated_hotspot.ml: Format Geo List Place Postplace String Thermal
