(* Hotspot-wrapper trade-offs: margin size vs peak reduction vs timing
   cost, and the suitability rule (the wrapper refuses hotspots that are
   too large, exactly the paper's "not suitable for large hotspots").

   Run with:  dune exec examples/wrapper_tradeoff.exe *)

let () =
  let flow = Postplace.Experiment.test_set_1 () in
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in

  (* HW runs on a relaxed (Default) placement, the paper's setup *)
  let util = flow.Postplace.Flow.base_utilization /. 1.2 in
  let default_pl = Postplace.Flow.apply_default flow ~utilization:util in
  let default_ev = Postplace.Flow.evaluate flow default_pl in
  Format.printf "Default placement at util %.2f: peak %.3f K@." util
    default_ev.Postplace.Flow.metrics.Thermal.Metrics.peak_rise_k;

  let reduction ev =
    Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
      ~after:ev.Postplace.Flow.metrics
  in
  Format.printf "Default alone reduces the base peak by %.2f%%@.@."
    (reduction default_ev);

  Format.printf "wrapper margin sweep (reduction is vs the base placement):@.";
  List.iter
    (fun margin_um ->
       let hw =
         Postplace.Flow.apply_hw flow ~on:default_ev ~margin_um ()
       in
       let ev = Postplace.Flow.evaluate flow hw in
       let marginal_timing =
         Sta.Timing.overhead_pct
           ~before:default_ev.Postplace.Flow.timing
           ~after:ev.Postplace.Flow.timing
       in
       Format.printf
         "  margin %4.1f um: peak reduction %5.2f%%, timing vs Default \
          %+5.2f%%@."
         margin_um (reduction ev) marginal_timing)
    [ 2.0; 4.0; 8.0; 12.0 ];

  (* suitability: force the wrapper onto an oversized hotspot and observe
     that it skips (placement unchanged) *)
  let hw_skipped =
    Postplace.Flow.apply_hw flow ~on:default_ev ~max_hotspot_tiles:1 ()
  in
  Format.printf
    "@.with max_hotspot_tiles = 1 every hotspot is 'too large': placement \
     unchanged = %b@."
    (hw_skipped.Place.Placement.locs
     = default_ev.Postplace.Flow.placement.Place.Placement.locs);

  (* the wrapper keeps every placement legal *)
  let hw = Postplace.Flow.apply_hw flow ~on:default_ev () in
  Format.printf "wrapper output is a legal placement: %b@."
    (Place.Placement.validate hw = [])
