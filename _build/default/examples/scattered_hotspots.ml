(* The paper's test set 1: four scattered small hotspots on the full
   nine-unit benchmark. Renders the power and thermal profiles as terminal
   heat-maps (the paper's Fig. 5) and compares the three whitespace
   allocation schemes at one area-overhead point (one slice of Fig. 6).

   Run with:  dune exec examples/scattered_hotspots.exe *)

let () =
  Format.printf "preparing test set 1 (four scattered hot units)...@.";
  let flow = Postplace.Experiment.test_set_1 () in
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in

  Format.printf "@.power profile (40x40, '@@' = hottest):@.";
  Format.printf "%a@." Geo.Grid.pp_shaded base.Postplace.Flow.power_map;
  Format.printf "thermal profile:@.";
  Format.printf "%a@." Geo.Grid.pp_shaded base.Postplace.Flow.thermal_map;

  Format.printf "detected hotspots:@.";
  List.iteri
    (fun i h ->
       Format.printf "  #%d: %s, %d tiles, %d cells, peak %.2f K@." i
         (Geo.Rect.to_string h.Postplace.Hotspot.rect)
         (Postplace.Hotspot.tile_count h)
         (List.length h.Postplace.Hotspot.cells)
         h.Postplace.Hotspot.peak_rise_k)
    base.Postplace.Flow.hotspots;

  (* one slice of Fig. 6 at ~20% area overhead *)
  let overhead = 0.2 in
  let util = flow.Postplace.Flow.base_utilization /. (1.0 +. overhead) in
  let rows =
    int_of_float
      (overhead
       *. float_of_int
            flow.Postplace.Flow.base_placement.Place.Placement.fp
              .Place.Floorplan.num_rows)
  in
  let default_pl = Postplace.Flow.apply_default flow ~utilization:util in
  let default_ev = Postplace.Flow.evaluate flow default_pl in
  let eri = Postplace.Flow.apply_eri flow ~base ~rows in
  let eri_ev =
    Postplace.Flow.evaluate flow eri.Postplace.Technique.eri_placement
  in
  let hw = Postplace.Flow.apply_hw flow ~on:default_ev () in
  let hw_ev = Postplace.Flow.evaluate flow hw in

  Format.printf "@.at ~%.0f%%%% area overhead:@." (100.0 *. overhead);
  List.iter
    (fun (name, ev) ->
       let p = Postplace.Experiment.point_of_eval flow ~base ~scheme:name ev in
       Format.printf
         "  %-8s overhead %5.1f%%  peak reduction %5.2f%%  timing %+5.2f%%@."
         name p.Postplace.Experiment.area_overhead_pct
         p.Postplace.Experiment.temp_reduction_pct
         p.Postplace.Experiment.timing_overhead_pct)
    [ ("Default", default_ev); ("ERI", eri_ev); ("HW", hw_ev) ];
  Format.printf
    "@.thermal profile after ERI (same scale logic, new die outline):@.";
  Format.printf "%a@." Geo.Grid.pp_shaded eri_ev.Postplace.Flow.thermal_map
