(* Building your own design against the public API: a 2-unit datapath
   (a Wallace multiplier and a barrel shifter) assembled with the netlist
   builder and the arithmetic generators, then pushed through the whole
   flow with a custom workload and a custom package.

   Run with:  dune exec examples/custom_circuit.exe *)

module B = Netlist.Builder

let build_design () =
  let b = B.create () in
  (* unit 0: an 8x8 Wallace multiplier with registered I/O *)
  B.set_unit_tag b 0;
  let a = Array.init 8 (fun i -> B.add_input ~name:(Printf.sprintf "a%d" i) b) in
  let c = Array.init 8 (fun i -> B.add_input ~name:(Printf.sprintf "b%d" i) b) in
  let a = Array.map (fun d -> B.add_dff b ~d) a in
  let c = Array.map (fun d -> B.add_dff b ~d) c in
  let product = Netgen.Multiplier.wallace_multiplier b ~a ~b:c in
  Array.iter (fun n -> B.mark_output b (B.add_dff b ~d:n)) product;
  (* unit 1: a 16-bit rotator *)
  B.set_unit_tag b 1;
  let data =
    Array.init 16 (fun i -> B.add_input ~name:(Printf.sprintf "d%d" i) b)
  in
  let amount =
    Array.init 4 (fun i -> B.add_input ~name:(Printf.sprintf "s%d" i) b)
  in
  let rot = Netgen.Shifter.rotate_left b ~data ~amount in
  Array.iter (fun n -> B.mark_output b (B.add_dff b ~d:n)) rot;
  B.set_unit_tag b (-1);
  B.finish b

let () =
  let nl = build_design () in
  let tech = Celllib.Tech.default_65nm in
  Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute tech nl);
  assert (Netlist.Check.is_well_formed nl);

  (* wrap the netlist as a benchmark so the flow can use it *)
  let bench =
    { Netgen.Benchmark.netlist = nl;
      units =
        [| { Netgen.Benchmark.tag = 0; unit_name = "wmul8";
             description = "8x8 Wallace multiplier" };
           { Netgen.Benchmark.tag = 1; unit_name = "rot16";
             description = "16-bit rotator" } |] }
  in
  (* only the multiplier is busy *)
  let workload = Logicsim.Workload.make ~default:0.03 ~hot:[ (0, 0.45) ] in
  let flow = Postplace.Flow.prepare ~seed:7 bench workload in

  (* customize the package: a weaker heat sink makes everything hotter *)
  let weak_sink =
    { flow.Postplace.Flow.mesh_config with
      Thermal.Mesh.stack =
        Thermal.Stack.with_sink Thermal.Stack.default_9layer
          ~h_top_w_m2k:2.0e5 }
  in
  let flow = { flow with Postplace.Flow.mesh_config = weak_sink } in

  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  Format.printf "custom design, weak sink: %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  Format.printf "thermal profile:@.%a@." Geo.Grid.pp_shaded
    base.Postplace.Flow.thermal_map;

  let rows =
    flow.Postplace.Flow.base_placement.Place.Placement.fp
      .Place.Floorplan.num_rows / 8
  in
  let eri = Postplace.Flow.apply_eri flow ~base ~rows in
  let after =
    Postplace.Flow.evaluate flow eri.Postplace.Technique.eri_placement
  in
  Format.printf "after ERI (%d rows): %a@." rows Thermal.Metrics.pp
    after.Postplace.Flow.metrics;
  Format.printf "reduction: %.2f%%@."
    (Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
       ~after:after.Postplace.Flow.metrics)
