(* thermoplace: command-line driver for the post-placement temperature
   reduction flow.

     thermoplace flow     -- run the full flow and one technique
     thermoplace report   -- netlist / placement / power / thermal summary
     thermoplace maps     -- dump power and thermal maps (matrix or ascii)
     thermoplace sweep    -- Default/ERI/HW reduction-vs-overhead sweep *)

open Cmdliner

(* --- shared options ------------------------------------------------------ *)

let seed =
  let doc = "Random seed for vectors and placement." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let cycles =
  let doc = "Measured simulation cycles for switching activity." in
  Arg.(value & opt int 1000 & info [ "cycles" ] ~docv:"N" ~doc)

let utilization =
  let doc = "Base placement row-utilization factor." in
  Arg.(value & opt float 0.85 & info [ "utilization"; "u" ] ~docv:"U" ~doc)

let test_set =
  let doc =
    "Benchmark workload: 'scattered' (test set 1, four scattered hotspots), \
     'concentrated' (test set 2, one large hotspot), or 'small' (tiny \
     3-unit smoke benchmark)."
  in
  Arg.(value & opt string "scattered" & info [ "test-set"; "t" ] ~docv:"SET"
         ~doc)

let prepare ~seed ~cycles ~utilization ~test_set =
  match test_set with
  | "scattered" ->
    let bench = Netgen.Benchmark.nine_unit () in
    Postplace.Flow.prepare ~seed ~utilization ~sim_cycles:cycles bench
      (Logicsim.Workload.scattered_hotspots ~hot_units:[ 0; 4; 6; 8 ])
  | "concentrated" ->
    let bench = Netgen.Benchmark.nine_unit () in
    Postplace.Flow.prepare ~seed ~utilization ~sim_cycles:cycles bench
      (Logicsim.Workload.concentrated_hotspot ~hot_unit:2)
  | "small" ->
    let bench = Netgen.Benchmark.small () in
    Postplace.Flow.prepare ~seed ~utilization ~sim_cycles:cycles bench
      (Logicsim.Workload.make ~default:0.05 ~hot:[ (0, 0.5) ])
  | other ->
    Printf.eprintf "unknown test set %S\n" other;
    exit 2

(* --- flow ---------------------------------------------------------------- *)

let technique_arg =
  let doc = "Technique to apply: none, default, eri, hw." in
  Arg.(value & opt string "eri" & info [ "technique" ] ~docv:"T" ~doc)

let overhead_arg =
  let doc = "Target area overhead as a fraction (e.g. 0.2 = 20%)." in
  Arg.(value & opt float 0.2 & info [ "overhead" ] ~docv:"F" ~doc)

let run_flow seed cycles utilization test_set technique overhead =
  let flow = prepare ~seed ~cycles ~utilization ~test_set in
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  Format.printf "base: %a@." Place.Placement.pp_summary
    base.Postplace.Flow.placement;
  Format.printf "base thermal: %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  let transformed =
    match technique with
    | "none" -> None
    | "default" ->
      Some
        (Postplace.Flow.apply_default flow
           ~utilization:(utilization /. (1.0 +. overhead)))
    | "eri" ->
      let rows =
        max 1
          (int_of_float
             (overhead
              *. float_of_int
                   flow.Postplace.Flow.base_placement.Place.Placement.fp
                     .Place.Floorplan.num_rows))
      in
      let r = Postplace.Flow.apply_eri flow ~base ~rows in
      Some r.Postplace.Technique.eri_placement
    | "hw" ->
      let d =
        Postplace.Flow.apply_default flow
          ~utilization:(utilization /. (1.0 +. overhead))
      in
      let de = Postplace.Flow.evaluate flow d in
      Some (Postplace.Flow.apply_hw flow ~on:de ())
    | other ->
      Printf.eprintf "unknown technique %S\n" other;
      exit 2
  in
  (match transformed with
   | None -> ()
   | Some pl ->
     let ev = Postplace.Flow.evaluate flow pl in
     Format.printf "after %s: %a@." technique Thermal.Metrics.pp
       ev.Postplace.Flow.metrics;
     Format.printf
       "area overhead %.1f%%, peak reduction %.2f%%, timing %+0.2f%%@."
       (Postplace.Technique.area_overhead_pct
          ~base:base.Postplace.Flow.placement pl)
       (Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
          ~after:ev.Postplace.Flow.metrics)
       (Sta.Timing.overhead_pct ~before:base.Postplace.Flow.timing
          ~after:ev.Postplace.Flow.timing));
  0

(* --- report ---------------------------------------------------------------- *)

let run_report seed cycles utilization test_set =
  let flow = prepare ~seed ~cycles ~utilization ~test_set in
  let nl = flow.Postplace.Flow.bench.Netgen.Benchmark.netlist in
  Format.printf "%a@."
    Netlist.Stats.pp
    (Netlist.Stats.compute flow.Postplace.Flow.tech nl);
  Array.iter
    (fun u ->
       let cells = Netlist.Types.cells_of_unit nl u.Netgen.Benchmark.tag in
       Format.printf "unit %d %-8s %6d cells  %s@." u.Netgen.Benchmark.tag
         u.Netgen.Benchmark.unit_name (List.length cells)
         u.Netgen.Benchmark.description)
    flow.Postplace.Flow.bench.Netgen.Benchmark.units;
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  Format.printf "placement: %a@." Place.Placement.pp_summary
    base.Postplace.Flow.placement;
  Format.printf "thermal:   %a@." Thermal.Metrics.pp
    base.Postplace.Flow.metrics;
  Format.printf "critical path: %.0f ps@."
    base.Postplace.Flow.timing.Sta.Timing.critical_ps;
  Format.printf "hotspots:@.";
  List.iteri
    (fun i h ->
       Format.printf "  #%d %s tiles=%d cells=%d peak=%.3fK@." i
         (Geo.Rect.to_string h.Postplace.Hotspot.rect)
         (Postplace.Hotspot.tile_count h)
         (List.length h.Postplace.Hotspot.cells)
         h.Postplace.Hotspot.peak_rise_k)
    base.Postplace.Flow.hotspots;
  0

(* --- maps ------------------------------------------------------------------- *)

let ascii_arg =
  let doc = "Render maps as terminal shading instead of numeric matrices." in
  Arg.(value & flag & info [ "ascii" ] ~doc)

let run_maps seed cycles utilization test_set ascii =
  let flow = prepare ~seed ~cycles ~utilization ~test_set in
  let power, thermal = Postplace.Experiment.fig5_maps flow in
  let dump name g =
    Format.printf "# %s (%dx%d, top row first)@." name (Geo.Grid.nx g)
      (Geo.Grid.ny g);
    if ascii then Format.printf "%a@." Geo.Grid.pp_shaded g
    else Format.printf "%a@." Geo.Grid.pp_rows g
  in
  dump "power [W/tile]" power;
  dump "thermal rise [K]" thermal;
  0

(* --- export ------------------------------------------------------------------ *)

let outdir_arg =
  let doc = "Directory for the exported files (created if missing)." in
  Arg.(value & opt string "export" & info [ "outdir"; "o" ] ~docv:"DIR" ~doc)

let run_export seed cycles utilization test_set outdir =
  let flow = prepare ~seed ~cycles ~utilization ~test_set in
  if not (Sys.file_exists outdir) then Unix.mkdir outdir 0o755;
  let base = Postplace.Flow.evaluate flow flow.Postplace.Flow.base_placement in
  let pl = base.Postplace.Flow.placement in
  let nl = flow.Postplace.Flow.bench.Netgen.Benchmark.netlist in
  let path name = Filename.concat outdir name in
  Netlist.Verilog.write_file (path "design.v") ~module_name:"design" nl;
  Celllib.Lef.write_file (path "cells.lef") flow.Postplace.Flow.tech;
  let fillers = Place.Filler.fill pl in
  Place.Def_writer.write_file (path "design.def") ~fillers pl;
  let problem =
    Thermal.Mesh.build flow.Postplace.Flow.mesh_config
      ~power:base.Postplace.Flow.power_map
  in
  Thermal.Spice.write_file (path "thermal.sp") problem;
  let overlay =
    { Place.Svg.heat = Some base.Postplace.Flow.thermal_map;
      outlines =
        List.map (fun h -> h.Postplace.Hotspot.rect)
          base.Postplace.Flow.hotspots }
  in
  Place.Svg.write_file (path "layout.svg") ~fillers ~overlay pl;
  Format.printf
    "wrote %s/design.v (%d cells), cells.lef, design.def (%d fillers), \
     thermal.sp (%d resistors), layout.svg@."
    outdir
    (Netlist.Types.num_cells nl)
    (List.length fillers)
    (Thermal.Spice.count_resistors problem);
  0

(* --- sweep ------------------------------------------------------------------- *)

let run_sweep seed cycles utilization test_set =
  let flow = prepare ~seed ~cycles ~utilization ~test_set in
  let fig6 = Postplace.Experiment.run_fig6 flow in
  Format.printf "%-10s %12s %14s %12s@." "scheme" "overhead[%]"
    "reduction[%]" "timing[+%]";
  List.iter
    (fun (p : Postplace.Experiment.point) ->
       Format.printf "%-10s %12.2f %14.2f %12.2f@."
         p.Postplace.Experiment.scheme p.area_overhead_pct
         p.temp_reduction_pct p.timing_overhead_pct)
    (fig6.Postplace.Experiment.default_points
     @ fig6.Postplace.Experiment.eri_points
     @ fig6.Postplace.Experiment.hw_points);
  0

(* --- command wiring ------------------------------------------------------------ *)

let flow_cmd =
  let doc = "Run the flow and apply one temperature-reduction technique." in
  Cmd.v (Cmd.info "flow" ~doc)
    Term.(const run_flow $ seed $ cycles $ utilization $ test_set
          $ technique_arg $ overhead_arg)

let report_cmd =
  let doc = "Print netlist, placement, power and thermal summaries." in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run_report $ seed $ cycles $ utilization $ test_set)

let maps_cmd =
  let doc = "Dump power and thermal maps (Fig. 5 data)." in
  Cmd.v (Cmd.info "maps" ~doc)
    Term.(const run_maps $ seed $ cycles $ utilization $ test_set
          $ ascii_arg)

let sweep_cmd =
  let doc = "Reduction-vs-overhead sweep for all three schemes (Fig. 6)." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run_sweep $ seed $ cycles $ utilization $ test_set)

let export_cmd =
  let doc =
    "Export the design: structural Verilog, DEF placement, SPICE thermal \
     netlist and an SVG layout with hotspot overlay."
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run_export $ seed $ cycles $ utilization $ test_set
          $ outdir_arg)

let () =
  let doc = "post-placement temperature reduction (Liu & Nannarelli, DATE'10)" in
  let info = Cmd.info "thermoplace" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [ flow_cmd; report_cmd; maps_cmd; sweep_cmd; export_cmd ]))
