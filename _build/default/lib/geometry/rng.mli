(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic step of the reproduction flows its randomness through an
    explicit [Rng.t] created from a seed, so that every experiment is exactly
    reproducible and independent streams can be split off without coupling. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances by one step. *)

val copy : t -> t
(** [copy t] duplicates the current state (both produce the same stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Box-Muller normal sample. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
