(** Axis-aligned rectangles in micrometers.

    The convention throughout the project is that a rectangle is the
    half-open box [\[lx, hx) x \[ly, hy)]; zero-area rectangles are legal
    (used for degenerate hotspots) but never produced by layout code. *)

type t = { lx : float; ly : float; hx : float; hy : float }

val make : lx:float -> ly:float -> hx:float -> hy:float -> t
(** [make] normalizes the corners so that [lx <= hx] and [ly <= hy]. *)

val of_corner : x:float -> y:float -> w:float -> h:float -> t
(** Rectangle from the lower-left corner and a (non-negative) size. *)

val width : t -> float
val height : t -> float
val area : t -> float
val center_x : t -> float
val center_y : t -> float

val contains : t -> x:float -> y:float -> bool
(** Point membership in the half-open box. *)

val intersects : t -> t -> bool
(** True when the open interiors overlap (touching edges do not count). *)

val intersection : t -> t -> t option
(** Overlap region, when the interiors overlap. *)

val overlap_area : t -> t -> float
(** Area of the overlap, 0 when disjoint. *)

val union : t -> t -> t
(** Smallest rectangle covering both. *)

val inflate : t -> float -> t
(** [inflate r m] grows every side outward by margin [m] ([m] >= 0). *)

val clip : t -> within:t -> t
(** Clamp [t] to lie inside [within]; may produce a zero-area rectangle. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
