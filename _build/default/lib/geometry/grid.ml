type t = {
  nx : int;
  ny : int;
  extent : Rect.t;
  data : float array;
}

let create ~nx ~ny ~extent =
  assert (nx > 0 && ny > 0);
  assert (Rect.area extent > 0.0);
  { nx; ny; extent; data = Array.make (nx * ny) 0.0 }

let nx t = t.nx
let ny t = t.ny
let extent t = t.extent

let tile_width t = Rect.width t.extent /. float_of_int t.nx
let tile_height t = Rect.height t.extent /. float_of_int t.ny
let tile_area t = tile_width t *. tile_height t

let index t ~ix ~iy =
  assert (ix >= 0 && ix < t.nx && iy >= 0 && iy < t.ny);
  (iy * t.nx) + ix

let get t ~ix ~iy = t.data.(index t ~ix ~iy)
let set t ~ix ~iy v = t.data.(index t ~ix ~iy) <- v
let add t ~ix ~iy v = t.data.(index t ~ix ~iy) <- t.data.(index t ~ix ~iy) +. v

let tile_rect t ~ix ~iy =
  let w = tile_width t and h = tile_height t in
  let e = t.extent in
  Rect.of_corner
    ~x:(e.Rect.lx +. (float_of_int ix *. w))
    ~y:(e.Rect.ly +. (float_of_int iy *. h))
    ~w ~h

let tile_of_point t ~x ~y =
  if Rect.contains t.extent ~x ~y then begin
    let ix = int_of_float ((x -. t.extent.Rect.lx) /. tile_width t) in
    let iy = int_of_float ((y -. t.extent.Rect.ly) /. tile_height t) in
    let ix = min ix (t.nx - 1) and iy = min iy (t.ny - 1) in
    Some (ix, iy)
  end else None

(* Only the tiles whose index range overlaps [r] are visited, so depositing a
   standard-cell footprint costs O(1) for cells smaller than a tile. *)
let deposit t r v =
  match Rect.intersection r t.extent with
  | None -> ()
  | Some r ->
    let covered = Rect.area r in
    if covered > 0.0 && v <> 0.0 then begin
      let w = tile_width t and h = tile_height t in
      let e = t.extent in
      let ix0 = max 0 (int_of_float ((r.Rect.lx -. e.Rect.lx) /. w)) in
      let iy0 = max 0 (int_of_float ((r.Rect.ly -. e.Rect.ly) /. h)) in
      let ix1 = min (t.nx - 1) (int_of_float ((r.Rect.hx -. e.Rect.lx) /. w)) in
      let iy1 = min (t.ny - 1) (int_of_float ((r.Rect.hy -. e.Rect.ly) /. h)) in
      for iy = iy0 to iy1 do
        for ix = ix0 to ix1 do
          let ov = Rect.overlap_area r (tile_rect t ~ix ~iy) in
          if ov > 0.0 then add t ~ix ~iy (v *. ov /. covered)
        done
      done
    end

let total t = Array.fold_left ( +. ) 0.0 t.data

let max_value t = Array.fold_left Float.max neg_infinity t.data
let min_value t = Array.fold_left Float.min infinity t.data

let argmax t =
  let best = ref 0 in
  for i = 1 to Array.length t.data - 1 do
    if t.data.(i) > t.data.(!best) then best := i
  done;
  (!best mod t.nx, !best / t.nx)

let mean t = total t /. float_of_int (t.nx * t.ny)

let map t ~f = { t with data = Array.map f t.data }

let map2 a b ~f =
  assert (a.nx = b.nx && a.ny = b.ny);
  { a with data = Array.init (Array.length a.data)
                    (fun i -> f a.data.(i) b.data.(i)) }

let iteri t ~f =
  for iy = 0 to t.ny - 1 do
    for ix = 0 to t.nx - 1 do
      f ~ix ~iy (get t ~ix ~iy)
    done
  done

let fold t ~init ~f = Array.fold_left f init t.data

let copy t = { t with data = Array.copy t.data }

let of_function ~nx ~ny ~extent ~f =
  let t = create ~nx ~ny ~extent in
  iteri t ~f:(fun ~ix ~iy _ -> set t ~ix ~iy (f ~ix ~iy));
  t

let pp_rows ppf t =
  for iy = t.ny - 1 downto 0 do
    for ix = 0 to t.nx - 1 do
      if ix > 0 then Format.pp_print_char ppf ' ';
      Format.fprintf ppf "%.6g" (get t ~ix ~iy)
    done;
    Format.pp_print_newline ppf ()
  done

let shade_ramp = " .:-=+*#%@"

let pp_shaded ppf t =
  let lo = min_value t and hi = max_value t in
  let span = if hi > lo then hi -. lo else 1.0 in
  let levels = String.length shade_ramp in
  for iy = t.ny - 1 downto 0 do
    for ix = 0 to t.nx - 1 do
      let v = (get t ~ix ~iy -. lo) /. span in
      let k = min (levels - 1) (int_of_float (v *. float_of_int levels)) in
      Format.pp_print_char ppf shade_ramp.[k]
    done;
    Format.pp_print_newline ppf ()
  done
