type t = { lx : float; ly : float; hx : float; hy : float }

let make ~lx ~ly ~hx ~hy =
  { lx = Float.min lx hx; ly = Float.min ly hy;
    hx = Float.max lx hx; hy = Float.max ly hy }

let of_corner ~x ~y ~w ~h =
  assert (w >= 0.0 && h >= 0.0);
  { lx = x; ly = y; hx = x +. w; hy = y +. h }

let width r = r.hx -. r.lx
let height r = r.hy -. r.ly
let area r = width r *. height r
let center_x r = 0.5 *. (r.lx +. r.hx)
let center_y r = 0.5 *. (r.ly +. r.hy)

let contains r ~x ~y = x >= r.lx && x < r.hx && y >= r.ly && y < r.hy

let intersects a b =
  a.lx < b.hx && b.lx < a.hx && a.ly < b.hy && b.ly < a.hy

let intersection a b =
  if intersects a b then
    Some { lx = Float.max a.lx b.lx; ly = Float.max a.ly b.ly;
           hx = Float.min a.hx b.hx; hy = Float.min a.hy b.hy }
  else None

let overlap_area a b =
  match intersection a b with
  | None -> 0.0
  | Some r -> area r

let union a b =
  { lx = Float.min a.lx b.lx; ly = Float.min a.ly b.ly;
    hx = Float.max a.hx b.hx; hy = Float.max a.hy b.hy }

let inflate r m =
  assert (m >= 0.0);
  { lx = r.lx -. m; ly = r.ly -. m; hx = r.hx +. m; hy = r.hy +. m }

let clip r ~within:w =
  let lx = Float.max r.lx w.lx and ly = Float.max r.ly w.ly in
  let hx = Float.min r.hx w.hx and hy = Float.min r.hy w.hy in
  { lx; ly; hx = Float.max lx hx; hy = Float.max ly hy }

let pp ppf r =
  Format.fprintf ppf "[%.3f,%.3f .. %.3f,%.3f]" r.lx r.ly r.hx r.hy

let to_string r = Format.asprintf "%a" pp r
