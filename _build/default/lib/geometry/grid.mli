(** Dense 2-D scalar field over a regular tiling of a physical rectangle.

    Used for power-density maps, thermal maps and congestion maps. The grid
    tiles a rectangle [extent] into [nx * ny] equal tiles; tile (0,0) is the
    lower-left one. *)

type t

val create : nx:int -> ny:int -> extent:Rect.t -> t
(** Fresh all-zero field. [nx] and [ny] must be positive. *)

val nx : t -> int
val ny : t -> int
val extent : t -> Rect.t

val tile_width : t -> float
val tile_height : t -> float
val tile_area : t -> float

val get : t -> ix:int -> iy:int -> float
val set : t -> ix:int -> iy:int -> float -> unit
val add : t -> ix:int -> iy:int -> float -> unit

val tile_rect : t -> ix:int -> iy:int -> Rect.t
(** Physical footprint of a tile. *)

val tile_of_point : t -> x:float -> y:float -> (int * int) option
(** Tile containing a point, when the point lies within the extent. *)

val deposit : t -> Rect.t -> float -> unit
(** [deposit t r v] spreads the quantity [v] over the tiles overlapping [r],
    proportionally to overlap area (the paper's standard-cell to thermal-cell
    binning). Quantities falling outside the extent are dropped. *)

val total : t -> float
val max_value : t -> float
val min_value : t -> float
val argmax : t -> int * int
val mean : t -> float

val map : t -> f:(float -> float) -> t
val map2 : t -> t -> f:(float -> float -> float) -> t
(** Pointwise combination; both grids must have identical dimensions. *)

val iteri : t -> f:(ix:int -> iy:int -> float -> unit) -> unit
val fold : t -> init:'a -> f:('a -> float -> 'a) -> 'a
val copy : t -> t

val of_function : nx:int -> ny:int -> extent:Rect.t ->
  f:(ix:int -> iy:int -> float) -> t

val pp_rows : Format.formatter -> t -> unit
(** Gnuplot-style matrix dump: [ny] lines of [nx] values, top row first. *)

val pp_shaded : Format.formatter -> t -> unit
(** Terminal heat-map: one character per tile (top row first), density ramp
    from ' ' (minimum) to '@' (maximum). Handy for eyeballing power and
    thermal profiles in examples and the CLI. *)
