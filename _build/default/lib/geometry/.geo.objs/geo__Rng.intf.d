lib/geometry/rng.mli:
