lib/geometry/grid.mli: Format Rect
