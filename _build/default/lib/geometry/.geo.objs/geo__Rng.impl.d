lib/geometry/rng.ml: Array Float Int64
