lib/geometry/stats.ml: Array Float
