lib/geometry/stats.mli:
