lib/geometry/grid.ml: Array Float Format Rect String
