type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's native int non-negatively *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod bound

(* 53 random mantissa bits scaled into [0,1). *)
let unit_float t =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  v *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = unit_float t < p

let gaussian t ~mean ~sigma =
  let u1 = max 1e-300 (unit_float t) in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
