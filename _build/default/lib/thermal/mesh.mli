(** Assembly and solution of the 3-D thermal RC network.

    The die footprint is tiled [nx] x [ny] per layer (the paper's grid is
    40 x 40 x 9 = 14400 cells); each thermal cell couples to its six
    neighbours through series half-cell resistances, boundary faces couple
    to the ambient reference through the stack's effective conductances,
    and the power map injects current into the active layer. Temperatures
    are kelvins of rise over ambient. *)

type config = {
  nx : int;
  ny : int;
  stack : Stack.t;
}

val default_config : config
(** 40 x 40 over {!Stack.default_9layer}. *)

type problem

val build : config -> power:Geo.Grid.t -> problem
(** [power] is a W-per-tile grid whose extent is the die footprint and
    whose dimensions must equal [nx] x [ny]. *)

val matrix : problem -> Sparse.t
val rhs : problem -> float array

type solution = {
  config : config;
  extent : Geo.Rect.t;
  temp : float array;       (** node temperature rises, x-major per layer *)
  cg_iterations : int;
  cg_residual : float;
}

val solve : ?tol:float -> problem -> solution
(** Raises [Failure] when CG does not converge (never observed on a valid
    stack; guards against assembly bugs). *)

val node_index : config -> ix:int -> iy:int -> iz:int -> int

val layer_grid : solution -> iz:int -> Geo.Grid.t
(** Temperature-rise map of one layer over the die extent. *)

val active_layer_grid : solution -> Geo.Grid.t
(** The thermal map of the paper's figures: the power-injection layer. *)
