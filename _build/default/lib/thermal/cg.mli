(** Jacobi-preconditioned conjugate gradients for SPD systems.

    At steady state the paper's SPICE netlist of resistors, current sources
    and voltage sources reduces to the linear system [G T = P] with an SPD
    conductance matrix; CG computes the identical operating point. *)

type outcome = {
  x : float array;
  iterations : int;
  residual : float;  (** final ||b - A x|| / ||b|| *)
  converged : bool;
}

val solve : Sparse.t -> b:float array -> ?tol:float -> ?max_iter:int ->
  ?x0:float array -> unit -> outcome
(** Defaults: [tol] 1e-9 (relative), [max_iter] 4 * dim, [x0] zero.
    Raises [Invalid_argument] on dimension mismatch or a non-positive
    diagonal entry (the preconditioner needs positivity, and a thermal
    conductance matrix always satisfies it). *)
