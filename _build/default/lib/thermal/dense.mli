(** Dense Cholesky factorization — an independent direct solver.

    CG is the production path; this O(n³) solver exists to cross-validate
    it on small meshes (tests) and to solve the shifted systems of the
    transient analysis when they are small. *)

type t
(** A factored SPD matrix. *)

val of_sparse : Sparse.t -> t
(** Densify and factor. Raises [Failure] if the matrix is not positive
    definite. Meant for dimensions up to a few thousand. *)

val solve : t -> float array -> float array
(** [solve chol b] returns [x] with [A x = b]. *)

val dim : t -> int
