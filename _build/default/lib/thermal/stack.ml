type layer = {
  layer_name : string;
  thickness_um : float;
  conductivity_w_mk : float;
}

type t = {
  layers : layer array;
  power_layer : int;
  h_top_w_m2k : float;
  h_bottom_w_m2k : float;
  h_side_w_m2k : float;
}

let layer layer_name thickness_um conductivity_w_mk =
  { layer_name; thickness_um; conductivity_w_mk }

(* The effective per-area sink conductance of a small die is
   h = 1 / (R_ja * A_die); for a ~0.04 mm^2 die and a 25-60 K/W package
   this lands in the 1e5..1e6 W/(m^2 K) range — far above the "heatsink
   textbook" numbers that apply to cm-scale dies. The thinned bulk keeps
   the lateral spreading length below the die width so that hotspots stay
   localized, as in the paper's Fig. 5. *)
let default_9layer = {
  layers =
    [| layer "underfill" 10.0 0.8;
       layer "metal/ILD lower" 6.0 2.2;
       layer "metal/ILD upper" 6.0 2.2;
       layer "active silicon" 5.0 120.0;
       layer "bulk silicon 1" 4.0 150.0;
       layer "bulk silicon 2" 4.0 150.0;
       layer "TIM lower" 4.0 2.0;
       layer "TIM upper" 4.0 2.0;
       layer "package lid" 10.0 30.0 |];
  power_layer = 3;
  h_top_w_m2k = 5.0e5;
  h_bottom_w_m2k = 5.0e2;
  h_side_w_m2k = 0.0;
}

let with_sink t ~h_top_w_m2k = { t with h_top_w_m2k }

let num_layers t = Array.length t.layers

let total_thickness_um t =
  Array.fold_left (fun acc l -> acc +. l.thickness_um) 0.0 t.layers

let validate t =
  if Array.length t.layers = 0 then Error "empty layer stack"
  else if t.power_layer < 0 || t.power_layer >= Array.length t.layers then
    Error "power layer index out of range"
  else if Array.exists
      (fun l -> l.thickness_um <= 0.0 || l.conductivity_w_mk <= 0.0)
      t.layers
  then Error "non-positive layer thickness or conductivity"
  else if t.h_top_w_m2k <= 0.0 && t.h_bottom_w_m2k <= 0.0
          && t.h_side_w_m2k <= 0.0
  then Error "no heat removal path (all boundary conductances zero)"
  else Ok ()
