lib/thermal/stack.mli:
