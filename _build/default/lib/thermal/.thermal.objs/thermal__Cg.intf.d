lib/thermal/cg.mli: Sparse
