lib/thermal/metrics.mli: Format Geo
