lib/thermal/stack.ml: Array
