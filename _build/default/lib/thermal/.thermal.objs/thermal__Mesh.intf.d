lib/thermal/mesh.mli: Geo Sparse Stack
