lib/thermal/transient.ml: Array Cg Float Geo Mesh Sparse Stack
