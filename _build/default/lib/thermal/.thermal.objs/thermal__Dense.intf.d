lib/thermal/dense.mli: Sparse
