lib/thermal/dense.ml: Array Sparse
