lib/thermal/cg.ml: Array Sparse
