lib/thermal/sparse.mli:
