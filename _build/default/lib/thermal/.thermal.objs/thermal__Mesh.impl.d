lib/thermal/mesh.ml: Array Cg Geo Printf Sparse Stack
