lib/thermal/metrics.ml: Format Geo
