lib/thermal/transient.mli: Geo Mesh
