lib/thermal/spice.mli: Mesh
