lib/thermal/spice.ml: Array Buffer List Mesh Printf Sparse String
