lib/thermal/sparse.ml: Array Float
