(** The vertical material stack of the thermal model.

    Following the paper, the z direction is discretized into 9 layers with
    per-layer thermal conductivities (ballpark values after Sato et al.,
    ASP-DAC'05); heat leaves through effective boundary conductances that
    stand in for the package and heat sink. The defaults are calibrated so
    that a ~12k-cell 65 nm die shows peak rises of a few to ~25 kelvin with
    hotspot features of a few tens of µm — the regime of the paper's
    experiments (see DESIGN.md). *)

type layer = {
  layer_name : string;
  thickness_um : float;
  conductivity_w_mk : float;  (** W/(m·K) *)
}

type t = {
  layers : layer array;       (** bottom (board side) to top (sink side) *)
  power_layer : int;          (** index of the active-silicon layer *)
  h_top_w_m2k : float;        (** effective sink conductance per die area *)
  h_bottom_w_m2k : float;     (** board-side conductance per area *)
  h_side_w_m2k : float;       (** per side-wall area; 0 = adiabatic *)
}

val default_9layer : t
(** underfill, two metal/ILD layers, active silicon, three bulk-silicon
    layers, TIM, heat spreader. *)

val with_sink : t -> h_top_w_m2k:float -> t
(** Package variant: same stack, different heat-removal capability — the
    paper notes the profile depends strongly on this. *)

val num_layers : t -> int
val total_thickness_um : t -> float
val validate : t -> (unit, string) result
