(** SPICE netlist export of the steady-state thermal network.

    The paper's thermal model "builds the RC thermal network and solves
    using SPICE"; at steady state the network is resistive, so this module
    emits exactly that netlist — resistors between thermal nodes, grounded
    boundary resistors (the ambient voltage source collapses to ground when
    temperatures are expressed as rises), and one current source per
    power-carrying node. Feeding the file to any SPICE gives, as node
    voltages, the same temperatures our CG solver computes — a one-command
    external validation path. *)

val to_string : ?title:string -> Mesh.problem -> string
(** Node [i] becomes SPICE node [n<i>]; units: volts = kelvin rise,
    amperes = watts, ohms = K/W. *)

val write_file : string -> ?title:string -> Mesh.problem -> unit

val count_resistors : Mesh.problem -> int
(** Number of R elements the export contains (coupling + boundary). *)
