lib/route/congestion.ml: Celllib Float Geo Netlist Place
