lib/route/congestion.mli: Geo Place
