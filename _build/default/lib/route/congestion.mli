(** Probabilistic routing-congestion estimation.

    Each net's expected wire (its HPWL) is smeared uniformly over the tiles
    of its bounding box; tile demand against a per-tile track capacity gives
    a congestion map. This is enough to measure the paper's stated ERI
    by-product: "it increases the distance between rows of cells, thus
    reducing routing congestion in the hotspot regions". *)

type report = {
  demand : Geo.Grid.t;         (** wirelength demand per tile, µm *)
  capacity_um : float;         (** routing capacity per tile, µm *)
  max_utilization : float;     (** peak demand / capacity *)
  overflow_um : float;         (** total demand above capacity *)
  overflowed_tiles : int;
}

val estimate : Place.Placement.t -> ?nx:int -> ?ny:int ->
  ?tracks_per_layer:float -> ?layers:int -> unit -> report
(** Defaults: 40 x 40 tiles, 2 horizontal + 2 vertical routing layers with
    a wiring pitch of twice the site width. *)

val hotspot_demand : report -> Geo.Rect.t -> float
(** Total demand inside a region (e.g. a hotspot rect). *)
