type report = {
  demand : Geo.Grid.t;
  capacity_um : float;
  max_utilization : float;
  overflow_um : float;
  overflowed_tiles : int;
}

let estimate pl ?(nx = 40) ?(ny = 40) ?(tracks_per_layer = 0.5) ?(layers = 4)
    () =
  let nl = pl.Place.Placement.nl in
  let fp = pl.Place.Placement.fp in
  let core = fp.Place.Floorplan.core in
  let demand = Geo.Grid.create ~nx ~ny ~extent:core in
  for nid = 0 to Netlist.Types.num_nets nl - 1 do
    match Place.Placement.net_bbox pl nid with
    | None -> ()
    | Some bbox ->
      let wl = Geo.Rect.width bbox +. Geo.Rect.height bbox in
      if wl > 0.0 then begin
        (* nets with collinear pins have a zero-area bbox; give it a hair
           of thickness so the deposit lands on the tiles along the line *)
        let r =
          if Geo.Rect.area bbox > 0.0 then bbox
          else
            Geo.Rect.inflate bbox
              (0.25
               *. Float.min (Geo.Grid.tile_width demand)
                    (Geo.Grid.tile_height demand))
        in
        Geo.Grid.deposit demand r wl
      end
  done;
  (* Capacity: tracks at a pitch of 2 sites on [layers] routing layers over
     the tile span. *)
  let tech = fp.Place.Floorplan.tech in
  let pitch = 2.0 *. tech.Celllib.Tech.site_width_um in
  let tw = Geo.Grid.tile_width demand and th = Geo.Grid.tile_height demand in
  let tracks = tracks_per_layer *. float_of_int layers in
  let capacity = tracks *. ((tw /. pitch *. th) +. (th /. pitch *. tw)) /. 2.0 in
  let max_util = ref 0.0 in
  let overflow = ref 0.0 in
  let over_tiles = ref 0 in
  Geo.Grid.iteri demand ~f:(fun ~ix:_ ~iy:_ d ->
      let u = d /. capacity in
      if u > !max_util then max_util := u;
      if d > capacity then begin
        overflow := !overflow +. (d -. capacity);
        incr over_tiles
      end);
  { demand; capacity_um = capacity; max_utilization = !max_util;
    overflow_um = !overflow; overflowed_tiles = !over_tiles }

let hotspot_demand r rect =
  let acc = ref 0.0 in
  Geo.Grid.iteri r.demand ~f:(fun ~ix ~iy d ->
      let tile = Geo.Grid.tile_rect r.demand ~ix ~iy in
      let ov = Geo.Rect.overlap_area tile rect in
      if ov > 0.0 then acc := !acc +. (d *. ov /. Geo.Rect.area tile));
  !acc
