(** VCD (value-change dump) export of simulation traces.

    Standard waveform interchange: the dump can be opened in GTKWave or any
    other VCD viewer. One VCD timestep per clock cycle (zero-delay
    semantics; intra-cycle glitches are not represented). *)

val record :
  Sim.t ->
  drive:(int -> unit) ->
  cycles:int ->
  ?nets:Netlist.Types.net_id list ->
  unit ->
  string
(** [record sim ~drive ~cycles ()] runs [cycles] cycles, calling [drive k]
    before cycle [k] (0-based) so the caller can stage inputs, and returns
    the VCD text. By default every net is dumped; restrict with [nets]. *)

val record_workload :
  Sim.t -> Workload.t -> Geo.Rng.t -> cycles:int ->
  ?nets:Netlist.Types.net_id list -> unit -> string
(** Convenience wrapper driving the simulator from a workload. *)

val write_file :
  string -> Sim.t -> Workload.t -> Geo.Rng.t -> cycles:int ->
  ?nets:Netlist.Types.net_id list -> unit -> unit
