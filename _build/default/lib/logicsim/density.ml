module T = Netlist.Types
module K = Celllib.Kind

type estimate = {
  prob : float array;
  density : float array;
}

let clamp01 x = Float.max 0.0 (Float.min 1.0 x)

(* Two-input composition rules; n-input gates are folded pairwise which is
   exact for trees under the independence assumption. *)
let and_pd (pa, da) (pb, db) =
  (pa *. pb, clamp01 ((pb *. da) +. (pa *. db)))

let or_pd (pa, da) (pb, db) =
  (pa +. pb -. (pa *. pb),
   clamp01 (((1.0 -. pb) *. da) +. ((1.0 -. pa) *. db)))

let not_pd (p, d) = (1.0 -. p, d)

let xor_pd (pa, da) (pb, db) =
  (pa +. pb -. (2.0 *. pa *. pb), clamp01 (da +. db))

let gate_pd kind ins =
  match kind, ins with
  | K.Inv, [| a |] -> not_pd a
  | K.Buf, [| a |] -> a
  | K.Nand2, [| a; b |] -> not_pd (and_pd a b)
  | K.Nand3, [| a; b; c |] -> not_pd (and_pd (and_pd a b) c)
  | K.Nor2, [| a; b |] -> not_pd (or_pd a b)
  | K.Nor3, [| a; b; c |] -> not_pd (or_pd (or_pd a b) c)
  | K.And2, [| a; b |] -> and_pd a b
  | K.And3, [| a; b; c |] -> and_pd (and_pd a b) c
  | K.Or2, [| a; b |] -> or_pd a b
  | K.Or3, [| a; b; c |] -> or_pd (or_pd a b) c
  | K.Xor2, [| a; b |] -> xor_pd a b
  | K.Xnor2, [| a; b |] -> not_pd (xor_pd a b)
  | K.Aoi21, [| a; b; c |] -> not_pd (or_pd (and_pd a b) c)
  | K.Oai21, [| a; b; c |] -> not_pd (and_pd (or_pd a b) c)
  | K.Mux2, [| (pa, da); (pb, db); (ps, ds) |] ->
    (* y = a*(1-s) + b*s; dy/da = not s, dy/db = s, dy/ds = a xor b *)
    let p = (pa *. (1.0 -. ps)) +. (pb *. ps) in
    let pxor = pa +. pb -. (2.0 *. pa *. pb) in
    (p, clamp01 (((1.0 -. ps) *. da) +. (ps *. db) +. (pxor *. ds)))
  | (K.Dff | K.Filler _), _ ->
    invalid_arg "Density.gate_pd: non-combinational kind"
  | _ -> invalid_arg "Density.gate_pd: arity mismatch"

let propagate nl ~input_density ?(iterations = 8) () =
  let n = T.num_nets nl in
  let prob = Array.make n 0.5 in
  let density = Array.make n 0.0 in
  T.iter_nets nl ~f:(fun nid net ->
      match net.T.driver with
      | T.Constant v ->
        prob.(nid) <- (if v then 1.0 else 0.0);
        density.(nid) <- 0.0
      | T.Primary_input k ->
        prob.(nid) <- 0.5;
        density.(nid) <- clamp01 (input_density k)
      | T.Cell_output _ -> ());
  (* Evaluate combinational cells in netlist (construction) order, which the
     builder emits topologically within a pass; sequential feedback is
     resolved by repeating the sweep. *)
  for _ = 1 to iterations do
    (* flip-flop outputs inherit their D statistics (cycle-based: Q toggles
       exactly when consecutive D samples differ) *)
    T.iter_cells nl ~f:(fun _ c ->
        if Celllib.Kind.is_sequential c.T.kind then begin
          prob.(c.T.output) <- prob.(c.T.inputs.(0));
          density.(c.T.output) <- density.(c.T.inputs.(0))
        end);
    T.iter_cells nl ~f:(fun _ c ->
        if not (Celllib.Kind.is_sequential c.T.kind) then begin
          let ins =
            Array.map (fun nid -> (prob.(nid), density.(nid))) c.T.inputs
          in
          let p, d = gate_pd c.T.kind ins in
          prob.(c.T.output) <- p;
          density.(c.T.output) <- d
        end)
  done;
  { prob; density }

let of_workload nl workload =
  let tags = nl.T.pi_tags in
  propagate nl
    ~input_density:(fun k -> Workload.activity workload ~tag:tags.(k)) ()
