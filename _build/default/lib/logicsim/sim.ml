module T = Netlist.Types

type t = {
  nl : T.t;
  order : T.cell_id array;      (* combinational cells, topological *)
  values : bool array;          (* per net *)
  staged_inputs : bool array;   (* per primary input *)
  dff_state : bool array;       (* per cell; meaningful for DFFs only *)
  toggle_count : int array;     (* per net *)
  ones_count : int array;       (* per net *)
  mutable n_cycles : int;
}

(* Topological order of combinational cells (flip-flop outputs and primary
   inputs are sources). The netlist builder already guarantees acyclicity. *)
let topo_order (nl : T.t) =
  let n = T.num_cells nl in
  let comb_driver = Array.make (T.num_nets nl) (-1) in
  T.iter_cells nl ~f:(fun cid c ->
      if not (Celllib.Kind.is_sequential c.T.kind) then
        comb_driver.(c.T.output) <- cid);
  let indeg = Array.make n 0 in
  let succs = Array.make n [] in
  T.iter_cells nl ~f:(fun cid c ->
      Array.iter
        (fun nid ->
           let src = comb_driver.(nid) in
           if src >= 0 then begin
             succs.(src) <- cid :: succs.(src);
             indeg.(cid) <- indeg.(cid) + 1
           end)
        c.T.inputs);
  let queue = Queue.create () in
  Array.iteri (fun cid d -> if d = 0 then Queue.add cid queue) indeg;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    if not (Celllib.Kind.is_sequential (T.cell nl cid).T.kind) then
      order := cid :: !order;
    List.iter
      (fun s ->
         indeg.(s) <- indeg.(s) - 1;
         if indeg.(s) = 0 then Queue.add s queue)
      succs.(cid)
  done;
  Array.of_list (List.rev !order)

let create nl =
  let values = Array.make (T.num_nets nl) false in
  T.iter_nets nl ~f:(fun nid n ->
      match n.T.driver with
      | T.Constant v -> values.(nid) <- v
      | T.Primary_input _ | T.Cell_output _ -> ());
  let order = topo_order nl in
  (* settle combinational logic so cycle 1 does not count pseudo-reset
     transitions *)
  Array.iter
    (fun cid ->
       let c = T.cell nl cid in
       values.(c.T.output)
       <- Celllib.Kind.eval c.T.kind
            (Array.map (fun nid -> values.(nid)) c.T.inputs))
    order;
  { nl;
    order;
    values;
    staged_inputs = Array.make (T.num_primary_inputs nl) false;
    dff_state = Array.make (T.num_cells nl) false;
    toggle_count = Array.make (T.num_nets nl) 0;
    ones_count = Array.make (T.num_nets nl) 0;
    n_cycles = 0 }

let netlist t = t.nl

let set_input t k v = t.staged_inputs.(k) <- v
let input_value t k = t.staged_inputs.(k)

let update t nid v =
  if t.values.(nid) <> v then begin
    t.values.(nid) <- v;
    t.toggle_count.(nid) <- t.toggle_count.(nid) + 1
  end

let step t =
  let nl = t.nl in
  (* 1. flip-flop Q nets present the state captured last cycle *)
  T.iter_cells nl ~f:(fun cid c ->
      if Celllib.Kind.is_sequential c.T.kind then
        update t c.T.output t.dff_state.(cid));
  (* 2. primary inputs take their staged values *)
  Array.iteri
    (fun k nid -> update t nid t.staged_inputs.(k))
    nl.T.primary_inputs;
  (* 3. combinational propagation in topological order *)
  Array.iter
    (fun cid ->
       let c = T.cell nl cid in
       let inputs = Array.map (fun nid -> t.values.(nid)) c.T.inputs in
       update t c.T.output (Celllib.Kind.eval c.T.kind inputs))
    t.order;
  (* 4. flip-flops capture D *)
  T.iter_cells nl ~f:(fun cid c ->
      if Celllib.Kind.is_sequential c.T.kind then
        t.dff_state.(cid) <- t.values.(c.T.inputs.(0)));
  (* 5. sample static probabilities *)
  Array.iteri
    (fun nid v -> if v then t.ones_count.(nid) <- t.ones_count.(nid) + 1)
    t.values;
  t.n_cycles <- t.n_cycles + 1

let cycles t = t.n_cycles
let value t nid = t.values.(nid)
let toggles t nid = t.toggle_count.(nid)
let ones t nid = t.ones_count.(nid)

let reset_counters t =
  Array.fill t.toggle_count 0 (Array.length t.toggle_count) 0;
  Array.fill t.ones_count 0 (Array.length t.ones_count) 0;
  t.n_cycles <- 0
