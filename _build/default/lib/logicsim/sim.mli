(** Cycle-based two-valued logic simulator.

    The benchmark is fully synchronous (all sequential cells are posedge
    flip-flops on one implicit clock), so one simulation step is one clock
    cycle: flip-flop outputs present their captured state, primary inputs
    take their new values, the combinational cloud is evaluated in
    topological order, and flip-flops capture their D pins at the end of the
    cycle. Per-net toggle counters provide the switching activity the power
    model consumes — the role Synopsys VCS plays in the paper's flow. *)

type t

val create : Netlist.Types.t -> t
(** Fresh simulator; all nets and flip-flops start at 0, constants at their
    value. *)

val netlist : t -> Netlist.Types.t

val set_input : t -> int -> bool -> unit
(** [set_input t k v] stages value [v] on primary input [k] for the next
    {!step}. *)

val input_value : t -> int -> bool
(** Currently staged value of a primary input. *)

val step : t -> unit
(** Advance one clock cycle. *)

val cycles : t -> int
(** Number of executed cycles. *)

val value : t -> Netlist.Types.net_id -> bool
(** Current value of a net (after the last [step]). *)

val toggles : t -> Netlist.Types.net_id -> int
(** Total toggle count of a net since the last {!reset_counters}. *)

val ones : t -> Netlist.Types.net_id -> int
(** Number of cycle-end samples at logic 1 since the last counter reset. *)

val reset_counters : t -> unit
(** Zero toggle/ones counters and the cycle counter (state is kept). *)
