type t = {
  default : float;
  hot : (int * float) list;
}

let check p =
  if p < 0.0 || p > 1.0 then invalid_arg "Workload: probability out of range"

let uniform p =
  check p;
  { default = p; hot = [] }

let make ~default ~hot =
  check default;
  List.iter (fun (_, p) -> check p) hot;
  { default; hot }

let scattered_hotspots ~hot_units =
  make ~default:0.02 ~hot:(List.map (fun u -> (u, 0.5)) hot_units)

let concentrated_hotspot ~hot_unit =
  make ~default:0.02 ~hot:[ (hot_unit, 0.5) ]

let activity t ~tag =
  match List.assoc_opt tag t.hot with
  | Some p -> p
  | None -> t.default

let drive t sim rng =
  let nl = Sim.netlist sim in
  let tags = nl.Netlist.Types.pi_tags in
  Array.iteri
    (fun k _nid ->
       let p = activity t ~tag:tags.(k) in
       if Geo.Rng.bernoulli rng p then
         Sim.set_input sim k (not (Sim.input_value sim k)))
    nl.Netlist.Types.primary_inputs

let run t sim rng ~cycles =
  for _ = 1 to cycles do
    drive t sim rng;
    Sim.step sim
  done
