type report = {
  measured_cycles : int;
  toggle_rate : float array;
  static_prob : float array;
}

let measure sim workload rng ~warmup ~cycles =
  if cycles <= 0 then invalid_arg "Activity.measure: cycles <= 0";
  Workload.run workload sim rng ~cycles:warmup;
  Sim.reset_counters sim;
  Workload.run workload sim rng ~cycles;
  let nl = Sim.netlist sim in
  let n = Netlist.Types.num_nets nl in
  let fcycles = float_of_int cycles in
  { measured_cycles = cycles;
    toggle_rate =
      Array.init n (fun nid -> float_of_int (Sim.toggles sim nid) /. fcycles);
    static_prob =
      Array.init n (fun nid -> float_of_int (Sim.ones sim nid) /. fcycles) }

let mean_toggle_rate r = Geo.Stats.mean r.toggle_rate

let of_constant_rate nl ~rate =
  let n = Netlist.Types.num_nets nl in
  { measured_cycles = 0;
    toggle_rate = Array.make n rate;
    static_prob = Array.make n 0.5 }
