lib/logicsim/activity.mli: Geo Netlist Sim Workload
