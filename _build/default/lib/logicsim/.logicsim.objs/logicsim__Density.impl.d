lib/logicsim/density.ml: Array Celllib Float Netlist Workload
