lib/logicsim/workload.ml: Array Geo List Netlist Sim
