lib/logicsim/vcd.mli: Geo Netlist Sim Workload
