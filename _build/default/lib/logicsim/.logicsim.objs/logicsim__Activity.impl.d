lib/logicsim/activity.ml: Array Geo Netlist Sim Workload
