lib/logicsim/event_sim.ml: Activity Array Celllib Geo List Netlist Workload
