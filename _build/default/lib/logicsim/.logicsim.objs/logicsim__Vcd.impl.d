lib/logicsim/vcd.ml: Array Buffer Char List Netlist Printf Sim String Workload
