lib/logicsim/sim.mli: Netlist
