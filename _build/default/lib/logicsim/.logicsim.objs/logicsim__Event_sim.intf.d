lib/logicsim/event_sim.mli: Activity Geo Netlist Workload
