lib/logicsim/workload.mli: Geo Sim
