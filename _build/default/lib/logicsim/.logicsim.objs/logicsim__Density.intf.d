lib/logicsim/density.mli: Netlist Workload
