lib/logicsim/sim.ml: Array Celllib List Netlist Queue
