(** Workload models: how busy each benchmark unit is.

    The paper controls "the size and position of hotspots using different
    workloads"; here a workload maps each unit tag to the per-cycle toggle
    probability of that unit's primary inputs. *)

type t

val uniform : float -> t
(** Every unit's inputs toggle with the same probability. *)

val make : default:float -> hot:(int * float) list -> t
(** [make ~default ~hot] toggles unit [tag] inputs with the probability
    bound in [hot], every other unit with [default]. Probabilities must lie
    in [\[0,1\]]. *)

val scattered_hotspots : hot_units:int list -> t
(** The paper's test set 1 shape: the listed units run at high activity
    (0.5 toggle probability), the rest nearly idle (0.02). *)

val concentrated_hotspot : hot_unit:int -> t
(** The paper's test set 2 shape: one unit fully active, the rest idle. *)

val activity : t -> tag:int -> float
(** Toggle probability for a unit tag (untagged inputs use the default). *)

val drive : t -> Sim.t -> Geo.Rng.t -> unit
(** Stage one cycle of stimuli: every primary input flips with its unit's
    probability. *)

val run : t -> Sim.t -> Geo.Rng.t -> cycles:int -> unit
(** [drive] + [Sim.step], [cycles] times. *)
