(** Switching-activity measurement: per-net toggle rates and static
    probabilities extracted from simulation, the input of power analysis. *)

type report = {
  measured_cycles : int;
  toggle_rate : float array;  (** per net: toggles per clock cycle *)
  static_prob : float array;  (** per net: fraction of cycles at logic 1 *)
}

val measure : Sim.t -> Workload.t -> Geo.Rng.t -> warmup:int -> cycles:int ->
  report
(** Run [warmup] unrecorded cycles (to flush X-ish initial state), reset the
    counters, then record [cycles] cycles. [cycles] must be positive. *)

val mean_toggle_rate : report -> float

val of_constant_rate : Netlist.Types.t -> rate:float -> report
(** Synthetic report giving every net the same toggle rate — handy for
    tests and for decoupling power experiments from simulation noise. *)
