module T = Netlist.Types

(* VCD identifier codes: printable ASCII 33..126, multi-character base-94. *)
let code_of_index i =
  let rec go i acc =
    let c = Char.chr (33 + (i mod 94)) in
    let acc = String.make 1 c ^ acc in
    if i < 94 then acc else go ((i / 94) - 1) acc
  in
  go i ""

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
       | _ -> '_')
    name

let record sim ~drive ~cycles ?nets () =
  if cycles <= 0 then invalid_arg "Vcd.record: cycles <= 0";
  let nl = Sim.netlist sim in
  let nets =
    match nets with
    | Some l -> l
    | None -> List.init (T.num_nets nl) (fun i -> i)
  in
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "$date thermoplace simulation $end\n";
  pr "$version thermoplace 1.0 $end\n";
  pr "$timescale 1 ns $end\n";
  pr "$scope module design $end\n";
  List.iteri
    (fun k nid ->
       pr "$var wire 1 %s %s $end\n" (code_of_index k)
         (sanitize (T.net nl nid).T.net_name))
    nets;
  pr "$upscope $end\n$enddefinitions $end\n";
  (* initial values *)
  pr "$dumpvars\n";
  List.iteri
    (fun k nid ->
       pr "%d%s\n" (if Sim.value sim nid then 1 else 0) (code_of_index k))
    nets;
  pr "$end\n";
  let last = Array.of_list (List.map (Sim.value sim) nets) in
  for cycle = 0 to cycles - 1 do
    drive cycle;
    Sim.step sim;
    let header_done = ref false in
    List.iteri
      (fun k nid ->
         let v = Sim.value sim nid in
         if v <> last.(k) then begin
           if not !header_done then begin
             pr "#%d\n" (cycle + 1);
             header_done := true
           end;
           last.(k) <- v;
           pr "%d%s\n" (if v then 1 else 0) (code_of_index k)
         end)
      nets
  done;
  Buffer.contents buf

let record_workload sim workload rng ~cycles ?nets () =
  record sim ~drive:(fun _ -> Workload.drive workload sim rng) ~cycles ?nets
    ()

let write_file path sim workload rng ~cycles ?nets () =
  let oc = open_out path in
  (try output_string oc (record_workload sim workload rng ~cycles ?nets ())
   with e -> close_out oc; raise e);
  close_out oc
