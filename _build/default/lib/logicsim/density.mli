(** Probabilistic switching-activity estimation (transition densities).

    An analytical alternative to vector simulation: static signal
    probabilities and transition densities are propagated through the gates
    using the Boolean-difference rule (Najm's transition-density model,
    adapted to cycle-based semantics where a net toggles at most once per
    cycle). Spatial correlation from reconvergent fan-out is ignored, so the
    result is an approximation — the library uses it as an independent
    cross-check on the simulator and for quick what-if power estimates. *)

type estimate = {
  prob : float array;     (** per net: static probability of logic 1 *)
  density : float array;  (** per net: expected toggles per cycle, in [0,1] *)
}

val propagate : Netlist.Types.t -> input_density:(int -> float) ->
  ?iterations:int -> unit -> estimate
(** [propagate nl ~input_density ()] assigns each primary input [k] the
    toggle probability [input_density k] (static probability 0.5) and
    propagates through the logic. Sequential loops are resolved by
    [iterations] rounds of re-propagation (default 8). *)

val of_workload : Netlist.Types.t -> Workload.t -> estimate
(** Convenience wrapper deriving per-input densities from a workload. *)
