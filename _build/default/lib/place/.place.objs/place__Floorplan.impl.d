lib/place/floorplan.ml: Celllib Float Format Geo
