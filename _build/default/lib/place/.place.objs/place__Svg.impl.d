lib/place/svg.ml: Array Buffer Celllib Filler Floorplan Geo List Netlist Placement Printf
