lib/place/legalize.ml: Array Celllib Netlist Placement Regions
