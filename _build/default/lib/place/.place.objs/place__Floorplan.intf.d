lib/place/floorplan.mli: Celllib Format Geo
