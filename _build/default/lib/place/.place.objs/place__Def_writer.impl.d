lib/place/def_writer.ml: Array Buffer Celllib Filler Float Floorplan Geo List Netlist Placement Printf
