lib/place/filler.ml: Array Celllib Floorplan List Netlist Placement Printf
