lib/place/def_writer.mli: Filler Placement
