lib/place/legalize.mli: Floorplan Global Netlist Placement Regions
