lib/place/global.mli: Celllib Geo Netlist Regions
