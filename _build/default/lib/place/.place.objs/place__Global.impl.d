lib/place/global.ml: Array Celllib Float Geo List Netlist Partition Regions
