lib/place/anneal.mli: Geo Placement
