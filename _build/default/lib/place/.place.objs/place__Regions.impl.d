lib/place/regions.ml: Array Celllib Float Floorplan Geo List
