lib/place/placement.mli: Floorplan Format Geo Netlist
