lib/place/refine.mli: Placement
