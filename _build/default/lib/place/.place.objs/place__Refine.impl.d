lib/place/refine.ml: Array List Netlist Placement
