lib/place/svg.mli: Filler Geo Placement
