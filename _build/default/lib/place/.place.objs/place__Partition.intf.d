lib/place/partition.mli: Geo Netlist
