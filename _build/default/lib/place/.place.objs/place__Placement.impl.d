lib/place/placement.ml: Array Celllib Floorplan Format Geo List Netlist
