lib/place/partition.ml: Array Float Hashtbl List Netlist Option
