lib/place/filler.mli: Celllib Placement
