lib/place/regions.mli: Floorplan Geo
