lib/place/anneal.ml: Array Floorplan Geo List Netlist Placement
