type filler = {
  f_row : int;
  f_site : int;
  f_kind : Celllib.Kind.t;
}

let widths_desc =
  List.sort (fun a b -> compare b a) Celllib.Kind.filler_widths

(* Greedy decomposition of a [width]-site gap starting at [site]. The width
   set contains 1, so any gap decomposes exactly. *)
let cover_gap ~row ~site ~width acc =
  let acc = ref acc in
  let site = ref site and width = ref width in
  while !width > 0 do
    let w = List.find (fun w -> w <= !width) widths_desc in
    acc := { f_row = row; f_site = !site; f_kind = Celllib.Kind.Filler w }
           :: !acc;
    site := !site + w;
    width := !width - w
  done;
  !acc

let fill pl =
  let fp = pl.Placement.fp in
  let members = Placement.row_members pl in
  let acc = ref [] in
  Array.iteri
    (fun row cells ->
       let cursor = ref 0 in
       List.iter
         (fun cid ->
            let s = pl.Placement.locs.(cid).Placement.site in
            if s > !cursor then
              acc := cover_gap ~row ~site:!cursor ~width:(s - !cursor) !acc;
            cursor := s + Placement.width_sites pl cid)
         cells;
       let cap = fp.Floorplan.sites_per_row in
       if cap > !cursor then
         acc := cover_gap ~row ~site:!cursor ~width:(cap - !cursor) !acc)
    members;
  List.rev !acc

let filler_width f =
  match f.f_kind with
  | Celllib.Kind.Filler w -> w
  | k ->
    invalid_arg
      (Printf.sprintf "Filler.filler_width: not a filler (%s)"
         (Celllib.Kind.name k))

let total_filler_sites fs =
  List.fold_left (fun acc f -> acc + filler_width f) 0 fs

let covers_all_gaps pl fs =
  let fp = pl.Placement.fp in
  let total_sites = fp.Floorplan.num_rows * fp.Floorplan.sites_per_row in
  let cell_sites =
    Netlist.Types.fold_cells pl.Placement.nl ~init:0
      ~f:(fun acc cid _ -> acc + Placement.width_sites pl cid)
  in
  cell_sites + total_filler_sites fs = total_sites
