type region = {
  tag : int;
  rect : Geo.Rect.t;
  row_lo : int;
  row_hi : int;
  site_lo : int;
  site_hi : int;
}

let make_region fp ~tag ~row_lo ~row_hi ~site_lo ~site_hi =
  let tech = fp.Floorplan.tech in
  let sw = tech.Celllib.Tech.site_width_um in
  let rh = tech.Celllib.Tech.row_height_um in
  let rect =
    Geo.Rect.of_corner
      ~x:(float_of_int site_lo *. sw)
      ~y:(float_of_int row_lo *. rh)
      ~w:(float_of_int (site_hi - site_lo + 1) *. sw)
      ~h:(float_of_int (row_hi - row_lo + 1) *. rh)
  in
  { tag; rect; row_lo; row_hi; site_lo; site_hi }

(* Split [total] items into [parts] chunks with sizes proportional to
   [weights], every chunk non-empty; returns inclusive (lo, hi) pairs. *)
let proportional_split ~total ~weights =
  let parts = Array.length weights in
  assert (parts > 0 && total >= parts);
  let wsum = Array.fold_left ( +. ) 0.0 weights in
  let bounds = Array.make parts (0, 0) in
  let used = ref 0 in
  for i = 0 to parts - 1 do
    let remaining_parts = parts - i - 1 in
    let ideal =
      if wsum <= 0.0 then (total - !used) / (parts - i)
      else int_of_float (Float.round (weights.(i) /. wsum *. float_of_int total))
    in
    let size = max 1 (min ideal (total - !used - remaining_parts)) in
    bounds.(i) <- (!used, !used + size - 1);
    used := !used + size
  done;
  (* give leftover to the last chunk *)
  let lo, _ = bounds.(parts - 1) in
  bounds.(parts - 1) <- (lo, total - 1);
  bounds

let pack fp ~areas =
  let n = Array.length areas in
  if n = 0 then invalid_arg "Regions.pack: no areas";
  let ncols = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  (* distribute units into columns round-robin by index, keeping tag order *)
  let cols = Array.make ncols [] in
  Array.iteri
    (fun i ua -> cols.(i mod ncols) <- ua :: cols.(i mod ncols))
    areas;
  let cols = Array.map List.rev cols in
  let cols = Array.to_list cols |> List.filter (fun c -> c <> []) in
  let cols = Array.of_list cols in
  let col_weights =
    Array.map (fun col -> List.fold_left (fun s (_, a) -> s +. a) 0.0 col) cols
  in
  let col_bounds =
    proportional_split ~total:fp.Floorplan.sites_per_row ~weights:col_weights
  in
  let regions = ref [] in
  Array.iteri
    (fun ci col ->
       let site_lo, site_hi = col_bounds.(ci) in
       let weights = Array.of_list (List.map snd col) in
       let row_bounds =
         proportional_split ~total:fp.Floorplan.num_rows ~weights
       in
       List.iteri
         (fun ri (tag, _) ->
            let row_lo, row_hi = row_bounds.(ri) in
            regions :=
              make_region fp ~tag ~row_lo ~row_hi ~site_lo ~site_hi
              :: !regions)
         col)
    cols;
  let arr = Array.of_list (List.rev !regions) in
  Array.sort (fun a b -> compare a.tag b.tag) arr;
  arr

let region_of_tag regions tag =
  match Array.find_opt (fun r -> r.tag = tag) regions with
  | Some r -> r
  | None -> raise Not_found

let whole_core fp =
  [| make_region fp ~tag:(-1) ~row_lo:0 ~row_hi:(fp.Floorplan.num_rows - 1)
       ~site_lo:0 ~site_hi:(fp.Floorplan.sites_per_row - 1) |]

let capacity_sites r =
  (r.row_hi - r.row_lo + 1) * (r.site_hi - r.site_lo + 1)
