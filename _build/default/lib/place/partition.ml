module T = Netlist.Types

type result = {
  side : bool array;
  cut_nets : int;
  area_a : float;
}

(* Local view: nets restricted to the subset, as arrays of subset indices.
   A net qualifies when it has >= 2 subset pins (driver or sink), counting
   each cell once. *)
let local_nets nl ~cells ~max_net_pins =
  let n_cells = Array.length cells in
  let local_of_cell = Hashtbl.create (2 * n_cells) in
  Array.iteri (fun i cid -> Hashtbl.replace local_of_cell cid i) cells;
  let net_members = Hashtbl.create 256 in
  let touch nid i =
    let prev = Option.value (Hashtbl.find_opt net_members nid) ~default:[] in
    if not (List.mem i prev) then Hashtbl.replace net_members nid (i :: prev)
  in
  Array.iteri
    (fun i cid ->
       let c = T.cell nl cid in
       touch c.T.output i;
       Array.iter (fun nid -> touch nid i) c.T.inputs)
    cells;
  let nets = ref [] in
  Hashtbl.iter
    (fun _ members ->
       let len = List.length members in
       if len >= 2 && len <= max_net_pins then
         nets := Array.of_list members :: !nets)
    net_members;
  Array.of_list !nets

let cut_of_nets nets side =
  Array.fold_left
    (fun acc members ->
       let a = Array.exists (fun i -> not side.(i)) members in
       let b = Array.exists (fun i -> side.(i)) members in
       if a && b then acc + 1 else acc)
    0 nets

let cut_size nl ~cells ~side =
  let nets = local_nets nl ~cells ~max_net_pins:max_int in
  cut_of_nets nets side

(* Gain-bucket FM pass machinery. Gains are bounded by the max number of
   qualifying nets on a cell, so buckets are a plain array indexed by
   gain + offset with intrusive doubly-linked lists. *)
module Buckets = struct
  type t = {
    offset : int;
    heads : int array;          (* per gain bucket: first cell or -1 *)
    next : int array;           (* per cell *)
    prev : int array;           (* per cell *)
    gain : int array;           (* per cell *)
    mutable max_gain : int;     (* highest non-empty bucket (approx) *)
  }

  let create ~n_cells ~max_degree =
    let span = (2 * max_degree) + 1 in
    { offset = max_degree;
      heads = Array.make span (-1);
      next = Array.make n_cells (-1);
      prev = Array.make n_cells (-1);
      gain = Array.make n_cells 0;
      max_gain = -max_degree - 1 }

  let insert t i g =
    t.gain.(i) <- g;
    let b = g + t.offset in
    t.next.(i) <- t.heads.(b);
    t.prev.(i) <- -1;
    if t.heads.(b) >= 0 then t.prev.(t.heads.(b)) <- i;
    t.heads.(b) <- i;
    if g > t.max_gain then t.max_gain <- g

  let remove t i =
    let b = t.gain.(i) + t.offset in
    if t.prev.(i) >= 0 then t.next.(t.prev.(i)) <- t.next.(i)
    else t.heads.(b) <- t.next.(i);
    if t.next.(i) >= 0 then t.prev.(t.next.(i)) <- t.prev.(i);
    t.next.(i) <- -1;
    t.prev.(i) <- -1

  let update t i g = remove t i; insert t i g

  (* Find the best unlocked cell whose move keeps balance; linear scan down
     the buckets. [accept] filters by balance. *)
  let pop_best t ~accept =
    let rec scan_bucket g =
      if g + t.offset < 0 then None
      else begin
        let rec walk i =
          if i < 0 then None
          else if accept i then Some i
          else walk t.next.(i)
        in
        match walk t.heads.(g + t.offset) with
        | Some i -> remove t i; Some i
        | None -> scan_bucket (g - 1)
      end
    in
    (* refresh max_gain lazily *)
    while t.max_gain + t.offset >= 0 && t.heads.(t.max_gain + t.offset) < 0 do
      t.max_gain <- t.max_gain - 1
    done;
    scan_bucket t.max_gain
end

let bipartition nl ~cells ~areas ~target_a ~tolerance ?(max_passes = 4)
    ?(max_net_pins = 64) rng =
  let n = Array.length cells in
  assert (Array.length areas = n);
  if n = 0 then { side = [||]; cut_nets = 0; area_a = 0.0 }
  else begin
    let nets = local_nets nl ~cells ~max_net_pins in
    let total_area = Array.fold_left ( +. ) 0.0 areas in
    let target_area = target_a *. total_area in
    (* Initial split: prefix of the given order up to the target area. *)
    let side = Array.make n true in
    let acc = ref 0.0 in
    (try
       for i = 0 to n - 1 do
         if !acc >= target_area then raise Exit;
         side.(i) <- false;
         acc := !acc +. areas.(i)
       done
     with Exit -> ());
    let area_a = ref !acc in
    ignore rng;
    (* net membership per cell for incremental updates *)
    let cell_nets = Array.make n [] in
    Array.iteri
      (fun ni members ->
         Array.iter (fun i -> cell_nets.(i) <- ni :: cell_nets.(i)) members)
      nets;
    let max_degree =
      Array.fold_left (fun m l -> max m (List.length l)) 1 cell_nets
    in
    let n_nets = Array.length nets in
    let count_a = Array.make n_nets 0 in
    let count_b = Array.make n_nets 0 in
    let recount () =
      Array.iteri
        (fun ni members ->
           let a = ref 0 and b = ref 0 in
           Array.iter (fun i -> if side.(i) then incr b else incr a) members;
           count_a.(ni) <- !a;
           count_b.(ni) <- !b)
        nets
    in
    let gain_of i =
      (* +1 for each net that would become uncut, -1 for each newly cut *)
      List.fold_left
        (fun g ni ->
           let from_cnt = if side.(i) then count_b.(ni) else count_a.(ni) in
           let to_cnt = if side.(i) then count_a.(ni) else count_b.(ni) in
           let g = if from_cnt = 1 then g + 1 else g in
           if to_cnt = 0 then g - 1 else g)
        0 cell_nets.(i)
    in
    let balance_ok_after i =
      let na =
        if side.(i) then !area_a +. areas.(i) else !area_a -. areas.(i)
      in
      Float.abs (na -. target_area) <= tolerance
    in
    let improved = ref true in
    let passes = ref 0 in
    while !improved && !passes < max_passes do
      improved := false;
      incr passes;
      recount ();
      let buckets = Buckets.create ~n_cells:n ~max_degree in
      for i = 0 to n - 1 do
        Buckets.insert buckets i (gain_of i)
      done;
      let locked = Array.make n false in
      let moves = ref [] in
      let cum_gain = ref 0 in
      let best_gain = ref 0 in
      let best_len = ref 0 in
      let len = ref 0 in
      let continue_loop = ref true in
      while !continue_loop do
        match
          Buckets.pop_best buckets
            ~accept:(fun i -> (not locked.(i)) && balance_ok_after i)
        with
        | None -> continue_loop := false
        | Some i ->
          locked.(i) <- true;
          cum_gain := !cum_gain + buckets.Buckets.gain.(i);
          (* apply the move *)
          let from_b = side.(i) in
          List.iter
            (fun ni ->
               if from_b then begin
                 count_b.(ni) <- count_b.(ni) - 1;
                 count_a.(ni) <- count_a.(ni) + 1
               end else begin
                 count_a.(ni) <- count_a.(ni) - 1;
                 count_b.(ni) <- count_b.(ni) + 1
               end)
            cell_nets.(i);
          side.(i) <- not from_b;
          area_a := (if from_b then !area_a +. areas.(i)
                     else !area_a -. areas.(i));
          moves := i :: !moves;
          incr len;
          if !cum_gain > !best_gain then begin
            best_gain := !cum_gain;
            best_len := !len
          end;
          (* refresh neighbour gains *)
          let touched = Hashtbl.create 16 in
          List.iter
            (fun ni ->
               Array.iter
                 (fun j ->
                    if (not locked.(j)) && not (Hashtbl.mem touched j) then begin
                      Hashtbl.replace touched j ();
                      Buckets.update buckets j (gain_of j)
                    end)
                 nets.(ni))
            cell_nets.(i)
      done;
      (* roll back past the best prefix *)
      let all_moves = Array.of_list (List.rev !moves) in
      for k = Array.length all_moves - 1 downto !best_len do
        let i = all_moves.(k) in
        let from_b = side.(i) in
        side.(i) <- not from_b;
        area_a := (if from_b then !area_a +. areas.(i)
                   else !area_a -. areas.(i))
      done;
      if !best_gain > 0 then improved := true
    done;
    recount ();
    { side; cut_nets = cut_of_nets nets side; area_a = !area_a }
  end
