(** Fiduccia–Mattheyses bipartitioning of a cell subset.

    Used by the recursive-bisection global placer to minimize the number of
    nets crossing each cut while keeping the two sides area-balanced. *)

type result = {
  side : bool array;   (** per subset index: [false] = side A, [true] = B *)
  cut_nets : int;      (** nets with pins on both sides after refinement *)
  area_a : float;      (** total cell area on side A *)
}

val bipartition :
  Netlist.Types.t ->
  cells:Netlist.Types.cell_id array ->
  areas:float array ->
  target_a:float ->
  tolerance:float ->
  ?max_passes:int ->
  ?max_net_pins:int ->
  Geo.Rng.t ->
  result
(** [bipartition nl ~cells ~areas ~target_a ~tolerance rng] splits the
    subset so that side A holds a fraction [target_a] of the subset area
    (within [tolerance], an absolute area slack). The initial split follows
    the given cell order (which generators emit with good locality); FM
    passes with gain buckets then reduce the cut. Nets with more than
    [max_net_pins] pins inside the subset (default 64) are ignored — they
    are almost always constants or high-fanout control and carry no
    locality signal. *)

val cut_size :
  Netlist.Types.t -> cells:Netlist.Types.cell_id array -> side:bool array ->
  int
(** Number of nets with subset pins on both sides (no pin-count cap). *)
