(** DEF-style placement export.

    Emits a (reduced) DEF 5.8 view of a placement: DIEAREA, ROW statements,
    COMPONENTS with PLACED locations, and optionally the filler cells —
    enough for visual inspection in any DEF viewer and for diffing
    placements in tests. Distance units: 1000 DEF units per µm. *)

val to_string : ?design_name:string -> ?fillers:Filler.filler list ->
  Placement.t -> string

val write_file : string -> ?design_name:string ->
  ?fillers:Filler.filler list -> Placement.t -> unit
