(** Simulated-annealing detailed placement.

    A stronger (and slower) alternative to {!Refine}: random intra-row pair
    swaps and single-cell relocations into free gaps, accepted with the
    Metropolis criterion under a geometric cooling schedule. Optimizes
    HPWL; legality is preserved by construction (moves only target
    positions that fit). *)

type config = {
  initial_temp_um : float;   (** Metropolis temperature, in µm of HPWL *)
  cooling : float;           (** per-round multiplier, in (0,1) *)
  moves_per_round : int;
  rounds : int;
}

val default_config : config
(** 50 µm initial temperature, 0.85 cooling, 2000 moves x 20 rounds. *)

type stats = {
  attempted : int;
  accepted : int;
  uphill_accepted : int;
  hpwl_before_um : float;
  hpwl_after_um : float;
}

val optimize : ?config:config -> Placement.t -> Geo.Rng.t ->
  Placement.t * stats
(** The result is legal; HPWL typically improves a few percent beyond
    greedy swapping on bisection placements. *)
