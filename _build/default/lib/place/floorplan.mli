(** Fixed-outline row-based floorplan.

    The core is a rectangle at origin (0,0) tiled with horizontal
    standard-cell rows of the technology's row height; each row is an
    integer number of placement sites wide. *)

type t = {
  tech : Celllib.Tech.t;
  core : Geo.Rect.t;
  num_rows : int;
  sites_per_row : int;
}

val create : Celllib.Tech.t -> cell_area_um2:float -> utilization:float ->
  aspect:float -> t
(** Smallest roughly-[aspect] (width/height) core such that
    [cell_area / core_area = utilization]. Raises [Invalid_argument] when
    [utilization] is outside (0,1] or [cell_area] is non-positive. *)

val create_explicit : Celllib.Tech.t -> num_rows:int -> sites_per_row:int -> t

val with_extra_rows : t -> int -> t
(** Same width, [n] more rows — the ERI core after row insertion. *)

val core_area_um2 : t -> float
val row_y : t -> int -> float
(** Bottom edge of a row. *)

val row_rect : t -> int -> Geo.Rect.t
val row_of_y : t -> float -> int option
(** Row whose span contains the given y. *)

val site_x : t -> int -> float
(** Left edge of a site column. *)

val utilization_of : t -> cell_area_um2:float -> float

val pp : Format.formatter -> t -> unit
