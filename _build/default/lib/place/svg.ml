type overlay = {
  heat : Geo.Grid.t option;
  outlines : Geo.Rect.t list;
}

let no_overlay = { heat = None; outlines = [] }

(* qualitative palette, one colour per unit tag (cycled) *)
let unit_colors =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#e15759"; "#76b7b2"; "#edc948";
     "#b07aa1"; "#ff9da7"; "#9c755f" |]

let color_of_tag tag =
  if tag < 0 then "#888888"
  else unit_colors.(tag mod Array.length unit_colors)

let to_string ?(scale = 4.0) ?(fillers = []) ?(overlay = no_overlay)
    (pl : Placement.t) =
  let fp = pl.Placement.fp in
  let core = fp.Floorplan.core in
  let w = Geo.Rect.width core *. scale in
  let h = Geo.Rect.height core *. scale in
  (* SVG y grows downward; flip so row 0 is at the bottom like a die plot *)
  let sx x = x *. scale in
  let sy y = h -. (y *. scale) in
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
      height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n" w h w h;
  pr "<rect x=\"0\" y=\"0\" width=\"%.0f\" height=\"%.0f\" \
      fill=\"#fafafa\" stroke=\"#222\"/>\n" w h;
  (* rows *)
  for r = 0 to fp.Floorplan.num_rows - 1 do
    let rect = Floorplan.row_rect fp r in
    pr "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
        fill=\"none\" stroke=\"#dddddd\" stroke-width=\"0.5\"/>\n"
      (sx rect.Geo.Rect.lx)
      (sy rect.Geo.Rect.hy)
      (sx (Geo.Rect.width rect))
      (sx (Geo.Rect.height rect))
  done;
  (* fillers below cells *)
  List.iter
    (fun f ->
       match f.Filler.f_kind with
       | Celllib.Kind.Filler width ->
         let x = Floorplan.site_x fp f.Filler.f_site in
         let y = Floorplan.row_y fp f.Filler.f_row in
         let tech = fp.Floorplan.tech in
         pr "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
             fill=\"#e8e8e8\"/>\n"
           (sx x)
           (sy (y +. tech.Celllib.Tech.row_height_um))
           (sx (float_of_int width *. tech.Celllib.Tech.site_width_um))
           (sx tech.Celllib.Tech.row_height_um)
       | _ -> ())
    fillers;
  (* cells *)
  Netlist.Types.iter_cells pl.Placement.nl ~f:(fun cid c ->
      let rect = Placement.cell_rect pl cid in
      pr "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
          fill=\"%s\" fill-opacity=\"0.85\"/>\n"
        (sx rect.Geo.Rect.lx)
        (sy rect.Geo.Rect.hy)
        (sx (Geo.Rect.width rect))
        (sx (Geo.Rect.height rect))
        (color_of_tag c.Netlist.Types.unit_tag));
  (* heat overlay *)
  (match overlay.heat with
   | None -> ()
   | Some grid ->
     let lo = Geo.Grid.min_value grid and hi = Geo.Grid.max_value grid in
     let span = if hi > lo then hi -. lo else 1.0 in
     Geo.Grid.iteri grid ~f:(fun ~ix ~iy v ->
         let alpha = 0.45 *. (v -. lo) /. span in
         if alpha > 0.02 then begin
           let rect = Geo.Grid.tile_rect grid ~ix ~iy in
           pr "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
               fill=\"#ff2200\" fill-opacity=\"%.3f\"/>\n"
             (sx rect.Geo.Rect.lx)
             (sy rect.Geo.Rect.hy)
             (sx (Geo.Rect.width rect))
             (sx (Geo.Rect.height rect))
             alpha
         end));
  (* outlines *)
  List.iter
    (fun rect ->
       pr "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
           fill=\"none\" stroke=\"#cc0000\" stroke-width=\"2\" \
           stroke-dasharray=\"6 3\"/>\n"
         (sx rect.Geo.Rect.lx)
         (sy rect.Geo.Rect.hy)
         (sx (Geo.Rect.width rect))
         (sx (Geo.Rect.height rect)))
    overlay.outlines;
  pr "</svg>\n";
  Buffer.contents buf

let write_file path ?scale ?fillers ?overlay pl =
  let oc = open_out path in
  (try output_string oc (to_string ?scale ?fillers ?overlay pl)
   with e -> close_out oc; raise e);
  close_out oc
