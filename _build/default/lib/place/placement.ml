module T = Netlist.Types

type loc = {
  row : int;
  site : int;
}

type t = {
  nl : T.t;
  fp : Floorplan.t;
  locs : loc array;
}

let make nl fp locs =
  if Array.length locs <> T.num_cells nl then
    invalid_arg "Placement.make: locs length mismatch";
  { nl; fp; locs }

let width_sites t cid =
  (Celllib.Info.get (T.cell t.nl cid).T.kind).Celllib.Info.width_sites

let cell_rect t cid =
  let l = t.locs.(cid) in
  let tech = t.fp.Floorplan.tech in
  let sw = tech.Celllib.Tech.site_width_um in
  let rh = tech.Celllib.Tech.row_height_um in
  Geo.Rect.of_corner
    ~x:(float_of_int l.site *. sw)
    ~y:(float_of_int l.row *. rh)
    ~w:(float_of_int (width_sites t cid) *. sw)
    ~h:rh

let cell_center t cid =
  let r = cell_rect t cid in
  (Geo.Rect.center_x r, Geo.Rect.center_y r)

let net_cells t nid =
  let n = T.net t.nl nid in
  let sinks = Array.to_list (Array.map fst n.T.sinks) in
  let all =
    match n.T.driver with
    | T.Cell_output cid -> cid :: sinks
    | T.Primary_input _ | T.Constant _ -> sinks
  in
  List.sort_uniq compare all

let net_bbox t nid =
  match net_cells t nid with
  | [] | [ _ ] -> None
  | first :: rest ->
    let fx, fy = cell_center t first in
    let r0 = Geo.Rect.make ~lx:fx ~ly:fy ~hx:fx ~hy:fy in
    Some
      (List.fold_left
         (fun acc cid ->
            let x, y = cell_center t cid in
            Geo.Rect.union acc (Geo.Rect.make ~lx:x ~ly:y ~hx:x ~hy:y))
         r0 rest)

let net_hpwl t nid =
  match net_bbox t nid with
  | None -> 0.0
  | Some r -> Geo.Rect.width r +. Geo.Rect.height r

let hpwl t =
  let acc = ref 0.0 in
  for nid = 0 to T.num_nets t.nl - 1 do
    acc := !acc +. net_hpwl t nid
  done;
  !acc

let total_cell_area t =
  T.fold_cells t.nl ~init:0.0 ~f:(fun acc _ c ->
      acc +. Celllib.Info.area_um2 t.fp.Floorplan.tech c.T.kind)

let utilization t =
  Floorplan.utilization_of t.fp ~cell_area_um2:(total_cell_area t)

type violation =
  | Out_of_bounds of T.cell_id
  | Overlap of T.cell_id * T.cell_id

let pp_violation ppf = function
  | Out_of_bounds cid -> Format.fprintf ppf "cell %d out of bounds" cid
  | Overlap (a, b) -> Format.fprintf ppf "cells %d and %d overlap" a b

let row_members t =
  let rows = Array.make t.fp.Floorplan.num_rows [] in
  T.iter_cells t.nl ~f:(fun cid _ ->
      let l = t.locs.(cid) in
      if l.row >= 0 && l.row < t.fp.Floorplan.num_rows then
        rows.(l.row) <- cid :: rows.(l.row));
  Array.map
    (fun members ->
       List.sort (fun a b -> compare t.locs.(a).site t.locs.(b).site) members)
    rows

let validate t =
  let issues = ref [] in
  let fp = t.fp in
  T.iter_cells t.nl ~f:(fun cid _ ->
      let l = t.locs.(cid) in
      if l.row < 0 || l.row >= fp.Floorplan.num_rows || l.site < 0
         || l.site + width_sites t cid > fp.Floorplan.sites_per_row
      then issues := Out_of_bounds cid :: !issues);
  Array.iter
    (fun members ->
       let rec scan = function
         | a :: (b :: _ as rest) ->
           if t.locs.(a).site + width_sites t a > t.locs.(b).site then
             issues := Overlap (a, b) :: !issues;
           scan rest
         | [ _ ] | [] -> ()
       in
       scan members)
    (row_members t);
  List.rev !issues

let pp_summary ppf t =
  Format.fprintf ppf "%a, %d cells, util %.3f, HPWL %.0f um"
    Floorplan.pp t.fp (T.num_cells t.nl) (utilization t) (hpwl t)
