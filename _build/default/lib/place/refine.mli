(** Detailed-placement refinement: greedy intra-row swaps.

    Production placers follow legalization with local moves; this pass
    swaps horizontally adjacent cells within a row whenever that shortens
    the total half-perimeter wirelength, preserving the pair's combined
    span (so legality is maintained by construction). Useful to tighten
    wirelength before timing analysis, and as a demonstration that the
    temperature techniques compose with ordinary placement optimization. *)

type stats = {
  passes : int;
  swaps : int;
  hpwl_before_um : float;
  hpwl_after_um : float;
}

val greedy_swaps : ?max_passes:int -> Placement.t -> Placement.t * stats
(** Sweep rows left to right, swapping adjacent pairs on improvement, until
    a pass makes no swap or [max_passes] (default 4) is reached. The result
    is never worse in HPWL and always legal. *)
