(** A legal row-based placement: every cell sits in a row at a site index.

    This is the object the paper's techniques transform. It is immutable;
    transforms build new arrays. *)

type loc = {
  row : int;   (** row index, 0 at the bottom *)
  site : int;  (** leftmost occupied site *)
}

type t = {
  nl : Netlist.Types.t;
  fp : Floorplan.t;
  locs : loc array;  (** indexed by cell id *)
}

val make : Netlist.Types.t -> Floorplan.t -> loc array -> t
(** No validation beyond length check; use {!validate} in tests. *)

val width_sites : t -> Netlist.Types.cell_id -> int
val cell_rect : t -> Netlist.Types.cell_id -> Geo.Rect.t
val cell_center : t -> Netlist.Types.cell_id -> float * float

val net_bbox : t -> Netlist.Types.net_id -> Geo.Rect.t option
(** Bounding box of the centers of all cells on a net (driver and sinks);
    [None] when fewer than two distinct cells touch the net. *)

val net_hpwl : t -> Netlist.Types.net_id -> float
(** Half-perimeter wire length of one net, 0 for single-cell nets. *)

val hpwl : t -> float
(** Total half-perimeter wire length, µm. *)

val total_cell_area : t -> float
val utilization : t -> float

type violation =
  | Out_of_bounds of Netlist.Types.cell_id
  | Overlap of Netlist.Types.cell_id * Netlist.Types.cell_id

val pp_violation : Format.formatter -> violation -> unit

val validate : t -> violation list
(** Empty list iff the placement is legal. *)

val row_members : t -> (Netlist.Types.cell_id list) array
(** Per row: member cells sorted by site. *)

val pp_summary : Format.formatter -> t -> unit
