module T = Netlist.Types

type stats = {
  passes : int;
  swaps : int;
  hpwl_before_um : float;
  hpwl_after_um : float;
}

(* Nets incident to a cell: its output plus every input. *)
let nets_of_cell nl cid =
  let c = T.cell nl cid in
  c.T.output :: Array.to_list c.T.inputs |> List.sort_uniq compare

let hpwl_of_nets pl nets =
  List.fold_left (fun acc nid -> acc +. Placement.net_hpwl pl nid) 0.0 nets

(* Swap two horizontally adjacent cells a (left) and b (right), keeping the
   pair's combined span: b moves to a's left edge, a right-aligns to the
   pair's right edge. *)
let swapped_locs (pl : Placement.t) a b =
  let locs = pl.Placement.locs in
  let wa = Placement.width_sites pl a and wb = Placement.width_sites pl b in
  let sa = locs.(a).Placement.site and sb = locs.(b).Placement.site in
  let right_edge = sb + wb in
  ( { locs.(a) with Placement.site = right_edge - wa },
    { locs.(b) with Placement.site = sa } )

let greedy_swaps ?(max_passes = 4) pl =
  let nl = pl.Placement.nl in
  let locs = Array.copy pl.Placement.locs in
  (* [current] aliases [locs]: mutating the array is how trial swaps are
     evaluated in place without rebuilding the placement *)
  let current = Placement.make nl pl.Placement.fp locs in
  let hpwl_before_um = Placement.hpwl current in
  let swaps = ref 0 in
  let passes = ref 0 in
  let improved = ref true in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    let rows = Placement.row_members current in
    Array.iter
      (fun members ->
         let rec walk = function
           | a :: b :: rest ->
             let affected =
               List.sort_uniq compare
                 (nets_of_cell nl a @ nets_of_cell nl b)
             in
             let before = hpwl_of_nets current affected in
             let la, lb = swapped_locs current a b in
             let old_a = locs.(a) and old_b = locs.(b) in
             locs.(a) <- la;
             locs.(b) <- lb;
             let after = hpwl_of_nets current affected in
             if after +. 1e-9 < before then begin
               incr swaps;
               improved := true;
               (* the pair exchanged order: [a] is now the left neighbour
                  of the remaining cells *)
               walk (a :: rest)
             end else begin
               locs.(a) <- old_a;
               locs.(b) <- old_b;
               walk (b :: rest)
             end
           | [ _ ] | [] -> ()
         in
         walk members)
      rows
  done;
  let final = current in
  ( final,
    { passes = !passes; swaps = !swaps; hpwl_before_um;
      hpwl_after_um = Placement.hpwl final } )
