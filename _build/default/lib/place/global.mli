(** Region-constrained recursive-bisection global placement.

    Each unit's cells are placed inside that unit's region by recursive
    min-cut bisection: the cell set is FM-bipartitioned by area, the region
    is split across its longer dimension at the area balance point, and the
    halves recurse. Leaves scatter their few cells over the leaf rectangle.
    The output is a continuous (x, y) center per cell; legalization snaps
    to rows and sites. *)

type positions = (float * float) array
(** Per cell id: continuous center coordinates in µm. Cells that were not
    given to the placer keep (nan, nan). *)

val place :
  Netlist.Types.t ->
  Celllib.Tech.t ->
  regions:Regions.region array ->
  cells_of_region:(int -> Netlist.Types.cell_id array) ->
  ?leaf_cells:int ->
  Geo.Rng.t ->
  positions
(** [place nl tech ~regions ~cells_of_region rng] runs bisection inside
    every region. [leaf_cells] (default 8) bounds the recursion. *)

val scaled : positions -> from_core:Geo.Rect.t -> to_core:Geo.Rect.t ->
  positions
(** Linearly remap positions between core outlines — how the Default
    technique reuses one global placement at several utilization factors. *)
