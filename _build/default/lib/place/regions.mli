(** Unit placement regions.

    The benchmark's nine arithmetic units get their own rectangular regions
    arranged in a column grid, areas proportional to the units' cell areas —
    the floorplan stage of the paper's flow ("nine arithmetic units of
    various sizes"). Regions snap to row and site boundaries so the
    legalizer can work with whole row segments. *)

type region = {
  tag : int;          (** owning unit tag *)
  rect : Geo.Rect.t;  (** region footprint inside the core *)
  row_lo : int;       (** first row covered (inclusive) *)
  row_hi : int;       (** last row covered (inclusive) *)
  site_lo : int;      (** first site column covered (inclusive) *)
  site_hi : int;      (** last site column covered (inclusive) *)
}

val pack : Floorplan.t -> areas:(int * float) array -> region array
(** [pack fp ~areas] splits the core into one region per (tag, cell-area)
    entry: tags are laid out in ceil(sqrt n) columns; column widths are
    proportional to their area sums, region heights within a column to the
    unit areas. Every region spans at least one row and one site. *)

val region_of_tag : region array -> int -> region
(** Raises [Not_found] for an unknown tag. *)

val whole_core : Floorplan.t -> region array
(** Single region covering everything (for untagged netlists). *)

val capacity_sites : region -> int
(** Number of placement sites inside the region. *)
