(** SVG rendering of placements.

    Produces a self-contained SVG of the die: rows, cells (colored by
    benchmark unit, fillers in grey), and optional overlays — a translucent
    heat map and hotspot outlines. This is the visual counterpart of the
    paper's Fig. 3/4 layout illustrations. *)

type overlay = {
  heat : Geo.Grid.t option;        (** translucent red shading by value *)
  outlines : Geo.Rect.t list;      (** dashed rectangles (e.g. hotspots) *)
}

val no_overlay : overlay

val to_string : ?scale:float -> ?fillers:Filler.filler list ->
  ?overlay:overlay -> Placement.t -> string
(** [scale] is SVG pixels per µm (default 4). *)

val write_file : string -> ?scale:float -> ?fillers:Filler.filler list ->
  ?overlay:overlay -> Placement.t -> unit
