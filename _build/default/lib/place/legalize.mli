(** Row legalization: snap continuous global positions to rows and sites.

    Cells are processed region by region; inside a region they are ordered
    by their global y then x, dealt into the region's rows by cumulative
    area, and whitespace within each row is distributed evenly between the
    cells — the uniform-density behaviour of production placers the paper
    starts from. *)

exception Region_overflow of int
(** Raised (with the offending tag) when a region cannot hold its cells. *)

val run :
  Netlist.Types.t ->
  Floorplan.t ->
  regions:Regions.region array ->
  cells_of_region:(int -> Netlist.Types.cell_id array) ->
  positions:Global.positions ->
  Placement.t

val legalize_region_rows :
  Placement.t ->
  cells:Netlist.Types.cell_id array ->
  order_key:(Netlist.Types.cell_id -> float * float) ->
  row_lo:int -> row_hi:int -> site_lo:int -> site_hi:int ->
  Placement.loc array
(** Lower-level entry used by the techniques: re-pack [cells] into the row
    span, preserving [order_key] order, spreading whitespace evenly.
    Returns a full loc array based on the placement's current locs with the
    given cells moved. Raises {!Region_overflow} with tag -1 on overflow. *)
