let units_per_um = 1000.0

let du v = int_of_float (Float.round (v *. units_per_um))

let to_string ?(design_name = "design") ?(fillers = []) (pl : Placement.t) =
  let buf = Buffer.create 65536 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fp = pl.Placement.fp in
  let tech = fp.Floorplan.tech in
  let core = fp.Floorplan.core in
  pr "VERSION 5.8 ;\nDIVIDERCHAR \"/\" ;\nBUSBITCHARS \"[]\" ;\n";
  pr "DESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n" design_name
    (int_of_float units_per_um);
  pr "DIEAREA ( %d %d ) ( %d %d ) ;\n"
    (du core.Geo.Rect.lx) (du core.Geo.Rect.ly)
    (du core.Geo.Rect.hx) (du core.Geo.Rect.hy);
  let site_w = du tech.Celllib.Tech.site_width_um in
  for r = 0 to fp.Floorplan.num_rows - 1 do
    pr "ROW core_row_%d unit_site 0 %d %s DO %d BY 1 STEP %d 0 ;\n" r
      (du (Floorplan.row_y fp r))
      (if r mod 2 = 0 then "N" else "FS")
      fp.Floorplan.sites_per_row site_w
  done;
  let nl = pl.Placement.nl in
  let n_components = Netlist.Types.num_cells nl + List.length fillers in
  pr "COMPONENTS %d ;\n" n_components;
  Netlist.Types.iter_cells nl ~f:(fun cid c ->
      let rect = Placement.cell_rect pl cid in
      let l = pl.Placement.locs.(cid) in
      pr "- u%d %s_X1 + PLACED ( %d %d ) %s ;\n" cid
        (Celllib.Kind.name c.Netlist.Types.kind)
        (du rect.Geo.Rect.lx) (du rect.Geo.Rect.ly)
        (if l.Placement.row mod 2 = 0 then "N" else "FS"));
  List.iteri
    (fun i f ->
       let x = Floorplan.site_x fp f.Filler.f_site in
       let y = Floorplan.row_y fp f.Filler.f_row in
       pr "- fill%d %s + PLACED ( %d %d ) %s ;\n" i
         (Celllib.Kind.name f.Filler.f_kind)
         (du x) (du y)
         (if f.Filler.f_row mod 2 = 0 then "N" else "FS"))
    fillers;
  pr "END COMPONENTS\nEND DESIGN\n";
  Buffer.contents buf

let write_file path ?design_name ?fillers pl =
  let oc = open_out path in
  (try output_string oc (to_string ?design_name ?fillers pl)
   with e -> close_out oc; raise e);
  close_out oc
