(** Filler-cell insertion.

    Both techniques fill the created whitespace with zero-power dummy cells
    that keep the power/ground rails electrically continuous (paper §III).
    Fillers exist only at the layout level — they are not netlist cells. *)

type filler = {
  f_row : int;
  f_site : int;
  f_kind : Celllib.Kind.t;  (** always a [Filler _] variant *)
}

val fill : Placement.t -> filler list
(** Cover every free site of every row with the fewest fillers from the
    library's width set (greedy, largest first). *)

val total_filler_sites : filler list -> int

val covers_all_gaps : Placement.t -> filler list -> bool
(** True when fillers plus cells tile every row exactly (the electrical
    continuity property). *)
