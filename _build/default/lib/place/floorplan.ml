type t = {
  tech : Celllib.Tech.t;
  core : Geo.Rect.t;
  num_rows : int;
  sites_per_row : int;
}

let create_explicit tech ~num_rows ~sites_per_row =
  if num_rows <= 0 || sites_per_row <= 0 then
    invalid_arg "Floorplan.create_explicit: non-positive dimensions";
  let w = float_of_int sites_per_row *. tech.Celllib.Tech.site_width_um in
  let h = float_of_int num_rows *. tech.Celllib.Tech.row_height_um in
  { tech; core = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w ~h;
    num_rows; sites_per_row }

let create tech ~cell_area_um2 ~utilization ~aspect =
  if utilization <= 0.0 || utilization > 1.0 then
    invalid_arg "Floorplan.create: utilization out of (0,1]";
  if cell_area_um2 <= 0.0 then
    invalid_arg "Floorplan.create: non-positive cell area";
  if aspect <= 0.0 then invalid_arg "Floorplan.create: non-positive aspect";
  let target = cell_area_um2 /. utilization in
  let height = sqrt (target /. aspect) in
  let rh = tech.Celllib.Tech.row_height_um in
  let num_rows = max 1 (int_of_float (Float.round (height /. rh))) in
  let width = target /. (float_of_int num_rows *. rh) in
  let sw = tech.Celllib.Tech.site_width_um in
  let sites_per_row = max 1 (int_of_float (Float.ceil (width /. sw))) in
  create_explicit tech ~num_rows ~sites_per_row

let with_extra_rows t n =
  if n < 0 then invalid_arg "Floorplan.with_extra_rows: negative count";
  create_explicit t.tech ~num_rows:(t.num_rows + n)
    ~sites_per_row:t.sites_per_row

let core_area_um2 t = Geo.Rect.area t.core

let row_y t i =
  assert (i >= 0 && i < t.num_rows);
  float_of_int i *. t.tech.Celllib.Tech.row_height_um

let row_rect t i =
  Geo.Rect.of_corner ~x:0.0 ~y:(row_y t i)
    ~w:(Geo.Rect.width t.core) ~h:t.tech.Celllib.Tech.row_height_um

let row_of_y t y =
  let rh = t.tech.Celllib.Tech.row_height_um in
  if y < 0.0 || y >= Geo.Rect.height t.core then None
  else Some (min (t.num_rows - 1) (int_of_float (y /. rh)))

let site_x t s = float_of_int s *. t.tech.Celllib.Tech.site_width_um

let utilization_of t ~cell_area_um2 = cell_area_um2 /. core_area_um2 t

let pp ppf t =
  Format.fprintf ppf "core %.1f x %.1f um (%d rows x %d sites)"
    (Geo.Rect.width t.core) (Geo.Rect.height t.core)
    t.num_rows t.sites_per_row
