lib/core/hotspot.mli: Geo Netlist Place
