lib/core/optimizer.mli: Flow Technique
