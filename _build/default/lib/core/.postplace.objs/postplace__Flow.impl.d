lib/core/flow.ml: Array Celllib Geo Hotspot List Logicsim Netgen Netlist Place Power Sta Technique Thermal
