lib/core/optimizer.ml: Flow List Place Power Technique Thermal
