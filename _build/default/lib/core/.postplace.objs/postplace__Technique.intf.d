lib/core/technique.mli: Celllib Geo Hotspot Netlist Place
