lib/core/electrothermal.mli: Flow Geo Place Thermal
