lib/core/hotspot.ml: Array Celllib Float Geo List Netlist Option Place Queue
