lib/core/experiment.ml: Electrothermal Float Flow Geo Hotspot List Logicsim Netgen Optimizer Place Power Route Sta Technique Thermal
