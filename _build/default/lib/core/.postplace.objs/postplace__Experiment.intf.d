lib/core/experiment.mli: Flow Geo
