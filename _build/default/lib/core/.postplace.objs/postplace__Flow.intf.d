lib/core/flow.mli: Celllib Geo Hotspot Logicsim Netgen Netlist Place Power Sta Technique Thermal
