lib/core/technique.ml: Array Celllib Float Geo Hashtbl Hotspot List Netlist Place
