lib/core/electrothermal.ml: Array Float Flow Geo Place Power Thermal
