(** The paper's three whitespace-allocation schemes.

    - {!uniform_slack}: the "Default" baseline — relax the placement row
      utilization factor so whitespace spreads over the whole core.
    - {!empty_row_insertion}: ERI — whole empty rows next to the hotspots;
      the core grows vertically, rows above the insertions shift up.
    - {!hotspot_wrapper}: HW — a whitespace ring around each hotspot;
      foreign cells are evicted from the wrapper, hot cells are re-spread
      uniformly inside it. Applied on top of a Default placement, so it
      adds no area of its own (paper §IV). *)

val area_overhead_pct : base:Place.Placement.t -> Place.Placement.t -> float
(** Core-area increase in percent relative to [base]. *)

val uniform_slack :
  Netlist.Types.t ->
  Celllib.Tech.t ->
  unit_areas:(int * float) array ->
  cells_of_region:(int -> Netlist.Types.cell_id array) ->
  positions:Place.Global.positions ->
  from_core:Geo.Rect.t ->
  utilization:float ->
  ?aspect:float ->
  Geo.Rng.t ->
  Place.Placement.t
(** Re-place the design into a fresh core sized for [utilization], reusing
    the global placement (scaled into the new outline) — exactly "what
    happens when the utilization factor during placement is reduced". *)

val power_aware_slack :
  Netlist.Types.t ->
  Celllib.Tech.t ->
  unit_areas:(int * float) array ->
  unit_powers:(int * float) array ->
  cells_of_region:(int -> Netlist.Types.cell_id array) ->
  positions:Place.Global.positions ->
  from_core:Geo.Rect.t ->
  utilization:float ->
  ?aspect:float ->
  Geo.Rng.t ->
  Place.Placement.t
(** Placement-time thermal awareness (the alternative the paper's intro
    contrasts with post-placement methods, after refs [7][8]): the same
    total whitespace as {!uniform_slack} at the given utilization, but the
    slack is distributed across the unit regions proportionally to each
    unit's power, so busy units get sparser placements from the start. No
    post-placement information (actual hotspot positions) is used. *)

type eri_result = {
  eri_placement : Place.Placement.t;
  inserted_after : int list;
  (** original row indices after which an empty row was inserted *)
}

val apply_row_insertions : Place.Placement.t -> int list -> eri_result
(** Low-level primitive: insert one empty row above each listed (original)
    row index; duplicates mean several empty rows at the same spot. Used by
    ERI and by the greedy row-budget optimizer. *)

val empty_row_insertion :
  ?style:[ `Interleaved | `Clustered ] ->
  Place.Placement.t -> hotspots:Hotspot.t list -> rows:int -> eri_result
(** Insert [rows] empty rows across the hotspot row spans. The default
    [`Interleaved] style spreads them evenly ("an empty row in every other
    row", paper §III-A); [`Clustered] drops the whole budget as one block at
    each span's center — the ablation showing why interleaving matters.
    Raises [Invalid_argument] when [rows] is negative or the hotspot list is
    empty with [rows > 0]. *)

type wrapper_risk = {
  hotspot_density_w_um2 : float;  (** power density inside the hotspot *)
  flank_density_before_w_um2 : float;
  flank_density_after_w_um2 : float;
  (** predicted flank density once the evicted cells land there *)
  creates_new_hotspot : bool;
  (** the predicted flank density exceeds the hotspot's own density — the
      wrapper would just move the peak (paper: "pushing cells away could
      increase the power density in the surrounding area and potentially
      making these areas new hotspots") *)
}

val assess_wrapper : Place.Placement.t -> per_cell_w:float array ->
  hotspot:Hotspot.t -> margin_um:float -> wrapper_risk
(** The paper's "careful analysis of the power density map ... before
    applying this method", as a predictive check. *)

val hotspot_wrapper :
  Place.Placement.t -> hotspots:Hotspot.t list -> ?margin_um:float ->
  ?max_hotspot_tiles:int -> ?skip_risky:float array -> unit ->
  Place.Placement.t
(** Wrap each hotspot no larger than [max_hotspot_tiles] (default 100 tiles;
    the method "is not suitable for large hotspots"): the hotspot rectangle
    inflated by [margin_um] (default two row heights) becomes an exclusive
    move bound with a whitespace ring; non-hotspot cells inside it move to
    the flanks and the hot cells are spread evenly over the inner
    rectangle. When [skip_risky] is given (per-cell powers), hotspots whose
    {!assess_wrapper} predicts a new flank hotspot are left untouched. *)
