module T = Netlist.Types

type report = {
  per_cell_w : float array;
  per_cell_dynamic_w : float array;
  per_cell_leakage_w : float array;
  dynamic_w : float;
  leakage_w : float;
}

let total_w r = r.dynamic_w +. r.leakage_w

let sink_pin_cap_ff nl nid =
  Array.fold_left
    (fun acc (cid, _pin) ->
       acc +. (Celllib.Info.get (T.cell nl cid).T.kind).Celllib.Info.input_cap_ff)
    0.0 (T.net nl nid).T.sinks

let compute_gen nl tech ~toggle_rate ~wire_length_um =
  if Array.length toggle_rate <> T.num_nets nl then
    invalid_arg "Power.Model.compute: toggle_rate length mismatch";
  let vdd = tech.Celllib.Tech.vdd_v in
  let f = tech.Celllib.Tech.clock_freq_hz in
  let cw = tech.Celllib.Tech.wire_cap_ff_per_um in
  let n = T.num_cells nl in
  let per_cell = Array.make n 0.0 in
  let per_dyn = Array.make n 0.0 in
  let per_leak = Array.make n 0.0 in
  let dyn = ref 0.0 and leak = ref 0.0 in
  T.iter_cells nl ~f:(fun cid c ->
      let info = Celllib.Info.get c.T.kind in
      let leak_w = info.Celllib.Info.leakage_nw *. 1.0e-9 in
      let alpha = toggle_rate.(c.T.output) in
      let cap_ff =
        info.Celllib.Info.internal_cap_ff
        +. sink_pin_cap_ff nl c.T.output
        +. (cw *. wire_length_um c.T.output)
      in
      let dyn_w = 0.5 *. alpha *. cap_ff *. 1.0e-15 *. vdd *. vdd *. f in
      per_cell.(cid) <- dyn_w +. leak_w;
      per_dyn.(cid) <- dyn_w;
      per_leak.(cid) <- leak_w;
      dyn := !dyn +. dyn_w;
      leak := !leak +. leak_w);
  { per_cell_w = per_cell; per_cell_dynamic_w = per_dyn;
    per_cell_leakage_w = per_leak; dynamic_w = !dyn; leakage_w = !leak }

let compute pl ~toggle_rate =
  let nl = pl.Place.Placement.nl in
  let tech = pl.Place.Placement.fp.Place.Floorplan.tech in
  compute_gen nl tech ~toggle_rate
    ~wire_length_um:(fun nid -> Place.Placement.net_hpwl pl nid)

let compute_without_wires nl tech ~toggle_rate =
  compute_gen nl tech ~toggle_rate ~wire_length_um:(fun _ -> 0.0)

let unit_power_w nl r ~tag =
  T.fold_cells nl ~init:0.0 ~f:(fun acc cid c ->
      if c.T.unit_tag = tag then acc +. r.per_cell_w.(cid) else acc)

let leakage_at_rise tech ~nominal_w ~rise_k =
  nominal_w *. (2.0 ** (rise_k /. tech.Celllib.Tech.leakage_doubling_k))

let per_cell_with_leakage_at tech r ~rise_of_cell =
  Array.init (Array.length r.per_cell_w) (fun cid ->
      r.per_cell_dynamic_w.(cid)
      +. leakage_at_rise tech ~nominal_w:r.per_cell_leakage_w.(cid)
           ~rise_k:(rise_of_cell cid))
