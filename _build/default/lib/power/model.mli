(** Activity-annotated power estimation.

    Per cell, in watts:
    - dynamic: [0.5 * alpha * C * Vdd^2 * f] where [alpha] is the toggle
      rate of the cell's output net, and [C] sums the cell's internal
      equivalent capacitance, the fanout pin capacitances, and an
      HPWL-proportional wire capacitance from the placement;
    - leakage: the library's per-kind static power.

    This mirrors what Power Compiler computes from annotated switching
    activity at this abstraction level. Filler cells consume nothing. *)

type report = {
  per_cell_w : float array;          (** total (dynamic + leakage) per cell *)
  per_cell_dynamic_w : float array;  (** dynamic component per cell *)
  per_cell_leakage_w : float array;  (** nominal-corner leakage per cell *)
  dynamic_w : float;
  leakage_w : float;
}

val total_w : report -> float

val compute : Place.Placement.t -> toggle_rate:float array -> report
(** [compute pl ~toggle_rate] expects [toggle_rate] per net (toggles per
    cycle), e.g. {!Logicsim.Activity.report.toggle_rate} or the density
    engine's estimate. *)

val compute_without_wires : Netlist.Types.t -> Celllib.Tech.t ->
  toggle_rate:float array -> report
(** Placement-independent variant (no wire capacitance) — used before a
    placement exists, and to isolate the wire contribution in tests. *)

val unit_power_w : Netlist.Types.t -> report -> tag:int -> float
(** Aggregate power of one benchmark unit. *)

val leakage_at_rise : Celllib.Tech.t -> nominal_w:float -> rise_k:float ->
  float
(** Subthreshold leakage at a local temperature rise: nominal scaled by
    [2^(rise / leakage_doubling_k)]. *)

val per_cell_with_leakage_at : Celllib.Tech.t -> report ->
  rise_of_cell:(int -> float) -> float array
(** Per-cell total power with leakage re-evaluated at each cell's local
    temperature — one step of the electrothermal feedback loop. *)
