(** Power-density maps: bin per-cell power into the thermal grid tiles.

    A standard cell contributes to every tile its footprint overlaps,
    proportionally to the overlap area — the paper's "power value in a
    thermal cell is the sum of power consumptions in all the standard cells
    that it covers". *)

val power_map : Place.Placement.t -> per_cell_w:float array ->
  nx:int -> ny:int -> Geo.Grid.t
(** Grid over the placement's core; tile values are watts. *)

val density_map : Place.Placement.t -> per_cell_w:float array ->
  nx:int -> ny:int -> Geo.Grid.t
(** Same, in W/µm² (power divided by tile area): the quantity the paper's
    techniques actually reduce. *)
