lib/power/map.mli: Geo Place
