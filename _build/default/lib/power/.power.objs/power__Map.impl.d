lib/power/map.ml: Array Geo Netlist Place
