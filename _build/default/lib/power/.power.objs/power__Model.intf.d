lib/power/model.mli: Celllib Netlist Place
