lib/power/model.ml: Array Celllib Netlist Place
