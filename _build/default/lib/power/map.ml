let power_map pl ~per_cell_w ~nx ~ny =
  let nl = pl.Place.Placement.nl in
  if Array.length per_cell_w <> Netlist.Types.num_cells nl then
    invalid_arg "Power.Map.power_map: per_cell_w length mismatch";
  let core = pl.Place.Placement.fp.Place.Floorplan.core in
  let grid = Geo.Grid.create ~nx ~ny ~extent:core in
  Netlist.Types.iter_cells nl ~f:(fun cid _ ->
      let w = per_cell_w.(cid) in
      if w > 0.0 then
        Geo.Grid.deposit grid (Place.Placement.cell_rect pl cid) w);
  grid

let density_map pl ~per_cell_w ~nx ~ny =
  let grid = power_map pl ~per_cell_w ~nx ~ny in
  let ta = Geo.Grid.tile_area grid in
  Geo.Grid.map grid ~f:(fun w -> w /. ta)
