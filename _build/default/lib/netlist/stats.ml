type t = {
  cells : int;
  nets : int;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  combinational : int;
  total_cell_area_um2 : float;
  max_fanout : int;
  logic_depth : int;
  kind_counts : (Celllib.Kind.t * int) list;
}

(* Longest path in the combinational DAG by dynamic programming over a
   topological order (Kahn); flip-flop outputs and primary inputs are depth-0
   sources, flip-flop D pins are sinks. *)
let logic_depth (nl : Types.t) =
  let n = Types.num_cells nl in
  let indeg = Array.make n 0 in
  let comb_driver = Array.make (Types.num_nets nl) (-1) in
  Types.iter_cells nl ~f:(fun cid c ->
      if not (Celllib.Kind.is_sequential c.Types.kind) then
        comb_driver.(c.Types.output) <- cid);
  let preds_of cid =
    let c = Types.cell nl cid in
    Array.to_list c.Types.inputs
    |> List.filter_map (fun nid ->
        let d = comb_driver.(nid) in
        if d >= 0 then Some d else None)
  in
  let succs = Array.make n [] in
  for cid = 0 to n - 1 do
    List.iter
      (fun p ->
         succs.(p) <- cid :: succs.(p);
         indeg.(cid) <- indeg.(cid) + 1)
      (preds_of cid)
  done;
  let depth = Array.make n 0 in
  let queue = Queue.create () in
  Array.iteri
    (fun cid d ->
       if d = 0 then begin
         depth.(cid) <-
           (if Celllib.Kind.is_sequential (Types.cell nl cid).Types.kind
            then 0 else 1);
         Queue.add cid queue
       end)
    indeg;
  let best = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    if depth.(cid) > !best then best := depth.(cid);
    List.iter
      (fun s ->
         let gate = if Celllib.Kind.is_sequential (Types.cell nl s).Types.kind
           then 0 else 1 in
         if depth.(cid) + gate > depth.(s) then depth.(s) <- depth.(cid) + gate;
         indeg.(s) <- indeg.(s) - 1;
         if indeg.(s) = 0 then Queue.add s queue)
      succs.(cid)
  done;
  !best

let compute tech (nl : Types.t) =
  let module M = Map.Make (struct
      type t = Celllib.Kind.t
      let compare = Celllib.Kind.compare
    end) in
  let counts = ref M.empty in
  let area = ref 0.0 in
  let ffs = ref 0 in
  Types.iter_cells nl ~f:(fun _ c ->
      let k = c.Types.kind in
      counts := M.update k (function None -> Some 1 | Some n -> Some (n + 1))
          !counts;
      area := !area +. Celllib.Info.area_um2 tech k;
      if Celllib.Kind.is_sequential k then incr ffs);
  let max_fanout = ref 0 in
  Types.iter_nets nl ~f:(fun _ n ->
      max_fanout := max !max_fanout (Array.length n.Types.sinks));
  { cells = Types.num_cells nl;
    nets = Types.num_nets nl;
    primary_inputs = Types.num_primary_inputs nl;
    primary_outputs = Types.num_primary_outputs nl;
    flip_flops = !ffs;
    combinational = Types.num_cells nl - !ffs;
    total_cell_area_um2 = !area;
    max_fanout = !max_fanout;
    logic_depth = logic_depth nl;
    kind_counts = M.bindings !counts }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cells: %d (%d comb, %d ff)@,nets: %d@,PIs: %d, POs: %d@,\
     cell area: %.1f um^2@,max fanout: %d@,logic depth: %d@,kinds:@,"
    t.cells t.combinational t.flip_flops t.nets t.primary_inputs
    t.primary_outputs t.total_cell_area_um2 t.max_fanout t.logic_depth;
  List.iter
    (fun (k, n) ->
       Format.fprintf ppf "  %-8s %6d@," (Celllib.Kind.name k) n)
    t.kind_counts;
  Format.fprintf ppf "@]"
