(** Summary statistics of a netlist (sizes, composition, logic depth). *)

type t = {
  cells : int;
  nets : int;
  primary_inputs : int;
  primary_outputs : int;
  flip_flops : int;
  combinational : int;
  total_cell_area_um2 : float;
  max_fanout : int;
  logic_depth : int;  (** longest combinational path, in gate counts *)
  kind_counts : (Celllib.Kind.t * int) list;  (** sorted by kind *)
}

val compute : Celllib.Tech.t -> Types.t -> t

val logic_depth : Types.t -> int
(** Longest register-to-register / input-to-register combinational chain,
    counted in gates. *)

val pp : Format.formatter -> t -> unit
