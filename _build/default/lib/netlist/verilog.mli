(** Structural Verilog export.

    Writes a gate-level netlist as a flat Verilog-2001 module over the
    synthetic library's cell names, so a design built here can be inspected
    with standard tools (or read into an open-source flow). The clock pin
    of flip-flops is wired to a top-level [clk] port. *)

val cell_module_name : Celllib.Kind.t -> string
(** Verilog module name used for a library cell (e.g. ["NAND2_X1"]). *)

val port_names : Celllib.Kind.t -> string list
(** Input port names of a kind, in pin order (["a"; "b"; ...]); flip-flops
    additionally have ["ck"] wired to the global clock. *)

val to_channel : out_channel -> ?module_name:string -> Types.t -> unit

val to_string : ?module_name:string -> Types.t -> string
(** The whole module as a string (tests and small designs). *)

val write_file : string -> ?module_name:string -> Types.t -> unit
