type issue =
  | Arity_mismatch of Types.cell_id
  | Driver_inconsistent of Types.net_id
  | Dangling_net of Types.net_id
  | Floating_net of Types.net_id

let pp_issue ppf = function
  | Arity_mismatch id -> Format.fprintf ppf "cell %d: arity mismatch" id
  | Driver_inconsistent id -> Format.fprintf ppf "net %d: driver inconsistent" id
  | Dangling_net id -> Format.fprintf ppf "net %d: dangling" id
  | Floating_net id -> Format.fprintf ppf "net %d: floating (no sinks)" id

let run (nl : Types.t) =
  let issues = ref [] in
  let report i = issues := i :: !issues in
  Types.iter_cells nl ~f:(fun cid c ->
      if Array.length c.Types.inputs <> Celllib.Kind.num_inputs c.Types.kind
      then report (Arity_mismatch cid));
  let is_po = Array.make (Types.num_nets nl) false in
  Array.iter (fun nid -> is_po.(nid) <- true) nl.Types.primary_outputs;
  Types.iter_nets nl ~f:(fun nid n ->
      begin match n.Types.driver with
      | Types.Cell_output cid ->
        if cid < 0 || cid >= Types.num_cells nl
        || (Types.cell nl cid).Types.output <> nid
        then report (Driver_inconsistent nid)
      | Types.Primary_input k ->
        if k < 0 || k >= Types.num_primary_inputs nl
        || nl.Types.primary_inputs.(k) <> nid
        then report (Driver_inconsistent nid)
      | Types.Constant _ -> ()
      end;
      let floating =
        Array.length n.Types.sinks = 0 && not is_po.(nid)
        && (match n.Types.driver with Types.Constant _ -> false | _ -> true)
      in
      if floating then report (Floating_net nid));
  List.rev !issues

let is_well_formed nl =
  List.for_all
    (function
      | Floating_net _ -> true
      | Arity_mismatch _ | Driver_inconsistent _ | Dangling_net _ -> false)
    (run nl)
