type pending_net = {
  mutable p_name : string;
  mutable p_driver : Types.driver option;
}

type t = {
  mutable cells : Types.cell array;
  mutable n_cells : int;
  mutable nets : pending_net array;
  mutable n_nets : int;
  mutable pis : Types.net_id list;   (* reversed *)
  mutable pi_tags : int list;        (* reversed, aligned with pis *)
  mutable pos : Types.net_id list;   (* reversed *)
  mutable tag : int;
  mutable const_true : Types.net_id option;
  mutable const_false : Types.net_id option;
}

let dummy_cell : Types.cell =
  { kind = Celllib.Kind.Inv; cell_name = ""; inputs = [||]; output = 0;
    unit_tag = -1 }

let create () =
  { cells = Array.make 64 dummy_cell; n_cells = 0;
    nets = [||]; n_nets = 0;
    pis = []; pi_tags = []; pos = []; tag = -1;
    const_true = None; const_false = None }

let set_unit_tag t tag = t.tag <- tag
let current_unit_tag t = t.tag

let grow_cells t =
  if t.n_cells = Array.length t.cells then begin
    let bigger = Array.make (2 * max 1 (Array.length t.cells)) dummy_cell in
    Array.blit t.cells 0 bigger 0 t.n_cells;
    t.cells <- bigger
  end

let grow_nets t =
  if t.n_nets = Array.length t.nets then begin
    let fresh = Array.init (2 * max 64 (Array.length t.nets))
        (fun _ -> { p_name = ""; p_driver = None }) in
    Array.blit t.nets 0 fresh 0 t.n_nets;
    t.nets <- fresh
  end

let fresh_net t name =
  grow_nets t;
  let id = t.n_nets in
  t.nets.(id) <- { p_name = name; p_driver = None };
  t.n_nets <- id + 1;
  id

let add_input ?name t =
  let id = fresh_net t "" in
  let name = match name with Some n -> n | None -> Printf.sprintf "pi%d" id in
  t.nets.(id).p_name <- name;
  t.nets.(id).p_driver <- Some (Types.Primary_input (List.length t.pis));
  t.pis <- id :: t.pis;
  t.pi_tags <- t.tag :: t.pi_tags;
  id

let add_constant t value =
  let cached = if value then t.const_true else t.const_false in
  match cached with
  | Some id -> id
  | None ->
    let id = fresh_net t (if value then "const1" else "const0") in
    t.nets.(id).p_driver <- Some (Types.Constant value);
    if value then t.const_true <- Some id else t.const_false <- Some id;
    id

let check_net_exists t ctx id =
  if id < 0 || id >= t.n_nets then
    invalid_arg (Printf.sprintf "Builder.%s: dangling net id %d" ctx id)

let add_cell_unchecked t kind name inputs =
  grow_cells t;
  let cid = t.n_cells in
  let out = fresh_net t "" in
  let name =
    match name with Some n -> n | None ->
      Printf.sprintf "u%d_%s" cid (Celllib.Kind.name kind)
  in
  t.nets.(out).p_name <- name ^ "_o";
  t.nets.(out).p_driver <- Some (Types.Cell_output cid);
  t.cells.(cid) <-
    { Types.kind; cell_name = name; inputs = Array.copy inputs;
      output = out; unit_tag = t.tag };
  t.n_cells <- cid + 1;
  out

let add_cell t kind name inputs =
  Array.iter (check_net_exists t "add_cell") inputs;
  add_cell_unchecked t kind name inputs

let add_gate ?name t kind inputs =
  if Celllib.Kind.is_sequential kind then
    invalid_arg "Builder.add_gate: use add_dff for sequential cells";
  if Celllib.Kind.is_filler kind then
    invalid_arg "Builder.add_gate: fillers are placement-only objects";
  if Array.length inputs <> Celllib.Kind.num_inputs kind then
    invalid_arg
      (Printf.sprintf "Builder.add_gate %s: expected %d inputs, got %d"
         (Celllib.Kind.name kind) (Celllib.Kind.num_inputs kind)
         (Array.length inputs));
  add_cell t kind name inputs

let add_dff ?name t ~d =
  check_net_exists t "add_dff" d;
  add_cell t Celllib.Kind.Dff name [| d |]

let add_dff_feedback ?name t =
  let q = add_cell_unchecked t Celllib.Kind.Dff name [| -1 |] in
  let cid = t.n_cells - 1 in
  let connected = ref false in
  let connect d =
    if !connected then
      invalid_arg "Builder.add_dff_feedback: D already connected";
    check_net_exists t "add_dff_feedback" d;
    (t.cells.(cid)).Types.inputs.(0) <- d;
    connected := true
  in
  (q, connect)

let mark_output t id =
  check_net_exists t "mark_output" id;
  if not (List.mem id t.pos) then t.pos <- id :: t.pos

let num_cells t = t.n_cells
let num_nets t = t.n_nets

(* Kahn topological check over the combinational graph: an edge goes from a
   cell's input net driver to the cell, but flip-flop outputs are sources. *)
let check_acyclic (cells : Types.cell array) n_nets =
  let n = Array.length cells in
  let indeg = Array.make n 0 in
  let net_driver = Array.make n_nets (-1) in
  Array.iteri
    (fun cid (c : Types.cell) ->
       if not (Celllib.Kind.is_sequential c.kind) then
         net_driver.(c.output) <- cid)
    cells;
  let succs = Array.make n [] in
  Array.iteri
    (fun cid (c : Types.cell) ->
       Array.iter
         (fun nid ->
            let src = net_driver.(nid) in
            if src >= 0 then begin
              succs.(src) <- cid :: succs.(src);
              indeg.(cid) <- indeg.(cid) + 1
            end)
         c.inputs)
    cells;
  let queue = Queue.create () in
  Array.iteri (fun cid d -> if d = 0 then Queue.add cid queue) indeg;
  let visited = ref 0 in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    incr visited;
    List.iter
      (fun s ->
         indeg.(s) <- indeg.(s) - 1;
         if indeg.(s) = 0 then Queue.add s queue)
      succs.(cid)
  done;
  if !visited <> n then failwith "Builder.finish: combinational cycle detected"

let finish t =
  let cells = Array.sub t.cells 0 t.n_cells in
  Array.iteri
    (fun cid (c : Types.cell) ->
       Array.iter
         (fun nid ->
            if nid < 0 then
              failwith
                (Printf.sprintf
                   "Builder.finish: cell %d (%s) has an unconnected pin"
                   cid c.Types.cell_name))
         c.Types.inputs)
    cells;
  let sink_lists = Array.make t.n_nets [] in
  Array.iteri
    (fun cid (c : Types.cell) ->
       Array.iteri
         (fun pin nid -> sink_lists.(nid) <- (cid, pin) :: sink_lists.(nid))
         c.inputs)
    cells;
  let nets =
    Array.init t.n_nets (fun nid ->
        let p = t.nets.(nid) in
        let driver =
          match p.p_driver with
          | Some d -> d
          | None ->
            failwith (Printf.sprintf "Builder.finish: net %d (%s) undriven"
                        nid p.p_name)
        in
        { Types.net_name = p.p_name; driver;
          sinks = Array.of_list (List.rev sink_lists.(nid)) })
  in
  check_acyclic cells t.n_nets;
  { Types.cells; nets;
    primary_inputs = Array.of_list (List.rev t.pis);
    primary_outputs = Array.of_list (List.rev t.pos);
    pi_tags = Array.of_list (List.rev t.pi_tags) }
