(** Gate-level netlist representation.

    Cells and nets are stored in flat arrays and referenced by dense integer
    ids, which keeps the simulator, placer and thermal binning cache-friendly
    at the benchmark's ~12k-cell scale.

    Modelling conventions:
    - every logic cell drives exactly one net (multi-output macros such as a
      full adder are decomposed into library gates by the generators);
    - the clock network is implicit: [Dff] cells are clocked by a global
      clock that is not represented as a net;
    - a net has exactly one driver: a cell output, a primary input, or a
      constant. *)

type cell_id = int
type net_id = int

type driver =
  | Primary_input of int  (** index into [primary_inputs] *)
  | Cell_output of cell_id
  | Constant of bool

type cell = {
  kind : Celllib.Kind.t;
  cell_name : string;
  inputs : net_id array;   (** length equals [Kind.num_inputs kind] *)
  output : net_id;         (** the net this cell drives *)
  unit_tag : int;          (** benchmark unit this cell belongs to; -1 = none *)
}

type net = {
  net_name : string;
  driver : driver;
  sinks : (cell_id * int) array;  (** fanout as (cell, input-pin index) *)
}

type t = {
  cells : cell array;
  nets : net array;
  primary_inputs : net_id array;
  primary_outputs : net_id array;
  pi_tags : int array;  (** unit tag of each primary input, aligned *)
}

val num_cells : t -> int
val num_nets : t -> int
val num_primary_inputs : t -> int
val num_primary_outputs : t -> int

val cell : t -> cell_id -> cell
val net : t -> net_id -> net

val fanout : t -> net_id -> int

val cells_of_unit : t -> int -> cell_id list
(** All cell ids carrying a given unit tag, in id order. *)

val unit_tags : t -> int list
(** Sorted list of distinct unit tags (excluding -1). *)

val fold_cells : t -> init:'a -> f:('a -> cell_id -> cell -> 'a) -> 'a
val iter_cells : t -> f:(cell_id -> cell -> unit) -> unit
val iter_nets : t -> f:(net_id -> net -> unit) -> unit
