type cell_id = int
type net_id = int

type driver =
  | Primary_input of int
  | Cell_output of cell_id
  | Constant of bool

type cell = {
  kind : Celllib.Kind.t;
  cell_name : string;
  inputs : net_id array;
  output : net_id;
  unit_tag : int;
}

type net = {
  net_name : string;
  driver : driver;
  sinks : (cell_id * int) array;
}

type t = {
  cells : cell array;
  nets : net array;
  primary_inputs : net_id array;
  primary_outputs : net_id array;
  pi_tags : int array;
}

let num_cells t = Array.length t.cells
let num_nets t = Array.length t.nets
let num_primary_inputs t = Array.length t.primary_inputs
let num_primary_outputs t = Array.length t.primary_outputs

let cell t id = t.cells.(id)
let net t id = t.nets.(id)

let fanout t id = Array.length t.nets.(id).sinks

let cells_of_unit t tag =
  let acc = ref [] in
  for id = Array.length t.cells - 1 downto 0 do
    if t.cells.(id).unit_tag = tag then acc := id :: !acc
  done;
  !acc

let unit_tags t =
  let module S = Set.Make (Int) in
  let s =
    Array.fold_left
      (fun s c -> if c.unit_tag >= 0 then S.add c.unit_tag s else s)
      S.empty t.cells
  in
  S.elements s

let fold_cells t ~init ~f =
  let acc = ref init in
  Array.iteri (fun id c -> acc := f !acc id c) t.cells;
  !acc

let iter_cells t ~f = Array.iteri f t.cells
let iter_nets t ~f = Array.iteri f t.nets
