lib/netlist/verilog.ml: Array Buffer Celllib List Printf String Types
