lib/netlist/types.ml: Array Celllib Int Set
