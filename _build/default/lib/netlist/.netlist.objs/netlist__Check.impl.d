lib/netlist/check.ml: Array Celllib Format List Types
