lib/netlist/types.mli: Celllib
