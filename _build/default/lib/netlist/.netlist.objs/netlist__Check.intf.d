lib/netlist/check.mli: Format Types
