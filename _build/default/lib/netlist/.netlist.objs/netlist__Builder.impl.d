lib/netlist/builder.ml: Array Celllib List Printf Queue Types
