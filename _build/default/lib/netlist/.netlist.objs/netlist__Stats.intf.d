lib/netlist/stats.mli: Celllib Format Types
