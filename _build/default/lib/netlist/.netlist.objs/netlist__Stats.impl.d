lib/netlist/stats.ml: Array Celllib Format List Map Queue Types
