lib/netlist/builder.mli: Celllib Types
