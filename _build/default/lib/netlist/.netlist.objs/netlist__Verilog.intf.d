lib/netlist/verilog.mli: Celllib Types
