(** Structural sanity checks over a frozen netlist. *)

type issue =
  | Arity_mismatch of Types.cell_id
  | Driver_inconsistent of Types.net_id
  | Dangling_net of Types.net_id   (** no driver reference resolves back *)
  | Floating_net of Types.net_id   (** no sinks and not a primary output *)

val pp_issue : Format.formatter -> issue -> unit

val run : Types.t -> issue list
(** All detected issues; the empty list means the netlist is well-formed.
    [Floating_net] is a warning-grade issue (a generator may legitimately
    leave an unused carry-out), the others indicate corruption. *)

val is_well_formed : Types.t -> bool
(** No corruption-grade issues (floating nets are tolerated). *)
