(** Imperative netlist construction.

    Generators create primary inputs and gates through a builder; [finish]
    freezes everything into an immutable {!Types.t} with fanout (sink) lists
    computed and structural invariants checked. *)

type t

val create : unit -> t

val set_unit_tag : t -> int -> unit
(** Tag attached to every cell and primary input created from now on;
    -1 (the initial value) means untagged. *)

val current_unit_tag : t -> int

val add_input : ?name:string -> t -> Types.net_id
(** Fresh primary input net. *)

val add_constant : t -> bool -> Types.net_id
(** Constant-driven net (deduplicated: at most one net per polarity). *)

val add_gate : ?name:string -> t -> Celllib.Kind.t -> Types.net_id array ->
  Types.net_id
(** [add_gate t kind inputs] instantiates a combinational gate and returns
    the net it drives. Raises [Invalid_argument] on arity mismatch, on
    sequential or filler kinds, or on dangling input ids. *)

val add_dff : ?name:string -> t -> d:Types.net_id -> Types.net_id
(** Instantiate a flip-flop; returns its Q net. *)

val add_dff_feedback : ?name:string -> t ->
  Types.net_id * (Types.net_id -> unit)
(** Flip-flop whose D pin is wired later: returns the Q net immediately and
    a one-shot connector for D. Needed for register feedback loops
    (accumulators); [finish] fails if any D is left unconnected. *)

val mark_output : t -> Types.net_id -> unit
(** Declare a net as a primary output (idempotent). *)

val num_cells : t -> int
val num_nets : t -> int

val finish : t -> Types.t
(** Freeze. Raises [Failure] if any net other than constants is undriven or
    if a combinational cycle exists (cycles through flip-flops are fine). *)
