type net = Netlist.Types.net_id

let check a b =
  if Array.length a <> Array.length b || Array.length a = 0 then
    invalid_arg "Comparator: bus width mismatch"

let equal t ~a ~b =
  check a b;
  let eqs = Array.init (Array.length a) (fun i -> Prim.xnor2 t a.(i) b.(i)) in
  Prim.and_reduce t eqs

(* From the MSB down: lt = (not a_i and b_i) or (eq_i and lt_below). *)
let less_than t ~a ~b =
  check a b;
  let n = Array.length a in
  let zero = Netlist.Builder.add_constant t false in
  let lt = ref zero in
  for i = 0 to n - 1 do
    let bit_lt = Prim.and2 t (Prim.inv t a.(i)) b.(i) in
    let bit_eq = Prim.xnor2 t a.(i) b.(i) in
    lt := Prim.or2 t bit_lt (Prim.and2 t bit_eq !lt)
  done;
  !lt

let compare_full t ~a ~b =
  check a b;
  let lt = less_than t ~a ~b in
  let eq = equal t ~a ~b in
  let gt = Prim.nor2 t lt eq in
  (lt, eq, gt)
