lib/netgen/prim.mli: Netlist
