lib/netgen/benchmark.ml: Adder Alu Array Comparator Divider List Mac Multiplier Netlist Prim Printf Shifter
