lib/netgen/multiplier.mli: Netlist
