lib/netgen/seq.mli: Netlist
