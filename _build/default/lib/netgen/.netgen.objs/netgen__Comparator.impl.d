lib/netgen/comparator.ml: Array Netlist Prim
