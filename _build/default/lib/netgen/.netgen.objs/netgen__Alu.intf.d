lib/netgen/alu.mli: Netlist
