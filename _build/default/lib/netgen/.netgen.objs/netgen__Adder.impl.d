lib/netgen/adder.ml: Array Netlist Prim Printf
