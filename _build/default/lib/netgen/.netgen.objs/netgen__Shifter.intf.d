lib/netgen/shifter.mli: Netlist
