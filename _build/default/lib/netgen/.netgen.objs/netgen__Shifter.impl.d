lib/netgen/shifter.ml: Array Netlist Prim
