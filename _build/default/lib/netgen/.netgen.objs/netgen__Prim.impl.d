lib/netgen/prim.ml: Array Celllib Netlist Printf
