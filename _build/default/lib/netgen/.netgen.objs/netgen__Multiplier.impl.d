lib/netgen/multiplier.ml: Adder Array List Netlist Prim
