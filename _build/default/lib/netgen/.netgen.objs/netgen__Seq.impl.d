lib/netgen/seq.ml: Array List Netlist Prim
