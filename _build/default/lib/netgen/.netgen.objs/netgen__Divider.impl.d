lib/netgen/divider.ml: Array Netlist Prim
