lib/netgen/divider.mli: Netlist
