lib/netgen/comparator.mli: Netlist
