lib/netgen/mac.ml: Adder Array Multiplier Netlist
