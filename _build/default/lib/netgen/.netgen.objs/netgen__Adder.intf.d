lib/netgen/adder.mli: Netlist
