lib/netgen/benchmark.mli: Netlist
