lib/netgen/alu.ml: Adder Array Netlist Prim
