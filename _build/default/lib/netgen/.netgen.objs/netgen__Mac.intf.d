lib/netgen/mac.mli: Netlist
