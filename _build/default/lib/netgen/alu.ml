type net = Netlist.Types.net_id

type op_select = { op0 : net; op1 : net }

let alu t ~a ~b ~op =
  if Array.length a <> Array.length b || Array.length a = 0 then
    invalid_arg "Alu.alu: bus width mismatch";
  let zero = Netlist.Builder.add_constant t false in
  let add_sum, add_c = Adder.carry_lookahead t ~a ~b ~cin:zero in
  let sub_sum, sub_c = Adder.subtractor t ~a ~b in
  let ands = Array.init (Array.length a) (fun i -> Prim.and2 t a.(i) b.(i)) in
  let xors = Array.init (Array.length a) (fun i -> Prim.xor2 t a.(i) b.(i)) in
  let arith = Prim.mux2_bus t ~a:add_sum ~b:sub_sum ~sel:op.op0 in
  let logic = Prim.mux2_bus t ~a:ands ~b:xors ~sel:op.op0 in
  let result = Prim.mux2_bus t ~a:arith ~b:logic ~sel:op.op1 in
  let flag = Prim.mux2 t ~a:add_c ~b:sub_c ~sel:op.op0 in
  let flag = Prim.mux2 t ~a:flag ~b:zero ~sel:op.op1 in
  (result, flag)
