(** Unsigned array divider (non-restoring style, controlled add/subtract). *)

type net = Netlist.Types.net_id

val array_divider : Netlist.Builder.t -> dividend:net array ->
  divisor:net array -> net array * net array
(** [array_divider t ~dividend ~divisor] returns [(quotient, remainder)] for
    unsigned operands; [|quotient| = |dividend|], [|remainder| = |divisor|].
    Built from rows of controlled add/subtract cells, the classic dense
    arithmetic array. *)
