(** Sequential building blocks: LFSRs and counters.

    These exercise the builder's flip-flop feedback mechanism and give the
    benchmark generator sequential stimulus sources whose activity is
    self-sustaining (no primary-input workload needed). *)

type net = Netlist.Types.net_id

val xnor_lfsr : Netlist.Builder.t -> width:int -> taps:int list -> net array
(** Fibonacci linear-feedback shift register with an XNOR feedback (so the
    all-zero power-up state is a valid sequence state). Returns the
    register outputs, index 0 = the bit receiving the feedback. [taps] are
    bit indices into the register (all < [width]); with maximal-length taps
    the sequence period is [2^width - 1]. *)

val counter : Netlist.Builder.t -> width:int -> enable:net -> net array
(** Binary up-counter: increments by one each cycle while [enable] is 1.
    Returns the count bits, LSB first. *)

val gray_encode : Netlist.Builder.t -> net array -> net array
(** Combinational binary-to-Gray conversion ([g_i = b_i xor b_{i+1}]). *)
