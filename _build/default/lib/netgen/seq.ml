type net = Netlist.Types.net_id

module B = Netlist.Builder

let xnor_lfsr t ~width ~taps =
  if width <= 0 then invalid_arg "Seq.xnor_lfsr: width <= 0";
  if taps = [] || List.exists (fun i -> i < 0 || i >= width) taps then
    invalid_arg "Seq.xnor_lfsr: bad taps";
  let banks = Array.init width (fun _ -> B.add_dff_feedback t) in
  let q = Array.map fst banks in
  (* shift: bit i captures bit i-1; bit 0 captures the XNOR feedback *)
  let tap_nets = List.map (fun i -> q.(i)) taps in
  let feedback =
    match tap_nets with
    | [ only ] -> Prim.inv t only
    | first :: rest ->
      (* xnor-reduce: invert the xor-reduction *)
      Prim.inv t (List.fold_left (fun acc n -> Prim.xor2 t acc n) first rest)
    | [] -> assert false
  in
  Array.iteri
    (fun i (_, connect) ->
       if i = 0 then connect feedback else connect q.(i - 1))
    banks;
  q

let counter t ~width ~enable =
  if width <= 0 then invalid_arg "Seq.counter: width <= 0";
  let banks = Array.init width (fun _ -> B.add_dff_feedback t) in
  let q = Array.map fst banks in
  (* ripple increment: d_i = q_i xor carry_i, carry_{i+1} = q_i and carry_i *)
  let carry = ref enable in
  Array.iteri
    (fun i (_, connect) ->
       let d = Prim.xor2 t q.(i) !carry in
       carry := Prim.and2 t q.(i) !carry;
       connect d)
    banks;
  q

let gray_encode t bus =
  let n = Array.length bus in
  if n = 0 then invalid_arg "Seq.gray_encode: empty bus";
  Array.init n (fun i ->
      if i = n - 1 then Prim.buf t bus.(i)
      else Prim.xor2 t bus.(i) bus.(i + 1))
