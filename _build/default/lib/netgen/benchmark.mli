(** The paper's synthetic benchmark: nine arithmetic units of various sizes
    (~12k standard cells), each tagged so that workloads can control the
    size and position of hotspots. *)

type unit_info = {
  tag : int;            (** dense id, also the index into [units] *)
  unit_name : string;
  description : string;
}

type t = {
  netlist : Netlist.Types.t;
  units : unit_info array;
}

val nine_unit : unit -> t
(** The full benchmark: two 16x16 multipliers (array and Wallace), a 20x20
    multiplier, a 16-bit MAC, a 16/16 divider, a 32-bit ALU, a 64-bit
    carry-select adder, a 32-bit barrel-shift unit and a comparator bank.
    Unit inputs and outputs are registered, mimicking a synthesized
    pipelined datapath. *)

val small : unit -> t
(** A three-unit miniature (a few hundred cells) for fast tests: 4x4
    multiplier, 8-bit ripple adder, 8-bit comparator. *)

val unit_of_cell : t -> Netlist.Types.cell_id -> unit_info option
(** Owning unit of a cell, when the cell is tagged. *)
