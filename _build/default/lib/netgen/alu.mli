(** A small load/logic/arithmetic ALU used as one benchmark unit. *)

type net = Netlist.Types.net_id

type op_select = { op0 : net; op1 : net }
(** 2-bit operation code: 00 add, 01 subtract, 10 bitwise and, 11 bitwise
    xor. *)

val alu : Netlist.Builder.t -> a:net array -> b:net array -> op:op_select ->
  net array * net
(** Result bus and the carry/borrow flag (meaningful for 00/01). *)
