(** Adder generators. Buses are LSB-first; widths must match. *)

type net = Netlist.Types.net_id

val ripple_carry : Netlist.Builder.t -> a:net array -> b:net array ->
  cin:net -> net array * net
(** Classic ripple-carry chain; returns [(sum, carry_out)]. *)

val carry_lookahead : Netlist.Builder.t -> a:net array -> b:net array ->
  cin:net -> net array * net
(** 4-bit-group carry-lookahead adder: faster carry chain, more gates. *)

val carry_select : Netlist.Builder.t -> a:net array -> b:net array ->
  cin:net -> group:int -> net array * net
(** Carry-select with fixed [group] size (> 0); duplicates per-group ripple
    adders for both carry assumptions and muxes the result. *)

val subtractor : Netlist.Builder.t -> a:net array -> b:net array ->
  net array * net
(** Two's-complement [a - b] via inverted [b] and carry-in 1; the second
    component is the borrow-free flag (carry out). *)
