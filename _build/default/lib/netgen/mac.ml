type net = Netlist.Types.net_id

(* acc <= acc + a*b each cycle: the feedback loop is cut by the accumulator
   flip-flops, created with forward-wired D pins. *)
let mac t ~a ~b ~acc_width =
  let pw = Array.length a + Array.length b in
  if acc_width < pw then invalid_arg "Mac.mac: accumulator too narrow";
  let product = Multiplier.array_multiplier t ~a ~b in
  let zero = Netlist.Builder.add_constant t false in
  let product_ext = Array.make acc_width zero in
  Array.blit product 0 product_ext 0 pw;
  let banks =
    Array.init acc_width (fun _ -> Netlist.Builder.add_dff_feedback t)
  in
  let acc_q = Array.map fst banks in
  let sum, _carry =
    Adder.ripple_carry t ~a:product_ext ~b:acc_q ~cin:zero in
  Array.iteri (fun i (_, connect) -> connect sum.(i)) banks;
  acc_q
