(** Unsigned combinational multiplier generators. *)

type net = Netlist.Types.net_id

val array_multiplier : Netlist.Builder.t -> a:net array -> b:net array ->
  net array
(** Carry-save array multiplier; result width is [|a| + |b|]. This is the
    densest unit of the benchmark and the natural hotspot source. *)

val wallace_multiplier : Netlist.Builder.t -> a:net array -> b:net array ->
  net array
(** Wallace-tree reduction of the partial products followed by a final
    ripple adder; same function, different physical structure. *)
