type unit_info = {
  tag : int;
  unit_name : string;
  description : string;
}

type t = {
  netlist : Netlist.Types.t;
  units : unit_info array;
}

module B = Netlist.Builder

let registered_inputs t ~prefix ~width =
  Prim.register_bus t (Prim.inputs t ~prefix ~width)

let finish_unit t outputs =
  let regs = Prim.register_bus t outputs in
  Prim.outputs t regs

let gen_mul_array t ~width =
  let a = registered_inputs t ~prefix:"ma" ~width in
  let b = registered_inputs t ~prefix:"mb" ~width in
  finish_unit t (Multiplier.array_multiplier t ~a ~b)

let gen_mul_wallace t ~width =
  let a = registered_inputs t ~prefix:"wa" ~width in
  let b = registered_inputs t ~prefix:"wb" ~width in
  finish_unit t (Multiplier.wallace_multiplier t ~a ~b)

let gen_mac t ~width =
  let a = registered_inputs t ~prefix:"xa" ~width in
  let b = registered_inputs t ~prefix:"xb" ~width in
  let acc = Mac.mac t ~a ~b ~acc_width:((2 * width) + 8) in
  Prim.outputs t acc

let gen_div t ~width =
  let dividend = registered_inputs t ~prefix:"dn" ~width in
  let divisor = registered_inputs t ~prefix:"dd" ~width in
  let q, r = Divider.array_divider t ~dividend ~divisor in
  finish_unit t (Array.append q r)

let gen_alu t ~width =
  let a = registered_inputs t ~prefix:"aa" ~width in
  let b = registered_inputs t ~prefix:"ab" ~width in
  let op0 = B.add_input ~name:"aop0" t and op1 = B.add_input ~name:"aop1" t in
  let result, flag = Alu.alu t ~a ~b ~op:{ Alu.op0; op1 } in
  finish_unit t (Array.append result [| flag |])

let gen_adder t ~width =
  let a = registered_inputs t ~prefix:"sa" ~width in
  let b = registered_inputs t ~prefix:"sb" ~width in
  let zero = B.add_constant t false in
  let sum, cout = Adder.carry_select t ~a ~b ~cin:zero ~group:8 in
  finish_unit t (Array.append sum [| cout |])

let gen_shift t ~width =
  let data = registered_inputs t ~prefix:"ha" ~width in
  let log2w =
    let rec go k = if 1 lsl k >= width then k else go (k + 1) in
    go 1
  in
  let amount = registered_inputs t ~prefix:"hs" ~width:log2w in
  let right = Shifter.barrel_right t ~data ~amount in
  let rot = Shifter.rotate_left t ~data ~amount in
  let mixed = Array.init width (fun i -> Prim.xor2 t right.(i) rot.(i)) in
  finish_unit t mixed

let gen_cmp t ~width ~pairs =
  let outs = ref [] in
  for p = 0 to pairs - 1 do
    let a = registered_inputs t ~prefix:(Printf.sprintf "c%da" p) ~width in
    let b = registered_inputs t ~prefix:(Printf.sprintf "c%db" p) ~width in
    let lt, eq, gt = Comparator.compare_full t ~a ~b in
    outs := gt :: eq :: lt :: !outs
  done;
  finish_unit t (Array.of_list (List.rev !outs))

let build units =
  let t = B.create () in
  let infos =
    List.mapi
      (fun tag (unit_name, description, gen) ->
         B.set_unit_tag t tag;
         gen t;
         { tag; unit_name; description })
      units
  in
  B.set_unit_tag t (-1);
  { netlist = B.finish t; units = Array.of_list infos }

let nine_unit () =
  build
    [ ("mul16a", "16x16 array multiplier", fun t -> gen_mul_array t ~width:16);
      ("mul16b", "16x16 Wallace multiplier",
       fun t -> gen_mul_wallace t ~width:16);
      ("mul20", "20x20 array multiplier", fun t -> gen_mul_array t ~width:20);
      ("mac16", "16-bit multiply-accumulate", fun t -> gen_mac t ~width:16);
      ("div16", "16/16 restoring array divider", fun t -> gen_div t ~width:16);
      ("alu32", "32-bit add/sub/and/xor ALU", fun t -> gen_alu t ~width:32);
      ("add64", "64-bit carry-select adder", fun t -> gen_adder t ~width:64);
      ("shift32", "32-bit barrel shift/rotate unit",
       fun t -> gen_shift t ~width:32);
      ("cmp32", "two 32-bit magnitude comparators",
       fun t -> gen_cmp t ~width:32 ~pairs:2) ]

let small () =
  build
    [ ("mul4", "4x4 array multiplier", fun t -> gen_mul_array t ~width:4);
      ("add8", "8-bit carry-lookahead adder",
       fun t ->
         let a = registered_inputs t ~prefix:"sa" ~width:8 in
         let b = registered_inputs t ~prefix:"sb" ~width:8 in
         let zero = B.add_constant t false in
         let sum, c = Adder.carry_lookahead t ~a ~b ~cin:zero in
         finish_unit t (Array.append sum [| c |]));
      ("cmp8", "8-bit comparator", fun t -> gen_cmp t ~width:8 ~pairs:1) ]

let unit_of_cell t cid =
  let tag = (Netlist.Types.cell t.netlist cid).Netlist.Types.unit_tag in
  if tag >= 0 && tag < Array.length t.units then Some t.units.(tag) else None
