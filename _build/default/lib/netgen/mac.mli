(** Pipelined multiply-accumulate unit (the classic DSP hotspot). *)

type net = Netlist.Types.net_id

val mac : Netlist.Builder.t -> a:net array -> b:net array ->
  acc_width:int -> net array
(** [mac t ~a ~b ~acc_width] multiplies [a * b] each cycle and adds the
    product into a registered accumulator of [acc_width] bits (must be at
    least [|a| + |b|]); returns the accumulator outputs (Q pins). *)
