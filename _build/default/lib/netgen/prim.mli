(** Gate-level building blocks shared by the arithmetic generators.

    All functions instantiate library gates through a {!Netlist.Builder.t}
    and return the driven nets. Buses are [net_id array]s with index 0 as
    the least-significant bit. *)

type net = Netlist.Types.net_id

val inv : Netlist.Builder.t -> net -> net
val buf : Netlist.Builder.t -> net -> net
val and2 : Netlist.Builder.t -> net -> net -> net
val or2 : Netlist.Builder.t -> net -> net -> net
val xor2 : Netlist.Builder.t -> net -> net -> net
val xnor2 : Netlist.Builder.t -> net -> net -> net
val nand2 : Netlist.Builder.t -> net -> net -> net
val nor2 : Netlist.Builder.t -> net -> net -> net
val mux2 : Netlist.Builder.t -> a:net -> b:net -> sel:net -> net
(** [mux2 ~a ~b ~sel] is [a] when [sel]=0, [b] when [sel]=1. *)

val half_adder : Netlist.Builder.t -> net -> net -> net * net
(** [(sum, carry)]. *)

val full_adder : Netlist.Builder.t -> net -> net -> net -> net * net
(** [full_adder t a b cin] is [(sum, carry_out)], 5 library gates. *)

val and_reduce : Netlist.Builder.t -> net array -> net
(** Balanced AND tree; raises [Invalid_argument] on the empty bus. *)

val or_reduce : Netlist.Builder.t -> net array -> net

val xor_reduce : Netlist.Builder.t -> net array -> net

val mux2_bus : Netlist.Builder.t -> a:net array -> b:net array -> sel:net ->
  net array
(** Per-bit 2:1 mux over equal-width buses. *)

val register_bus : Netlist.Builder.t -> net array -> net array
(** One DFF per bit. *)

val inputs : Netlist.Builder.t -> prefix:string -> width:int -> net array
(** [width] fresh primary inputs named [prefix0..]. *)

val outputs : Netlist.Builder.t -> net array -> unit
(** Mark every bit as a primary output. *)
