type net = Netlist.Types.net_id

let partial_products t a b =
  Array.map (fun bj -> Array.map (fun ai -> Prim.and2 t ai bj) a) b

(* Row-by-row carry-save reduction: each row adds one shifted partial
   product into a running (sum, carry) pair; the last carries ripple. *)
let array_multiplier t ~a ~b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Multiplier.array_multiplier";
  let pp = partial_products t a b in
  let zero = Netlist.Builder.add_constant t false in
  let width = na + nb in
  let acc = Array.make width zero in
  Array.blit pp.(0) 0 acc 0 na;
  let carries = ref [] in
  for j = 1 to nb - 1 do
    let row_carry = ref zero in
    for i = 0 to na - 1 do
      let s, c = Prim.full_adder t acc.(i + j) pp.(j).(i) !row_carry in
      acc.(i + j) <- s;
      row_carry := c
    done;
    carries := (j + na, !row_carry) :: !carries
  done;
  (* Fold the per-row carries into the upper bits with half adders. *)
  List.iter
    (fun (pos, c) ->
       let carry = ref c in
       let i = ref pos in
       while !carry <> zero && !i < width do
         let s, cn = Prim.half_adder t acc.(!i) !carry in
         acc.(!i) <- s;
         carry := cn;
         incr i
       done)
    (List.rev !carries);
  acc

(* Wallace: keep per-column bit lists, compress columns with full/half
   adders until every column has at most two bits, then one ripple add. *)
let wallace_multiplier t ~a ~b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 || nb = 0 then invalid_arg "Multiplier.wallace_multiplier";
  let width = na + nb in
  let cols = Array.make width [] in
  for j = 0 to nb - 1 do
    for i = 0 to na - 1 do
      cols.(i + j) <- Prim.and2 t a.(i) b.(j) :: cols.(i + j)
    done
  done;
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let next = Array.make width [] in
    for k = 0 to width - 1 do
      let rec compress = function
        | x :: y :: z :: rest ->
          progressed := true;
          let s, c = Prim.full_adder t x y z in
          if k + 1 < width then next.(k + 1) <- c :: next.(k + 1);
          s :: compress rest
        | rest -> rest
      in
      next.(k) <- compress cols.(k) @ next.(k)
    done;
    Array.blit next 0 cols 0 width
  done;
  let zero = Netlist.Builder.add_constant t false in
  let pick col = match col with
    | [] -> (zero, zero)
    | [ x ] -> (x, zero)
    | [ x; y ] -> (x, y)
    | _ -> assert false
  in
  let xs = Array.make width zero and ys = Array.make width zero in
  Array.iteri (fun k col -> let x, y = pick col in xs.(k) <- x; ys.(k) <- y)
    cols;
  let sums, _ = Adder.ripple_carry t ~a:xs ~b:ys ~cin:zero in
  sums
