type net = Netlist.Types.net_id

(* Controlled add/subtract cell: when sub=1 computes a + not(b) + cin
   (i.e. one bit-slice of a - b), when sub=0 computes a + b + cin. *)
let cas t ~a ~b ~cin ~sub =
  let bx = Prim.xor2 t b sub in
  Prim.full_adder t a bx cin

(* Restoring-style array: each row conditionally subtracts the divisor from
   the running remainder prefix; the quotient bit is the "no borrow" flag
   and a mux row restores the remainder when the subtraction went negative. *)
let array_divider t ~dividend ~divisor =
  let n = Array.length dividend and m = Array.length divisor in
  if n = 0 || m = 0 then invalid_arg "Divider.array_divider";
  let zero = Netlist.Builder.add_constant t false in
  let one = Netlist.Builder.add_constant t true in
  let quotient = Array.make n zero in
  (* remainder register, m+1 bits to hold the trial-subtraction borrow *)
  let rem = ref (Array.make m zero) in
  for step = n - 1 downto 0 do
    (* shift remainder left by one, bring in dividend bit *)
    let shifted = Array.make (m + 1) zero in
    shifted.(0) <- dividend.(step);
    Array.blit !rem 0 shifted 1 m;
    (* trial subtract divisor (zero-extended to m+1 bits) *)
    let diff = Array.make (m + 1) zero in
    let carry = ref one in
    for i = 0 to m do
      let b = if i < m then divisor.(i) else zero in
      let s, c = cas t ~a:shifted.(i) ~b ~cin:!carry ~sub:one in
      diff.(i) <- s;
      carry := c
    done;
    let no_borrow = !carry in
    quotient.(step) <- no_borrow;
    (* keep the difference when it is non-negative, else restore *)
    let next = Prim.mux2_bus t
        ~a:(Array.sub shifted 0 m) ~b:(Array.sub diff 0 m) ~sel:no_borrow in
    rem := next
  done;
  (quotient, !rem)
