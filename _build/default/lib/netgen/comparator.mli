(** Magnitude and equality comparators. *)

type net = Netlist.Types.net_id

val equal : Netlist.Builder.t -> a:net array -> b:net array -> net
(** Single net, 1 when the buses carry equal values. *)

val less_than : Netlist.Builder.t -> a:net array -> b:net array -> net
(** Unsigned a < b, built as a ripple of per-bit compare slices from MSB. *)

val compare_full : Netlist.Builder.t -> a:net array -> b:net array ->
  net * net * net
(** [(lt, eq, gt)]. *)
