type net = Netlist.Types.net_id

let check_widths name a b =
  if Array.length a <> Array.length b || Array.length a = 0 then
    invalid_arg (Printf.sprintf "Adder.%s: bus width mismatch" name)

let ripple_carry t ~a ~b ~cin =
  check_widths "ripple_carry" a b;
  let n = Array.length a in
  let sums = Array.make n cin in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = Prim.full_adder t a.(i) b.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

(* Per-group propagate/generate with an explicit lookahead network inside
   each 4-bit group; groups are chained by their group-carry. *)
let carry_lookahead t ~a ~b ~cin =
  check_widths "carry_lookahead" a b;
  let n = Array.length a in
  let sums = Array.make n cin in
  let group = 4 in
  let carry_in = ref cin in
  let i = ref 0 in
  while !i < n do
    let lo = !i in
    let len = min group (n - lo) in
    let p = Array.init len (fun j -> Prim.xor2 t a.(lo + j) b.(lo + j)) in
    let g = Array.init len (fun j -> Prim.and2 t a.(lo + j) b.(lo + j)) in
    (* c_{j+1} = g_j or (p_j and c_j), unrolled so each carry is 2 gates
       from the group carry-in rather than a ripple through full adders. *)
    let carries = Array.make (len + 1) !carry_in in
    for j = 0 to len - 1 do
      carries.(j + 1) <- Prim.or2 t g.(j) (Prim.and2 t p.(j) carries.(j))
    done;
    for j = 0 to len - 1 do
      sums.(lo + j) <- Prim.xor2 t p.(j) carries.(j)
    done;
    carry_in := carries.(len);
    i := lo + len
  done;
  (sums, !carry_in)

let carry_select t ~a ~b ~cin ~group =
  check_widths "carry_select" a b;
  if group <= 0 then invalid_arg "Adder.carry_select: group <= 0";
  let n = Array.length a in
  let zero = Netlist.Builder.add_constant t false in
  let one = Netlist.Builder.add_constant t true in
  let sums = Array.make n cin in
  let carry = ref cin in
  let i = ref 0 in
  while !i < n do
    let lo = !i in
    let len = min group (n - lo) in
    let sub v = Array.sub v lo len in
    if lo = 0 then begin
      let s, c = ripple_carry t ~a:(sub a) ~b:(sub b) ~cin in
      Array.blit s 0 sums lo len;
      carry := c
    end else begin
      let s0, c0 = ripple_carry t ~a:(sub a) ~b:(sub b) ~cin:zero in
      let s1, c1 = ripple_carry t ~a:(sub a) ~b:(sub b) ~cin:one in
      let sel = !carry in
      let s = Prim.mux2_bus t ~a:s0 ~b:s1 ~sel in
      Array.blit s 0 sums lo len;
      carry := Prim.mux2 t ~a:c0 ~b:c1 ~sel
    end;
    i := lo + len
  done;
  (sums, !carry)

let subtractor t ~a ~b =
  check_widths "subtractor" a b;
  let nb = Array.map (Prim.inv t) b in
  let one = Netlist.Builder.add_constant t true in
  ripple_carry t ~a ~b:nb ~cin:one
