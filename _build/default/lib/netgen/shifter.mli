(** Mux-based barrel shifter. *)

type net = Netlist.Types.net_id

val barrel_left : Netlist.Builder.t -> data:net array -> amount:net array ->
  net array
(** Logical left shift of [data] by the binary [amount]; vacated low bits
    are zero. [|amount|] mux stages of [|data|] muxes each. *)

val barrel_right : Netlist.Builder.t -> data:net array -> amount:net array ->
  net array
(** Logical right shift. *)

val rotate_left : Netlist.Builder.t -> data:net array -> amount:net array ->
  net array
(** Circular left rotation. *)
