type net = Netlist.Types.net_id

module B = Netlist.Builder
module K = Celllib.Kind

let inv t a = B.add_gate t K.Inv [| a |]
let buf t a = B.add_gate t K.Buf [| a |]
let and2 t a b = B.add_gate t K.And2 [| a; b |]
let or2 t a b = B.add_gate t K.Or2 [| a; b |]
let xor2 t a b = B.add_gate t K.Xor2 [| a; b |]
let xnor2 t a b = B.add_gate t K.Xnor2 [| a; b |]
let nand2 t a b = B.add_gate t K.Nand2 [| a; b |]
let nor2 t a b = B.add_gate t K.Nor2 [| a; b |]
let mux2 t ~a ~b ~sel = B.add_gate t K.Mux2 [| a; b; sel |]

let half_adder t a b = (xor2 t a b, and2 t a b)

let full_adder t a b cin =
  let p = xor2 t a b in
  let sum = xor2 t p cin in
  let g = and2 t a b in
  let pc = and2 t p cin in
  let cout = or2 t g pc in
  (sum, cout)

let reduce op t bus =
  let n = Array.length bus in
  if n = 0 then invalid_arg "Prim.reduce: empty bus";
  (* Balanced tree keeps logic depth logarithmic. *)
  let rec go lo len =
    if len = 1 then bus.(lo)
    else begin
      let half = len / 2 in
      op t (go lo half) (go (lo + half) (len - half))
    end
  in
  go 0 n

let and_reduce t bus = reduce and2 t bus
let or_reduce t bus = reduce or2 t bus
let xor_reduce t bus = reduce xor2 t bus

let mux2_bus t ~a ~b ~sel =
  if Array.length a <> Array.length b then
    invalid_arg "Prim.mux2_bus: width mismatch";
  Array.init (Array.length a) (fun i -> mux2 t ~a:a.(i) ~b:b.(i) ~sel)

let register_bus t bus = Array.map (fun d -> B.add_dff t ~d) bus

let inputs t ~prefix ~width =
  Array.init width (fun i ->
      B.add_input ~name:(Printf.sprintf "%s%d" prefix i) t)

let outputs t bus = Array.iter (B.mark_output t) bus
