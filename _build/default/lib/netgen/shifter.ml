type net = Netlist.Types.net_id

let stage t data ~sel ~source =
  let n = Array.length data in
  Array.init n (fun i -> Prim.mux2 t ~a:data.(i) ~b:(source i) ~sel)

let barrel t ~data ~amount ~shifted_bit =
  if Array.length data = 0 then invalid_arg "Shifter: empty data bus";
  let zero = Netlist.Builder.add_constant t false in
  let n = Array.length data in
  let current = ref data in
  Array.iteri
    (fun s sel ->
       let k = 1 lsl s in
       let cur = !current in
       let source i =
         match shifted_bit with
         | `Left -> if i >= k then cur.(i - k) else zero
         | `Right -> if i + k < n then cur.(i + k) else zero
         | `Rotate -> cur.((i - k + (n * (1 + (k / n)))) mod n)
       in
       current := stage t cur ~sel ~source)
    amount;
  !current

let barrel_left t ~data ~amount = barrel t ~data ~amount ~shifted_bit:`Left
let barrel_right t ~data ~amount = barrel t ~data ~amount ~shifted_bit:`Right
let rotate_left t ~data ~amount = barrel t ~data ~amount ~shifted_bit:`Rotate
