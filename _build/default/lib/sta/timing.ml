module T = Netlist.Types

type result = {
  arrival_ps : float array;
  critical_ps : float;
  critical_net : T.net_id;
  critical_path : T.cell_id list;
}

type env = {
  nl : T.t;
  tech : Celllib.Tech.t;
  wire_length_um : T.net_id -> float;
  rise_at_cell : T.cell_id -> float;
  rise_at_net : T.net_id -> float;
}

let load_cap_ff env nid =
  let pin_caps =
    Array.fold_left
      (fun acc (cid, _) ->
         acc
         +. (Celllib.Info.get (T.cell env.nl cid).T.kind).Celllib.Info.input_cap_ff)
      0.0 (T.net env.nl nid).T.sinks
  in
  pin_caps
  +. (env.tech.Celllib.Tech.wire_cap_ff_per_um *. env.wire_length_um nid)

let cell_delay_ps env cid =
  let c = T.cell env.nl cid in
  let info = Celllib.Info.get c.T.kind in
  let base =
    info.Celllib.Info.intrinsic_ps
    +. (info.Celllib.Info.slope_ps_per_ff *. load_cap_ff env c.T.output)
  in
  base *. (1.0 +. (env.tech.Celllib.Tech.delay_temp_coeff_per_k
                   *. env.rise_at_cell cid))

let wire_delay_ps env nid =
  env.tech.Celllib.Tech.wire_delay_ps_per_um
  *. env.wire_length_um nid
  *. (1.0 +. (env.tech.Celllib.Tech.wire_temp_coeff_per_k
              *. env.rise_at_net nid))

(* Longest-path DP over the combinational DAG in topological order.
   Sources (primary inputs, constants, flip-flop outputs) arrive at 0; each
   combinational cell adds its gate delay, each net its wire delay. The
   predecessor of each net's arrival is remembered for path recovery. *)
let run env =
  let nl = env.nl in
  let n_nets = T.num_nets nl in
  let arrival = Array.make n_nets 0.0 in
  let pred_cell = Array.make n_nets (-1) in
  let order =
    (* cells in id order are topological for combinational logic (the
       builder creates a gate only after its input nets), matching the
       simulator's assumption; sequential cells are skipped. *)
    let keep = ref [] in
    T.iter_cells nl ~f:(fun cid c ->
        if not (Celllib.Kind.is_sequential c.T.kind) then
          keep := cid :: !keep);
    List.rev !keep
  in
  List.iter
    (fun cid ->
       let c = T.cell nl cid in
       let worst_in =
         Array.fold_left
           (fun acc nid -> Float.max acc arrival.(nid))
           0.0 c.T.inputs
       in
       let t =
         worst_in +. cell_delay_ps env cid +. wire_delay_ps env c.T.output
       in
       if t > arrival.(c.T.output) then begin
         arrival.(c.T.output) <- t;
         pred_cell.(c.T.output) <- cid
       end)
    order;
  (* Worst endpoint: any flip-flop D pin or primary output. *)
  let critical_net = ref 0 and critical = ref neg_infinity in
  let consider nid =
    if arrival.(nid) > !critical then begin
      critical := arrival.(nid);
      critical_net := nid
    end
  in
  T.iter_cells nl ~f:(fun _ c ->
      if Celllib.Kind.is_sequential c.T.kind then consider c.T.inputs.(0));
  Array.iter consider nl.T.primary_outputs;
  if !critical = neg_infinity then critical := 0.0;
  (* Recover the path by walking predecessors. *)
  let rec walk nid acc =
    let cid = pred_cell.(nid) in
    if cid < 0 then acc
    else begin
      let c = T.cell nl cid in
      let worst_nid =
        Array.fold_left
          (fun best cand ->
             if best < 0 || arrival.(cand) > arrival.(best) then cand
             else best)
          (-1) c.T.inputs
      in
      if worst_nid < 0 then cid :: acc else walk worst_nid (cid :: acc)
    end
  in
  { arrival_ps = arrival;
    critical_ps = !critical;
    critical_net = !critical_net;
    critical_path = walk !critical_net [] }

let rise_lookup_at thermal_map (x, y) =
  match thermal_map with
  | None -> 0.0
  | Some g ->
    (match Geo.Grid.tile_of_point g ~x ~y with
     | Some (ix, iy) -> Geo.Grid.get g ~ix ~iy
     | None -> 0.0)

let analyze pl ?thermal_map () =
  let nl = pl.Place.Placement.nl in
  let tech = pl.Place.Placement.fp.Place.Floorplan.tech in
  run
    { nl; tech;
      wire_length_um = (fun nid -> Place.Placement.net_hpwl pl nid);
      rise_at_cell =
        (fun cid ->
           rise_lookup_at thermal_map (Place.Placement.cell_center pl cid));
      rise_at_net =
        (fun nid ->
           match Place.Placement.net_bbox pl nid with
           | None -> 0.0
           | Some r ->
             rise_lookup_at thermal_map
               (Geo.Rect.center_x r, Geo.Rect.center_y r)) }

let analyze_unplaced nl tech =
  run
    { nl; tech;
      wire_length_um = (fun _ -> 0.0);
      rise_at_cell = (fun _ -> 0.0);
      rise_at_net = (fun _ -> 0.0) }

let overhead_pct ~before ~after =
  if before.critical_ps <= 0.0 then 0.0
  else
    100.0 *. (after.critical_ps -. before.critical_ps) /. before.critical_ps
