(** Static timing analysis with temperature derating.

    Linear delay model per cell ([intrinsic + slope * C_load]) plus an
    HPWL-proportional wire delay per net. Both are derated with local
    temperature using the paper's coefficients (drive strength -4 % per
    10 °C => longer cell delay; wire delay +5 % per 10 °C), which is what
    makes the "max ~2 % timing overhead" experiment reproducible. *)

type result = {
  arrival_ps : float array;      (** per net: latest arrival at the net *)
  critical_ps : float;           (** worst register-to-register arrival *)
  critical_net : Netlist.Types.net_id;
  critical_path : Netlist.Types.cell_id list;
  (** cells along the critical path, source first *)
}

val analyze : Place.Placement.t -> ?thermal_map:Geo.Grid.t -> unit -> result
(** Placement-aware analysis. When [thermal_map] is given (temperature rise
    over ambient, any grid over the core), each cell's delay is derated by
    the rise at its location and each net's wire delay by the rise at its
    bounding-box center. *)

val analyze_unplaced : Netlist.Types.t -> Celllib.Tech.t -> result
(** Zero-wire-load analysis (before placement). *)

val overhead_pct : before:result -> after:result -> float
(** Critical-path change in percent; positive = slower. *)
