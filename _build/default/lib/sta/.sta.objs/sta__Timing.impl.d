lib/sta/timing.ml: Array Celllib Float Geo List Netlist Place
