lib/sta/timing.mli: Celllib Geo Netlist Place
