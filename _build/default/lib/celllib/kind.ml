type t =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | And3
  | Or2
  | Or3
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21
  | Mux2
  | Dff
  | Filler of int

let all_logic =
  [ Inv; Buf; Nand2; Nand3; Nor2; Nor3; And2; And3; Or2; Or3;
    Xor2; Xnor2; Aoi21; Oai21; Mux2; Dff ]

let filler_widths = [ 1; 2; 4; 8; 16; 32 ]

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nand3 -> "NAND3"
  | Nor2 -> "NOR2"
  | Nor3 -> "NOR3"
  | And2 -> "AND2"
  | And3 -> "AND3"
  | Or2 -> "OR2"
  | Or3 -> "OR3"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Filler w -> Printf.sprintf "FILL%d" w

let num_inputs = function
  | Inv | Buf | Dff -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Nand3 | Nor3 | And3 | Or3 | Aoi21 | Oai21 | Mux2 -> 3
  | Filler _ -> 0

let is_sequential = function
  | Dff -> true
  | Inv | Buf | Nand2 | Nand3 | Nor2 | Nor3 | And2 | And3 | Or2 | Or3
  | Xor2 | Xnor2 | Aoi21 | Oai21 | Mux2 | Filler _ -> false

let is_filler = function
  | Filler _ -> true
  | Inv | Buf | Nand2 | Nand3 | Nor2 | Nor3 | And2 | And3 | Or2 | Or3
  | Xor2 | Xnor2 | Aoi21 | Oai21 | Mux2 | Dff -> false

let arity_error k v =
  invalid_arg
    (Printf.sprintf "Kind.eval %s: expected %d inputs, got %d"
       (name k) (num_inputs k) (Array.length v))

let eval k v =
  if Array.length v <> num_inputs k then arity_error k v;
  match k with
  | Inv -> not v.(0)
  | Buf -> v.(0)
  | Nand2 -> not (v.(0) && v.(1))
  | Nand3 -> not (v.(0) && v.(1) && v.(2))
  | Nor2 -> not (v.(0) || v.(1))
  | Nor3 -> not (v.(0) || v.(1) || v.(2))
  | And2 -> v.(0) && v.(1)
  | And3 -> v.(0) && v.(1) && v.(2)
  | Or2 -> v.(0) || v.(1)
  | Or3 -> v.(0) || v.(1) || v.(2)
  | Xor2 -> v.(0) <> v.(1)
  | Xnor2 -> v.(0) = v.(1)
  | Aoi21 -> not ((v.(0) && v.(1)) || v.(2))
  | Oai21 -> not ((v.(0) || v.(1)) && v.(2))
  | Mux2 -> if v.(2) then v.(1) else v.(0)
  | Dff -> invalid_arg "Kind.eval: DFF is not combinational"
  | Filler _ -> invalid_arg "Kind.eval: filler cells have no function"

let compare = Stdlib.compare
let equal a b = compare a b = 0
let pp ppf k = Format.pp_print_string ppf (name k)
