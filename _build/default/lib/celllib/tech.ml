type t = {
  node_nm : int;
  site_width_um : float;
  row_height_um : float;
  vdd_v : float;
  clock_freq_hz : float;
  wire_cap_ff_per_um : float;
  wire_delay_ps_per_um : float;
  delay_temp_coeff_per_k : float;
  wire_temp_coeff_per_k : float;
  leakage_doubling_k : float;
}

let default_65nm = {
  node_nm = 65;
  site_width_um = 0.2;
  row_height_um = 2.0;
  vdd_v = 1.0;
  clock_freq_hz = 1.0e9;
  wire_cap_ff_per_um = 0.30;
  wire_delay_ps_per_um = 0.05;
  delay_temp_coeff_per_k = 0.004;
  wire_temp_coeff_per_k = 0.005;
  leakage_doubling_k = 18.0;
}

let cycle_time_ps t = 1.0e12 /. t.clock_freq_hz
