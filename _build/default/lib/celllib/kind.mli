(** Standard-cell kinds of the synthetic 65 nm-class library.

    The library carries the usual combinational footprint of an arithmetic-
    oriented flow (the paper's benchmark is nine arithmetic units), one
    flip-flop, and filler cells of power-of-two widths used by the
    whitespace-allocation techniques. *)

type t =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nor2
  | Nor3
  | And2
  | And3
  | Or2
  | Or3
  | Xor2
  | Xnor2
  | Aoi21  (** y = not ((a and b) or c) *)
  | Oai21  (** y = not ((a or b) and c) *)
  | Mux2   (** y = if s then b else a, pins (a, b, s) *)
  | Dff    (** posedge D flip-flop, pin (d); the clock is implicit *)
  | Filler of int  (** zero-power filler; the int is the width in sites *)

val all_logic : t list
(** Every kind that has transistors (everything except fillers). *)

val filler_widths : int list
(** Widths (in sites) of the filler variants layout code may instantiate. *)

val name : t -> string

val num_inputs : t -> int
(** Input pin count; 0 for fillers. *)

val is_sequential : t -> bool

val is_filler : t -> bool

val eval : t -> bool array -> bool
(** Boolean function of a combinational kind applied to its input values.
    Raises [Invalid_argument] on [Dff] and [Filler] or on an input vector of
    the wrong arity. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
