let all_macros () =
  Kind.all_logic
  @ List.map (fun w -> Kind.Filler w) Kind.filler_widths

let pin_names k =
  let n = Kind.num_inputs k in
  let ins =
    match n with
    | 0 -> []
    | 1 -> [ "a" ]
    | 2 -> [ "a"; "b" ]
    | 3 -> [ "a"; "b"; "c" ]
    | n -> List.init n (Printf.sprintf "i%d")
  in
  let ins = if Kind.is_sequential k then ins @ [ "ck" ] else ins in
  if Kind.is_filler k then [] else ins @ [ "z" ]

let to_string tech =
  let buf = Buffer.create 16384 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n";
  pr "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS\n\n";
  pr "SITE unit_site\n  CLASS CORE ;\n  SIZE %.3f BY %.3f ;\nEND unit_site\n\n"
    tech.Tech.site_width_um tech.Tech.row_height_um;
  List.iter
    (fun k ->
       let name =
         if Kind.is_filler k then Kind.name k else Kind.name k ^ "_X1"
       in
       let w = Info.width_um tech k in
       pr "MACRO %s\n" name;
       pr "  CLASS CORE %s;\n" (if Kind.is_filler k then "SPACER " else "");
       pr "  ORIGIN 0 0 ;\n";
       pr "  SIZE %.3f BY %.3f ;\n" w tech.Tech.row_height_um;
       pr "  SITE unit_site ;\n";
       List.iteri
         (fun i pin ->
            let dir =
              if pin = "z" then "OUTPUT"
              else "INPUT"
            in
            (* evenly spaced pin stubs along the cell's midline *)
            let total = List.length (pin_names k) in
            let x = w *. float_of_int (i + 1) /. float_of_int (total + 1) in
            pr "  PIN %s\n    DIRECTION %s ;\n    PORT\n      LAYER metal1 ;\n\
               \      RECT %.3f %.3f %.3f %.3f ;\n    END\n  END %s\n"
              pin dir (x -. 0.05)
              ((tech.Tech.row_height_um /. 2.0) -. 0.05)
              (x +. 0.05)
              ((tech.Tech.row_height_um /. 2.0) +. 0.05)
              pin)
         (pin_names k);
       pr "END %s\n\n" name)
    (all_macros ());
  pr "END LIBRARY\n";
  Buffer.contents buf

let macro_count _tech = List.length (all_macros ())

let write_file path tech =
  let oc = open_out path in
  (try output_string oc (to_string tech)
   with e -> close_out oc; raise e);
  close_out oc
