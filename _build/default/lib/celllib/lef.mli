(** LEF export of the synthetic cell library.

    Emits technology and macro sections (SITE, MACRO with SIZE/CLASS/PIN
    stubs) for every logic cell and filler — the static counterpart of the
    DEF placement writer, enough for DEF viewers that insist on a LEF. *)

val to_string : Tech.t -> string

val write_file : string -> Tech.t -> unit

val macro_count : Tech.t -> int
(** Number of MACRO sections the export contains. *)
