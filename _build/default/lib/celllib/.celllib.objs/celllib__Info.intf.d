lib/celllib/info.mli: Kind Tech
