lib/celllib/tech.ml:
