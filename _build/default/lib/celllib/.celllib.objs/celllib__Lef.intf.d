lib/celllib/lef.mli: Tech
