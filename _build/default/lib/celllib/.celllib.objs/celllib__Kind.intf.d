lib/celllib/kind.mli: Format
