lib/celllib/info.ml: Kind Tech
