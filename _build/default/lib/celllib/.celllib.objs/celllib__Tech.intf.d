lib/celllib/tech.mli:
