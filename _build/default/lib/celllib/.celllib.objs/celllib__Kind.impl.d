lib/celllib/kind.ml: Array Format Printf Stdlib
