lib/celllib/lef.ml: Buffer Info Kind List Printf Tech
