(** Technology constants of the synthetic 65 nm-class process.

    The numbers are in the published ballpark for a 65 nm bulk-CMOS
    standard-cell process and a plastic BGA package; the experiments only
    depend on their relative magnitudes (see DESIGN.md, substitutions). *)

type t = {
  node_nm : int;              (** marketing node, 65 *)
  site_width_um : float;      (** placement site pitch *)
  row_height_um : float;      (** standard-cell row height *)
  vdd_v : float;              (** supply voltage *)
  clock_freq_hz : float;      (** the paper runs the benchmark at 1 GHz *)
  wire_cap_ff_per_um : float; (** average routed-wire capacitance *)
  wire_delay_ps_per_um : float; (** lumped RC wire-delay coefficient *)
  delay_temp_coeff_per_k : float;
  (** fractional cell-delay increase per kelvin of temperature rise
      (paper: MOS drive -4 % / 10 degC => ~ +0.004/K delay) *)
  wire_temp_coeff_per_k : float;
  (** fractional wire-delay increase per kelvin (paper: +5 % / 10 degC) *)
  leakage_doubling_k : float;
  (** temperature rise that doubles subthreshold leakage (the paper's
      "positive feedback between leakage power and temperature") *)
}

val default_65nm : t

val cycle_time_ps : t -> float
(** Clock period implied by [clock_freq_hz], in picoseconds. *)
