type t = {
  width_sites : int;
  input_cap_ff : float;
  intrinsic_ps : float;
  slope_ps_per_ff : float;
  internal_cap_ff : float;
  leakage_nw : float;
}

let make ~w ~cin ~d0 ~k ~cint ~leak =
  { width_sites = w; input_cap_ff = cin; intrinsic_ps = d0;
    slope_ps_per_ff = k; internal_cap_ff = cint; leakage_nw = leak }

let get = function
  | Kind.Inv -> make ~w:3 ~cin:1.0 ~d0:8.0 ~k:4.0 ~cint:0.8 ~leak:8.0
  | Kind.Buf -> make ~w:4 ~cin:1.0 ~d0:18.0 ~k:3.0 ~cint:1.4 ~leak:12.0
  | Kind.Nand2 -> make ~w:4 ~cin:1.2 ~d0:12.0 ~k:4.5 ~cint:1.2 ~leak:12.0
  | Kind.Nand3 -> make ~w:5 ~cin:1.3 ~d0:16.0 ~k:5.5 ~cint:1.5 ~leak:16.0
  | Kind.Nor2 -> make ~w:4 ~cin:1.2 ~d0:14.0 ~k:5.0 ~cint:1.2 ~leak:12.0
  | Kind.Nor3 -> make ~w:5 ~cin:1.3 ~d0:20.0 ~k:6.5 ~cint:1.5 ~leak:16.0
  | Kind.And2 -> make ~w:5 ~cin:1.1 ~d0:22.0 ~k:4.0 ~cint:1.6 ~leak:15.0
  | Kind.And3 -> make ~w:6 ~cin:1.2 ~d0:26.0 ~k:4.5 ~cint:1.9 ~leak:19.0
  | Kind.Or2 -> make ~w:5 ~cin:1.1 ~d0:24.0 ~k:4.0 ~cint:1.6 ~leak:15.0
  | Kind.Or3 -> make ~w:6 ~cin:1.2 ~d0:28.0 ~k:4.5 ~cint:1.9 ~leak:19.0
  | Kind.Xor2 -> make ~w:7 ~cin:1.8 ~d0:32.0 ~k:5.0 ~cint:2.6 ~leak:24.0
  | Kind.Xnor2 -> make ~w:7 ~cin:1.8 ~d0:32.0 ~k:5.0 ~cint:2.6 ~leak:24.0
  | Kind.Aoi21 -> make ~w:5 ~cin:1.3 ~d0:18.0 ~k:5.5 ~cint:1.5 ~leak:16.0
  | Kind.Oai21 -> make ~w:5 ~cin:1.3 ~d0:18.0 ~k:5.5 ~cint:1.5 ~leak:16.0
  | Kind.Mux2 -> make ~w:7 ~cin:1.4 ~d0:30.0 ~k:5.0 ~cint:2.2 ~leak:22.0
  | Kind.Dff -> make ~w:14 ~cin:1.6 ~d0:90.0 ~k:4.0 ~cint:5.5 ~leak:55.0
  | Kind.Filler w ->
    make ~w ~cin:0.0 ~d0:0.0 ~k:0.0 ~cint:0.0 ~leak:0.0

let width_um tech kind =
  float_of_int (get kind).width_sites *. tech.Tech.site_width_um

let area_um2 tech kind = width_um tech kind *. tech.Tech.row_height_um
