(** Per-kind electrical and physical characterization.

    A linear delay model [d = intrinsic + slope * C_load] and a
    state-independent leakage model are enough for the paper's experiments
    (relative timing overhead and power density). *)

type t = {
  width_sites : int;        (** cell width in placement sites *)
  input_cap_ff : float;     (** capacitance of each input pin *)
  intrinsic_ps : float;     (** unloaded cell delay *)
  slope_ps_per_ff : float;  (** delay sensitivity to output load *)
  internal_cap_ff : float;  (** equivalent switched cap per output toggle *)
  leakage_nw : float;       (** static power at nominal corner *)
}

val get : Kind.t -> t
(** Characterization of a kind; fillers have zero caps, delay and leakage. *)

val width_um : Tech.t -> Kind.t -> float
(** Physical width. *)

val area_um2 : Tech.t -> Kind.t -> float
(** Footprint area (width x row height). *)
