(* Tests for static timing analysis with temperature derating. *)

module B = Netlist.Builder
module K = Celllib.Kind

let tech = Celllib.Tech.default_65nm

let inv_chain n =
  let b = B.create () in
  let a = B.add_input b in
  let prev = ref a in
  for _ = 1 to n do
    prev := B.add_gate b K.Inv [| !prev |]
  done;
  B.mark_output b !prev;
  B.finish b

(* Closed-form critical path of an unloaded inverter chain: every stage but
   the last drives one INV input pin, the last drives nothing. *)
let chain_delay_ps n =
  let info = Celllib.Info.get K.Inv in
  let stage_loaded =
    info.Celllib.Info.intrinsic_ps
    +. (info.Celllib.Info.slope_ps_per_ff *. info.Celllib.Info.input_cap_ff)
  in
  (float_of_int (n - 1) *. stage_loaded) +. info.Celllib.Info.intrinsic_ps

let test_unplaced_chain_closed_form () =
  let nl = inv_chain 5 in
  let r = Sta.Timing.analyze_unplaced nl tech in
  Alcotest.(check (float 1e-6)) "5-inv critical path" (chain_delay_ps 5)
    r.Sta.Timing.critical_ps

let test_critical_path_cells () =
  let nl = inv_chain 4 in
  let r = Sta.Timing.analyze_unplaced nl tech in
  Alcotest.(check int) "path has all four inverters" 4
    (List.length r.Sta.Timing.critical_path);
  (* path cells must be connected head-to-tail *)
  let rec connected = function
    | a :: (b :: _ as rest) ->
      let ca = Netlist.Types.cell nl a and cb = Netlist.Types.cell nl b in
      Array.mem ca.Netlist.Types.output cb.Netlist.Types.inputs
      && connected rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "path connected" true
    (connected r.Sta.Timing.critical_path)

let test_dff_cuts_path () =
  (* 3 inv + dff + 3 inv: the critical path is one 3-inv segment, not 6 *)
  let b = B.create () in
  let a = B.add_input b in
  let prev = ref a in
  for _ = 1 to 3 do prev := B.add_gate b K.Inv [| !prev |] done;
  let q = B.add_dff b ~d:!prev in
  prev := q;
  for _ = 1 to 3 do prev := B.add_gate b K.Inv [| !prev |] done;
  B.mark_output b !prev;
  let nl = B.finish b in
  let r = Sta.Timing.analyze_unplaced nl tech in
  (* segment feeding the DFF: 3 loaded stages (last one drives the DFF pin);
     segment after the DFF: 2 loaded + 1 unloaded. Either way the result is
     far below a 6-stage chain. *)
  Alcotest.(check bool) "path shorter than 6 stages" true
    (r.Sta.Timing.critical_ps < chain_delay_ps 6)

let test_arrival_monotone_along_chain () =
  let nl = inv_chain 6 in
  let r = Sta.Timing.analyze_unplaced nl tech in
  Netlist.Types.iter_cells nl ~f:(fun _ c ->
      let input_arrival = r.Sta.Timing.arrival_ps.(c.Netlist.Types.inputs.(0)) in
      let output_arrival = r.Sta.Timing.arrival_ps.(c.Netlist.Types.output) in
      Alcotest.(check bool) "arrival grows through a gate" true
        (output_arrival > input_arrival))

(* --- placed and temperature-derated ---------------------------------------- *)

let placed_small () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let areas =
    Array.map
      (fun u ->
         let tag = u.Netgen.Benchmark.tag in
         ( tag,
           List.fold_left
             (fun acc cid ->
                acc
                +. Celllib.Info.area_um2 tech
                     (Netlist.Types.cell nl cid).Netlist.Types.kind)
             0.0
             (Netlist.Types.cells_of_unit nl tag) ))
      bench.Netgen.Benchmark.units
  in
  let total = Array.fold_left (fun s (_, a) -> s +. a) 0.0 areas in
  let fp =
    Place.Floorplan.create tech ~cell_area_um2:total ~utilization:0.8
      ~aspect:1.0
  in
  let regions = Place.Regions.pack fp ~areas in
  let cells tag = Array.of_list (Netlist.Types.cells_of_unit nl tag) in
  let pos =
    Place.Global.place nl tech ~regions ~cells_of_region:cells
      (Geo.Rng.create 3)
  in
  Place.Legalize.run nl fp ~regions ~cells_of_region:cells ~positions:pos

let test_wires_slow_down () =
  let pl = placed_small () in
  let placed = Sta.Timing.analyze pl () in
  let unplaced = Sta.Timing.analyze_unplaced pl.Place.Placement.nl tech in
  Alcotest.(check bool) "wire load slows the design" true
    (placed.Sta.Timing.critical_ps > unplaced.Sta.Timing.critical_ps)

let test_uniform_temperature_derating () =
  let pl = placed_small () in
  let cold = Sta.Timing.analyze pl () in
  let rise = 10.0 in
  let hot_map =
    Geo.Grid.map
      (Geo.Grid.create ~nx:4 ~ny:4
         ~extent:pl.Place.Placement.fp.Place.Floorplan.core)
      ~f:(fun _ -> rise)
  in
  let hot = Sta.Timing.analyze pl ~thermal_map:hot_map () in
  let overhead = Sta.Timing.overhead_pct ~before:cold ~after:hot in
  (* 10 K rise with 0.4 %/K cell and 0.5 %/K wire derating: the critical
     path slows by 4..5 % *)
  if overhead < 3.9 || overhead > 5.1 then
    Alcotest.failf "10K derating gave %.2f%%, expected ~4-5%%" overhead

let test_hotter_is_slower_monotone () =
  let pl = placed_small () in
  let core = pl.Place.Placement.fp.Place.Floorplan.core in
  let map rise =
    Geo.Grid.map (Geo.Grid.create ~nx:4 ~ny:4 ~extent:core)
      ~f:(fun _ -> rise)
  in
  let t5 = Sta.Timing.analyze pl ~thermal_map:(map 5.0) () in
  let t15 = Sta.Timing.analyze pl ~thermal_map:(map 15.0) () in
  Alcotest.(check bool) "monotone in temperature" true
    (t15.Sta.Timing.critical_ps > t5.Sta.Timing.critical_ps)

let test_overhead_pct () =
  let mk ps =
    { Sta.Timing.arrival_ps = [||]; critical_ps = ps; critical_net = 0;
      critical_path = [] }
  in
  Alcotest.(check (float 1e-9)) "10% slower" 10.0
    (Sta.Timing.overhead_pct ~before:(mk 100.0) ~after:(mk 110.0));
  Alcotest.(check (float 1e-9)) "faster is negative" (-10.0)
    (Sta.Timing.overhead_pct ~before:(mk 100.0) ~after:(mk 90.0));
  Alcotest.(check (float 1e-9)) "degenerate" 0.0
    (Sta.Timing.overhead_pct ~before:(mk 0.0) ~after:(mk 5.0))

let () =
  Alcotest.run "sta"
    [ ("unplaced",
       [ Alcotest.test_case "chain closed form" `Quick
           test_unplaced_chain_closed_form;
         Alcotest.test_case "critical path cells" `Quick
           test_critical_path_cells;
         Alcotest.test_case "dff cuts path" `Quick test_dff_cuts_path;
         Alcotest.test_case "arrival monotone" `Quick
           test_arrival_monotone_along_chain ]);
      ("placed",
       [ Alcotest.test_case "wires slow down" `Quick test_wires_slow_down;
         Alcotest.test_case "uniform derating ~4-5%" `Quick
           test_uniform_temperature_derating;
         Alcotest.test_case "monotone in temperature" `Quick
           test_hotter_is_slower_monotone;
         Alcotest.test_case "overhead pct" `Quick test_overhead_pct ]) ]
