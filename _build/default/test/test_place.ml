(* Tests for the placement substrate: floorplan, regions, FM partitioning,
   global placement, legalization, fillers. *)

module T = Netlist.Types
module FP = Place.Floorplan
module P = Place.Placement

let tech = Celllib.Tech.default_65nm

(* --- floorplan ------------------------------------------------------------ *)

let test_floorplan_explicit () =
  let fp = FP.create_explicit tech ~num_rows:10 ~sites_per_row:50 in
  Alcotest.(check (float 1e-9)) "width"
    (50.0 *. tech.Celllib.Tech.site_width_um)
    (Geo.Rect.width fp.FP.core);
  Alcotest.(check (float 1e-9)) "height"
    (10.0 *. tech.Celllib.Tech.row_height_um)
    (Geo.Rect.height fp.FP.core);
  Alcotest.(check (float 1e-9)) "row 3 y"
    (3.0 *. tech.Celllib.Tech.row_height_um)
    (FP.row_y fp 3);
  (match FP.row_of_y fp (FP.row_y fp 7 +. 0.1) with
   | Some 7 -> ()
   | _ -> Alcotest.fail "row_of_y");
  Alcotest.(check bool) "row_of_y outside" true (FP.row_of_y fp (-1.0) = None)

let test_floorplan_from_utilization () =
  let fp = FP.create tech ~cell_area_um2:10000.0 ~utilization:0.8 ~aspect:1.0 in
  let util = FP.utilization_of fp ~cell_area_um2:10000.0 in
  if Float.abs (util -. 0.8) > 0.02 then
    Alcotest.failf "utilization %.3f too far from 0.8" util;
  let aspect = Geo.Rect.width fp.FP.core /. Geo.Rect.height fp.FP.core in
  if aspect < 0.9 || aspect > 1.1 then
    Alcotest.failf "aspect %.3f too far from 1.0" aspect

let test_floorplan_extra_rows () =
  let fp = FP.create_explicit tech ~num_rows:10 ~sites_per_row:50 in
  let fp' = FP.with_extra_rows fp 4 in
  Alcotest.(check int) "rows" 14 fp'.FP.num_rows;
  Alcotest.(check int) "sites unchanged" 50 fp'.FP.sites_per_row;
  Alcotest.(check (float 1e-9)) "width unchanged"
    (Geo.Rect.width fp.FP.core) (Geo.Rect.width fp'.FP.core)

let test_floorplan_validation () =
  (match FP.create tech ~cell_area_um2:100.0 ~utilization:1.5 ~aspect:1.0 with
   | _ -> Alcotest.fail "utilization > 1 accepted"
   | exception Invalid_argument _ -> ());
  (match FP.create_explicit tech ~num_rows:0 ~sites_per_row:10 with
   | _ -> Alcotest.fail "0 rows accepted"
   | exception Invalid_argument _ -> ())

(* --- regions --------------------------------------------------------------- *)

let test_regions_pack_disjoint_and_proportional () =
  let fp = FP.create_explicit tech ~num_rows:30 ~sites_per_row:300 in
  let areas = [| (0, 100.0); (1, 200.0); (2, 100.0); (3, 400.0) |] in
  let regions = Place.Regions.pack fp ~areas in
  Alcotest.(check int) "one region per unit" 4 (Array.length regions);
  (* disjoint *)
  Array.iteri
    (fun i a ->
       Array.iteri
         (fun j b ->
            if i < j
               && Geo.Rect.intersects a.Place.Regions.rect
                    b.Place.Regions.rect
            then Alcotest.failf "regions %d and %d overlap" i j)
         regions)
    regions;
  (* roughly proportional to areas *)
  let total_area = 800.0 in
  Array.iter
    (fun r ->
       let want =
         List.assoc r.Place.Regions.tag
           [ (0, 100.0); (1, 200.0); (2, 100.0); (3, 400.0) ]
         /. total_area
       in
       let got =
         Geo.Rect.area r.Place.Regions.rect /. FP.core_area_um2 fp
       in
       if Float.abs (got -. want) > 0.15 then
         Alcotest.failf "region %d share %.2f, expected %.2f"
           r.Place.Regions.tag got want)
    regions

let test_regions_capacity_covers () =
  let fp = FP.create_explicit tech ~num_rows:40 ~sites_per_row:400 in
  let areas = Array.init 9 (fun i -> (i, 100.0 +. float_of_int (i * 37))) in
  let regions = Place.Regions.pack fp ~areas in
  let total_cap =
    Array.fold_left
      (fun acc r -> acc + Place.Regions.capacity_sites r)
      0 regions
  in
  Alcotest.(check int) "regions tile the core"
    (fp.FP.num_rows * fp.FP.sites_per_row)
    total_cap

let test_regions_lookup () =
  let fp = FP.create_explicit tech ~num_rows:10 ~sites_per_row:100 in
  let regions = Place.Regions.pack fp ~areas:[| (7, 1.0) |] in
  Alcotest.(check int) "found" 7
    (Place.Regions.region_of_tag regions 7).Place.Regions.tag;
  (match Place.Regions.region_of_tag regions 3 with
   | _ -> Alcotest.fail "unknown tag found"
   | exception Not_found -> ());
  let whole = Place.Regions.whole_core fp in
  Alcotest.(check int) "whole core is one region" 1 (Array.length whole);
  Alcotest.(check int) "covers everything" 1000
    (Place.Regions.capacity_sites whole.(0))

(* --- partition -------------------------------------------------------------- *)

let chain_netlist n =
  (* inv chain: heavy locality, a perfect test for min-cut *)
  let b = Netlist.Builder.create () in
  let a = Netlist.Builder.add_input b in
  let prev = ref a in
  for _ = 1 to n do
    prev := Netlist.Builder.add_gate b Celllib.Kind.Inv [| !prev |]
  done;
  Netlist.Builder.mark_output b !prev;
  Netlist.Builder.finish b

let test_partition_chain_cut_is_one () =
  let nl = chain_netlist 64 in
  let cells = Array.init 64 (fun i -> i) in
  let areas = Array.make 64 1.0 in
  let r =
    Place.Partition.bipartition nl ~cells ~areas ~target_a:0.5 ~tolerance:2.0
      (Geo.Rng.create 1)
  in
  (* a chain split at the area balance point cuts exactly one net *)
  Alcotest.(check int) "chain cut" 1 r.Place.Partition.cut_nets;
  if Float.abs (r.Place.Partition.area_a -. 32.0) > 2.0 then
    Alcotest.failf "balance off: %f" r.Place.Partition.area_a

let test_partition_balance_respected () =
  let nl = chain_netlist 100 in
  let cells = Array.init 100 (fun i -> i) in
  let areas = Array.init 100 (fun i -> 1.0 +. float_of_int (i mod 3)) in
  let total = Array.fold_left ( +. ) 0.0 areas in
  let r =
    Place.Partition.bipartition nl ~cells ~areas ~target_a:0.3
      ~tolerance:(0.05 *. total) (Geo.Rng.create 2)
  in
  if Float.abs (r.Place.Partition.area_a -. (0.3 *. total)) > 0.06 *. total
  then Alcotest.failf "target 30%% missed: %f of %f"
      r.Place.Partition.area_a total

let test_partition_improves_shuffled_order () =
  (* shuffle the chain order so the prefix split is bad, then check FM
     recovers a much better cut than the initial one *)
  let nl = chain_netlist 64 in
  let cells = Array.init 64 (fun i -> i) in
  let rng = Geo.Rng.create 3 in
  Geo.Rng.shuffle rng cells;
  let areas = Array.make 64 1.0 in
  (* initial prefix cut of the shuffled order *)
  let side0 = Array.init 64 (fun i -> i >= 32) in
  let initial_cut =
    Place.Partition.cut_size nl
      ~cells ~side:side0
  in
  let r =
    Place.Partition.bipartition nl ~cells ~areas ~target_a:0.5 ~tolerance:2.0
      (Geo.Rng.create 4)
  in
  Alcotest.(check bool)
    (Printf.sprintf "FM cut %d < initial %d" r.Place.Partition.cut_nets
       initial_cut)
    true
    (r.Place.Partition.cut_nets < initial_cut)

let test_partition_empty () =
  let nl = chain_netlist 4 in
  let r =
    Place.Partition.bipartition nl ~cells:[||] ~areas:[||] ~target_a:0.5
      ~tolerance:1.0 (Geo.Rng.create 1)
  in
  Alcotest.(check int) "no cut" 0 r.Place.Partition.cut_nets

(* --- global + legalize ------------------------------------------------------ *)

let small_flow () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let areas =
    Array.map
      (fun u ->
         let tag = u.Netgen.Benchmark.tag in
         ( tag,
           List.fold_left
             (fun acc cid ->
                acc +. Celllib.Info.area_um2 tech (T.cell nl cid).T.kind)
             0.0 (T.cells_of_unit nl tag) ))
      bench.Netgen.Benchmark.units
  in
  let total = Array.fold_left (fun s (_, a) -> s +. a) 0.0 areas in
  let fp =
    FP.create tech ~cell_area_um2:total ~utilization:0.8 ~aspect:1.0
  in
  let regions = Place.Regions.pack fp ~areas in
  let cells tag = Array.of_list (T.cells_of_unit nl tag) in
  (nl, fp, regions, cells)

let test_global_positions_inside_regions () =
  let nl, _fp, regions, cells = small_flow () in
  let pos =
    Place.Global.place nl tech ~regions ~cells_of_region:cells
      (Geo.Rng.create 5)
  in
  Array.iter
    (fun r ->
       Array.iter
         (fun cid ->
            let x, y = pos.(cid) in
            if Float.is_nan x then Alcotest.failf "cell %d unplaced" cid;
            if not (Geo.Rect.contains r.Place.Regions.rect ~x ~y) then
              Alcotest.failf "cell %d escaped its region" cid)
         (cells r.Place.Regions.tag))
    regions

let test_global_scaled () =
  let from_core = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:100.0 ~h:100.0 in
  let to_core = Geo.Rect.of_corner ~x:0.0 ~y:0.0 ~w:200.0 ~h:50.0 in
  let pos = [| (50.0, 50.0); (0.0, 0.0); (100.0, 100.0) |] in
  let s = Place.Global.scaled pos ~from_core ~to_core in
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "center maps to center"
    (100.0, 25.0) s.(0);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "origin fixed"
    (0.0, 0.0) s.(1);
  Alcotest.(check (pair (float 1e-9) (float 1e-9))) "far corner"
    (200.0, 50.0) s.(2)

let legalized () =
  let nl, fp, regions, cells = small_flow () in
  let pos =
    Place.Global.place nl tech ~regions ~cells_of_region:cells
      (Geo.Rng.create 5)
  in
  (nl, regions, cells,
   Place.Legalize.run nl fp ~regions ~cells_of_region:cells ~positions:pos)

let test_legalize_no_violations () =
  let _, _, _, pl = legalized () in
  let violations = P.validate pl in
  if violations <> [] then
    Alcotest.failf "%d violations, first: %s" (List.length violations)
      (Format.asprintf "%a" P.pp_violation (List.hd violations))

let test_legalize_cells_in_their_regions () =
  let _, regions, cells, pl = legalized () in
  Array.iter
    (fun r ->
       Array.iter
         (fun cid ->
            let l = pl.P.locs.(cid) in
            if l.P.row < r.Place.Regions.row_lo
               || l.P.row > r.Place.Regions.row_hi
               || l.P.site < r.Place.Regions.site_lo
               || l.P.site + P.width_sites pl cid
                  > r.Place.Regions.site_hi + 1
            then Alcotest.failf "cell %d outside region %d" cid
                r.Place.Regions.tag)
         (cells r.Place.Regions.tag))
    regions

let test_legalize_row_balance () =
  let _, regions, cells, pl = legalized () in
  (* rows inside one region should carry similar occupancy *)
  Array.iter
    (fun r ->
       let rows =
         Array.make (r.Place.Regions.row_hi - r.Place.Regions.row_lo + 1) 0
       in
       Array.iter
         (fun cid ->
            let l = pl.P.locs.(cid) in
            rows.(l.P.row - r.Place.Regions.row_lo) <-
              rows.(l.P.row - r.Place.Regions.row_lo)
              + P.width_sites pl cid)
         (cells r.Place.Regions.tag);
       let occ = Array.map float_of_int rows in
       let cap =
         float_of_int
           (r.Place.Regions.site_hi - r.Place.Regions.site_lo + 1)
       in
       let maxo = Geo.Stats.maximum occ /. cap in
       let mino = Geo.Stats.minimum occ /. cap in
       if maxo -. mino > 0.35 then
         Alcotest.failf "region %d rows unbalanced: %.2f..%.2f"
           r.Place.Regions.tag mino maxo)
    regions

let test_overflow_raises () =
  let nl, _, _, cells = small_flow () in
  (* a floorplan far too small for the design *)
  let fp = FP.create_explicit tech ~num_rows:2 ~sites_per_row:20 in
  let regions = Place.Regions.whole_core fp in
  let all_cells _ =
    Array.concat (List.map (fun t -> cells t) [ 0; 1; 2 ])
  in
  let pos = Array.make (T.num_cells nl) (1.0, 1.0) in
  (match
     Place.Legalize.run nl fp ~regions ~cells_of_region:all_cells
       ~positions:pos
   with
   | _ -> Alcotest.fail "overflow not detected"
   | exception Place.Legalize.Region_overflow _ -> ())

(* --- placement queries ------------------------------------------------------ *)

let test_hpwl_and_bbox () =
  let _, _, _, pl = legalized () in
  Alcotest.(check bool) "hpwl positive" true (P.hpwl pl > 0.0);
  (* per-net HPWL is consistent with the bbox *)
  let nl = pl.P.nl in
  for nid = 0 to T.num_nets nl - 1 do
    match P.net_bbox pl nid with
    | None ->
      Alcotest.(check (float 0.0))
        "no bbox -> zero length" 0.0 (P.net_hpwl pl nid)
    | Some r ->
      Alcotest.(check (float 1e-9))
        "hpwl = half perimeter"
        (Geo.Rect.width r +. Geo.Rect.height r)
        (P.net_hpwl pl nid)
  done

let test_validate_detects_overlap () =
  let _, _, _, pl = legalized () in
  let locs = Array.copy pl.P.locs in
  (* force cell 1 onto cell 0 *)
  locs.(1) <- locs.(0);
  let bad = P.make pl.P.nl pl.P.fp locs in
  Alcotest.(check bool) "overlap detected" true
    (List.exists
       (function P.Overlap _ -> true | P.Out_of_bounds _ -> false)
       (P.validate bad))

let test_validate_detects_out_of_bounds () =
  let _, _, _, pl = legalized () in
  let locs = Array.copy pl.P.locs in
  locs.(0) <- { P.row = 10000; site = 0 };
  let bad = P.make pl.P.nl pl.P.fp locs in
  Alcotest.(check bool) "oob detected" true
    (List.exists
       (function P.Out_of_bounds 0 -> true | _ -> false)
       (P.validate bad))

let test_utilization_reported () =
  let _, _, _, pl = legalized () in
  let u = P.utilization pl in
  if u < 0.7 || u > 0.9 then Alcotest.failf "utilization %.3f unexpected" u

(* --- fillers ----------------------------------------------------------------- *)

let test_fillers_tile_exactly () =
  let _, _, _, pl = legalized () in
  let fillers = Place.Filler.fill pl in
  Alcotest.(check bool) "covers all gaps" true
    (Place.Filler.covers_all_gaps pl fillers)

let test_fillers_do_not_overlap_cells () =
  let _, _, _, pl = legalized () in
  let fillers = Place.Filler.fill pl in
  let fp = pl.P.fp in
  (* occupancy bitmap: every site covered exactly once by cell or filler *)
  let occ = Array.make (fp.FP.num_rows * fp.FP.sites_per_row) 0 in
  let mark row site width =
    for s = site to site + width - 1 do
      let k = (row * fp.FP.sites_per_row) + s in
      occ.(k) <- occ.(k) + 1
    done
  in
  T.iter_cells pl.P.nl ~f:(fun cid _ ->
      let l = pl.P.locs.(cid) in
      mark l.P.row l.P.site (P.width_sites pl cid));
  List.iter
    (fun f ->
       match f.Place.Filler.f_kind with
       | Celllib.Kind.Filler w ->
         mark f.Place.Filler.f_row f.Place.Filler.f_site w
       | _ -> Alcotest.fail "non-filler kind in filler list")
    fillers;
  Array.iteri
    (fun k c ->
       if c <> 1 then
         Alcotest.failf "site %d covered %d times" k c)
    occ

(* --- refinement ------------------------------------------------------------- *)

let test_refine_never_worse_and_legal () =
  let _, _, _, pl = legalized () in
  let refined, stats = Place.Refine.greedy_swaps pl in
  Alcotest.(check bool) "hpwl not worse" true
    (stats.Place.Refine.hpwl_after_um
     <= stats.Place.Refine.hpwl_before_um +. 1e-6);
  Alcotest.(check (float 1e-6)) "stats match placement"
    (P.hpwl refined) stats.Place.Refine.hpwl_after_um;
  Alcotest.(check int) "legal after refinement" 0
    (List.length (P.validate refined))

let test_refine_improves_bad_order () =
  (* inv_a (cell 0) drives a buffer far to the right; inv_b (cell 1) drives
     nothing. Swapping the adjacent pair moves inv_a toward its sink and
     costs nothing, so the refiner must take it. *)
  let b = Netlist.Builder.create () in
  let i1 = Netlist.Builder.add_input b in
  let i2 = Netlist.Builder.add_input b in
  let na = Netlist.Builder.add_gate b Celllib.Kind.Inv [| i1 |] in
  let nb = Netlist.Builder.add_gate b Celllib.Kind.Inv [| i2 |] in
  let sa = Netlist.Builder.add_gate b Celllib.Kind.Buf [| na |] in
  Netlist.Builder.mark_output b sa;
  Netlist.Builder.mark_output b nb;
  let nl = Netlist.Builder.finish b in
  let fp = FP.create_explicit tech ~num_rows:1 ~sites_per_row:100 in
  let locs =
    [| { P.row = 0; site = 0 }; { P.row = 0; site = 5 };
       { P.row = 0; site = 90 } |]
  in
  let pl = P.make nl fp locs in
  let refined, stats = Place.Refine.greedy_swaps pl in
  Alcotest.(check bool) "made at least one swap" true
    (stats.Place.Refine.swaps >= 1);
  Alcotest.(check bool) "strictly better" true
    (stats.Place.Refine.hpwl_after_um < stats.Place.Refine.hpwl_before_um);
  Alcotest.(check int) "legal" 0 (List.length (P.validate refined));
  (* inv_a ends up to the right of inv_b *)
  Alcotest.(check bool) "inv_a moved right" true
    (refined.P.locs.(0).P.site > refined.P.locs.(1).P.site)

let test_refine_idempotent () =
  let _, _, _, pl = legalized () in
  let refined, _ = Place.Refine.greedy_swaps ~max_passes:50 pl in
  let _, stats2 = Place.Refine.greedy_swaps refined in
  Alcotest.(check int) "no swaps after convergence" 0
    stats2.Place.Refine.swaps

(* --- annealer -------------------------------------------------------------- *)

let anneal_config =
  { Place.Anneal.initial_temp_um = 20.0; cooling = 0.7;
    moves_per_round = 600; rounds = 8 }

let test_anneal_improves_and_legal () =
  let _, _, _, pl = legalized () in
  let refined, stats =
    Place.Anneal.optimize ~config:anneal_config pl (Geo.Rng.create 42)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hpwl %.0f -> %.0f" stats.Place.Anneal.hpwl_before_um
       stats.Place.Anneal.hpwl_after_um)
    true
    (stats.Place.Anneal.hpwl_after_um < stats.Place.Anneal.hpwl_before_um);
  Alcotest.(check int) "legal" 0 (List.length (P.validate refined));
  Alcotest.(check bool) "attempted all moves" true
    (stats.Place.Anneal.attempted
     = anneal_config.Place.Anneal.moves_per_round
       * anneal_config.Place.Anneal.rounds);
  Alcotest.(check bool) "some uphill moves at high temperature" true
    (stats.Place.Anneal.uphill_accepted > 0)

let test_anneal_deterministic () =
  let _, _, _, pl = legalized () in
  let _, s1 =
    Place.Anneal.optimize ~config:anneal_config pl (Geo.Rng.create 7)
  in
  let _, s2 =
    Place.Anneal.optimize ~config:anneal_config pl (Geo.Rng.create 7)
  in
  Alcotest.(check (float 1e-9)) "same seed, same result"
    s1.Place.Anneal.hpwl_after_um s2.Place.Anneal.hpwl_after_um

let test_anneal_beats_greedy_start () =
  (* annealing applied after greedy swapping should still find gains via
     relocations (greedy cannot move cells between rows) *)
  let _, _, _, pl = legalized () in
  let greedy, gstats = Place.Refine.greedy_swaps ~max_passes:20 pl in
  let _, astats =
    Place.Anneal.optimize ~config:anneal_config greedy (Geo.Rng.create 3)
  in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %.0f, anneal %.0f"
       gstats.Place.Refine.hpwl_after_um astats.Place.Anneal.hpwl_after_um)
    true
    (astats.Place.Anneal.hpwl_after_um
     < gstats.Place.Refine.hpwl_after_um +. 1e-6)

(* --- exporters ------------------------------------------------------------- *)

let count_lines_with prefix s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
      String.length l >= String.length prefix
      && String.sub l 0 (String.length prefix) = prefix)
  |> List.length

let test_def_export () =
  let _, _, _, pl = legalized () in
  let fillers = Place.Filler.fill pl in
  let def = Place.Def_writer.to_string ~fillers pl in
  let n_cells = T.num_cells pl.P.nl in
  Alcotest.(check int) "one component line per cell"
    n_cells (count_lines_with "- u" def);
  Alcotest.(check int) "filler components"
    (List.length fillers) (count_lines_with "- fill" def);
  Alcotest.(check int) "row statements"
    pl.P.fp.FP.num_rows (count_lines_with "ROW " def);
  let declared = Printf.sprintf "COMPONENTS %d ;" (n_cells + List.length fillers) in
  Alcotest.(check int) "components header count" 1
    (count_lines_with declared def);
  Alcotest.(check int) "die area" 1 (count_lines_with "DIEAREA" def)

let test_svg_export () =
  let _, _, _, pl = legalized () in
  let svg = Place.Svg.to_string pl in
  Alcotest.(check bool) "starts with <svg" true
    (String.length svg > 4 && String.sub svg 0 4 = "<svg");
  Alcotest.(check bool) "closed" true
    (count_lines_with "</svg>" svg = 1);
  (* at least one rect per cell plus the die outline and rows *)
  Alcotest.(check bool) "enough rects" true
    (count_lines_with "<rect" svg
     > T.num_cells pl.P.nl)

let test_svg_overlay () =
  let _, _, _, pl = legalized () in
  let heat =
    Geo.Grid.of_function ~nx:4 ~ny:4 ~extent:pl.P.fp.FP.core
      ~f:(fun ~ix ~iy -> float_of_int (ix + iy))
  in
  let overlay =
    { Place.Svg.heat = Some heat;
      outlines = [ Geo.Rect.of_corner ~x:1.0 ~y:1.0 ~w:5.0 ~h:5.0 ] }
  in
  let svg = Place.Svg.to_string ~overlay pl in
  Alcotest.(check int) "dashed outline present" 1
    (count_lines_with "<rect" svg
     - count_lines_with "<rect" (Place.Svg.to_string ~overlay:{ overlay with Place.Svg.outlines = [] } pl))

let () =
  Alcotest.run "place"
    [ ("floorplan",
       [ Alcotest.test_case "explicit" `Quick test_floorplan_explicit;
         Alcotest.test_case "from utilization" `Quick
           test_floorplan_from_utilization;
         Alcotest.test_case "extra rows" `Quick test_floorplan_extra_rows;
         Alcotest.test_case "validation" `Quick test_floorplan_validation ]);
      ("regions",
       [ Alcotest.test_case "disjoint and proportional" `Quick
           test_regions_pack_disjoint_and_proportional;
         Alcotest.test_case "capacity covers core" `Quick
           test_regions_capacity_covers;
         Alcotest.test_case "lookup" `Quick test_regions_lookup ]);
      ("partition",
       [ Alcotest.test_case "chain cut is 1" `Quick
           test_partition_chain_cut_is_one;
         Alcotest.test_case "balance respected" `Quick
           test_partition_balance_respected;
         Alcotest.test_case "FM improves shuffled order" `Quick
           test_partition_improves_shuffled_order;
         Alcotest.test_case "empty subset" `Quick test_partition_empty ]);
      ("global",
       [ Alcotest.test_case "positions inside regions" `Quick
           test_global_positions_inside_regions;
         Alcotest.test_case "scaled remap" `Quick test_global_scaled ]);
      ("legalize",
       [ Alcotest.test_case "no violations" `Quick
           test_legalize_no_violations;
         Alcotest.test_case "cells in regions" `Quick
           test_legalize_cells_in_their_regions;
         Alcotest.test_case "row balance" `Quick test_legalize_row_balance;
         Alcotest.test_case "overflow raises" `Quick test_overflow_raises ]);
      ("placement",
       [ Alcotest.test_case "hpwl and bbox" `Quick test_hpwl_and_bbox;
         Alcotest.test_case "overlap detected" `Quick
           test_validate_detects_overlap;
         Alcotest.test_case "out of bounds detected" `Quick
           test_validate_detects_out_of_bounds;
         Alcotest.test_case "utilization" `Quick test_utilization_reported ]);
      ("filler",
       [ Alcotest.test_case "tiles exactly" `Quick test_fillers_tile_exactly;
         Alcotest.test_case "no overlap with cells" `Quick
           test_fillers_do_not_overlap_cells ]);
      ("refine",
       [ Alcotest.test_case "never worse, legal" `Quick
           test_refine_never_worse_and_legal;
         Alcotest.test_case "improves bad order" `Quick
           test_refine_improves_bad_order;
         Alcotest.test_case "idempotent" `Quick test_refine_idempotent ]);
      ("anneal",
       [ Alcotest.test_case "improves and legal" `Quick
           test_anneal_improves_and_legal;
         Alcotest.test_case "deterministic" `Quick
           test_anneal_deterministic;
         Alcotest.test_case "beats greedy start" `Quick
           test_anneal_beats_greedy_start ]);
      ("export",
       [ Alcotest.test_case "def" `Quick test_def_export;
         Alcotest.test_case "svg" `Quick test_svg_export;
         Alcotest.test_case "svg overlay" `Quick test_svg_overlay ]) ]
