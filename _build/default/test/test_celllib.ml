(* Tests for the synthetic 65nm cell library: logic functions, arities,
   physical and electrical characterization. *)

module K = Celllib.Kind

let bits n width = Array.init width (fun i -> (n lsr i) land 1 = 1)

(* Exhaustive truth-table check of every combinational kind against an
   independent reference implementation. *)
let reference k (v : bool array) =
  match k with
  | K.Inv -> not v.(0)
  | K.Buf -> v.(0)
  | K.Nand2 -> not (v.(0) && v.(1))
  | K.Nand3 -> not (v.(0) && v.(1) && v.(2))
  | K.Nor2 -> not (v.(0) || v.(1))
  | K.Nor3 -> not (v.(0) || v.(1) || v.(2))
  | K.And2 -> v.(0) && v.(1)
  | K.And3 -> v.(0) && v.(1) && v.(2)
  | K.Or2 -> v.(0) || v.(1)
  | K.Or3 -> v.(0) || v.(1) || v.(2)
  | K.Xor2 -> (v.(0) || v.(1)) && not (v.(0) && v.(1))
  | K.Xnor2 -> not ((v.(0) || v.(1)) && not (v.(0) && v.(1)))
  | K.Aoi21 -> not ((v.(0) && v.(1)) || v.(2))
  | K.Oai21 -> not ((v.(0) || v.(1)) && v.(2))
  | K.Mux2 -> if v.(2) then v.(1) else v.(0)
  | K.Dff | K.Filler _ -> assert false

let test_truth_tables () =
  List.iter
    (fun k ->
       if not (K.is_sequential k) then begin
         let arity = K.num_inputs k in
         for n = 0 to (1 lsl arity) - 1 do
           let v = bits n arity in
           Alcotest.(check bool)
             (Printf.sprintf "%s(%d)" (K.name k) n)
             (reference k v) (K.eval k v)
         done
       end)
    K.all_logic

let test_arity_matches_eval () =
  List.iter
    (fun k ->
       if not (K.is_sequential k) then begin
         let wrong = Array.make (K.num_inputs k + 1) false in
         match K.eval k wrong with
         | _ -> Alcotest.failf "%s accepted wrong arity" (K.name k)
         | exception Invalid_argument _ -> ()
       end)
    K.all_logic

let test_sequential_and_filler_eval_rejected () =
  Alcotest.check_raises "dff"
    (Invalid_argument "Kind.eval: DFF is not combinational")
    (fun () -> ignore (K.eval K.Dff [| true |]));
  (match K.eval (K.Filler 4) [||] with
   | _ -> Alcotest.fail "filler eval should raise"
   | exception Invalid_argument _ -> ())

let test_classification () =
  Alcotest.(check bool) "dff sequential" true (K.is_sequential K.Dff);
  Alcotest.(check bool) "inv not sequential" false (K.is_sequential K.Inv);
  Alcotest.(check bool) "filler is filler" true (K.is_filler (K.Filler 2));
  Alcotest.(check bool) "dff not filler" false (K.is_filler K.Dff);
  Alcotest.(check bool) "no filler in all_logic" true
    (List.for_all (fun k -> not (K.is_filler k)) K.all_logic);
  Alcotest.(check int) "filler has no inputs" 0 (K.num_inputs (K.Filler 8))

let test_names_unique () =
  let names = List.map K.name K.all_logic in
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_filler_widths () =
  List.iter
    (fun w ->
       let info = Celllib.Info.get (K.Filler w) in
       Alcotest.(check int) "width" w info.Celllib.Info.width_sites;
       Alcotest.(check (float 0.0)) "no cap" 0.0 info.Celllib.Info.input_cap_ff;
       Alcotest.(check (float 0.0)) "no leak" 0.0 info.Celllib.Info.leakage_nw;
       Alcotest.(check (float 0.0)) "no internal cap" 0.0
         info.Celllib.Info.internal_cap_ff)
    K.filler_widths;
  Alcotest.(check bool) "width 1 available (gaps always decompose)" true
    (List.mem 1 K.filler_widths)

let test_info_positive () =
  List.iter
    (fun k ->
       let i = Celllib.Info.get k in
       if i.Celllib.Info.width_sites <= 0 then
         Alcotest.failf "%s non-positive width" (K.name k);
       if i.Celllib.Info.input_cap_ff <= 0.0 then
         Alcotest.failf "%s non-positive input cap" (K.name k);
       if i.Celllib.Info.intrinsic_ps <= 0.0 then
         Alcotest.failf "%s non-positive delay" (K.name k);
       if i.Celllib.Info.leakage_nw <= 0.0 then
         Alcotest.failf "%s non-positive leakage" (K.name k))
    K.all_logic

let test_area () =
  let tech = Celllib.Tech.default_65nm in
  let w = Celllib.Info.width_um tech K.Inv in
  Alcotest.(check (float 1e-9)) "inv width"
    (float_of_int (Celllib.Info.get K.Inv).Celllib.Info.width_sites
     *. tech.Celllib.Tech.site_width_um)
    w;
  Alcotest.(check (float 1e-9)) "inv area"
    (w *. tech.Celllib.Tech.row_height_um)
    (Celllib.Info.area_um2 tech K.Inv);
  Alcotest.(check bool) "dff bigger than inv" true
    (Celllib.Info.area_um2 tech K.Dff > Celllib.Info.area_um2 tech K.Inv)

let test_tech () =
  let tech = Celllib.Tech.default_65nm in
  Alcotest.(check int) "node" 65 tech.Celllib.Tech.node_nm;
  Alcotest.(check (float 1e-9)) "1 GHz cycle" 1000.0
    (Celllib.Tech.cycle_time_ps tech);
  Alcotest.(check bool) "derating positive" true
    (tech.Celllib.Tech.delay_temp_coeff_per_k > 0.0
     && tech.Celllib.Tech.wire_temp_coeff_per_k
        > tech.Celllib.Tech.delay_temp_coeff_per_k)

let test_compare_equal () =
  Alcotest.(check bool) "equal" true (K.equal K.Inv K.Inv);
  Alcotest.(check bool) "not equal" false (K.equal K.Inv K.Buf);
  Alcotest.(check bool) "filler widths distinguish" false
    (K.equal (K.Filler 1) (K.Filler 2));
  Alcotest.(check int) "compare reflexive" 0 (K.compare K.Mux2 K.Mux2)

let test_lef_export () =
  let tech = Celllib.Tech.default_65nm in
  let lef = Celllib.Lef.to_string tech in
  let count prefix =
    String.split_on_char '\n' lef
    |> List.filter (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
    |> List.length
  in
  Alcotest.(check int) "one MACRO per library cell"
    (Celllib.Lef.macro_count tech)
    (count "MACRO ");
  Alcotest.(check int) "one site" 1 (count "SITE unit_site");
  (* every logic macro carries its output pin *)
  Alcotest.(check bool) "output pins present" true
    (count "  PIN z" = List.length K.all_logic)

let () =
  Alcotest.run "celllib"
    [ ("kind",
       [ Alcotest.test_case "truth tables exhaustive" `Quick
           test_truth_tables;
         Alcotest.test_case "arity enforcement" `Quick
           test_arity_matches_eval;
         Alcotest.test_case "dff/filler eval rejected" `Quick
           test_sequential_and_filler_eval_rejected;
         Alcotest.test_case "classification" `Quick test_classification;
         Alcotest.test_case "names unique" `Quick test_names_unique;
         Alcotest.test_case "compare/equal" `Quick test_compare_equal ]);
      ("info",
       [ Alcotest.test_case "filler widths" `Quick test_filler_widths;
         Alcotest.test_case "positive characterization" `Quick
           test_info_positive;
         Alcotest.test_case "area" `Quick test_area ]);
      ("tech", [ Alcotest.test_case "constants" `Quick test_tech ]);
      ("lef", [ Alcotest.test_case "export" `Quick test_lef_export ]) ]
