(* Tests for the cycle-based simulator, workloads, activity measurement and
   the probabilistic transition-density engine. *)

module B = Netlist.Builder
module K = Celllib.Kind

let test_comb_propagation_one_step () =
  let b = B.create () in
  let a = B.add_input b in
  let n1 = B.add_gate b K.Inv [| a |] in
  let n2 = B.add_gate b K.Inv [| n1 |] in
  let n3 = B.add_gate b K.Inv [| n2 |] in
  B.mark_output b n3;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  Logicsim.Sim.set_input sim 0 true;
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "inv chain in one cycle" false
    (Logicsim.Sim.value sim n3);
  Logicsim.Sim.set_input sim 0 false;
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "flips back" true (Logicsim.Sim.value sim n3)

let test_dff_one_cycle_delay () =
  let b = B.create () in
  let a = B.add_input b in
  let q = B.add_dff b ~d:a in
  B.mark_output b q;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  Logicsim.Sim.set_input sim 0 true;
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "q still 0 in capture cycle" false
    (Logicsim.Sim.value sim q);
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "q is 1 next cycle" true (Logicsim.Sim.value sim q)

let test_dff_pipeline_depth () =
  let b = B.create () in
  let a = B.add_input b in
  let q1 = B.add_dff b ~d:a in
  let q2 = B.add_dff b ~d:q1 in
  let q3 = B.add_dff b ~d:q2 in
  B.mark_output b q3;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  Logicsim.Sim.set_input sim 0 true;
  Logicsim.Sim.step sim;
  Logicsim.Sim.step sim;
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "3-stage pipe not yet" false
    (Logicsim.Sim.value sim q3);
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "arrives cycle 4" true (Logicsim.Sim.value sim q3)

let test_constants_hold () =
  let b = B.create () in
  let one = B.add_constant b true in
  let zero = B.add_constant b false in
  let n = B.add_gate b K.And2 [| one; zero |] in
  B.mark_output b n;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  Logicsim.Sim.step sim;
  Alcotest.(check bool) "one" true (Logicsim.Sim.value sim one);
  Alcotest.(check bool) "zero" false (Logicsim.Sim.value sim zero);
  Alcotest.(check int) "constants never toggle" 0
    (Logicsim.Sim.toggles sim one)

let test_toggle_counting () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Buf [| a |] in
  B.mark_output b n;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  for k = 1 to 6 do
    Logicsim.Sim.set_input sim 0 (k mod 2 = 1);
    Logicsim.Sim.step sim
  done;
  Alcotest.(check int) "pi toggles" 6 (Logicsim.Sim.toggles sim 0);
  Alcotest.(check int) "buf follows" 6 (Logicsim.Sim.toggles sim n);
  Alcotest.(check int) "cycles" 6 (Logicsim.Sim.cycles sim);
  Logicsim.Sim.reset_counters sim;
  Alcotest.(check int) "reset toggles" 0 (Logicsim.Sim.toggles sim 0);
  Alcotest.(check int) "reset cycles" 0 (Logicsim.Sim.cycles sim);
  Alcotest.(check bool) "state survives reset" true
    (Logicsim.Sim.value sim 0 = Logicsim.Sim.value sim n)

let test_ones_counting () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Inv [| a |] in
  B.mark_output b n;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  Logicsim.Sim.set_input sim 0 true;
  Logicsim.Sim.step sim;
  Logicsim.Sim.step sim;
  Logicsim.Sim.set_input sim 0 false;
  Logicsim.Sim.step sim;
  Alcotest.(check int) "pi ones" 2 (Logicsim.Sim.ones sim 0);
  Alcotest.(check int) "inv ones" 1 (Logicsim.Sim.ones sim n)

(* --- workloads ----------------------------------------------------------- *)

let test_workload_activity () =
  let w = Logicsim.Workload.make ~default:0.1 ~hot:[ (2, 0.9) ] in
  Alcotest.(check (float 1e-9)) "hot" 0.9
    (Logicsim.Workload.activity w ~tag:2);
  Alcotest.(check (float 1e-9)) "cold" 0.1
    (Logicsim.Workload.activity w ~tag:0);
  Alcotest.(check (float 1e-9)) "untagged uses default" 0.1
    (Logicsim.Workload.activity w ~tag:(-1))

let test_workload_validation () =
  (match Logicsim.Workload.uniform 1.5 with
   | _ -> Alcotest.fail "p>1 accepted"
   | exception Invalid_argument _ -> ());
  (match Logicsim.Workload.make ~default:0.5 ~hot:[ (0, -0.1) ] with
   | _ -> Alcotest.fail "p<0 accepted"
   | exception Invalid_argument _ -> ())

let test_workload_shapes () =
  let s = Logicsim.Workload.scattered_hotspots ~hot_units:[ 1; 3 ] in
  Alcotest.(check bool) "hot unit high" true
    (Logicsim.Workload.activity s ~tag:1 > 0.4);
  Alcotest.(check bool) "cold unit low" true
    (Logicsim.Workload.activity s ~tag:0 < 0.05);
  let c = Logicsim.Workload.concentrated_hotspot ~hot_unit:7 in
  Alcotest.(check bool) "concentrated hot" true
    (Logicsim.Workload.activity c ~tag:7 > 0.4)

let test_workload_zero_activity_settles () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let sim = Logicsim.Sim.create nl in
  let w = Logicsim.Workload.uniform 0.0 in
  let rng = Geo.Rng.create 1 in
  (* settle, then measure: with frozen inputs nothing may toggle *)
  Logicsim.Workload.run w sim rng ~cycles:8;
  Logicsim.Sim.reset_counters sim;
  Logicsim.Workload.run w sim rng ~cycles:20;
  let total = ref 0 in
  for nid = 0 to Netlist.Types.num_nets nl - 1 do
    total := !total + Logicsim.Sim.toggles sim nid
  done;
  Alcotest.(check int) "no toggles at zero activity" 0 !total

let test_workload_full_activity () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let sim = Logicsim.Sim.create nl in
  let w = Logicsim.Workload.uniform 1.0 in
  let rng = Geo.Rng.create 1 in
  Logicsim.Workload.run w sim rng ~cycles:10;
  Array.iter
    (fun nid ->
       Alcotest.(check int)
         (Printf.sprintf "pi %d toggles every cycle" nid)
         10
         (Logicsim.Sim.toggles sim nid))
    nl.Netlist.Types.primary_inputs

(* --- activity measurement ------------------------------------------------ *)

let test_activity_measure () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let sim = Logicsim.Sim.create nl in
  let w = Logicsim.Workload.uniform 0.4 in
  let rng = Geo.Rng.create 5 in
  let r = Logicsim.Activity.measure sim w rng ~warmup:16 ~cycles:600 in
  Alcotest.(check int) "cycles recorded" 600
    r.Logicsim.Activity.measured_cycles;
  Array.iter
    (fun rate ->
       if rate < 0.0 || rate > 1.0 then
         Alcotest.failf "toggle rate %g out of [0,1]" rate)
    r.Logicsim.Activity.toggle_rate;
  (* primary-input rates concentrate around the workload probability *)
  let pi_rates =
    Array.map
      (fun nid -> r.Logicsim.Activity.toggle_rate.(nid))
      nl.Netlist.Types.primary_inputs
  in
  let mean = Geo.Stats.mean pi_rates in
  if Float.abs (mean -. 0.4) > 0.05 then
    Alcotest.failf "mean PI rate %.3f far from 0.4" mean

let test_activity_requires_cycles () =
  let bench = Netgen.Benchmark.small () in
  let sim = Logicsim.Sim.create bench.Netgen.Benchmark.netlist in
  (match
     Logicsim.Activity.measure sim (Logicsim.Workload.uniform 0.1)
       (Geo.Rng.create 1) ~warmup:0 ~cycles:0
   with
   | _ -> Alcotest.fail "cycles=0 accepted"
   | exception Invalid_argument _ -> ())

let test_activity_constant_rate () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let r = Logicsim.Activity.of_constant_rate nl ~rate:0.25 in
  Alcotest.(check (float 1e-9)) "rate" 0.25
    r.Logicsim.Activity.toggle_rate.(0);
  Alcotest.(check int) "length" (Netlist.Types.num_nets nl)
    (Array.length r.Logicsim.Activity.toggle_rate)

(* --- density engine ------------------------------------------------------- *)

let density_of_gate kind input_densities =
  let b = B.create () in
  let pis = Array.map (fun _ -> B.add_input b) input_densities in
  let n = B.add_gate b kind pis in
  B.mark_output b n;
  let nl = B.finish b in
  let est =
    Logicsim.Density.propagate nl
      ~input_density:(fun k -> input_densities.(k)) ()
  in
  (est.Logicsim.Density.prob.(n), est.Logicsim.Density.density.(n))

let test_density_gate_formulas () =
  let p, d = density_of_gate K.And2 [| 0.2; 0.4 |] in
  Alcotest.(check (float 1e-9)) "and2 prob" 0.25 p;
  (* D = pb*Da + pa*Db with pa=pb=0.5 *)
  Alcotest.(check (float 1e-9)) "and2 density" 0.3 d;
  let p, d = density_of_gate K.Xor2 [| 0.2; 0.4 |] in
  Alcotest.(check (float 1e-9)) "xor2 prob" 0.5 p;
  Alcotest.(check (float 1e-9)) "xor2 density" 0.6 d;
  let p, d = density_of_gate K.Inv [| 0.3 |] in
  Alcotest.(check (float 1e-9)) "inv prob" 0.5 p;
  Alcotest.(check (float 1e-9)) "inv density" 0.3 d

let test_density_clamped () =
  let _, d = density_of_gate K.Xor2 [| 0.9; 0.9 |] in
  Alcotest.(check bool) "density clamped to 1" true (d <= 1.0)

let test_density_vs_simulation () =
  (* The analytical estimate should track simulation on the small benchmark
     within a loose tolerance (reconvergence causes known error). *)
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let w = Logicsim.Workload.uniform 0.3 in
  let sim = Logicsim.Sim.create nl in
  let measured =
    Logicsim.Activity.measure sim w (Geo.Rng.create 9) ~warmup:32
      ~cycles:1500
  in
  let est = Logicsim.Density.of_workload nl w in
  let err = ref 0.0 and n = ref 0 in
  Netlist.Types.iter_nets nl ~f:(fun nid _ ->
      err :=
        !err
        +. Float.abs
             (measured.Logicsim.Activity.toggle_rate.(nid)
              -. est.Logicsim.Density.density.(nid));
      incr n);
  let mae = !err /. float_of_int !n in
  (* reconvergent fan-out in the arithmetic arrays makes the independence
     assumption optimistic; 0.2 toggles/cycle MAE is the documented
     accuracy envelope of the analytical engine *)
  if mae > 0.2 then
    Alcotest.failf "density MAE %.3f too large vs simulation" mae

let test_density_constants () =
  let b = B.create () in
  let one = B.add_constant b true in
  let a = B.add_input b in
  let n = B.add_gate b K.And2 [| one; a |] in
  B.mark_output b n;
  let nl = B.finish b in
  let est = Logicsim.Density.propagate nl ~input_density:(fun _ -> 0.4) () in
  Alcotest.(check (float 1e-9)) "const prob" 1.0
    est.Logicsim.Density.prob.(one);
  Alcotest.(check (float 1e-9)) "const density" 0.0
    est.Logicsim.Density.density.(one);
  (* and with constant 1 is transparent *)
  Alcotest.(check (float 1e-9)) "through-and density" 0.4
    est.Logicsim.Density.density.(n)

(* --- event-driven engine ---------------------------------------------------- *)

(* XOR of a signal with a doubly-inverted copy of itself: statically always
   0, but under unit delay each input toggle produces a glitch pulse. *)
let glitch_circuit () =
  let b = B.create () in
  let a = B.add_input b in
  let d1 = B.add_gate b K.Inv [| a |] in
  let d2 = B.add_gate b K.Inv [| d1 |] in
  let out = B.add_gate b K.Xor2 [| a; d2 |] in
  B.mark_output b out;
  (B.finish b, out)

let test_event_sim_sees_glitches () =
  let nl, out = glitch_circuit () in
  let zsim = Logicsim.Sim.create nl in
  let esim = Logicsim.Event_sim.create nl in
  for k = 1 to 10 do
    let v = k mod 2 = 1 in
    Logicsim.Sim.set_input zsim 0 v;
    Logicsim.Event_sim.set_input esim 0 v;
    Logicsim.Sim.step zsim;
    Logicsim.Event_sim.step esim
  done;
  Alcotest.(check int) "zero-delay sees no output toggles" 0
    (Logicsim.Sim.toggles zsim out);
  (* each of the 10 input toggles produces one 2-transition glitch pulse *)
  Alcotest.(check int) "event engine counts the glitches" 20
    (Logicsim.Event_sim.toggles esim out)

let test_event_sim_settled_values_match_sim () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let zsim = Logicsim.Sim.create nl in
  let esim = Logicsim.Event_sim.create nl in
  let rng = Geo.Rng.create 17 in
  for _cycle = 1 to 40 do
    for k = 0 to Netlist.Types.num_primary_inputs nl - 1 do
      if Geo.Rng.bernoulli rng 0.4 then begin
        let v = not (Logicsim.Sim.input_value zsim k) in
        Logicsim.Sim.set_input zsim k v;
        Logicsim.Event_sim.set_input esim k v
      end
    done;
    Logicsim.Sim.step zsim;
    Logicsim.Event_sim.step esim;
    Netlist.Types.iter_nets nl ~f:(fun nid _ ->
        if Logicsim.Sim.value zsim nid
           <> Logicsim.Event_sim.value esim nid
        then
          Alcotest.failf "cycle values diverge on net %d" nid)
  done

let test_event_sim_toggles_dominate () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let zsim = Logicsim.Sim.create nl in
  let esim = Logicsim.Event_sim.create nl in
  let rng = Geo.Rng.create 23 in
  for _ = 1 to 60 do
    for k = 0 to Netlist.Types.num_primary_inputs nl - 1 do
      if Geo.Rng.bernoulli rng 0.3 then begin
        let v = not (Logicsim.Sim.input_value zsim k) in
        Logicsim.Sim.set_input zsim k v;
        Logicsim.Event_sim.set_input esim k v
      end
    done;
    Logicsim.Sim.step zsim;
    Logicsim.Event_sim.step esim
  done;
  let total_z = ref 0 and total_e = ref 0 in
  Netlist.Types.iter_nets nl ~f:(fun nid _ ->
      let z = Logicsim.Sim.toggles zsim nid in
      let e = Logicsim.Event_sim.toggles esim nid in
      if e < z then
        Alcotest.failf "net %d: event toggles %d < zero-delay %d" nid e z;
      total_z := !total_z + z;
      total_e := !total_e + e);
  Alcotest.(check bool) "arithmetic logic glitches measurably" true
    (!total_e > !total_z)

let test_event_sim_settle_depth_bounded () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let depth = Netlist.Stats.logic_depth nl in
  let esim = Logicsim.Event_sim.create nl in
  let w = Logicsim.Workload.uniform 0.5 in
  let rng = Geo.Rng.create 31 in
  let report = Logicsim.Event_sim.measure esim w rng ~warmup:4 ~cycles:20 in
  Alcotest.(check int) "cycles measured" 20
    report.Logicsim.Activity.measured_cycles;
  Alcotest.(check bool)
    (Printf.sprintf "settles within depth+2 waves (%d <= %d)"
       (Logicsim.Event_sim.last_settle_waves esim) (depth + 2))
    true
    (Logicsim.Event_sim.last_settle_waves esim <= depth + 2)

let test_event_sim_rates_can_exceed_one () =
  let nl, out = glitch_circuit () in
  let esim = Logicsim.Event_sim.create nl in
  let w = Logicsim.Workload.uniform 1.0 in
  let rng = Geo.Rng.create 3 in
  let report = Logicsim.Event_sim.measure esim w rng ~warmup:2 ~cycles:50 in
  Alcotest.(check bool) "glitchy net above 1 toggle/cycle" true
    (report.Logicsim.Activity.toggle_rate.(out) > 1.0)

(* --- vcd export --------------------------------------------------------------- *)

let test_vcd_structure () =
  let b = B.create () in
  let a = B.add_input ~name:"a" b in
  let n = B.add_gate b K.Inv [| a |] in
  B.mark_output b n;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  (* toggle the input on every second cycle *)
  let vcd =
    Logicsim.Vcd.record sim
      ~drive:(fun k -> Logicsim.Sim.set_input sim 0 (k mod 2 = 0))
      ~cycles:6 ()
  in
  let count prefix =
    String.split_on_char '\n' vcd
    |> List.filter (fun l ->
        String.length l >= String.length prefix
        && String.sub l 0 (String.length prefix) = prefix)
    |> List.length
  in
  Alcotest.(check int) "var declarations (two nets)" 2 (count "$var wire 1");
  Alcotest.(check int) "timescale" 1 (count "$timescale");
  Alcotest.(check int) "dumpvars" 1 (count "$dumpvars");
  (* the input toggles every cycle after the first (0->1,1->0,...): six
     cycles produce six timestamps *)
  Alcotest.(check int) "timestamps" 6 (count "#")

let test_vcd_change_only_encoding () =
  let b = B.create () in
  let a = B.add_input ~name:"a" b in
  B.mark_output b a;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  (* constant input: no changes after the initial dump *)
  let vcd =
    Logicsim.Vcd.record sim ~drive:(fun _ -> ()) ~cycles:5 ()
  in
  Alcotest.(check bool) "no timestamps for a quiet trace" true
    (not (String.contains vcd '#'))

let test_vcd_net_selection () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let sim = Logicsim.Sim.create nl in
  let rng = Geo.Rng.create 5 in
  let w = Logicsim.Workload.uniform 0.5 in
  let nets = [ 0; 1; 2 ] in
  let vcd = Logicsim.Vcd.record_workload sim w rng ~cycles:4 ~nets () in
  let vars =
    String.split_on_char '\n' vcd
    |> List.filter (fun l ->
        String.length l >= 4 && String.sub l 0 4 = "$var")
  in
  Alcotest.(check int) "only selected nets" 3 (List.length vars)

let () =
  Alcotest.run "logicsim"
    [ ("sim",
       [ Alcotest.test_case "comb one step" `Quick
           test_comb_propagation_one_step;
         Alcotest.test_case "dff delay" `Quick test_dff_one_cycle_delay;
         Alcotest.test_case "pipeline depth" `Quick test_dff_pipeline_depth;
         Alcotest.test_case "constants hold" `Quick test_constants_hold;
         Alcotest.test_case "toggle counting" `Quick test_toggle_counting;
         Alcotest.test_case "ones counting" `Quick test_ones_counting ]);
      ("workload",
       [ Alcotest.test_case "activity mapping" `Quick test_workload_activity;
         Alcotest.test_case "validation" `Quick test_workload_validation;
         Alcotest.test_case "paper shapes" `Quick test_workload_shapes;
         Alcotest.test_case "zero activity settles" `Quick
           test_workload_zero_activity_settles;
         Alcotest.test_case "full activity" `Quick
           test_workload_full_activity ]);
      ("activity",
       [ Alcotest.test_case "measure" `Quick test_activity_measure;
         Alcotest.test_case "cycles required" `Quick
           test_activity_requires_cycles;
         Alcotest.test_case "constant rate" `Quick
           test_activity_constant_rate ]);
      ("density",
       [ Alcotest.test_case "gate formulas" `Quick
           test_density_gate_formulas;
         Alcotest.test_case "clamped" `Quick test_density_clamped;
         Alcotest.test_case "tracks simulation" `Quick
           test_density_vs_simulation;
         Alcotest.test_case "constants" `Quick test_density_constants ]);
      ("event-sim",
       [ Alcotest.test_case "sees glitches" `Quick
           test_event_sim_sees_glitches;
         Alcotest.test_case "settled values match Sim" `Quick
           test_event_sim_settled_values_match_sim;
         Alcotest.test_case "toggles dominate zero-delay" `Quick
           test_event_sim_toggles_dominate;
         Alcotest.test_case "settle depth bounded" `Quick
           test_event_sim_settle_depth_bounded;
         Alcotest.test_case "rates exceed one on glitchy nets" `Quick
           test_event_sim_rates_can_exceed_one ]);
      ("vcd",
       [ Alcotest.test_case "structure" `Quick test_vcd_structure;
         Alcotest.test_case "change-only encoding" `Quick
           test_vcd_change_only_encoding;
         Alcotest.test_case "net selection" `Quick test_vcd_net_selection ]) ]
