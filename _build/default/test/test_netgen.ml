(* Functional correctness of the arithmetic generators, verified by logic
   simulation against integer arithmetic. *)

module B = Netlist.Builder

let set_bus sim first_pi width v =
  for i = 0 to width - 1 do
    Logicsim.Sim.set_input sim (first_pi + i) ((v lsr i) land 1 = 1)
  done

let read_bus sim (bus : Netlist.Types.net_id array) =
  Array.to_list bus
  |> List.mapi (fun i nid -> if Logicsim.Sim.value sim nid then 1 lsl i else 0)
  |> List.fold_left ( + ) 0

(* Build a combinational circuit over two PI buses, simulate one cycle per
   stimulus and compare against [model]. *)
let check_binop ~name ~wa ~wb ~build ~model stimuli =
  let b = B.create () in
  let a_bus = Array.init wa (fun _ -> B.add_input b) in
  let b_bus = Array.init wb (fun _ -> B.add_input b) in
  let outs = build b ~a:a_bus ~b:b_bus in
  Array.iter (B.mark_output b) outs;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  List.iter
    (fun (x, y) ->
       set_bus sim 0 wa x;
       set_bus sim wa wb y;
       Logicsim.Sim.step sim;
       let got = read_bus sim outs in
       let expected = model x y in
       if got <> expected then
         Alcotest.failf "%s(%d, %d): expected %d, got %d" name x y expected
           got)
    stimuli

let exhaustive w =
  List.concat_map
    (fun x -> List.init (1 lsl w) (fun y -> (x, y)))
    (List.init (1 lsl w) (fun x -> x))

let random_pairs ~w ~n seed =
  let rng = Geo.Rng.create seed in
  List.init n (fun _ ->
      (Geo.Rng.int rng (1 lsl w), Geo.Rng.int rng (1 lsl w)))

(* --- adders -------------------------------------------------------------- *)

let build_adder kind b ~a ~b:b_bus =
  let zero = B.add_constant b false in
  let sum, carry =
    match kind with
    | `Ripple -> Netgen.Adder.ripple_carry b ~a ~b:b_bus ~cin:zero
    | `Cla -> Netgen.Adder.carry_lookahead b ~a ~b:b_bus ~cin:zero
    | `Csel -> Netgen.Adder.carry_select b ~a ~b:b_bus ~cin:zero ~group:3
  in
  Array.append sum [| carry |]

let test_ripple_exhaustive_4bit () =
  check_binop ~name:"ripple4" ~wa:4 ~wb:4 ~build:(build_adder `Ripple)
    ~model:(fun x y -> x + y)
    (exhaustive 4)

let test_ripple_with_carry_in () =
  let b = B.create () in
  let a_bus = Array.init 4 (fun _ -> B.add_input b) in
  let b_bus = Array.init 4 (fun _ -> B.add_input b) in
  let cin = B.add_input b in
  let sum, carry = Netgen.Adder.ripple_carry b ~a:a_bus ~b:b_bus ~cin in
  let outs = Array.append sum [| carry |] in
  Array.iter (B.mark_output b) outs;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  List.iter
    (fun (x, y) ->
       set_bus sim 0 4 x;
       set_bus sim 4 4 y;
       Logicsim.Sim.set_input sim 8 true;
       Logicsim.Sim.step sim;
       Alcotest.(check int)
         (Printf.sprintf "%d+%d+1" x y)
         (x + y + 1) (read_bus sim outs))
    [ (0, 0); (15, 15); (7, 8); (9, 3) ]

let test_cla_matches_ripple () =
  check_binop ~name:"cla16" ~wa:16 ~wb:16 ~build:(build_adder `Cla)
    ~model:(fun x y -> x + y)
    (random_pairs ~w:16 ~n:200 101)

let test_carry_select () =
  check_binop ~name:"csel10" ~wa:10 ~wb:10 ~build:(build_adder `Csel)
    ~model:(fun x y -> x + y)
    (random_pairs ~w:10 ~n:200 102)

let test_subtractor () =
  check_binop ~name:"sub6" ~wa:6 ~wb:6
    ~build:(fun b ~a ~b:b_bus ->
        let diff, no_borrow = Netgen.Adder.subtractor b ~a ~b:b_bus in
        Array.append diff [| no_borrow |])
    ~model:(fun x y ->
        (* 6-bit two's complement difference + "no borrow" flag as bit 6 *)
        ((x - y) land 63) lor (if x >= y then 64 else 0))
    (exhaustive 6)

(* --- multipliers ---------------------------------------------------------- *)

let test_array_multiplier_exhaustive_4bit () =
  check_binop ~name:"mul4" ~wa:4 ~wb:4
    ~build:(fun b ~a ~b:b_bus -> Netgen.Multiplier.array_multiplier b ~a ~b:b_bus)
    ~model:( * ) (exhaustive 4)

let test_array_multiplier_rectangular () =
  check_binop ~name:"mul6x3" ~wa:6 ~wb:3
    ~build:(fun b ~a ~b:b_bus -> Netgen.Multiplier.array_multiplier b ~a ~b:b_bus)
    ~model:( * )
    (List.concat_map (fun x -> List.init 8 (fun y -> (x, y)))
       (List.init 64 (fun x -> x)))

let test_wallace_multiplier () =
  check_binop ~name:"wallace8" ~wa:8 ~wb:8
    ~build:(fun b ~a ~b:b_bus ->
        Netgen.Multiplier.wallace_multiplier b ~a ~b:b_bus)
    ~model:( * ) (random_pairs ~w:8 ~n:300 103)

let test_wallace_exhaustive_3bit () =
  check_binop ~name:"wallace3" ~wa:3 ~wb:3
    ~build:(fun b ~a ~b:b_bus ->
        Netgen.Multiplier.wallace_multiplier b ~a ~b:b_bus)
    ~model:( * ) (exhaustive 3)

(* --- divider -------------------------------------------------------------- *)

let test_divider () =
  check_binop ~name:"div6" ~wa:6 ~wb:6
    ~build:(fun b ~a ~b:b_bus ->
        let q, r = Netgen.Divider.array_divider b ~dividend:a ~divisor:b_bus in
        Array.append q r)
    ~model:(fun x y ->
        if y = 0 then
          (* divide-by-zero: quotient saturates to all-ones, remainder is
             left as the iterated shift result; only the quotient part is
             architected, so compare quotient bits only by masking the
             model: the hardware yields q=63 (every trial subtraction
             succeeds against 0) and r=x mod 64 shifted out = 0 *)
          63 lor ((x land 0) lsl 6)
        else (x / y) lor ((x mod y) lsl 6))
    (List.filter (fun (_, y) -> y > 0) (exhaustive 6))

let test_divider_edge_cases () =
  check_binop ~name:"div-edge" ~wa:8 ~wb:8
    ~build:(fun b ~a ~b:b_bus ->
        let q, r = Netgen.Divider.array_divider b ~dividend:a ~divisor:b_bus in
        Array.append q r)
    ~model:(fun x y -> (x / y) lor ((x mod y) lsl 8))
    [ (0, 1); (255, 1); (255, 255); (1, 255); (128, 2); (100, 7) ]

(* --- comparators ---------------------------------------------------------- *)

let test_comparator_exhaustive () =
  check_binop ~name:"cmp3" ~wa:3 ~wb:3
    ~build:(fun b ~a ~b:b_bus ->
        let lt, eq, gt = Netgen.Comparator.compare_full b ~a ~b:b_bus in
        [| lt; eq; gt |])
    ~model:(fun x y ->
        (if x < y then 1 else 0) lor (if x = y then 2 else 0)
        lor (if x > y then 4 else 0))
    (exhaustive 3)

let test_equal () =
  check_binop ~name:"eq5" ~wa:5 ~wb:5
    ~build:(fun b ~a ~b:b_bus -> [| Netgen.Comparator.equal b ~a ~b:b_bus |])
    ~model:(fun x y -> if x = y then 1 else 0)
    (random_pairs ~w:5 ~n:100 104 @ [ (7, 7); (0, 0); (31, 31) ])

(* --- shifter -------------------------------------------------------------- *)

let test_barrel_shifts () =
  (* data is 8 bits, amount is 3 bits packed into the "b" bus *)
  let mask = 255 in
  check_binop ~name:"shl8" ~wa:8 ~wb:3
    ~build:(fun b ~a ~b:amount ->
        Netgen.Shifter.barrel_left b ~data:a ~amount)
    ~model:(fun x s -> (x lsl s) land mask)
    (random_pairs ~w:8 ~n:50 105
     |> List.map (fun (x, y) -> (x, y land 7)));
  check_binop ~name:"shr8" ~wa:8 ~wb:3
    ~build:(fun b ~a ~b:amount ->
        Netgen.Shifter.barrel_right b ~data:a ~amount)
    ~model:(fun x s -> x lsr s)
    (random_pairs ~w:8 ~n:50 106
     |> List.map (fun (x, y) -> (x, y land 7)));
  check_binop ~name:"rol8" ~wa:8 ~wb:3
    ~build:(fun b ~a ~b:amount ->
        Netgen.Shifter.rotate_left b ~data:a ~amount)
    ~model:(fun x s -> ((x lsl s) lor (x lsr (8 - s))) land mask)
    (random_pairs ~w:8 ~n:50 107
     |> List.map (fun (x, y) -> (x, 1 + (y land 6))))

(* --- ALU ------------------------------------------------------------------ *)

let test_alu_ops () =
  let w = 8 in
  let mask = (1 lsl w) - 1 in
  List.iter
    (fun (op, model_fn, name) ->
       check_binop ~name ~wa:w ~wb:w
         ~build:(fun b ~a ~b:b_bus ->
             let op0 = B.add_constant b (op land 1 = 1) in
             let op1 = B.add_constant b (op land 2 = 2) in
             let result, _flag =
               Netgen.Alu.alu b ~a ~b:b_bus ~op:{ Netgen.Alu.op0; op1 }
             in
             result)
         ~model:model_fn
         (random_pairs ~w ~n:100 (110 + op)))
    [ (0, (fun x y -> (x + y) land mask), "alu-add");
      (1, (fun x y -> (x - y) land mask), "alu-sub");
      (2, (fun x y -> x land y), "alu-and");
      (3, (fun x y -> x lxor y), "alu-xor") ]

(* --- MAC ------------------------------------------------------------------ *)

let test_mac_accumulates () =
  let w = 4 in
  let b = B.create () in
  let a_bus = Array.init w (fun _ -> B.add_input b) in
  let b_bus = Array.init w (fun _ -> B.add_input b) in
  let acc = Netgen.Mac.mac b ~a:a_bus ~b:b_bus ~acc_width:(2 * w) in
  Array.iter (B.mark_output b) acc;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  set_bus sim 0 w 5;
  set_bus sim w w 3;
  (* single-stage MAC: acc <= acc + a*b, so after k cycles the visible
     accumulator holds (k-1) products *)
  for k = 1 to 6 do
    Logicsim.Sim.step sim;
    let expected = max 0 (k - 1) * 15 mod 256 in
    Alcotest.(check int)
      (Printf.sprintf "acc after %d cycles" k)
      expected (read_bus sim acc)
  done

let test_mac_too_narrow_rejected () =
  let b = B.create () in
  let a_bus = Array.init 4 (fun _ -> B.add_input b) in
  let b_bus = Array.init 4 (fun _ -> B.add_input b) in
  (match Netgen.Mac.mac b ~a:a_bus ~b:b_bus ~acc_width:7 with
   | _ -> Alcotest.fail "narrow accumulator accepted"
   | exception Invalid_argument _ -> ())

(* --- prim reductions ------------------------------------------------------ *)

let test_reductions () =
  let check name build model =
    check_binop ~name ~wa:5 ~wb:1
      ~build:(fun b ~a ~b:_ -> [| build b a |])
      ~model:(fun x _ -> model x)
      (List.init 32 (fun x -> (x, 0)))
  in
  check "and_reduce" (fun b a -> Netgen.Prim.and_reduce b a)
    (fun x -> if x = 31 then 1 else 0);
  check "or_reduce" (fun b a -> Netgen.Prim.or_reduce b a)
    (fun x -> if x > 0 then 1 else 0);
  check "xor_reduce" (fun b a -> Netgen.Prim.xor_reduce b a)
    (fun x ->
       let rec pop n = if n = 0 then 0 else (n land 1) + pop (n lsr 1) in
       pop x land 1)

let test_full_adder_prim () =
  check_binop ~name:"fa" ~wa:2 ~wb:1
    ~build:(fun b ~a ~b:c ->
        let s, carry = Netgen.Prim.full_adder b a.(0) a.(1) c.(0) in
        [| s; carry |])
    ~model:(fun x c -> (x land 1) + ((x lsr 1) land 1) + c)
    [ (0, 0); (1, 0); (2, 0); (3, 0); (0, 1); (1, 1); (2, 1); (3, 1) ]

(* --- sequential blocks ------------------------------------------------------ *)

let test_lfsr_matches_software_model () =
  let width = 4 and taps = [ 3; 2 ] in
  let b = B.create () in
  let q = Netgen.Seq.xnor_lfsr b ~width ~taps in
  Array.iter (B.mark_output b) q;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  (* software model: state starts at 0 (the DFF power-up value) *)
  let state = ref 0 in
  let model_step () =
    let tap_xor =
      List.fold_left (fun acc i -> acc lxor ((!state lsr i) land 1)) 0 taps
    in
    let feedback = 1 - tap_xor in
    state := ((!state lsl 1) lor feedback) land ((1 lsl width) - 1)
  in
  (* after step k the visible Q is the state after k-1 transitions (the
     capture of cycle k becomes visible in cycle k+1) *)
  for cycle = 1 to 40 do
    Logicsim.Sim.step sim;
    let hw = read_bus sim q in
    Alcotest.(check int)
      (Printf.sprintf "state at cycle %d" cycle)
      !state hw;
    model_step ()
  done

let test_lfsr_maximal_period () =
  let width = 4 and taps = [ 3; 2 ] in
  let b = B.create () in
  let q = Netgen.Seq.xnor_lfsr b ~width ~taps in
  Array.iter (B.mark_output b) q;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  let seen = Hashtbl.create 16 in
  let states = ref [] in
  for _ = 1 to 15 do
    Logicsim.Sim.step sim;
    let s = read_bus sim q in
    states := s :: !states;
    Hashtbl.replace seen s ()
  done;
  (* maximal-length XNOR LFSR: 15 distinct states, never all-ones *)
  Alcotest.(check int) "15 distinct states" 15 (Hashtbl.length seen);
  Alcotest.(check bool) "all-ones lockup state never visited" true
    (not (Hashtbl.mem seen 15));
  (* and it is periodic: the 16th step revisits the 1st state *)
  Logicsim.Sim.step sim;
  Alcotest.(check int) "period 15" (List.nth (List.rev !states) 0)
    (read_bus sim q)

let test_counter_counts () =
  let b = B.create () in
  let en = B.add_input b in
  let q = Netgen.Seq.counter b ~width:5 ~enable:en in
  Array.iter (B.mark_output b) q;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  Logicsim.Sim.set_input sim 0 true;
  for k = 1 to 40 do
    Logicsim.Sim.step sim;
    (* visible count lags the capture by one cycle *)
    Alcotest.(check int)
      (Printf.sprintf "count at %d" k)
      ((k - 1) mod 32)
      (read_bus sim q)
  done;
  (* freeze *)
  Logicsim.Sim.set_input sim 0 false;
  Logicsim.Sim.step sim;
  let frozen = read_bus sim q in
  Logicsim.Sim.step sim;
  Alcotest.(check int) "enable gates counting" frozen (read_bus sim q)

let test_gray_encode () =
  let b = B.create () in
  let bus = Array.init 4 (fun _ -> B.add_input b) in
  let gray = Netgen.Seq.gray_encode b bus in
  Array.iter (B.mark_output b) gray;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  for v = 0 to 15 do
    set_bus sim 0 4 v;
    Logicsim.Sim.step sim;
    Alcotest.(check int)
      (Printf.sprintf "gray(%d)" v)
      (v lxor (v lsr 1))
      (read_bus sim gray)
  done

(* --- benchmark ------------------------------------------------------------ *)

let test_nine_unit_shape () =
  let bench = Netgen.Benchmark.nine_unit () in
  let nl = bench.Netgen.Benchmark.netlist in
  Alcotest.(check int) "nine units" 9
    (Array.length bench.Netgen.Benchmark.units);
  let n = Netlist.Types.num_cells nl in
  if n < 10000 || n > 15000 then
    Alcotest.failf "cell count %d out of the paper's ~12k ballpark" n;
  Alcotest.(check bool) "well formed" true (Netlist.Check.is_well_formed nl);
  Alcotest.(check (list int)) "tags 0..8"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]
    (Netlist.Types.unit_tags nl);
  Array.iter
    (fun u ->
       let cells =
         Netlist.Types.cells_of_unit nl u.Netgen.Benchmark.tag
       in
       if List.length cells < 100 then
         Alcotest.failf "unit %s suspiciously small"
           u.Netgen.Benchmark.unit_name)
    bench.Netgen.Benchmark.units

let test_small_benchmark () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  Alcotest.(check int) "three units" 3
    (Array.length bench.Netgen.Benchmark.units);
  Alcotest.(check bool) "well formed" true (Netlist.Check.is_well_formed nl);
  Alcotest.(check bool) "smaller than nine_unit" true
    (Netlist.Types.num_cells nl < 1000)

let test_unit_of_cell () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  match Netlist.Types.cells_of_unit nl 1 with
  | cid :: _ ->
    (match Netgen.Benchmark.unit_of_cell bench cid with
     | Some u -> Alcotest.(check int) "tag" 1 u.Netgen.Benchmark.tag
     | None -> Alcotest.fail "expected a unit")
  | [] -> Alcotest.fail "unit 1 empty"

(* --- property tests ---------------------------------------------------------- *)

let simulate_binop ~wa ~wb ~build (x, y) =
  let b = B.create () in
  let a_bus = Array.init wa (fun _ -> B.add_input b) in
  let b_bus = Array.init wb (fun _ -> B.add_input b) in
  let outs = build b ~a:a_bus ~b:b_bus in
  Array.iter (B.mark_output b) outs;
  let nl = B.finish b in
  let sim = Logicsim.Sim.create nl in
  set_bus sim 0 wa x;
  set_bus sim wa wb y;
  Logicsim.Sim.step sim;
  read_bus sim outs

let prop_adders_agree =
  QCheck.Test.make
    ~name:"ripple, CLA and carry-select agree at random widths" ~count:40
    QCheck.(triple (int_range 2 14) (int_range 0 16383) (int_range 0 16383))
    (fun (w, x0, y0) ->
       let mask = (1 lsl w) - 1 in
       let x = x0 land mask and y = y0 land mask in
       let run kind =
         simulate_binop ~wa:w ~wb:w
           ~build:(fun b ~a ~b:b_bus ->
               let zero = B.add_constant b false in
               let sum, c =
                 match kind with
                 | `R -> Netgen.Adder.ripple_carry b ~a ~b:b_bus ~cin:zero
                 | `C -> Netgen.Adder.carry_lookahead b ~a ~b:b_bus ~cin:zero
                 | `S ->
                   Netgen.Adder.carry_select b ~a ~b:b_bus ~cin:zero ~group:3
               in
               Array.append sum [| c |])
           (x, y)
       in
       let expected = x + y in
       run `R = expected && run `C = expected && run `S = expected)

let prop_multipliers_agree =
  QCheck.Test.make ~name:"array and Wallace multipliers agree" ~count:30
    QCheck.(triple (int_range 2 8) (int_range 0 255) (int_range 0 255))
    (fun (w, x0, y0) ->
       let mask = (1 lsl w) - 1 in
       let x = x0 land mask and y = y0 land mask in
       let run f = simulate_binop ~wa:w ~wb:w ~build:f (x, y) in
       run (fun b ~a ~b:b_bus -> Netgen.Multiplier.array_multiplier b ~a ~b:b_bus)
       = x * y
       && run (fun b ~a ~b:b_bus ->
           Netgen.Multiplier.wallace_multiplier b ~a ~b:b_bus)
          = x * y)

let prop_division_identity =
  QCheck.Test.make ~name:"divider satisfies x = q*y + r, r < y" ~count:40
    QCheck.(pair (int_range 0 255) (int_range 1 255))
    (fun (x, y) ->
       let out =
         simulate_binop ~wa:8 ~wb:8
           ~build:(fun b ~a ~b:b_bus ->
               let q, r =
                 Netgen.Divider.array_divider b ~dividend:a ~divisor:b_bus
               in
               Array.append q r)
           (x, y)
       in
       let q = out land 255 and r = (out lsr 8) land 255 in
       (q * y) + r = x && r < y)

let () =
  Alcotest.run "netgen"
    [ ("adders",
       [ Alcotest.test_case "ripple exhaustive 4b" `Quick
           test_ripple_exhaustive_4bit;
         Alcotest.test_case "ripple carry-in" `Quick test_ripple_with_carry_in;
         Alcotest.test_case "CLA random 16b" `Quick test_cla_matches_ripple;
         Alcotest.test_case "carry-select 10b" `Quick test_carry_select;
         Alcotest.test_case "subtractor exhaustive 6b" `Quick
           test_subtractor ]);
      ("multipliers",
       [ Alcotest.test_case "array exhaustive 4b" `Quick
           test_array_multiplier_exhaustive_4bit;
         Alcotest.test_case "array rectangular 6x3" `Quick
           test_array_multiplier_rectangular;
         Alcotest.test_case "wallace random 8b" `Quick
           test_wallace_multiplier;
         Alcotest.test_case "wallace exhaustive 3b" `Quick
           test_wallace_exhaustive_3bit ]);
      ("divider",
       [ Alcotest.test_case "exhaustive 6b" `Quick test_divider;
         Alcotest.test_case "edge cases 8b" `Quick test_divider_edge_cases ]);
      ("comparators",
       [ Alcotest.test_case "compare_full exhaustive 3b" `Quick
           test_comparator_exhaustive;
         Alcotest.test_case "equal 5b" `Quick test_equal ]);
      ("shifter",
       [ Alcotest.test_case "barrel left/right/rotate" `Quick
           test_barrel_shifts ]);
      ("alu", [ Alcotest.test_case "four ops" `Quick test_alu_ops ]);
      ("mac",
       [ Alcotest.test_case "accumulates" `Quick test_mac_accumulates;
         Alcotest.test_case "narrow acc rejected" `Quick
           test_mac_too_narrow_rejected ]);
      ("prim",
       [ Alcotest.test_case "reductions" `Quick test_reductions;
         Alcotest.test_case "full adder" `Quick test_full_adder_prim ]);
      ("seq",
       [ Alcotest.test_case "lfsr vs software model" `Quick
           test_lfsr_matches_software_model;
         Alcotest.test_case "lfsr maximal period" `Quick
           test_lfsr_maximal_period;
         Alcotest.test_case "counter" `Quick test_counter_counts;
         Alcotest.test_case "gray encode" `Quick test_gray_encode ]);
      ("benchmark",
       [ Alcotest.test_case "nine-unit shape" `Quick test_nine_unit_shape;
         Alcotest.test_case "small benchmark" `Quick test_small_benchmark;
         Alcotest.test_case "unit_of_cell" `Quick test_unit_of_cell ]);
      ("properties",
       List.map QCheck_alcotest.to_alcotest
         [ prop_adders_agree; prop_multipliers_agree;
           prop_division_identity ]) ]
