(* End-to-end integration tests on the full nine-unit benchmark: the
   qualitative claims of the paper must hold on every run. These use
   reduced simulation cycles to stay fast; the bench executable runs the
   full-fidelity versions. *)

module P = Place.Placement

(* One shared flow per test set (preparing the 12k-cell benchmark takes
   under a second, evaluating a placement ~0.5 s). *)
let flow1 = lazy (Postplace.Experiment.test_set_1 ~sim_cycles:200 ())
let flow2 = lazy (Postplace.Experiment.test_set_2 ~sim_cycles:200 ())

let base1 =
  lazy
    (let fl = Lazy.force flow1 in
     Postplace.Flow.evaluate fl fl.Postplace.Flow.base_placement)

let base2 =
  lazy
    (let fl = Lazy.force flow2 in
     Postplace.Flow.evaluate fl fl.Postplace.Flow.base_placement)

let test_base_placement_legal () =
  let fl = Lazy.force flow1 in
  Alcotest.(check int) "no violations" 0
    (List.length (P.validate fl.Postplace.Flow.base_placement))

let test_scattered_hotspots_detected () =
  let ev = Lazy.force base1 in
  let n = List.length ev.Postplace.Flow.hotspots in
  if n < 2 then
    Alcotest.failf "expected multiple scattered hotspots, found %d" n

let test_concentrated_hotspot_detected () =
  let ev = Lazy.force base2 in
  (match ev.Postplace.Flow.hotspots with
   | [] -> Alcotest.fail "no hotspot"
   | h :: _ ->
     (* the dominant hotspot must cover the hot unit (mul20, tag 2) *)
     let fl = Lazy.force flow2 in
     let nl = fl.Postplace.Flow.bench.Netgen.Benchmark.netlist in
     let hot_cells = h.Postplace.Hotspot.cells in
     let of_unit2 =
       List.length
         (List.filter
            (fun cid ->
               (Netlist.Types.cell nl cid).Netlist.Types.unit_tag = 2)
            hot_cells)
     in
     let frac = float_of_int of_unit2 /. float_of_int (List.length hot_cells) in
     if frac < 0.5 then
       Alcotest.failf "hotspot only %.0f%% mul20 cells" (100.0 *. frac))

let test_hotspot_covers_hot_units_ts1 () =
  let fl = Lazy.force flow1 in
  let ev = Lazy.force base1 in
  let nl = fl.Postplace.Flow.bench.Netgen.Benchmark.netlist in
  let hot_tags = [ 0; 4; 6; 8 ] in
  List.iter
    (fun h ->
       let cells = h.Postplace.Hotspot.cells in
       let hot_members =
         List.length
           (List.filter
              (fun cid ->
                 List.mem (Netlist.Types.cell nl cid).Netlist.Types.unit_tag
                   hot_tags)
              cells)
       in
       let frac =
         float_of_int hot_members /. float_of_int (max 1 (List.length cells))
       in
       if frac < 0.5 then
         Alcotest.failf "a detected hotspot is mostly cold cells (%.0f%%)"
           (100.0 *. frac))
    ev.Postplace.Flow.hotspots

(* The paper's headline (Fig. 6): at equal area overhead both techniques
   beat the uniform Default. *)
let test_eri_beats_default_ts1 () =
  let fl = Lazy.force flow1 in
  let base = Lazy.force base1 in
  let frac = 0.2 in
  let util = fl.Postplace.Flow.base_utilization /. (1.0 +. frac) in
  let d = Postplace.Flow.apply_default fl ~utilization:util in
  let de = Postplace.Flow.evaluate fl d in
  let rows =
    int_of_float
      (frac
       *. float_of_int
            fl.Postplace.Flow.base_placement.P.fp.Place.Floorplan.num_rows)
  in
  let e = Postplace.Flow.apply_eri fl ~base ~rows in
  let ee = Postplace.Flow.evaluate fl e.Postplace.Technique.eri_placement in
  let red ev =
    Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
      ~after:ev.Postplace.Flow.metrics
  in
  Alcotest.(check bool)
    (Printf.sprintf "ERI %.2f%% > Default %.2f%%" (red ee) (red de))
    true
    (red ee > red de);
  Alcotest.(check bool) "both reductions positive" true
    (red de > 0.0 && red ee > 0.0)

let test_hw_beats_default_ts1 () =
  let fl = Lazy.force flow1 in
  let base = Lazy.force base1 in
  let util = fl.Postplace.Flow.base_utilization /. 1.2 in
  let d = Postplace.Flow.apply_default fl ~utilization:util in
  let de = Postplace.Flow.evaluate fl d in
  let hw = Postplace.Flow.apply_hw fl ~on:de () in
  let he = Postplace.Flow.evaluate fl hw in
  let red ev =
    Thermal.Metrics.reduction_pct ~before:base.Postplace.Flow.metrics
      ~after:ev.Postplace.Flow.metrics
  in
  Alcotest.(check bool)
    (Printf.sprintf "HW %.2f%% > Default %.2f%%" (red he) (red de))
    true
    (red he > red de)

(* Table I shape: on the concentrated hotspot ERI clearly beats Default at
   matched overhead, and more so at the larger overhead. *)
let test_table1_shape () =
  let fl = Lazy.force flow2 in
  let rows = Postplace.Experiment.run_table1 fl in
  let find scheme overhead =
    List.find
      (fun r ->
         r.Postplace.Experiment.t1_scheme = scheme
         && Float.abs (r.Postplace.Experiment.t1_overhead_pct -. overhead)
            < 3.0)
      rows
  in
  let d16 = find "Default" 16.1 and d32 = find "Default" 32.2 in
  let e16 = find "ERI" 16.1 and e32 = find "ERI" 32.2 in
  Alcotest.(check bool) "ERI > Default @16%" true
    (e16.Postplace.Experiment.t1_reduction_pct
     > d16.Postplace.Experiment.t1_reduction_pct);
  Alcotest.(check bool) "ERI > Default @32%" true
    (e32.Postplace.Experiment.t1_reduction_pct
     > d32.Postplace.Experiment.t1_reduction_pct);
  Alcotest.(check bool) "more overhead helps ERI" true
    (e32.Postplace.Experiment.t1_reduction_pct
     > e16.Postplace.Experiment.t1_reduction_pct);
  Alcotest.(check bool) "more overhead helps Default" true
    (d32.Postplace.Experiment.t1_reduction_pct
     > d16.Postplace.Experiment.t1_reduction_pct);
  (* ERI grows only vertically, Default grows both dimensions *)
  Alcotest.(check bool) "ERI width fixed" true
    (Float.abs
       (e16.Postplace.Experiment.t1_width_um
        -. Geo.Rect.width
             (Lazy.force flow2).Postplace.Flow.base_placement.P.fp
               .Place.Floorplan.core)
     < 1e-6)

(* In-text claim: ERI's timing overhead stays small (paper: ~2 %). *)
let test_eri_timing_overhead_small () =
  let fl = Lazy.force flow1 in
  let base = Lazy.force base1 in
  let rows =
    int_of_float
      (0.2
       *. float_of_int
            fl.Postplace.Flow.base_placement.P.fp.Place.Floorplan.num_rows)
  in
  let e = Postplace.Flow.apply_eri fl ~base ~rows in
  let ee = Postplace.Flow.evaluate fl e.Postplace.Technique.eri_placement in
  let overhead =
    Sta.Timing.overhead_pct ~before:base.Postplace.Flow.timing
      ~after:ee.Postplace.Flow.timing
  in
  if overhead > 3.0 then
    Alcotest.failf "ERI timing overhead %.2f%% exceeds the paper's ~2%%"
      overhead

(* In-text by-product: ERI lowers routing demand inside the hotspot. *)
let test_eri_congestion_byproduct () =
  let fl = Lazy.force flow1 in
  match Postplace.Experiment.run_congestion fl with
  | [ base; eri ] ->
    Alcotest.(check bool)
      (Printf.sprintf "hotspot demand %.0f -> %.0f"
         base.Postplace.Experiment.cs_hotspot_demand_um
         eri.Postplace.Experiment.cs_hotspot_demand_um)
      true
      (eri.Postplace.Experiment.cs_hotspot_demand_um
       < base.Postplace.Experiment.cs_hotspot_demand_um)
  | _ -> Alcotest.fail "unexpected congestion summary shape"

(* All transformed placements stay legal on the full benchmark. *)
let test_all_techniques_legal () =
  let fl = Lazy.force flow1 in
  let base = Lazy.force base1 in
  let d = Postplace.Flow.apply_default fl ~utilization:0.6 in
  Alcotest.(check int) "default legal" 0 (List.length (P.validate d));
  let e = Postplace.Flow.apply_eri fl ~base ~rows:10 in
  Alcotest.(check int) "eri legal" 0
    (List.length (P.validate e.Postplace.Technique.eri_placement));
  let de = Postplace.Flow.evaluate fl d in
  let hw = Postplace.Flow.apply_hw fl ~on:de () in
  Alcotest.(check int) "hw legal" 0 (List.length (P.validate hw))

let test_fig5_maps_consistent () =
  let fl = Lazy.force flow1 in
  let power, thermal = Postplace.Experiment.fig5_maps fl in
  Alcotest.(check int) "40x40 power" 40 (Geo.Grid.nx power);
  Alcotest.(check int) "40x40 thermal" 40 (Geo.Grid.nx thermal);
  (* the hottest thermal tile must be near a high-power tile: correlation
     between the two maps is strongly positive *)
  let n = 40 * 40 in
  let p = Array.make n 0.0 and t = Array.make n 0.0 in
  Geo.Grid.iteri power ~f:(fun ~ix ~iy v -> p.((iy * 40) + ix) <- v);
  Geo.Grid.iteri thermal ~f:(fun ~ix ~iy v -> t.((iy * 40) + ix) <- v);
  let mp = Geo.Stats.mean p and mt = Geo.Stats.mean t in
  let cov = ref 0.0 and vp = ref 0.0 and vt = ref 0.0 in
  for i = 0 to n - 1 do
    cov := !cov +. ((p.(i) -. mp) *. (t.(i) -. mt));
    vp := !vp +. ((p.(i) -. mp) ** 2.0);
    vt := !vt +. ((t.(i) -. mt) ** 2.0)
  done;
  let corr = !cov /. sqrt (!vp *. !vt) in
  if corr < 0.5 then
    Alcotest.failf
      "power/thermal correlation %.2f too weak (paper: 'significant \
       correlation')"
      corr

(* Baselines: the placement-time power-aware spreader must beat uniform
   Default (it uses power information) while ERI stays far cheaper in
   timing. *)
let test_baselines_ordering () =
  let fl = Lazy.force flow1 in
  match Postplace.Experiment.run_baselines fl with
  | [ default; aware; eri; _hw ] ->
    Alcotest.(check bool) "power-aware beats uniform Default" true
      (aware.Postplace.Experiment.bl_reduction_pct
       > default.Postplace.Experiment.bl_reduction_pct);
    Alcotest.(check bool) "ERI beats uniform Default" true
      (eri.Postplace.Experiment.bl_reduction_pct
       > default.Postplace.Experiment.bl_reduction_pct);
    Alcotest.(check bool) "ERI timing far below power-aware timing" true
      (eri.Postplace.Experiment.bl_timing_pct
       < aware.Postplace.Experiment.bl_timing_pct /. 2.0)
  | _ -> Alcotest.fail "unexpected baselines shape"

(* Ablation: interleaved rows beat a clustered block (the paper's design
   choice in SIII-A). *)
let test_ablation_interleaving_wins () =
  let fl = Lazy.force flow2 in
  let rows = Postplace.Experiment.run_ablation fl in
  let find name =
    List.find
      (fun r -> r.Postplace.Experiment.ab_variant = name)
      rows
  in
  let inter = find "ERI interleaved" and clus = find "ERI clustered" in
  Alcotest.(check bool) "interleaved beats clustered" true
    (inter.Postplace.Experiment.ab_reduction_pct
     > clus.Postplace.Experiment.ab_reduction_pct)

(* Glitch study: the event-driven engine must report at least as much
   activity and power as the zero-delay engine. *)
let test_glitch_factor_positive () =
  let fl = Lazy.force flow1 in
  match Postplace.Experiment.run_glitch ~cycles:120 fl with
  | [ rate; power; peak ] ->
    List.iter
      (fun (r : Postplace.Experiment.glitch_row) ->
         Alcotest.(check bool)
           (r.Postplace.Experiment.gl_metric ^ " event >= zero-delay")
           true
           (r.gl_event_driven >= r.gl_zero_delay *. 0.999))
      [ rate; power; peak ]
  | _ -> Alcotest.fail "unexpected glitch shape"

let () =
  Alcotest.run "integration"
    [ ("setup",
       [ Alcotest.test_case "base placement legal" `Quick
           test_base_placement_legal;
         Alcotest.test_case "scattered hotspots" `Quick
           test_scattered_hotspots_detected;
         Alcotest.test_case "concentrated hotspot" `Quick
           test_concentrated_hotspot_detected;
         Alcotest.test_case "hotspots are the hot units" `Quick
           test_hotspot_covers_hot_units_ts1 ]);
      ("paper-claims",
       [ Alcotest.test_case "ERI beats Default (fig6)" `Slow
           test_eri_beats_default_ts1;
         Alcotest.test_case "HW beats Default (fig6)" `Slow
           test_hw_beats_default_ts1;
         Alcotest.test_case "Table I shape" `Slow test_table1_shape;
         Alcotest.test_case "ERI timing overhead small" `Slow
           test_eri_timing_overhead_small;
         Alcotest.test_case "ERI congestion by-product" `Slow
           test_eri_congestion_byproduct;
         Alcotest.test_case "power/thermal correlation (fig5)" `Quick
           test_fig5_maps_consistent ]);
      ("legality",
       [ Alcotest.test_case "all techniques legal" `Slow
           test_all_techniques_legal ]);
      ("extensions",
       [ Alcotest.test_case "baselines ordering" `Slow
           test_baselines_ordering;
         Alcotest.test_case "ablation: interleaving wins" `Slow
           test_ablation_interleaving_wins;
         Alcotest.test_case "glitch factor" `Slow
           test_glitch_factor_positive ]) ]
