test/test_route.ml: Alcotest Array Celllib Float Geo List Netgen Netlist Place Route
