test/test_postplace.ml: Alcotest Array Celllib Float Geo Lazy List Logicsim Netgen Netlist Place Postplace Power Printf QCheck QCheck_alcotest Sta Thermal
