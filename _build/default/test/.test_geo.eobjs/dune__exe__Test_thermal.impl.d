test/test_thermal.ml: Alcotest Array Float Geo List Printf QCheck QCheck_alcotest String Thermal
