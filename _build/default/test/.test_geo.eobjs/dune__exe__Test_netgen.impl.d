test/test_netgen.ml: Alcotest Array Geo Hashtbl List Logicsim Netgen Netlist Printf QCheck QCheck_alcotest
