test/test_postplace.mli:
