test/test_celllib.ml: Alcotest Array Celllib List Printf String
