test/test_geo.ml: Alcotest Array Float Format Geo List QCheck QCheck_alcotest String
