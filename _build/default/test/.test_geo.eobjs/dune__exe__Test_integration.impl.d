test/test_integration.ml: Alcotest Array Float Geo Lazy List Netgen Netlist Place Postplace Printf Sta Thermal
