test/test_celllib.mli:
