test/test_netlist.ml: Alcotest Array Celllib Filename List Netlist String Sys
