test/test_power.ml: Alcotest Array Celllib Geo List Logicsim Netgen Netlist Place Power Printf
