test/test_place.ml: Alcotest Array Celllib Float Format Geo List Netgen Netlist Place Printf String
