test/test_sta.ml: Alcotest Array Celllib Geo List Netgen Netlist Place Sta
