test/test_logicsim.ml: Alcotest Array Celllib Float Geo List Logicsim Netgen Netlist Printf String
