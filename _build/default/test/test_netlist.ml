(* Tests for the netlist representation: builder, structural checks,
   statistics. *)

module B = Netlist.Builder
module T = Netlist.Types
module K = Celllib.Kind

let tech = Celllib.Tech.default_65nm

(* a -> INV -> INV -> out, plus a DFF stage *)
let tiny_circuit () =
  let b = B.create () in
  let a = B.add_input ~name:"a" b in
  let n1 = B.add_gate b K.Inv [| a |] in
  let n2 = B.add_gate b K.Inv [| n1 |] in
  let q = B.add_dff b ~d:n2 in
  B.mark_output b q;
  B.finish b

let test_builder_basics () =
  let nl = tiny_circuit () in
  Alcotest.(check int) "cells" 3 (T.num_cells nl);
  Alcotest.(check int) "nets" 4 (T.num_nets nl);
  Alcotest.(check int) "PIs" 1 (T.num_primary_inputs nl);
  Alcotest.(check int) "POs" 1 (T.num_primary_outputs nl)

let test_driver_and_sinks () =
  let nl = tiny_circuit () in
  let pi_net = nl.T.primary_inputs.(0) in
  (match (T.net nl pi_net).T.driver with
   | T.Primary_input 0 -> ()
   | _ -> Alcotest.fail "PI driver wrong");
  Alcotest.(check int) "PI fanout" 1 (T.fanout nl pi_net);
  let inv0 = T.cell nl 0 in
  (match (T.net nl inv0.T.output).T.driver with
   | T.Cell_output 0 -> ()
   | _ -> Alcotest.fail "cell output driver wrong");
  let cid, pin = (T.net nl pi_net).T.sinks.(0) in
  Alcotest.(check int) "sink cell" 0 cid;
  Alcotest.(check int) "sink pin" 0 pin

let test_constants_dedup () =
  let b = B.create () in
  let z1 = B.add_constant b false in
  let z2 = B.add_constant b false in
  let o1 = B.add_constant b true in
  Alcotest.(check int) "false dedup" z1 z2;
  Alcotest.(check bool) "true distinct" true (o1 <> z1)

let test_arity_rejected () =
  let b = B.create () in
  let a = B.add_input b in
  (match B.add_gate b K.And2 [| a |] with
   | _ -> Alcotest.fail "arity mismatch accepted"
   | exception Invalid_argument _ -> ())

let test_sequential_gate_rejected () =
  let b = B.create () in
  let a = B.add_input b in
  (match B.add_gate b K.Dff [| a |] with
   | _ -> Alcotest.fail "dff through add_gate accepted"
   | exception Invalid_argument _ -> ());
  (match B.add_gate b (K.Filler 2) [||] with
   | _ -> Alcotest.fail "filler through add_gate accepted"
   | exception Invalid_argument _ -> ())

let test_dangling_input_rejected () =
  let b = B.create () in
  (match B.add_gate b K.Inv [| 42 |] with
   | _ -> Alcotest.fail "dangling net accepted"
   | exception Invalid_argument _ -> ())

let test_dff_feedback_loop_legal () =
  let b = B.create () in
  let q, connect = B.add_dff_feedback b in
  let n = B.add_gate b K.Inv [| q |] in
  connect n;
  B.mark_output b q;
  let nl = B.finish b in
  Alcotest.(check int) "cells" 2 (T.num_cells nl);
  (* the loop is broken by the flip-flop, so finish must not raise *)
  Alcotest.(check bool) "well formed" true (Netlist.Check.is_well_formed nl)

let test_unconnected_feedback_rejected () =
  let b = B.create () in
  let q, _connect = B.add_dff_feedback b in
  B.mark_output b q;
  (match B.finish b with
   | _ -> Alcotest.fail "unconnected D accepted"
   | exception Failure _ -> ())

let test_double_connect_rejected () =
  let b = B.create () in
  let q, connect = B.add_dff_feedback b in
  connect q;
  (match connect q with
   | _ -> Alcotest.fail "double connect accepted"
   | exception Invalid_argument _ -> ())

let test_mark_output_idempotent () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Buf [| a |] in
  B.mark_output b n;
  B.mark_output b n;
  let nl = B.finish b in
  Alcotest.(check int) "single PO" 1 (T.num_primary_outputs nl)

let test_unit_tags () =
  let b = B.create () in
  B.set_unit_tag b 3;
  let a = B.add_input b in
  let _n1 = B.add_gate b K.Inv [| a |] in
  B.set_unit_tag b 5;
  let c = B.add_input b in
  let n2 = B.add_gate b K.Inv [| c |] in
  B.mark_output b n2;
  let nl = B.finish b in
  Alcotest.(check (list int)) "tags" [ 3; 5 ] (T.unit_tags nl);
  Alcotest.(check (list int)) "unit 3 cells" [ 0 ] (T.cells_of_unit nl 3);
  Alcotest.(check (list int)) "unit 5 cells" [ 1 ] (T.cells_of_unit nl 5);
  Alcotest.(check int) "pi tag 0" 3 nl.T.pi_tags.(0);
  Alcotest.(check int) "pi tag 1" 5 nl.T.pi_tags.(1)

let test_check_floating () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Inv [| a |] in
  ignore n; (* n has no sinks and is not marked as output *)
  let nl = B.finish b in
  let issues = Netlist.Check.run nl in
  Alcotest.(check bool) "floating reported" true
    (List.exists
       (function Netlist.Check.Floating_net _ -> true | _ -> false)
       issues);
  (* floating nets are tolerated by well-formedness *)
  Alcotest.(check bool) "still well-formed" true
    (Netlist.Check.is_well_formed nl)

let test_check_clean_circuit () =
  let nl = tiny_circuit () in
  Alcotest.(check int) "no issues" 0 (List.length (Netlist.Check.run nl))

let test_stats () =
  let nl = tiny_circuit () in
  let s = Netlist.Stats.compute tech nl in
  Alcotest.(check int) "cells" 3 s.Netlist.Stats.cells;
  Alcotest.(check int) "ffs" 1 s.Netlist.Stats.flip_flops;
  Alcotest.(check int) "comb" 2 s.Netlist.Stats.combinational;
  Alcotest.(check int) "depth: two inverters" 2 s.Netlist.Stats.logic_depth;
  Alcotest.(check bool) "area positive" true
    (s.Netlist.Stats.total_cell_area_um2 > 0.0);
  let inv_count = List.assoc K.Inv s.Netlist.Stats.kind_counts in
  Alcotest.(check int) "inv count" 2 inv_count

let test_logic_depth_cut_by_dff () =
  let b = B.create () in
  let a = B.add_input b in
  (* 3 inverters, a DFF, then 2 inverters: depth is max(3, 2) = 3 *)
  let n = ref a in
  for _ = 1 to 3 do n := B.add_gate b K.Inv [| !n |] done;
  let q = B.add_dff b ~d:!n in
  n := q;
  for _ = 1 to 2 do n := B.add_gate b K.Inv [| !n |] done;
  B.mark_output b !n;
  let nl = B.finish b in
  Alcotest.(check int) "depth cut by dff" 3 (Netlist.Stats.logic_depth nl)

let test_iterators () =
  let nl = tiny_circuit () in
  let count = T.fold_cells nl ~init:0 ~f:(fun acc _ _ -> acc + 1) in
  Alcotest.(check int) "fold visits all" 3 count;
  let seen = ref 0 in
  T.iter_nets nl ~f:(fun _ _ -> incr seen);
  Alcotest.(check int) "iter_nets visits all" 4 !seen

(* --- verilog export ---------------------------------------------------- *)

let count_lines_with prefix s =
  String.split_on_char '\n' s
  |> List.filter (fun l ->
      String.length l >= String.length prefix
      && String.sub (String.trim l) 0
           (min (String.length (String.trim l)) (String.length prefix))
         = prefix)
  |> List.length

let test_verilog_structure () =
  let nl = tiny_circuit () in
  let v = Netlist.Verilog.to_string nl in
  Alcotest.(check int) "one module" 1 (count_lines_with "module" v);
  Alcotest.(check int) "one endmodule" 1 (count_lines_with "endmodule" v);
  (* one instance per cell *)
  Alcotest.(check int) "instances" (T.num_cells nl)
    (count_lines_with "INV_X1" v + count_lines_with "DFF_X1" v);
  (* the circuit has a flip-flop, so there must be a clk input *)
  Alcotest.(check int) "clk declared" 1 (count_lines_with "input clk" v)

let test_verilog_no_clock_when_combinational () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Inv [| a |] in
  B.mark_output b n;
  let nl = B.finish b in
  let v = Netlist.Verilog.to_string nl in
  Alcotest.(check int) "no clk port" 0 (count_lines_with "input clk" v)

let test_verilog_constants_assigned () =
  let b = B.create () in
  let one = B.add_constant b true in
  let a = B.add_input b in
  let n = B.add_gate b K.And2 [| one; a |] in
  B.mark_output b n;
  let nl = B.finish b in
  let v = Netlist.Verilog.to_string nl in
  Alcotest.(check int) "constant assign" 1 (count_lines_with "assign" v)

let test_verilog_roundtrip_file () =
  let nl = tiny_circuit () in
  let path = Filename.temp_file "thermoplace_test" ".v" in
  Netlist.Verilog.write_file path nl;
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file matches to_string"
    (Netlist.Verilog.to_string nl) content

let test_verilog_port_names_arity () =
  List.iter
    (fun k ->
       if not (Celllib.Kind.is_filler k) then
         Alcotest.(check int)
           (Celllib.Kind.name k)
           (Celllib.Kind.num_inputs k)
           (List.length (Netlist.Verilog.port_names k)))
    Celllib.Kind.all_logic

let () =
  Alcotest.run "netlist"
    [ ("builder",
       [ Alcotest.test_case "basics" `Quick test_builder_basics;
         Alcotest.test_case "drivers and sinks" `Quick test_driver_and_sinks;
         Alcotest.test_case "constants dedup" `Quick test_constants_dedup;
         Alcotest.test_case "arity rejected" `Quick test_arity_rejected;
         Alcotest.test_case "sequential gate rejected" `Quick
           test_sequential_gate_rejected;
         Alcotest.test_case "dangling input rejected" `Quick
           test_dangling_input_rejected;
         Alcotest.test_case "dff feedback loop" `Quick
           test_dff_feedback_loop_legal;
         Alcotest.test_case "unconnected feedback rejected" `Quick
           test_unconnected_feedback_rejected;
         Alcotest.test_case "double connect rejected" `Quick
           test_double_connect_rejected;
         Alcotest.test_case "mark_output idempotent" `Quick
           test_mark_output_idempotent;
         Alcotest.test_case "unit tags" `Quick test_unit_tags ]);
      ("check",
       [ Alcotest.test_case "floating net" `Quick test_check_floating;
         Alcotest.test_case "clean circuit" `Quick test_check_clean_circuit ]);
      ("stats",
       [ Alcotest.test_case "summary" `Quick test_stats;
         Alcotest.test_case "depth cut by dff" `Quick
           test_logic_depth_cut_by_dff;
         Alcotest.test_case "iterators" `Quick test_iterators ]);
      ("verilog",
       [ Alcotest.test_case "structure" `Quick test_verilog_structure;
         Alcotest.test_case "no clock when combinational" `Quick
           test_verilog_no_clock_when_combinational;
         Alcotest.test_case "constants assigned" `Quick
           test_verilog_constants_assigned;
         Alcotest.test_case "file round trip" `Quick
           test_verilog_roundtrip_file;
         Alcotest.test_case "port arities" `Quick
           test_verilog_port_names_arity ]) ]
