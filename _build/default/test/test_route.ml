(* Tests for the probabilistic congestion estimator. *)

let tech = Celllib.Tech.default_65nm

let placed_small () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let areas =
    Array.map
      (fun u ->
         let tag = u.Netgen.Benchmark.tag in
         ( tag,
           List.fold_left
             (fun acc cid ->
                acc
                +. Celllib.Info.area_um2 tech
                     (Netlist.Types.cell nl cid).Netlist.Types.kind)
             0.0
             (Netlist.Types.cells_of_unit nl tag) ))
      bench.Netgen.Benchmark.units
  in
  let total = Array.fold_left (fun s (_, a) -> s +. a) 0.0 areas in
  let fp =
    Place.Floorplan.create tech ~cell_area_um2:total ~utilization:0.8
      ~aspect:1.0
  in
  let regions = Place.Regions.pack fp ~areas in
  let cells tag = Array.of_list (Netlist.Types.cells_of_unit nl tag) in
  let pos =
    Place.Global.place nl tech ~regions ~cells_of_region:cells
      (Geo.Rng.create 3)
  in
  Place.Legalize.run nl fp ~regions ~cells_of_region:cells ~positions:pos

let test_demand_conserves_wirelength () =
  let pl = placed_small () in
  let r = Route.Congestion.estimate pl ~nx:12 ~ny:12 () in
  let hpwl = Place.Placement.hpwl pl in
  let demand_total = Geo.Grid.total r.Route.Congestion.demand in
  if Float.abs (demand_total -. hpwl) /. hpwl > 1e-6 then
    Alcotest.failf "demand %.1f != HPWL %.1f" demand_total hpwl

let test_report_consistency () =
  let pl = placed_small () in
  let r = Route.Congestion.estimate pl () in
  Alcotest.(check bool) "capacity positive" true
    (r.Route.Congestion.capacity_um > 0.0);
  Alcotest.(check bool) "max utilization consistent" true
    (Float.abs
       (r.Route.Congestion.max_utilization
        -. (Geo.Grid.max_value r.Route.Congestion.demand
            /. r.Route.Congestion.capacity_um))
     < 1e-9);
  Alcotest.(check bool) "overflow nonnegative" true
    (r.Route.Congestion.overflow_um >= 0.0);
  if r.Route.Congestion.overflow_um > 0.0 then
    Alcotest.(check bool) "overflowed tiles counted" true
      (r.Route.Congestion.overflowed_tiles > 0)

let test_hotspot_demand_partition () =
  let pl = placed_small () in
  let r = Route.Congestion.estimate pl ~nx:10 ~ny:10 () in
  let core = pl.Place.Placement.fp.Place.Floorplan.core in
  let whole = Route.Congestion.hotspot_demand r core in
  Alcotest.(check bool) "whole-core demand = total" true
    (Float.abs (whole -. Geo.Grid.total r.Route.Congestion.demand) < 1e-6);
  let left =
    Route.Congestion.hotspot_demand r
      (Geo.Rect.make ~lx:core.Geo.Rect.lx ~ly:core.Geo.Rect.ly
         ~hx:(Geo.Rect.center_x core) ~hy:core.Geo.Rect.hy)
  in
  let right =
    Route.Congestion.hotspot_demand r
      (Geo.Rect.make ~lx:(Geo.Rect.center_x core) ~ly:core.Geo.Rect.ly
         ~hx:core.Geo.Rect.hx ~hy:core.Geo.Rect.hy)
  in
  Alcotest.(check bool) "halves partition the demand" true
    (Float.abs (left +. right -. whole) < 1e-6)

let test_more_capacity_less_overflow () =
  let pl = placed_small () in
  let r2 = Route.Congestion.estimate pl ~layers:2 () in
  let r8 = Route.Congestion.estimate pl ~layers:8 () in
  Alcotest.(check bool) "more layers -> lower utilization" true
    (r8.Route.Congestion.max_utilization
     < r2.Route.Congestion.max_utilization)

let () =
  Alcotest.run "route"
    [ ("congestion",
       [ Alcotest.test_case "demand conserves wirelength" `Quick
           test_demand_conserves_wirelength;
         Alcotest.test_case "report consistency" `Quick
           test_report_consistency;
         Alcotest.test_case "hotspot demand partition" `Quick
           test_hotspot_demand_partition;
         Alcotest.test_case "capacity scaling" `Quick
           test_more_capacity_less_overflow ]) ]
