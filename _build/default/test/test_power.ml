(* Tests for power estimation and power-map binning. *)

module B = Netlist.Builder
module K = Celllib.Kind

let tech = Celllib.Tech.default_65nm

(* A one-gate circuit: pi -> INV -> po, for closed-form checks. *)
let single_inv () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Inv [| a |] in
  B.mark_output b n;
  (B.finish b, n)

let test_single_inv_closed_form () =
  let nl, out = single_inv () in
  let alpha = 0.5 in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.0 in
  rates.(out) <- alpha;
  let r = Power.Model.compute_without_wires nl tech ~toggle_rate:rates in
  let info = Celllib.Info.get K.Inv in
  (* no sinks on the output net, so C = internal cap only *)
  let expected_dyn =
    0.5 *. alpha *. info.Celllib.Info.internal_cap_ff *. 1.0e-15
    *. tech.Celllib.Tech.vdd_v *. tech.Celllib.Tech.vdd_v
    *. tech.Celllib.Tech.clock_freq_hz
  in
  Alcotest.(check (float 1e-15)) "dynamic" expected_dyn
    r.Power.Model.dynamic_w;
  Alcotest.(check (float 1e-15)) "leakage"
    (info.Celllib.Info.leakage_nw *. 1.0e-9)
    r.Power.Model.leakage_w;
  Alcotest.(check (float 1e-15)) "per-cell = total"
    (Power.Model.total_w r) r.Power.Model.per_cell_w.(0)

let test_fanout_pin_caps_counted () =
  let b = B.create () in
  let a = B.add_input b in
  let n = B.add_gate b K.Inv [| a |] in
  let s1 = B.add_gate b K.Buf [| n |] in
  let s2 = B.add_gate b K.Buf [| n |] in
  B.mark_output b s1;
  B.mark_output b s2;
  let nl = B.finish b in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.0 in
  rates.(n) <- 1.0;
  let r = Power.Model.compute_without_wires nl tech ~toggle_rate:rates in
  let inv = Celllib.Info.get K.Inv and buf = Celllib.Info.get K.Buf in
  let cap =
    inv.Celllib.Info.internal_cap_ff
    +. (2.0 *. buf.Celllib.Info.input_cap_ff)
  in
  let expected =
    0.5 *. cap *. 1.0e-15 *. tech.Celllib.Tech.clock_freq_hz
  in
  Alcotest.(check (float 1e-12)) "two sink pins counted" expected
    r.Power.Model.dynamic_w

let test_zero_activity_means_leakage_only () =
  let nl, _ = single_inv () in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.0 in
  let r = Power.Model.compute_without_wires nl tech ~toggle_rate:rates in
  Alcotest.(check (float 0.0)) "no dynamic" 0.0 r.Power.Model.dynamic_w;
  Alcotest.(check bool) "leakage remains" true (r.Power.Model.leakage_w > 0.0)

let test_rate_length_checked () =
  let nl, _ = single_inv () in
  (match
     Power.Model.compute_without_wires nl tech ~toggle_rate:[| 0.1 |]
   with
   | _ -> Alcotest.fail "length mismatch accepted"
   | exception Invalid_argument _ -> ())

(* --- with placement / wires ---------------------------------------------- *)

let placed_small () =
  let bench = Netgen.Benchmark.small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let areas =
    Array.map
      (fun u ->
         let tag = u.Netgen.Benchmark.tag in
         ( tag,
           List.fold_left
             (fun acc cid ->
                acc
                +. Celllib.Info.area_um2 tech
                     (Netlist.Types.cell nl cid).Netlist.Types.kind)
             0.0
             (Netlist.Types.cells_of_unit nl tag) ))
      bench.Netgen.Benchmark.units
  in
  let total = Array.fold_left (fun s (_, a) -> s +. a) 0.0 areas in
  let fp =
    Place.Floorplan.create tech ~cell_area_um2:total ~utilization:0.8
      ~aspect:1.0
  in
  let regions = Place.Regions.pack fp ~areas in
  let cells tag =
    Array.of_list (Netlist.Types.cells_of_unit nl tag)
  in
  let rng = Geo.Rng.create 3 in
  let pos = Place.Global.place nl tech ~regions ~cells_of_region:cells rng in
  (bench, Place.Legalize.run nl fp ~regions ~cells_of_region:cells
     ~positions:pos)

let test_wire_cap_increases_power () =
  let bench, pl = placed_small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.2 in
  let with_wires = Power.Model.compute pl ~toggle_rate:rates in
  let without = Power.Model.compute_without_wires nl tech ~toggle_rate:rates in
  Alcotest.(check bool) "wires add dynamic power" true
    (with_wires.Power.Model.dynamic_w > without.Power.Model.dynamic_w);
  Alcotest.(check (float 1e-12)) "leakage unchanged"
    without.Power.Model.leakage_w with_wires.Power.Model.leakage_w

let test_unit_power_partition () =
  let bench, pl = placed_small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.2 in
  let r = Power.Model.compute pl ~toggle_rate:rates in
  let sum_units =
    Array.fold_left
      (fun acc u ->
         acc +. Power.Model.unit_power_w nl r ~tag:u.Netgen.Benchmark.tag)
      0.0 bench.Netgen.Benchmark.units
  in
  Alcotest.(check (float 1e-12)) "unit powers partition the total"
    (Power.Model.total_w r) sum_units

let test_hot_unit_dominates () =
  let bench, pl = placed_small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let w = Logicsim.Workload.make ~default:0.02 ~hot:[ (0, 0.5) ] in
  let sim = Logicsim.Sim.create nl in
  let act =
    Logicsim.Activity.measure sim w (Geo.Rng.create 7) ~warmup:32 ~cycles:400
  in
  let r =
    Power.Model.compute pl ~toggle_rate:act.Logicsim.Activity.toggle_rate
  in
  let p0 = Power.Model.unit_power_w nl r ~tag:0 in
  let p1 = Power.Model.unit_power_w nl r ~tag:1 in
  (* unit 0 (hot multiplier) must consume several times unit 1 (idle adder) *)
  Alcotest.(check bool)
    (Printf.sprintf "hot %.2euW vs cold %.2euW" (p0 *. 1e6) (p1 *. 1e6))
    true (p0 > 3.0 *. p1)

(* --- power maps ----------------------------------------------------------- *)

let test_power_map_conserves_total () =
  let bench, pl = placed_small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.3 in
  let r = Power.Model.compute pl ~toggle_rate:rates in
  let map = Power.Map.power_map pl ~per_cell_w:r.Power.Model.per_cell_w
      ~nx:16 ~ny:16 in
  Alcotest.(check (float 1e-9)) "map total = circuit power"
    (Power.Model.total_w r) (Geo.Grid.total map)

let test_density_map_scaling () =
  let bench, pl = placed_small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let rates = Array.make (Netlist.Types.num_nets nl) 0.3 in
  let r = Power.Model.compute pl ~toggle_rate:rates in
  let pm = Power.Map.power_map pl ~per_cell_w:r.Power.Model.per_cell_w
      ~nx:8 ~ny:8 in
  let dm = Power.Map.density_map pl ~per_cell_w:r.Power.Model.per_cell_w
      ~nx:8 ~ny:8 in
  Alcotest.(check (float 1e-12)) "density = power / tile area"
    (Geo.Grid.max_value pm /. Geo.Grid.tile_area pm)
    (Geo.Grid.max_value dm)

let test_power_map_localizes_hot_unit () =
  let bench, pl = placed_small () in
  let nl = bench.Netgen.Benchmark.netlist in
  let w = Logicsim.Workload.make ~default:0.02 ~hot:[ (0, 0.5) ] in
  let sim = Logicsim.Sim.create nl in
  let act =
    Logicsim.Activity.measure sim w (Geo.Rng.create 7) ~warmup:32 ~cycles:400
  in
  let r =
    Power.Model.compute pl ~toggle_rate:act.Logicsim.Activity.toggle_rate
  in
  let map = Power.Map.power_map pl ~per_cell_w:r.Power.Model.per_cell_w
      ~nx:16 ~ny:16 in
  let ix, iy = Geo.Grid.argmax map in
  let hottest = Geo.Grid.tile_rect map ~ix ~iy in
  (* the hottest tile must sit inside the hot unit's placement region *)
  let hot_cells = Netlist.Types.cells_of_unit nl 0 in
  let inside =
    List.exists
      (fun cid ->
         Geo.Rect.intersects hottest (Place.Placement.cell_rect pl cid))
      hot_cells
  in
  Alcotest.(check bool) "hottest tile overlaps hot unit" true inside

let () =
  Alcotest.run "power"
    [ ("model",
       [ Alcotest.test_case "single inv closed form" `Quick
           test_single_inv_closed_form;
         Alcotest.test_case "fanout pin caps" `Quick
           test_fanout_pin_caps_counted;
         Alcotest.test_case "leakage only at zero activity" `Quick
           test_zero_activity_means_leakage_only;
         Alcotest.test_case "rate length checked" `Quick
           test_rate_length_checked;
         Alcotest.test_case "wire cap increases power" `Quick
           test_wire_cap_increases_power;
         Alcotest.test_case "unit power partition" `Quick
           test_unit_power_partition;
         Alcotest.test_case "hot unit dominates" `Quick
           test_hot_unit_dominates ]);
      ("map",
       [ Alcotest.test_case "conserves total" `Quick
           test_power_map_conserves_total;
         Alcotest.test_case "density scaling" `Quick
           test_density_map_scaling;
         Alcotest.test_case "localizes hot unit" `Quick
           test_power_map_localizes_hot_unit ]) ]
