(** Hotspot localization on a thermal map.

    Tiles whose temperature rise exceeds a fraction of the peak rise are
    clustered into 4-connected components; each cluster becomes a hotspot
    with its bounding rectangle (in µm) and member cells. Working
    post-placement lets the techniques "exploit both functional information
    (the actual switching activity) and physical information (cell position)
    so as to exactly localize the thermal hotspots" (paper §I). *)

type t = {
  rect : Geo.Rect.t;            (** bounding box of the cluster's tiles *)
  tiles : (int * int) list;     (** member (ix, iy) tiles *)
  peak_rise_k : float;          (** hottest tile of the cluster *)
  cells : Netlist.Types.cell_id list;  (** cells whose center lies inside *)
}

val detect : thermal:Geo.Grid.t -> placement:Place.Placement.t ->
  ?threshold_frac:float -> unit -> t list
(** Hotspots sorted hottest first. [threshold_frac] (default 0.85) is
    relative to the map's dynamic range — a tile is hot when its rise
    exceeds [min + frac * (max - min)]; it must lie in (0, 1]. *)

val tile_count : t -> int

val to_json : t -> Obs.Json.t
(** Bounding rect (µm), area, tile/cell counts and peak rise — the hotspot
    summary embedded in {!Obs.Report} run reports. *)

val total_cells : t list -> int

val span_rows : Place.Floorplan.t -> t -> int * int
(** Inclusive row range covered by the hotspot rectangle (clamped to the
    core). *)

val is_wide : Place.Floorplan.t -> t -> bool
(** The paper's ERI-suitability criterion: a hotspot is "wide" when its
    rectangle covers at least half of the core width (most of the inserted
    row area is then useful). *)
