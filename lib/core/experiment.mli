(** The paper's experiments, reproduced as data-producing runners.

    Per-experiment index lives in DESIGN.md; every runner here corresponds
    to one table or figure of the evaluation section (plus the in-text
    claims). The bench executable formats these results. *)

val test_set_1 : ?seed:int -> ?sim_cycles:int ->
  ?precond:Thermal.Mesh.precond_choice -> ?screen:Flow.screen_choice ->
  ?guide:Flow.guide_choice -> unit -> Flow.t
(** Four scattered small hotspots: units mul16a, div16, add64 and cmp32 run
    hot (they sit in different corners of the 3 x 3 region grid), the rest
    are nearly idle. [?precond] selects the thermal-solve preconditioner
    for every evaluation in the flow, [?screen] the optimizer's
    candidate-screening tier and [?guide] its candidate-ranking signal
    (see [Flow.prepare]). *)

val test_set_2 : ?seed:int -> ?sim_cycles:int ->
  ?precond:Thermal.Mesh.precond_choice -> ?screen:Flow.screen_choice ->
  ?guide:Flow.guide_choice -> unit -> Flow.t
(** One large concentrated hotspot: the 20x20 multiplier (the biggest unit)
    runs hot. *)

(** One point of the Fig. 6 temperature-reduction/area-overhead plot. *)
type point = {
  scheme : string;             (** "Default" | "ERI" | "HW" *)
  area_overhead_pct : float;
  temp_reduction_pct : float;
  gradient_reduction_pct : float;
  peak_rise_k : float;
  timing_overhead_pct : float;
  hpwl_um : float;
}

val point_of_eval : Flow.t -> base:Flow.evaluation -> scheme:string ->
  Flow.evaluation -> point

val point_to_json : point -> Obs.Json.t
val point_of_json : Obs.Json.t -> point option
(** Exact codec pair ([point_of_json (point_to_json p) = Some p],
    including float bit patterns) — the checkpoint representation of one
    sweep point. *)

type fig6 = {
  base_eval : Flow.evaluation;
  default_points : point list;
  eri_points : point list;
  hw_points : point list;
}

val run_fig6 : ?overheads:float list -> ?checkpoint:string -> Flow.t -> fig6
(** Default overhead fractions: 0.05 to 0.40 in steps of 0.05 (the paper's
    x-axis). Default relaxes utilization; ERI inserts the row count closest
    to each overhead; HW decorates each Default placement with wrappers.

    [?checkpoint] names a {!Robust.Checkpoint} file: completed points are
    re-saved atomically after each evaluation and a rerun resumes from
    whatever the file holds, reproducing the uninterrupted sweep
    bit-identically. The checkpoint is keyed by a config fingerprint
    (seed, mesh, utilization, overhead list); a mismatched or corrupt
    file raises [Robust.Error.Error (Checkpoint_corrupt _)]. *)

(** One row of Table I (concentrated hotspot). *)
type table1_row = {
  t1_scheme : string;
  t1_width_um : float;
  t1_height_um : float;
  t1_rows_inserted : int option;
  t1_overhead_pct : float;
  t1_reduction_pct : float;
}

val run_table1 : ?overheads:float list -> Flow.t -> table1_row list
(** Paper overheads: 16.1 % and 32.2 %; each produces one Default and one
    ERI row. *)

type timing_summary = {
  ts_scheme : string;
  ts_overhead_pct : float;
  ts_critical_ps : float;
  ts_overhead_timing_pct : float;
}

val run_timing : Flow.t -> timing_summary list
(** In-text claim "maximum timing overhead is around 2 %": the critical
    path of base, a Default, an ERI and an HW placement. *)

type congestion_summary = {
  cs_scheme : string;
  cs_max_utilization : float;
  cs_overflow_um : float;
  cs_hotspot_demand_um : float;
}

val run_congestion : Flow.t -> congestion_summary list
(** In-text by-product: ERI "reduces routing congestion in the hotspot
    regions". Compares base vs ERI demand inside the hottest region. *)

val fig5_maps : Flow.t -> Geo.Grid.t * Geo.Grid.t
(** (power map, thermal map) of the base placement — the paper's Fig. 5. *)

type electrothermal_row = {
  et_scheme : string;
  et_open_loop_peak_k : float;
  et_closed_loop_peak_k : float;
  et_leakage_increase_pct : float;  (** converged vs nominal leakage *)
  et_iterations : int;
}

val run_electrothermal : Flow.t -> electrothermal_row list
(** Leakage-temperature feedback (paper §I motivation) on the base
    placement and on an ERI placement at ~20 % overhead: closed-loop peaks
    are higher, and the technique's reduction is slightly larger under
    feedback. *)

type package_row = {
  pk_h_top_w_m2k : float;
  pk_peak_k : float;
  pk_gradient_k : float;
  pk_eri_reduction_pct : float;
}

val run_package_sweep : ?sinks:float list -> ?checkpoint:string -> Flow.t ->
  package_row list
(** The paper's §II remark that "for the same total power, it is possible
    to have different peak temperature and temperature gradient by using
    cooling mechanisms with different heat removal capabilities": sweep the
    effective sink conductance and report peak, gradient and the ERI
    benefit under each package. [?checkpoint] behaves as in
    {!run_fig6}. *)

type baseline_row = {
  bl_scheme : string;
  bl_overhead_pct : float;
  bl_reduction_pct : float;
  bl_timing_pct : float;
}

val run_baselines : ?overhead:float -> Flow.t -> baseline_row list
(** Post-placement vs placement-time at matched overhead (default 20 %):
    Default (uniform slack), the power-aware placement baseline, ERI and
    HW. Shows where the post-placement information advantage comes from. *)

(** One scheme of the gradient-vs-peak head-to-head. *)
type guide_row = {
  gd_scheme : string;
  gd_peak_rise_k : float;          (** full-mesh peak after the scheme *)
  gd_reduction_pct : float;
  gd_area_overhead_pct : float;
  gd_exact_solves : int;           (** optimizer thermal solves; 0 for
                                       the heuristic controls *)
  gd_adjoint_solves : int;         (** adjoint solves; gradient guide only *)
}

val run_guide : ?rows:int -> Flow.t -> guide_row list
(** Head-to-head at one row budget (default 8): the greedy optimizer
    under the peak guide (exact screening), the same optimizer under the
    adjoint gradient guide, and the paper's ERI and HW heuristics as
    controls. All four placements are re-evaluated on the flow's full
    mesh, so the rows compare end temperature, area overhead and the
    solve budget spent to get there. *)

type glitch_row = {
  gl_metric : string;
  gl_zero_delay : float;
  gl_event_driven : float;
}

val run_glitch : ?cycles:int -> Flow.t -> glitch_row list
(** Activity fidelity study: the same workload measured with the cycle
    (zero-delay) engine versus the event-driven unit-delay engine (which
    sees glitches, like the paper's VCS). Reports mean toggle rate, dynamic
    power and the resulting peak temperature rise. *)

type ablation_row = {
  ab_variant : string;
  ab_overhead_pct : float;
  ab_reduction_pct : float;
}

val run_ablation : ?overhead:float -> Flow.t -> ablation_row list
(** Design-choice ablation at one overhead point (default 20 %): ERI with
    interleaved rows (the paper's scheme), ERI with a clustered block of
    rows, and the greedy optimizer (the paper's future-work direction). *)
