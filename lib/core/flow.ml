module P = Place.Placement

type screen_choice = Screen_auto | Screen_fft | Screen_exact

let screen_choice_name = function
  | Screen_auto -> "auto"
  | Screen_fft -> "fft"
  | Screen_exact -> "exact"

type guide_choice = Guide_peak | Guide_gradient

let guide_choice_name = function
  | Guide_peak -> "peak"
  | Guide_gradient -> "gradient"

type t = {
  bench : Netgen.Benchmark.t;
  tech : Celllib.Tech.t;
  workload : Logicsim.Workload.t;
  activity : Logicsim.Activity.report;
  unit_areas : (int * float) array;
  base_placement : P.t;
  base_regions : Place.Regions.region array;
  positions : Place.Global.positions;
  per_cell_w : float array;
  power_report : Power.Model.report;
  seed : int;
  base_utilization : float;
  mesh_config : Thermal.Mesh.config;
  mesh_precond : Thermal.Mesh.precond_choice option;
  screen : screen_choice;
  guide : guide_choice;
}

let mesh_config_name (cfg : Thermal.Mesh.config) =
  Printf.sprintf "%dx%dx%d" cfg.Thermal.Mesh.nx cfg.Thermal.Mesh.ny
    (Thermal.Stack.num_layers cfg.Thermal.Mesh.stack)

let precond_choice_name = function
  | None -> "auto"
  | Some c -> Thermal.Mesh.precond_choice_name c

let mesh_name t = mesh_config_name t.mesh_config

let precond_name t = precond_choice_name t.mesh_precond

(* The fingerprint is a pure function of the configuration, so it can be
   computed from a job request *before* paying for [prepare] — the serve
   loop batches same-fingerprint jobs on exactly this identity. *)
let config_fingerprint ?(extra = []) ~mesh_config ~precond ~screen ~guide
    ~seed ~utilization () =
  String.concat "|"
    ([ "mesh=" ^ mesh_config_name mesh_config;
       "precond=" ^ precond_choice_name precond;
       "screen=" ^ screen_choice_name screen;
       "guide=" ^ guide_choice_name guide;
       Printf.sprintf "seed=%d" seed;
       Printf.sprintf "util=%g" utilization ]
     @ List.map (fun (k, v) -> k ^ "=" ^ v) extra)

let fingerprint ?extra t =
  config_fingerprint ?extra ~mesh_config:t.mesh_config
    ~precond:t.mesh_precond ~screen:t.screen ~guide:t.guide ~seed:t.seed
    ~utilization:t.base_utilization ()

let unit_cell_ids nl tag = Array.of_list (Netlist.Types.cells_of_unit nl tag)

let cells_of_region t tag = unit_cell_ids t.bench.Netgen.Benchmark.netlist tag

let compute_unit_areas tech bench =
  let nl = bench.Netgen.Benchmark.netlist in
  Array.map
    (fun u ->
       let tag = u.Netgen.Benchmark.tag in
       let area =
         List.fold_left
           (fun acc cid ->
              acc
              +. Celllib.Info.area_um2 tech
                   (Netlist.Types.cell nl cid).Netlist.Types.kind)
           0.0
           (Netlist.Types.cells_of_unit nl tag)
       in
       (tag, area))
    bench.Netgen.Benchmark.units

let prepare ?(seed = 42) ?(utilization = 0.85) ?(sim_cycles = 1000)
    ?(warmup_cycles = 64) ?(mesh_config = Thermal.Mesh.default_config)
    ?precond ?(screen = Screen_auto) ?(guide = Guide_peak) bench workload =
  Obs.Trace.with_span "flow.prepare" @@ fun () ->
  Robust.Cancel.check ();
  let tech = Celllib.Tech.default_65nm in
  let nl = bench.Netgen.Benchmark.netlist in
  let rng = Geo.Rng.create seed in
  let sim = Logicsim.Sim.create nl in
  let activity =
    Obs.Trace.with_span "flow.activity" @@ fun () ->
    Logicsim.Activity.measure sim workload (Geo.Rng.split rng)
      ~warmup:warmup_cycles ~cycles:sim_cycles
  in
  Robust.Cancel.check ();
  let unit_areas = compute_unit_areas tech bench in
  let total_area = Array.fold_left (fun s (_, a) -> s +. a) 0.0 unit_areas in
  let fp, regions =
    Obs.Trace.with_span "flow.floorplan" @@ fun () ->
    let fp =
      Place.Floorplan.create tech ~cell_area_um2:total_area ~utilization
        ~aspect:1.0
    in
    (fp, Place.Regions.pack fp ~areas:unit_areas)
  in
  let cells_of tag = unit_cell_ids nl tag in
  let positions =
    Place.Global.place nl tech ~regions ~cells_of_region:cells_of
      (Geo.Rng.split rng)
  in
  let base_placement =
    Place.Legalize.run nl fp ~regions ~cells_of_region:cells_of ~positions
  in
  let power =
    Obs.Trace.with_span "flow.power" @@ fun () ->
    Power.Model.compute base_placement
      ~toggle_rate:activity.Logicsim.Activity.toggle_rate
  in
  { bench; tech; workload; activity; unit_areas; base_placement;
    base_regions = regions; positions;
    per_cell_w = power.Power.Model.per_cell_w; power_report = power; seed;
    base_utilization = utilization; mesh_config; mesh_precond = precond;
    screen; guide }

type evaluation = {
  placement : P.t;
  power_map : Geo.Grid.t;
  thermal_map : Geo.Grid.t;
  metrics : Thermal.Metrics.t;
  hotspots : Hotspot.t list;
  timing : Sta.Timing.result;
}

let ( let* ) = Result.bind

let flow_power_map t pl =
  Obs.Trace.with_span "power.map" @@ fun () ->
  let cfg = t.mesh_config in
  let map =
    Power.Map.power_map pl ~per_cell_w:t.per_cell_w
      ~nx:cfg.Thermal.Mesh.nx ~ny:cfg.Thermal.Mesh.ny
  in
  (* fault hook: one poisoned tile, caught by the power invariant check
     before it can NaN-poison the thermal solve *)
  if Robust.Faults.consume Robust.Faults.Nan_power then
    Geo.Grid.set map ~ix:0 ~iy:0 Float.nan;
  map

let evaluate_result t pl =
  Obs.Trace.with_span "flow.evaluate" @@ fun () ->
  (* cancellation point: every candidate evaluation passes through here,
     so a watchdog-requested deadline abort fires within one solve *)
  Robust.Cancel.check ();
  let cfg = t.mesh_config in
  let power_map = flow_power_map t pl in
  let* () = Robust.Validate.first_failure [ Checks.power_map power_map ] in
  let problem = Thermal.Mesh.build cfg ~power:power_map in
  let precond =
    Option.map (Thermal.Mesh.precond_of_choice problem) t.mesh_precond
  in
  let* solution = Thermal.Mesh.solve_result ?precond problem in
  let thermal_map = Thermal.Mesh.active_layer_grid solution in
  let* () =
    Robust.Validate.first_failure [ Checks.temperature thermal_map ]
  in
  let metrics = Thermal.Metrics.of_map thermal_map in
  let hotspots =
    Obs.Trace.with_span "hotspot.detect" @@ fun () ->
    Hotspot.detect ~thermal:thermal_map ~placement:pl ()
  in
  Obs.Metrics.observe "hotspot.count"
    (float_of_int (List.length hotspots));
  Obs.Metrics.observe "hotspot.tiles"
    (float_of_int
       (List.fold_left (fun acc h -> acc + Hotspot.tile_count h) 0 hotspots));
  Obs.Metrics.observe "hotspot.area_um2"
    (List.fold_left (fun acc h -> acc +. Geo.Rect.area h.Hotspot.rect) 0.0
       hotspots);
  Obs.Metrics.observe "flow.peak_rise_k" metrics.Thermal.Metrics.peak_rise_k;
  Obs.Metrics.observe "flow.evaluate.peak_rise_k"
    ~labels:[ ("mesh", mesh_name t); ("precond", precond_name t) ]
    metrics.Thermal.Metrics.peak_rise_k;
  let timing =
    Obs.Trace.with_span "sta.analyze" @@ fun () ->
    Sta.Timing.analyze pl ~thermal_map ()
  in
  Ok { placement = pl; power_map; thermal_map; metrics; hotspots; timing }

let evaluate t pl =
  match evaluate_result t pl with
  | Ok e -> e
  | Error e -> Robust.Error.raise_ e

let sensitivity_result ?sharpness t pl =
  Obs.Trace.with_span "flow.sensitivity" @@ fun () ->
  Robust.Cancel.check ();
  let power_map = flow_power_map t pl in
  let* () = Robust.Validate.first_failure [ Checks.power_map power_map ] in
  let problem = Thermal.Mesh.build t.mesh_config ~power:power_map in
  let precond =
    Option.map (Thermal.Mesh.precond_of_choice problem) t.mesh_precond
  in
  Thermal.Adjoint.solve_result ?sharpness ?precond problem

let sensitivity ?sharpness t pl =
  match sensitivity_result ?sharpness t pl with
  | Ok a -> a
  | Error e -> Robust.Error.raise_ e

let check_design t pl =
  Obs.Trace.with_span "flow.check" @@ fun () ->
  let cfg = t.mesh_config in
  let power_map = flow_power_map t pl in
  let problem = Thermal.Mesh.build cfg ~power:power_map in
  let pre =
    Robust.Validate.run_all
      [ Checks.placement pl; Checks.floorplan pl;
        Checks.power_map power_map;
        Checks.mesh_matrix (Thermal.Mesh.matrix problem) ]
  in
  let precond =
    Option.map (Thermal.Mesh.precond_of_choice problem) t.mesh_precond
  in
  match Thermal.Mesh.solve_result ?precond problem with
  | Ok solution ->
    pre
    @ Robust.Validate.run_all
        [ Checks.temperature (Thermal.Mesh.active_layer_grid solution) ]
  | Error e ->
    (* the solve itself failing is reported as a failed pseudo-check so
       the caller sees one uniform outcome list *)
    pre
    @ [ { Robust.Validate.check_name = "thermal.solve";
          failure = Some (Robust.Error.to_string e) } ]

let apply_default t ~utilization =
  let nl = t.bench.Netgen.Benchmark.netlist in
  Technique.uniform_slack nl t.tech ~unit_areas:t.unit_areas
    ~cells_of_region:(cells_of_region t) ~positions:t.positions
    ~from_core:t.base_placement.P.fp.Place.Floorplan.core ~utilization
    (Geo.Rng.create (t.seed + 7))

let apply_power_aware t ~utilization =
  let nl = t.bench.Netgen.Benchmark.netlist in
  let unit_powers =
    Array.map
      (fun (tag, _) ->
         (tag,
          Power.Model.unit_power_w nl t.power_report ~tag))
      t.unit_areas
  in
  Technique.power_aware_slack nl t.tech ~unit_areas:t.unit_areas
    ~unit_powers ~cells_of_region:(cells_of_region t)
    ~positions:t.positions
    ~from_core:t.base_placement.P.fp.Place.Floorplan.core ~utilization
    (Geo.Rng.create (t.seed + 11))

let apply_eri t ~base ~rows =
  ignore t;
  Technique.empty_row_insertion base.placement
    ~hotspots:base.hotspots ~rows

let apply_hw t ~on ?margin_um ?max_hotspot_tiles () =
  ignore t;
  Technique.hotspot_wrapper on.placement ~hotspots:on.hotspots
    ?margin_um ?max_hotspot_tiles ()
