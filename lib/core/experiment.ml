let test_set_1 ?(seed = 42) ?(sim_cycles = 1000) ?precond ?screen ?guide () =
  let bench = Netgen.Benchmark.nine_unit () in
  (* mul16a (0), div16 (4), add64 (6) and cmp32 (8) sit in different
     corners/edges of the 3x3 region grid -> four scattered hotspots *)
  let workload =
    Logicsim.Workload.scattered_hotspots ~hot_units:[ 0; 4; 6; 8 ]
  in
  Flow.prepare ~seed ~sim_cycles ?precond ?screen ?guide bench workload

let test_set_2 ?(seed = 42) ?(sim_cycles = 1000) ?precond ?screen ?guide () =
  let bench = Netgen.Benchmark.nine_unit () in
  (* mul20 (tag 2) is the largest unit: one big concentrated hotspot *)
  let workload = Logicsim.Workload.concentrated_hotspot ~hot_unit:2 in
  Flow.prepare ~seed ~sim_cycles ?precond ?screen ?guide bench workload

type point = {
  scheme : string;
  area_overhead_pct : float;
  temp_reduction_pct : float;
  gradient_reduction_pct : float;
  peak_rise_k : float;
  timing_overhead_pct : float;
  hpwl_um : float;
}

let point_of_eval _flow ~base ~scheme (ev : Flow.evaluation) =
  { scheme;
    area_overhead_pct =
      Technique.area_overhead_pct ~base:base.Flow.placement ev.Flow.placement;
    temp_reduction_pct =
      Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
        ~after:ev.Flow.metrics;
    gradient_reduction_pct =
      Thermal.Metrics.gradient_reduction_pct ~before:base.Flow.metrics
        ~after:ev.Flow.metrics;
    peak_rise_k = ev.Flow.metrics.Thermal.Metrics.peak_rise_k;
    timing_overhead_pct =
      Sta.Timing.overhead_pct ~before:base.Flow.timing ~after:ev.Flow.timing;
    hpwl_um = Place.Placement.hpwl ev.Flow.placement }

let point_to_json p =
  Obs.Json.Obj
    [ ("scheme", Obs.Json.String p.scheme);
      ("area_overhead_pct", Obs.Json.Float p.area_overhead_pct);
      ("temp_reduction_pct", Obs.Json.Float p.temp_reduction_pct);
      ("gradient_reduction_pct", Obs.Json.Float p.gradient_reduction_pct);
      ("peak_rise_k", Obs.Json.Float p.peak_rise_k);
      ("timing_overhead_pct", Obs.Json.Float p.timing_overhead_pct);
      ("hpwl_um", Obs.Json.Float p.hpwl_um) ]

let point_of_json j =
  let f k = Option.bind (Obs.Json.member k j) Obs.Json.to_float in
  let s k = Option.bind (Obs.Json.member k j) Obs.Json.to_string_opt in
  match
    ( s "scheme", f "area_overhead_pct", f "temp_reduction_pct",
      f "gradient_reduction_pct", f "peak_rise_k", f "timing_overhead_pct",
      f "hpwl_um" )
  with
  | Some scheme, Some a, Some t, Some g, Some pk, Some ti, Some h ->
    Some
      { scheme; area_overhead_pct = a; temp_reduction_pct = t;
        gradient_reduction_pct = g; peak_rise_k = pk;
        timing_overhead_pct = ti; hpwl_um = h }
  | _ -> None

(* Checkpointed fan-out: indices already present in the checkpoint are
   decoded instead of recomputed (bit-identical, because [Obs.Json]
   round-trips every finite float exactly); the rest run on the pool,
   and the full completed set is re-saved atomically after each point so
   an interrupted sweep loses at most in-flight work. *)
let map_checkpointed ?checkpoint ~encode ~decode ~f items =
  let items = Array.of_list items in
  let n = Array.length items in
  let results = Array.make n None in
  (match checkpoint with
   | None -> ()
   | Some (path, key) ->
     (match Robust.Checkpoint.load ~path ~key with
      | Error e -> Robust.Error.raise_ e
      | Ok entries ->
        let resumed = ref 0 in
        List.iter
          (fun (i, json) ->
             if i < 0 || i >= n then
               Robust.Error.raise_
                 (Robust.Error.Checkpoint_corrupt
                    { path;
                      detail = Printf.sprintf "entry index %d out of range" i })
             else
               match decode json with
               | Some v -> results.(i) <- Some v; incr resumed
               | None ->
                 Robust.Error.raise_
                   (Robust.Error.Checkpoint_corrupt
                      { path;
                        detail = Printf.sprintf "entry %d does not decode" i }))
          entries;
        if !resumed > 0 then
          Obs.Metrics.gauge "robust.checkpoint.resumed_entries"
            (float_of_int !resumed)));
  let todo =
    Array.of_list
      (List.filter (fun i -> results.(i) = None) (List.init n Fun.id))
  in
  let save_mutex = Mutex.create () in
  let save () =
    match checkpoint with
    | None -> ()
    | Some (path, key) ->
      let entries = ref [] in
      for i = n - 1 downto 0 do
        match results.(i) with
        | Some v -> entries := (i, encode v) :: !entries
        | None -> ()
      done;
      Robust.Checkpoint.save ~path ~key ~entries:!entries
  in
  Parallel.Pool.parallel_for ~chunks:(Array.length todo) (fun c ->
      let i = todo.(c) in
      results.(i) <- Some (f items.(i));
      if checkpoint <> None then Mutex.protect save_mutex save);
  Array.to_list
    (Array.map (function Some v -> v | None -> assert false) results)

let mesh_fingerprint (cfg : Thermal.Mesh.config) =
  Printf.sprintf "%dx%d/%d" cfg.Thermal.Mesh.nx cfg.Thermal.Mesh.ny
    (Thermal.Stack.num_layers cfg.Thermal.Mesh.stack)

type fig6 = {
  base_eval : Flow.evaluation;
  default_points : point list;
  eri_points : point list;
  hw_points : point list;
}

let default_overheads = [ 0.05; 0.10; 0.15; 0.20; 0.25; 0.30; 0.35; 0.40 ]

let rows_for_overhead flow frac =
  let base_rows =
    flow.Flow.base_placement.Place.Placement.fp.Place.Floorplan.num_rows
  in
  max 1 (int_of_float (Float.round (frac *. float_of_int base_rows)))

let fig6_key flow ~overheads =
  Printf.sprintf "fig6 seed=%d mesh=%s util=%h overheads=[%s]"
    flow.Flow.seed
    (mesh_fingerprint flow.Flow.mesh_config)
    flow.Flow.base_utilization
    (String.concat ";" (List.map (Printf.sprintf "%h") overheads))

(* Sweep points are independent given the base evaluation, so all three
   schemes fan out as one job list on the pool (chunk indices are fixed,
   so the output is identical to the sequential sweep). Points over the
   same overhead share the cached conductance matrix for their die
   extent. With [~checkpoint] the job list is resumable — see
   {!map_checkpointed}. *)
let run_fig6 ?(overheads = default_overheads) ?checkpoint flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let eval_job = function
    | `Default frac ->
      let util = flow.Flow.base_utilization /. (1.0 +. frac) in
      let pl = Flow.apply_default flow ~utilization:util in
      point_of_eval flow ~base ~scheme:"Default" (Flow.evaluate flow pl)
    | `Eri frac ->
      let rows = rows_for_overhead flow frac in
      let r = Flow.apply_eri flow ~base ~rows in
      point_of_eval flow ~base ~scheme:"ERI"
        (Flow.evaluate flow r.Technique.eri_placement)
    | `Hw frac ->
      let util = flow.Flow.base_utilization /. (1.0 +. frac) in
      let pl = Flow.apply_default flow ~utilization:util in
      let ev = Flow.evaluate flow pl in
      let pl' = Flow.apply_hw flow ~on:ev () in
      point_of_eval flow ~base ~scheme:"HW" (Flow.evaluate flow pl')
  in
  let jobs =
    List.map (fun f -> `Default f) overheads
    @ List.map (fun f -> `Eri f) overheads
    @ List.map (fun f -> `Hw f) overheads
  in
  let checkpoint =
    Option.map (fun path -> (path, fig6_key flow ~overheads)) checkpoint
  in
  let points =
    map_checkpointed ?checkpoint ~encode:point_to_json ~decode:point_of_json
      ~f:eval_job jobs
  in
  let nk = List.length overheads in
  let slice lo hi = List.filteri (fun i _ -> i >= lo && i < hi) points in
  { base_eval = base;
    default_points = slice 0 nk;
    eri_points = slice nk (2 * nk);
    hw_points = slice (2 * nk) (3 * nk) }

type table1_row = {
  t1_scheme : string;
  t1_width_um : float;
  t1_height_um : float;
  t1_rows_inserted : int option;
  t1_overhead_pct : float;
  t1_reduction_pct : float;
}

let run_table1 ?(overheads = [ 0.161; 0.322 ]) flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let row_of ~scheme ~rows ev =
    let core = ev.Flow.placement.Place.Placement.fp.Place.Floorplan.core in
    { t1_scheme = scheme;
      t1_width_um = Geo.Rect.width core;
      t1_height_um = Geo.Rect.height core;
      t1_rows_inserted = rows;
      t1_overhead_pct =
        Technique.area_overhead_pct ~base:base.Flow.placement
          ev.Flow.placement;
      t1_reduction_pct =
        Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
          ~after:ev.Flow.metrics }
  in
  let defaults =
    List.map
      (fun frac ->
         let util = flow.Flow.base_utilization /. (1.0 +. frac) in
         let pl = Flow.apply_default flow ~utilization:util in
         row_of ~scheme:"Default" ~rows:None (Flow.evaluate flow pl))
      overheads
  in
  let eris =
    List.map
      (fun frac ->
         let rows = rows_for_overhead flow frac in
         let r = Flow.apply_eri flow ~base ~rows in
         row_of ~scheme:"ERI" ~rows:(Some rows)
           (Flow.evaluate flow r.Technique.eri_placement))
      overheads
  in
  defaults @ eris

type timing_summary = {
  ts_scheme : string;
  ts_overhead_pct : float;
  ts_critical_ps : float;
  ts_overhead_timing_pct : float;
}

let run_timing flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let summary scheme ev =
    { ts_scheme = scheme;
      ts_overhead_pct =
        Technique.area_overhead_pct ~base:base.Flow.placement
          ev.Flow.placement;
      ts_critical_ps = ev.Flow.timing.Sta.Timing.critical_ps;
      ts_overhead_timing_pct =
        Sta.Timing.overhead_pct ~before:base.Flow.timing
          ~after:ev.Flow.timing }
  in
  let default_pl =
    Flow.apply_default flow
      ~utilization:(flow.Flow.base_utilization /. 1.2)
  in
  let default_ev = Flow.evaluate flow default_pl in
  let eri =
    Flow.apply_eri flow ~base ~rows:(rows_for_overhead flow 0.2)
  in
  let eri_ev = Flow.evaluate flow eri.Technique.eri_placement in
  let hw_pl = Flow.apply_hw flow ~on:default_ev () in
  let hw_ev = Flow.evaluate flow hw_pl in
  [ summary "base" base;
    summary "Default" default_ev;
    summary "ERI" eri_ev;
    summary "HW" hw_ev ]

type congestion_summary = {
  cs_scheme : string;
  cs_max_utilization : float;
  cs_overflow_um : float;
  cs_hotspot_demand_um : float;
}

let run_congestion flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let hot_rect =
    match base.Flow.hotspots with
    | h :: _ -> h.Hotspot.rect
    | [] -> flow.Flow.base_placement.Place.Placement.fp.Place.Floorplan.core
  in
  let summarize scheme pl =
    let r = Route.Congestion.estimate pl () in
    { cs_scheme = scheme;
      cs_max_utilization = r.Route.Congestion.max_utilization;
      cs_overflow_um = r.Route.Congestion.overflow_um;
      cs_hotspot_demand_um = Route.Congestion.hotspot_demand r hot_rect }
  in
  let eri = Flow.apply_eri flow ~base ~rows:(rows_for_overhead flow 0.2) in
  [ summarize "base" flow.Flow.base_placement;
    summarize "ERI" eri.Technique.eri_placement ]

let fig5_maps flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  (base.Flow.power_map, base.Flow.thermal_map)

type electrothermal_row = {
  et_scheme : string;
  et_open_loop_peak_k : float;
  et_closed_loop_peak_k : float;
  et_leakage_increase_pct : float;
  et_iterations : int;
}

let run_electrothermal flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let rows = rows_for_overhead flow 0.2 in
  let eri = Flow.apply_eri flow ~base ~rows in
  let row_of scheme pl =
    let r = Electrothermal.evaluate flow pl () in
    { et_scheme = scheme;
      et_open_loop_peak_k = r.Electrothermal.open_loop_peak_k;
      et_closed_loop_peak_k =
        r.Electrothermal.metrics.Thermal.Metrics.peak_rise_k;
      et_leakage_increase_pct =
        100.0
        *. (r.Electrothermal.leakage_w -. r.Electrothermal.nominal_leakage_w)
        /. r.Electrothermal.nominal_leakage_w;
      et_iterations = r.Electrothermal.iterations }
  in
  [ row_of "base" flow.Flow.base_placement;
    row_of "ERI" eri.Technique.eri_placement ]

type package_row = {
  pk_h_top_w_m2k : float;
  pk_peak_k : float;
  pk_gradient_k : float;
  pk_eri_reduction_pct : float;
}

let package_row_to_json r =
  Obs.Json.Obj
    [ ("h_top_w_m2k", Obs.Json.Float r.pk_h_top_w_m2k);
      ("peak_k", Obs.Json.Float r.pk_peak_k);
      ("gradient_k", Obs.Json.Float r.pk_gradient_k);
      ("eri_reduction_pct", Obs.Json.Float r.pk_eri_reduction_pct) ]

let package_row_of_json j =
  let f k = Option.bind (Obs.Json.member k j) Obs.Json.to_float in
  match
    (f "h_top_w_m2k", f "peak_k", f "gradient_k", f "eri_reduction_pct")
  with
  | Some h, Some p, Some g, Some r ->
    Some
      { pk_h_top_w_m2k = h; pk_peak_k = p; pk_gradient_k = g;
        pk_eri_reduction_pct = r }
  | _ -> None

let package_key flow ~sinks =
  Printf.sprintf "package seed=%d mesh=%s sinks=[%s]" flow.Flow.seed
    (mesh_fingerprint flow.Flow.mesh_config)
    (String.concat ";" (List.map (Printf.sprintf "%h") sinks))

let run_package_sweep ?(sinks = [ 2.0e5; 5.0e5; 1.0e6 ]) ?checkpoint flow =
  let checkpoint =
    Option.map (fun path -> (path, package_key flow ~sinks)) checkpoint
  in
  map_checkpointed ?checkpoint ~encode:package_row_to_json
    ~decode:package_row_of_json sinks
    ~f:(fun h ->
       let flow =
         { flow with
           Flow.mesh_config =
             { flow.Flow.mesh_config with
               Thermal.Mesh.stack =
                 Thermal.Stack.with_sink
                   flow.Flow.mesh_config.Thermal.Mesh.stack ~h_top_w_m2k:h } }
       in
       let base = Flow.evaluate flow flow.Flow.base_placement in
       let eri =
         Flow.apply_eri flow ~base ~rows:(rows_for_overhead flow 0.2)
       in
       let ev = Flow.evaluate flow eri.Technique.eri_placement in
       { pk_h_top_w_m2k = h;
         pk_peak_k = base.Flow.metrics.Thermal.Metrics.peak_rise_k;
         pk_gradient_k = base.Flow.metrics.Thermal.Metrics.gradient_k;
         pk_eri_reduction_pct =
           Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
             ~after:ev.Flow.metrics })

type baseline_row = {
  bl_scheme : string;
  bl_overhead_pct : float;
  bl_reduction_pct : float;
  bl_timing_pct : float;
}

let run_baselines ?(overhead = 0.2) flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let util = flow.Flow.base_utilization /. (1.0 +. overhead) in
  let row_of scheme ev =
    { bl_scheme = scheme;
      bl_overhead_pct =
        Technique.area_overhead_pct ~base:base.Flow.placement
          ev.Flow.placement;
      bl_reduction_pct =
        Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
          ~after:ev.Flow.metrics;
      bl_timing_pct =
        Sta.Timing.overhead_pct ~before:base.Flow.timing
          ~after:ev.Flow.timing }
  in
  let default_ev =
    Flow.evaluate flow (Flow.apply_default flow ~utilization:util)
  in
  let aware_ev =
    Flow.evaluate flow (Flow.apply_power_aware flow ~utilization:util)
  in
  let eri =
    Flow.apply_eri flow ~base ~rows:(rows_for_overhead flow overhead)
  in
  let eri_ev = Flow.evaluate flow eri.Technique.eri_placement in
  let hw_ev =
    Flow.evaluate flow (Flow.apply_hw flow ~on:default_ev ())
  in
  [ row_of "Default (uniform)" default_ev;
    row_of "power-aware place" aware_ev;
    row_of "ERI (post-place)" eri_ev;
    row_of "HW (post-place)" hw_ev ]

type guide_row = {
  gd_scheme : string;
  gd_peak_rise_k : float;
  gd_reduction_pct : float;
  gd_area_overhead_pct : float;
  gd_exact_solves : int;
  gd_adjoint_solves : int;
}

let run_guide ?(rows = 8) flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let row_of scheme ~exact ~adjoint (ev : Flow.evaluation) =
    { gd_scheme = scheme;
      gd_peak_rise_k = ev.Flow.metrics.Thermal.Metrics.peak_rise_k;
      gd_reduction_pct =
        Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
          ~after:ev.Flow.metrics;
      gd_area_overhead_pct =
        Technique.area_overhead_pct ~base:base.Flow.placement
          ev.Flow.placement;
      gd_exact_solves = exact;
      gd_adjoint_solves = adjoint }
  in
  (* both optimizer guides run the exact screening tier so the solve
     counts compare like for like *)
  let peak_flow =
    { flow with Flow.screen = Flow.Screen_exact; guide = Flow.Guide_peak }
  in
  let grad_flow =
    { flow with Flow.screen = Flow.Screen_exact; guide = Flow.Guide_gradient }
  in
  let peak_r = Optimizer.greedy_rows peak_flow ~rows () in
  let grad_r = Optimizer.greedy_rows grad_flow ~rows () in
  let peak_ev =
    Flow.evaluate flow peak_r.Optimizer.plan.Technique.eri_placement
  in
  let grad_ev =
    Flow.evaluate flow grad_r.Optimizer.plan.Technique.eri_placement
  in
  (* the paper's heuristics as controls at the same row budget *)
  let eri = Flow.apply_eri flow ~base ~rows in
  let eri_ev = Flow.evaluate flow eri.Technique.eri_placement in
  let hw_ev = Flow.evaluate flow (Flow.apply_hw flow ~on:base ()) in
  [ row_of "greedy (peak guide)" ~exact:peak_r.Optimizer.evaluations
      ~adjoint:0 peak_ev;
    row_of "gradient guide" ~exact:grad_r.Optimizer.evaluations
      ~adjoint:grad_r.Optimizer.adjoint_evaluations grad_ev;
    row_of "ERI heuristic" ~exact:0 ~adjoint:0 eri_ev;
    row_of "HW heuristic" ~exact:0 ~adjoint:0 hw_ev ]

type glitch_row = {
  gl_metric : string;
  gl_zero_delay : float;
  gl_event_driven : float;
}

let run_glitch ?(cycles = 300) flow =
  let nl = flow.Flow.bench.Netgen.Benchmark.netlist in
  let pl = flow.Flow.base_placement in
  let measure_with report =
    let power =
      Power.Model.compute pl
        ~toggle_rate:report.Logicsim.Activity.toggle_rate
    in
    let cfg = flow.Flow.mesh_config in
    let map =
      Power.Map.power_map pl ~per_cell_w:power.Power.Model.per_cell_w
        ~nx:cfg.Thermal.Mesh.nx ~ny:cfg.Thermal.Mesh.ny
    in
    let sol = Thermal.Mesh.solve (Thermal.Mesh.build cfg ~power:map) in
    let metrics =
      Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid sol)
    in
    (Logicsim.Activity.mean_toggle_rate report,
     power.Power.Model.dynamic_w,
     metrics.Thermal.Metrics.peak_rise_k)
  in
  let rng = Geo.Rng.create (flow.Flow.seed + 1001) in
  let zsim = Logicsim.Sim.create nl in
  let z_report =
    Logicsim.Activity.measure zsim flow.Flow.workload (Geo.Rng.copy rng)
      ~warmup:32 ~cycles
  in
  let esim = Logicsim.Event_sim.create nl in
  let e_report =
    Logicsim.Event_sim.measure esim flow.Flow.workload (Geo.Rng.copy rng)
      ~warmup:32 ~cycles
  in
  let z_rate, z_dyn, z_peak = measure_with z_report in
  let e_rate, e_dyn, e_peak = measure_with e_report in
  [ { gl_metric = "mean toggle rate [1/cycle]"; gl_zero_delay = z_rate;
      gl_event_driven = e_rate };
    { gl_metric = "dynamic power [mW]"; gl_zero_delay = z_dyn *. 1e3;
      gl_event_driven = e_dyn *. 1e3 };
    { gl_metric = "peak rise [K]"; gl_zero_delay = z_peak;
      gl_event_driven = e_peak } ]

type ablation_row = {
  ab_variant : string;
  ab_overhead_pct : float;
  ab_reduction_pct : float;
}

let run_ablation ?(overhead = 0.2) flow =
  let base = Flow.evaluate flow flow.Flow.base_placement in
  let rows = rows_for_overhead flow overhead in
  let row_of name r =
    let ev = Flow.evaluate flow r.Technique.eri_placement in
    { ab_variant = name;
      ab_overhead_pct =
        Technique.area_overhead_pct ~base:base.Flow.placement
          ev.Flow.placement;
      ab_reduction_pct =
        Thermal.Metrics.reduction_pct ~before:base.Flow.metrics
          ~after:ev.Flow.metrics }
  in
  let interleaved =
    Technique.empty_row_insertion ~style:`Interleaved base.Flow.placement
      ~hotspots:base.Flow.hotspots ~rows
  in
  let clustered =
    Technique.empty_row_insertion ~style:`Clustered base.Flow.placement
      ~hotspots:base.Flow.hotspots ~rows
  in
  let optimized = Optimizer.greedy_rows flow ~rows () in
  [ row_of "ERI interleaved" interleaved;
    row_of "ERI clustered" clustered;
    row_of "greedy optimizer" optimized.Optimizer.plan ]
