module P = Place.Placement
module FP = Place.Floorplan

let area_overhead_pct ~base pl =
  let a0 = FP.core_area_um2 base.P.fp in
  100.0 *. (FP.core_area_um2 pl.P.fp -. a0) /. a0

let uniform_slack nl tech ~unit_areas ~cells_of_region ~positions ~from_core
    ~utilization ?(aspect = 1.0) rng =
  ignore rng;
  let cell_area =
    Netlist.Types.fold_cells nl ~init:0.0 ~f:(fun acc _ c ->
        acc +. Celllib.Info.area_um2 tech c.Netlist.Types.kind)
  in
  let fp = FP.create tech ~cell_area_um2:cell_area ~utilization ~aspect in
  let regions = Place.Regions.pack fp ~areas:unit_areas in
  let positions =
    Place.Global.scaled positions ~from_core ~to_core:fp.FP.core
  in
  Place.Legalize.run nl fp ~regions ~cells_of_region ~positions

let power_aware_slack nl tech ~unit_areas ~unit_powers ~cells_of_region
    ~positions ~from_core ~utilization ?(aspect = 1.0) rng =
  ignore rng;
  let cell_area = Array.fold_left (fun s (_, a) -> s +. a) 0.0 unit_areas in
  let fp = FP.create tech ~cell_area_um2:cell_area ~utilization ~aspect in
  let core_area = FP.core_area_um2 fp in
  let slack = Float.max 0.0 (core_area -. cell_area) in
  let total_power = Array.fold_left (fun s (_, p) -> s +. p) 0.0 unit_powers in
  (* region area = own cells + a power-proportional share of the slack *)
  let region_areas =
    Array.map
      (fun (tag, area) ->
         let power =
           match Array.find_opt (fun (t, _) -> t = tag) unit_powers with
           | Some (_, p) -> p
           | None -> 0.0
         in
         let share =
           if total_power > 0.0 then slack *. power /. total_power
           else slack /. float_of_int (Array.length unit_areas)
         in
         (tag, area +. share))
      unit_areas
  in
  let regions = Place.Regions.pack fp ~areas:region_areas in
  let positions =
    Place.Global.scaled positions ~from_core ~to_core:fp.FP.core
  in
  Place.Legalize.run nl fp ~regions ~cells_of_region ~positions

(* --- Empty row insertion ------------------------------------------------ *)

type eri_result = {
  eri_placement : P.t;
  inserted_after : int list;
}

(* Merge the hotspots' row spans into disjoint intervals. *)
let merged_spans fp hotspots =
  let spans =
    List.map (Hotspot.span_rows fp) hotspots
    (* a hotspot entirely outside the core maps to an empty span *)
    |> List.filter (fun (l, h) -> l <= h)
    |> List.sort compare
  in
  let rec merge = function
    | (l1, h1) :: (l2, h2) :: rest when l2 <= h1 + 1 ->
      merge ((l1, max h1 h2) :: rest)
    | s :: rest -> s :: merge rest
    | [] -> []
  in
  merge spans

(* Choose [budget] insertion points ("after row r") for one span, widening
   the span when the budget exceeds its row count. *)
let span_insertions fp (lo, hi) budget =
  let num_rows = fp.FP.num_rows in
  let lo = ref lo and hi = ref hi in
  while !hi - !lo + 1 < budget && (!lo > 0 || !hi < num_rows - 1) do
    if !lo > 0 then decr lo;
    if !hi < num_rows - 1 && !hi - !lo + 1 < budget then incr hi
  done;
  let len = !hi - !lo + 1 in
  List.init budget (fun i -> !lo + (i * len / budget) mod len)

(* Apply an explicit insertion plan: an empty row appears right above each
   listed row; rows further up shift. This is the primitive both the
   standard ERI and the greedy optimizer use. *)
let apply_row_insertions pl after =
  let after = List.sort compare after in
  let shift r = List.length (List.filter (fun a -> a < r) after) in
  let fp' = FP.with_extra_rows pl.P.fp (List.length after) in
  let locs =
    Array.map
      (fun (l : P.loc) -> { l with P.row = l.P.row + shift l.P.row })
      pl.P.locs
  in
  { eri_placement = P.make pl.P.nl fp' locs; inserted_after = after }

let empty_row_insertion ?(style = `Interleaved) pl ~hotspots ~rows =
  if rows < 0 then invalid_arg "Technique.empty_row_insertion: rows < 0";
  if rows = 0 then
    { eri_placement = pl; inserted_after = [] }
  else begin
    if hotspots = [] then
      invalid_arg "Technique.empty_row_insertion: no hotspots";
    let fp = pl.P.fp in
    let spans = merged_spans fp hotspots in
    if spans = [] then
      (* every hotspot lies entirely outside the core (empty row spans):
         there is no row to widen, so insert nothing rather than dumping
         the whole budget onto row 0 *)
      { eri_placement = pl; inserted_after = [] }
    else begin
      let total_span_rows =
        List.fold_left (fun acc (l, h) -> acc + h - l + 1) 0 spans
      in
      (* split the budget across spans proportionally to their heights *)
      let n_spans = List.length spans in
      let after =
        List.concat
          (List.mapi
             (fun i span ->
                let l, h = span in
                let share =
                  if i = n_spans - 1 then
                    rows
                    - List.fold_left ( + ) 0
                        (List.mapi
                           (fun j (l', h') ->
                              if j < i then
                                rows * (h' - l' + 1) / total_span_rows
                              else 0)
                           spans)
                  else rows * (h - l + 1) / total_span_rows
                in
                if share <= 0 then []
                else
                  match style with
                  | `Interleaved -> span_insertions fp (l, h) share
                  | `Clustered ->
                    (* ablation variant: the whole share lands as one block
                       of empty rows at the span's center *)
                    List.init share (fun _ -> (l + h) / 2))
             spans)
      in
      apply_row_insertions pl after
    end
  end

(* --- Hotspot wrapper ---------------------------------------------------- *)

(* floor before the int conversion: int_of_float truncates toward zero,
   which would map coordinates slightly below the core onto row/site 0
   instead of clamping (see Hotspot.span_rows). *)
let row_span fp (rect : Geo.Rect.t) =
  let rh = fp.FP.tech.Celllib.Tech.row_height_um in
  let lo = int_of_float (Float.floor (rect.Geo.Rect.ly /. rh)) in
  let hi = int_of_float (Float.floor ((rect.Geo.Rect.hy -. 1e-9) /. rh)) in
  (max 0 lo, min (fp.FP.num_rows - 1) hi)

let site_span fp rect =
  let sw = fp.FP.tech.Celllib.Tech.site_width_um in
  let lo = int_of_float (Float.floor (rect.Geo.Rect.lx /. sw)) in
  let hi = int_of_float (Float.floor ((rect.Geo.Rect.hx -. 1e-9) /. sw)) in
  (max 0 lo, min (fp.FP.sites_per_row - 1) hi)

let current_center pl cid = P.cell_center pl cid

(* Pack [cells] into the box via the shared legalizer helper; ordering by
   their current positions keeps the movement local. *)
let pack_box pl ~cells ~row_lo ~row_hi ~site_lo ~site_hi =
  let locs =
    Place.Legalize.legalize_region_rows pl ~cells
      ~order_key:(current_center pl) ~row_lo ~row_hi ~site_lo ~site_hi
  in
  P.make pl.P.nl pl.P.fp locs

let wrap_one pl hotspot ~margin_um =
  let fp = pl.P.fp in
  let core = fp.FP.core in
  let wrapper =
    Geo.Rect.clip (Geo.Rect.inflate hotspot.Hotspot.rect margin_um)
      ~within:core
  in
  (* the whitespace ring: hot cells are re-spread over the inner rectangle
     only, the ring stays empty (fillers) *)
  let inner = Geo.Rect.clip hotspot.Hotspot.rect ~within:core in
  let is_lo, is_hi = site_span fp inner in
  let ir_lo, ir_hi = row_span fp inner in
  let ws_lo, ws_hi = site_span fp wrapper in
  let hot_set = Hashtbl.create 64 in
  List.iter (fun cid -> Hashtbl.replace hot_set cid ()) hotspot.Hotspot.cells;
  (* Only a horizontal window around the wrapper takes part in the repack,
     keeping cell movement local (the paper: "changes of cell positions are
     local, performance overhead is very small"). The window and the row
     span grow on demand until the flanks can absorb the evicted cells. *)
  let rec attempt extra =
    let wr_lo, wr_hi = row_span fp wrapper in
    let wr_lo = max 0 (wr_lo - extra) in
    let wr_hi = min (fp.FP.num_rows - 1) (wr_hi + extra) in
    let wrapper_sites = ws_hi - ws_lo + 1 in
    let halo = (1 + extra) * wrapper_sites in
    let win_lo = max 0 (ws_lo - halo) in
    let win_hi = min (fp.FP.sites_per_row - 1) (ws_hi + halo) in
    let in_window cid =
      let l = pl.P.locs.(cid) in
      l.P.row >= wr_lo && l.P.row <= wr_hi
      && l.P.site + P.width_sites pl cid > win_lo
      && l.P.site <= win_hi
    in
    let hot = ref [] and left = ref [] and right = ref [] in
    let wrap_cx = Geo.Rect.center_x wrapper in
    Netlist.Types.iter_cells pl.P.nl ~f:(fun cid _ ->
        if in_window cid then begin
          if Hashtbl.mem hot_set cid then hot := cid :: !hot
          else begin
            let x, _ = current_center pl cid in
            if x < wrap_cx then left := cid :: !left else right := cid :: !right
          end
        end);
    (* flank boxes exclude the wrapper's site span *)
    let left_box = (win_lo, ws_lo - 1) in
    let right_box = (ws_hi + 1, win_hi) in
    let assign_boxes () =
      let left_cells, right_cells =
        let lw = max 0 (snd left_box - fst left_box + 1) in
        let rw = max 0 (snd right_box - fst right_box + 1) in
        if lw = 0 then ([||], Array.of_list (!left @ !right))
        else if rw = 0 then (Array.of_list (!left @ !right), [||])
        else (Array.of_list !left, Array.of_list !right)
      in
      let pl =
        if Array.length left_cells = 0 then pl
        else
          pack_box pl ~cells:left_cells ~row_lo:wr_lo ~row_hi:wr_hi
            ~site_lo:(fst left_box) ~site_hi:(snd left_box)
      in
      let pl =
        if Array.length right_cells = 0 then pl
        else
          pack_box pl ~cells:right_cells ~row_lo:wr_lo ~row_hi:wr_hi
            ~site_lo:(fst right_box) ~site_hi:(snd right_box)
      in
      let hot_cells = Array.of_list !hot in
      if Array.length hot_cells = 0 then pl
      else begin
        (* prefer the inner rectangle; if the hot cells no longer fit
           (snapping shrank it), fall back to the full wrapper *)
        try
          pack_box pl ~cells:hot_cells ~row_lo:ir_lo ~row_hi:ir_hi
            ~site_lo:is_lo ~site_hi:is_hi
        with Place.Legalize.Region_overflow _ ->
          pack_box pl ~cells:hot_cells ~row_lo:wr_lo ~row_hi:wr_hi
            ~site_lo:ws_lo ~site_hi:ws_hi
      end
    in
    match assign_boxes () with
    | pl' -> pl'
    | exception Place.Legalize.Region_overflow _ ->
      if wr_lo = 0 && wr_hi = fp.FP.num_rows - 1
         && win_lo = 0 && win_hi = fp.FP.sites_per_row - 1
      then
        Robust.Error.raise_
          (Robust.Error.Invariant_violation
             { check = "technique.hw.capacity";
               detail = "core cannot absorb the wrapper" })
      else attempt (extra + 1)
  in
  attempt 0

type wrapper_risk = {
  hotspot_density_w_um2 : float;
  flank_density_before_w_um2 : float;
  flank_density_after_w_um2 : float;
  creates_new_hotspot : bool;
}

let power_in pl ~per_cell_w rect =
  Netlist.Types.fold_cells pl.P.nl ~init:0.0 ~f:(fun acc cid _ ->
      let x, y = P.cell_center pl cid in
      if Geo.Rect.contains rect ~x ~y then acc +. per_cell_w.(cid) else acc)

let assess_wrapper pl ~per_cell_w ~hotspot ~margin_um =
  let core = pl.P.fp.FP.core in
  let wrapper =
    Geo.Rect.clip (Geo.Rect.inflate hotspot.Hotspot.rect margin_um)
      ~within:core
  in
  (* the flanks that will absorb the evicted cells: one wrapper-width band
     on each side, over the wrapper's row span *)
  let band dx =
    Geo.Rect.clip
      (Geo.Rect.make
         ~lx:(wrapper.Geo.Rect.lx +. dx)
         ~ly:wrapper.Geo.Rect.ly
         ~hx:(wrapper.Geo.Rect.hx +. dx)
         ~hy:wrapper.Geo.Rect.hy)
      ~within:core
  in
  let w = Geo.Rect.width wrapper in
  let left = band (-.w) and right = band w in
  let flank_area = Geo.Rect.area left +. Geo.Rect.area right in
  let flank_power = power_in pl ~per_cell_w left +. power_in pl ~per_cell_w right in
  let hot_power = power_in pl ~per_cell_w hotspot.Hotspot.rect in
  let hot_area = Geo.Rect.area hotspot.Hotspot.rect in
  (* evicted power: everything in the wrapper that is not a hotspot cell *)
  let hot_set = Hashtbl.create 64 in
  List.iter (fun cid -> Hashtbl.replace hot_set cid ())
    hotspot.Hotspot.cells;
  let evicted =
    Netlist.Types.fold_cells pl.P.nl ~init:0.0 ~f:(fun acc cid _ ->
        let x, y = P.cell_center pl cid in
        if Geo.Rect.contains wrapper ~x ~y && not (Hashtbl.mem hot_set cid)
        then acc +. per_cell_w.(cid)
        else acc)
  in
  let density p a = if a > 0.0 then p /. a else 0.0 in
  let before = density flank_power flank_area in
  let after = density (flank_power +. evicted) flank_area in
  let hot_density = density hot_power hot_area in
  { hotspot_density_w_um2 = hot_density;
    flank_density_before_w_um2 = before;
    flank_density_after_w_um2 = after;
    creates_new_hotspot = after > hot_density }

let hotspot_wrapper pl ~hotspots ?margin_um ?(max_hotspot_tiles = 100)
    ?skip_risky () =
  let margin_um =
    match margin_um with
    | Some m -> m
    | None -> 2.0 *. pl.P.fp.FP.tech.Celllib.Tech.row_height_um
  in
  let risky h =
    match skip_risky with
    | None -> false
    | Some per_cell_w ->
      (assess_wrapper pl ~per_cell_w ~hotspot:h ~margin_um)
        .creates_new_hotspot
  in
  List.fold_left
    (fun pl h ->
       if Hotspot.tile_count h > max_hotspot_tiles || risky h then pl
       else wrap_one pl h ~margin_um)
    pl hotspots
