(** Domain invariant checks for the post-placement flow.

    Each function wraps one cheap structural invariant as a
    {!Robust.Validate.check}; [Flow.check_design] and the [thermoplace
    check] CLI subcommand assemble and run them between flow stages. The
    checks are deliberately O(cells), O(tiles) or O(nnz) — cheap enough
    to run on every experiment evaluation without moving the needle on
    runtime. *)

val placement : Place.Placement.t -> Robust.Validate.check
(** ["placement.legal"]: {!Place.Placement.validate} returns no
    out-of-bounds or overlap violations (the first few are quoted in the
    failure detail). *)

val floorplan : Place.Placement.t -> Robust.Validate.check
(** ["floorplan.containment"]: every cell rectangle lies inside the
    floorplan core — a geometric cross-check of the row/site legality
    asserted by {!placement}. *)

val power_map : Geo.Grid.t -> Robust.Validate.check
(** ["power.finite_nonneg"]: every tile power is finite and
    non-negative. *)

val mesh_matrix : Thermal.Sparse.t -> Robust.Validate.check
(** ["mesh.spd_structure"]: positive finite diagonal, symmetric entries,
    and diagonal dominance ([sum |row| <= 2 diag], the resistive-network
    property that underwrites positive definiteness). *)

val temperature : ?max_rise_k:float -> Geo.Grid.t -> Robust.Validate.check
(** ["thermal.bounded"]: every temperature rise is finite, non-negative
    (to a 1e-6 K tolerance) and below [max_rise_k] (default 1000 K —
    far above any physical operating point, so a failure means a solver
    or assembly defect rather than a hot design). *)
