type result = {
  plan : Technique.eri_result;
  predicted_peak_k : float;
  evaluations : int;
}

let peak_of flow pl ~nx =
  let cfg =
    { flow.Flow.mesh_config with Thermal.Mesh.nx; ny = nx }
  in
  let power =
    Power.Map.power_map pl ~per_cell_w:flow.Flow.per_cell_w ~nx ~ny:nx
  in
  let solution = Thermal.Mesh.solve (Thermal.Mesh.build cfg ~power) in
  (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid solution))
    .Thermal.Metrics.peak_rise_k

let evaluate_plan flow ~after ~nx =
  let r = Technique.apply_row_insertions flow.Flow.base_placement after in
  peak_of flow r.Technique.eri_placement ~nx

(* SSOR beats Jacobi by ~3x in iterations on the mesh stencil; candidate
   solves don't need Jacobi's cheaper apply because the matrix is reused
   from the cache anyway. *)
let eval_precond = Thermal.Cg.Ssor 1.6

(* Candidate *ranking* only has to separate peaks that differ by
   millikelvins, so trial solves stop at 1e-6 relative (inexact
   evaluation); the chosen plan is re-scored at full tolerance before it
   is reported. CG convergence is roughly linear in requested digits, so
   this alone saves ~40% of the ranking iterations. *)
let rank_tol = 1e-6

(* One candidate evaluation, warm-started from the incumbent temperature
   field [x0]. All trial placements share the die extent (same number of
   inserted rows), so every solve in a round reuses one cached matrix and
   a good starting point — most of the optimizer's speedup lives here. *)
let eval_trial flow ~after ~nx ~x0 ~tol =
  let r = Technique.apply_row_insertions flow.Flow.base_placement after in
  let cfg = { flow.Flow.mesh_config with Thermal.Mesh.nx; ny = nx } in
  let power =
    Power.Map.power_map r.Technique.eri_placement
      ~per_cell_w:flow.Flow.per_cell_w ~nx ~ny:nx
  in
  let problem = Thermal.Mesh.build cfg ~power in
  let precond =
    match flow.Flow.mesh_precond with
    | Some choice -> Thermal.Mesh.precond_of_choice problem choice
    | None -> eval_precond
  in
  let solution = Thermal.Mesh.solve ~tol ~precond ?x0 problem in
  let peak =
    (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid solution))
      .Thermal.Metrics.peak_rise_k
  in
  (peak, solution.Thermal.Mesh.temp)

let greedy_rows flow ~rows ?(chunk = 4) ?(stride = 4) ?(coarse_nx = 20) () =
  if rows <= 0 then invalid_arg "Optimizer.greedy_rows: non-positive budget";
  if chunk <= 0 || stride <= 0 || coarse_nx <= 0 then
    invalid_arg "Optimizer.greedy_rows: non-positive parameter";
  Obs.Trace.with_span "optimizer.greedy_rows" @@ fun () ->
  let base = flow.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  let candidates =
    let rec collect r acc = if r >= num_rows then List.rev acc
      else collect (r + stride) (r :: acc)
    in
    collect 0 []
  in
  let evaluations = ref 0 in
  (* the plan is kept reversed: committing a chunk is a prepend, and
     [Technique.apply_row_insertions] sorts its input, so order is free *)
  let rev_plan = ref [] in
  let remaining = ref rows in
  (* warm-start seed: the incumbent plan's temperature field *)
  let _, temp0 =
    eval_trial flow ~after:[] ~nx:coarse_nx ~x0:None ~tol:rank_tol
  in
  incr evaluations;
  let warm = ref temp0 in
  while !remaining > 0 do
    let step = min chunk !remaining in
    let x0 = Some !warm in
    (* candidate trials are independent: evaluate them on the pool. The
       list order is preserved, and selection below walks it sequentially
       with the seed's tie-break (strict improvement wins), so parallel
       and sequential runs pick identical plans. *)
    let outcomes =
      Parallel.Pool.map_list candidates ~f:(fun cand ->
          let trial =
            List.rev_append (List.init step (fun _ -> cand)) !rev_plan
          in
          eval_trial flow ~after:trial ~nx:coarse_nx ~x0 ~tol:rank_tol)
    in
    evaluations := !evaluations + List.length candidates;
    let best = ref None in
    List.iter2
      (fun cand (peak, temp) ->
         match !best with
         | Some (_, best_peak, _) when best_peak <= peak -> ()
         | _ -> best := Some (cand, peak, temp))
      candidates outcomes;
    (match !best with
     | Some (cand, _, temp) ->
       rev_plan := List.rev_append (List.init step (fun _ -> cand)) !rev_plan;
       warm := temp
     | None -> assert false);
    remaining := !remaining - step
  done;
  let plan_list = List.rev !rev_plan in
  let final = Technique.apply_row_insertions base plan_list in
  (* re-score the winner at full tolerance, warm-started from its own
     ranking solution (a few iterations to polish 1e-6 down to 1e-10) *)
  let peak, _ =
    eval_trial flow ~after:plan_list ~nx:coarse_nx ~x0:(Some !warm)
      ~tol:Thermal.Cg.default_tol
  in
  incr evaluations;
  let result =
    { plan = final; predicted_peak_k = peak; evaluations = !evaluations }
  in
  Obs.Metrics.count "optimizer.thermal_solves" ~by:result.evaluations;
  Obs.Metrics.observe "optimizer.predicted_peak_k" result.predicted_peak_k;
  Obs.Metrics.count "optimizer.rows_inserted" ~by:rows;
  result
