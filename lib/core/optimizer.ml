type result = {
  plan : Technique.eri_result;
  predicted_peak_k : float;
  evaluations : int;
  blur_evaluations : int;
  adjoint_evaluations : int;
}

let peak_of flow pl ~nx =
  let cfg =
    { flow.Flow.mesh_config with Thermal.Mesh.nx; ny = nx }
  in
  let power =
    Power.Map.power_map pl ~per_cell_w:flow.Flow.per_cell_w ~nx ~ny:nx
  in
  let solution = Thermal.Mesh.solve (Thermal.Mesh.build cfg ~power) in
  (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid solution))
    .Thermal.Metrics.peak_rise_k

let evaluate_plan flow ~after ~nx =
  let r = Technique.apply_row_insertions flow.Flow.base_placement after in
  peak_of flow r.Technique.eri_placement ~nx

(* SSOR beats Jacobi by ~3x in iterations on the mesh stencil; candidate
   solves don't need Jacobi's cheaper apply because the matrix is reused
   from the cache anyway. *)
let eval_precond = Thermal.Cg.Ssor 1.6

(* Candidate *ranking* only has to separate peaks that differ by
   millikelvins, so trial solves stop at 1e-6 relative (inexact
   evaluation); the chosen plan is re-scored at full tolerance before it
   is reported. CG convergence is roughly linear in requested digits, so
   this alone saves ~40% of the ranking iterations. *)
let rank_tol = 1e-6

(* The power map of a trial plan — all a blur screening pass needs. *)
let trial_power flow ~after ~nx =
  let r = Technique.apply_row_insertions flow.Flow.base_placement after in
  Power.Map.power_map r.Technique.eri_placement
    ~per_cell_w:flow.Flow.per_cell_w ~nx ~ny:nx

(* One candidate evaluation, warm-started from the incumbent temperature
   field [x0]. All trial placements share the die extent (same number of
   inserted rows), so every solve in a round reuses one cached matrix and
   a good starting point — most of the optimizer's speedup lives here. *)
let eval_trial_sol flow ~after ~nx ~x0 ~tol =
  (* cancellation point: candidate solves run at millisecond granularity,
     so a deadline abort requested by the serve watchdog lands here *)
  Robust.Cancel.check ();
  let cfg = { flow.Flow.mesh_config with Thermal.Mesh.nx; ny = nx } in
  let power = trial_power flow ~after ~nx in
  let problem = Thermal.Mesh.build cfg ~power in
  let precond =
    match flow.Flow.mesh_precond with
    | Some choice -> Thermal.Mesh.precond_of_choice problem choice
    | None -> eval_precond
  in
  let solution = Thermal.Mesh.solve ~tol ~precond ?x0 problem in
  let peak =
    (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid solution))
      .Thermal.Metrics.peak_rise_k
  in
  (peak, solution)

let eval_trial flow ~after ~nx ~x0 ~tol =
  let peak, solution = eval_trial_sol flow ~after ~nx ~x0 ~tol in
  (peak, solution.Thermal.Mesh.temp)

(* The blur kernel is characterized from a fault-free exact solve and
   then trusted for thousands of evaluations, so any armed fault —
   whichever stage it targets — forces the exact tier: injected faults
   must reach the solve path they are aimed at, not be blurred away. *)
let screening_enabled flow =
  match flow.Flow.screen with
  | Flow.Screen_exact -> false
  | Flow.Screen_fft -> true
  | Flow.Screen_auto ->
    not (List.exists Robust.Faults.armed Robust.Faults.all)

(* The paper's scheme: rank candidates by their (screened or exact)
   predicted peak. *)
let peak_rows flow ~rows ~chunk ~stride ~coarse_nx ~leaders =
  Obs.Trace.with_span "optimizer.greedy_rows" @@ fun () ->
  let base = flow.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  let candidates =
    let rec collect r acc = if r >= num_rows then List.rev acc
      else collect (r + stride) (r :: acc)
    in
    collect 0 []
  in
  let num_cands = List.length candidates in
  (* screening pays one kernel characterization per round; with no more
     candidates than leaders every candidate gets an exact solve anyway,
     so the blur tier cannot win and is skipped *)
  let screen = screening_enabled flow && num_cands > leaders in
  let evaluations = ref 0 in
  let blur_evaluations = ref 0 in
  (* the plan is kept reversed: committing a chunk is a prepend, and
     [Technique.apply_row_insertions] sorts its input, so order is free *)
  let rev_plan = ref [] in
  let remaining = ref rows in
  (* warm-start seed: the incumbent plan's temperature field *)
  let _, temp0 =
    eval_trial flow ~after:[] ~nx:coarse_nx ~x0:None ~tol:rank_tol
  in
  incr evaluations;
  let warm = ref temp0 in
  while !remaining > 0 do
    let step = min chunk !remaining in
    let x0 = Some !warm in
    let trial_of cand =
      List.rev_append (List.init step (fun _ -> cand)) !rev_plan
    in
    (* candidate trials are independent: evaluate them on the pool. The
       list order is preserved, and selection below walks it sequentially
       with the seed's tie-break (strict improvement wins), so parallel
       and sequential runs pick identical plans. Under fft screening the
       non-leader entries are [None]; the leaders are solved with exactly
       the inputs the exact tier would use (same x0, tolerance and
       preconditioner), so whenever the leader set contains the exact
       argmin the committed plan is bit-identical to exact screening. *)
    let outcomes =
      if screen then begin
        Obs.Trace.with_span "optimizer.screen" @@ fun () ->
        (* every trial in this round shares (config, extent), so the
           kernel characterized from the first candidate's mesh serves
           all of them (and is cached on the mesh MRU entry) *)
        let first = List.hd candidates in
        let first_power =
          trial_power flow ~after:(trial_of first) ~nx:coarse_nx
        in
        let kernel =
          let cfg =
            { flow.Flow.mesh_config with
              Thermal.Mesh.nx = coarse_nx; ny = coarse_nx }
          in
          Thermal.Mesh.blur ?precond:flow.Flow.mesh_precond
            (Thermal.Mesh.build cfg ~power:first_power)
        in
        (* anchor the round with one exact (rank-tolerance) solve of the
           first candidate and rank by blur corrected with the anchor's
           exact-minus-blurred error field. Under the default adiabatic
           walls the transfer is exact and the correction is only CG
           residual noise; it is kept because it is cheap (one of the
           round's solves) and makes the screen a control variate: the
           transfer is linear in the power map, so if the model ever
           degrades (non-zero side-wall conductance breaks translation
           invariance) estimates err only by the model error of the
           *difference* between candidate power maps, not by its
           absolute error. *)
        let first_peak, first_sol =
          eval_trial_sol flow ~after:(trial_of first) ~nx:coarse_nx ~x0
            ~tol:rank_tol
        in
        let correction =
          Geo.Grid.map2 (Thermal.Mesh.active_layer_grid first_sol)
            (Thermal.Blur.field kernel ~power:first_power) ~f:( -. )
        in
        let blurred =
          Parallel.Pool.map_list candidates ~f:(fun cand ->
              Thermal.Blur.peak kernel ~correction
                ~power:(trial_power flow ~after:(trial_of cand)
                          ~nx:coarse_nx))
        in
        blur_evaluations := !blur_evaluations + num_cands + 1;
        (* stable top-k on (corrected peak, candidate index): equal peaks
           keep candidate order, matching the exact tier's first-wins
           tie-break *)
        let ranked =
          List.sort compare (List.mapi (fun i p -> (p, i)) blurred)
        in
        let is_leader = Array.make num_cands false in
        List.iteri
          (fun rank (_, i) -> if rank < leaders then is_leader.(i) <- true)
          ranked;
        (* the anchor solve is reused below when candidate 0 leads (the
           generic outcome counter picks it up there); otherwise it was
           an extra exact solve and is accounted for here *)
        if not is_leader.(0) then incr evaluations;
        Parallel.Pool.map_list
          (List.mapi (fun i c -> (i, c)) candidates)
          ~f:(fun (i, cand) ->
              if not is_leader.(i) then None
              else if i = 0 then
                (* the anchor solve used the leader inputs already *)
                Some (first_peak, first_sol.Thermal.Mesh.temp)
              else
                Some
                  (eval_trial flow ~after:(trial_of cand) ~nx:coarse_nx ~x0
                     ~tol:rank_tol))
      end
      else
        Parallel.Pool.map_list candidates ~f:(fun cand ->
            Some
              (eval_trial flow ~after:(trial_of cand) ~nx:coarse_nx ~x0
                 ~tol:rank_tol))
    in
    List.iter (fun o -> if o <> None then incr evaluations) outcomes;
    let best = ref None in
    List.iter2
      (fun cand outcome ->
         match outcome with
         | None -> ()
         | Some (peak, temp) ->
           (match !best with
            | Some (_, best_peak, _) when best_peak <= peak -> ()
            | _ -> best := Some (cand, peak, temp)))
      candidates outcomes;
    (match !best with
     | Some (cand, _, temp) ->
       rev_plan := List.rev_append (List.init step (fun _ -> cand)) !rev_plan;
       warm := temp
     | None -> assert false);
    remaining := !remaining - step
  done;
  let plan_list = List.rev !rev_plan in
  let final = Technique.apply_row_insertions base plan_list in
  (* re-score the winner at full tolerance, warm-started from its own
     ranking solution (a few iterations to polish 1e-6 down to 1e-10) *)
  let peak, _ =
    eval_trial flow ~after:plan_list ~nx:coarse_nx ~x0:(Some !warm)
      ~tol:Thermal.Cg.default_tol
  in
  incr evaluations;
  { plan = final; predicted_peak_k = peak; evaluations = !evaluations;
    blur_evaluations = !blur_evaluations; adjoint_evaluations = 0 }

(* ---- Gradient guide ----------------------------------------------------

   One adjoint solve at the incumbent prices *every* candidate: the
   adjoint field lambda satisfies G lambda = df/dT, so for any trial
   power map P the smoothed peak is, to first order,
   f(P) ~ f(P_inc) + <lambda, P - P_inc>. The incumbent term is common
   to all candidates of a round, so ranking by <lambda, P_c> needs no
   per-candidate solve at all — only the committed chunk is confirmed
   with one exact (rank-tolerance) re-solve. *)

(* <sensitivity, power>: the candidate's first-order objective up to the
   round-constant incumbent term. Both grids live on the coarse
   evaluation mesh's tile counts; the candidate's die is slightly taller
   than the incumbent's, which is part of the first-order approximation
   the confirmation solve absorbs. *)
let sensitivity_score sens power =
  let acc = ref 0.0 in
  Geo.Grid.iteri power ~f:(fun ~ix ~iy p ->
      acc := !acc +. (Geo.Grid.get sens ~ix ~iy *. p));
  !acc

(* Euclidean projection onto the scaled simplex {x >= 0, sum x = total}
   (sort-based: theta is the largest valid shift of the descending
   cumulative means). *)
let project_simplex x ~total =
  let n = Array.length x in
  let u = Array.copy x in
  Array.sort (fun a b -> Float.compare b a) u;
  let theta = ref 0.0 in
  let css = ref 0.0 in
  for j = 0 to n - 1 do
    css := !css +. u.(j);
    let t = (!css -. total) /. float_of_int (j + 1) in
    if u.(j) -. t > 0.0 then theta := t
  done;
  Array.map (fun v -> Float.max 0.0 (v -. !theta)) x

(* Round a continuous allocation (summing to [total]) to integers by
   largest remainder, ties to the lower candidate index — the same
   first-wins determinism as the peak guide's selection walk. *)
let largest_remainder x ~total =
  let n = Array.length x in
  let counts = Array.map (fun v -> int_of_float (Float.floor v)) x in
  let assigned = Array.fold_left ( + ) 0 counts in
  let rem = Array.mapi (fun i v -> (v -. Float.floor v, i)) x in
  Array.sort
    (fun (a, i) (b, j) ->
       match Float.compare b a with 0 -> compare i j | c -> c)
    rem;
  let missing = max 0 (min n (total - assigned)) in
  for k = 0 to missing - 1 do
    let _, i = rem.(k) in
    counts.(i) <- counts.(i) + 1
  done;
  counts

(* Distribute [step] rows over the candidates from their first-order
   scores: projected-gradient descent of sum_i g_i x_i + (gamma/2)|x|^2
   over {x >= 0, sum x = step}, then largest-remainder rounding. The
   regularizer weight gamma = (g_max - g_min)/step scales the quadratic
   pull to the score spread, so mass concentrates on the best-scoring
   rows without collapsing onto one when several are nearly as good.
   [prepass_steps = 0] (or a flat score vector) skips the continuous
   phase: the whole chunk goes to the argmin score — exactly the peak
   guide's move. *)
let allocate scores ~step ~prepass_steps =
  let n = Array.length scores in
  let argmin () =
    let best = ref 0 in
    Array.iteri (fun i g -> if g < scores.(!best) then best := i) scores;
    let counts = Array.make n 0 in
    counts.(!best) <- step;
    counts
  in
  let g_min = Array.fold_left Float.min infinity scores in
  let g_max = Array.fold_left Float.max neg_infinity scores in
  let gamma = (g_max -. g_min) /. float_of_int step in
  if prepass_steps <= 0 || not (gamma > 0.0) then argmin ()
  else begin
    (* eta = 1/(2 gamma) contracts the fixed-point residual by half per
       step, so [prepass_steps] trades allocation sharpness for work *)
    let eta = 1.0 /. (2.0 *. gamma) in
    let x = ref (Array.make n (float_of_int step /. float_of_int n)) in
    for _ = 1 to prepass_steps do
      let moved =
        Array.mapi (fun i v -> v -. (eta *. (scores.(i) +. (gamma *. v)))) !x
      in
      x := project_simplex moved ~total:(float_of_int step)
    done;
    largest_remainder !x ~total:step
  end

let gradient_rows flow ~rows ~chunk ~stride ~coarse_nx ~prepass_steps =
  Obs.Trace.with_span "optimizer.gradient_rows" @@ fun () ->
  let base = flow.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  let candidates =
    let rec collect r acc = if r >= num_rows then List.rev acc
      else collect (r + stride) (r :: acc)
    in
    Array.of_list (collect 0 [])
  in
  let evaluations = ref 0 in
  let adjoint_evaluations = ref 0 in
  let rev_plan = ref [] in
  let remaining = ref rows in
  let cfg =
    { flow.Flow.mesh_config with Thermal.Mesh.nx = coarse_nx; ny = coarse_nx }
  in
  (* the incumbent's rank-tolerance solution doubles as the adjoint's
     forward input and the warm start of the next round's confirmation *)
  let _, sol0 = eval_trial_sol flow ~after:[] ~nx:coarse_nx ~x0:None
      ~tol:rank_tol
  in
  incr evaluations;
  let incumbent = ref sol0 in
  (* warm-start the adjoint iteration from the previous round's lambda:
     the softmax source drifts slowly between nearby plans *)
  let lambda = ref None in
  while !remaining > 0 do
    Robust.Cancel.check ();
    let step = min chunk !remaining in
    let inc_power = trial_power flow ~after:!rev_plan ~nx:coarse_nx in
    let problem = Thermal.Mesh.build cfg ~power:inc_power in
    let precond =
      match flow.Flow.mesh_precond with
      | Some choice -> Thermal.Mesh.precond_of_choice problem choice
      | None -> eval_precond
    in
    let adj =
      Thermal.Adjoint.solve ~tol:rank_tol ~precond ?x0:!lambda
        ~forward:!incumbent problem
    in
    incr adjoint_evaluations;
    lambda := Some adj.Thermal.Adjoint.lambda;
    let sens = adj.Thermal.Adjoint.sensitivity in
    let trial_of cand =
      List.rev_append (List.init step (fun _ -> cand)) !rev_plan
    in
    (* price every candidate with re-binned power only — no solves; the
       pool parallelism is over the re-binning, order is preserved *)
    let scores =
      Array.of_list
        (Parallel.Pool.map_list (Array.to_list candidates) ~f:(fun cand ->
             sensitivity_score sens
               (trial_power flow ~after:(trial_of cand) ~nx:coarse_nx)))
    in
    let counts = allocate scores ~step ~prepass_steps in
    Array.iteri
      (fun i n ->
         if n > 0 then
           rev_plan :=
             List.rev_append (List.init n (fun _ -> candidates.(i))) !rev_plan)
      counts;
    (* confirm the committed chunk with one exact (rank-tolerance) solve,
       warm-started from the incumbent field *)
    let _, sol =
      eval_trial_sol flow ~after:!rev_plan ~nx:coarse_nx
        ~x0:(Some (!incumbent).Thermal.Mesh.temp) ~tol:rank_tol
    in
    incr evaluations;
    incumbent := sol;
    remaining := !remaining - step
  done;
  let plan_list = List.rev !rev_plan in
  let final = Technique.apply_row_insertions base plan_list in
  let peak, _ =
    eval_trial flow ~after:plan_list ~nx:coarse_nx
      ~x0:(Some (!incumbent).Thermal.Mesh.temp) ~tol:Thermal.Cg.default_tol
  in
  incr evaluations;
  { plan = final; predicted_peak_k = peak; evaluations = !evaluations;
    blur_evaluations = 0; adjoint_evaluations = !adjoint_evaluations }

let greedy_rows flow ~rows ?(chunk = 4) ?(stride = 4) ?(coarse_nx = 20)
    ?(leaders = 3) ?(prepass_steps = 8) () =
  if rows <= 0 then invalid_arg "Optimizer.greedy_rows: non-positive budget";
  if chunk <= 0 || stride <= 0 || coarse_nx <= 0 || leaders <= 0 then
    invalid_arg "Optimizer.greedy_rows: non-positive parameter";
  if prepass_steps < 0 then
    invalid_arg "Optimizer.greedy_rows: negative prepass_steps";
  let result =
    match flow.Flow.guide with
    | Flow.Guide_peak ->
      peak_rows flow ~rows ~chunk ~stride ~coarse_nx ~leaders
    | Flow.Guide_gradient ->
      gradient_rows flow ~rows ~chunk ~stride ~coarse_nx ~prepass_steps
  in
  Obs.Metrics.count "optimizer.thermal_solves" ~by:result.evaluations;
  if result.blur_evaluations > 0 then
    Obs.Metrics.count "optimizer.blur_evaluations"
      ~by:result.blur_evaluations;
  if result.adjoint_evaluations > 0 then
    Obs.Metrics.count "optimizer.adjoint_solves"
      ~by:result.adjoint_evaluations;
  Obs.Metrics.observe "optimizer.predicted_peak_k" result.predicted_peak_k;
  Obs.Metrics.count "optimizer.rows_inserted" ~by:rows;
  result
