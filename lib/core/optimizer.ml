type result = {
  plan : Technique.eri_result;
  predicted_peak_k : float;
  evaluations : int;
}

let peak_of flow pl ~nx =
  let cfg =
    { flow.Flow.mesh_config with Thermal.Mesh.nx; ny = nx }
  in
  let power =
    Power.Map.power_map pl ~per_cell_w:flow.Flow.per_cell_w ~nx ~ny:nx
  in
  let solution = Thermal.Mesh.solve (Thermal.Mesh.build cfg ~power) in
  (Thermal.Metrics.of_map (Thermal.Mesh.active_layer_grid solution))
    .Thermal.Metrics.peak_rise_k

let evaluate_plan flow ~after ~nx =
  let r = Technique.apply_row_insertions flow.Flow.base_placement after in
  peak_of flow r.Technique.eri_placement ~nx

let greedy_rows flow ~rows ?(chunk = 4) ?(stride = 4) ?(coarse_nx = 20) () =
  if rows <= 0 then invalid_arg "Optimizer.greedy_rows: non-positive budget";
  if chunk <= 0 || stride <= 0 || coarse_nx <= 0 then
    invalid_arg "Optimizer.greedy_rows: non-positive parameter";
  Obs.Trace.with_span "optimizer.greedy_rows" @@ fun () ->
  let base = flow.Flow.base_placement in
  let num_rows = base.Place.Placement.fp.Place.Floorplan.num_rows in
  let candidates =
    let rec collect r acc = if r >= num_rows then List.rev acc
      else collect (r + stride) (r :: acc)
    in
    collect 0 []
  in
  let evaluations = ref 0 in
  let plan = ref [] in
  let remaining = ref rows in
  while !remaining > 0 do
    let step = min chunk !remaining in
    let best = ref None in
    List.iter
      (fun cand ->
         let trial = !plan @ List.init step (fun _ -> cand) in
         let peak = evaluate_plan flow ~after:trial ~nx:coarse_nx in
         incr evaluations;
         match !best with
         | Some (_, best_peak) when best_peak <= peak -> ()
         | _ -> best := Some (cand, peak))
      candidates;
    (match !best with
     | Some (cand, _) ->
       plan := !plan @ List.init step (fun _ -> cand)
     | None -> assert false);
    remaining := !remaining - step
  done;
  let final = Technique.apply_row_insertions base !plan in
  let result =
    { plan = final;
      predicted_peak_k =
        peak_of flow final.Technique.eri_placement ~nx:coarse_nx;
      evaluations = !evaluations + 1 }
  in
  Obs.Metrics.count "optimizer.thermal_solves" ~by:result.evaluations;
  Obs.Metrics.observe "optimizer.predicted_peak_k" result.predicted_peak_k;
  Obs.Metrics.count "optimizer.rows_inserted" ~by:rows;
  result
