module P = Place.Placement

let grid_values g =
  let nx = Geo.Grid.nx g and ny = Geo.Grid.ny g in
  let a = Array.make (nx * ny) 0.0 in
  Geo.Grid.iteri g ~f:(fun ~ix ~iy v -> a.((iy * nx) + ix) <- v);
  a

let placement pl =
  Robust.Validate.make "placement.legal" (fun () ->
      match P.validate pl with
      | [] -> Ok ()
      | violations ->
        let n = List.length violations in
        let shown =
          List.filteri (fun i _ -> i < 3) violations
          |> List.map (fun v -> Format.asprintf "%a" P.pp_violation v)
          |> String.concat "; "
        in
        Error
          (Printf.sprintf "%d violation(s): %s%s" n shown
             (if n > 3 then "; ..." else "")))

(* Geometric double-check of what [P.validate] asserts in row/site space:
   every cell rectangle lies inside the core. Catches disagreements
   between the two coordinate systems (row_y / site_x arithmetic). *)
let floorplan pl =
  Robust.Validate.make "floorplan.containment" (fun () ->
      let core = pl.P.fp.Place.Floorplan.core in
      let eps = 1e-6 in
      let n = Array.length pl.P.locs in
      let rec go cid =
        if cid >= n then Ok ()
        else begin
          let r = P.cell_rect pl cid in
          if r.Geo.Rect.lx < core.Geo.Rect.lx -. eps
             || r.Geo.Rect.ly < core.Geo.Rect.ly -. eps
             || r.Geo.Rect.hx > core.Geo.Rect.hx +. eps
             || r.Geo.Rect.hy > core.Geo.Rect.hy +. eps
          then
            Error
              (Printf.sprintf "cell %d at %s escapes core %s" cid
                 (Geo.Rect.to_string r) (Geo.Rect.to_string core))
          else go (cid + 1)
        end
      in
      go 0)

let power_map g =
  Robust.Validate.make "power.finite_nonneg" (fun () ->
      Robust.Validate.non_negative ~eps:0.0 ~what:"power" (grid_values g))

let mesh_matrix m =
  Robust.Validate.make "mesh.spd_structure" (fun () ->
      let n = Thermal.Sparse.dim m in
      let exception Bad of string in
      try
        for i = 0 to n - 1 do
          let d = Thermal.Sparse.get m i i in
          if not (Float.is_finite d) || d <= 0.0 then
            raise (Bad (Printf.sprintf "diagonal[%d] = %g (must be > 0)" i d));
          (* resistive nodal matrix: |off-diagonals| of a row never exceed
             the diagonal (strictly less wherever a boundary conductance
             grounds the node), i.e. d + sum|offdiag| <= 2d *)
          let rs = Thermal.Sparse.row_sum_abs m i in
          if rs > 2.0 *. d *. (1.0 +. 1e-9) then
            raise
              (Bad
                 (Printf.sprintf
                    "row %d not diagonally dominant (|row| = %g, diag = %g)"
                    i rs d));
          Thermal.Sparse.iter_row m i ~f:(fun j v ->
              if not (Float.is_finite v) then
                raise (Bad (Printf.sprintf "entry (%d,%d) = %g" i j v));
              let vt = Thermal.Sparse.get m j i in
              let tol = 1e-9 *. Float.max 1.0 (Float.abs v) in
              if Float.abs (v -. vt) > tol then
                raise
                  (Bad
                     (Printf.sprintf
                        "asymmetric: a[%d,%d] = %g but a[%d,%d] = %g" i j v
                        j i vt)))
        done;
        Ok ()
      with Bad detail -> Error detail)

let temperature ?(max_rise_k = 1000.0) g =
  Robust.Validate.make "thermal.bounded" (fun () ->
      Robust.Validate.within ~what:"temperature rise" ~lo:(-1e-6)
        ~hi:max_rise_k (grid_values g))
