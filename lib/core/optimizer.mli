(** Greedy row-budget optimization — the paper's stated future work
    ("improve the efficiency of the approaches by transforming them into
    suitable optimization problems, e.g. the amount of empty rows ... to be
    inserted").

    The optimizer spends an empty-row budget one chunk at a time: every
    candidate insertion position is evaluated with a true (coarse-mesh)
    thermal solve of the resulting placement, and the position with the
    lowest peak temperature wins. This is slower than plain ERI but needs
    no hotspot heuristics and handles multiple competing warm regions. *)

type result = {
  plan : Technique.eri_result;      (** the chosen insertions applied *)
  predicted_peak_k : float;         (** coarse-mesh peak of the final plan *)
  evaluations : int;                (** thermal solves spent *)
}

val greedy_rows :
  Flow.t ->
  rows:int ->
  ?chunk:int ->
  ?stride:int ->
  ?coarse_nx:int ->
  unit ->
  result
(** [greedy_rows flow ~rows ()] allocates [rows] empty rows on the flow's
    base placement. [chunk] rows are committed per greedy step (default 4),
    candidate positions are every [stride]-th row (default 4), and candidate
    evaluation uses a [coarse_nx] x [coarse_nx] thermal grid (default 20).
    Raises [Invalid_argument] on a non-positive budget.

    Candidate solves within a round run concurrently on the
    {!Parallel.Pool}, share the round's cached conductance matrix, and are
    warm-started from the incumbent plan's temperature field. Selection
    walks candidates in their fixed order with a strict-improvement
    tie-break, so the chosen plan is identical for any pool size
    (including sequential). *)

val evaluate_plan : Flow.t -> after:int list -> nx:int -> float
(** Peak temperature rise (K) of the base placement with the given
    insertion plan applied, on an [nx] x [nx] mesh. Exposed for tests and
    for comparing optimizer output against heuristic ERI. *)
