(** Greedy row-budget optimization — the paper's stated future work
    ("improve the efficiency of the approaches by transforming them into
    suitable optimization problems, e.g. the amount of empty rows ... to be
    inserted").

    The optimizer spends an empty-row budget one chunk at a time: every
    candidate insertion position is evaluated with a true (coarse-mesh)
    thermal solve of the resulting placement, and the position with the
    lowest peak temperature wins. This is slower than plain ERI but needs
    no hotspot heuristics and handles multiple competing warm regions. *)

type result = {
  plan : Technique.eri_result;      (** the chosen insertions applied *)
  predicted_peak_k : float;         (** coarse-mesh peak of the final plan *)
  evaluations : int;
  (** exact thermal solves spent (initial seed, candidate/leader solves
      and the final re-score; kernel characterization solves are traced
      separately as [thermal.blur.characterize]) *)
  blur_evaluations : int;
  (** FFT blur screenings spent; 0 when the exact tier ran *)
  adjoint_evaluations : int;
  (** adjoint sensitivity solves spent; 0 under [Guide_peak] *)
}

val greedy_rows :
  Flow.t ->
  rows:int ->
  ?chunk:int ->
  ?stride:int ->
  ?coarse_nx:int ->
  ?leaders:int ->
  ?prepass_steps:int ->
  unit ->
  result
(** [greedy_rows flow ~rows ()] allocates [rows] empty rows on the flow's
    base placement. [chunk] rows are committed per greedy step (default 4),
    candidate positions are every [stride]-th row (default 4), and candidate
    evaluation uses a [coarse_nx] x [coarse_nx] thermal grid (default 20).
    Raises [Invalid_argument] on a non-positive budget or parameter.

    Candidate solves within a round run concurrently on the
    {!Parallel.Pool}, share the round's cached conductance matrix, and are
    warm-started from the incumbent plan's temperature field. Selection
    walks candidates in their fixed order with a strict-improvement
    tie-break, so the chosen plan is identical for any pool size
    (including sequential).

    When the flow's [screen] tier resolves to fft (see
    {!Flow.screen_choice}), each round solves the first candidate exactly
    once (the anchor), ranks every candidate by the peak of its blurred
    power map corrected by the anchor's exact-minus-blurred error field
    (a control variate — see {!Thermal.Blur.peak}), then runs the exact
    warm-started solve only for the [leaders] best-ranked candidates
    (default 3; ties keep candidate order). Anchor and leader solves use
    exactly the inputs the exact tier would, so the committed plan is
    bit-identical to [Screen_exact] whenever the leader set contains the
    exact winner. Screening is skipped when a round has no more
    candidates than [leaders].

    When the flow's [guide] is {!Flow.Guide_gradient}, the per-candidate
    solves disappear entirely: each round runs one adjoint sensitivity
    solve at the incumbent ({!Thermal.Adjoint}), prices every candidate
    by the inner product of the adjoint map with its re-binned power map
    (no solve — the thermal system is linear, so the inner product is
    the candidate's first-order peak up to a round-constant), allocates
    the chunk across candidates with a continuous projected-gradient
    pre-pass of [prepass_steps] iterations (default 8; 0 reduces to the
    peak guide's argmin move) rounded by largest remainder, and confirms
    the committed chunk with a single exact warm-started solve. Exact
    solves per run drop from O(rounds * candidates) to [rounds + 2]
    (seed and final re-score) plus [rounds] adjoint solves. [leaders] is
    ignored in this mode; selection remains deterministic for any pool
    size. *)

val evaluate_plan : Flow.t -> after:int list -> nx:int -> float
(** Peak temperature rise (K) of the base placement with the given
    insertion plan applied, on an [nx] x [nx] mesh. Exposed for tests and
    for comparing optimizer output against heuristic ERI. *)
