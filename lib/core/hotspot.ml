type t = {
  rect : Geo.Rect.t;
  tiles : (int * int) list;
  peak_rise_k : float;
  cells : Netlist.Types.cell_id list;
}

(* BFS flood fill over the boolean "hot" mask, 4-connectivity. *)
let clusters_of_mask ~nx ~ny hot =
  let seen = Array.make (nx * ny) false in
  let idx ix iy = (iy * nx) + ix in
  let result = ref [] in
  for iy0 = 0 to ny - 1 do
    for ix0 = 0 to nx - 1 do
      if hot.(idx ix0 iy0) && not seen.(idx ix0 iy0) then begin
        let queue = Queue.create () in
        Queue.add (ix0, iy0) queue;
        seen.(idx ix0 iy0) <- true;
        let members = ref [] in
        while not (Queue.is_empty queue) do
          let ix, iy = Queue.pop queue in
          members := (ix, iy) :: !members;
          let try_push ix iy =
            if ix >= 0 && ix < nx && iy >= 0 && iy < ny
               && hot.(idx ix iy) && not seen.(idx ix iy)
            then begin
              seen.(idx ix iy) <- true;
              Queue.add (ix, iy) queue
            end
          in
          try_push (ix - 1) iy;
          try_push (ix + 1) iy;
          try_push ix (iy - 1);
          try_push ix (iy + 1)
        done;
        result := !members :: !result
      end
    done
  done;
  !result

let detect ~thermal ~placement ?(threshold_frac = 0.85) () =
  if threshold_frac <= 0.0 || threshold_frac > 1.0 then
    invalid_arg "Hotspot.detect: threshold_frac out of (0,1]";
  let nx = Geo.Grid.nx thermal and ny = Geo.Grid.ny thermal in
  let peak = Geo.Grid.max_value thermal in
  let low = Geo.Grid.min_value thermal in
  if peak <= 0.0 || peak -. low <= 0.0 then []
  else begin
    (* Threshold on the map's dynamic range, not its absolute peak: on a
       package-dominated die the profile is a bump over a plateau, and the
       bump is what the techniques target. *)
    let threshold = low +. (threshold_frac *. (peak -. low)) in
    let hot = Array.make (nx * ny) false in
    Geo.Grid.iteri thermal ~f:(fun ~ix ~iy v ->
        if v >= threshold then hot.((iy * nx) + ix) <- true);
    let clusters = clusters_of_mask ~nx ~ny hot in
    let nl = placement.Place.Placement.nl in
    let make members =
      let rect =
        List.fold_left
          (fun acc (ix, iy) ->
             let tr = Geo.Grid.tile_rect thermal ~ix ~iy in
             match acc with
             | None -> Some tr
             | Some r -> Some (Geo.Rect.union r tr))
          None members
      in
      let rect = Option.get rect in
      let peak_rise_k =
        List.fold_left
          (fun acc (ix, iy) -> Float.max acc (Geo.Grid.get thermal ~ix ~iy))
          neg_infinity members
      in
      let cells = ref [] in
      Netlist.Types.iter_cells nl ~f:(fun cid _ ->
          let x, y = Place.Placement.cell_center placement cid in
          if Geo.Rect.contains rect ~x ~y then cells := cid :: !cells);
      { rect; tiles = members; peak_rise_k; cells = List.rev !cells }
    in
    clusters
    |> List.map make
    |> List.sort (fun a b -> compare b.peak_rise_k a.peak_rise_k)
  end

let tile_count h = List.length h.tiles

let to_json h =
  Obs.Json.Obj
    [ ("rect",
       Obs.Json.Obj
         [ ("lx", Obs.Json.Float h.rect.Geo.Rect.lx);
           ("ly", Obs.Json.Float h.rect.Geo.Rect.ly);
           ("hx", Obs.Json.Float h.rect.Geo.Rect.hx);
           ("hy", Obs.Json.Float h.rect.Geo.Rect.hy) ]);
      ("area_um2", Obs.Json.Float (Geo.Rect.area h.rect));
      ("tiles", Obs.Json.Int (tile_count h));
      ("cells", Obs.Json.Int (List.length h.cells));
      ("peak_rise_k", Obs.Json.Float h.peak_rise_k) ]

let total_cells hs =
  List.fold_left (fun acc h -> acc + List.length h.cells) 0 hs

let span_rows fp h =
  let rh = fp.Place.Floorplan.tech.Celllib.Tech.row_height_um in
  (* floor, not int_of_float: truncation rounds toward zero, so a rect
     just below the core (slightly negative ly) would map to row 0 instead
     of clamping away — mirrors Place.Floorplan.row_of_y. A rect entirely
     outside the core yields an empty span (lo > hi). *)
  let lo = int_of_float (Float.floor (h.rect.Geo.Rect.ly /. rh)) in
  let hi = int_of_float (Float.floor ((h.rect.Geo.Rect.hy -. 1e-9) /. rh)) in
  (max 0 lo, min (fp.Place.Floorplan.num_rows - 1) hi)

let is_wide fp h =
  Geo.Rect.width h.rect >= 0.5 *. Geo.Rect.width fp.Place.Floorplan.core
