(** End-to-end flow: benchmark -> activity -> placement -> power -> thermal.

    Mirrors the paper's Fig. 2: logic simulation annotates switching
    activity, the placed netlist and per-cell powers feed the thermal
    simulator, and the resulting thermal map (plus a user-specified area
    overhead) drives the area-management techniques.

    Per the paper, the techniques "reduce cell density while keeping (cell)
    power consumption unchanged": per-cell powers are computed once on the
    base placement and re-binned (not re-estimated) after each transform. *)

type screen_choice = Screen_auto | Screen_fft | Screen_exact
(** Candidate-screening tier for the optimizer's greedy sweep.
    [Screen_fft] ranks candidates with the O(n log n) power-blurring
    convolution ({!Thermal.Blur}) and re-scores only the leaders with the
    exact MG-CG solver; [Screen_exact] solves every candidate exactly;
    [Screen_auto] (the default) picks fft unless a fault is armed —
    injected faults must reach the exact solve path they target, so
    fault-injected runs always fall back to exact screening. *)

val screen_choice_name : screen_choice -> string
(** ["auto"], ["fft"] or ["exact"] — for reports and config echoes. *)

type guide_choice = Guide_peak | Guide_gradient
(** How the optimizer ranks whitespace-allocation candidates.
    [Guide_peak] (the paper's scheme) evaluates candidates by their
    predicted peak temperature — exact or screened thermal solves per
    candidate. [Guide_gradient] ranks every candidate from one adjoint
    sensitivity solve at the incumbent ({!Thermal.Adjoint}): the
    per-tile [dT_peak/d(power)] map prices each candidate's power
    redistribution without any per-candidate solve, and only the
    committed winner is confirmed exactly. *)

val guide_choice_name : guide_choice -> string
(** ["peak"] or ["gradient"] — for reports and config echoes. *)

type t = {
  bench : Netgen.Benchmark.t;
  tech : Celllib.Tech.t;
  workload : Logicsim.Workload.t;
  activity : Logicsim.Activity.report;
  unit_areas : (int * float) array;  (** cell area per unit tag *)
  base_placement : Place.Placement.t;
  base_regions : Place.Regions.region array;
  positions : Place.Global.positions; (** global placement, base core *)
  per_cell_w : float array;
  power_report : Power.Model.report;
  seed : int;
  base_utilization : float;
  mesh_config : Thermal.Mesh.config;
  mesh_precond : Thermal.Mesh.precond_choice option;
  (** CG preconditioner for every thermal solve this flow runs ([None]
      keeps the stage defaults: Jacobi in {!Thermal.Mesh.solve_result},
      SSOR in the optimizer's candidate ranking). [Some Pc_mg] switches
      evaluation, checking and optimization to the geometric multigrid
      V-cycle — the fast choice at high mesh resolution. *)
  screen : screen_choice;
  (** Screening tier for optimizer candidate ranking (see
      {!screen_choice}). Only the optimizer consults this: full
      evaluations, checks and sweeps always solve exactly. *)
  guide : guide_choice;
  (** Candidate-ranking signal for the optimizer (see {!guide_choice}).
      Like [screen], only the optimizer consults this. *)
}

val cells_of_region : t -> int -> Netlist.Types.cell_id array

val mesh_name : t -> string
(** ["40x40x9"]-style mesh dimensions, for fingerprints and metric
    labels. *)

val precond_name : t -> string
(** The configured preconditioner choice (["auto"] when unset). *)

val fingerprint : ?extra:(string * string) list -> t -> string
(** Readable pipe-joined configuration fingerprint:
    [mesh=…|precond=…|screen=…|guide=…|seed=…|util=…], with [extra]
    key/value pairs appended in order. Two runs with equal fingerprints
    solved the same configured problem — the identity the run ledger
    records and [thermoplace history diff] compares. *)

val config_fingerprint :
  ?extra:(string * string) list ->
  mesh_config:Thermal.Mesh.config ->
  precond:Thermal.Mesh.precond_choice option ->
  screen:screen_choice ->
  guide:guide_choice ->
  seed:int ->
  utilization:float ->
  unit ->
  string
(** The same fingerprint computed from configuration alone, without
    paying for {!prepare} — [fingerprint t] equals [config_fingerprint]
    over [t]'s fields. The serve loop batches same-fingerprint job
    requests on this identity before preparing anything. *)

val prepare :
  ?seed:int ->
  ?utilization:float ->
  ?sim_cycles:int ->
  ?warmup_cycles:int ->
  ?mesh_config:Thermal.Mesh.config ->
  ?precond:Thermal.Mesh.precond_choice ->
  ?screen:screen_choice ->
  ?guide:guide_choice ->
  Netgen.Benchmark.t ->
  Logicsim.Workload.t ->
  t
(** Defaults: seed 42, utilization 0.85 (the compact base placement),
    1000 measured cycles after 64 warm-up cycles, 40 x 40 x 9 mesh,
    stage-default preconditioners (see the [mesh_precond] field),
    [Screen_auto] candidate screening, [Guide_peak] candidate ranking. *)

type evaluation = {
  placement : Place.Placement.t;
  power_map : Geo.Grid.t;     (** W per tile *)
  thermal_map : Geo.Grid.t;   (** K rise, active layer *)
  metrics : Thermal.Metrics.t;
  hotspots : Hotspot.t list;
  timing : Sta.Timing.result;
}

val evaluate_result : t -> Place.Placement.t ->
  (evaluation, Robust.Error.t) result
(** Re-bin power at the placement, solve the thermal network, detect
    hotspots, run temperature-derated STA. Invariant checks guard the
    stage boundaries: the power map must be finite and non-negative
    before the solve, the temperature field finite and bounded after it
    — a violation (or a solve degraded through the whole escalation
    ladder) is returned as a structured {!Robust.Error.t} instead of
    propagating NaNs into downstream metrics. *)

val evaluate : t -> Place.Placement.t -> evaluation
(** {!evaluate_result}, raising [Robust.Error.Error] on failure. *)

val sensitivity_result :
  ?sharpness:float -> t -> Place.Placement.t ->
  (Thermal.Adjoint.t, Robust.Error.t) result
(** Adjoint sensitivity of the smoothed peak temperature at a placement:
    re-bin power, validate it, then one forward and one adjoint solve
    through the flow's configured mesh and preconditioner
    ({!Thermal.Adjoint.solve_result}). The result's [sensitivity] grid is
    the per-tile [dT_peak/d(power)] map in K/W that [Guide_gradient]
    ranks candidates with. *)

val sensitivity : ?sharpness:float -> t -> Place.Placement.t ->
  Thermal.Adjoint.t
(** {!sensitivity_result}, raising [Robust.Error.Error] on failure. *)

val check_design : t -> Place.Placement.t -> Robust.Validate.outcome list
(** Run the full invariant suite ({!Checks.placement},
    {!Checks.floorplan}, {!Checks.power_map}, {!Checks.mesh_matrix} and,
    when the solve succeeds, {!Checks.temperature}) without
    short-circuiting; a failed thermal solve appears as a failed
    ["thermal.solve"] pseudo-check. Backs the [thermoplace check]
    subcommand. *)

val apply_default : t -> utilization:float -> Place.Placement.t
(** The Default scheme at a given utilization factor. *)

val apply_eri : t -> base:evaluation -> rows:int -> Technique.eri_result
(** ERI with [rows] extra rows next to [base]'s hotspots. *)

val apply_power_aware : t -> utilization:float -> Place.Placement.t
(** The placement-time thermal-aware baseline: whitespace distributed by
    unit power instead of uniformly (see {!Technique.power_aware_slack}). *)

val apply_hw : t -> on:evaluation -> ?margin_um:float ->
  ?max_hotspot_tiles:int -> unit -> Place.Placement.t
(** HW around [on]'s hotspots (usually a Default evaluation). *)
