(** Electrothermal (leakage-temperature) feedback.

    The paper's introduction motivates the techniques with "the positive
    feedback between leakage power and temperature further exacerbates the
    thermal problem". This module closes that loop: subthreshold leakage is
    re-evaluated at each cell's local temperature
    ([2^(rise / leakage_doubling_k)] scaling), the power map is re-binned
    and the thermal network re-solved, until the peak rise converges.

    Because the feedback amplifies exactly the regions the techniques cool,
    the temperature reductions of ERI/HW are slightly *larger* under
    feedback than in the open-loop analysis — quantified by the
    [electrothermal] bench experiment. *)

type result = {
  thermal_map : Geo.Grid.t;          (** converged active-layer map *)
  metrics : Thermal.Metrics.t;
  iterations : int;                  (** thermal solves performed *)
  converged : bool;
  open_loop_peak_k : float;          (** first-iteration (no feedback) peak *)
  leakage_w : float;                 (** converged total leakage *)
  nominal_leakage_w : float;         (** leakage at ambient corner *)
}

val evaluate : Flow.t -> Place.Placement.t -> ?max_iter:int ->
  ?tol_k:float -> unit -> result
(** Fixed-point iteration, damping-free (the loop gain is far below 1 for
    any survivable operating point). Defaults: [max_iter] 12, [tol_k] 1e-3.
    Raises [Robust.Error.Error (Invariant_violation _)] (check
    ["electrothermal.runaway"]) if the iteration diverges — peak rise
    grows past 200 K, thermal runaway, which a sane package never
    reaches here. *)

val runaway_sink_w_m2k : Flow.t -> Place.Placement.t -> float
(** Bisection estimate of the weakest top-side sink conductance for which
    the feedback still converges — the thermal-runaway boundary of the
    design. Exposed for the package-exploration experiment. *)
