type result = {
  thermal_map : Geo.Grid.t;
  metrics : Thermal.Metrics.t;
  iterations : int;
  converged : bool;
  open_loop_peak_k : float;
  leakage_w : float;
  nominal_leakage_w : float;
}

let solve_with flow pl per_cell_w =
  let cfg = flow.Flow.mesh_config in
  let power =
    Power.Map.power_map pl ~per_cell_w ~nx:cfg.Thermal.Mesh.nx
      ~ny:cfg.Thermal.Mesh.ny
  in
  let solution = Thermal.Mesh.solve (Thermal.Mesh.build cfg ~power) in
  Thermal.Mesh.active_layer_grid solution

let rise_lookup thermal pl cid =
  let x, y = Place.Placement.cell_center pl cid in
  match Geo.Grid.tile_of_point thermal ~x ~y with
  | Some (ix, iy) -> Geo.Grid.get thermal ~ix ~iy
  | None -> 0.0

let evaluate_gen flow pl ~max_iter ~tol_k =
  let report = flow.Flow.power_report in
  let tech = flow.Flow.tech in
  let open_loop = solve_with flow pl report.Power.Model.per_cell_w in
  let open_loop_peak_k = Geo.Grid.max_value open_loop in
  let rec iterate thermal prev_peak iter =
    let per_cell =
      Power.Model.per_cell_with_leakage_at tech report
        ~rise_of_cell:(rise_lookup thermal pl)
    in
    let thermal' = solve_with flow pl per_cell in
    let peak = Geo.Grid.max_value thermal' in
    if peak > 200.0 then
      Robust.Error.raise_
        (Robust.Error.Invariant_violation
           { check = "electrothermal.runaway";
             detail =
               Printf.sprintf
                 "peak rise %.1f K exceeds 200 K at coupling iteration %d"
                 peak (iter + 1) });
    if Float.abs (peak -. prev_peak) <= tol_k || iter >= max_iter then begin
      let leakage =
        Array.fold_left ( +. ) 0.0
          (Power.Model.per_cell_with_leakage_at tech report
             ~rise_of_cell:(rise_lookup thermal' pl))
        -. Array.fold_left ( +. ) 0.0 report.Power.Model.per_cell_dynamic_w
      in
      { thermal_map = thermal';
        metrics = Thermal.Metrics.of_map thermal';
        iterations = iter + 1;
        converged = Float.abs (peak -. prev_peak) <= tol_k;
        open_loop_peak_k;
        leakage_w = leakage;
        nominal_leakage_w = report.Power.Model.leakage_w }
    end
    else iterate thermal' peak (iter + 1)
  in
  iterate open_loop open_loop_peak_k 0

let evaluate flow pl ?(max_iter = 12) ?(tol_k = 1e-3) () =
  evaluate_gen flow pl ~max_iter ~tol_k

(* Shrink the sink until the loop stops converging; bisect the boundary. *)
let runaway_sink_w_m2k flow pl =
  let with_sink h =
    { flow with
      Flow.mesh_config =
        { flow.Flow.mesh_config with
          Thermal.Mesh.stack =
            Thermal.Stack.with_sink
              flow.Flow.mesh_config.Thermal.Mesh.stack ~h_top_w_m2k:h } }
  in
  let ok h =
    match evaluate_gen (with_sink h) pl ~max_iter:20 ~tol_k:0.01 with
    | r -> r.converged
    | exception
        Robust.Error.Error
          (Robust.Error.Invariant_violation _ | Robust.Error.Solver_diverged _)
      -> false
  in
  let h0 = flow.Flow.mesh_config.Thermal.Mesh.stack.Thermal.Stack.h_top_w_m2k in
  (* find a failing lower bound *)
  let rec descend h =
    if h < 1.0 then 1.0 else if ok h then descend (h /. 4.0) else h
  in
  let bad = descend h0 in
  if bad >= h0 then h0
  else begin
    let rec bisect lo hi n =
      (* invariant: lo fails, hi converges *)
      if n = 0 || (hi -. lo) /. hi < 0.05 then hi
      else begin
        let mid = 0.5 *. (lo +. hi) in
        if ok mid then bisect lo mid (n - 1) else bisect mid hi (n - 1)
      end
    in
    bisect bad (Float.min h0 (bad *. 4.0)) 12
  end
