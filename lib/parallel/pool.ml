(* Work-stealing-free domain pool: one shared job at a time, chunks handed
   out under a mutex. Chunk indices are fixed by the caller, so the
   decomposition (and any chunk-ordered reduction built on it) never
   depends on how many domains execute it. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Set while a domain is executing chunk bodies; a nested [parallel_for]
   from such a context runs inline instead of touching the (busy) pool. *)
let busy_key = Domain.DLS.new_key (fun () -> ref false)

type job = {
  run : int -> unit;
  total : int;
  mutable next : int;            (* next unclaimed chunk *)
  mutable active : int;          (* chunks currently executing *)
  mutable failed : exn option;   (* first exception, re-raised by caller *)
  mutable worker_chunks : int;   (* executed by worker domains *)
}

type pool = {
  m : Mutex.t;
  work : Condition.t;            (* signalled when a job is published *)
  idle : Condition.t;            (* signalled when the last chunk finishes *)
  mutable current : job option;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Oversubscription guard: running more concurrent chunk executors than
   hardware threads buys nothing and costs real time (every minor GC must
   synchronize all running domains). Workers only claim while fewer than
   [max_active] executors (caller included) are busy; the floor of 2
   keeps the cross-domain path exercised even on single-core machines.
   The caller always participates, so a capped job still completes. *)
let max_active = max 2 (Domain.recommended_domain_count ())

(* Runs with [p.m] held; releases it only around chunk execution. *)
let rec worker_step p =
  if p.stop then ()
  else
    match p.current with
    | Some j when j.next < j.total && j.active < max_active ->
      let i = j.next in
      j.next <- j.next + 1;
      j.active <- j.active + 1;
      Mutex.unlock p.m;
      let err = (try j.run i; None with e -> Some e) in
      Mutex.lock p.m;
      (match err with
       | Some e ->
         if j.failed = None then j.failed <- Some e;
         j.next <- j.total (* drain: stop handing out chunks *)
       | None -> ());
      j.active <- j.active - 1;
      j.worker_chunks <- j.worker_chunks + 1;
      if j.next >= j.total && j.active = 0 then Condition.broadcast p.idle;
      worker_step p
    | _ ->
      Condition.wait p.work p.m;
      worker_step p

let worker p () =
  (* Register this domain's trace recorder up front so spans opened inside
     chunk bodies land in a per-domain buffer and surface in the merged
     export (Perfetto) under this domain's tid. *)
  Obs.Trace.register_domain ();
  Domain.DLS.get busy_key := true;
  Mutex.lock p.m;
  worker_step p;
  Mutex.unlock p.m

(* Global pool, (re)spawned lazily at the configured size. *)
let glock = Mutex.create ()
let jobs_ref = ref (default_jobs ())
let pool_ref : pool option ref = ref None

let jobs () = !jobs_ref

let shutdown_pool p =
  Mutex.lock p.m;
  (* Drain-then-join: a job may be in flight on another domain. Wait for
     its caller to retire it (it broadcasts [idle] after clearing
     [current]) before telling the workers to stop, so no chunk is ever
     abandoned half-executed. *)
  while p.current <> None do Condition.wait p.idle p.m done;
  p.stop <- true;
  Condition.broadcast p.work;
  Mutex.unlock p.m;
  List.iter Domain.join p.workers;
  p.workers <- []

let shutdown () =
  Mutex.protect glock (fun () ->
      match !pool_ref with
      | None -> ()
      | Some p ->
        pool_ref := None;
        shutdown_pool p)

let () = at_exit shutdown

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: jobs must be >= 1";
  shutdown ();
  Mutex.protect glock (fun () -> jobs_ref := n);
  Obs.Metrics.gauge "parallel.jobs" (float_of_int n)

let ensure_pool () =
  Mutex.protect glock (fun () ->
      match !pool_ref with
      | Some p -> p
      | None ->
        let p =
          { m = Mutex.create (); work = Condition.create ();
            idle = Condition.create (); current = None; stop = false;
            workers = [] }
        in
        p.workers <-
          List.init (!jobs_ref - 1) (fun _ -> Domain.spawn (worker p));
        pool_ref := Some p;
        p)

let run_inline ~chunks f = for i = 0 to chunks - 1 do f i done

let run_pooled p ~chunks f =
  let busy = Domain.DLS.get busy_key in
  busy := true;
  let j =
    { run = f; total = chunks; next = 0; active = 0; failed = None;
      worker_chunks = 0 }
  in
  Mutex.lock p.m;
  p.current <- Some j;
  Condition.broadcast p.work;
  (* the caller participates instead of blocking idle *)
  let rec drive () =
    if j.next < j.total then begin
      let i = j.next in
      j.next <- j.next + 1;
      j.active <- j.active + 1;
      Mutex.unlock p.m;
      let err = (try f i; None with e -> Some e) in
      Mutex.lock p.m;
      (match err with
       | Some e ->
         if j.failed = None then j.failed <- Some e;
         j.next <- j.total
       | None -> ());
      j.active <- j.active - 1;
      drive ()
    end
  in
  drive ();
  while j.active > 0 do Condition.wait p.idle p.m done;
  p.current <- None;
  (* wake any shutdown waiting for the in-flight job to retire *)
  Condition.broadcast p.idle;
  Mutex.unlock p.m;
  busy := false;
  Obs.Metrics.count "parallel.invocations";
  let share = float_of_int j.worker_chunks /. float_of_int chunks in
  Obs.Metrics.gauge "parallel.pool.utilization" share;
  Obs.Metrics.observe "parallel.pool.utilization.samples" share;
  match j.failed with Some e -> raise e | None -> ()

let parallel_for ~chunks f =
  if chunks > 0 then begin
    (* fault hook: the first chunk that consumes an armed [Kill_worker]
       dies with a structured error, exercising the containment path
       below (first-exception capture, drain, re-raise in the caller) *)
    let f i =
      if Robust.Faults.consume Robust.Faults.Kill_worker then
        Robust.Error.raise_
          (Robust.Error.Worker_failed
             { detail = Printf.sprintf "injected: kill_worker (chunk %d)" i });
      f i
    in
    let busy = Domain.DLS.get busy_key in
    if !busy || !jobs_ref <= 1 || chunks = 1 then run_inline ~chunks f
    else run_pooled (ensure_pool ()) ~chunks f
  end

let map_array ~f a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for ~chunks:n (fun i -> results.(i) <- Some (f a.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ~f l = Array.to_list (map_array ~f (Array.of_list l))

let with_pool ?jobs f =
  (match jobs with Some n -> set_jobs n | None -> ());
  Fun.protect ~finally:shutdown f
