(** A dependency-free domain pool with deterministic chunking.

    One process-global pool (OCaml 5 [Domain]s coordinated with
    [Mutex]/[Condition]) executes indexed chunks of work. Chunk boundaries
    are chosen by the caller and never depend on the worker count, and
    every reduction in this codebase combines per-chunk partials in chunk
    order — so results are bit-identical whatever [jobs] is set to,
    including the inline [jobs = 1] path. That invariant is what lets the
    solver and the sweep runners advertise "parallel output equals
    sequential output" as a testable property.

    Nested calls (a [parallel_for] issued from inside a chunk, e.g. a CG
    solve running under a parallel candidate sweep) degrade to inline
    sequential execution instead of deadlocking on the shared pool.

    Telemetry: [set_jobs] records the [parallel.jobs] gauge; every pooled
    invocation bumps [parallel.invocations] and updates the
    [parallel.pool.utilization] gauge (share of chunks executed by worker
    domains rather than the caller) plus a same-named histogram. Each
    worker domain registers an [Obs.Trace] recorder on spawn, so trace
    spans opened inside chunk bodies appear in the merged export under
    the worker's own tid. *)

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]: leave one core for
    the orchestrating domain, never below 1. *)

val set_jobs : int -> unit
(** Set the number of concurrent executors (caller + [n - 1] worker
    domains). [1] disables the pool; workers of a previously sized pool
    are joined before the new size takes effect. Raises
    [Invalid_argument] when [n < 1].

    Requesting more executors than the machine has hardware threads does
    not oversubscribe: workers only claim work while fewer than
    [max 2 (Domain.recommended_domain_count ())] executors are running,
    because extra runnable domains slow every minor GC down without
    adding throughput. The floor of 2 keeps cross-domain execution (and
    its tests) live on single-core machines. *)

val jobs : unit -> int
(** Current setting; initially {!default_jobs}[ ()]. *)

val parallel_for : chunks:int -> (int -> unit) -> unit
(** [parallel_for ~chunks f] runs [f 0 .. f (chunks - 1)], each exactly
    once, on the caller plus the worker domains. The assignment of chunks
    to domains is dynamic but chunk indices (and therefore any
    caller-visible chunk decomposition) are fixed. Chunks must write to
    disjoint state. If some [f i] raises, remaining chunks are drained and
    the first exception is re-raised in the caller once in-flight chunks
    finish — the pool itself stays healthy and accepts later jobs.

    Fault injection: an armed {!Robust.Faults.Kill_worker} makes the
    next chunk raise [Robust.Error.Error (Worker_failed _)], which takes
    exactly that containment path. *)

val map_array : f:('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map, one chunk per element (use for
    coarse-grained work such as candidate evaluations). *)

val map_list : f:('a -> 'b) -> 'a list -> 'b list
(** List version of {!map_array}. *)

val shutdown : unit -> unit
(** Join all worker domains (idempotent; also registered [at_exit]). Safe
    to call from another domain while a job is in flight: the in-flight
    job is drained to completion first, then the workers are told to stop
    and joined (drain-then-join) — no chunk is ever abandoned. The next
    pooled call respawns the workers. *)

val with_pool : ?jobs:int -> (unit -> 'a) -> 'a
(** [with_pool ?jobs f] runs [f ()] and guarantees {!shutdown} on every
    exit path (normal return or exception), so long-running callers such
    as [thermoplace serve] cannot leak worker domains. When [jobs] is
    given the pool is resized first (as by {!set_jobs}). *)
