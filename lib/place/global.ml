module T = Netlist.Types

type positions = (float * float) array

let cell_area tech cid nl =
  Celllib.Info.area_um2 tech (T.cell nl cid).T.kind

(* Scatter a handful of cells uniformly over a leaf rectangle in reading
   order; exact coordinates are irrelevant because legalization re-snaps. *)
let place_leaf positions (cells : T.cell_id array) (rect : Geo.Rect.t) =
  let n = Array.length cells in
  if n > 0 then begin
    let cols = int_of_float (Float.ceil (sqrt (float_of_int n))) in
    let rows = ((n + cols - 1) / cols) in
    Array.iteri
      (fun i cid ->
         let cx = i mod cols and cy = i / cols in
         let fx = (float_of_int cx +. 0.5) /. float_of_int cols in
         let fy = (float_of_int cy +. 0.5) /. float_of_int rows in
         positions.(cid) <-
           (rect.Geo.Rect.lx +. (fx *. Geo.Rect.width rect),
            rect.Geo.Rect.ly +. (fy *. Geo.Rect.height rect)))
      cells
  end

let place nl tech ~regions ~cells_of_region ?(leaf_cells = 8) rng =
  Obs.Trace.with_span "place.global" @@ fun () ->
  let positions = Array.make (T.num_cells nl) (Float.nan, Float.nan) in
  let rec bisect (cells : T.cell_id array) (rect : Geo.Rect.t) =
    if Array.length cells <= leaf_cells then place_leaf positions cells rect
    else begin
      let areas = Array.map (fun cid -> cell_area tech cid nl) cells in
      let total = Array.fold_left ( +. ) 0.0 areas in
      let max_cell = Array.fold_left Float.max 0.0 areas in
      let result =
        Partition.bipartition nl ~cells ~areas ~target_a:0.5
          ~tolerance:(Float.max max_cell (0.05 *. total)) rng
      in
      let frac =
        if total > 0.0 then Float.max 0.1 (Float.min 0.9 (result.Partition.area_a /. total))
        else 0.5
      in
      let part p = (* cells on side A when p = false *)
        let keep = ref [] in
        Array.iteri
          (fun i cid -> if result.Partition.side.(i) = p then keep := cid :: !keep)
          cells;
        Array.of_list (List.rev !keep)
      in
      let a_cells = part false and b_cells = part true in
      let vertical = Geo.Rect.width rect >= Geo.Rect.height rect in
      let a_rect, b_rect =
        if vertical then begin
          let split = rect.Geo.Rect.lx +. (frac *. Geo.Rect.width rect) in
          (Geo.Rect.make ~lx:rect.Geo.Rect.lx ~ly:rect.Geo.Rect.ly
             ~hx:split ~hy:rect.Geo.Rect.hy,
           Geo.Rect.make ~lx:split ~ly:rect.Geo.Rect.ly
             ~hx:rect.Geo.Rect.hx ~hy:rect.Geo.Rect.hy)
        end else begin
          let split = rect.Geo.Rect.ly +. (frac *. Geo.Rect.height rect) in
          (Geo.Rect.make ~lx:rect.Geo.Rect.lx ~ly:rect.Geo.Rect.ly
             ~hx:rect.Geo.Rect.hx ~hy:split,
           Geo.Rect.make ~lx:rect.Geo.Rect.lx ~ly:split
             ~hx:rect.Geo.Rect.hx ~hy:rect.Geo.Rect.hy)
        end
      in
      bisect a_cells a_rect;
      bisect b_cells b_rect
    end
  in
  Array.iter
    (fun r -> bisect (cells_of_region r.Regions.tag) r.Regions.rect)
    regions;
  positions

let scaled positions ~from_core ~to_core =
  let sx = Geo.Rect.width to_core /. Geo.Rect.width from_core in
  let sy = Geo.Rect.height to_core /. Geo.Rect.height from_core in
  Array.map
    (fun (x, y) ->
       if Float.is_nan x then (x, y)
       else
         (to_core.Geo.Rect.lx +. ((x -. from_core.Geo.Rect.lx) *. sx),
          to_core.Geo.Rect.ly +. ((y -. from_core.Geo.Rect.ly) *. sy)))
    positions
