module T = Netlist.Types

exception Region_overflow of int

let width_sites nl cid =
  (Celllib.Info.get (T.cell nl cid).T.kind).Celllib.Info.width_sites

(* Deal [cells] (already sorted) into rows [row_lo..row_hi] within site span
   [site_lo..site_hi]: rows receive cells by cumulative width so that every
   row carries about the same occupancy; within a row, gaps are spread
   evenly by fractional accumulation. *)
let pack nl ~tag ~cells ~row_lo ~row_hi ~site_lo ~site_hi ~assign =
  let nrows = row_hi - row_lo + 1 in
  let capacity = site_hi - site_lo + 1 in
  let widths = Array.map (width_sites nl) cells in
  let total = Array.fold_left ( + ) 0 widths in
  if total > nrows * capacity then raise (Region_overflow tag);
  let n = Array.length cells in
  let target_per_row =
    float_of_int total /. float_of_int nrows
  in
  (* split indices: row r gets cells while cumulative width < (r+1)*target *)
  let row_of = Array.make n 0 in
  let cum = ref 0 in
  let row = ref 0 in
  let row_used = Array.make nrows 0 in
  for i = 0 to n - 1 do
    let threshold = target_per_row *. float_of_int (!row + 1) in
    if float_of_int (!cum + (widths.(i) / 2)) > threshold
       && !row < nrows - 1
    then incr row;
    (* never overfill a row *)
    while row_used.(!row) + widths.(i) > capacity && !row < nrows - 1 do
      incr row
    done;
    if row_used.(!row) + widths.(i) > capacity then raise (Region_overflow tag);
    row_of.(i) <- !row;
    row_used.(!row) <- row_used.(!row) + widths.(i);
    cum := !cum + widths.(i)
  done;
  (* per row: even gap distribution *)
  let start = ref 0 in
  for r = 0 to nrows - 1 do
    (* find the slice of cells in this row *)
    let stop = ref !start in
    while !stop < n && row_of.(!stop) = r do incr stop done;
    let k = !stop - !start in
    if k > 0 then begin
      let used = row_used.(r) in
      let free = capacity - used in
      let cursor = ref site_lo in
      for j = 0 to k - 1 do
        let gap =
          (free * (j + 1) / (k + 1)) - (free * j / (k + 1))
        in
        cursor := !cursor + gap;
        let i = !start + j in
        assign cells.(i) { Placement.row = row_lo + r; site = !cursor };
        cursor := !cursor + widths.(i)
      done
    end;
    start := !stop
  done

let sort_cells_by nl cells key =
  let arr = Array.copy cells in
  let ws = width_sites nl in
  Array.sort
    (fun a b ->
       let ya, xa = (fun (x, y) -> (y, x)) (key a) in
       let yb, xb = (fun (x, y) -> (y, x)) (key b) in
       let c = compare ya yb in
       if c <> 0 then c
       else begin
         let c = compare xa xb in
         if c <> 0 then c else compare (ws a) (ws b)
       end)
    arr;
  arr

(* Legalization quality: how far cells moved from their global-placement
   targets, recorded as mean/max over the cells that had a target. *)
let record_displacement pl ~positions =
  if Obs.Metrics.enabled () then begin
    let n = ref 0 and sum = ref 0.0 and worst = ref 0.0 in
    Array.iteri
      (fun cid (gx, gy) ->
         if not (Float.is_nan gx) then begin
           let x, y = Placement.cell_center pl cid in
           let d = Float.hypot (x -. gx) (y -. gy) in
           incr n;
           sum := !sum +. d;
           if d > !worst then worst := d
         end)
      positions;
    if !n > 0 then begin
      Obs.Metrics.observe "place.legalize.mean_displacement_um"
        (!sum /. float_of_int !n);
      Obs.Metrics.observe "place.legalize.max_displacement_um" !worst
    end
  end

let run nl fp ~regions ~cells_of_region ~positions =
  Obs.Trace.with_span "place.legalize" @@ fun () ->
  let locs =
    Array.make (T.num_cells nl) { Placement.row = 0; site = 0 }
  in
  Array.iter
    (fun r ->
       let cells = cells_of_region r.Regions.tag in
       let key cid = positions.(cid) in
       let sorted = sort_cells_by nl cells key in
       pack nl ~tag:r.Regions.tag ~cells:sorted
         ~row_lo:r.Regions.row_lo ~row_hi:r.Regions.row_hi
         ~site_lo:r.Regions.site_lo ~site_hi:r.Regions.site_hi
         ~assign:(fun cid loc -> locs.(cid) <- loc))
    regions;
  let pl = Placement.make nl fp locs in
  record_displacement pl ~positions;
  pl

let legalize_region_rows pl ~cells ~order_key ~row_lo ~row_hi ~site_lo
    ~site_hi =
  let nl = pl.Placement.nl in
  let locs = Array.copy pl.Placement.locs in
  let sorted = sort_cells_by nl cells order_key in
  pack nl ~tag:(-1) ~cells:sorted ~row_lo ~row_hi ~site_lo ~site_hi
    ~assign:(fun cid loc -> locs.(cid) <- loc);
  locs
