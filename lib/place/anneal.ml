module T = Netlist.Types

type config = {
  initial_temp_um : float;
  cooling : float;
  moves_per_round : int;
  rounds : int;
}

let default_config =
  { initial_temp_um = 50.0; cooling = 0.85; moves_per_round = 2000;
    rounds = 20 }

type stats = {
  attempted : int;
  accepted : int;
  uphill_accepted : int;
  hpwl_before_um : float;
  hpwl_after_um : float;
}

let nets_of_cell nl cid =
  let c = T.cell nl cid in
  c.T.output :: Array.to_list c.T.inputs |> List.sort_uniq compare

(* A swap of two cells in the same row keeping the pair's span; valid when
   both fit, i.e. when widths are equal or the sites between them allow the
   realignment without touching neighbours. We only generate swaps between
   cells that are horizontally adjacent in their row, where span
   preservation is always safe. *)

let optimize ?(config = default_config) pl rng =
  Obs.Trace.with_span "place.anneal" @@ fun () ->
  let nl = pl.Placement.nl in
  let locs = Array.copy pl.Placement.locs in
  let current = Placement.make nl pl.Placement.fp locs in
  let hpwl_before_um = Placement.hpwl current in
  let n_cells = T.num_cells nl in
  (* per-row ordered members, maintained incrementally as arrays *)
  let rows = ref (Placement.row_members current) in
  let refresh_rows () = rows := Placement.row_members current in
  let hpwl_of nets =
    List.fold_left (fun acc nid -> acc +. Placement.net_hpwl current nid)
      0.0 nets
  in
  let attempted = ref 0 and accepted = ref 0 and uphill = ref 0 in
  (* best-seen tracking: the running total is maintained from deltas, and
     the best configuration is snapshotted so the result is never worse
     than the input even if the walk ends warm *)
  let running_total = ref hpwl_before_um in
  let best_total = ref hpwl_before_um in
  let best_locs = ref (Array.copy locs) in
  let note_acceptance delta =
    running_total := !running_total +. delta;
    if !running_total < !best_total then begin
      best_total := !running_total;
      best_locs := Array.copy locs
    end
  in
  let temp = ref config.initial_temp_um in
  let metropolis delta =
    delta < 0.0
    || (!temp > 0.0 && Geo.Rng.float rng 1.0 < exp (-.delta /. !temp))
  in
  (* move 1: swap a random cell with its right neighbour in the row *)
  let try_swap () =
    let cid = Geo.Rng.int rng n_cells in
    let row = locs.(cid).Placement.row in
    let members = (!rows).(row) in
    let rec right_of = function
      | a :: b :: _ when a = cid -> Some b
      | _ :: rest -> right_of rest
      | [] -> None
    in
    match right_of members with
    | None -> false
    | Some nb ->
      let affected =
        List.sort_uniq compare (nets_of_cell nl cid @ nets_of_cell nl nb)
      in
      let before = hpwl_of affected in
      let wa = Placement.width_sites current cid in
      let wb = Placement.width_sites current nb in
      let sa = locs.(cid).Placement.site in
      let sb = locs.(nb).Placement.site in
      let old_a = locs.(cid) and old_b = locs.(nb) in
      locs.(cid) <- { old_a with Placement.site = sb + wb - wa };
      locs.(nb) <- { old_b with Placement.site = sa };
      let delta = hpwl_of affected -. before in
      if metropolis delta then begin
        incr accepted;
        if delta > 0.0 then incr uphill;
        note_acceptance delta;
        refresh_rows ();
        true
      end else begin
        locs.(cid) <- old_a;
        locs.(nb) <- old_b;
        false
      end
  in
  (* move 2: relocate a cell into a random free gap of a nearby row *)
  let try_relocate () =
    let cid = Geo.Rng.int rng n_cells in
    let w = Placement.width_sites current cid in
    let fp = current.Placement.fp in
    let target_row =
      let r = locs.(cid).Placement.row + Geo.Rng.int rng 5 - 2 in
      max 0 (min (fp.Floorplan.num_rows - 1) r)
    in
    (* find gaps in the target row *)
    let members = (!rows).(target_row) in
    let gaps = ref [] in
    let cursor = ref 0 in
    List.iter
      (fun other ->
         if other <> cid then begin
           let s = locs.(other).Placement.site in
           if s - !cursor >= w then gaps := (!cursor, s - !cursor) :: !gaps;
           cursor := s + Placement.width_sites current other
         end)
      members;
    if fp.Floorplan.sites_per_row - !cursor >= w then
      gaps := (!cursor, fp.Floorplan.sites_per_row - !cursor) :: !gaps;
    match !gaps with
    | [] -> false
    | gaps ->
      let gap_site, gap_w = List.nth gaps (Geo.Rng.int rng (List.length gaps)) in
      let site = gap_site + Geo.Rng.int rng (gap_w - w + 1) in
      let affected = nets_of_cell nl cid in
      let before = hpwl_of affected in
      let old = locs.(cid) in
      locs.(cid) <- { Placement.row = target_row; site };
      let delta = hpwl_of affected -. before in
      if metropolis delta then begin
        incr accepted;
        if delta > 0.0 then incr uphill;
        note_acceptance delta;
        refresh_rows ();
        true
      end else begin
        locs.(cid) <- old;
        false
      end
  in
  for _round = 1 to config.rounds do
    for _move = 1 to config.moves_per_round do
      incr attempted;
      let _ = if Geo.Rng.bool rng then try_swap () else try_relocate () in
      ()
    done;
    temp := !temp *. config.cooling
  done;
  (* restore the best-seen configuration *)
  Array.blit !best_locs 0 locs 0 (Array.length locs);
  let stats =
    { attempted = !attempted; accepted = !accepted;
      uphill_accepted = !uphill; hpwl_before_um;
      hpwl_after_um = Placement.hpwl current }
  in
  Obs.Metrics.count "place.anneal.moves" ~by:stats.attempted;
  Obs.Metrics.count "place.anneal.accepts" ~by:stats.accepted;
  Obs.Metrics.count "place.anneal.uphill_accepts" ~by:stats.uphill_accepted;
  Obs.Metrics.observe "place.anneal.hpwl_before_um" stats.hpwl_before_um;
  Obs.Metrics.observe "place.anneal.hpwl_after_um" stats.hpwl_after_um;
  (current, stats)
