(** Fault-injection registry.

    Deep layers (the CG solver, the mesh matrix cache, the domain pool,
    the flow's power-map stage) carry guarded hooks that fire only when
    the corresponding fault is armed here — in production nothing is
    armed and every hook is a single relaxed [Atomic.get]. The test suite
    and the [scripts/check.sh] smoke arm faults (via {!arm} or the
    [THERMOPLACE_FAULTS] environment variable) and then prove that each
    injected fault is either recovered (escalation ladder, defensive
    cache rebuild) or surfaced as a structured {!Error.t} — never a
    silent wrong answer.

    Faults are armed with a count and consumed one shot at a time, so a
    single armed fault perturbs exactly one site; arming with a larger
    count defeats multi-attempt recovery (e.g. [Cg_stall] armed 4x fails
    every rung of the escalation ladder). *)

type fault =
  | Nan_power         (** corrupt the flow's power map with NaN tiles *)
  | Perturb_matrix
  (** assemble the mesh matrix with an asymmetric, dominance-breaking
      entry (bypassing the matrix cache so the poison cannot persist) *)
  | Cg_stall          (** force one [Cg.solve_raw] call to report
                          non-convergence without iterating *)
  | Kill_worker       (** raise {!Error.Worker_failed} inside a pool chunk *)
  | Stale_mesh_cache
  (** make one mesh-cache hit return a wrong-dimension entry, exercising
      the defensive dimension check on the hit path *)

val all : fault list

val to_string : fault -> string
(** Lower-snake name, e.g. ["cg_stall"] — the spelling used by
    [THERMOPLACE_FAULTS]. *)

val of_string : string -> fault option

val arm : ?times:int -> fault -> unit
(** Arm [fault] for [times] (default 1) additional firings.
    Raises [Invalid_argument] when [times < 1]. *)

val armed : fault -> bool
(** Non-consuming peek: at least one firing remains. *)

val consume : fault -> bool
(** Fire once: [true] and decrement if armed, [false] otherwise. When
    nothing at all is armed this is one atomic load — safe on hot paths.
    Each firing bumps [robust.faults.injected] and
    [robust.faults.injected.<name>] in {!Obs.Metrics}. *)

val clear : unit -> unit
(** Disarm everything. *)

val with_fault : ?times:int -> fault -> (unit -> 'a) -> 'a
(** Arm, run, then disarm any remaining count of that fault (other
    faults are untouched). For tests. *)

val env_var : string
(** ["THERMOPLACE_FAULTS"]. *)

val parse_spec : string -> ((fault * int) list, string) result
(** Parse a spec like ["cg_stall:4,nan_power"] — comma-separated fault
    names, each optionally [:count]. The empty string parses to []. *)

val init_from_env : unit -> (unit, string) result
(** Arm every fault named in [$THERMOPLACE_FAULTS] (no-op when unset).
    [Error] describes a malformed spec. *)
