type check = {
  name : string;
  run : unit -> (unit, string) result;
}

let make name run = { name; run }

type outcome = {
  check_name : string;
  failure : string option;
}

let run_one c =
  Obs.Metrics.count "robust.validate.checks";
  match c.run () with
  | Ok () -> None
  | Error detail ->
    Obs.Metrics.count "robust.validate.failures";
    Obs.Log.warn
      (Printf.sprintf "invariant check %s failed: %s" c.name detail);
    Some detail

let run_all checks =
  List.map (fun c -> { check_name = c.name; failure = run_one c }) checks

let rec first_failure = function
  | [] -> Ok ()
  | c :: rest ->
    (match run_one c with
     | None -> first_failure rest
     | Some detail ->
       Error (Error.Invariant_violation { check = c.name; detail }))

let scan ~what a ~bad ~describe =
  let n = Array.length a in
  let rec go i =
    if i >= n then Ok ()
    else if bad a.(i) then
      Error (Printf.sprintf "%s[%d] = %g %s" what i a.(i) describe)
    else go (i + 1)
  in
  go 0

let all_finite ~what a =
  scan ~what a
    ~bad:(fun v -> not (Float.is_finite v))
    ~describe:"(must be finite)"

let non_negative ?(eps = 0.0) ~what a =
  scan ~what a
    ~bad:(fun v -> not (Float.is_finite v) || v < -.eps)
    ~describe:"(must be finite and non-negative)"

let within ~what ~lo ~hi a =
  scan ~what a
    ~bad:(fun v -> not (Float.is_finite v) || v < lo || v > hi)
    ~describe:(Printf.sprintf "(must lie in [%g, %g])" lo hi)
