(* Cooperative cancellation: a single process-global request slot read at
   well-known checkpoints on the hot paths (Flow evaluation, optimizer
   candidate loops). OCaml domains cannot be killed from outside, so a
   watchdog that wants to abort an overrunning job stores the structured
   error here and the job raises it at its next checkpoint — inside a
   pooled chunk that takes the pool's normal first-exception containment
   path, so the pool itself survives the cancellation. *)

let slot : Error.t option Atomic.t = Atomic.make None

let request e = Atomic.set slot (Some e)

let clear () = Atomic.set slot None

let pending () = Atomic.get slot

let check () =
  match Atomic.get slot with
  | None -> ()
  | Some e -> Error.raise_ e
