let schema_version = 1

let kind = "thermoplace-checkpoint"

let save ~path ~key ~entries =
  let json =
    Obs.Json.Obj
      [ ("schema_version", Obs.Json.Int schema_version);
        ("kind", Obs.Json.String kind);
        ("key", Obs.Json.String key);
        ("entries",
         Obs.Json.List
           (List.map
              (fun (i, v) ->
                 Obs.Json.Obj
                   [ ("index", Obs.Json.Int i); ("value", v) ])
              entries)) ]
  in
  Obs.Report.write_string_atomic path
    (Obs.Json.to_string ~pretty:true json ^ "\n");
  Obs.Metrics.count "robust.checkpoint.saves"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corrupt path detail = Error.Checkpoint_corrupt { path; detail }

let load ~path ~key =
  if not (Sys.file_exists path) then Ok []
  else begin
    let text =
      try Ok (read_file path)
      with Sys_error msg -> Error (corrupt path ("unreadable: " ^ msg))
    in
    match text with
    | Error _ as e -> e
    | Ok text ->
      (match Obs.Json.of_string text with
       | Error msg -> Error (corrupt path ("invalid JSON: " ^ msg))
       | Ok json ->
         let member_int k = Option.bind (Obs.Json.member k json) Obs.Json.to_int in
         let member_str k =
           Option.bind (Obs.Json.member k json) Obs.Json.to_string_opt
         in
         if member_int "schema_version" <> Some schema_version then
           Error (corrupt path "missing or unsupported schema_version")
         else if member_str "kind" <> Some kind then
           Error (corrupt path "not a thermoplace checkpoint")
         else begin
           match member_str "key" with
           | None -> Error (corrupt path "missing key")
           | Some k when k <> key ->
             Error
               (corrupt path
                  (Printf.sprintf
                     "config fingerprint mismatch (checkpoint %S, sweep %S)"
                     k key))
           | Some _ ->
             (match
                Option.bind (Obs.Json.member "entries" json) Obs.Json.to_list
              with
              | None -> Error (corrupt path "missing entries")
              | Some items ->
                let decode item =
                  match
                    Option.bind (Obs.Json.member "index" item)
                      Obs.Json.to_int,
                    Obs.Json.member "value" item
                  with
                  | Some i, Some v -> Some (i, v)
                  | _ -> None
                in
                let rec go acc = function
                  | [] ->
                    Obs.Metrics.count "robust.checkpoint.loads";
                    Ok (List.rev acc)
                  | item :: rest ->
                    (match decode item with
                     | Some e -> go (e :: acc) rest
                     | None -> Error (corrupt path "malformed entry"))
                in
                go [] items)
         end)
  end
