(** Structured errors for the resilient flow.

    Every recoverable failure mode of the pipeline is a constructor of
    {!t}; flow boundaries return [(_, t) result] (or raise the single
    carrier exception {!Error}) instead of bare [Failure _], so callers —
    the CLI in particular — can distinguish "the solver gave up" from "the
    design violates an invariant" and map each class to a stable process
    exit code. The cardinal rule of the subsystem: detect, recover or fail
    loudly — never return a silently wrong answer. *)

type t =
  | Solver_diverged of {
      residual : float;     (** best relative residual over all rungs *)
      iterations : int;     (** iterations of the best attempt *)
      rungs : string list;  (** escalation rungs attempted, in order *)
    }
  (** Every rung of the CG escalation ladder failed; the temperature
      field is untrustworthy and must not steer placement decisions. *)
  | Invariant_violation of {
      check : string;   (** dotted check name, e.g. ["power.finite_nonneg"] *)
      detail : string;
    }
  (** A cheap between-stage invariant check failed (illegal placement,
      negative or NaN power, non-SPD mesh matrix, unphysical field). *)
  | Worker_failed of { detail : string }
  (** A pool worker died mid-chunk (today only via fault injection; the
      pool contains the failure and re-raises it in the caller). *)
  | Checkpoint_corrupt of {
      path : string;
      detail : string;
    }
  (** A sweep checkpoint failed to parse, has the wrong schema, carries a
      mismatched config fingerprint, or holds an undecodable entry. *)
  | Queue_full of {
      job_id : string;   (** rejected request id (or a synthetic one) *)
      depth : int;       (** queue depth at the rejection *)
      capacity : int;    (** configured queue capacity *)
    }
  (** The serve job queue was at capacity; the request was rejected with
      backpressure instead of being buffered without bound. *)
  | Deadline_exceeded of {
      job_id : string;
      elapsed_ms : float;   (** wall clock burned when the watchdog fired *)
      deadline_ms : float;  (** the job's configured deadline *)
    }
  (** The per-job watchdog cancelled an attempt that overran its
      deadline; the pool stays healthy and keeps serving other jobs. *)

exception Error of t
(** The single carrier exception for code that cannot return [result]. *)

val raise_ : t -> 'a
(** [raise_ e] raises [Error e]. *)

val to_string : t -> string
(** One-line human-readable rendering, e.g.
    ["solver diverged after rungs requested,jacobi,ssor,restart \
      (residual 3.1e-02, 5760 iters)"]. *)

val to_json : t -> Obs.Json.t
(** [{"error": <class>, ...fields}] for run reports. *)

val exit_code : t -> int
(** Stable per-class process exit codes for the CLI (and the
    fault-injection smoke in [scripts/check.sh]):
    [Solver_diverged] 10, [Invariant_violation] 11, [Worker_failed] 12,
    [Checkpoint_corrupt] 13, [Queue_full] 14, [Deadline_exceeded] 15. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching {!Error} (only) into [Error _]. *)
