(** Cooperative cancellation points for long-running jobs.

    OCaml domains cannot be interrupted from outside, so deadline
    enforcement is cooperative: a watchdog calls {!request} with the
    structured error describing why the work must stop, and the hot paths
    ([Flow.evaluate_result], the optimizer's candidate loops) call
    {!check} — one atomic load when nothing is pending — which raises the
    stored error at the next checkpoint. When the raise happens inside a
    pooled chunk it takes {!Parallel.Pool.parallel_for}'s first-exception
    containment path, so cancelling a job never kills the pool.

    The slot is process-global and single-occupancy, matching the serve
    loop's one-job-at-a-time execution model. Callers that arm it must
    {!clear} it once the job settles, so a late watchdog firing cannot
    leak into the next job (the serve watchdog serializes {!request}
    against disarm-then-clear under its own mutex). *)

val request : Error.t -> unit
(** Ask the running job to abort with [e] at its next checkpoint. *)

val clear : unit -> unit
(** Drop any pending request (call between jobs/attempts). *)

val pending : unit -> Error.t option
(** The currently pending request, if any (does not raise). *)

val check : unit -> unit
(** Raise [Error.Error e] iff a request [e] is pending; a single atomic
    load otherwise. Sprinkled on paths that run at millisecond
    granularity. *)
