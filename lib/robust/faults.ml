type fault =
  | Nan_power
  | Perturb_matrix
  | Cg_stall
  | Kill_worker
  | Stale_mesh_cache

let all =
  [ Nan_power; Perturb_matrix; Cg_stall; Kill_worker; Stale_mesh_cache ]

let to_string = function
  | Nan_power -> "nan_power"
  | Perturb_matrix -> "perturb_matrix"
  | Cg_stall -> "cg_stall"
  | Kill_worker -> "kill_worker"
  | Stale_mesh_cache -> "stale_mesh_cache"

let of_string s = List.find_opt (fun f -> to_string f = s) all

(* [armed_total] is the lock-free fast path: hooks sit on hot numeric
   paths (every CG solve, every pool chunk) and must cost one atomic load
   when no fault is armed. The table itself is mutex-protected because
   pool workers consume from arbitrary domains. *)
let armed_total = Atomic.make 0
let m = Mutex.create ()
let tbl : (fault, int) Hashtbl.t = Hashtbl.create 8

let arm ?(times = 1) fault =
  if times < 1 then invalid_arg "Faults.arm: times must be >= 1";
  Mutex.protect m (fun () ->
      let cur = Option.value (Hashtbl.find_opt tbl fault) ~default:0 in
      Hashtbl.replace tbl fault (cur + times);
      Atomic.set armed_total (Atomic.get armed_total + times))

let armed fault =
  Atomic.get armed_total > 0
  && Mutex.protect m (fun () ->
      match Hashtbl.find_opt tbl fault with
      | Some n -> n > 0
      | None -> false)

let consume fault =
  Atomic.get armed_total > 0
  && Mutex.protect m (fun () ->
      match Hashtbl.find_opt tbl fault with
      | Some n when n > 0 ->
        Hashtbl.replace tbl fault (n - 1);
        Atomic.set armed_total (Atomic.get armed_total - 1);
        Obs.Metrics.count "robust.faults.injected";
        Obs.Metrics.count ("robust.faults.injected." ^ to_string fault);
        true
      | _ -> false)

let clear () =
  Mutex.protect m (fun () ->
      Hashtbl.reset tbl;
      Atomic.set armed_total 0)

let with_fault ?times fault f =
  arm ?times fault;
  Fun.protect
    ~finally:(fun () ->
        Mutex.protect m (fun () ->
            match Hashtbl.find_opt tbl fault with
            | Some n when n > 0 ->
              Hashtbl.remove tbl fault;
              Atomic.set armed_total (Atomic.get armed_total - n)
            | _ -> ()))
    f

let env_var = "THERMOPLACE_FAULTS"

let parse_spec spec =
  let parse_one part =
    match String.split_on_char ':' (String.trim part) with
    | [ name ] | [ name; "" ] ->
      (match of_string name with
       | Some f -> Ok (f, 1)
       | None -> Error (Printf.sprintf "unknown fault %S" name))
    | [ name; count ] ->
      (match of_string name, int_of_string_opt count with
       | Some f, Some n when n >= 1 -> Ok (f, n)
       | Some _, _ ->
         Error (Printf.sprintf "bad count %S for fault %S" count name)
       | None, _ -> Error (Printf.sprintf "unknown fault %S" name))
    | _ -> Error (Printf.sprintf "malformed fault spec %S" part)
  in
  let parts =
    List.filter
      (fun s -> String.trim s <> "")
      (String.split_on_char ',' spec)
  in
  List.fold_left
    (fun acc part ->
       match acc, parse_one part with
       | Error _, _ -> acc
       | _, Error e -> Error e
       | Ok l, Ok fc -> Ok (l @ [ fc ]))
    (Ok []) parts

let init_from_env () =
  match Sys.getenv_opt env_var with
  | None -> Ok ()
  | Some spec ->
    (match parse_spec spec with
     | Error msg -> Error (Printf.sprintf "%s: %s" env_var msg)
     | Ok faults ->
       List.iter (fun (f, times) -> arm ~times f) faults;
       Ok ())
