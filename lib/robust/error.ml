type t =
  | Solver_diverged of {
      residual : float;
      iterations : int;
      rungs : string list;
    }
  | Invariant_violation of { check : string; detail : string }
  | Worker_failed of { detail : string }
  | Checkpoint_corrupt of { path : string; detail : string }
  | Queue_full of { job_id : string; depth : int; capacity : int }
  | Deadline_exceeded of {
      job_id : string;
      elapsed_ms : float;
      deadline_ms : float;
    }

exception Error of t

let raise_ e = raise (Error e)

let to_string = function
  | Solver_diverged { residual; iterations; rungs } ->
    Printf.sprintf
      "solver diverged after rungs %s (residual %.3e, %d iters)"
      (String.concat "," rungs) residual iterations
  | Invariant_violation { check; detail } ->
    Printf.sprintf "invariant violation [%s]: %s" check detail
  | Worker_failed { detail } -> Printf.sprintf "worker failed: %s" detail
  | Checkpoint_corrupt { path; detail } ->
    Printf.sprintf "checkpoint corrupt [%s]: %s" path detail
  | Queue_full { job_id; depth; capacity } ->
    Printf.sprintf "queue full: job %s rejected (depth %d / capacity %d)"
      job_id depth capacity
  | Deadline_exceeded { job_id; elapsed_ms; deadline_ms } ->
    Printf.sprintf "deadline exceeded: job %s cancelled after %.1f ms (deadline %.1f ms)"
      job_id elapsed_ms deadline_ms

let to_json e =
  let open Obs.Json in
  match e with
  | Solver_diverged { residual; iterations; rungs } ->
    Obj
      [ ("error", String "solver_diverged");
        ("residual", Float residual);
        ("iterations", Int iterations);
        ("rungs", List (List.map (fun r -> String r) rungs)) ]
  | Invariant_violation { check; detail } ->
    Obj
      [ ("error", String "invariant_violation");
        ("check", String check);
        ("detail", String detail) ]
  | Worker_failed { detail } ->
    Obj [ ("error", String "worker_failed"); ("detail", String detail) ]
  | Checkpoint_corrupt { path; detail } ->
    Obj
      [ ("error", String "checkpoint_corrupt");
        ("path", String path);
        ("detail", String detail) ]
  | Queue_full { job_id; depth; capacity } ->
    Obj
      [ ("error", String "queue_full");
        ("job_id", String job_id);
        ("depth", Int depth);
        ("capacity", Int capacity) ]
  | Deadline_exceeded { job_id; elapsed_ms; deadline_ms } ->
    Obj
      [ ("error", String "deadline_exceeded");
        ("job_id", String job_id);
        ("elapsed_ms", Float elapsed_ms);
        ("deadline_ms", Float deadline_ms) ]

let exit_code = function
  | Solver_diverged _ -> 10
  | Invariant_violation _ -> 11
  | Worker_failed _ -> 12
  | Checkpoint_corrupt _ -> 13
  | Queue_full _ -> 14
  | Deadline_exceeded _ -> 15

let protect f = match f () with v -> Ok v | exception Error e -> Error e
