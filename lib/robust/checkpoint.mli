(** Atomic JSON checkpoints for resumable sweeps.

    A checkpoint holds the completed entries of an index-addressed sweep
    (fig6 / package sensitivity): each entry is the point's exact JSON
    encoding, written with {!Obs.Json}'s round-trip float representation
    so a resumed sweep reproduces stored points bit-identically. Writes
    go through [Obs.Report.write_string_atomic] (tmp file + rename), so
    a crash mid-save never leaves a truncated file — the previous
    complete checkpoint survives.

    The [key] is a config fingerprint chosen by the sweep (seed, grid,
    parameter list). {!load} refuses a checkpoint whose key differs:
    resuming a sweep under different parameters from stale points would
    be a silently wrong answer. *)

val schema_version : int

val save : path:string -> key:string -> entries:(int * Obs.Json.t) list ->
  unit
(** Atomically (re)write the checkpoint with all completed entries.
    Raises [Sys_error] on an unwritable path. *)

val load : path:string -> key:string ->
  ((int * Obs.Json.t) list, Error.t) result
(** [Ok []] when [path] does not exist (fresh sweep). [Error
    (Checkpoint_corrupt _)] on unparsable JSON, a wrong schema/kind, a
    key mismatch, or malformed entries. *)
