(** Cheap invariant checks runnable between flow stages.

    A {!check} is a named thunk returning [Ok ()] or a failure detail.
    Domain layers build checks over their own types (see
    [Postplace.Checks]); this module only runs them, records the
    outcomes in {!Obs.Metrics} ([robust.validate.checks] /
    [robust.validate.failures]) and converts the first failure into a
    structured {!Error.Invariant_violation}. Array helpers cover the
    recurring numeric invariants (finiteness, sign, bounds). *)

type check = {
  name : string;  (** dotted, e.g. ["power.finite_nonneg"] *)
  run : unit -> (unit, string) result;
}

val make : string -> (unit -> (unit, string) result) -> check

type outcome = {
  check_name : string;
  failure : string option;  (** [None] = passed *)
}

val run_all : check list -> outcome list
(** Run every check (failures do not short-circuit). *)

val first_failure : check list -> (unit, Error.t) result
(** Run checks in order; the first failing one becomes
    [Error (Invariant_violation _)] and later checks are skipped. *)

(** {1 Array helpers} — [what] names the quantity in the detail string. *)

val all_finite : what:string -> float array -> (unit, string) result

val non_negative : ?eps:float -> what:string -> float array ->
  (unit, string) result
(** Finite and [>= -eps] (default [eps = 0.]). *)

val within : what:string -> lo:float -> hi:float -> float array ->
  (unit, string) result
(** Finite and inside [[lo, hi]]. *)
