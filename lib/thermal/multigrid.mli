(** Geometric multigrid for the layered thermal mesh.

    The RC conductance system is solved on an [nx] x [ny] x [nz] grid whose
    lateral resolution grows with the die while the layer count stays fixed
    (the paper's stack has nine layers at every grid size). The hierarchy
    therefore coarsens the x-y surface grid only — full-weighting
    restriction and cell-centered bilinear prolongation act per layer, the
    z direction is never coarsened — with damped-Jacobi or SSOR smoothing
    on every level and a dense Cholesky solve on the coarsest one. Coarse
    operators are geometric rediscretizations of the same stack at halved
    lateral resolution (supplied by the caller through [assemble]), not
    Galerkin products, which keeps hierarchy construction O(n).

    One V-cycle with symmetric smoothing and restriction proportional to
    the prolongation transpose is a fixed symmetric positive-definite
    operator, so {!apply} is a valid CG preconditioner
    ([Cg.Multigrid]) as well as the step of the standalone {!solve}.

    A hierarchy is immutable after {!build} and may be shared freely
    across domains; all solve-time scratch lives in a per-call
    {!workspace}. *)

type smoother =
  | Damped_jacobi of float
  (** weighted point-Jacobi sweeps; the payload is the damping factor in
      (0, 1] (0.8 is the textbook choice for 7-point stencils) *)
  | Ssor of float
  (** symmetric SOR sweeps with omega in (0, 2); stronger than Jacobi on
      the mesh stencil and the default ([Ssor 1.0]) *)

type t
(** An immutable multigrid hierarchy. *)

val build :
  fine:Sparse.t ->
  nx:int -> ny:int -> nz:int ->
  ?smoother:smoother ->
  assemble:(nx:int -> ny:int -> Sparse.t) ->
  unit -> t
(** [build ~fine ~nx ~ny ~nz ~assemble ()] constructs the hierarchy for
    the SPD matrix [fine] of dimension [nx * ny * nz] (x-major per layer,
    as in [Mesh.node_index]). Lateral dimensions are halved (rounding up)
    until either drops to 4 or below; each coarser operator is
    [assemble ~nx ~ny] and the coarsest is factored with dense Cholesky.
    A 40 x 40 surface grid yields levels 40, 20, 10, 5, 3.

    Raises [Invalid_argument] on a dimension mismatch, a smoother
    parameter out of range, a non-positive diagonal entry on any level,
    or a degenerate hierarchy whose coarsest level is still too large to
    densify (> 4096 nodes); [Failure] if a level is not positive
    definite (from the Cholesky factorization).

    Records the level count in the [thermal.mg.levels] gauge. *)

val fine_dim : t -> int
(** Dimension of the finest-level system. *)

val num_levels : t -> int

type workspace
(** Mutable per-solve scratch (one set of vectors per level). Hierarchies
    are shared between concurrent solves; workspaces must not be. *)

val workspace : t -> workspace

val apply : t -> workspace -> float array -> float array -> unit
(** [apply t ws r z] runs one V(1,1)-cycle on [A z = r] from a zero
    initial guess and writes the result to [z] — the preconditioner
    application [z <- M^-1 r]. Every call bumps the [thermal.mg.cycles]
    counter; when {!Obs.Metrics} is enabled the pre-restriction residual
    norm of each level lands in the [thermal.mg.level<i>.residual]
    histograms. All kernels run on fixed chunk grids (SpMV) or
    sequentially, so results are bit-identical across pool sizes. *)

type outcome = {
  x : float array;
  cycles : int;
  residual : float;   (** final ||b - A x|| / ||b|| *)
  converged : bool;
}

val default_tol : float
(** 1e-10 relative, matching [Cg.default_tol]. *)

val solve : t -> b:float array -> ?tol:float -> ?max_cycles:int ->
  ?x0:float array -> unit -> outcome
(** Standalone V-cycle iteration: repeat [x <- x + M^-1 (b - A x)] until
    the relative residual drops below [tol] (default {!default_tol}) or
    [max_cycles] (default 200) cycles have run. The layered stack is
    strongly anisotropic (vertical conductances dwarf lateral ones) and
    the hierarchy coarsens x-y only, so the standalone iteration
    contracts slowly compared to its use as a CG preconditioner — the
    generous default absorbs that. Bumps [thermal.mg.solves]
    and records the cycle count in the [thermal.mg.solve.cycles]
    histogram. Runs under a ["thermal.mg.solve"] trace span. *)
