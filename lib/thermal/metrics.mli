(** Scalar figures of merit of a thermal map. *)

type t = {
  peak_rise_k : float;      (** maximum temperature rise over ambient *)
  mean_rise_k : float;
  min_rise_k : float;
  gradient_k : float;       (** max - min, the paper's temperature gradient *)
  hottest_tile : int * int; (** (ix, iy) of the peak *)
}

val of_map : Geo.Grid.t -> t

val reduction_pct : before:t -> after:t -> float
(** The paper's "temperature reduction": percentage drop of the peak rise.
    Positive = improvement. *)

val gradient_reduction_pct : before:t -> after:t -> float

val to_json : t -> Obs.Json.t
(** All five fields, for inclusion in {!Obs.Report} run reports. *)

val pp : Format.formatter -> t -> unit
