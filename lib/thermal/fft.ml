(* Split-array complex FFT. Two algorithms cover every length:

   - power-of-two lengths run the iterative radix-2 Cooley-Tukey with a
     precomputed bit-reversal permutation and a single table of the n/2
     roots e^{-2 pi i k / n} (each stage strides through it);
   - every other length runs Bluestein's chirp-z transform, which
     re-expresses the DFT as a circular convolution of length
     next_pow2(2n-1) and so reduces to three radix-2 transforms.

   Tables are memoized per length in mutex-protected registries: the
   convolution path in Blur calls these from pool workers, and the
   tables are immutable once published so a benign double-build under
   contention is safe. *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* --- memoized per-size tables ------------------------------------------- *)

type pow2_tables = {
  t_rev : int array;        (* bit-reversal permutation, length n *)
  t_cos : float array;      (* cos(-2 pi k / n), k < n/2 *)
  t_sin : float array;      (* sin(-2 pi k / n), k < n/2 *)
}

(* Bluestein data for length n: the chirp c_k = e^{-i pi k^2 / n} and the
   forward transform (length m = next_pow2(2n-1)) of the wrapped
   conjugate chirp b, with b_0 = 1, b_k = b_{m-k} = e^{+i pi k^2 / n}. *)
type bluestein_tables = {
  z_m : int;
  z_chirp_re : float array; (* length n *)
  z_chirp_im : float array;
  z_b_re : float array;     (* FFT(b), length m *)
  z_b_im : float array;
}

let tables_mutex = Mutex.create ()
let pow2_registry : (int, pow2_tables) Hashtbl.t = Hashtbl.create 8
let bluestein_registry : (int, bluestein_tables) Hashtbl.t = Hashtbl.create 8

let bit_reverse_table n =
  let bits =
    let rec go b p = if p >= n then b else go (b + 1) (p * 2) in
    go 0 1
  in
  Array.init n (fun i ->
      let r = ref 0 and v = ref i in
      for _ = 1 to bits do
        r := (!r lsl 1) lor (!v land 1);
        v := !v lsr 1
      done;
      !r)

let build_pow2 n =
  let half = n / 2 in
  let t_cos = Array.make (max half 1) 1.0 in
  let t_sin = Array.make (max half 1) 0.0 in
  for k = 0 to half - 1 do
    let a = -2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    t_cos.(k) <- cos a;
    t_sin.(k) <- sin a
  done;
  { t_rev = bit_reverse_table n; t_cos; t_sin }

let pow2_tables n =
  match
    Mutex.protect tables_mutex (fun () -> Hashtbl.find_opt pow2_registry n)
  with
  | Some t -> t
  | None ->
    (* build outside the lock (cheap, immutable); last write wins *)
    let t = build_pow2 n in
    Mutex.protect tables_mutex (fun () ->
        match Hashtbl.find_opt pow2_registry n with
        | Some t -> t
        | None -> Hashtbl.replace pow2_registry n t; t)

(* In-place radix-2 on a power-of-two length; the workhorse under both
   public entry points. *)
let fft_pow2 t ~re ~im =
  let n = Array.length re in
  let rev = t.t_rev in
  for i = 0 to n - 1 do
    let j = rev.(i) in
    if j > i then begin
      let tr = re.(i) in re.(i) <- re.(j); re.(j) <- tr;
      let ti = im.(i) in im.(i) <- im.(j); im.(j) <- ti
    end
  done;
  let len = ref 2 in
  while !len <= n do
    let half = !len / 2 in
    let stride = n / !len in
    let base = ref 0 in
    while !base < n do
      for k = 0 to half - 1 do
        let wr = t.t_cos.(k * stride) and wi = t.t_sin.(k * stride) in
        let i0 = !base + k and i1 = !base + k + half in
        let xr = re.(i1) and xi = im.(i1) in
        let tr = (wr *. xr) -. (wi *. xi) in
        let ti = (wr *. xi) +. (wi *. xr) in
        re.(i1) <- re.(i0) -. tr;
        im.(i1) <- im.(i0) -. ti;
        re.(i0) <- re.(i0) +. tr;
        im.(i0) <- im.(i0) +. ti
      done;
      base := !base + !len
    done;
    len := !len * 2
  done

(* The chirp phase is pi * k^2 / n; computing it as
   pi * ((k*k) mod 2n) / n keeps the argument of cos/sin small so the
   table stays accurate at large k (k^2 overflows double precision's
   exact-integer range long before k does modular arithmetic's). *)
let chirp_phase ~n k =
  let m2 = 2 * n in
  Float.pi *. float_of_int (k * k mod m2) /. float_of_int n

let build_bluestein n =
  let m = next_pow2 ((2 * n) - 1) in
  let z_chirp_re = Array.make n 0.0 in
  let z_chirp_im = Array.make n 0.0 in
  let z_b_re = Array.make m 0.0 in
  let z_b_im = Array.make m 0.0 in
  for k = 0 to n - 1 do
    let a = chirp_phase ~n k in
    (* forward chirp e^{-i a} *)
    z_chirp_re.(k) <- cos a;
    z_chirp_im.(k) <- -.sin a;
    (* wrapped conjugate chirp e^{+i a} at k and m-k *)
    z_b_re.(k) <- cos a;
    z_b_im.(k) <- sin a;
    if k > 0 then begin
      z_b_re.(m - k) <- cos a;
      z_b_im.(m - k) <- sin a
    end
  done;
  fft_pow2 (pow2_tables m) ~re:z_b_re ~im:z_b_im;
  { z_m = m; z_chirp_re; z_chirp_im; z_b_re; z_b_im }

let bluestein_tables n =
  match
    Mutex.protect tables_mutex (fun () ->
        Hashtbl.find_opt bluestein_registry n)
  with
  | Some t -> t
  | None ->
    let t = build_bluestein n in
    Mutex.protect tables_mutex (fun () ->
        match Hashtbl.find_opt bluestein_registry n with
        | Some t -> t
        | None -> Hashtbl.replace bluestein_registry n t; t)

let fft_bluestein z ~re ~im =
  let n = Array.length re in
  let m = z.z_m in
  let t = pow2_tables m in
  let ar = Array.make m 0.0 and ai = Array.make m 0.0 in
  for k = 0 to n - 1 do
    let cr = z.z_chirp_re.(k) and ci = z.z_chirp_im.(k) in
    ar.(k) <- (re.(k) *. cr) -. (im.(k) *. ci);
    ai.(k) <- (re.(k) *. ci) +. (im.(k) *. cr)
  done;
  fft_pow2 t ~re:ar ~im:ai;
  (* pointwise multiply by FFT(b) *)
  for k = 0 to m - 1 do
    let br = z.z_b_re.(k) and bi = z.z_b_im.(k) in
    let xr = ar.(k) and xi = ai.(k) in
    ar.(k) <- (xr *. br) -. (xi *. bi);
    ai.(k) <- (xr *. bi) +. (xi *. br)
  done;
  (* inverse length-m FFT via the conjugation trick *)
  for k = 0 to m - 1 do ai.(k) <- -.ai.(k) done;
  fft_pow2 t ~re:ar ~im:ai;
  let inv_m = 1.0 /. float_of_int m in
  for k = 0 to n - 1 do
    let xr = ar.(k) *. inv_m and xi = -.(ai.(k) *. inv_m) in
    let cr = z.z_chirp_re.(k) and ci = z.z_chirp_im.(k) in
    re.(k) <- (xr *. cr) -. (xi *. ci);
    im.(k) <- (xr *. ci) +. (xi *. cr)
  done

let check_args ~re ~im =
  let n = Array.length re in
  if n = 0 then invalid_arg "Fft: empty input";
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  n

let fft ~re ~im =
  let n = check_args ~re ~im in
  if n = 1 then ()
  else if is_pow2 n then begin
    Obs.Metrics.count "thermal.fft.radix2";
    fft_pow2 (pow2_tables n) ~re ~im
  end
  else begin
    Obs.Metrics.count "thermal.fft.bluestein";
    fft_bluestein (bluestein_tables n) ~re ~im
  end

let ifft ~re ~im =
  let n = check_args ~re ~im in
  for k = 0 to n - 1 do im.(k) <- -.im.(k) done;
  fft ~re ~im;
  let inv_n = 1.0 /. float_of_int n in
  for k = 0 to n - 1 do
    re.(k) <- re.(k) *. inv_n;
    im.(k) <- -.(im.(k) *. inv_n)
  done

(* --- 2-D transforms ------------------------------------------------------ *)

let transform2 tr1 ~nx ~ny ~re ~im =
  if nx <= 0 || ny <= 0 then invalid_arg "Fft: non-positive 2-D dims";
  if Array.length re <> nx * ny || Array.length im <> nx * ny then
    invalid_arg "Fft: 2-D array size mismatch";
  let row_re = Array.make nx 0.0 and row_im = Array.make nx 0.0 in
  for iy = 0 to ny - 1 do
    let off = iy * nx in
    Array.blit re off row_re 0 nx;
    Array.blit im off row_im 0 nx;
    tr1 ~re:row_re ~im:row_im;
    Array.blit row_re 0 re off nx;
    Array.blit row_im 0 im off nx
  done;
  let col_re = Array.make ny 0.0 and col_im = Array.make ny 0.0 in
  for ix = 0 to nx - 1 do
    for iy = 0 to ny - 1 do
      col_re.(iy) <- re.((iy * nx) + ix);
      col_im.(iy) <- im.((iy * nx) + ix)
    done;
    tr1 ~re:col_re ~im:col_im;
    for iy = 0 to ny - 1 do
      re.((iy * nx) + ix) <- col_re.(iy);
      im.((iy * nx) + ix) <- col_im.(iy)
    done
  done

let fft2 ~nx ~ny ~re ~im = transform2 fft ~nx ~ny ~re ~im
let ifft2 ~nx ~ny ~re ~im = transform2 ifft ~nx ~ny ~re ~im
