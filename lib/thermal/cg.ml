type outcome = {
  x : float array;
  iterations : int;
  residual : float;
  converged : bool;
}

type precond = Jacobi | Ssor of float

let default_tol = 1e-10

(* Vector ops are chunked on a fixed grid (independent of the pool size)
   and reductions combine per-chunk partials in chunk-index order, so a
   parallel solve is bit-identical to a sequential one: same partial sums,
   same combination order, same rounding. A chunk of a few thousand
   elements is microseconds of work — far below the pool handoff cost —
   so the chunk loop only goes to the pool for large systems; below the
   threshold it runs inline over the *same* grid, which keeps the
   arithmetic identical across the threshold as well. *)
let vec_chunk = 2048
let par_min_n = 200_000

let n_chunks n = (n + vec_chunk - 1) / vec_chunk

let for_chunks n f =
  if n >= par_min_n then Parallel.Pool.parallel_for ~chunks:(n_chunks n) f
  else for c = 0 to n_chunks n - 1 do f c done

let par_iter_chunks n f =
  for_chunks n (fun c ->
      let lo = c * vec_chunk in
      let hi = min n (lo + vec_chunk) - 1 in
      f lo hi)

(* [partials] is per-solve scratch of length [n_chunks n]. *)
let dot partials a b =
  let n = Array.length a in
  let chunks = n_chunks n in
  for_chunks n (fun c ->
      let lo = c * vec_chunk in
      let hi = min n (lo + vec_chunk) - 1 in
      let acc = ref 0.0 in
      for i = lo to hi do acc := !acc +. (a.(i) *. b.(i)) done;
      partials.(c) <- !acc);
  let acc = ref 0.0 in
  for c = 0 to chunks - 1 do acc := !acc +. partials.(c) done;
  !acc

(* Per-solve telemetry: iteration count and final residual feed histograms
   so sweeps can audit convergence after the fact, and a max-iter exit is
   never silent — it counts and warns (Mesh.solve additionally hard-fails). *)
let record outcome =
  Obs.Metrics.count "thermal.cg.solves";
  Obs.Metrics.observe "thermal.cg.iterations"
    (float_of_int outcome.iterations);
  Obs.Metrics.observe "thermal.cg.residual" outcome.residual;
  if not outcome.converged then begin
    Obs.Metrics.count "thermal.cg.nonconverged";
    Obs.Log.warn
      (Printf.sprintf
         "Cg.solve: max iterations reached without convergence (%d iters, \
          residual %.3e)"
         outcome.iterations outcome.residual)
  end;
  outcome

let solve_raw m ~b ~tol ?max_iter ?x0 ?(precond = Jacobi) () =
  let n = Sparse.dim m in
  if Array.length b <> n then invalid_arg "Cg.solve: rhs dimension mismatch";
  (match precond with
   | Jacobi -> ()
   | Ssor omega ->
     if omega <= 0.0 || omega >= 2.0 then
       invalid_arg "Cg.solve: SSOR omega must be in (0, 2)");
  let max_iter = match max_iter with Some k -> k | None -> 4 * n in
  let diag = Sparse.diagonal m in
  Array.iter
    (fun d -> if d <= 0.0 then
        invalid_arg "Cg.solve: non-positive diagonal entry")
    diag;
  let partials = Array.make (n_chunks n) 0.0 in
  let norm a = sqrt (dot partials a a) in
  let apply_precond r z =
    match precond with
    | Jacobi ->
      par_iter_chunks n (fun lo hi ->
          for i = lo to hi do z.(i) <- r.(i) /. diag.(i) done)
    | Ssor omega -> Sparse.ssor_apply m ~diag ~omega r z
  in
  let x = match x0 with
    | Some v ->
      if Array.length v <> n then invalid_arg "Cg.solve: x0 mismatch";
      Array.copy v
    | None -> Array.make n 0.0
  in
  let r = Array.make n 0.0 in
  Sparse.mul_par m x r;
  par_iter_chunks n (fun lo hi ->
      for i = lo to hi do r.(i) <- b.(i) -. r.(i) done);
  let bnorm = norm b in
  if bnorm = 0.0 then
    { x = Array.make n 0.0; iterations = 0; residual = 0.0; converged = true }
  else begin
    let z = Array.make n 0.0 in
    apply_precond r z;
    let p = Array.copy z in
    let ap = Array.make n 0.0 in
    let rz = ref (dot partials r z) in
    let iterations = ref 0 in
    let converged = ref (norm r /. bnorm <= tol) in
    while (not !converged) && !iterations < max_iter do
      incr iterations;
      Sparse.mul_par m p ap;
      let alpha = !rz /. dot partials p ap in
      par_iter_chunks n (fun lo hi ->
          for i = lo to hi do
            x.(i) <- x.(i) +. (alpha *. p.(i));
            r.(i) <- r.(i) -. (alpha *. ap.(i))
          done);
      if norm r /. bnorm <= tol then converged := true
      else begin
        apply_precond r z;
        let rz' = dot partials r z in
        let beta = rz' /. !rz in
        rz := rz';
        par_iter_chunks n (fun lo hi ->
            for i = lo to hi do p.(i) <- z.(i) +. (beta *. p.(i)) done)
      end
    done;
    (* true residual for the report *)
    Sparse.mul_par m x ap;
    let res = ref 0.0 in
    for i = 0 to n - 1 do
      let d = b.(i) -. ap.(i) in
      res := !res +. (d *. d)
    done;
    { x; iterations = !iterations; residual = sqrt !res /. bnorm;
      converged = !converged }
  end

let solve m ~b ?(tol = default_tol) ?max_iter ?x0 ?precond () =
  Obs.Trace.with_span "thermal.cg.solve" (fun () ->
      let out = record (solve_raw m ~b ~tol ?max_iter ?x0 ?precond ()) in
      (* Warm-start savings are measured against cold solves of the same
         system (Mesh tracks the pairing); here we just split the
         iteration histogram by start kind. *)
      let key =
        if Option.is_none x0 then "thermal.cg.cold.iterations"
        else "thermal.cg.warm.iterations"
      in
      Obs.Metrics.observe key (float_of_int out.iterations);
      out)
