type outcome = {
  x : float array;
  iterations : int;
  residual : float;
  converged : bool;
  breakdown : string option;
}

type precond = Jacobi | Ssor of float | Multigrid of Multigrid.t

let default_tol = 1e-10

(* --- convergence telemetry ------------------------------------------------
   Every solve logs its per-iteration relative residuals into a bounded
   per-solve buffer (stride-doubling downsample: when the buffer fills,
   every other entry is dropped and the sampling stride doubles, so the
   trajectory shape survives at any iteration count), and the finished
   history lands in a small process-global ring. The ring is what the CLI
   report's "convergence" section and the tests read: the last
   [history_ring_capacity] solves, escalation rungs included, each tagged
   with its preconditioner label and warm/cold start. *)

let residual_log_capacity = 256

type res_log = {
  rl_buf : float array;
  mutable rl_len : int;
  mutable rl_stride : int;  (* every stride-th iteration is retained *)
  mutable rl_seen : int;
}

let log_create () =
  { rl_buf = Array.make residual_log_capacity 0.0; rl_len = 0;
    rl_stride = 1; rl_seen = 0 }

let log_push l r =
  if l.rl_seen mod l.rl_stride = 0 then begin
    if l.rl_len = residual_log_capacity then begin
      (* keep every other entry; retained entries stay stride-aligned
         because the capacity is even *)
      for i = 0 to (residual_log_capacity / 2) - 1 do
        l.rl_buf.(i) <- l.rl_buf.(2 * i)
      done;
      l.rl_len <- residual_log_capacity / 2;
      l.rl_stride <- l.rl_stride * 2
    end;
    l.rl_buf.(l.rl_len) <- r;
    l.rl_len <- l.rl_len + 1
  end;
  l.rl_seen <- l.rl_seen + 1

type history = {
  h_label : string;        (* preconditioner / escalation-rung tag *)
  h_warm : bool;
  h_iterations : int;
  h_converged : bool;
  h_breakdown : string option;
  h_stride : int;
  h_residuals : float array;
}

let history_ring_capacity = 32

let ring : history option array = Array.make history_ring_capacity None
let ring_mutex = Mutex.create ()
let ring_pos = ref 0
let ring_total = ref 0

let push_history h =
  Mutex.protect ring_mutex (fun () ->
      ring.(!ring_pos) <- Some h;
      ring_pos := (!ring_pos + 1) mod history_ring_capacity;
      incr ring_total)

let recent_histories () =
  Mutex.protect ring_mutex (fun () ->
      let n = min !ring_total history_ring_capacity in
      List.init n (fun i ->
          Option.get
            ring.((!ring_pos - n + i + (2 * history_ring_capacity))
                  mod history_ring_capacity)))

let clear_histories () =
  Mutex.protect ring_mutex (fun () ->
      Array.fill ring 0 history_ring_capacity None;
      ring_pos := 0;
      ring_total := 0)

let history_json h =
  Obs.Json.Obj
    [ ("label", Obs.Json.String h.h_label);
      ("warm_start", Obs.Json.Bool h.h_warm);
      ("iterations", Obs.Json.Int h.h_iterations);
      ("converged", Obs.Json.Bool h.h_converged);
      ("breakdown",
       (match h.h_breakdown with
        | None -> Obs.Json.Null
        | Some b -> Obs.Json.String b));
      ("residual_stride", Obs.Json.Int h.h_stride);
      ("residuals",
       Obs.Json.List
         (Array.to_list (Array.map (fun r -> Obs.Json.Float r) h.h_residuals))) ]

let histories_json () =
  Obs.Json.List (List.map history_json (recent_histories ()))

(* Vector ops are chunked on a fixed grid (independent of the pool size)
   and reductions combine per-chunk partials in chunk-index order, so a
   parallel solve is bit-identical to a sequential one: same partial sums,
   same combination order, same rounding. A chunk of a few thousand
   elements is microseconds of work — far below the pool handoff cost —
   so the chunk loop only goes to the pool for large systems; below the
   threshold it runs inline over the *same* grid, which keeps the
   arithmetic identical across the threshold as well. *)
let vec_chunk = 2048
let par_min_n = 200_000

let n_chunks n = (n + vec_chunk - 1) / vec_chunk

let for_chunks n f =
  if n >= par_min_n then Parallel.Pool.parallel_for ~chunks:(n_chunks n) f
  else for c = 0 to n_chunks n - 1 do f c done

let par_iter_chunks n f =
  for_chunks n (fun c ->
      let lo = c * vec_chunk in
      let hi = min n (lo + vec_chunk) - 1 in
      f lo hi)

(* [partials] is per-solve scratch of length [n_chunks n]. *)
let dot partials a b =
  let n = Array.length a in
  let chunks = n_chunks n in
  for_chunks n (fun c ->
      let lo = c * vec_chunk in
      let hi = min n (lo + vec_chunk) - 1 in
      let acc = ref 0.0 in
      for i = lo to hi do acc := !acc +. (a.(i) *. b.(i)) done;
      partials.(c) <- !acc);
  let acc = ref 0.0 in
  for c = 0 to chunks - 1 do acc := !acc +. partials.(c) done;
  !acc

(* Per-solve telemetry: iteration count and final residual feed histograms
   so sweeps can audit convergence after the fact, and a max-iter exit is
   never silent — it counts and warns (Mesh.solve additionally hard-fails). *)
let record outcome =
  Obs.Metrics.count "thermal.cg.solves";
  Obs.Metrics.observe "thermal.cg.iterations"
    (float_of_int outcome.iterations);
  Obs.Metrics.observe "thermal.cg.residual" outcome.residual;
  (match outcome.breakdown with
   | Some _ -> Obs.Metrics.count "thermal.cg.breakdown"
   | None -> ());
  if not outcome.converged then begin
    Obs.Metrics.count "thermal.cg.nonconverged";
    Obs.Log.warn
      (Printf.sprintf
         "Cg.solve: no convergence after %d iters, residual %.3e%s"
         outcome.iterations outcome.residual
         (match outcome.breakdown with
          | Some why -> " (breakdown: " ^ why ^ ")"
          | None -> ""))
  end;
  outcome

(* Breakdown detection: CG on an SPD system has pAp > 0 and rho > 0 at
   every step. A non-positive or non-finite curvature / rho means the
   system is not SPD (assembly bug, injected perturbation) or arithmetic
   has degenerated — dividing through would fill [x] with NaN/Inf and
   poison every later warm start, so we stop *before* the division and
   report [converged = false] with a breakdown reason. A residual that
   stops improving (or explodes) for [stall_window] iterations is cut
   off the same way. *)
let stall_window = 200
let divergence_factor = 1e8

let solve_raw m ~b ~tol ?max_iter ?x0 ?(precond = Jacobi) () =
  let rlog = log_create () in
  let n = Sparse.dim m in
  if Array.length b <> n then invalid_arg "Cg.solve: rhs dimension mismatch";
  (match precond with
   | Jacobi -> ()
   | Ssor omega ->
     if omega <= 0.0 || omega >= 2.0 then
       invalid_arg "Cg.solve: SSOR omega must be in (0, 2)"
   | Multigrid h ->
     if Multigrid.fine_dim h <> n then
       invalid_arg "Cg.solve: multigrid hierarchy dimension mismatch");
  let max_iter = match max_iter with Some k -> k | None -> 4 * n in
  let diag = Sparse.diagonal m in
  Array.iter
    (fun d -> if d <= 0.0 then
        invalid_arg "Cg.solve: non-positive diagonal entry")
    diag;
  if Robust.Faults.consume Robust.Faults.Cg_stall then
    (* injected non-convergence: report failure with an untouched iterate *)
    ({ x = (match x0 with Some v -> Array.copy v | None -> Array.make n 0.0);
       iterations = 0; residual = 1.0; converged = false;
       breakdown = Some "injected: cg_stall" },
     rlog)
  else begin
  let partials = Array.make (n_chunks n) 0.0 in
  let norm a = sqrt (dot partials a a) in
  (* The hierarchy is immutable and shared; the scratch vectors are ours
     alone, so concurrent pooled solves do not race. *)
  let mg_ws =
    match precond with Multigrid h -> Some (Multigrid.workspace h) | _ -> None
  in
  let apply_precond r z =
    match precond with
    | Jacobi ->
      par_iter_chunks n (fun lo hi ->
          for i = lo to hi do z.(i) <- r.(i) /. diag.(i) done)
    | Ssor omega -> Sparse.ssor_apply m ~diag ~omega r z
    | Multigrid h -> Multigrid.apply h (Option.get mg_ws) r z
  in
  let x = match x0 with
    | Some v ->
      if Array.length v <> n then invalid_arg "Cg.solve: x0 mismatch";
      Array.copy v
    | None -> Array.make n 0.0
  in
  let r = Array.make n 0.0 in
  Sparse.mul_par m x r;
  par_iter_chunks n (fun lo hi ->
      for i = lo to hi do r.(i) <- b.(i) -. r.(i) done);
  let bnorm = norm b in
  if bnorm = 0.0 then
    ({ x = Array.make n 0.0; iterations = 0; residual = 0.0;
       converged = true; breakdown = None },
     rlog)
  else begin
    let z = Array.make n 0.0 in
    apply_precond r z;
    let p = Array.copy z in
    let ap = Array.make n 0.0 in
    let rz = ref (dot partials r z) in
    let iterations = ref 0 in
    let rn0 = norm r /. bnorm in
    log_push rlog rn0;
    let converged = ref (rn0 <= tol) in
    let breakdown = ref None in
    let best_rn = ref infinity in
    let since_best = ref 0 in
    while !breakdown = None && (not !converged) && !iterations < max_iter do
      incr iterations;
      (* cooperative cancellation at iteration granularity: a deadline
         posted by the serve watchdog aborts a long solve within a few
         iterations instead of only between flow phases *)
      if !iterations land 15 = 0 then Robust.Cancel.check ();
      Sparse.mul_par m p ap;
      let pap = dot partials p ap in
      if not (Float.is_finite pap) || pap <= 0.0 then
        breakdown :=
          Some (Printf.sprintf "non-positive curvature (pAp = %g)" pap)
      else begin
        let alpha = !rz /. pap in
        par_iter_chunks n (fun lo hi ->
            for i = lo to hi do
              x.(i) <- x.(i) +. (alpha *. p.(i));
              r.(i) <- r.(i) -. (alpha *. ap.(i))
            done);
        let rn = norm r in
        if not (Float.is_finite rn) then
          breakdown := Some "non-finite residual"
        else begin
          log_push rlog (rn /. bnorm);
          if rn < !best_rn then begin
            best_rn := rn;
            since_best := 0
          end
          else begin
            incr since_best;
            if rn > divergence_factor *. !best_rn then
              breakdown :=
                Some (Printf.sprintf "residual diverging (%.3e from %.3e)"
                        rn !best_rn)
            else if !since_best >= stall_window then
              breakdown :=
                Some (Printf.sprintf
                        "residual stagnant for %d iterations" stall_window)
          end;
          if !breakdown = None then begin
            if rn /. bnorm <= tol then converged := true
            else begin
              apply_precond r z;
              let rz' = dot partials r z in
              if not (Float.is_finite rz') || Float.abs rz' <= 1e-300 then
                breakdown :=
                  Some (Printf.sprintf "rho breakdown (rho = %g)" rz')
              else begin
                let beta = rz' /. !rz in
                rz := rz';
                par_iter_chunks n (fun lo hi ->
                    for i = lo to hi do
                      p.(i) <- z.(i) +. (beta *. p.(i))
                    done)
              end
            end
          end
        end
      end
    done;
    (* belt and braces: whatever the exit path, never hand back a
       non-finite iterate — restore the start vector instead *)
    let finite = ref true in
    for i = 0 to n - 1 do
      if not (Float.is_finite x.(i)) then finite := false
    done;
    if not !finite then begin
      (match x0 with
       | Some v -> Array.blit v 0 x 0 n
       | None -> Array.fill x 0 n 0.0);
      converged := false;
      if !breakdown = None then breakdown := Some "non-finite iterate"
    end;
    (* true residual for the report *)
    Sparse.mul_par m x ap;
    let res = ref 0.0 in
    for i = 0 to n - 1 do
      let d = b.(i) -. ap.(i) in
      res := !res +. (d *. d)
    done;
    ({ x; iterations = !iterations; residual = sqrt !res /. bnorm;
       converged = !converged; breakdown = !breakdown },
     rlog)
  end
  end

let precond_label = function
  | None | Some Jacobi -> "jacobi"
  | Some (Ssor _) -> "ssor"
  | Some (Multigrid _) -> "mg"

let solve m ~b ?(tol = default_tol) ?max_iter ?x0 ?precond ?label () =
  Obs.Trace.with_span "thermal.cg.solve" (fun () ->
      let label =
        match label with Some l -> l | None -> precond_label precond
      in
      let out, rlog = solve_raw m ~b ~tol ?max_iter ?x0 ?precond () in
      let out = record out in
      push_history
        { h_label = label; h_warm = Option.is_some x0;
          h_iterations = out.iterations; h_converged = out.converged;
          h_breakdown = out.breakdown; h_stride = rlog.rl_stride;
          h_residuals = Array.sub rlog.rl_buf 0 rlog.rl_len };
      (* residual-trajectory metrics: initial and final relative residual
         plus the geometric per-iteration reduction rate, so sweeps can
         audit convergence quality, not just iteration counts *)
      if rlog.rl_len > 0 then begin
        let r0 = rlog.rl_buf.(0) in
        Obs.Metrics.observe "thermal.cg.residual.initial" r0;
        Obs.Metrics.observe "thermal.cg.residual.final" out.residual;
        if out.iterations > 0 && r0 > 0.0 && out.residual > 0.0 then
          Obs.Metrics.observe "thermal.cg.residual.rate"
            ((out.residual /. r0) ** (1.0 /. float_of_int out.iterations))
      end;
      Obs.Trace.add_metric "cg.iterations" (float_of_int out.iterations);
      Obs.Trace.add_metric "cg.residual" out.residual;
      (* Warm-start savings are measured against cold solves of the same
         system (Mesh tracks the pairing); here we just split the
         iteration histogram by start kind. *)
      let key =
        if Option.is_none x0 then "thermal.cg.cold.iterations"
        else "thermal.cg.warm.iterations"
      in
      Obs.Metrics.observe key (float_of_int out.iterations);
      out)

type status = Clean | Recovered of string | Degraded

type escalation = {
  esc_outcome : outcome;
  esc_status : status;
  esc_rungs : string list;
}

(* Escalation ladder. A failed solve (breakdown or max-iter exit) is
   retried with progressively heavier configurations:
     jacobi   — cold Jacobi restart at the requested iteration budget
                (skipped when that is exactly what just failed);
     ssor     — SSOR(1.2) with a doubled budget: a stronger
                preconditioner shrinks the iteration count on the mesh
                stencil and sidesteps Jacobi-specific stagnation;
     restart  — cold Jacobi with a quadrupled budget, the last resort
                for slow-but-sound systems.
   Each rung starts from a fresh x0: a warm start that led the first
   attempt into breakdown must not steer the retries too. *)
let solve_escalating m ~b ?(tol = default_tol) ?max_iter ?x0 ?precond () =
  let n = Sparse.dim m in
  let base_iter = match max_iter with Some k -> k | None -> 4 * n in
  let first = solve m ~b ~tol ~max_iter:base_iter ?x0 ?precond () in
  if first.converged then
    { esc_outcome = first; esc_status = Clean; esc_rungs = [] }
  else begin
    Obs.Metrics.count "thermal.cg.escalations";
    let requested_jacobi_cold =
      (match precond with
       | None | Some Jacobi -> true
       | Some (Ssor _ | Multigrid _) -> false)
      && Option.is_none x0
    in
    let rungs =
      (if requested_jacobi_cold then []
       else
         [ ("jacobi",
            fun () ->
              solve m ~b ~tol ~max_iter:base_iter ~precond:Jacobi
                ~label:"esc:jacobi" ()) ])
      @ [ ("ssor",
           fun () ->
             solve m ~b ~tol ~max_iter:(2 * base_iter)
               ~precond:(Ssor 1.2) ~label:"esc:ssor" ());
          ("restart",
           fun () ->
             solve m ~b ~tol ~max_iter:(4 * base_iter)
               ~precond:Jacobi ~label:"esc:restart" ()) ]
    in
    let rec go attempted best = function
      | [] ->
        Obs.Metrics.count "thermal.cg.escalation.degraded";
        { esc_outcome = best; esc_status = Degraded;
          esc_rungs = List.rev attempted }
      | (name, run) :: rest ->
        Obs.Metrics.count ("thermal.cg.escalation.rung." ^ name);
        let out = run () in
        let attempted = name :: attempted in
        if out.converged then begin
          Obs.Metrics.count "thermal.cg.escalation.recovered";
          { esc_outcome = out; esc_status = Recovered name;
            esc_rungs = List.rev attempted }
        end
        else begin
          let best = if out.residual < best.residual then out else best in
          go attempted best rest
        end
    in
    go [] first rungs
  end
