type outcome = {
  x : float array;
  iterations : int;
  residual : float;
  converged : bool;
}

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm a = sqrt (dot a a)

(* Per-solve telemetry: iteration count and final residual feed histograms
   so sweeps can audit convergence after the fact, and a max-iter exit is
   never silent — it counts and warns (Mesh.solve additionally hard-fails). *)
let record outcome =
  Obs.Metrics.count "thermal.cg.solves";
  Obs.Metrics.observe "thermal.cg.iterations"
    (float_of_int outcome.iterations);
  Obs.Metrics.observe "thermal.cg.residual" outcome.residual;
  if not outcome.converged then begin
    Obs.Metrics.count "thermal.cg.nonconverged";
    Obs.Log.warn
      (Printf.sprintf
         "Cg.solve: max iterations reached without convergence (%d iters, \
          residual %.3e)"
         outcome.iterations outcome.residual)
  end;
  outcome

let solve_raw m ~b ~tol ?max_iter ?x0 () =
  let n = Sparse.dim m in
  if Array.length b <> n then invalid_arg "Cg.solve: rhs dimension mismatch";
  let max_iter = match max_iter with Some k -> k | None -> 4 * n in
  let diag = Sparse.diagonal m in
  Array.iter
    (fun d -> if d <= 0.0 then
        invalid_arg "Cg.solve: non-positive diagonal entry")
    diag;
  let x = match x0 with
    | Some v ->
      if Array.length v <> n then invalid_arg "Cg.solve: x0 mismatch";
      Array.copy v
    | None -> Array.make n 0.0
  in
  let r = Array.make n 0.0 in
  Sparse.mul m x r;
  for i = 0 to n - 1 do r.(i) <- b.(i) -. r.(i) done;
  let bnorm = norm b in
  if bnorm = 0.0 then
    { x = Array.make n 0.0; iterations = 0; residual = 0.0; converged = true }
  else begin
    let z = Array.init n (fun i -> r.(i) /. diag.(i)) in
    let p = Array.copy z in
    let ap = Array.make n 0.0 in
    let rz = ref (dot r z) in
    let iterations = ref 0 in
    let converged = ref (norm r /. bnorm <= tol) in
    while (not !converged) && !iterations < max_iter do
      incr iterations;
      Sparse.mul m p ap;
      let alpha = !rz /. dot p ap in
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. (alpha *. p.(i));
        r.(i) <- r.(i) -. (alpha *. ap.(i))
      done;
      if norm r /. bnorm <= tol then converged := true
      else begin
        for i = 0 to n - 1 do z.(i) <- r.(i) /. diag.(i) done;
        let rz' = dot r z in
        let beta = rz' /. !rz in
        rz := rz';
        for i = 0 to n - 1 do p.(i) <- z.(i) +. (beta *. p.(i)) done
      end
    done;
    (* true residual for the report *)
    Sparse.mul m x ap;
    let res = ref 0.0 in
    for i = 0 to n - 1 do
      let d = b.(i) -. ap.(i) in
      res := !res +. (d *. d)
    done;
    { x; iterations = !iterations; residual = sqrt !res /. bnorm;
      converged = !converged }
  end

let solve m ~b ?(tol = 1e-9) ?max_iter ?x0 () =
  Obs.Trace.with_span "thermal.cg.solve" (fun () ->
      record (solve_raw m ~b ~tol ?max_iter ?x0 ()))
