(** Assembly and solution of the 3-D thermal RC network.

    The die footprint is tiled [nx] x [ny] per layer (the paper's grid is
    40 x 40 x 9 = 14400 cells); each thermal cell couples to its six
    neighbours through series half-cell resistances, boundary faces couple
    to the ambient reference through the stack's effective conductances,
    and the power map injects current into the active layer. Temperatures
    are kelvins of rise over ambient. *)

type config = {
  nx : int;
  ny : int;
  stack : Stack.t;
}

val default_config : config
(** 40 x 40 over {!Stack.default_9layer}. *)

type problem

val build : ?cache:bool -> config -> power:Geo.Grid.t -> problem
(** [power] is a W-per-tile grid whose extent is the die footprint and
    whose dimensions must equal [nx] x [ny].

    The conductance matrix depends only on the config and the grid extent
    — power enters through the right-hand side alone — so assembled
    matrices are kept in a small MRU cache keyed by (config, extent) and
    shared between problems (the rhs is always rebuilt). [~cache:false]
    bypasses the cache and assembles fresh. Lookups bump the
    [thermal.mesh.cache.hits] / [thermal.mesh.cache.misses] counters in
    {!Obs.Metrics}. *)

val cache_clear : unit -> unit
(** Drop every cached matrix (and the cold-iteration baselines that ride
    with them). Mainly for tests and benchmarks. *)

val matrix : problem -> Sparse.t
val rhs : problem -> float array

type solution = {
  config : config;
  extent : Geo.Rect.t;
  temp : float array;       (** node temperature rises, x-major per layer *)
  cg_iterations : int;
  cg_residual : float;
}

val solve : ?tol:float -> ?max_iter:int -> ?precond:Cg.precond ->
  ?x0:float array -> problem -> solution
(** Defaults: [tol] {!Cg.default_tol}, [max_iter] / [precond] / [x0] as in
    {!Cg.solve}. Passing [x0] warm-starts CG from a previous temperature
    field (the optimizer seeds candidate solves with the incumbent
    solution); when the same cached matrix has also been solved cold, the
    iteration savings are recorded in the
    [thermal.mesh.warm.saved_iterations] histogram.

    Raises [Failure] when CG does not converge (never observed on a valid
    stack; guards against assembly bugs). *)

val node_index : config -> ix:int -> iy:int -> iz:int -> int

val layer_grid : solution -> iz:int -> Geo.Grid.t
(** Temperature-rise map of one layer over the die extent. *)

val active_layer_grid : solution -> Geo.Grid.t
(** The thermal map of the paper's figures: the power-injection layer. *)
