(** Assembly and solution of the 3-D thermal RC network.

    The die footprint is tiled [nx] x [ny] per layer (the paper's grid is
    40 x 40 x 9 = 14400 cells); each thermal cell couples to its six
    neighbours through series half-cell resistances, boundary faces couple
    to the ambient reference through the stack's effective conductances,
    and the power map injects current into the active layer. Temperatures
    are kelvins of rise over ambient. *)

type config = {
  nx : int;
  ny : int;
  stack : Stack.t;
}

val default_config : config
(** 40 x 40 over {!Stack.default_9layer}. *)

type problem

val build : ?cache:bool -> config -> power:Geo.Grid.t -> problem
(** [power] is a W-per-tile grid whose extent is the die footprint and
    whose dimensions must equal [nx] x [ny].

    The conductance matrix depends only on the config and the grid extent
    — power enters through the right-hand side alone — so assembled
    matrices are kept in a small MRU cache keyed by (config, extent) and
    shared between problems (the rhs is always rebuilt). [~cache:false]
    bypasses the cache and assembles fresh. Lookups bump the
    [thermal.mesh.cache.hits] / [thermal.mesh.cache.misses] counters in
    {!Obs.Metrics}.

    Cache hits are validated defensively: an entry whose matrix dimension
    disagrees with the requested mesh is evicted and reassembled (counted
    in [thermal.mesh.cache.stale], with a warning) instead of being
    handed to CG. Fault hooks: {!Robust.Faults.Stale_mesh_cache}
    substitutes a wrong-sized entry on the next hit to exercise that
    check; {!Robust.Faults.Perturb_matrix} injects an asymmetric spike
    into the next assembly — while it is armed the cache is bypassed
    entirely so the poisoned matrix is never published. *)

val cache_clear : unit -> unit
(** Drop every cached matrix (and the cold-iteration baselines, multigrid
    hierarchies and blur kernels that ride with them). Mainly for tests
    and benchmarks. *)

val cache_capacity : unit -> int
(** Current MRU capacity (default 8 entries). *)

val set_cache_capacity : int -> unit
(** Resize the matrix MRU cache (minimum 1; [Invalid_argument] below
    that). Shrinking evicts the least-recently-used entries immediately.
    Every eviction — here or on insert overflow — is counted in
    [thermal.mesh.cache.evictions]. Reachable from the CLI via
    [--cache-slots] or the THERMOPLACE_CACHE_SLOTS environment
    variable. *)

val matrix : problem -> Sparse.t
val rhs : problem -> float array
val config : problem -> config
val extent : problem -> Geo.Rect.t

val with_rhs : problem -> float array -> problem
(** The same problem (cached matrix, shared multigrid hierarchy and blur
    kernel) with a custom right-hand side — how the adjoint solve injects
    the objective gradient as a source term into the same SPD operator.
    Raises [Invalid_argument] on a dimension mismatch. *)

val assemble_raw : config -> extent:Geo.Rect.t -> Sparse.t
(** Fault-free, cache-free assembly of the conductance matrix alone. For
    derived operators ([Transient]'s backward-Euler shifted matrix and
    its coarse multigrid levels) that must rediscretize the same stack
    without consuming injected faults aimed at the primary solve path. *)

val multigrid : problem -> Multigrid.t
(** The geometric multigrid hierarchy for this problem's matrix, built on
    first use (coarse levels are fault-free rediscretizations of the same
    stack and extent at halved lateral resolution) and cached on the
    problem's cache entry, so repeated builds of the same (config, extent)
    mesh — an optimizer run, a sweep — construct it exactly once. *)

type precond_choice = Pc_jacobi | Pc_ssor of float | Pc_mg
(** A preconditioner selection that is plain data — CLI flags and
    [Flow] configuration carry this, and it is resolved against a
    concrete problem by {!precond_of_choice} (the multigrid variant needs
    the problem's hierarchy). *)

val precond_choice_name : precond_choice -> string
(** ["jacobi"], ["ssor"] or ["mg"] — for reports and config echoes. *)

val precond_of_choice : problem -> precond_choice -> Cg.precond
(** Resolve a choice against a problem; [Pc_mg] builds (or reuses) the
    problem's {!multigrid} hierarchy. *)

type solution = {
  config : config;
  extent : Geo.Rect.t;
  temp : float array;       (** node temperature rises, x-major per layer *)
  cg_iterations : int;
  cg_residual : float;
  cg_rungs : string list;
  (** escalation rungs CG went through to produce this solution; [[]]
      for a clean first-attempt convergence *)
}

val solve_result : ?tol:float -> ?max_iter:int -> ?precond:Cg.precond ->
  ?x0:float array -> problem -> (solution, Robust.Error.t) result
(** Defaults: [tol] {!Cg.default_tol}, [max_iter] / [precond] / [x0] as in
    {!Cg.solve}. Passing [x0] warm-starts CG from a previous temperature
    field (the optimizer seeds candidate solves with the incumbent
    solution); when the same cached matrix has also been solved cold, the
    iteration savings are recorded in the
    [thermal.mesh.warm.saved_iterations] histogram.

    The solve runs through {!Cg.solve_escalating}: a first-attempt
    failure is retried down the Jacobi / SSOR / restart ladder, a
    recovery is logged as a warning and recorded in [cg_rungs], and only
    when every rung fails does this return
    [Error (Solver_diverged { rungs; _ })] with the full attempt list. *)

val solve : ?tol:float -> ?max_iter:int -> ?precond:Cg.precond ->
  ?x0:float array -> problem -> solution
(** {!solve_result}, raising [Robust.Error.Error (Solver_diverged _)]
    instead of returning [Error]. Never observed on a valid stack; guards
    against assembly bugs and injected faults. *)

val node_index : config -> ix:int -> iy:int -> iz:int -> int

val layer_grid : solution -> iz:int -> Geo.Grid.t
(** Temperature-rise map of one layer over the die extent. *)

val active_layer_grid : solution -> Geo.Grid.t
(** The thermal map of the paper's figures: the power-injection layer. *)

val blur : ?precond:precond_choice -> problem -> Blur.t
(** The power-blurring screening kernel for this problem's mesh: the
    active-layer response to a 1 W impulse at tile (nx/2, ny/2), solved
    once at 1e-8 with the chosen preconditioner (default [Pc_mg]) and
    characterized by {!Blur.of_response}. Cached on the problem's MRU
    entry next to the multigrid hierarchy, so an optimizer run
    characterizes once per (config, extent) and every pool worker shares
    the kernel. Traced as [thermal.blur.characterize]. *)
