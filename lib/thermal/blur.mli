(** Green's-function power blurring (Kemper et al., "Ultrafast
    Temperature Profile Calculation in IC Chips"), sharpened into an
    exact spectral transfer: for the linear steady-state RC network the
    active-layer temperature rise is a convolution of the power map with
    the network's point-source response. Characterize that response once
    with the full MG-CG solver (see {!Mesh.blur}) and every subsequent
    candidate power map costs a single O(n log n) FFT pass instead of an
    iterative solve.

    The stack's lateral stencil is translation-invariant and the die
    walls are adiabatic by default ([h_side_w_m2k = 0] — Neumann BC via
    half-sample reflection), so on the 2n-periodic even extension of the
    die the power-to-temperature map is a true cyclic convolution. The
    kernel spectrum is recovered by *deconvolving* the characterized
    corner-impulse response by the impulse's own spectrum, which makes
    evaluation exact for the discrete operator: blurred fields match
    full solves to characterization tolerance (~1e-9 relative), not just
    to a screening tolerance. If the stack is configured with non-zero
    side-wall conductance the boundary stencil loses translation
    invariance and evaluations degrade to estimates; rank-then-re-score
    (what [Optimizer.greedy_rows] does under the fft screen tier) keeps
    committed plans exact either way.

    Evaluation uses a Hermitian half-spectrum pipeline on the 2nx x 2ny
    extension: rows are transformed two at a time as one complex FFT,
    column transforms run only for kx <= nx (the rest follow from
    conjugate symmetry), and inverse rows are recovered pairwise the
    same way — roughly halving the FFT count per candidate. Extension
    lengths are rarely powers of two; the {!Fft} Bluestein path handles
    them without padding (padding would break the exact cyclicity). A
    [t] is immutable after characterization and safe to share across
    pool workers; every evaluation allocates its own scratch. *)

type t

val of_response : response:Geo.Grid.t -> t
(** Characterize the spectral transfer from the active-layer response to
    a unit (1 W) impulse injected at tile (0, 0) of the same grid. The
    response's FFT is divided by the corner impulse's analytic spectrum
    (zero only on modes every even-extended field lacks), and the result
    is stored transformed — the only FFT-of-the-kernel ever paid. Raises
    [Invalid_argument] on grids smaller than 2x2. *)

val nx : t -> int
val ny : t -> int
val extent : t -> Geo.Rect.t

val field : t -> power:Geo.Grid.t -> Geo.Grid.t
(** Temperature-rise field for [power] (same dims as the characterized
    grid, checked). One extended FFT convolution, traced as the
    [thermal.blur.eval] span. *)

val peak : ?correction:Geo.Grid.t -> t -> power:Geo.Grid.t -> float
(** Maximum of {!field} without materializing the grid. With
    [correction] (same dims, checked), the maximum of
    [field + correction] instead: pass the exact-minus-blurred error
    field of a reference power map to screen with a control variate.
    The transfer is linear in the power map, so a corrected estimate
    errs only by the model error of the *difference* from the reference
    — zero when the transfer is exact, and still small under non-zero
    side-wall conductance. *)
