(* Geometric multigrid on the layered mesh: the x-y surface grid is
   coarsened (rounding up, so 5 -> 3), the z stack never is. Coarse
   operators are geometric rediscretizations supplied by the caller, which
   keeps construction O(n) and sidesteps the Galerkin triple-product
   memory blowup at 160x160x9. *)

type smoother = Damped_jacobi of float | Ssor of float

(* Cell-centered bilinear transfer in one dimension: fine cell i has a
   main coarse parent (weight 3/4) and a neighbour parent (weight 1/4) on
   the side its center leans toward; at the grid edge, where the neighbour
   does not exist, its weight folds into the main parent. Restriction is
   the transpose, which full-weights interior coarse cells over their
   four/six fine children. *)
type axis = {
  p0 : int array;   (* main parent *)
  w0 : float array;
  p1 : int array;   (* neighbour parent (equals p0 when folded) *)
  w1 : float array;
}

type transfer = { ax_x : axis; ax_y : axis }

type level = {
  a : Sparse.t;
  diag : float array;
  nx : int;
  ny : int;
  n : int;
  down : transfer option;       (* to the next-coarser level *)
  residual_metric : string;
}

type t = {
  levels : level array;
  nz : int;
  coarse : Dense.t;
  smoother : smoother;
}

type vectors = {
  vb : float array;   (* level right-hand side *)
  vx : float array;   (* level iterate *)
  vr : float array;   (* residual / SpMV scratch *)
  vz : float array;   (* smoother scratch *)
}

type workspace = vectors array

type outcome = {
  x : float array;
  cycles : int;
  residual : float;
  converged : bool;
}

let default_tol = 1e-10
let coarsest_lateral = 4
let coarsest_max_dim = 4096

let axis_of ~fine ~coarse =
  let p0 = Array.make fine 0 and w0 = Array.make fine 1.0 in
  let p1 = Array.make fine 0 and w1 = Array.make fine 0.0 in
  for i = 0 to fine - 1 do
    let main = min (coarse - 1) (i / 2) in
    let other = if i land 1 = 0 then main - 1 else main + 1 in
    if other < 0 || other >= coarse then begin
      p0.(i) <- main;
      p1.(i) <- main
    end else begin
      p0.(i) <- main;
      w0.(i) <- 0.75;
      p1.(i) <- other;
      w1.(i) <- 0.25
    end
  done;
  { p0; w0; p1; w1 }

let validate_smoother = function
  | Damped_jacobi omega ->
    if not (omega > 0.0 && omega <= 1.0) then
      invalid_arg "Multigrid.build: damped-Jacobi factor must be in (0, 1]"
  | Ssor omega ->
    if not (omega > 0.0 && omega < 2.0) then
      invalid_arg "Multigrid.build: SSOR omega must be in (0, 2)"

let level_of ~index ~a ~nx ~ny ~nz ~down =
  let n = nx * ny * nz in
  if Sparse.dim a <> n then
    invalid_arg
      (Printf.sprintf
         "Multigrid.build: level %d matrix dim %d does not match %dx%dx%d"
         index (Sparse.dim a) nx ny nz);
  let diag = Sparse.diagonal a in
  Array.iteri
    (fun i d ->
      if not (d > 0.0) then
        invalid_arg
          (Printf.sprintf
             "Multigrid.build: non-positive diagonal %g at node %d of level %d"
             d i index))
    diag;
  { a; diag; nx; ny; n;
    down;
    residual_metric = Printf.sprintf "thermal.mg.level%d.residual" index }

let build ~fine ~nx ~ny ~nz ?(smoother = Ssor 1.0) ~assemble () =
  Obs.Trace.with_span "thermal.mg.build" @@ fun () ->
  if nx <= 0 || ny <= 0 || nz <= 0 then
    invalid_arg "Multigrid.build: grid dimensions must be positive";
  validate_smoother smoother;
  (* Finest-first lateral dimensions: halve (rounding up) until either
     axis reaches the direct-solve scale. *)
  let dims =
    let rec go cx cy acc =
      let acc = (cx, cy) :: acc in
      if cx > coarsest_lateral && cy > coarsest_lateral then
        go ((cx + 1) / 2) ((cy + 1) / 2) acc
      else List.rev acc
    in
    go nx ny []
  in
  let num = List.length dims in
  let dims = Array.of_list dims in
  let levels =
    Array.init num (fun l ->
        let lnx, lny = dims.(l) in
        let a = if l = 0 then fine else assemble ~nx:lnx ~ny:lny in
        let down =
          if l = num - 1 then None
          else
            let cnx, cny = dims.(l + 1) in
            Some { ax_x = axis_of ~fine:lnx ~coarse:cnx;
                   ax_y = axis_of ~fine:lny ~coarse:cny }
        in
        level_of ~index:l ~a ~nx:lnx ~ny:lny ~nz ~down)
  in
  let bottom = levels.(num - 1) in
  if bottom.n > coarsest_max_dim then
    invalid_arg
      (Printf.sprintf
         "Multigrid.build: coarsest level has %d nodes (> %d); grid too \
          anisotropic to coarsen"
         bottom.n coarsest_max_dim);
  let coarse = Dense.of_sparse bottom.a in
  Obs.Metrics.gauge "thermal.mg.levels" (float_of_int num);
  { levels; nz; coarse; smoother }

let fine_dim t = t.levels.(0).n
let num_levels t = Array.length t.levels

let workspace t =
  Array.map
    (fun lv ->
      { vb = Array.make lv.n 0.0;
        vx = Array.make lv.n 0.0;
        vr = Array.make lv.n 0.0;
        vz = Array.make lv.n 0.0 })
    t.levels

(* dst <- M^-1 src for one symmetric smoothing sweep. *)
let smooth t lv src dst =
  match t.smoother with
  | Damped_jacobi omega ->
    let diag = lv.diag in
    for i = 0 to lv.n - 1 do
      dst.(i) <- omega *. src.(i) /. diag.(i)
    done
  | Ssor omega -> Sparse.ssor_apply lv.a ~diag:lv.diag ~omega src dst

(* vr <- vb - A vx *)
let level_residual lv v =
  Sparse.mul_par lv.a v.vx v.vr;
  for i = 0 to lv.n - 1 do
    v.vr.(i) <- v.vb.(i) -. v.vr.(i)
  done

let norm2 v =
  let acc = ref 0.0 in
  for i = 0 to Array.length v - 1 do
    acc := !acc +. (v.(i) *. v.(i))
  done;
  sqrt !acc

(* Full-weighting restriction: coarse.vb <- P^T fine.vr (layer by layer). *)
let restrict lv fine_v coarse_lv coarse_v =
  let tr = Option.get lv.down in
  let { p0 = xp0; w0 = xw0; p1 = xp1; w1 = xw1 } = tr.ax_x in
  let { p0 = yp0; w0 = yw0; p1 = yp1; w1 = yw1 } = tr.ax_y in
  let cb = coarse_v.vb in
  Array.fill cb 0 coarse_lv.n 0.0;
  let fnx = lv.nx and fny = lv.ny in
  let cnx = coarse_lv.nx in
  let layers = lv.n / (fnx * fny) in
  for iz = 0 to layers - 1 do
    let fbase = iz * fny * fnx in
    let cbase = iz * coarse_lv.ny * cnx in
    for iy = 0 to fny - 1 do
      let c0 = cbase + (yp0.(iy) * cnx) and wy0 = yw0.(iy) in
      let c1 = cbase + (yp1.(iy) * cnx) and wy1 = yw1.(iy) in
      let frow = fbase + (iy * fnx) in
      for ix = 0 to fnx - 1 do
        let v = fine_v.vr.(frow + ix) in
        let j0 = xp0.(ix) and wx0 = xw0.(ix) in
        let j1 = xp1.(ix) and wx1 = xw1.(ix) in
        cb.(c0 + j0) <- cb.(c0 + j0) +. (v *. wx0 *. wy0);
        cb.(c0 + j1) <- cb.(c0 + j1) +. (v *. wx1 *. wy0);
        cb.(c1 + j0) <- cb.(c1 + j0) +. (v *. wx0 *. wy1);
        cb.(c1 + j1) <- cb.(c1 + j1) +. (v *. wx1 *. wy1)
      done
    done
  done

(* Bilinear prolongation and correction: fine.vx <- fine.vx + P coarse.vx. *)
let prolong_add lv fine_v coarse_lv coarse_v =
  let tr = Option.get lv.down in
  let { p0 = xp0; w0 = xw0; p1 = xp1; w1 = xw1 } = tr.ax_x in
  let { p0 = yp0; w0 = yw0; p1 = yp1; w1 = yw1 } = tr.ax_y in
  let cx = coarse_v.vx in
  let fnx = lv.nx and fny = lv.ny in
  let cnx = coarse_lv.nx in
  let layers = lv.n / (fnx * fny) in
  for iz = 0 to layers - 1 do
    let fbase = iz * fny * fnx in
    let cbase = iz * coarse_lv.ny * cnx in
    for iy = 0 to fny - 1 do
      let c0 = cbase + (yp0.(iy) * cnx) and wy0 = yw0.(iy) in
      let c1 = cbase + (yp1.(iy) * cnx) and wy1 = yw1.(iy) in
      let frow = fbase + (iy * fnx) in
      for ix = 0 to fnx - 1 do
        let j0 = xp0.(ix) and wx0 = xw0.(ix) in
        let j1 = xp1.(ix) and wx1 = xw1.(ix) in
        let v =
          (wx0 *. wy0 *. cx.(c0 + j0))
          +. (wx1 *. wy0 *. cx.(c0 + j1))
          +. (wx0 *. wy1 *. cx.(c1 + j0))
          +. (wx1 *. wy1 *. cx.(c1 + j1))
        in
        fine_v.vx.(frow + ix) <- fine_v.vx.(frow + ix) +. v
      done
    done
  done

let rec cycle t ws l =
  let lv = t.levels.(l) in
  let v = ws.(l) in
  if l = Array.length t.levels - 1 then begin
    let sol = Dense.solve t.coarse v.vb in
    Array.blit sol 0 v.vx 0 lv.n
  end else begin
    (* Pre-smooth from the zero guess: vx <- M^-1 vb. *)
    smooth t lv v.vb v.vx;
    level_residual lv v;
    if Obs.Metrics.enabled () then
      Obs.Metrics.observe lv.residual_metric (norm2 v.vr);
    let coarse_lv = t.levels.(l + 1) in
    let coarse_v = ws.(l + 1) in
    restrict lv v coarse_lv coarse_v;
    cycle t ws (l + 1);
    prolong_add lv v coarse_lv coarse_v;
    (* Post-smooth (adjoint of the pre-smooth, keeping the cycle
       symmetric): vx <- vx + M^-1 (vb - A vx). *)
    level_residual lv v;
    smooth t lv v.vr v.vz;
    for i = 0 to lv.n - 1 do
      v.vx.(i) <- v.vx.(i) +. v.vz.(i)
    done
  end

let apply t ws r z =
  let lv0 = t.levels.(0) in
  if Array.length r <> lv0.n || Array.length z <> lv0.n then
    invalid_arg "Multigrid.apply: vector dimension mismatch";
  if Array.length ws <> Array.length t.levels
     || Array.length ws.(0).vb <> lv0.n then
    invalid_arg "Multigrid.apply: workspace does not match hierarchy";
  Array.blit r 0 ws.(0).vb 0 lv0.n;
  cycle t ws 0;
  Array.blit ws.(0).vx 0 z 0 lv0.n;
  Obs.Metrics.count "thermal.mg.cycles"

let solve t ~b ?(tol = default_tol) ?(max_cycles = 200) ?x0 () =
  Obs.Trace.with_span "thermal.mg.solve" @@ fun () ->
  let n = fine_dim t in
  if Array.length b <> n then
    invalid_arg "Multigrid.solve: rhs dimension mismatch";
  if not (tol > 0.0) then invalid_arg "Multigrid.solve: tol must be positive";
  if max_cycles < 0 then
    invalid_arg "Multigrid.solve: max_cycles must be non-negative";
  let x =
    match x0 with
    | None -> Array.make n 0.0
    | Some x0 ->
      if Array.length x0 <> n then
        invalid_arg "Multigrid.solve: x0 dimension mismatch";
      Array.copy x0
  in
  let ws = workspace t in
  let a = t.levels.(0).a in
  let r = Array.make n 0.0 in
  let z = Array.make n 0.0 in
  let bnorm = norm2 b in
  let residual_of x =
    Sparse.mul_par a x r;
    for i = 0 to n - 1 do
      r.(i) <- b.(i) -. r.(i)
    done;
    norm2 r
  in
  let finish ~cycles ~rnorm =
    let residual = if bnorm > 0.0 then rnorm /. bnorm else rnorm in
    Obs.Metrics.count "thermal.mg.solves";
    Obs.Metrics.observe "thermal.mg.solve.cycles" (float_of_int cycles);
    { x; cycles; residual; converged = residual <= tol }
  in
  if bnorm = 0.0 then begin
    Array.fill x 0 n 0.0;
    finish ~cycles:0 ~rnorm:0.0
  end else begin
    let cycles = ref 0 in
    let rnorm = ref (residual_of x) in
    while !rnorm /. bnorm > tol && !cycles < max_cycles do
      apply t ws r z;
      for i = 0 to n - 1 do
        x.(i) <- x.(i) +. z.(i)
      done;
      incr cycles;
      rnorm := residual_of x
    done;
    finish ~cycles:!cycles ~rnorm:!rnorm
  end
