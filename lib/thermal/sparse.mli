(** Sparse symmetric matrices in compressed-sparse-row form.

    The steady-state thermal network is a resistive nodal analysis matrix:
    symmetric, positive definite (thanks to the boundary conductances to
    ambient), with at most 7 entries per row for a 3-D 7-point stencil. *)

type builder

val builder : n:int -> builder
(** Triplet accumulator for an [n] x [n] matrix. *)

val add : builder -> int -> int -> float -> unit
(** [add b i j v] accumulates [v] at (i,j). Symmetry is the caller's
    responsibility (the mesh assembler adds both (i,j) and (j,i)). *)

type t

val of_builder : builder -> t
(** Freeze into CSR; duplicate entries are summed. *)

val dim : t -> int
val nnz : t -> int

val mul : t -> float array -> float array -> unit
(** [mul a x y] computes [y <- A x]. *)

val mul_par : t -> float array -> float array -> unit
(** [mul_par a x y] computes [y <- A x] with rows split into fixed-size
    chunks executed on the {!Parallel.Pool}. The chunk grid depends only
    on [dim a], so the result is bit-identical to {!mul} regardless of the
    pool size (each row is written by exactly one chunk, with the same
    per-row accumulation order). *)

val ssor_apply : t -> diag:float array -> omega:float ->
  float array -> float array -> unit
(** [ssor_apply a ~diag ~omega r z] computes [z <- M^-1 r] for the SSOR
    splitting [M = (D/w + L) ((2-w)/w D)^-1 (D/w + U)] of the symmetric
    matrix [a], where [diag] is the (positive) diagonal and
    [w = omega]. Forward sweep, diagonal scale, backward sweep — all
    sequential, O(nnz). [z] is used as scratch; its input value is
    ignored. *)

val diagonal : t -> float array
(** Copy of the diagonal (zeros where absent). *)

val row_sum_abs : t -> int -> float
(** Sum of |entries| of a row — used by diagonal-dominance checks. *)

val get : t -> int -> int -> float
(** Entry lookup, 0.0 when absent (O(row nnz)). *)

val iter_row : t -> int -> f:(int -> float -> unit) -> unit
(** Visit the stored entries of one row as [(column, value)] pairs in
    ascending column order. *)
