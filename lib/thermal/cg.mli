(** Jacobi-preconditioned conjugate gradients for SPD systems.

    At steady state the paper's SPICE netlist of resistors, current sources
    and voltage sources reduces to the linear system [G T = P] with an SPD
    conductance matrix; CG computes the identical operating point. *)

type outcome = {
  x : float array;
  iterations : int;
  residual : float;  (** final ||b - A x|| / ||b|| *)
  converged : bool;
}

val solve : Sparse.t -> b:float array -> ?tol:float -> ?max_iter:int ->
  ?x0:float array -> unit -> outcome
(** Defaults: [tol] 1e-9 (relative), [max_iter] 4 * dim, [x0] zero.
    Raises [Invalid_argument] on dimension mismatch or a non-positive
    diagonal entry (the preconditioner needs positivity, and a thermal
    conductance matrix always satisfies it).

    Telemetry: every solve records [thermal.cg.iterations] and
    [thermal.cg.residual] observations and bumps the [thermal.cg.solves]
    counter in {!Obs.Metrics}; a solve that exits at [max_iter] without
    converging bumps [thermal.cg.nonconverged] and emits an {!Obs.Log}
    warning, so silent max-iter exits cannot masquerade as valid
    temperatures in sweeps. The solve body runs under a
    ["thermal.cg.solve"] trace span. *)
