(** Preconditioned conjugate gradients for SPD systems.

    At steady state the paper's SPICE netlist of resistors, current sources
    and voltage sources reduces to the linear system [G T = P] with an SPD
    conductance matrix; CG computes the identical operating point. *)

type outcome = {
  x : float array;
  iterations : int;
  residual : float;  (** final ||b - A x|| / ||b|| *)
  converged : bool;
  breakdown : string option;
  (** [Some reason] when the iteration was cut short by a detected
      breakdown — non-positive curvature (pAp <= 0: the matrix is not
      SPD), a vanishing or non-finite rho, a non-finite residual, or a
      residual that stagnated/diverged for a long window. The guard
      fires {e before} the offending division, so [x] is always finite:
      either the best iterate reached or the untouched start vector. *)
}

type precond =
  | Jacobi        (** diagonal scaling — cheapest apply, default *)
  | Ssor of float
  (** symmetric successive over-relaxation with the given omega in
      (0, 2); [Ssor 1.0] is symmetric Gauss-Seidel. Stronger than Jacobi
      on the mesh stencil (fewer iterations) at the cost of two
      triangular sweeps per apply. *)
  | Multigrid of Multigrid.t
  (** one geometric V-cycle per apply (see {!Multigrid}). The heaviest
      apply but near-resolution-independent iteration counts — the
      choice for large grids. The hierarchy must be built for the exact
      system being solved ([Multigrid.fine_dim] must equal the matrix
      dimension); [Mesh.multigrid] caches one per problem. *)

val default_tol : float
(** 1e-10 relative — the single convergence default shared by {!solve}
    and [Mesh.solve]. *)

(** {1 Convergence telemetry}

    Every solve records its per-iteration relative residual trajectory
    into a bounded per-solve buffer (stride-doubling downsample, at most
    {!residual_log_capacity} points whatever the iteration count) and
    publishes the finished history into a process-global ring holding
    the last {!history_ring_capacity} solves — escalation-ladder rungs
    included, each tagged with its label. The CLI report's
    ["convergence"] section is {!histories_json}. *)

type history = {
  h_label : string;
  (** preconditioner ("jacobi" / "ssor" / "mg"), an escalation rung
      ("esc:jacobi", ...) or a caller-supplied [?label] *)
  h_warm : bool;           (** was an [x0] supplied? *)
  h_iterations : int;
  h_converged : bool;
  h_breakdown : string option;
  h_stride : int;
  (** residuals were retained every [h_stride]-th iteration *)
  h_residuals : float array;
  (** relative residuals, oldest first; index [i] is iteration
      [i * h_stride] *)
}

val residual_log_capacity : int
val history_ring_capacity : int

val recent_histories : unit -> history list
(** The ring contents, oldest first (thread-safe). *)

val clear_histories : unit -> unit

val histories_json : unit -> Obs.Json.t
(** {!recent_histories} as a JSON list of
    [{"label","warm_start","iterations","converged","breakdown",
      "residual_stride","residuals"}]. *)

val solve : Sparse.t -> b:float array -> ?tol:float -> ?max_iter:int ->
  ?x0:float array -> ?precond:precond -> ?label:string -> unit -> outcome
(** Defaults: [tol] {!default_tol}, [max_iter] 4 * dim, [x0] zero,
    [precond] {!Jacobi}. Raises [Invalid_argument] on dimension mismatch,
    a non-positive diagonal entry (the preconditioners need positivity,
    and a thermal conductance matrix always satisfies it), or an SSOR
    omega outside (0, 2).

    Vector kernels (SpMV, dot, axpy) run on the {!Parallel.Pool} with a
    fixed chunk grid and chunk-ordered reduction, so results are
    bit-identical across pool sizes, including sequential.

    Telemetry: every solve records [thermal.cg.iterations] and
    [thermal.cg.residual] observations and bumps the [thermal.cg.solves]
    counter in {!Obs.Metrics}; the iteration count additionally lands in
    [thermal.cg.cold.iterations] or [thermal.cg.warm.iterations]
    depending on whether [x0] was supplied. A solve that exits at
    [max_iter] without converging bumps [thermal.cg.nonconverged] and
    emits an {!Obs.Log} warning, so silent max-iter exits cannot
    masquerade as valid temperatures in sweeps; a detected breakdown
    additionally bumps [thermal.cg.breakdown]. The solve body runs under
    a ["thermal.cg.solve"] trace span.

    Fault injection: an armed {!Robust.Faults.Cg_stall} makes the next
    solve return immediately with [converged = false] and the start
    vector as [x] — used by tests and the fault-injection harness to
    exercise the escalation ladder. *)

type status =
  | Clean             (** the first attempt converged *)
  | Recovered of string
  (** a retry rung converged; the payload names it ("jacobi", "ssor",
      "restart") *)
  | Degraded          (** every rung failed; the outcome is best-effort *)

type escalation = {
  esc_outcome : outcome;
  esc_status : status;
  esc_rungs : string list;
  (** retry rungs attempted after the first solve, in order; [[]] when
      the first attempt converged *)
}

val solve_escalating : Sparse.t -> b:float array -> ?tol:float ->
  ?max_iter:int -> ?x0:float array -> ?precond:precond -> unit -> escalation
(** {!solve} wrapped in a breakdown-recovery ladder. A failed first
    attempt (breakdown or max-iter exit) is retried cold through
    progressively heavier rungs: Jacobi at the requested budget (skipped
    when the first attempt was already a cold Jacobi solve; an SSOR- or
    multigrid-preconditioned first attempt always gets it), SSOR(1.2)
    at twice the budget, then a Jacobi restart at four times the budget.
    The first converging rung wins ([Recovered]); if all fail the
    best-residual outcome is returned with [Degraded] and the caller
    decides whether that is an error.

    Telemetry: a failed first attempt bumps [thermal.cg.escalations] and
    each rung [thermal.cg.escalation.rung.<name>]; the terminal state
    bumps [thermal.cg.escalation.recovered] or
    [thermal.cg.escalation.degraded]. *)
