(** Preconditioned conjugate gradients for SPD systems.

    At steady state the paper's SPICE netlist of resistors, current sources
    and voltage sources reduces to the linear system [G T = P] with an SPD
    conductance matrix; CG computes the identical operating point. *)

type outcome = {
  x : float array;
  iterations : int;
  residual : float;  (** final ||b - A x|| / ||b|| *)
  converged : bool;
}

type precond =
  | Jacobi        (** diagonal scaling — cheapest apply, default *)
  | Ssor of float
  (** symmetric successive over-relaxation with the given omega in
      (0, 2); [Ssor 1.0] is symmetric Gauss-Seidel. Stronger than Jacobi
      on the mesh stencil (fewer iterations) at the cost of two
      triangular sweeps per apply. *)

val default_tol : float
(** 1e-10 relative — the single convergence default shared by {!solve}
    and [Mesh.solve]. *)

val solve : Sparse.t -> b:float array -> ?tol:float -> ?max_iter:int ->
  ?x0:float array -> ?precond:precond -> unit -> outcome
(** Defaults: [tol] {!default_tol}, [max_iter] 4 * dim, [x0] zero,
    [precond] {!Jacobi}. Raises [Invalid_argument] on dimension mismatch,
    a non-positive diagonal entry (the preconditioners need positivity,
    and a thermal conductance matrix always satisfies it), or an SSOR
    omega outside (0, 2).

    Vector kernels (SpMV, dot, axpy) run on the {!Parallel.Pool} with a
    fixed chunk grid and chunk-ordered reduction, so results are
    bit-identical across pool sizes, including sequential.

    Telemetry: every solve records [thermal.cg.iterations] and
    [thermal.cg.residual] observations and bumps the [thermal.cg.solves]
    counter in {!Obs.Metrics}; the iteration count additionally lands in
    [thermal.cg.cold.iterations] or [thermal.cg.warm.iterations]
    depending on whether [x0] was supplied. A solve that exits at
    [max_iter] without converging bumps [thermal.cg.nonconverged] and
    emits an {!Obs.Log} warning, so silent max-iter exits cannot
    masquerade as valid temperatures in sweeps. The solve body runs under
    a ["thermal.cg.solve"] trace span. *)
