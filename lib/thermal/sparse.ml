type builder = {
  n : int;
  mutable rows_ : int array;
  mutable cols_ : int array;
  mutable vals_ : float array;
  mutable len : int;
}

let builder ~n =
  if n <= 0 then invalid_arg "Sparse.builder: n <= 0";
  { n; rows_ = Array.make 64 0; cols_ = Array.make 64 0;
    vals_ = Array.make 64 0.0; len = 0 }

let add b i j v =
  if i < 0 || i >= b.n || j < 0 || j >= b.n then
    invalid_arg "Sparse.add: index out of range";
  if b.len = Array.length b.rows_ then begin
    let cap = 2 * b.len in
    let grow a zero = let a' = Array.make cap zero in
      Array.blit a 0 a' 0 b.len; a' in
    b.rows_ <- grow b.rows_ 0;
    b.cols_ <- grow b.cols_ 0;
    b.vals_ <- grow b.vals_ 0.0
  end;
  b.rows_.(b.len) <- i;
  b.cols_.(b.len) <- j;
  b.vals_.(b.len) <- v;
  b.len <- b.len + 1

type t = {
  dim : int;
  row_ptr : int array;   (* length dim+1 *)
  col_idx : int array;
  values : float array;
}

(* Triplets -> CSR with duplicate summation: counting sort by row, then an
   in-row sort by column and a merge of equal columns, all on flat arrays
   (assembly speed matters: the 14400-node mesh is rebuilt per experiment
   point). *)
let of_builder b =
  let counts = Array.make (b.n + 1) 0 in
  for k = 0 to b.len - 1 do
    counts.(b.rows_.(k) + 1) <- counts.(b.rows_.(k) + 1) + 1
  done;
  for i = 1 to b.n do counts.(i) <- counts.(i) + counts.(i - 1) done;
  let order = Array.make (max 1 b.len) 0 in
  let cursor = Array.copy counts in
  for k = 0 to b.len - 1 do
    let r = b.rows_.(k) in
    order.(cursor.(r)) <- k;
    cursor.(r) <- cursor.(r) + 1
  done;
  let row_ptr = Array.make (b.n + 1) 0 in
  (* worst case: no duplicates at all *)
  let out_cols = Array.make (max 1 b.len) 0 in
  let out_vals = Array.make (max 1 b.len) 0.0 in
  let total = ref 0 in
  let cols_scratch = Array.make (max 1 b.len) 0 in
  let vals_scratch = Array.make (max 1 b.len) 0.0 in
  for i = 0 to b.n - 1 do
    row_ptr.(i) <- !total;
    let lo = counts.(i) and hi = counts.(i + 1) in
    let len = hi - lo in
    (* insertion sort of the (few) row entries by column *)
    for k = 0 to len - 1 do
      let t = order.(lo + k) in
      cols_scratch.(k) <- b.cols_.(t);
      vals_scratch.(k) <- b.vals_.(t)
    done;
    for k = 1 to len - 1 do
      let c = cols_scratch.(k) and v = vals_scratch.(k) in
      let j = ref (k - 1) in
      while !j >= 0 && cols_scratch.(!j) > c do
        cols_scratch.(!j + 1) <- cols_scratch.(!j);
        vals_scratch.(!j + 1) <- vals_scratch.(!j);
        decr j
      done;
      cols_scratch.(!j + 1) <- c;
      vals_scratch.(!j + 1) <- v
    done;
    let k = ref 0 in
    while !k < len do
      let c = cols_scratch.(!k) in
      let v = ref vals_scratch.(!k) in
      incr k;
      while !k < len && cols_scratch.(!k) = c do
        v := !v +. vals_scratch.(!k);
        incr k
      done;
      out_cols.(!total) <- c;
      out_vals.(!total) <- !v;
      incr total
    done
  done;
  row_ptr.(b.n) <- !total;
  { dim = b.n;
    col_idx = Array.sub out_cols 0 !total;
    values = Array.sub out_vals 0 !total;
    row_ptr }

let dim t = t.dim
let nnz t = t.row_ptr.(t.dim)

let mul t x y =
  if Array.length x <> t.dim || Array.length y <> t.dim then
    invalid_arg "Sparse.mul: dimension mismatch";
  for i = 0 to t.dim - 1 do
    let acc = ref 0.0 in
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
    done;
    y.(i) <- !acc
  done

(* Row-chunked SpMV on the domain pool. Each output row is produced by
   exactly one chunk and the chunk grid depends only on the dimension —
   never on the worker count — so the result is bit-identical to [mul]
   for any pool size. Below [par_min_dim] the pool handoff costs more
   than the multiply (a 7-point-stencil row is ~14 flops), so small
   systems run the plain sequential kernel — per-row accumulation order
   is the same either way, keeping results bit-identical across the
   threshold too. *)
let par_row_chunk = 512
let par_min_dim = 200_000

let mul_par t x y =
  if t.dim < par_min_dim then mul t x y
  else begin
    if Array.length x <> t.dim || Array.length y <> t.dim then
      invalid_arg "Sparse.mul_par: dimension mismatch";
    let chunks = (t.dim + par_row_chunk - 1) / par_row_chunk in
    Parallel.Pool.parallel_for ~chunks (fun c ->
        let lo = c * par_row_chunk in
        let hi = min t.dim (lo + par_row_chunk) - 1 in
        for i = lo to hi do
          let acc = ref 0.0 in
          for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
            acc := !acc +. (t.values.(k) *. x.(t.col_idx.(k)))
          done;
          y.(i) <- !acc
        done)
  end

(* z <- M^-1 r for the SSOR splitting M = (D/w + L) ((2-w)/w D)^-1
   (D/w + U): a forward sweep, a diagonal scaling, a backward sweep. The
   sweeps are inherently sequential (each row consumes earlier/later
   rows), but they are O(nnz) — cheap next to the SpMV they save. *)
let ssor_apply t ~diag ~omega r z =
  let n = t.dim in
  if Array.length r <> n || Array.length z <> n then
    invalid_arg "Sparse.ssor_apply: dimension mismatch";
  (* forward: (D/w + L) u = r, u accumulated in z *)
  for i = 0 to n - 1 do
    let acc = ref 0.0 in
    let k = ref t.row_ptr.(i) in
    let stop = t.row_ptr.(i + 1) in
    while !k < stop && t.col_idx.(!k) < i do
      acc := !acc +. (t.values.(!k) *. z.(t.col_idx.(!k)));
      incr k
    done;
    z.(i) <- (r.(i) -. !acc) *. omega /. diag.(i)
  done;
  (* scale by ((2-w)/w D) *)
  let s = (2.0 -. omega) /. omega in
  for i = 0 to n - 1 do
    z.(i) <- z.(i) *. diag.(i) *. s
  done;
  (* backward: (D/w + U) z = u, in place (rows below i are final) *)
  for i = n - 1 downto 0 do
    let acc = ref 0.0 in
    let k = ref (t.row_ptr.(i + 1) - 1) in
    let stop = t.row_ptr.(i) in
    while !k >= stop && t.col_idx.(!k) > i do
      acc := !acc +. (t.values.(!k) *. z.(t.col_idx.(!k)));
      decr k
    done;
    z.(i) <- (z.(i) -. !acc) *. omega /. diag.(i)
  done

let diagonal t =
  let d = Array.make t.dim 0.0 in
  for i = 0 to t.dim - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      if t.col_idx.(k) = i then d.(i) <- d.(i) +. t.values.(k)
    done
  done;
  d

let row_sum_abs t i =
  let acc = ref 0.0 in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    acc := !acc +. Float.abs t.values.(k)
  done;
  !acc

let get t i j =
  let v = ref 0.0 in
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    if t.col_idx.(k) = j then v := t.values.(k)
  done;
  !v

let iter_row t i ~f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.col_idx.(k) t.values.(k)
  done
