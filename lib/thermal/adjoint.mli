(** Adjoint sensitivity of a smoothed peak-temperature objective.

    The steady-state thermal solve is linear ([G T = P]) with an SPD
    conductance matrix, so for a differentiable objective [f(T)] the
    sensitivity to the power map is one extra solve of the {e same}
    system: [df/dP = G^-T (df/dT)] and [G^T = G]. The adjoint solve
    reuses the problem's cached matrix, multigrid hierarchy and warm
    starts via {!Mesh.with_rhs}.

    The objective is a log-sum-exp smoothing of the active-layer peak,
    [f(T) = (1/beta) log sum exp(beta T_i)]: an upper bound on the true
    peak that tightens as the sharpness [beta] grows ([f - max <=
    ln(nx*ny)/beta]), with the softmax distribution over hot tiles as its
    gradient. The resulting per-tile map is [d f / d (W injected in the
    tile)] in K/W — where removing (or not adding) power buys the most
    peak temperature, the signal that guides the optimizer's
    [Guide_gradient] mode. *)

val default_sharpness : float
(** 4.0 per kelvin — smoothing gap [ln(nx*ny)/beta] under ~2 K at the
    paper's 40 x 40 grid while keeping the objective curvature (and
    hence finite-difference validation error) moderate. *)

type t = {
  forward : Mesh.solution;        (** the forward solve differentiated *)
  sharpness : float;              (** beta actually used, 1/K *)
  peak_rise_k : float;            (** true active-layer peak of [forward] *)
  smoothed_peak_k : float;        (** f(T) — peak plus the smoothing gap *)
  lambda : float array;
  (** full adjoint field over every mesh node; pass as [?x0] to
      warm-start the next adjoint solve of a nearby problem *)
  sensitivity : Geo.Grid.t;
  (** per-tile [df/d(power)] in K/W: [lambda] restricted to the power
      layer, on the die extent *)
  cg_iterations : int;            (** iterations of the adjoint solve *)
}

val smoothed_peak : sharpness:float -> Mesh.solution -> float
(** The objective alone (stabilized log-sum-exp over the active layer) —
    exposed so finite-difference validation can evaluate perturbed
    forward solves with exactly the smoothing the adjoint
    differentiates. Raises [Invalid_argument] unless [sharpness > 0]. *)

val solve_result :
  ?tol:float -> ?sharpness:float -> ?precond:Cg.precond ->
  ?x0:float array -> ?forward:Mesh.solution -> Mesh.problem ->
  (t, Robust.Error.t) result
(** Differentiate the smoothed peak of [problem]'s solution. Runs the
    forward solve unless [?forward] supplies one already computed (the
    optimizer reuses its incumbent solution; dimensions are validated),
    then one adjoint solve of the same matrix with the objective
    gradient as source. Both solves go through {!Mesh.solve_result} —
    escalation ladder, structured errors and warm-start bookkeeping
    included; [?x0] warm-starts the adjoint iteration from a previous
    [lambda]. Telemetry: [thermal.adjoint.solves],
    [thermal.adjoint.iterations],
    [thermal.adjoint.peak_sensitivity_k_per_w] and
    [thermal.adjoint.smoothing_gap_k] in {!Obs.Metrics}, under a
    ["thermal.adjoint.solve"] trace span.

    Raises [Invalid_argument] on a non-positive sharpness or a
    mismatched [?forward]. *)

val solve :
  ?tol:float -> ?sharpness:float -> ?precond:Cg.precond ->
  ?x0:float array -> ?forward:Mesh.solution -> Mesh.problem -> t
(** {!solve_result}, raising [Robust.Error.Error] on solver failure. *)
