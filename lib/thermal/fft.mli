(** Pure-OCaml complex FFT: iterative radix-2 Cooley-Tukey for
    power-of-two lengths and the Bluestein chirp-z transform for every
    other length, so arbitrary mesh extents (40x40, 60x60, prime sizes)
    transform exactly — no dependency on the grid being a power of two.

    All transforms operate in place on split re/im arrays of equal
    length. The forward transform uses the e^{-2 pi i k n / N} kernel and
    is unnormalized; {!ifft} applies the 1/N factor, so
    [ifft (fft x) = x] to rounding. Twiddle factors, bit-reversal
    permutations and Bluestein chirps are memoized per length behind a
    mutex, so transforms are cheap to repeat and safe to run from pool
    workers.

    This is the kernel under {!Blur}'s Green's-function power blurring:
    one candidate-evaluation convolution costs O(n log n) against the
    O(n^1.x) of an MG-CG solve. *)

val is_pow2 : int -> bool

val next_pow2 : int -> int
(** Smallest power of two >= the argument (>= 1). *)

val fft : re:float array -> im:float array -> unit
(** In-place forward DFT of any positive length. Radix-2 when the length
    is a power of two ([thermal.fft.radix2] counter), Bluestein otherwise
    ([thermal.fft.bluestein]). Raises [Invalid_argument] on empty or
    mismatched arrays. *)

val ifft : re:float array -> im:float array -> unit
(** In-place inverse DFT (normalized by 1/N). *)

val fft2 : nx:int -> ny:int -> re:float array -> im:float array -> unit
(** In-place forward 2-D DFT of an [nx] x [ny] field stored x-major
    (index [iy * nx + ix]): rows first, then columns. Either dimension
    may be any positive length. *)

val ifft2 : nx:int -> ny:int -> re:float array -> im:float array -> unit
(** In-place inverse 2-D DFT, normalized by 1/(nx*ny). *)
