type material = {
  volumetric_heat_j_m3k : float;
}

let default_capacitance = { volumetric_heat_j_m3k = 1.6e6 }

type response = {
  times_s : float array;
  peak_rise_k : float array;
  steady_peak_k : float;
  tau_63_s : float;
  cg_iterations : int;
}

let node_capacitances cfg ~extent material =
  let stack = cfg.Mesh.stack in
  let nz = Stack.num_layers stack in
  let n = cfg.Mesh.nx * cfg.Mesh.ny * nz in
  let dx = Geo.Rect.width extent /. float_of_int cfg.Mesh.nx *. 1e-6 in
  let dy = Geo.Rect.height extent /. float_of_int cfg.Mesh.ny *. 1e-6 in
  let c = Array.make n 0.0 in
  for iz = 0 to nz - 1 do
    let dz = stack.Stack.layers.(iz).Stack.thickness_um *. 1e-6 in
    let cap = material.volumetric_heat_j_m3k *. dx *. dy *. dz in
    for iy = 0 to cfg.Mesh.ny - 1 do
      for ix = 0 to cfg.Mesh.nx - 1 do
        c.(Mesh.node_index cfg ~ix ~iy ~iz) <- cap
      done
    done
  done;
  c

(* The backward-Euler operator G + C/dt for one (config, extent): the
   fault-free conductance assembly plus the capacitance diagonal. Used
   for the fine system and, rediscretized at halved lateral resolution,
   for the coarse multigrid levels. *)
let shifted_matrix cfg ~extent ~material ~dt_s =
  let g = Mesh.assemble_raw cfg ~extent in
  let caps = node_capacitances cfg ~extent material in
  let n = Sparse.dim g in
  let b = Sparse.builder ~n in
  for i = 0 to n - 1 do
    Sparse.iter_row g i ~f:(fun j v -> Sparse.add b i j v);
    Sparse.add b i i (caps.(i) /. dt_s)
  done;
  (Sparse.of_builder b, caps)

(* Backward Euler: (G + C/dt) T_{k+1} = P + (C/dt) T_k. The shifted matrix
   is SPD whenever G is, so CG applies; consecutive steps warm-start. *)
let step_response cfg ~power ?(material = default_capacitance)
    ?(dt_s = 2e-6) ?(steps = 60) ?(precond = Mesh.Pc_ssor 1.2) () =
  if dt_s <= 0.0 || steps <= 0 then
    invalid_arg "Transient.step_response: non-positive dt or steps";
  let problem = Mesh.build cfg ~power in
  let p = Mesh.rhs problem in
  let extent = Geo.Grid.extent power in
  let iterations = ref 0 in
  (* steady state for normalization — through the full solve path (matrix
     MRU cache, configured preconditioner, escalation ladder), not a raw
     unpreconditioned CG on a privately rebuilt matrix *)
  let steady =
    Mesh.solve ~precond:(Mesh.precond_of_choice problem precond) problem
  in
  iterations := !iterations + steady.Mesh.cg_iterations;
  let steady_peak_k = Array.fold_left Float.max 0.0 steady.Mesh.temp in
  (* one shifted matrix assembled for the whole window; its multigrid
     hierarchy (when requested) is built on the shifted operator itself,
     with coarse levels rediscretizing G + C/dt at halved resolution *)
  let shifted, caps = shifted_matrix cfg ~extent ~material ~dt_s in
  let n = Sparse.dim shifted in
  let step_precond =
    match precond with
    | Mesh.Pc_jacobi -> Cg.Jacobi
    | Mesh.Pc_ssor omega -> Cg.Ssor omega
    | Mesh.Pc_mg ->
      let h =
        Multigrid.build ~fine:shifted ~nx:cfg.Mesh.nx ~ny:cfg.Mesh.ny
          ~nz:(Stack.num_layers cfg.Mesh.stack)
          ~assemble:(fun ~nx ~ny ->
              let coarse = { cfg with Mesh.nx; ny } in
              fst (shifted_matrix coarse ~extent ~material ~dt_s))
          ()
      in
      Cg.Multigrid h
  in
  let temp = ref (Array.make n 0.0) in
  let times = Array.make (steps + 1) 0.0 in
  let peaks = Array.make (steps + 1) 0.0 in
  for k = 1 to steps do
    let rhs =
      Array.init n (fun i -> p.(i) +. (caps.(i) /. dt_s *. !temp.(i)))
    in
    let sol =
      Cg.solve shifted ~b:rhs ~tol:1e-10 ~x0:!temp ~precond:step_precond
        ~label:"transient" ()
    in
    iterations := !iterations + sol.Cg.iterations;
    temp := sol.Cg.x;
    times.(k) <- float_of_int k *. dt_s;
    peaks.(k) <- Array.fold_left Float.max 0.0 !temp
  done;
  Obs.Metrics.count "thermal.transient.steps" ~by:steps;
  Obs.Metrics.observe "thermal.transient.iterations"
    (float_of_int !iterations);
  (* time to 63.2% of the steady peak, linear interpolation *)
  let target = 0.632 *. steady_peak_k in
  let tau =
    let rec find k =
      if k > steps then times.(steps) (* not reached within the window *)
      else if peaks.(k) >= target then begin
        (* A flat step — zero power map, or a response that saturated
           within one dt — has no slope to interpolate along; dividing by
           the zero rise would make tau NaN (0/0 when the target is also
           the flat value). The crossing is then at the step itself. *)
        let rise = peaks.(k) -. peaks.(k - 1) in
        if rise <= 0.0 then times.(k)
        else begin
          let frac = (target -. peaks.(k - 1)) /. rise in
          times.(k - 1) +. (frac *. (times.(k) -. times.(k - 1)))
        end
      end
      else find (k + 1)
    in
    find 1
  in
  { times_s = times; peak_rise_k = peaks; steady_peak_k; tau_63_s = tau;
    cg_iterations = !iterations }
