type t = {
  n : int;
  l : float array;  (* lower-triangular factor, row-major *)
}

let dim t = t.n

(* Standard Cholesky: A = L L^T, in-place on a dense copy. *)
let of_sparse m =
  Obs.Trace.with_span "thermal.dense.factorize" @@ fun () ->
  let n = Sparse.dim m in
  let a = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    Sparse.iter_row m i ~f:(fun j v -> a.((i * n) + j) <- v)
  done;
  for k = 0 to n - 1 do
    let akk = ref a.((k * n) + k) in
    for p = 0 to k - 1 do
      akk := !akk -. (a.((k * n) + p) *. a.((k * n) + p))
    done;
    if !akk <= 0.0 then failwith "Dense.of_sparse: not positive definite";
    let lkk = sqrt !akk in
    a.((k * n) + k) <- lkk;
    for i = k + 1 to n - 1 do
      let s = ref a.((i * n) + k) in
      for p = 0 to k - 1 do
        s := !s -. (a.((i * n) + p) *. a.((k * n) + p))
      done;
      a.((i * n) + k) <- !s /. lkk
    done
  done;
  { n; l = a }

let solve t b =
  let n = t.n in
  if Array.length b <> n then invalid_arg "Dense.solve: dimension mismatch";
  let y = Array.copy b in
  (* forward substitution L y = b *)
  for i = 0 to n - 1 do
    let s = ref y.(i) in
    for j = 0 to i - 1 do
      s := !s -. (t.l.((i * n) + j) *. y.(j))
    done;
    y.(i) <- !s /. t.l.((i * n) + i)
  done;
  (* backward substitution L^T x = y *)
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for j = i + 1 to n - 1 do
      s := !s -. (t.l.((j * n) + i) *. y.(j))
    done;
    y.(i) <- !s /. t.l.((i * n) + i)
  done;
  y
