(* FFT spectral transfer for the active layer. Layouts:

   - logical grids are nx x ny, x-major (Geo.Grid order);
   - everything lives on the 2n-per-axis *even half-sample extension*:
     ext[e] maps to tile e for e < n and to tile 2n-1-e for e >= n. The
     die's lateral walls are adiabatic by default, i.e. Neumann BC via
     half-sample reflection — exactly the symmetry of this extension —
     and the stack's lateral stencil is translation-invariant, so on the
     2n-periodic extension the power->temperature map is a genuine cyclic
     convolution and the FFT diagonalizes it *exactly*;
   - the kernel spectrum is not the FFT of the characterized response but
     its *deconvolution* by the impulse that produced it: a 1 W source in
     corner tile (0,0) extends to deltas at indices 0 and 2n-1 per axis,
     whose spectrum D(k) = 1 + e^{2 pi i k / 2n} vanishes only at k = n —
     a mode every even-extended field is identically zero in, so nothing
     is lost pinning the transfer to zero there. C = R_hat / D_hat is the
     exact discrete transfer function, and evaluation reproduces full
     MG-CG solves of the active layer to characterization tolerance;
   - the extension length 2n is even but rarely a power of two; the Fft
     module's Bluestein path handles every length, so no padding beyond
     2n is ever introduced (padding would break the exact cyclicity);
   - half-spectra are stored column-major, [kx * my + ky] with
     kx <= mx/2 = nx, so a column transform works on a contiguous
     slice. *)

type t = {
  b_nx : int;
  b_ny : int;
  b_extent : Geo.Rect.t;
  b_mx : int; (* 2 * nx *)
  b_my : int; (* 2 * ny *)
  b_hx : int; (* nx + 1: stored columns of the half-spectrum *)
  b_k_re : float array; (* transfer C = R_hat / D_hat, b_hx * b_my *)
  b_k_im : float array;
}

let nx t = t.b_nx
let ny t = t.b_ny
let extent t = t.b_extent

(* Even half-sample extension index [e] in [0, 2n) back to the logical
   tile it reflects: [0, n) is the die itself, [n, 2n) its mirror. *)
let mirror n e = if e < n then e else (2 * n) - 1 - e

let of_response ~response =
  let nx = Geo.Grid.nx response and ny = Geo.Grid.ny response in
  if nx < 2 || ny < 2 then invalid_arg "Blur.of_response: grid too small";
  let mx = 2 * nx and my = 2 * ny in
  let re = Array.make (mx * my) 0.0 in
  let im = Array.make (mx * my) 0.0 in
  for ey = 0 to my - 1 do
    for ex = 0 to mx - 1 do
      re.((ey * mx) + ex) <-
        Geo.Grid.get response ~ix:(mirror nx ex) ~iy:(mirror ny ey)
    done
  done;
  Fft.fft2 ~nx:mx ~ny:my ~re ~im;
  (* deconvolve by the corner impulse's spectrum, which separates per
     axis: a delta at tile 0 extends to deltas at indices 0 and m-1, so
     D(k) = 1 + e^{2 pi i k / m}. It vanishes only at k = m/2 (pinned to
     zero above); everywhere else the division recovers the exact
     single-source transfer. *)
  let axis m h =
    let d_re = Array.make h 0.0 and d_im = Array.make h 0.0 in
    for k = 0 to h - 1 do
      let a = 2.0 *. Float.pi *. float_of_int k /. float_of_int m in
      d_re.(k) <- 1.0 +. cos a;
      d_im.(k) <- sin a
    done;
    (d_re, d_im)
  in
  let hx = nx + 1 in
  let dx_re, dx_im = axis mx hx in
  let dy_re, dy_im = axis my my in
  let k_re = Array.make (hx * my) 0.0 in
  let k_im = Array.make (hx * my) 0.0 in
  for kx = 0 to hx - 1 do
    for ky = 0 to my - 1 do
      if kx <> nx && ky <> ny then begin
        let rr = re.((ky * mx) + kx) and ri = im.((ky * mx) + kx) in
        let dr =
          (dx_re.(kx) *. dy_re.(ky)) -. (dx_im.(kx) *. dy_im.(ky)) in
        let di =
          (dx_re.(kx) *. dy_im.(ky)) +. (dx_im.(kx) *. dy_re.(ky)) in
        let m2 = (dr *. dr) +. (di *. di) in
        k_re.((kx * my) + ky) <- ((rr *. dr) +. (ri *. di)) /. m2;
        k_im.((kx * my) + ky) <- ((ri *. dr) -. (rr *. di)) /. m2
      end
    done
  done;
  Obs.Metrics.count "thermal.blur.kernels";
  { b_nx = nx; b_ny = ny; b_extent = Geo.Grid.extent response;
    b_mx = mx; b_my = my; b_hx = hx; b_k_re = k_re; b_k_im = k_im }

(* Apply the transfer to the even-extended [power]; [emit] receives every
   output cell of the logical nx x ny window (extension indices < n). All
   scratch is local, so a shared [t] can be evaluated concurrently from
   pool workers. *)
let convolve t ~power ~emit =
  if Geo.Grid.nx power <> t.b_nx || Geo.Grid.ny power <> t.b_ny then
    invalid_arg "Blur: power grid dimensions mismatch";
  Obs.Trace.with_span "thermal.blur.eval" @@ fun () ->
  Obs.Metrics.count "thermal.blur.evals";
  let nx = t.b_nx and ny = t.b_ny in
  let mx = t.b_mx and my = t.b_my and hx = t.b_hx in
  let g_re = Array.make (hx * my) 0.0 in
  let g_im = Array.make (hx * my) 0.0 in
  let row_re = Array.make mx 0.0 in
  let row_im = Array.make mx 0.0 in
  (* forward rows over the 2*ny extended rows, two real rows per complex
     FFT: row y0 in the real part, row y1 in the imaginary part, unpacked
     for kx <= mx/2 via F0 = (C(k) + conj(C(-k)))/2,
     F1 = (C(k) - conj(C(-k)))/(2i). [my] is even, so rows always pair
     up. *)
  let y = ref 0 in
  while !y < my do
    let y0 = !y and y1 = !y + 1 in
    let sy0 = mirror ny y0 and sy1 = mirror ny y1 in
    for ex = 0 to mx - 1 do
      let sx = mirror nx ex in
      row_re.(ex) <- Geo.Grid.get power ~ix:sx ~iy:sy0;
      row_im.(ex) <- Geo.Grid.get power ~ix:sx ~iy:sy1
    done;
    Fft.fft ~re:row_re ~im:row_im;
    for kx = 0 to hx - 1 do
      let k' = if kx = 0 then 0 else mx - kx in
      let ar = row_re.(kx) and ai = row_im.(kx) in
      let br = row_re.(k') and bi = row_im.(k') in
      g_re.((kx * my) + y0) <- 0.5 *. (ar +. br);
      g_im.((kx * my) + y0) <- 0.5 *. (ai -. bi);
      g_re.((kx * my) + y1) <- 0.5 *. (ai +. bi);
      g_im.((kx * my) + y1) <- 0.5 *. (br -. ar)
    done;
    y := !y + 2
  done;
  (* forward columns over the half-spectrum, then pointwise transfer
     product, then inverse columns — all on contiguous slices *)
  let col_re = Array.make my 0.0 in
  let col_im = Array.make my 0.0 in
  for kx = 0 to hx - 1 do
    let off = kx * my in
    Array.blit g_re off col_re 0 my;
    Array.blit g_im off col_im 0 my;
    Fft.fft ~re:col_re ~im:col_im;
    for ky = 0 to my - 1 do
      let kr = t.b_k_re.(off + ky) and ki = t.b_k_im.(off + ky) in
      let xr = col_re.(ky) and xi = col_im.(ky) in
      col_re.(ky) <- (xr *. kr) -. (xi *. ki);
      col_im.(ky) <- (xr *. ki) +. (xi *. kr)
    done;
    Fft.ifft ~re:col_re ~im:col_im;
    Array.blit col_re 0 g_re off my;
    Array.blit col_im 0 g_im off my
  done;
  (* inverse rows, again two at a time: each output row has a
     row-Hermitian spectrum H(mx-kx, y) = conj(H(kx, y)), so
     C = H(., y0) + i H(., y1) inverts to h_y0 + i h_y1 with both rows
     real. Only the die's own block is needed: logical row y is extension
     row y, its x-samples extension columns 0..nx-1. *)
  let y = ref 0 in
  while !y < ny do
    let y0 = !y and y1 = !y + 1 in
    for kx = 0 to hx - 1 do
      let h0r = g_re.((kx * my) + y0) and h0i = g_im.((kx * my) + y0) in
      let h1r, h1i =
        if y1 < ny then (g_re.((kx * my) + y1), g_im.((kx * my) + y1))
        else (0.0, 0.0)
      in
      row_re.(kx) <- h0r -. h1i;
      row_im.(kx) <- h0i +. h1r;
      if kx > 0 && kx < mx - kx then begin
        (* mirror index mx - kx: conj(H0) + i conj(H1) *)
        row_re.(mx - kx) <- h0r +. h1i;
        row_im.(mx - kx) <- -.h0i +. h1r
      end
    done;
    Fft.ifft ~re:row_re ~im:row_im;
    for ix = 0 to nx - 1 do
      emit ~ix ~iy:y0 row_re.(ix);
      if y1 < ny then emit ~ix ~iy:y1 row_im.(ix)
    done;
    y := !y + 2
  done

let field t ~power =
  let out =
    Geo.Grid.of_function ~nx:t.b_nx ~ny:t.b_ny ~extent:t.b_extent
      ~f:(fun ~ix:_ ~iy:_ -> 0.0)
  in
  convolve t ~power ~emit:(fun ~ix ~iy v -> Geo.Grid.set out ~ix ~iy v);
  out

let peak ?correction t ~power =
  (match correction with
   | Some c ->
     if Geo.Grid.nx c <> t.b_nx || Geo.Grid.ny c <> t.b_ny then
       invalid_arg "Blur.peak: correction grid dimensions mismatch"
   | None -> ());
  let best = ref neg_infinity in
  let emit =
    match correction with
    | None -> fun ~ix:_ ~iy:_ v -> if v > !best then best := v
    | Some c ->
      fun ~ix ~iy v ->
        let v = v +. Geo.Grid.get c ~ix ~iy in
        if v > !best then best := v
  in
  convolve t ~power ~emit;
  !best
