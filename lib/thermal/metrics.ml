type t = {
  peak_rise_k : float;
  mean_rise_k : float;
  min_rise_k : float;
  gradient_k : float;
  hottest_tile : int * int;
}

let of_map g =
  let peak = Geo.Grid.max_value g in
  let low = Geo.Grid.min_value g in
  { peak_rise_k = peak;
    mean_rise_k = Geo.Grid.mean g;
    min_rise_k = low;
    gradient_k = peak -. low;
    hottest_tile = Geo.Grid.argmax g }

let reduction_pct ~before ~after =
  if before.peak_rise_k <= 0.0 then 0.0
  else 100.0 *. (before.peak_rise_k -. after.peak_rise_k) /. before.peak_rise_k

let gradient_reduction_pct ~before ~after =
  if before.gradient_k <= 0.0 then 0.0
  else 100.0 *. (before.gradient_k -. after.gradient_k) /. before.gradient_k

let to_json t =
  let ix, iy = t.hottest_tile in
  Obs.Json.Obj
    [ ("peak_rise_k", Obs.Json.Float t.peak_rise_k);
      ("mean_rise_k", Obs.Json.Float t.mean_rise_k);
      ("min_rise_k", Obs.Json.Float t.min_rise_k);
      ("gradient_k", Obs.Json.Float t.gradient_k);
      ("hottest_tile", Obs.Json.List [ Obs.Json.Int ix; Obs.Json.Int iy ]) ]

let pp ppf t =
  let ix, iy = t.hottest_tile in
  Format.fprintf ppf
    "peak %.3f K, mean %.3f K, min %.3f K, gradient %.3f K, hottest (%d,%d)"
    t.peak_rise_k t.mean_rise_k t.min_rise_k t.gradient_k ix iy
