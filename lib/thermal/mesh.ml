type config = {
  nx : int;
  ny : int;
  stack : Stack.t;
}

let default_config = { nx = 40; ny = 40; stack = Stack.default_9layer }

type problem = {
  p_config : config;
  p_extent : Geo.Rect.t;
  p_matrix : Sparse.t;
  p_rhs : float array;
  p_cold_iters : int option ref;
  (* iterations of the first cold solve of this matrix, shared across every
     problem built from the same cache entry: the baseline against which
     warm-start savings are measured *)
  p_mg : Multigrid.t option ref;
  (* lazily built multigrid hierarchy for this matrix, shared the same way
     so an optimizer run builds it once per cached mesh *)
  p_blur : Blur.t option ref;
  (* lazily characterized power-blurring kernel (unit-impulse response),
     shared across the cache entry so screening pays characterization once
     per (config, extent) *)
}

let matrix p = p.p_matrix
let rhs p = p.p_rhs
let config p = p.p_config
let extent p = p.p_extent

(* Same cached matrix (and MG hierarchy / blur kernel riding the cache
   entry), different right-hand side — the adjoint solve and the blur
   characterization both inject custom sources into the same operator. *)
let with_rhs p rhs =
  if Array.length rhs <> Array.length p.p_rhs then
    invalid_arg "Mesh.with_rhs: rhs dimension mismatch";
  { p with p_rhs = rhs }

let node_index cfg ~ix ~iy ~iz =
  assert (ix >= 0 && ix < cfg.nx && iy >= 0 && iy < cfg.ny
          && iz >= 0 && iz < Stack.num_layers cfg.stack);
  (((iz * cfg.ny) + iy) * cfg.nx) + ix

let um_to_m v = v *. 1.0e-6

(* Conductance between two stacked cells: half-cell resistances in series,
   each R = (thickness/2) / (k * A). *)
let vertical_conductance ~area_m2 (a : Stack.layer) (b : Stack.layer) =
  let r_half (l : Stack.layer) =
    um_to_m l.Stack.thickness_um /. 2.0
    /. (l.Stack.conductivity_w_mk *. area_m2)
  in
  1.0 /. (r_half a +. r_half b)

(* Lateral conductance inside one layer: uniform k, full cell pitch. *)
let lateral_conductance ~k ~cross_m2 ~pitch_m = k *. cross_m2 /. pitch_m

(* Conductance-matrix assembly. The matrix depends only on (config, extent)
   — power enters through the rhs alone — which is what makes the matrix
   cache below sound. *)
let assemble_builder cfg ~extent =
  let stack = cfg.stack in
  let nz = Stack.num_layers stack in
  let n = cfg.nx * cfg.ny * nz in
  let dx = um_to_m (Geo.Rect.width extent /. float_of_int cfg.nx) in
  let dy = um_to_m (Geo.Rect.height extent /. float_of_int cfg.ny) in
  let tile_area = dx *. dy in
  let b = Sparse.builder ~n in
  let couple i j g =
    Sparse.add b i i g;
    Sparse.add b j j g;
    Sparse.add b i j (-.g);
    Sparse.add b j i (-.g)
  in
  let ground i g = if g > 0.0 then Sparse.add b i i g in
  for iz = 0 to nz - 1 do
    let layer = stack.Stack.layers.(iz) in
    let dz = um_to_m layer.Stack.thickness_um in
    let k = layer.Stack.conductivity_w_mk in
    for iy = 0 to cfg.ny - 1 do
      for ix = 0 to cfg.nx - 1 do
        let i = node_index cfg ~ix ~iy ~iz in
        (* lateral east and north couplings (west/south added by peers) *)
        if ix + 1 < cfg.nx then
          couple i (node_index cfg ~ix:(ix + 1) ~iy ~iz)
            (lateral_conductance ~k ~cross_m2:(dy *. dz) ~pitch_m:dx);
        if iy + 1 < cfg.ny then
          couple i (node_index cfg ~ix ~iy:(iy + 1) ~iz)
            (lateral_conductance ~k ~cross_m2:(dx *. dz) ~pitch_m:dy);
        (* vertical coupling upward *)
        if iz + 1 < nz then
          couple i (node_index cfg ~ix ~iy ~iz:(iz + 1))
            (vertical_conductance ~area_m2:tile_area layer
               stack.Stack.layers.(iz + 1));
        (* boundary conductances to ambient *)
        if iz = 0 then ground i (stack.Stack.h_bottom_w_m2k *. tile_area);
        if iz = nz - 1 then ground i (stack.Stack.h_top_w_m2k *. tile_area);
        let h_side = stack.Stack.h_side_w_m2k in
        if h_side > 0.0 then begin
          if ix = 0 || ix = cfg.nx - 1 then ground i (h_side *. dy *. dz);
          if iy = 0 || iy = cfg.ny - 1 then ground i (h_side *. dx *. dz)
        end
      done
    done
  done;
  (b, n)

(* Fault-free assembly, used for the coarse multigrid operators: coarse
   levels are internal rediscretizations, so a Perturb_matrix fault must
   hit the fine system the caller actually solves, not be consumed (and
   possibly crash the coarse Cholesky) several levels down. *)
let assemble_raw cfg ~extent =
  let b, _n = assemble_builder cfg ~extent in
  Sparse.of_builder b

let assemble cfg ~extent =
  let b, n = assemble_builder cfg ~extent in
  (* fault hook: one asymmetric off-diagonal spike breaks SPD-ness, which
     the CG breakdown guards and Postplace.Checks must both catch *)
  if n > 1 && Robust.Faults.consume Robust.Faults.Perturb_matrix then
    Sparse.add b 0 1 1.0e9;
  Sparse.of_builder b

(* MRU cache of assembled matrices keyed by (config, extent), both plain
   structural data. An optimizer run or sweep rebuilds the same mesh for
   every candidate power map; only the rhs actually changes. *)
type cache_entry = {
  ce_matrix : Sparse.t;
  ce_cold_iters : int option ref;
  ce_mg : Multigrid.t option ref;
  ce_blur : Blur.t option ref;
}

(* Default of 8 slots covers the optimizer (one extent per inserted-row
   count) plus a package sweep; larger sweeps can widen it via
   [set_cache_capacity] / THERMOPLACE_CACHE_SLOTS now that an entry also
   carries the MG hierarchy and the blur kernel, both expensive to
   recharacterize after a thrash. *)
let cache_capacity_ref = ref 8
let cache_mutex = Mutex.create ()
let cache_entries : ((config * Geo.Rect.t) * cache_entry) list ref = ref []

let cache_capacity () = !cache_capacity_ref

let set_cache_capacity n =
  if n < 1 then invalid_arg "Mesh.set_cache_capacity: capacity must be >= 1";
  Mutex.protect cache_mutex (fun () ->
      cache_capacity_ref := n;
      let len = List.length !cache_entries in
      if len > n then begin
        cache_entries := List.filteri (fun i _ -> i < n) !cache_entries;
        Obs.Metrics.count "thermal.mesh.cache.evictions" ~by:(len - n)
      end)

let cache_clear () =
  Mutex.protect cache_mutex (fun () -> cache_entries := [])

let cache_lookup key =
  Mutex.protect cache_mutex (fun () ->
      match List.assoc_opt key !cache_entries with
      | Some e ->
        (* move to front *)
        cache_entries :=
          (key, e) :: List.filter (fun (k, _) -> k <> key) !cache_entries;
        Some e
      | None -> None)

let cache_insert key e =
  Mutex.protect cache_mutex (fun () ->
      match List.assoc_opt key !cache_entries with
      | Some existing -> existing (* a racing build won; reuse its entry *)
      | None ->
        let cap = !cache_capacity_ref in
        let len = List.length !cache_entries in
        let kept =
          List.filteri (fun i _ -> i < cap - 1) !cache_entries
        in
        if len > cap - 1 then
          Obs.Metrics.count "thermal.mesh.cache.evictions"
            ~by:(len - (cap - 1));
        cache_entries := (key, e) :: kept;
        e)

let cache_remove key =
  Mutex.protect cache_mutex (fun () ->
      cache_entries := List.filter (fun (k, _) -> k <> key) !cache_entries)

(* a deliberately wrong-sized entry, substituted on a cache hit by the
   [Stale_mesh_cache] fault to prove the defensive check below fires *)
let stale_probe () =
  let b = Sparse.builder ~n:1 in
  Sparse.add b 0 0 1.0;
  { ce_matrix = Sparse.of_builder b; ce_cold_iters = ref None;
    ce_mg = ref None; ce_blur = ref None }

let build ?(cache = true) cfg ~power =
  Obs.Trace.with_span "thermal.mesh.build" @@ fun () ->
  begin match Stack.validate cfg.stack with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Mesh.build: " ^ msg)
  end;
  if Geo.Grid.nx power <> cfg.nx || Geo.Grid.ny power <> cfg.ny then
    invalid_arg "Mesh.build: power grid dimensions mismatch";
  let extent = Geo.Grid.extent power in
  let n = cfg.nx * cfg.ny * Stack.num_layers cfg.stack in
  let entry =
    (* while a matrix-perturbation fault is armed the cache is bypassed in
       both directions: the poisoned matrix must not be published for later
       healthy builds, and a healthy cached matrix must not mask the fault *)
    if not cache || Robust.Faults.armed Robust.Faults.Perturb_matrix then
      { ce_matrix = assemble cfg ~extent; ce_cold_iters = ref None;
        ce_mg = ref None; ce_blur = ref None }
    else begin
      let key = (cfg, extent) in
      match cache_lookup key with
      | Some e ->
        let e =
          if Robust.Faults.consume Robust.Faults.Stale_mesh_cache then
            stale_probe ()
          else e
        in
        (* defensive hit validation: a stale or corrupted entry whose
           dimension disagrees with the requested mesh would crash deep
           inside CG (or worse, silently solve the wrong system) — evict
           and reassemble instead *)
        if Sparse.dim e.ce_matrix <> n then begin
          Obs.Metrics.count "thermal.mesh.cache.stale";
          Obs.Log.warn
            (Printf.sprintf
               "Mesh.build: cached matrix has dim %d, expected %d; evicting \
                and reassembling"
               (Sparse.dim e.ce_matrix) n);
          cache_remove key;
          cache_insert key
            { ce_matrix = assemble cfg ~extent; ce_cold_iters = ref None;
              ce_mg = ref None; ce_blur = ref None }
        end
        else begin
          Obs.Metrics.count "thermal.mesh.cache.hits";
          e
        end
      | None ->
        Obs.Metrics.count "thermal.mesh.cache.misses";
        (* assemble outside the cache lock; worst case two racing builds
           assemble the same matrix and one is dropped *)
        cache_insert key
          { ce_matrix = assemble cfg ~extent; ce_cold_iters = ref None;
            ce_mg = ref None; ce_blur = ref None }
    end
  in
  let rhs = Array.make n 0.0 in
  let zp = cfg.stack.Stack.power_layer in
  Geo.Grid.iteri power ~f:(fun ~ix ~iy w ->
      rhs.(node_index cfg ~ix ~iy ~iz:zp) <- w);
  { p_config = cfg; p_extent = extent; p_matrix = entry.ce_matrix;
    p_rhs = rhs; p_cold_iters = entry.ce_cold_iters;
    p_mg = entry.ce_mg; p_blur = entry.ce_blur }

let multigrid p =
  match !(p.p_mg) with
  | Some h when Multigrid.fine_dim h = Sparse.dim p.p_matrix -> h
  | _ ->
    let cfg = p.p_config in
    let h =
      Multigrid.build ~fine:p.p_matrix ~nx:cfg.nx ~ny:cfg.ny
        ~nz:(Stack.num_layers cfg.stack)
        ~assemble:(fun ~nx ~ny ->
            assemble_raw { cfg with nx; ny } ~extent:p.p_extent)
        ()
    in
    (* benign race: two domains may build concurrently and the later write
       wins, but both hierarchies come from the same matrix so either is
       valid (mirrors the matrix cache's assemble-outside-the-lock policy) *)
    p.p_mg := Some h;
    h

type precond_choice = Pc_jacobi | Pc_ssor of float | Pc_mg

let precond_choice_name = function
  | Pc_jacobi -> "jacobi"
  | Pc_ssor _ -> "ssor"
  | Pc_mg -> "mg"

let precond_of_choice p = function
  | Pc_jacobi -> Cg.Jacobi
  | Pc_ssor omega -> Cg.Ssor omega
  | Pc_mg -> Cg.Multigrid (multigrid p)

type solution = {
  config : config;
  extent : Geo.Rect.t;
  temp : float array;
  cg_iterations : int;
  cg_residual : float;
  cg_rungs : string list;
}

let solve_result ?(tol = Cg.default_tol) ?max_iter ?precond ?x0 p =
  Obs.Trace.with_span "thermal.solve" @@ fun () ->
  let esc =
    Cg.solve_escalating p.p_matrix ~b:p.p_rhs ~tol ?max_iter ?precond ?x0 ()
  in
  let outcome = esc.Cg.esc_outcome in
  match esc.Cg.esc_status with
  | Cg.Degraded ->
    Error
      (Robust.Error.Solver_diverged
         { residual = outcome.Cg.residual;
           iterations = outcome.Cg.iterations;
           rungs = "requested" :: esc.Cg.esc_rungs })
  | Cg.Clean | Cg.Recovered _ ->
    (match esc.Cg.esc_status with
     | Cg.Recovered rung ->
       Obs.Log.warn
         (Printf.sprintf "Mesh.solve: recovered via %s escalation rung" rung)
     | _ -> ());
    (* warm-start bookkeeping only applies to clean solves: a recovered
       rung ran cold under a different configuration, so comparing its
       iteration count against the cold baseline would be meaningless *)
    (match esc.Cg.esc_status, x0, !(p.p_cold_iters) with
     | Cg.Clean, None, None -> p.p_cold_iters := Some outcome.Cg.iterations
     | Cg.Clean, Some _, Some cold ->
       Obs.Metrics.observe "thermal.mesh.warm.saved_iterations"
         (float_of_int (cold - outcome.Cg.iterations))
     | _ -> ());
    Ok { config = p.p_config; extent = p.p_extent; temp = outcome.Cg.x;
         cg_iterations = outcome.Cg.iterations;
         cg_residual = outcome.Cg.residual;
         cg_rungs = esc.Cg.esc_rungs }

let solve ?tol ?max_iter ?precond ?x0 p =
  match solve_result ?tol ?max_iter ?precond ?x0 p with
  | Ok s -> s
  | Error e -> Robust.Error.raise_ e

let layer_grid s ~iz =
  let cfg = s.config in
  Geo.Grid.of_function ~nx:cfg.nx ~ny:cfg.ny ~extent:s.extent
    ~f:(fun ~ix ~iy -> s.temp.(node_index cfg ~ix ~iy ~iz))

let active_layer_grid s =
  layer_grid s ~iz:s.config.stack.Stack.power_layer

(* Characterization tolerance: the transfer deconvolved from this solve
   is *exact* for the discrete operator (the lateral stencil is
   translation-invariant with adiabatic walls), so solver error is the
   only error screening estimates inherit — solve the impulse tight and
   the kernel repays it across thousands of evaluations. *)
let blur_tol = 1e-10

let blur ?(precond = Pc_mg) p =
  let cfg = p.p_config in
  match !(p.p_blur) with
  | Some b when Blur.nx b = cfg.nx && Blur.ny b = cfg.ny -> b
  | _ ->
    Obs.Trace.with_span "thermal.blur.characterize" @@ fun () ->
    let n = Array.length p.p_rhs in
    let rhs = Array.make n 0.0 in
    (* corner tile: its extension images sit at indices 0 and 2n-1 per
       axis, whose spectrum never vanishes on an informative mode — see
       Blur.of_response. (A center impulse would zero out near half the
       spectrum and make the deconvolution singular.) *)
    rhs.(node_index cfg ~ix:0 ~iy:0 ~iz:cfg.stack.Stack.power_layer) <- 1.0;
    let ip = { p with p_rhs = rhs } in
    (* the explicit zero x0 is numerically a cold start but keeps the
       impulse solve out of the warm-start bookkeeping: its iteration
       count must not become the cache entry's cold baseline *)
    let solution =
      solve ~tol:blur_tol ~precond:(precond_of_choice ip precond)
        ~x0:(Array.make n 0.0) ip
    in
    let b = Blur.of_response ~response:(active_layer_grid solution) in
    (* benign race, same policy as [multigrid]: concurrent characterizers
       derive the kernel from the same matrix, so the last write wins and
       either kernel is valid *)
    p.p_blur := Some b;
    b
