(** Transient thermal analysis (backward Euler on the full RC network).

    The paper argues for steady-state analysis: "the thermal time constant
    is in the order of tens of milliseconds, which is much larger than the
    clock periods in nanoseconds... we can neglect transient currents and
    solve the equation at the steady state". This module keeps the
    capacitors the steady-state solve discards and integrates
    [C dT/dt + G T = P], so that claim can be *checked* instead of assumed:
    the step-response time constant of the default stack comes out at tens
    of microseconds to milliseconds, 10^4-10^7 clock cycles at 1 GHz. *)

type material = {
  volumetric_heat_j_m3k : float;
  (** volumetric heat capacity rho*c_p; silicon ~1.6e6 J/(m^3 K) *)
}

val default_capacitance : material
(** A single effective volumetric heat capacity for all layers (the layer
    thicknesses already dominate the per-layer differences). *)

type response = {
  times_s : float array;        (** sample instants *)
  peak_rise_k : float array;    (** peak rise at each instant *)
  steady_peak_k : float;        (** the steady-state solve's peak *)
  tau_63_s : float;             (** time to reach 63.2% of steady peak *)
  cg_iterations : int;
  (** total CG iterations across the steady solve and every implicit
      step — the regression guard for the preconditioned solve path *)
}

val step_response :
  Mesh.config -> power:Geo.Grid.t -> ?material:material -> ?dt_s:float ->
  ?steps:int -> ?precond:Mesh.precond_choice -> unit -> response
(** Apply the power map as a step at t=0 from ambient and integrate.
    Defaults: [dt_s] 2e-6, [steps] 60 (covering ~0.12 ms), [precond]
    [Pc_ssor 1.2].

    The steady-state normalization solve goes through {!Mesh.solve} —
    matrix MRU cache, configured preconditioner (multigrid hierarchy
    included) and the escalation ladder — instead of a raw
    unpreconditioned CG on a privately assembled matrix. Each implicit
    step solves [(G + C/dt) T' = P + (C/dt) T] against one shifted
    matrix assembled once for the whole window, preconditioned per
    [?precond]; [Pc_mg] builds a dedicated multigrid hierarchy on the
    shifted operator (coarse levels rediscretize [G + C/dt], not [G]).
    Step solves warm-start from the previous instant and are labelled
    ["transient"] in the CG history ring. Counters:
    [thermal.transient.steps] and [thermal.transient.iterations]. *)
