(* Adjoint sensitivity of a smoothed peak-temperature objective.

   The steady-state solve is linear, G T = P, with G symmetric positive
   definite. For any differentiable objective f(T), the chain rule gives
   df/dP = G^-T (df/dT) = G^-1 (df/dT) — the transpose solve IS a plain
   solve because G is self-adjoint — so the full per-tile sensitivity map
   costs exactly one extra CG solve, sharing the cached matrix, multigrid
   hierarchy and warm starts of the forward path.

   The objective is a log-sum-exp smoothing of the active-layer peak:

     f(T) = (1/beta) log sum_i exp(beta T_i)   over active-layer nodes

   which upper-bounds the true peak, converges to it as beta grows, and
   has the softmax weights as its gradient — a probability distribution
   concentrated on the hottest tiles, so the adjoint source is localized
   exactly where whitespace buys temperature. *)

let default_sharpness = 4.0

type t = {
  forward : Mesh.solution;
  sharpness : float;
  peak_rise_k : float;
  smoothed_peak_k : float;
  lambda : float array;
  sensitivity : Geo.Grid.t;
  cg_iterations : int;
}

(* Stabilized log-sum-exp over the active layer of a solution's field. *)
let smoothed_peak ~sharpness (s : Mesh.solution) =
  if not (Float.is_finite sharpness) || sharpness <= 0.0 then
    invalid_arg "Adjoint.smoothed_peak: sharpness must be positive";
  let cfg = s.Mesh.config in
  let zp = cfg.Mesh.stack.Stack.power_layer in
  let tmax = ref neg_infinity in
  for iy = 0 to cfg.Mesh.ny - 1 do
    for ix = 0 to cfg.Mesh.nx - 1 do
      let v = s.Mesh.temp.(Mesh.node_index cfg ~ix ~iy ~iz:zp) in
      if v > !tmax then tmax := v
    done
  done;
  let sum = ref 0.0 in
  for iy = 0 to cfg.Mesh.ny - 1 do
    for ix = 0 to cfg.Mesh.nx - 1 do
      let v = s.Mesh.temp.(Mesh.node_index cfg ~ix ~iy ~iz:zp) in
      sum := !sum +. exp (sharpness *. (v -. !tmax))
    done
  done;
  !tmax +. (log !sum /. sharpness)

let solve_result ?(tol = Cg.default_tol) ?(sharpness = default_sharpness)
    ?precond ?x0 ?forward p =
  Obs.Trace.with_span "thermal.adjoint.solve" @@ fun () ->
  if not (Float.is_finite sharpness) || sharpness <= 0.0 then
    invalid_arg "Adjoint.solve: sharpness must be positive";
  let n = Array.length (Mesh.rhs p) in
  let fwd =
    match forward with
    | Some (s : Mesh.solution) ->
      if Array.length s.Mesh.temp <> n then
        invalid_arg "Adjoint.solve: forward solution does not match problem";
      Ok s
    | None -> Mesh.solve_result ~tol ?precond p
  in
  match fwd with
  | Error e -> Error e
  | Ok fwd ->
    let cfg = Mesh.config p in
    let zp = cfg.Mesh.stack.Stack.power_layer in
    let peak_rise_k = ref neg_infinity in
    for iy = 0 to cfg.Mesh.ny - 1 do
      for ix = 0 to cfg.Mesh.nx - 1 do
        let v = fwd.Mesh.temp.(Mesh.node_index cfg ~ix ~iy ~iz:zp) in
        if v > !peak_rise_k then peak_rise_k := v
      done
    done;
    let sum = ref 0.0 in
    for iy = 0 to cfg.Mesh.ny - 1 do
      for ix = 0 to cfg.Mesh.nx - 1 do
        let v = fwd.Mesh.temp.(Mesh.node_index cfg ~ix ~iy ~iz:zp) in
        sum := !sum +. exp (sharpness *. (v -. !peak_rise_k))
      done
    done;
    let smoothed_peak_k = !peak_rise_k +. (log !sum /. sharpness) in
    (* adjoint source: df/dT = softmax weights on the active layer, zero
       on every other node *)
    let rhs = Array.make n 0.0 in
    for iy = 0 to cfg.Mesh.ny - 1 do
      for ix = 0 to cfg.Mesh.nx - 1 do
        let node = Mesh.node_index cfg ~ix ~iy ~iz:zp in
        rhs.(node) <-
          exp (sharpness *. (fwd.Mesh.temp.(node) -. !peak_rise_k)) /. !sum
      done
    done;
    (match Mesh.solve_result ~tol ?precond ?x0 (Mesh.with_rhs p rhs) with
     | Error e -> Error e
     | Ok adj ->
       (* power enters the rhs with unit coefficient at the power-layer
          node of its tile, so lambda restricted to that layer IS the
          per-tile df/d(W injected) map — in K/W *)
       let sensitivity = Mesh.active_layer_grid adj in
       Obs.Metrics.count "thermal.adjoint.solves";
       Obs.Metrics.observe "thermal.adjoint.iterations"
         (float_of_int adj.Mesh.cg_iterations);
       Obs.Metrics.observe "thermal.adjoint.peak_sensitivity_k_per_w"
         (Geo.Grid.max_value sensitivity);
       Obs.Metrics.observe "thermal.adjoint.smoothing_gap_k"
         (smoothed_peak_k -. !peak_rise_k);
       Ok
         { forward = fwd; sharpness; peak_rise_k = !peak_rise_k;
           smoothed_peak_k; lambda = adj.Mesh.temp; sensitivity;
           cg_iterations = adj.Mesh.cg_iterations })

let solve ?tol ?sharpness ?precond ?x0 ?forward p =
  match solve_result ?tol ?sharpness ?precond ?x0 ?forward p with
  | Ok a -> a
  | Error e -> Robust.Error.raise_ e
