(* The conductance matrix stores, per row i: the diagonal (the sum of every
   conductance touching node i) and one negative offdiagonal -g_ij per
   neighbour. The grounded (boundary-to-ambient) conductance of node i is
   therefore diag(i) + sum of its (negative) offdiagonals. Expressing
   temperatures as rises over ambient turns the ambient voltage sources of
   the paper's netlist into plain ground, so the export is resistors,
   grounded resistors and current sources only. *)

let to_string ?(title = "thermoplace thermal network (steady state)")
    problem =
  Obs.Trace.with_span "thermal.spice.export" @@ fun () ->
  let m = Mesh.matrix problem in
  let rhs = Mesh.rhs problem in
  let n = Sparse.dim m in
  let buf = Buffer.create (n * 64) in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "* %s\n" title;
  pr "* nodes: %d; V = temperature rise [K], I = power [W], R = [K/W]\n" n;
  for i = 0 to n - 1 do
    let ground = ref 0.0 in
    Sparse.iter_row m i ~f:(fun j v ->
        ground := !ground +. v;
        (* emit each coupling once, from the lower-numbered node *)
        if j > i && v < 0.0 then
          pr "R%d_%d n%d n%d %.9g\n" i j i j (1.0 /. -.v));
    if !ground > 1e-15 then pr "RG%d n%d 0 %.9g\n" i i (1.0 /. !ground)
  done;
  Array.iteri
    (fun i w -> if w <> 0.0 then pr "I%d 0 n%d %.9g\n" i i w)
    rhs;
  pr ".op\n.end\n";
  Buffer.contents buf

let count_resistors problem =
  let s = to_string problem in
  let count = ref 0 in
  String.split_on_char '\n' s
  |> List.iter (fun line ->
      if String.length line > 0 && line.[0] = 'R' then incr count);
  !count

let write_file path ?title problem =
  let oc = open_out path in
  (try output_string oc (to_string ?title problem)
   with e -> close_out oc; raise e);
  close_out oc
