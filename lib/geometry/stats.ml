let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let variance a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
    acc /. float_of_int n
  end

let stddev a = sqrt (variance a)

let percentile a p =
  if Array.length a = 0 then invalid_arg "Stats.percentile: empty array";
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Stats.percentile: p out of range";
  (* Polymorphic [compare] orders NaN below every float, so a NaN in the
     input used to silently shift every order statistic instead of
     failing; order statistics of non-finite data are meaningless, so
     reject them loudly. *)
  Array.iter
    (fun x ->
       if not (Float.is_finite x) then
         invalid_arg "Stats.percentile: non-finite input")
    a;
  let sorted = Array.copy a in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let minimum a = Array.fold_left Float.min infinity a
let maximum a = Array.fold_left Float.max neg_infinity a

let histogram a ~bins =
  if Array.length a = 0 then invalid_arg "Stats.histogram: empty array";
  if bins <= 0 then invalid_arg "Stats.histogram: bins <= 0";
  let lo = minimum a and hi = maximum a in
  let span = if hi > lo then hi -. lo else 1.0 in
  let counts = Array.make bins 0 in
  let deposit x =
    let i = int_of_float (float_of_int bins *. (x -. lo) /. span) in
    let i = min (bins - 1) (max 0 i) in
    counts.(i) <- counts.(i) + 1
  in
  Array.iter deposit a;
  Array.init bins (fun i ->
      (lo +. (span *. float_of_int i /. float_of_int bins), counts.(i)))
