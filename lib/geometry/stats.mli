(** Small descriptive-statistics helpers shared by the experiment reports. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val variance : float array -> float
(** Population variance; 0 on arrays shorter than 2. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,1\]], linear interpolation between order
    statistics. Sorts with [Float.compare], and raises [Invalid_argument] on
    the empty array, on a non-finite [p], or on any non-finite element — a
    NaN would otherwise sort to a stable but meaningless position and
    silently shift every order statistic. *)

val minimum : float array -> float
val maximum : float array -> float

val histogram : float array -> bins:int -> (float * int) array
(** [histogram a ~bins] returns [(left_edge, count)] per bin over the data
    range. Raises [Invalid_argument] on the empty array or [bins <= 0]. *)
