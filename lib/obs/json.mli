(** Minimal JSON values, printing and parsing — no external dependencies.

    The observability subsystem serializes run reports with this module and
    the test-suite/smoke checks parse them back; implementing both directions
    here keeps the repo free of a yojson dependency while guaranteeing the
    emitted reports are machine-readable. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Compact by default; [~pretty:true] indents with two spaces. Non-finite
    floats (which JSON has no number form for) are emitted as the string
    sentinels ["nan"] / ["inf"] / ["-inf"], which {!to_float} decodes
    back — so every [Float] round-trips through print-and-parse (the
    checkpoint codec relies on this; a plain [null] would silently lose
    the value). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed). Numbers must
    match the strict JSON grammar — no leading ["+"], no bare trailing
    dot (["1.e5"]), no leading zeros; those without a fraction or
    exponent part parse as [Int] when they fit, [Float] otherwise;
    [\uXXXX] escapes decode to UTF-8. *)

val of_string_exn : string -> t
(** Like {!of_string}; raises [Failure] on a parse error. *)

(** {1 Accessors} — all return [None] on a type or key mismatch. *)

val member : string -> t -> t option

val to_float : t -> float option
(** Accepts [Int], [Float] and the non-finite sentinel strings ["nan"] /
    ["inf"] / ["-inf"] emitted by {!to_string}. *)

val to_int : t -> int option
val to_list : t -> t list option
val to_string_opt : t -> string option
val keys : t -> string list
(** Keys of an object, in order; [[]] for non-objects. *)
