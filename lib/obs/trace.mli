(** Nested wall-clock timing spans with a zero-cost disabled path.

    Disabled (the default), {!with_span} is a single flag check around the
    wrapped function — safe to leave in hot paths. Enabled, each span
    records its wall-clock start and duration and nests under the
    lexically-enclosing span, producing a tree that shows where a run's
    time went. *)

type span = {
  name : string;
  start_s : float;     (** seconds since {!reset} (or first enable) *)
  duration_s : float;
  children : span list;  (** in execution order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans and restart the trace clock. Does not change
    the enabled flag. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when tracing is enabled, records a
    span named [name] covering the call, nested under the currently open
    span. Exception-safe: the span closes even if [f] raises. *)

val roots : unit -> span list
(** Completed top-level spans, in execution order. A span still open (e.g.
    inspected from inside {!with_span}) is not included. *)

val span_count : unit -> int
(** Total number of completed spans in the tree. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented tree: one line per span with its duration in ms and its share
    of the parent's time. *)

val to_json : unit -> Json.t
(** The span forest as a JSON list of
    [{"name", "start_s", "duration_s", "children"}] objects. *)
