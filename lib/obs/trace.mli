(** Cross-domain wall-clock timing spans with a zero-cost disabled path.

    Disabled (the default), {!with_span} is a single flag check around the
    wrapped function — safe to leave in hot paths. Enabled, each span
    records its monotonic start and duration (see {!Clock}: never
    negative even across wall-clock steps), the {!Gc.quick_stat} delta
    over the call (allocation, collection counts) and any per-span
    metrics attached with {!add_metric}, and nests under the
    lexically-enclosing span of the {e same domain}.

    Every domain records into its own lock-free buffer ({!Parallel.Pool}
    workers register theirs on spawn; any other domain registers lazily
    on first use), so spans opened inside pooled chunks are kept, not
    dropped. {!roots} shows the calling domain's forest; {!all_roots},
    {!pp_tree}, {!to_json} and {!Perfetto.of_trace} merge every domain's
    buffer, tagging spans with their domain id ([tid]). *)

type gc_delta = {
  minor_words : float;
  major_words : float;    (** words allocated directly on the major heap *)
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

type span = {
  name : string;
  start_s : float;     (** seconds since {!reset} (or first enable) *)
  duration_s : float;
  tid : int;           (** id of the domain that recorded the span *)
  gc : gc_delta;       (** GC activity during the span (children included) *)
  metrics : (string * float) list;
  (** values attached with {!add_metric} while the span was open *)
  children : span list;  (** in execution order *)
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded spans — on every registered domain — and restart
    the trace clock. Does not change the enabled flag. Must not race
    traced work on other domains (call it between runs, with the pool
    idle). *)

val register_domain : unit -> unit
(** Create and register the calling domain's span buffer eagerly.
    Recording would register it lazily anyway; {!Parallel.Pool} workers
    call this on spawn so a trace export can account for every worker. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when tracing is enabled, records a
    span named [name] covering the call, nested under the currently open
    span of the calling domain. Exception-safe: the span closes even if
    [f] raises. If frames opened inside [f] were abandoned (their cleanup
    skipped by a non-local exit, e.g. an effect handler dropping the
    continuation), their completed children are reparented to this span
    rather than discarded. *)

val add_metric : string -> float -> unit
(** Attach a named value to the innermost open span of the calling
    domain (e.g. solver iterations, bytes written). No-op when tracing
    is disabled or no span is open. *)

val roots : unit -> span list
(** Completed top-level spans of the {e calling domain}, in execution
    order. A span still open is not included. *)

val all_roots : unit -> (int * span list) list
(** Every domain's completed top-level forest, sorted by domain id;
    domains that recorded nothing are omitted. *)

val span_count : unit -> int
(** Total number of completed spans across all domains. *)

val pp_tree : Format.formatter -> unit -> unit
(** Indented tree: one line per span with its duration in ms, its share
    of the parent's time and its allocation (minor + major words). With
    spans from more than one domain, each domain's forest is printed
    under a [-- domain N --] header. *)

val to_json : unit -> Json.t
(** The merged span forest as a JSON list of
    [{"name", "start_s", "duration_s", "tid", "gc", "metrics",
      "children"}] objects, grouped by domain in tid order. *)
