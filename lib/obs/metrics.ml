type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
  samples : float list;
  dropped : int;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

type series = {
  name : string;
  labels : (string * string) list;
  value : value;
}

(* mutable in-registry representation *)
type cell =
  | C_counter of int ref
  | C_gauge of float ref
  | C_hist of hist_state

(* Samples beyond the cap are kept via reservoir sampling (Algorithm R):
   after n observations each one is retained with probability cap/n, so
   the retained set is an unbiased sample of the whole stream and the
   percentiles computed from it do not suffer the first-N truncation
   bias (a stream whose values drift would otherwise report only its
   opening regime). The RNG is a splitmix64 stream seeded from the
   series key (metric name + labels), so runs are reproducible per
   series and independent of registration order. *)
and hist_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_last : float;
  h_samples : float array;  (* reservoir; first h_len entries live *)
  mutable h_len : int;
  mutable h_rng : int64;
}

let max_samples = 4096

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* --- labels -------------------------------------------------------------- *)

(* Labels are canonicalized (sorted by key) on every recording call so
   [("a","1");("b","2")] and [("b","2");("a","1")] address the same
   series. Duplicate label keys would render an invalid Prometheus
   exposition, so they are rejected at the recording site. *)
let canon_labels = function
  | [] -> []
  | labels ->
    let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
    let rec check = function
      | (a, _) :: ((b, _) :: _ as rest) ->
        if a = b then
          invalid_arg
            (Printf.sprintf "Obs.Metrics: duplicate label key %S" a);
        check rest
      | _ -> ()
    in
    check sorted;
    sorted

(* Prometheus label-value escaping: backslash, double-quote and newline
   are the three characters the text exposition format escapes. The same
   rendering doubles as the series key in {!to_json} output. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '\\' -> Buffer.add_string buf "\\\\"
       | '"' -> Buffer.add_string buf "\\\""
       | '\n' -> Buffer.add_string buf "\\n"
       | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_label_value s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else if s.[i] = '\\' then
      if i + 1 >= n then None
      else begin
        (match s.[i + 1] with
         | '\\' -> Buffer.add_char buf '\\'
         | '"' -> Buffer.add_char buf '"'
         | 'n' -> Buffer.add_char buf '\n'
         | _ -> raise Exit);
        go (i + 2)
      end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  try go 0 with Exit -> None

let series_key name labels =
  match labels with
  | [] -> name
  | labels ->
    let parts =
      List.map
        (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
        labels
    in
    name ^ "{" ^ String.concat "," parts ^ "}"

(* The registry is shared across domains (solver chunks, parallel sweep
   points); one mutex around every access keeps recording race-free.
   Recording stays per-event (never per-element), so the lock is cold.
   Keys are (name, canonical labels); a separate name -> kind table
   enforces one metric type per name across all label sets, which the
   Prometheus exporter's one-TYPE-line-per-name output relies on. *)
let registry_mutex = Mutex.create ()
let registry : (string * (string * string) list, cell) Hashtbl.t =
  Hashtbl.create 64
let name_kinds : (string, string) Hashtbl.t = Hashtbl.create 64

let locked f = Mutex.protect registry_mutex f

let reset () =
  locked (fun () ->
      Hashtbl.reset registry;
      Hashtbl.reset name_kinds)

let check_kind name kind =
  match Hashtbl.find_opt name_kinds name with
  | None -> Hashtbl.replace name_kinds name kind
  | Some k when k = kind -> ()
  | Some k ->
    invalid_arg
      (Printf.sprintf
         "Obs.Metrics: %S already registered as a %s (expected %s)" name k
         kind)

(* --- deterministic per-series RNG ---------------------------------------- *)

let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
       h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c)))
           0x100000001B3L)
    s;
  !h

(* one splitmix64 step: returns (output, next state) *)
let splitmix64 state =
  let open Int64 in
  let state = add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (logxor z (shift_right_logical z 31), state)

(* uniform-enough draw in [0, n): the modulo bias over a 63-bit range is
   immaterial for sampling decisions *)
let rand_below state n =
  let out, state = splitmix64 state in
  (Int64.to_int (Int64.rem (Int64.shift_right_logical out 1)
                   (Int64.of_int n)),
   state)

(* ------------------------------------------------------------------------ *)

let count ?(by = 1) ?(labels = []) name =
  if !enabled_flag then begin
    let labels = canon_labels labels in
    locked (fun () ->
        match Hashtbl.find_opt registry (name, labels) with
        | Some (C_counter r) -> r := !r + by
        | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another type \
                (expected counter)" name)
        | None ->
          check_kind name "counter";
          Hashtbl.replace registry (name, labels) (C_counter (ref by)))
  end

let gauge ?(labels = []) name v =
  if !enabled_flag then begin
    let labels = canon_labels labels in
    locked (fun () ->
        match Hashtbl.find_opt registry (name, labels) with
        | Some (C_gauge r) -> r := v
        | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another type \
                (expected gauge)" name)
        | None ->
          check_kind name "gauge";
          Hashtbl.replace registry (name, labels) (C_gauge (ref v)))
  end

let observe ?(labels = []) name v =
  if !enabled_flag then begin
    let labels = canon_labels labels in
    locked (fun () ->
        match Hashtbl.find_opt registry (name, labels) with
        | Some (C_hist h) ->
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v;
          h.h_last <- v;
          if h.h_len < max_samples then begin
            h.h_samples.(h.h_len) <- v;
            h.h_len <- h.h_len + 1
          end
          else begin
            let j, rng = rand_below h.h_rng h.h_count in
            h.h_rng <- rng;
            if j < max_samples then h.h_samples.(j) <- v
          end
        | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %S already registered with another type \
                (expected histogram)" name)
        | None ->
          check_kind name "histogram";
          let h =
            { h_count = 1; h_sum = v; h_min = v; h_max = v; h_last = v;
              h_samples = Array.make max_samples 0.0; h_len = 1;
              h_rng = fnv1a64 (series_key name labels) }
          in
          h.h_samples.(0) <- v;
          Hashtbl.replace registry (name, labels) (C_hist h))
  end

let freeze_hist h =
  { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
    last = h.h_last;
    samples = Array.to_list (Array.sub h.h_samples 0 h.h_len);
    dropped = h.h_count - h.h_len }

let counter_value ?(labels = []) name =
  let labels = canon_labels labels in
  locked (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some (C_counter r) -> Some !r
      | _ -> None)

let gauge_value ?(labels = []) name =
  let labels = canon_labels labels in
  locked (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some (C_gauge r) -> Some !r
      | _ -> None)

let histogram ?(labels = []) name =
  let labels = canon_labels labels in
  locked (fun () ->
      match Hashtbl.find_opt registry (name, labels) with
      | Some (C_hist h) -> Some (freeze_hist h)
      | _ -> None)

let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

(* Nearest-rank percentile over the retained reservoir. *)
let percentile h q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Obs.Metrics.percentile: q not in [0,1]";
  match h.samples with
  | [] -> Float.nan
  | samples ->
    let a = Array.of_list samples in
    Array.sort compare a;
    let n = Array.length a in
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun (name, labels) cell acc ->
           let value =
             match cell with
             | C_counter r -> Counter !r
             | C_gauge r -> Gauge !r
             | C_hist h -> Histogram (freeze_hist h)
           in
           { name; labels; value } :: acc)
        registry [])
  |> List.sort (fun a b -> compare (a.name, a.labels) (b.name, b.labels))

let json_of_value ~samples v =
  let fields =
    match v with
    | Counter n ->
      [ ("type", Json.String "counter"); ("value", Json.Int n) ]
    | Gauge g ->
      [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
    | Histogram h ->
      [ ("type", Json.String "histogram");
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ("min", Json.Float h.min);
        ("max", Json.Float h.max);
        ("mean", Json.Float (mean h));
        ("p50", Json.Float (percentile h 0.50));
        ("p90", Json.Float (percentile h 0.90));
        ("p99", Json.Float (percentile h 0.99));
        ("last", Json.Float h.last) ]
      @ (if samples then
           [ ("samples",
              Json.List (List.map (fun s -> Json.Float s) h.samples)) ]
         else [])
      @ [ ("dropped", Json.Int h.dropped) ]
  in
  Json.Obj fields

let registry_json ~samples () =
  Json.Obj
    (List.map
       (fun s -> (series_key s.name s.labels, json_of_value ~samples s.value))
       (snapshot ()))

let to_json () = registry_json ~samples:true ()
let summary_json () = registry_json ~samples:false ()
