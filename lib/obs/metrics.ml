type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
  samples : float list;
  dropped : int;
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

(* mutable in-registry representation; histograms keep samples reversed *)
type cell =
  | C_counter of int ref
  | C_gauge of float ref
  | C_hist of hist_state

and hist_state = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_last : float;
  mutable h_rev_samples : float list;
  mutable h_dropped : int;
}

let max_samples = 4096

let enabled_flag = ref true
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

(* The registry is shared across domains (solver chunks, parallel sweep
   points); one mutex around every access keeps recording race-free.
   Recording stays per-event (never per-element), so the lock is cold. *)
let registry_mutex = Mutex.create ()
let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

let locked f = Mutex.protect registry_mutex f

let reset () = locked (fun () -> Hashtbl.reset registry)

let type_error name expected =
  invalid_arg
    (Printf.sprintf "Obs.Metrics: %S already registered with another type \
                     (expected %s)"
       name expected)

let count ?(by = 1) name =
  if !enabled_flag then
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (C_counter r) -> r := !r + by
        | Some _ -> type_error name "counter"
        | None -> Hashtbl.replace registry name (C_counter (ref by)))

let gauge name v =
  if !enabled_flag then
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (C_gauge r) -> r := v
        | Some _ -> type_error name "gauge"
        | None -> Hashtbl.replace registry name (C_gauge (ref v)))

let observe name v =
  if !enabled_flag then
    locked (fun () ->
        match Hashtbl.find_opt registry name with
        | Some (C_hist h) ->
          h.h_count <- h.h_count + 1;
          h.h_sum <- h.h_sum +. v;
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v;
          h.h_last <- v;
          if h.h_count - h.h_dropped <= max_samples then
            h.h_rev_samples <- v :: h.h_rev_samples
          else h.h_dropped <- h.h_dropped + 1
        | Some _ -> type_error name "histogram"
        | None ->
          Hashtbl.replace registry name
            (C_hist
               { h_count = 1; h_sum = v; h_min = v; h_max = v; h_last = v;
                 h_rev_samples = [ v ]; h_dropped = 0 }))

let freeze_hist h =
  { count = h.h_count; sum = h.h_sum; min = h.h_min; max = h.h_max;
    last = h.h_last; samples = List.rev h.h_rev_samples;
    dropped = h.h_dropped }

let counter_value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C_counter r) -> Some !r
      | _ -> None)

let gauge_value name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C_gauge r) -> Some !r
      | _ -> None)

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (C_hist h) -> Some (freeze_hist h)
      | _ -> None)

let mean h = if h.count = 0 then 0.0 else h.sum /. float_of_int h.count

let snapshot () =
  locked (fun () ->
      Hashtbl.fold
        (fun name cell acc ->
           let v =
             match cell with
             | C_counter r -> Counter !r
             | C_gauge r -> Gauge !r
             | C_hist h -> Histogram (freeze_hist h)
           in
           (name, v) :: acc)
        registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json () =
  Json.Obj
    (List.map
       (fun (name, v) ->
          let fields =
            match v with
            | Counter n ->
              [ ("type", Json.String "counter"); ("value", Json.Int n) ]
            | Gauge g ->
              [ ("type", Json.String "gauge"); ("value", Json.Float g) ]
            | Histogram h ->
              [ ("type", Json.String "histogram");
                ("count", Json.Int h.count);
                ("sum", Json.Float h.sum);
                ("min", Json.Float h.min);
                ("max", Json.Float h.max);
                ("mean", Json.Float (mean h));
                ("last", Json.Float h.last);
                ("samples", Json.List (List.map (fun s -> Json.Float s) h.samples));
                ("dropped", Json.Int h.dropped) ]
          in
          (name, Json.Obj fields))
       (snapshot ()))
