(* The regression band for wall-clock keys, shared by the bench_diff
   executable and its unit tests.

   A purely multiplicative band collapses for fast keys: a baseline with a
   0.0 ms median (timer resolution, or a skipped phase) allows exactly
   0.0 ms, so any measurable fresh time "regresses", and a 0.3 ms median
   gates at fractions of a millisecond of pure scheduler noise. The
   absolute floor gives every key at least one millisecond of headroom —
   below that, wall-clock differences are not signal on any machine this
   runs on. *)

let absolute_floor_ms = 1.0

let allowed_ms ~threshold ~median ~iqr =
  Float.max ((median *. (1.0 +. threshold)) +. iqr) absolute_floor_ms
