(** Monotonic timestamps for tracing.

    Wall-clock seconds ratcheted through a process-global high-water
    mark: {!now} never returns a value smaller than any value it has
    already returned, on any domain, even if the underlying wall clock
    steps backwards. Span durations computed from two {!now} samples are
    therefore always non-negative, and timestamps from different domains
    merge into one consistent timeline. *)

val now : unit -> float
(** Current time in seconds. Non-decreasing across all domains. *)

val set_source : (unit -> float) option -> unit
(** Test hook: replace the raw clock ([None] restores
    [Unix.gettimeofday]). The ratchet still applies — a source that
    steps backwards yields repeated, never decreasing, samples. *)
