(* Prometheus text exposition of the metrics registry.

   Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* so the dotted
   registry names are sanitized (every invalid character becomes '_');
   label names get the same treatment minus ':'. Label values carry the
   format's three escapes (backslash, double-quote, newline) via
   Metrics.escape_label_value. Histograms have no native single-scrape
   form, so each one exports exact aggregates as companion gauges
   (_count/_sum/_min/_max) plus reservoir quantiles as a gauge with a
   "quantile" label, mirroring the summary convention. *)

let escape_label_value = Metrics.escape_label_value
let unescape_label_value = Metrics.unescape_label_value

let sanitize_char ~allow_colon c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | '0' .. '9' -> c
  | ':' when allow_colon -> c
  | _ -> '_'

(* A leading digit is kept but prefixed with '_' (dropping it would
   collapse distinct names like "2x" and "5x"). *)
let sanitize ~allow_colon name =
  if name = "" then "_"
  else
    let s = String.map (sanitize_char ~allow_colon) name in
    match s.[0] with '0' .. '9' -> "_" ^ s | _ -> s

let sanitize_name name = sanitize ~allow_colon:true name
let sanitize_label_name name = sanitize ~allow_colon:false name

(* Prometheus accepts standard float syntax plus NaN / +Inf / -Inf. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else
    let s = Printf.sprintf "%.12g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v

let render_labels = function
  | [] -> ""
  | labels ->
    let parts =
      List.map
        (fun (k, v) ->
           Printf.sprintf "%s=\"%s\"" (sanitize_label_name k)
             (escape_label_value v))
        labels
    in
    "{" ^ String.concat "," parts ^ "}"

let add_series buf name labels value =
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s\n" name (render_labels labels) value)

let add_type buf name kind =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)

(* One # TYPE line per exported metric name, then every series of that
   name: group the (sorted) snapshot by metric name. *)
let group_by_name series =
  List.fold_right
    (fun (s : Metrics.series) groups ->
       match groups with
       | (name, members) :: rest when name = s.name ->
         (name, s :: members) :: rest
       | _ -> (s.name, [ s ]) :: groups)
    series []

let quantiles = [ ("0.5", 0.50); ("0.9", 0.90); ("0.99", 0.99) ]

let to_string () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, members) ->
       let base = sanitize_name name in
       match (List.hd members).Metrics.value with
       | Metrics.Counter _ ->
         add_type buf base "counter";
         List.iter
           (fun (s : Metrics.series) ->
              match s.value with
              | Metrics.Counter n ->
                add_series buf base s.labels (string_of_int n)
              | _ -> ())
           members
       | Metrics.Gauge _ ->
         add_type buf base "gauge";
         List.iter
           (fun (s : Metrics.series) ->
              match s.value with
              | Metrics.Gauge v -> add_series buf base s.labels (number v)
              | _ -> ())
           members
       | Metrics.Histogram _ ->
         let aggregate suffix kind extract =
           add_type buf (base ^ suffix) kind;
           List.iter
             (fun (s : Metrics.series) ->
                match s.value with
                | Metrics.Histogram h ->
                  add_series buf (base ^ suffix) s.labels (extract h)
                | _ -> ())
             members
         in
         aggregate "_count" "gauge" (fun h ->
             string_of_int h.Metrics.count);
         aggregate "_sum" "gauge" (fun h -> number h.Metrics.sum);
         aggregate "_min" "gauge" (fun h -> number h.Metrics.min);
         aggregate "_max" "gauge" (fun h -> number h.Metrics.max);
         add_type buf base "gauge";
         List.iter
           (fun (s : Metrics.series) ->
              match s.value with
              | Metrics.Histogram h ->
                List.iter
                  (fun (q_label, q) ->
                     add_series buf base
                       (s.labels @ [ ("quantile", q_label) ])
                       (number (Metrics.percentile h q)))
                  quantiles
              | _ -> ())
           members)
    (group_by_name (Metrics.snapshot ()));
  Buffer.contents buf

let write_file path = Report.write_string_atomic path (to_string ())
