(* Append-only JSONL run ledger.

   One line per completed run, appended with a single O_APPEND write so
   concurrent runs interleave whole records rather than bytes, and a
   crash can only lose the line being written — never corrupt earlier
   history. Records reuse the exact-float Json codec, so timings and
   temperatures survive a round-trip bit-identically (the same guarantee
   Robust.Checkpoint leans on). *)

let schema_version = 1
let default_path = "thermoplace.ledger.jsonl"
let env_var = "THERMOPLACE_LEDGER"

(* Explicit flag beats the environment beats the default; "none" (from
   either source) disables the ledger entirely. *)
let resolve_path ?path () =
  let chosen =
    match path with
    | Some p -> p
    | None -> (
      match Sys.getenv_opt env_var with
      | Some p when String.trim p <> "" -> p
      | _ -> default_path)
  in
  if chosen = "none" then None else Some chosen

let make_record ?timestamp_s ?job_id ?(config = []) ?(phases_ms = [])
    ?cg_iterations ?peak_rise_k ?plan_hash ?metrics ?error ~command
    ~fingerprint ~outcome ~exit_code () =
  let ts =
    match timestamp_s with Some t -> t | None -> Unix.gettimeofday ()
  in
  let opt name f v =
    match v with Some v -> [ (name, f v) ] | None -> []
  in
  Json.Obj
    ([ ("schema_version", Json.Int schema_version);
       ("timestamp_s", Json.Float ts);
       ("command", Json.String command) ]
     @ opt "job_id" (fun id -> Json.String id) job_id
     @ [
       ("fingerprint", Json.String fingerprint);
       ("config", Json.Obj config);
       ("phases_ms",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) phases_ms))
     ]
     @ opt "cg_iterations" (fun n -> Json.Int n) cg_iterations
     @ opt "peak_rise_k" (fun v -> Json.Float v) peak_rise_k
     @ opt "plan_hash" (fun h -> Json.String h) plan_hash
     @ opt "metrics" (fun m -> m) metrics
     @ [ ("outcome", Json.String outcome);
         ("exit_code", Json.Int exit_code) ]
     @ opt "error" (fun e -> Json.String e) error)

let validate_record json =
  match json with
  | Json.Obj _ -> (
    match Option.bind (Json.member "schema_version" json) Json.to_int with
    | Some v when v = schema_version -> (
      (* job_id is optional (CLI runs omit it) but must be a string when
         a serve run records it — anything else would silently break
         [history list --job] filtering. *)
      match Json.member "job_id" json with
      | None | Some (Json.String _) -> Ok json
      | Some _ -> Error "job_id field must be a string when present")
    | Some v ->
      Error (Printf.sprintf "unsupported schema_version %d (expected %d)"
               v schema_version)
    | None -> Error "missing integer schema_version field")
  | _ -> Error "record is not a JSON object"

let append ~path record =
  (match validate_record record with
   | Ok _ -> ()
   | Error msg -> invalid_arg ("Obs.Ledger.append: " ^ msg));
  let line = Json.to_string record ^ "\n" in
  (* JSONL forbids raw newlines inside a record; the compact printer
     never emits one, but a bug here would silently corrupt every later
     read, so fail loudly instead. *)
  String.iteri
    (fun i c ->
       if c = '\n' && i <> String.length line - 1 then
         invalid_arg "Obs.Ledger.append: record serialized with newline")
    line;
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
       let bytes = Bytes.of_string line in
       let n = Unix.write fd bytes 0 (Bytes.length bytes) in
       if n <> Bytes.length bytes then
         failwith "Obs.Ledger.append: short write")

let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    let records = ref [] in
    let result = ref (Ok ()) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
         let lineno = ref 0 in
         (try
            while !result = Ok () do
              let line = input_line ic in
              incr lineno;
              if String.trim line <> "" then
                match Json.of_string line with
                | Error msg ->
                  result :=
                    Error (Printf.sprintf "line %d: %s" !lineno msg)
                | Ok json -> (
                  match validate_record json with
                  | Ok r -> records := r :: !records
                  | Error msg ->
                    result :=
                      Error (Printf.sprintf "line %d: %s" !lineno msg))
            done
          with End_of_file -> ()));
    match !result with
    | Ok () -> Ok (List.rev !records)
    | Error _ as e -> (match e with Error m -> Error m | _ -> assert false)
  end

(* --- record accessors (for the history CLI and tests) ------------------- *)

let get_string name r = Option.bind (Json.member name r) Json.to_string_opt
let get_float name r = Option.bind (Json.member name r) Json.to_float
let get_int name r = Option.bind (Json.member name r) Json.to_int

let command r = Option.value ~default:"?" (get_string "command" r)
let job_id r = get_string "job_id" r
let fingerprint r = Option.value ~default:"?" (get_string "fingerprint" r)
let timestamp_s r = Option.value ~default:Float.nan (get_float "timestamp_s" r)
let outcome r = Option.value ~default:"?" (get_string "outcome" r)
let exit_code r = Option.value ~default:(-1) (get_int "exit_code" r)

let assoc_floats name r =
  match Json.member name r with
  | Some (Json.Obj fields) ->
    List.filter_map
      (fun (k, v) ->
         match Json.to_float v with Some f -> Some (k, f) | None -> None)
      fields
  | _ -> []

let phases_ms r = assoc_floats "phases_ms" r

let config_fields r =
  match Json.member "config" r with Some (Json.Obj f) -> f | _ -> []
