(** Chrome trace-event / Perfetto JSON export of the span forest.

    {!of_trace} flattens the merged multi-domain forest of {!Trace} into
    an array of complete ("X") trace events — one per span, [tid] set to
    the recording domain's id, timestamps in microseconds relative to
    the trace epoch, GC deltas and per-span metrics in [args] — loadable
    by Perfetto ({: https://ui.perfetto.dev}) or [chrome://tracing].
    Every CLI subcommand exposes it as [--perfetto FILE]. *)

val of_trace : unit -> Json.t
(** The current trace as a JSON array of trace events. *)

val write_file : string -> unit
(** Pretty-print {!of_trace} to the given path (atomically, via
    {!Report.write_string_atomic}). *)

type stats = { events : int; tids : int list }

val validate : Json.t -> (stats, string) result
(** Structural validation used by [json_check --trace] and the tests:
    the value must be an array of events each carrying a string ["name"],
    [ph = "X"], finite non-negative numeric ["ts"] and ["dur"], and an
    integer ["tid"]; events of the same tid must be properly nested
    (fully contained or disjoint — partial overlap is an error). Returns
    the event count and the distinct tids. *)
