(** Warning channel for instrumented code.

    Numerical layers report anomalies (e.g. a CG solve that hit its
    iteration cap without converging) here instead of printing directly, so
    callers can silence, redirect or collect them. Every warning is also
    retained (up to a cap) for inclusion in JSON run reports. *)

val warn : string -> unit
(** Record a warning: appended to the retained list and passed to the
    current handler. *)

val set_handler : (string -> unit) option -> unit
(** [None] silences warnings (they are still retained); the default handler
    prints ["warning: <msg>"] to stderr. *)

val default_handler : string -> unit

val warnings : unit -> string list
(** Retained warnings in emission order (capped at {!max_retained};
    later warnings past the cap increment {!dropped}). *)

val dropped : unit -> int
val max_retained : int

val reset : unit -> unit
(** Clear retained warnings. Does not change the handler. *)

val to_json : unit -> Json.t
