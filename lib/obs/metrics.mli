(** Named counters, gauges and histograms.

    A process-global registry: any layer records under a dotted metric name
    ("thermal.cg.iterations") and the CLI / bench harness snapshots the
    whole registry into a report. Enabled by default — recording is a
    hashtable update per event, so instrumentation sits at per-solve /
    per-transform granularity, never inside numeric kernels. Disable with
    {!set_enabled} to make every recording call a no-op. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
  samples : float list;  (** per-observation values, in recording order *)
  dropped : int;  (** observations beyond the sample cap (stats still exact) *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Empty the registry. *)

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0. *)

val gauge : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : string -> float -> unit
(** Record one observation into a histogram. The first
    {!max_samples} observations are kept verbatim (so per-event values —
    e.g. CG iterations for every solve — survive into the report); summary
    statistics remain exact beyond that. *)

val max_samples : int

val counter_value : string -> int option
val gauge_value : string -> float option
val histogram : string -> histogram option
val mean : histogram -> float

val snapshot : unit -> (string * value) list
(** Registry contents sorted by metric name. *)

val to_json : unit -> Json.t
(** Object keyed by metric name. Counters become
    [{"type":"counter","value":n}]; gauges
    [{"type":"gauge","value":v}]; histograms
    [{"type":"histogram","count","sum","min","max","mean","last",
      "samples","dropped"}]. *)
