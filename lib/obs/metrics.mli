(** Named counters, gauges and histograms.

    A process-global registry: any layer records under a dotted metric name
    ("thermal.cg.iterations") and the CLI / bench harness snapshots the
    whole registry into a report. Enabled by default — recording is a
    hashtable update per event, so instrumentation sits at per-solve /
    per-transform granularity, never inside numeric kernels. Disable with
    {!set_enabled} to make every recording call a no-op. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
  samples : float list;
  (** retained reservoir. Below {!max_samples} observations this is every
      value in recording order; beyond it, an unbiased uniform sample of
      the whole stream (Algorithm R, deterministic per metric name). *)
  dropped : int;  (** observations not retained (stats still exact) *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Empty the registry. *)

val count : ?by:int -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0. *)

val gauge : string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : string -> float -> unit
(** Record one observation into a histogram. The first {!max_samples}
    observations are kept verbatim; past the cap, reservoir sampling
    keeps an unbiased uniform sample of the {e whole} stream (each of
    the [n] observations retained with probability [max_samples / n]),
    so percentiles stay representative instead of freezing on the
    stream's opening regime. The replacement RNG is seeded from the
    metric name — identical runs retain identical samples. Summary
    statistics (count/sum/min/max/mean) remain exact at any volume. *)

val max_samples : int

val counter_value : string -> int option
val gauge_value : string -> float option
val histogram : string -> histogram option
val mean : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in [0, 1]: nearest-rank percentile of the
    retained samples ([q = 0.5] is the median). [nan] on an empty
    sample set; raises [Invalid_argument] on [q] outside [0, 1]. *)

val snapshot : unit -> (string * value) list
(** Registry contents sorted by metric name. *)

val to_json : unit -> Json.t
(** Object keyed by metric name. Counters become
    [{"type":"counter","value":n}]; gauges
    [{"type":"gauge","value":v}]; histograms
    [{"type":"histogram","count","sum","min","max","mean",
      "p50","p90","p99","last","samples","dropped"}] with the
    percentiles computed from the retained reservoir. *)
