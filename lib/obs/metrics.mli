(** Named counters, gauges and histograms, with optional label sets.

    A process-global registry: any layer records under a dotted metric name
    ("thermal.cg.iterations") plus an optional [(key, value)] label set
    (e.g. [("precond", "mg")]), and the CLI / bench harness snapshots the
    whole registry into a report. Labels are canonicalized (sorted by key)
    so recording order never splits a series; each distinct
    (name, label set) pair is its own series, which is exactly the per-job
    series model the Prometheus exporter ({!Prom}) and a multi-tenant
    [serve] daemon need. Enabled by default — recording is a hashtable
    update per event, so instrumentation sits at per-solve / per-transform
    granularity, never inside numeric kernels. Disable with {!set_enabled}
    to make every recording call a no-op. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  last : float;
  samples : float list;
  (** retained reservoir. Below {!max_samples} observations this is every
      value in recording order; beyond it, an unbiased uniform sample of
      the whole stream (Algorithm R, deterministic per series). *)
  dropped : int;  (** observations not retained (stats still exact) *)
}

type value =
  | Counter of int
  | Gauge of float
  | Histogram of histogram

type series = {
  name : string;
  labels : (string * string) list;  (** canonical: sorted by label key *)
  value : value;
}

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Empty the registry. *)

val count : ?by:int -> ?labels:(string * string) list -> string -> unit
(** Add [by] (default 1) to a counter, creating it at 0. Raises
    [Invalid_argument] on duplicate label keys or if [name] is already
    registered as another metric type (under any label set). *)

val gauge : ?labels:(string * string) list -> string -> float -> unit
(** Set a gauge to its latest value. *)

val observe : ?labels:(string * string) list -> string -> float -> unit
(** Record one observation into a histogram. The first {!max_samples}
    observations are kept verbatim; past the cap, reservoir sampling
    keeps an unbiased uniform sample of the {e whole} stream (each of
    the [n] observations retained with probability [max_samples / n]),
    so percentiles stay representative instead of freezing on the
    stream's opening regime. The replacement RNG is seeded from the
    series key — identical runs retain identical samples. Summary
    statistics (count/sum/min/max/mean) remain exact at any volume. *)

val max_samples : int

val counter_value : ?labels:(string * string) list -> string -> int option
val gauge_value : ?labels:(string * string) list -> string -> float option
val histogram : ?labels:(string * string) list -> string -> histogram option
val mean : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in [0, 1]: nearest-rank percentile of the
    retained samples ([q = 0.5] is the median). [nan] on an empty
    sample set; raises [Invalid_argument] on [q] outside [0, 1]. *)

val escape_label_value : string -> string
(** Prometheus text-exposition escaping for label values: backslash,
    double-quote and newline each become a backslash escape
    (backslash-backslash, backslash-quote, backslash-n). *)

val unescape_label_value : string -> string option
(** Inverse of {!escape_label_value}; [None] on a dangling or unknown
    escape. [unescape_label_value (escape_label_value s) = Some s] for
    every [s]. *)

val series_key : string -> (string * string) list -> string
(** Render a series identity: the bare name for an empty label set,
    otherwise [name{k="v",...}] with values escaped via
    {!escape_label_value}. Keys the {!to_json} object. *)

val snapshot : unit -> series list
(** Registry contents sorted by metric name, then labels. *)

val to_json : unit -> Json.t
(** Object keyed by {!series_key}. Counters become
    [{"type":"counter","value":n}]; gauges
    [{"type":"gauge","value":v}]; histograms
    [{"type":"histogram","count","sum","min","max","mean",
      "p50","p90","p99","last","samples","dropped"}] with the
    percentiles computed from the retained reservoir. *)

val summary_json : unit -> Json.t
(** Like {!to_json} but histograms omit the raw [samples] array —
    the compact form the run ledger embeds in every record. *)
