(** Prometheus text-exposition export of the {!Metrics} registry.

    One scrape-ready snapshot of every registered series. Dotted metric
    names are sanitized to the Prometheus charset (dots become
    underscores), label values are escaped per the text format, and each
    metric name gets exactly one [# TYPE] line ahead of all its labelled
    series — the invariant {!Metrics}'s one-type-per-name rule exists to
    guarantee. Counters and gauges export directly; a histogram has no
    native single-scrape text form, so its exact aggregates appear as
    companion gauges ([_count]/[_sum]/[_min]/[_max]) and its reservoir
    quantiles (p50/p90/p99) as a gauge carrying a [quantile] label,
    mirroring the summary-metric convention. *)

val sanitize_name : string -> string
(** Map a metric name onto [[a-zA-Z_:][a-zA-Z0-9_:]*]: every invalid
    character (including ['.']) becomes ['_']; a leading digit is kept
    but prefixed with ['_']; [""] becomes ["_"]. *)

val sanitize_label_name : string -> string
(** Same, for label names — the charset additionally excludes [':']. *)

val escape_label_value : string -> string
(** Re-export of {!Metrics.escape_label_value}. *)

val unescape_label_value : string -> string option
(** Re-export of {!Metrics.unescape_label_value}. *)

val to_string : unit -> string
(** Render the current registry snapshot in text exposition format.
    Series appear sorted by metric name then labels; non-finite values
    print as [NaN] / [+Inf] / [-Inf]. *)

val write_file : string -> unit
(** Render and publish atomically (tmp + rename) via
    {!Report.write_string_atomic}. *)
