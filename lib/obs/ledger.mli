(** Append-only JSONL run ledger — the cross-run observability substrate.

    Every completed [thermoplace] / bench run appends one schema-versioned
    JSON record (config fingerprint, per-phase wall-clock, CG iteration
    totals, peak temperature, committed plan hash, metrics summary,
    outcome) to a line-delimited file. Appends are a single [O_APPEND]
    write, so concurrent runs interleave whole records and a crash can
    only lose the in-flight line; floats reuse the exact round-trip
    {!Json} codec. The [thermoplace history] subcommand reads the ledger
    back for regression forensics. *)

val schema_version : int

val default_path : string
(** ["thermoplace.ledger.jsonl"], in the working directory. *)

val env_var : string
(** ["THERMOPLACE_LEDGER"] — overrides {!default_path}. *)

val resolve_path : ?path:string -> unit -> string option
(** Where to write: an explicit [?path] beats the [THERMOPLACE_LEDGER]
    environment variable beats {!default_path}. The value ["none"] (from
    either source) disables the ledger — returns [None]. *)

val make_record :
  ?timestamp_s:float ->
  ?job_id:string ->
  ?config:(string * Json.t) list ->
  ?phases_ms:(string * float) list ->
  ?cg_iterations:int ->
  ?peak_rise_k:float ->
  ?plan_hash:string ->
  ?metrics:Json.t ->
  ?error:string ->
  command:string ->
  fingerprint:string ->
  outcome:string ->
  exit_code:int ->
  unit ->
  Json.t
(** Build one ledger record. [timestamp_s] defaults to
    [Unix.gettimeofday ()]; optional fields are omitted (not null) when
    absent. [job_id] identifies the served request that produced the
    record (omitted for one-shot CLI runs). [metrics] is expected to be
    {!Metrics.summary_json} — the compact registry snapshot without raw
    reservoir samples. *)

val validate_record : Json.t -> (Json.t, string) result
(** A record must be a JSON object carrying an integer
    [schema_version] equal to {!schema_version}; a [job_id] field, when
    present, must be a string. *)

val append : path:string -> Json.t -> unit
(** Validate and append one record as a single line. Creates the file if
    missing. Raises [Invalid_argument] on an invalid record and
    [Unix.Unix_error] / [Failure] on I/O failure. *)

val load : string -> (Json.t list, string) result
(** Parse every non-blank line, oldest first. A missing file is an empty
    ledger; a malformed or schema-incompatible line is an [Error]
    naming the line number. *)

(** {1 Record accessors} — tolerant readers for the history CLI. *)

val command : Json.t -> string

val job_id : Json.t -> string option
(** The served request id, when the record came from [thermoplace serve]. *)

val fingerprint : Json.t -> string
val timestamp_s : Json.t -> float
val outcome : Json.t -> string
val exit_code : Json.t -> int

val phases_ms : Json.t -> (string * float) list
(** The [phases_ms] object as an assoc list, record order preserved. *)

val config_fields : Json.t -> (string * Json.t) list
(** The [config] object's fields, record order preserved. *)
