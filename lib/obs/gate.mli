(** Regression-band arithmetic for the [bench_diff] wall-clock gate.

    Lives in the library (rather than the executable) so the
    zero-median / zero-IQR edge cases stay unit-testable. *)

val absolute_floor_ms : float
(** 1.0 ms — the minimum allowed band. A baseline whose median is at or
    near zero (timer resolution, skipped phase) would otherwise gate on
    scheduler noise: [median * (1 + threshold) + iqr] is 0 when both
    statistics are 0, failing any measurable fresh time. *)

val allowed_ms : threshold:float -> median:float -> iqr:float -> float
(** [max (median * (1 + threshold) + iqr) absolute_floor_ms] — the fresh
    median must stay at or below this to pass. *)
