(* A monotonic timestamp source built on the wall clock.

   [Unix.gettimeofday] can step backwards (NTP slew, manual clock set,
   VM migration); a span whose start was sampled before such a step and
   whose end after it would get a negative duration, and a merged
   multi-domain trace would show events out of order. Instead of a new
   dependency for CLOCK_MONOTONIC we ratchet the wall clock through a
   process-global high-water mark: every sample is clamped to be >= the
   largest timestamp any domain has handed out so far. Durations are
   then non-negative by construction, across domains, while timestamps
   stay wall-clock-shaped (seconds, epoch-anchored), which keeps the
   epoch-relative JSON shape of the trace output unchanged. *)

let default_source = Unix.gettimeofday

(* Test hook: lets the suite feed a clock that steps backwards and watch
   the ratchet hold the line. *)
let source = ref default_source
let set_source f = source := (match f with Some f -> f | None -> default_source)

(* The watermark is a boxed float behind [Atomic]; compare-and-set on the
   box is enough because we retry on contention and only ever move the
   value up. *)
let watermark = Atomic.make neg_infinity

let rec now () =
  let t = !source () in
  let w = Atomic.get watermark in
  if t <= w then w
  else if Atomic.compare_and_set watermark w t then t
  else now ()
