type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\b' -> Buffer.add_string buf "\\b"
       | '\012' -> Buffer.add_string buf "\\f"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Non-finite floats have no JSON number form. They used to print as
   [null], which silently turned [Float nan] into [Null] across a
   round-trip — fatal for the checkpoint codec's bit-identical-resume
   guarantee. They now print as the string sentinels "nan" / "inf" /
   "-inf", which [to_float] decodes back, so every float value
   round-trips. *)
let nonfinite_repr v =
  if Float.is_nan v then "\"nan\""
  else if v = infinity then "\"inf\""
  else "\"-inf\""

(* shortest representation that round-trips, never in OCaml's "1." form *)
let float_repr v =
  if not (Float.is_finite v) then nonfinite_repr v
  else
    let shortest =
      let s = Printf.sprintf "%.12g" v in
      if float_of_string s = v then s else Printf.sprintf "%.17g" v
    in
    (* guarantee a JSON number that reads back as a float *)
    if String.contains shortest '.' || String.contains shortest 'e'
    then shortest
    else shortest ^ ".0"

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float v -> Buffer.add_string buf (float_repr v)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
           if i > 0 then Buffer.add_char buf ',';
           if pretty then begin
             Buffer.add_char buf '\n';
             indent (depth + 1)
           end;
           go (depth + 1) item)
        items;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
           if i > 0 then Buffer.add_char buf ',';
           if pretty then begin
             Buffer.add_char buf '\n';
             indent (depth + 1)
           end;
           escape_string buf k;
           Buffer.add_char buf ':';
           if pretty then Buffer.add_char buf ' ';
           go (depth + 1) v)
        fields;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { src : string; mutable pos : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let n = String.length st.src in
  while st.pos < n
        && (match st.src.[st.pos] with
            | ' ' | '\t' | '\n' | '\r' -> true
            | _ -> false)
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some got when got = c -> advance st
  | Some got -> parse_error "expected %C at offset %d, got %C" c st.pos got
  | None -> parse_error "expected %C at offset %d, got end of input" c st.pos

let expect_literal st lit value =
  let n = String.length lit in
  if st.pos + n <= String.length st.src
     && String.sub st.src st.pos n = lit
  then begin
    st.pos <- st.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" st.pos

(* encode a Unicode scalar value as UTF-8 *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then
    parse_error "truncated \\u escape at offset %d" st.pos;
  let h = String.sub st.src st.pos 4 in
  st.pos <- st.pos + 4;
  match int_of_string_opt ("0x" ^ h) with
  | Some v -> v
  | None -> parse_error "bad \\u escape %S" h

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | None -> parse_error "unterminated escape"
       | Some c ->
         advance st;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let u = parse_hex4 st in
            (* surrogate pair *)
            if u >= 0xD800 && u <= 0xDBFF
               && st.pos + 1 < String.length st.src
               && st.src.[st.pos] = '\\'
               && st.src.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let lo = parse_hex4 st in
              if lo >= 0xDC00 && lo <= 0xDFFF then
                add_utf8 buf
                  (0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00))
              else begin
                add_utf8 buf u;
                add_utf8 buf lo
              end
            end
            else add_utf8 buf u
          | c -> parse_error "bad escape \\%c" c));
      loop ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      loop ()
  in
  loop ();
  Buffer.contents buf

(* Strict JSON number grammar: an optional minus, then "0" or a nonzero
   digit followed by digits, then optional fraction and exponent parts.
   The old scanner grabbed any run of number-ish characters and handed it
   to OCaml's lenient [float_of_string], accepting non-JSON forms such as
   "+1", "1.e5", ".5" or "01" that other tools then choke on. *)
let parse_number st =
  let start = st.pos in
  let n = String.length st.src in
  let digit () =
    st.pos < n && match st.src.[st.pos] with '0' .. '9' -> true | _ -> false
  in
  let digits1 what =
    if not (digit ()) then
      parse_error "expected digit in %s at offset %d" what st.pos;
    while digit () do advance st done
  in
  if st.pos < n && st.src.[st.pos] = '-' then advance st;
  (* integer part: a single 0, or a nonzero digit followed by more *)
  if not (digit ()) then
    parse_error "expected digit in number at offset %d" st.pos;
  if st.src.[st.pos] = '0' then advance st else digits1 "number";
  if digit () then
    parse_error "leading zero in number at offset %d" start;
  let is_float = ref false in
  if st.pos < n && st.src.[st.pos] = '.' then begin
    is_float := true;
    advance st;
    digits1 "fraction"
  end;
  if st.pos < n && (st.src.[st.pos] = 'e' || st.src.[st.pos] = 'E') then begin
    is_float := true;
    advance st;
    if st.pos < n && (st.src.[st.pos] = '+' || st.src.[st.pos] = '-') then
      advance st;
    digits1 "exponent"
  end;
  let s = String.sub st.src start (st.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> parse_error "bad number %S at offset %d" s start
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None ->
      (* integer too wide for 63 bits: keep the value as a float *)
      (match float_of_string_opt s with
       | Some f -> Float f
       | None -> parse_error "bad number %S at offset %d" s start)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> expect_literal st "null" Null
  | Some 't' -> expect_literal st "true" (Bool true)
  | Some 'f' -> expect_literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        items := parse_value st :: !items;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          loop ()
        | Some ']' -> advance st
        | _ -> parse_error "expected ',' or ']' at offset %d" st.pos
      in
      loop ();
      List (List.rev !items)
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        fields := (k, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          loop ()
        | Some '}' -> advance st
        | _ -> parse_error "expected ',' or '}' at offset %d" st.pos
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> parse_error "unexpected character %C at offset %d" c st.pos

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let of_string_exn s =
  match of_string s with
  | Ok v -> v
  | Error msg -> failwith ("Json.of_string: " ^ msg)

(* --- accessors ----------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Float v -> Some v
  | Int i -> Some (float_of_int i)
  (* the non-finite sentinels produced by [float_repr] *)
  | String "nan" -> Some Float.nan
  | String "inf" -> Some infinity
  | String "-inf" -> Some neg_infinity
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let keys = function Obj fields -> List.map fst fields | _ -> []
