(* Chrome trace-event ("Trace Event Format") export of the span forest,
   loadable by Perfetto / chrome://tracing. Each completed span becomes
   one complete ("X") event; the recording domain's id is the event's
   tid, so a parallel run renders as one track per domain. Timestamps
   are microseconds relative to the trace epoch. *)

let us s = s *. 1e6

let event_of_span (sp : Trace.span) =
  let args =
    [ ("gc_minor_words", Json.Float sp.Trace.gc.Trace.minor_words);
      ("gc_major_words", Json.Float sp.Trace.gc.Trace.major_words);
      ("gc_minor_collections",
       Json.Int sp.Trace.gc.Trace.minor_collections);
      ("gc_major_collections",
       Json.Int sp.Trace.gc.Trace.major_collections) ]
    @ List.map (fun (k, v) -> (k, Json.Float v)) sp.Trace.metrics
  in
  Json.Obj
    [ ("name", Json.String sp.Trace.name);
      ("cat", Json.String "span");
      ("ph", Json.String "X");
      ("ts", Json.Float (us sp.Trace.start_s));
      ("dur", Json.Float (us sp.Trace.duration_s));
      ("pid", Json.Int 1);
      ("tid", Json.Int sp.Trace.tid);
      ("args", Json.Obj args) ]

let of_trace () =
  let rec flatten acc sp =
    List.fold_left flatten (event_of_span sp :: acc) sp.Trace.children
  in
  let events =
    List.fold_left
      (fun acc (_, roots) -> List.fold_left flatten acc roots)
      [] (Trace.all_roots ())
  in
  Json.List (List.rev events)

let write_file path =
  Report.write_string_atomic path
    (Json.to_string ~pretty:true (of_trace ()) ^ "\n")

(* --- validation ---------------------------------------------------------- *)

(* Structural check used by [json_check --trace] and the test-suite: the
   document must be a JSON array of events, every event must carry the
   required fields with the right types, and events sharing a tid must
   form a proper stack — fully nested or disjoint, never partially
   overlapping (Perfetto renders partial overlap as garbage tracks). *)

type stats = { events : int; tids : int list }

let validate json =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let* events =
    match json with
    | Json.List l -> Ok l
    | _ -> Error "top-level value is not an array"
  in
  let* parsed =
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest ->
        let field name = Json.member name e in
        let* name =
          match Option.bind (field "name") Json.to_string_opt with
          | Some n -> Ok n
          | None -> err "event %d: missing or non-string \"name\"" i
        in
        let* () =
          match Option.bind (field "ph") Json.to_string_opt with
          | Some "X" -> Ok ()
          | Some ph -> err "event %d (%s): ph %S, expected \"X\"" i name ph
          | None -> err "event %d (%s): missing \"ph\"" i name
        in
        let* ts =
          match Option.bind (field "ts") Json.to_float with
          | Some t when Float.is_finite t && t >= 0.0 -> Ok t
          | Some t -> err "event %d (%s): bad ts %g" i name t
          | None -> err "event %d (%s): missing numeric \"ts\"" i name
        in
        let* dur =
          match Option.bind (field "dur") Json.to_float with
          | Some d when Float.is_finite d && d >= 0.0 -> Ok d
          | Some d -> err "event %d (%s): bad dur %g" i name d
          | None -> err "event %d (%s): missing numeric \"dur\"" i name
        in
        let* tid =
          match Option.bind (field "tid") Json.to_int with
          | Some t -> Ok t
          | None -> err "event %d (%s): missing integer \"tid\"" i name
        in
        go (i + 1) ((tid, ts, dur, name) :: acc) rest
    in
    go 0 [] events
  in
  (* group by tid, then require proper nesting per tid *)
  let tids = List.sort_uniq compare (List.map (fun (t, _, _, _) -> t) parsed) in
  let eps = 1e-3 (* a nanosecond, in trace microseconds *) in
  let* () =
    List.fold_left
      (fun acc tid ->
         let* () = acc in
         let evs =
           List.filter (fun (t, _, _, _) -> t = tid) parsed
           |> List.sort (fun (_, ts1, d1, _) (_, ts2, d2, _) ->
               match compare ts1 ts2 with
               | 0 -> compare d2 d1 (* longer first: parent before child *)
               | c -> c)
         in
         let rec scan stack = function
           | [] -> Ok ()
           | (_, ts, dur, name) :: rest ->
             (* close finished enclosing spans *)
             let rec unwind = function
               | (ts0, dur0, _) :: tl when ts0 +. dur0 <= ts +. eps ->
                 unwind tl
               | stack -> stack
             in
             let stack = unwind stack in
             (match stack with
              | (ts0, dur0, name0) :: _
                when ts +. dur > ts0 +. dur0 +. eps ->
                err
                  "tid %d: %S [%g, %g] partially overlaps %S [%g, %g]"
                  tid name ts (ts +. dur) name0 ts0 (ts0 +. dur0)
              | _ -> scan ((ts, dur, name) :: stack) rest)
         in
         scan [] evs)
      (Ok ()) tids
  in
  Ok { events = List.length parsed; tids }
