(** Machine-readable run reports.

    Assembles the process-global observability state — the {!Trace} span
    forest, the {!Metrics} registry and retained {!Log} warnings — together
    with caller-provided configuration and result sections into one JSON
    document. Domain layers (thermal metrics, hotspots, technique results)
    serialize themselves to {!Json.t} and pass the fragments in via
    [~sections]; this module stays dependency-free. *)

val schema_version : int

val make :
  ?command:string ->
  ?config:(string * Json.t) list ->
  ?sections:(string * Json.t) list ->
  unit ->
  Json.t
(** Build the report object:
    [{"schema_version", "command"?, "config", "spans", "metrics",
      "warnings", <sections...>}].
    Section keys are appended in order after the built-in keys; a section
    whose key collides with a built-in key is dropped. *)

val write_file : string -> Json.t -> unit
(** Pretty-print to [path] with a trailing newline, then re-parse the
    written bytes as a self-check; raises [Failure] if the round-trip
    fails (which would indicate a serialization bug). *)

val start : unit -> unit
(** Convenience: enable tracing and metrics and reset all three stores —
    call at the beginning of a run that will produce a report. *)
