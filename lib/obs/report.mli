(** Machine-readable run reports.

    Assembles the process-global observability state — the {!Trace} span
    forest, the {!Metrics} registry and retained {!Log} warnings — together
    with caller-provided configuration and result sections into one JSON
    document. Domain layers (thermal metrics, hotspots, technique results)
    serialize themselves to {!Json.t} and pass the fragments in via
    [~sections]; this module stays dependency-free. *)

val schema_version : int

val make :
  ?command:string ->
  ?config:(string * Json.t) list ->
  ?sections:(string * Json.t) list ->
  unit ->
  Json.t
(** Build the report object:
    [{"schema_version", "command"?, "config", "spans", "metrics",
      "warnings", <sections...>}].
    Section keys are appended in order after the built-in keys; a section
    whose key collides with a built-in key is dropped. *)

val write_string_atomic : string -> string -> unit
(** Write [content] to [path ^ ".tmp"] and rename it over [path], so a
    crash mid-write never leaves a truncated file. The tmp file is
    removed on a write error. Raises [Sys_error] on I/O failure. *)

val write_file : string -> Json.t -> unit
(** Pretty-print with a trailing newline and publish via
    {!write_string_atomic}; the serialized bytes are re-parsed as a
    self-check {e before} publication — raises [Failure] if the
    round-trip fails (which would indicate a serialization bug), leaving
    any previous report intact. *)

val start : unit -> unit
(** Convenience: enable tracing and metrics and reset all three stores —
    call at the beginning of a run that will produce a report. *)
