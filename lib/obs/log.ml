let max_retained = 1000

let default_handler msg = Printf.eprintf "warning: %s\n%!" msg

let handler : (string -> unit) option ref = ref (Some default_handler)
let retained : string list ref = ref []  (* reversed *)
let n_retained = ref 0
let n_dropped = ref 0

let set_handler h = handler := h

let warn msg =
  if !n_retained < max_retained then begin
    retained := msg :: !retained;
    incr n_retained
  end
  else incr n_dropped;
  match !handler with Some h -> h msg | None -> ()

let warnings () = List.rev !retained

let dropped () = !n_dropped

let reset () =
  retained := [];
  n_retained := 0;
  n_dropped := 0

let to_json () =
  Json.Obj
    [ ("messages", Json.List (List.map (fun m -> Json.String m) (warnings ())));
      ("dropped", Json.Int (dropped ())) ]
