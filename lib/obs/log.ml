let max_retained = 1000

let default_handler msg = Printf.eprintf "warning: %s\n%!" msg

let handler : (string -> unit) option ref = ref (Some default_handler)
let retained : string list ref = ref []  (* reversed *)
let n_retained = ref 0
let n_dropped = ref 0

(* warnings can arrive from worker domains (e.g. a non-converged solve in
   a parallel sweep); the buffer is mutex-guarded, the handler runs
   unlocked so a handler that warns cannot deadlock *)
let log_mutex = Mutex.create ()

let set_handler h = handler := h

let warn msg =
  Mutex.protect log_mutex (fun () ->
      if !n_retained < max_retained then begin
        retained := msg :: !retained;
        incr n_retained
      end
      else incr n_dropped);
  match !handler with Some h -> h msg | None -> ()

let warnings () = Mutex.protect log_mutex (fun () -> List.rev !retained)

let dropped () = Mutex.protect log_mutex (fun () -> !n_dropped)

let reset () =
  Mutex.protect log_mutex (fun () ->
      retained := [];
      n_retained := 0;
      n_dropped := 0)

let to_json () =
  Json.Obj
    [ ("messages", Json.List (List.map (fun m -> Json.String m) (warnings ())));
      ("dropped", Json.Int (dropped ())) ]
