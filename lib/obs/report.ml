let schema_version = 1

let builtin_keys =
  [ "schema_version"; "command"; "config"; "spans"; "metrics"; "warnings" ]

let make ?command ?(config = []) ?(sections = []) () =
  let base =
    [ ("schema_version", Json.Int schema_version) ]
    @ (match command with
       | Some c -> [ ("command", Json.String c) ]
       | None -> [])
    @ [ ("config", Json.Obj config);
        ("spans", Trace.to_json ());
        ("metrics", Metrics.to_json ());
        ("warnings", Log.to_json ()) ]
  in
  let extra =
    List.filter (fun (k, _) -> not (List.mem k builtin_keys)) sections
  in
  Json.Obj (base @ extra)

let write_file path json =
  let s = Json.to_string ~pretty:true json ^ "\n" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc s);
  match Json.of_string s with
  | Ok _ -> ()
  | Error msg ->
    failwith
      (Printf.sprintf "Obs.Report.write_file: emitted invalid JSON (%s)" msg)

let start () =
  Trace.set_enabled true;
  Metrics.set_enabled true;
  Trace.reset ();
  Metrics.reset ();
  Log.reset ()
