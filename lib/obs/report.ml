let schema_version = 1

let builtin_keys =
  [ "schema_version"; "command"; "config"; "spans"; "metrics"; "warnings" ]

let make ?command ?(config = []) ?(sections = []) () =
  let base =
    [ ("schema_version", Json.Int schema_version) ]
    @ (match command with
       | Some c -> [ ("command", Json.String c) ]
       | None -> [])
    @ [ ("config", Json.Obj config);
        ("spans", Trace.to_json ());
        ("metrics", Metrics.to_json ());
        ("warnings", Log.to_json ()) ]
  in
  let extra =
    List.filter (fun (k, _) -> not (List.mem k builtin_keys)) sections
  in
  Json.Obj (base @ extra)

(* Atomic publication: the content lands in a sibling tmp file first and
   only a successful close is renamed over the destination, so a crash
   mid-write never leaves a truncated file — readers see either the old
   complete version or the new one. Checkpoints reuse this helper. *)
let write_string_atomic path s =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match output_string oc s with
   | () -> close_out oc
   | exception e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let write_file path json =
  let s = Json.to_string ~pretty:true json ^ "\n" in
  (* self-check before publication: a serialization bug must not replace a
     good report with a bad one *)
  (match Json.of_string s with
   | Ok _ -> ()
   | Error msg ->
     failwith
       (Printf.sprintf "Obs.Report.write_file: emitted invalid JSON (%s)" msg));
  write_string_atomic path s

let start () =
  Trace.set_enabled true;
  Metrics.set_enabled true;
  Trace.reset ();
  Metrics.reset ();
  Log.reset ()
