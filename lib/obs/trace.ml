type span = {
  name : string;
  start_s : float;
  duration_s : float;
  children : span list;
}

(* an in-progress span; children accumulate in reverse *)
type frame = {
  f_name : string;
  f_start : float;
  mutable f_children : span list;
}

let enabled_flag = ref false
let stack : frame list ref = ref []
let completed : span list ref = ref []  (* reversed *)
let epoch = ref (Unix.gettimeofday ())

(* The span stack is a single-domain structure; spans opened on worker
   domains (parallel candidate evaluations, pooled chunks) are not
   recorded — the tracing domain's tree stays consistent and the wall
   clock of parallel work is attributed to the enclosing span. *)
let trace_domain = ref (Domain.self ())

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let now () = Unix.gettimeofday () -. !epoch

let reset () =
  stack := [];
  completed := [];
  trace_domain := Domain.self ();
  epoch := Unix.gettimeofday ()

let with_span name f =
  if (not !enabled_flag) || Domain.self () <> !trace_domain then f ()
  else begin
    let fr = { f_name = name; f_start = now (); f_children = [] } in
    stack := fr :: !stack;
    let finish () =
      let stop = now () in
      (* pop down to (and including) our frame; anything above it was left
         open by an exception or a mid-span reset and is discarded *)
      let rec pop = function
        | top :: rest when top == fr -> rest
        | _ :: rest -> pop rest
        | [] -> []
      in
      stack := pop !stack;
      let sp =
        { name = fr.f_name; start_s = fr.f_start;
          duration_s = stop -. fr.f_start;
          children = List.rev fr.f_children }
      in
      match !stack with
      | parent :: _ -> parent.f_children <- sp :: parent.f_children
      | [] -> completed := sp :: !completed
    in
    Fun.protect ~finally:finish f
  end

let roots () = List.rev !completed

let span_count () =
  let rec count sp = 1 + List.fold_left (fun acc c -> acc + count c) 0 sp.children in
  List.fold_left (fun acc sp -> acc + count sp) 0 (roots ())

let pp_tree ppf () =
  let rec pp depth parent_s sp =
    let share =
      if parent_s > 0.0 then
        Printf.sprintf " (%.0f%%)" (100.0 *. sp.duration_s /. parent_s)
      else ""
    in
    Format.fprintf ppf "%s%-*s %10.3f ms%s@."
      (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      sp.name
      (sp.duration_s *. 1e3)
      share;
    List.iter (pp (depth + 1) sp.duration_s) sp.children
  in
  List.iter (pp 0 0.0) (roots ())

let to_json () =
  let rec json_of sp =
    Json.Obj
      [ ("name", Json.String sp.name);
        ("start_s", Json.Float sp.start_s);
        ("duration_s", Json.Float sp.duration_s);
        ("children", Json.List (List.map json_of sp.children)) ]
  in
  Json.List (List.map json_of (roots ()))
