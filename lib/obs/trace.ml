type gc_delta = {
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

type span = {
  name : string;
  start_s : float;
  duration_s : float;
  tid : int;
  gc : gc_delta;
  metrics : (string * float) list;
  children : span list;
}

(* an in-progress span; children and metrics accumulate in reverse *)
type frame = {
  f_name : string;
  f_start : float;
  f_gc0 : Gc.stat;
  mutable f_metrics : (string * float) list;
  mutable f_children : span list;
}

(* One recorder per domain. A recorder is only ever written by the domain
   that owns it (reached through domain-local storage), so recording is
   lock-free; the global registry below is touched once per domain, under
   a mutex, at registration time. Worker domains of [Parallel.Pool]
   register on spawn, so spans opened inside pooled chunks land in the
   worker's own buffer and surface in the merged export with that
   domain's tid. *)
type recorder = {
  r_tid : int;
  mutable r_stack : frame list;
  mutable r_completed : span list;  (* reversed *)
}

let enabled_flag = ref false
let epoch = ref (Clock.now ())

let registry_mutex = Mutex.create ()
let recorders : recorder list ref = ref []

let slot_key : recorder option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let recorder () =
  let slot = Domain.DLS.get slot_key in
  match !slot with
  | Some r -> r
  | None ->
    let r =
      { r_tid = (Domain.self () :> int); r_stack = []; r_completed = [] }
    in
    Mutex.protect registry_mutex (fun () -> recorders := r :: !recorders);
    slot := Some r;
    r

let register_domain () = ignore (recorder ())

let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let now () = Clock.now () -. !epoch

(* Must be called while no traced work is in flight on other domains (the
   CLI resets between runs, with the pool idle): it clears every
   registered recorder, including those owned by worker domains. *)
let reset () =
  Mutex.protect registry_mutex (fun () ->
      List.iter
        (fun r ->
           r.r_stack <- [];
           r.r_completed <- [])
        !recorders);
  epoch := Clock.now ()

let gc_delta (g0 : Gc.stat) (g1 : Gc.stat) =
  { minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    major_collections = g1.Gc.major_collections - g0.Gc.major_collections }

let add_metric name v =
  if !enabled_flag then
    match (recorder ()).r_stack with
    | fr :: _ -> fr.f_metrics <- (name, v) :: fr.f_metrics
    | [] -> ()

let with_span name f =
  if not !enabled_flag then f ()
  else begin
    let r = recorder () in
    let fr =
      { f_name = name; f_start = now (); f_gc0 = Gc.quick_stat ();
        f_metrics = []; f_children = [] }
    in
    r.r_stack <- fr :: r.r_stack;
    let finish () =
      let stop = now () in
      let gc1 = Gc.quick_stat () in
      (* Pop down to (and including) our frame. Frames above it were
         abandoned — their [finish] never ran (an exception captured by an
         effect handler that dropped the continuation, or a similar
         non-local exit skipped their cleanup). Their *completed* children
         are real measurements, so instead of dropping them they are
         reparented to this span, the nearest surviving ancestor, in
         execution order. *)
      if List.memq fr r.r_stack then begin
        let rec pop orphans = function
          | top :: rest when top == fr -> (orphans, rest)
          | top :: rest -> pop (orphans @ List.rev top.f_children) rest
          | [] -> assert false
        in
        let orphans, rest = pop [] r.r_stack in
        r.r_stack <- rest;
        let sp =
          { name = fr.f_name; start_s = fr.f_start;
            duration_s = stop -. fr.f_start; tid = r.r_tid;
            gc = gc_delta fr.f_gc0 gc1;
            metrics = List.rev fr.f_metrics;
            children = List.rev fr.f_children @ orphans }
        in
        match r.r_stack with
        | parent :: _ -> parent.f_children <- sp :: parent.f_children
        | [] -> r.r_completed <- sp :: r.r_completed
      end
      else
        (* our frame is gone (mid-span reset): record the span as a root
           of the new trace and leave the stack alone *)
        r.r_completed <-
          { name = fr.f_name; start_s = fr.f_start;
            duration_s = stop -. fr.f_start; tid = r.r_tid;
            gc = gc_delta fr.f_gc0 gc1;
            metrics = List.rev fr.f_metrics;
            children = List.rev fr.f_children }
          :: r.r_completed
    in
    Fun.protect ~finally:finish f
  end

let roots () =
  match !(Domain.DLS.get slot_key) with
  | Some r -> List.rev r.r_completed
  | None -> []

(* Merged view: one forest per domain that recorded anything, sorted by
   tid. Reading other domains' buffers is safe once their work is done
   (the pool joins or idles before export). *)
let all_roots () =
  let rs = Mutex.protect registry_mutex (fun () -> !recorders) in
  List.filter_map
    (fun r ->
       match r.r_completed with
       | [] -> None
       | rev -> Some (r.r_tid, List.rev rev))
    rs
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let span_count () =
  let rec count sp =
    1 + List.fold_left (fun acc c -> acc + count c) 0 sp.children
  in
  List.fold_left
    (fun acc (_, roots) ->
       acc + List.fold_left (fun a sp -> a + count sp) 0 roots)
    0 (all_roots ())

let pp_words w =
  if w >= 1e9 then Printf.sprintf "%.1fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let pp_tree ppf () =
  let rec pp depth parent_s sp =
    let share =
      if parent_s > 0.0 then
        Printf.sprintf " (%.0f%%)" (100.0 *. sp.duration_s /. parent_s)
      else ""
    in
    let alloc = sp.gc.minor_words +. sp.gc.major_words in
    Format.fprintf ppf "%s%-*s %10.3f ms%s  alloc %s@."
      (String.make (2 * depth) ' ')
      (max 1 (32 - (2 * depth)))
      sp.name
      (sp.duration_s *. 1e3)
      share (pp_words alloc);
    List.iter (pp (depth + 1) sp.duration_s) sp.children
  in
  let groups = all_roots () in
  let multi = List.length groups > 1 in
  List.iter
    (fun (tid, roots) ->
       if multi then Format.fprintf ppf "-- domain %d --@." tid;
       List.iter (pp 0 0.0) roots)
    groups

let gc_json g =
  Json.Obj
    [ ("minor_words", Json.Float g.minor_words);
      ("major_words", Json.Float g.major_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections) ]

let rec span_json sp =
  Json.Obj
    [ ("name", Json.String sp.name);
      ("start_s", Json.Float sp.start_s);
      ("duration_s", Json.Float sp.duration_s);
      ("tid", Json.Int sp.tid);
      ("gc", gc_json sp.gc);
      ("metrics",
       Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) sp.metrics));
      ("children", Json.List (List.map span_json sp.children)) ]

let to_json () =
  Json.List
    (List.concat_map (fun (_, roots) -> List.map span_json roots)
       (all_roots ()))
