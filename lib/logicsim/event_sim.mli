(** Event-driven unit-delay logic simulation with glitch counting.

    The cycle-based engine ({!Sim}) evaluates every net once per clock and
    therefore counts at most one transition per net per cycle. Real logic
    glitches: unequal path delays make nets toggle several times before
    settling, and those spurious transitions burn real dynamic power (the
    paper's activity numbers come from VCS, an event-driven simulator that
    sees them). This engine propagates changes wave-by-wave with a unit
    gate delay and counts *every* transition.

    At quiescence the values agree exactly with {!Sim} on the same stimuli
    (property-tested); only the toggle counts differ. *)

type t

val create : Netlist.Types.t -> t

val netlist : t -> Netlist.Types.t

val set_input : t -> int -> bool -> unit
val input_value : t -> int -> bool

val step : t -> unit
(** One clock cycle: release primary-input and flip-flop-output changes as
    wave 0, propagate waves (gate delay = 1 wave) to quiescence, then
    capture flip-flop D pins. *)

val cycles : t -> int

val events : t -> int
(** Gate evaluations performed across all waves since the last
    {!reset_counters} — the event-driven engine's unit of work. *)

val value : t -> Netlist.Types.net_id -> bool
val toggles : t -> Netlist.Types.net_id -> int
(** Transitions including glitches. *)

val ones : t -> Netlist.Types.net_id -> int
val reset_counters : t -> unit

val last_settle_waves : t -> int
(** Waves needed by the last [step] — the dynamic critical depth. *)

val measure : t -> Workload.t -> Geo.Rng.t -> warmup:int -> cycles:int ->
  Activity.report
(** Like {!Activity.measure} but with glitch-aware toggle rates (rates may
    exceed 1.0 toggles per cycle). *)
