module T = Netlist.Types

type t = {
  nl : T.t;
  values : bool array;            (* per net *)
  staged_inputs : bool array;     (* per primary input *)
  dff_state : bool array;         (* per cell *)
  toggle_count : int array;       (* per net, glitches included *)
  ones_count : int array;
  mutable n_cycles : int;
  mutable n_events : int;         (* gate evaluations across all waves *)
  mutable settle_waves : int;
  (* scratch wave state, sized once *)
  cell_seen : int array;          (* last wave a cell was evaluated in *)
  mutable wave_id : int;
}

let create nl =
  let values = Array.make (T.num_nets nl) false in
  T.iter_nets nl ~f:(fun nid n ->
      match n.T.driver with
      | T.Constant v -> values.(nid) <- v
      | T.Primary_input _ | T.Cell_output _ -> ());
  (* settle the combinational logic once so the initial state is
     consistent (cells in id order are topological, see Sim): transitions
     during this pseudo-reset are not counted *)
  T.iter_cells nl ~f:(fun _ c ->
      if not (Celllib.Kind.is_sequential c.T.kind) then
        values.(c.T.output)
        <- Celllib.Kind.eval c.T.kind
             (Array.map (fun n -> values.(n)) c.T.inputs));
  { nl;
    values;
    staged_inputs = Array.make (T.num_primary_inputs nl) false;
    dff_state = Array.make (T.num_cells nl) false;
    toggle_count = Array.make (T.num_nets nl) 0;
    ones_count = Array.make (T.num_nets nl) 0;
    n_cycles = 0;
    n_events = 0;
    settle_waves = 0;
    cell_seen = Array.make (T.num_cells nl) (-1);
    wave_id = 0 }

let netlist t = t.nl
let set_input t k v = t.staged_inputs.(k) <- v
let input_value t k = t.staged_inputs.(k)
let cycles t = t.n_cycles
let events t = t.n_events
let value t nid = t.values.(nid)
let toggles t nid = t.toggle_count.(nid)
let ones t nid = t.ones_count.(nid)

let reset_counters t =
  Array.fill t.toggle_count 0 (Array.length t.toggle_count) 0;
  Array.fill t.ones_count 0 (Array.length t.ones_count) 0;
  t.n_cycles <- 0;
  t.n_events <- 0

let apply_change t nid v =
  if t.values.(nid) <> v then begin
    t.values.(nid) <- v;
    t.toggle_count.(nid) <- t.toggle_count.(nid) + 1;
    true
  end else false

(* One wave: all nets in [changed] just switched; every combinational gate
   sinking one of them is re-evaluated once, and outputs that differ switch
   in the next wave (unit gate delay). *)
let propagate_wave t changed =
  let nl = t.nl in
  let next = ref [] in
  t.wave_id <- t.wave_id + 1;
  List.iter
    (fun nid ->
       Array.iter
         (fun (cid, _pin) ->
            if t.cell_seen.(cid) <> t.wave_id then begin
              t.cell_seen.(cid) <- t.wave_id;
              t.n_events <- t.n_events + 1;
              let c = T.cell nl cid in
              if not (Celllib.Kind.is_sequential c.T.kind) then begin
                let ins =
                  Array.map (fun n -> t.values.(n)) c.T.inputs
                in
                let v = Celllib.Kind.eval c.T.kind ins in
                if v <> t.values.(c.T.output) then
                  next := (c.T.output, v) :: !next
              end
            end)
         (T.net nl nid).T.sinks)
    changed;
  (* apply the next wave's changes; a gate scheduled twice keeps the last
     computed value (there is one entry per cell because of cell_seen) *)
  List.filter_map
    (fun (nid, v) -> if apply_change t nid v then Some nid else None)
    !next

let step t =
  let nl = t.nl in
  (* wave 0: flip-flop outputs and primary inputs release their new values *)
  let wave0 = ref [] in
  T.iter_cells nl ~f:(fun cid c ->
      if Celllib.Kind.is_sequential c.T.kind then
        if apply_change t c.T.output t.dff_state.(cid) then
          wave0 := c.T.output :: !wave0);
  Array.iteri
    (fun k nid ->
       if apply_change t nid t.staged_inputs.(k) then
         wave0 := nid :: !wave0)
    nl.T.primary_inputs;
  let waves = ref 0 in
  let changed = ref !wave0 in
  let cap = T.num_cells nl + 2 in
  while !changed <> [] do
    incr waves;
    if !waves > cap then failwith "Event_sim.step: failed to settle";
    changed := propagate_wave t !changed
  done;
  t.settle_waves <- !waves;
  (* capture *)
  T.iter_cells nl ~f:(fun cid c ->
      if Celllib.Kind.is_sequential c.T.kind then
        t.dff_state.(cid) <- t.values.(c.T.inputs.(0)));
  Array.iteri
    (fun nid v -> if v then t.ones_count.(nid) <- t.ones_count.(nid) + 1)
    t.values;
  t.n_cycles <- t.n_cycles + 1

let last_settle_waves t = t.settle_waves

let measure t workload rng ~warmup ~cycles =
  if cycles <= 0 then invalid_arg "Event_sim.measure: cycles <= 0";
  Obs.Trace.with_span "sim.event.measure" @@ fun () ->
  let nl = t.nl in
  let tags = nl.T.pi_tags in
  let drive () =
    Array.iteri
      (fun k _nid ->
         let p = Workload.activity workload ~tag:tags.(k) in
         if Geo.Rng.bernoulli rng p then
           set_input t k (not (input_value t k)))
      nl.T.primary_inputs
  in
  for _ = 1 to warmup do
    drive ();
    step t
  done;
  reset_counters t;
  for _ = 1 to cycles do
    drive ();
    step t
  done;
  Obs.Metrics.count "sim.event.cycles" ~by:cycles;
  Obs.Metrics.count "sim.event.events" ~by:t.n_events;
  Obs.Metrics.observe "sim.event.events_per_cycle"
    (float_of_int t.n_events /. float_of_int cycles);
  let n = T.num_nets nl in
  let fc = float_of_int cycles in
  { Activity.measured_cycles = cycles;
    toggle_rate = Array.init n (fun nid -> float_of_int t.toggle_count.(nid) /. fc);
    static_prob = Array.init n (fun nid -> float_of_int t.ones_count.(nid) /. fc) }
