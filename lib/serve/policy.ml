(* Retry policy: exponential backoff with seeded, deterministic jitter.

   Only transient failure classes are retryable — a CG breakdown that
   escalated through every rung, or a worker death, can succeed on a
   clean re-run (the injected fault or numerical bad luck is gone).
   Validation errors are facts about the request and retrying them only
   burns server time, so they never retry. Jitter is drawn from a
   splitmix64 stream keyed on (policy seed, job id, attempt): two runs of
   the same job file produce byte-identical backoff schedules, which is
   what makes the QCheck determinism property (and bench comparisons)
   possible. *)

type t = {
  max_retries : int;
  base_delay_ms : float;
  multiplier : float;
  max_delay_ms : float;
  jitter : float;
  seed : int;
}

let default =
  { max_retries = 2; base_delay_ms = 25.0; multiplier = 4.0;
    max_delay_ms = 2000.0; jitter = 0.25; seed = 42 }

let retryable = function
  | Robust.Error.Solver_diverged _ | Robust.Error.Worker_failed _ -> true
  | Robust.Error.Invariant_violation _ | Robust.Error.Checkpoint_corrupt _
  | Robust.Error.Queue_full _ | Robust.Error.Deadline_exceeded _ -> false

let delay_ms t ~job_id ~attempt =
  if attempt < 1 then
    invalid_arg "Serve.Policy.delay_ms: attempt must be >= 1";
  let backoff =
    t.base_delay_ms *. (t.multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min backoff t.max_delay_ms in
  let rng = Geo.Rng.create (t.seed lxor Hashtbl.hash (job_id, attempt)) in
  let u = Geo.Rng.float rng 1.0 in
  capped *. (1.0 -. t.jitter +. (2.0 *. t.jitter *. u))

let schedule t ~job_id =
  List.init t.max_retries (fun i -> delay_ms t ~job_id ~attempt:(i + 1))

let should_retry t e ~attempt = retryable e && attempt <= t.max_retries
